package dropscope

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the real binaries and drives the full file-based
// flow: synthgen writes archives, dropscope re-analyzes them, mrtdump and
// irrgrep inspect them, and roacheck validates the case-study hijack
// against an emitted ROA snapshot.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries")
	}
	bin := t.TempDir()
	for _, tool := range []string{"synthgen", "dropscope", "mrtdump", "irrgrep", "roacheck"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, args ...string) (string, error) {
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	world := t.TempDir()
	if out, err := run("synthgen", "-dir", world, "-scale", "2048"); err != nil {
		t.Fatalf("synthgen: %v\n%s", err, out)
	}

	out, err := run("dropscope", "-load", world, "-scale", "2048")
	if err != nil {
		t.Fatalf("dropscope -load: %v\n%s", err, out)
	}
	for _, want := range []string{"Figure 1", "Table 1", "RPKI-VALID HIJACK", "132.255.0.0/22"} {
		if !strings.Contains(out, want) {
			t.Errorf("dropscope output missing %q", want)
		}
	}

	mrts, err := filepath.Glob(filepath.Join(world, "mrt", "*.mrt"))
	if err != nil || len(mrts) == 0 {
		t.Fatalf("no mrt files: %v", err)
	}
	out, err = run("mrtdump", mrts[0])
	if err != nil {
		t.Fatalf("mrtdump: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PEER_INDEX") || !strings.Contains(out, "|RIB|") {
		t.Errorf("mrtdump output unexpected:\n%.500s", out)
	}

	out, err = run("irrgrep",
		"-journal", filepath.Join(world, "irr", "journal.rpsl"),
		"-prefix", "132.255.0.0/22")
	// The case-study prefix has no route object; irrgrep exits 1 with a
	// clean message.
	if err == nil || !strings.Contains(out, "no route object history") {
		t.Errorf("irrgrep case prefix: err=%v out=%q", err, out)
	}

	// Find a ROA snapshot that covers the case prefix and validate the
	// forged-origin announcement: it must be VALID (exit 0) — the §6.1
	// finding straight from the CLI.
	csvs, err := filepath.Glob(filepath.Join(world, "rpki", "*.csv"))
	if err != nil || len(csvs) == 0 {
		t.Fatalf("no roa snapshots: %v", err)
	}
	latest := csvs[len(csvs)-1]
	out, err = run("roacheck", "-roas", latest, "-prefix", "132.255.0.0/22", "-origin", "AS263692")
	if err != nil {
		t.Fatalf("roacheck valid case: %v\n%s", err, out)
	}
	if !strings.Contains(out, "valid") {
		t.Errorf("roacheck output: %q", out)
	}
	// A wrong origin must be invalid (exit 1).
	out, err = run("roacheck", "-roas", latest, "-prefix", "132.255.0.0/22", "-origin", "50509")
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 1 {
		t.Errorf("roacheck invalid case: err=%v out=%q", err, out)
	}
}
