// Command dropscoped is the long-lived query daemon over a study
// archive: it loads the archive once (memory-mapping the persistent
// index snapshot when it matches), then answers the paper's per-prefix
// questions over HTTP — /v1/visibility, /v1/rov, /v1/drop, /v1/origins,
// /v1/figures/{day} — plus /healthz and /metrics.
//
// Usage:
//
//	dropscoped -archive DIR [-listen ADDR] [-snapshot DIR|off] [-first DAY] [-last DAY]
//	           [-shards N] [-mem-budget N] [-delta=false]
//	           [-workers N] [-max-skip N] [-max-inflight N] [-queue N] [-queue-wait D]
//	           [-request-timeout D] [-watch D] [-drain-timeout D] [-retain N]
//	           [-scrub] [-scrub-chunk N] [-scrub-interval D] [-scrub-pass-interval D]
//	           [-read-header-timeout D] [-read-timeout D] [-write-timeout D] [-idle-timeout D]
//	dropscoped -archive DIR -loadtest [-clients N] [-duration D] [-seed N] [-ring N]
//	           [-swaps M] [-overload]
//
// The daemon serves behind an overload-resilient request path: a
// bounded-inflight admission gate with a short wait queue (excess load
// is shed with 503 + Retry-After), per-request deadlines, panic
// isolation, and an http.Server with every timeout set (slowloris
// clients are cut at -read-header-timeout).
//
// SIGHUP — or, with -watch, any observed change to the archive
// directory — reloads the archive and swaps the new generation in
// atomically: queries in flight finish against the generation they
// started on, new queries land on the new one, and the old mapping is
// unmapped after its last reader exits. A failing reload is retried
// under jittered backoff with a restart budget; while it fails, the
// daemon keeps serving the generation it has and reports itself
// degraded in /healthz and /metrics — stale but available, never down.
// Every response carries the generation digest (body field
// "generation" and the X-Dropscope-Generation header), so a client can
// always tell which archive state answered it.
//
// Reloads are incremental by default (-delta): when the archive grew
// append-only since the served generation — new bytes at the MRT
// tails, old bytes untouched — only the appended bytes are decoded,
// merged onto the served index, and persisted as the new generation;
// days already ingested are never re-decoded. Responses are
// byte-identical to a cold rebuild's, delta reloads are counted in
// /metrics as delta_reloads_total, and any non-append change (a
// rewritten file, a removed collector) falls back to a cold rebuild.
//
// The snapshot directory is a crash-safe generation store: snapshots
// are written durably (fsync, atomic rename, directory sync), recorded
// in an append-only checksummed manifest journal, and swept and
// reconciled at startup, so a crash at any point of a write leaves
// either the old or the new complete generation — never garbage. A
// background scrubber (-scrub, on by default) continuously re-verifies
// the live generation's bytes against its checksums; on a mismatch the
// daemon reports itself degraded, journals the generation corrupt so
// it is never re-adopted, and cold-rebuilds a replacement through the
// reload supervisor. Degraded, never down.
//
// -shards N serves from a prefix-range sharded index: the frozen index
// is cut into N independently mmap-able shard snapshots persisted as a
// generation directory in the snapshot store, point queries route to
// the owning shard, and sweep queries fan out in parallel — answers
// are byte-identical to the single-index daemon's. -mem-budget M caps
// how many shards stay memory-mapped at once: cold ranges fault back
// in on first touch and the least recently used shard is evicted, so
// an archive larger than RAM serves from bounded residency. The
// scrubber verifies shard files individually, and a damaged shard
// degrades only its prefix range (visible per shard in /healthz)
// while the reload supervisor rebuilds.
//
// SIGINT/SIGTERM drain gracefully: new arrivals answer 503 while
// requests already admitted run to completion, bounded by
// -drain-timeout.
//
// -loadtest boots the daemon on a loopback listener, drives a seeded
// deterministic request mix against it for -duration, and prints a QPS
// and latency-percentile summary as JSON — the measurement behind
// BENCH_PR6.json and the CI serve gate. -swaps M additionally performs
// M in-process generation swaps spread over the run. -overload counts
// 503 responses as shed load instead of failures — combined with a
// small -max-inflight and many -clients it measures the admission
// gate: shed rate and the p99 of admitted requests (BENCH_PR7.json).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dropscope"
	"dropscope/internal/ribsnap"
	"dropscope/internal/serve"
	"dropscope/internal/timex"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dropscoped:", err)
	os.Exit(1)
}

func main() {
	var (
		archiveDir = flag.String("archive", "", "study archive directory (required)")
		listen     = flag.String("listen", "127.0.0.1:8434", "listen address")
		snapshot   = flag.String("snapshot", "auto", `index snapshot directory ("auto" = ARCHIVE/ribsnap, "off" disables)`)
		first      = flag.String("first", "", "window first day (default: the study default)")
		last       = flag.String("last", "", "window last day (default: the study default)")
		workers    = flag.Int("workers", 0, "cold-build RIB loading workers (0 = GOMAXPROCS)")
		maxSkip    = flag.Int("max-skip", 0, "per-collector skip budget (0 = default, negative = unlimited)")
		shards     = flag.Int("shards", 0, "serve from a prefix-range sharded index cut into N pieces (0/1 = single index)")
		memBudget  = flag.Int("mem-budget", 0, "with -shards: max shards kept memory-mapped at once (0 = all resident; cold ranges fault back in)")
		deltaOn    = flag.Bool("delta", true, "incremental reloads: when the archive grew append-only since the served generation, decode only the appended bytes and merge onto it instead of rebuilding cold (rewritten archives fall back cold)")

		maxInflight  = flag.Int("max-inflight", 256, "admission: max concurrently executing requests")
		queue        = flag.Int("queue", 0, "admission: max queued requests waiting for a slot (0 = max-inflight)")
		queueWait    = flag.Duration("queue-wait", 100*time.Millisecond, "admission: max time a queued request waits before it is shed")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Second, "deadline for allocating endpoints (origins, figures); negative disables")
		serviceFloor = flag.Duration("service-floor", 0, "loadtest only: minimum in-gate service time per admitted query (simulates production query cost in overload measurements)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http: slowloris bound on reading request headers")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "http: bound on reading a whole request")
		writeTimeout      = flag.Duration("write-timeout", 30*time.Second, "http: bound on writing a whole response")
		idleTimeout       = flag.Duration("idle-timeout", 120*time.Second, "http: bound on idle keep-alive connections")

		watch        = flag.Duration("watch", 0, "poll the archive directory at this interval and reload on change (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown: max time to drain in-flight requests")

		retain        = flag.Int("retain", 0, "snapshot store: retired generations kept on disk (0 = default, negative = all)")
		scrub         = flag.Bool("scrub", true, "background scrub: continuously re-verify the live snapshot against its checksums")
		scrubChunk    = flag.Int("scrub-chunk", 1<<20, "scrub: payload bytes verified per step")
		scrubInterval = flag.Duration("scrub-interval", 50*time.Millisecond, "scrub: pause between steps (the rate limit)")
		scrubPass     = flag.Duration("scrub-pass-interval", time.Minute, "scrub: idle time between completed passes")

		loadtest = flag.Bool("loadtest", false, "run the deterministic load driver and exit")
		clients  = flag.Int("clients", 8, "loadtest: concurrent clients")
		duration = flag.Duration("duration", 2*time.Second, "loadtest: run length")
		seed     = flag.Uint64("seed", 1, "loadtest: request-mix seed")
		ring     = flag.Int("ring", 4096, "loadtest: distinct requests in the mix")
		swaps    = flag.Int("swaps", 0, "loadtest: in-process generation swaps during the run")
		overload = flag.Bool("overload", false, "loadtest: treat 503 as shed load, not failure (overload measurement)")
	)
	flag.Parse()
	if *archiveDir == "" {
		fmt.Fprintln(os.Stderr, "dropscoped: -archive is required")
		flag.Usage()
		os.Exit(2)
	}

	window := dropscope.DefaultConfig().Window
	if *first != "" {
		d, err := timex.ParseDay(*first)
		if err != nil {
			fatal(err)
		}
		window.First = d
	}
	if *last != "" {
		d, err := timex.ParseDay(*last)
		if err != nil {
			fatal(err)
		}
		window.Last = d
	}
	opts := serve.LoadOptions{
		Window:    window,
		MaxSkip:   *maxSkip,
		Workers:   *workers,
		Shards:    *shards,
		MemBudget: *memBudget,
		Delta:     *deltaOn,
	}
	snapDir := ""
	switch *snapshot {
	case "off":
	case "auto":
		snapDir = filepath.Join(*archiveDir, "ribsnap")
	default:
		snapDir = *snapshot
	}
	if snapDir != "" {
		// The daemon goes through the manifest-backed store: crash
		// recovery at open (temp sweep, journal replay), corrupt
		// generations refused, retired ones garbage-collected.
		store, serr := ribsnap.OpenStore(snapDir, ribsnap.StoreOptions{Retain: *retain})
		if serr != nil {
			log.Printf("dropscoped: snapshot store unavailable, running cold: %v", serr)
		} else {
			opts.Store = store
		}
	}

	t0 := time.Now()
	gen, err := serve.Load(*archiveDir, opts)
	if err != nil {
		fatal(err)
	}
	srv := serve.New(gen)
	if *serviceFloor > 0 && !*loadtest {
		fatal(errors.New("-service-floor is a loadtest-only knob; refusing to slow a real daemon"))
	}
	mw := serve.Wrap(srv, serve.MiddlewareConfig{
		Gate: serve.GateConfig{
			MaxInflight: *maxInflight,
			MaxQueue:    *queue,
			QueueWait:   *queueWait,
		},
		RequestTimeout: *reqTimeout,
		ServiceFloor:   *serviceFloor,
	})
	log.Printf("dropscoped: loaded generation %s in %v (window %s)",
		gen.DigestHex()[:12], time.Since(t0).Round(time.Millisecond), gen.Window())

	httpCfg := serve.HTTPConfig{
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	if *loadtest {
		runLoadtest(mw, gen, *archiveDir, opts, httpCfg, loadtestOptions{
			clients: *clients, duration: *duration, seed: *seed,
			ring: *ring, swaps: *swaps, overload: *overload,
		})
		return
	}

	reloader := serve.NewReloader(srv, serve.ReloadConfig{
		Dir:     *archiveDir,
		Opts:    opts,
		Watch:   *watch,
		OnEvent: func(msg string) { log.Print("dropscoped: ", msg) },
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go reloader.Run(ctx)

	if *scrub && opts.Store != nil {
		scrubber := serve.NewScrubber(srv, serve.ScrubConfig{
			Chunk:        *scrubChunk,
			Interval:     *scrubInterval,
			PassInterval: *scrubPass,
			Store:        opts.Store,
			Reloader:     reloader,
			OnEvent:      func(msg string) { log.Print("dropscoped: ", msg) },
		})
		go scrubber.Run(ctx)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	log.Printf("dropscoped: serving on http://%s", ln.Addr())
	httpSrv := serve.NewHTTPServer(mw, httpCfg)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for s := range sig {
		if s != syscall.SIGHUP {
			break
		}
		// Hand the reload to the supervisor: it retries failures under
		// backoff and keeps the current generation serving meanwhile. A
		// broken archive must never take the daemon down.
		reloader.Trigger()
	}

	// Graceful drain: stop the reload loop, answer 503 to new arrivals,
	// and give requests already admitted up to -drain-timeout to finish
	// before the listener is torn down.
	cancel()
	mw.StartDrain()
	log.Printf("dropscoped: draining (up to %v)", *drainTimeout)
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("dropscoped: drain timed out, closing: %v", err)
		httpSrv.Close()
	}
}

type loadtestOptions struct {
	clients  int
	duration time.Duration
	seed     uint64
	ring     int
	swaps    int
	overload bool
}

// runLoadtest boots a loopback listener, drives the seeded request mix,
// and prints the LoadResult JSON. With swaps > 0 it reloads the archive
// and swaps generations mid-load at even intervals, so the run also
// proves swap-under-load keeps every request whole. With overload set,
// 503 responses count as shed load — the admission-gate measurement.
func runLoadtest(mw *serve.Middleware, gen *serve.Generation, archiveDir string, opts serve.LoadOptions, httpCfg serve.HTTPConfig, lt loadtestOptions) {
	srv := mw.Server()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := serve.NewHTTPServer(mw, httpCfg)
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	paths := serve.RequestMix(gen, lt.seed, lt.ring)
	done := make(chan struct{})
	if lt.swaps > 0 {
		go func() {
			interval := lt.duration / time.Duration(lt.swaps+1)
			for i := 0; i < lt.swaps; i++ {
				select {
				case <-done:
					return
				case <-time.After(interval):
				}
				next, err := serve.Load(archiveDir, opts)
				if err != nil {
					log.Printf("dropscoped: loadtest swap %d failed: %v", i+1, err)
					continue
				}
				srv.Swap(next)
			}
		}()
	}
	res, err := serve.RunLoad("http://"+ln.Addr().String(), paths, serve.RunOptions{
		Clients:   lt.clients,
		Duration:  lt.duration,
		AllowShed: lt.overload,
	})
	close(done)
	if err != nil {
		fatal(err)
	}
	out := struct {
		serve.LoadResult
		Swaps       uint64 `json:"swaps"`
		Clients     int    `json:"clients"`
		Seed        uint64 `json:"seed"`
		MaxInflight int    `json:"max_inflight,omitempty"`
	}{res, srv.Swaps(), lt.clients, lt.seed, 0}
	if lt.overload {
		out.MaxInflight = mw.Gate().MaxInflight()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}
