// Command dropscoped is the long-lived query daemon over a study
// archive: it loads the archive once (memory-mapping the persistent
// index snapshot when it matches), then answers the paper's per-prefix
// questions over HTTP — /v1/visibility, /v1/rov, /v1/drop, /v1/origins,
// /v1/figures/{day} — plus /healthz and /metrics.
//
// Usage:
//
//	dropscoped -archive DIR [-listen ADDR] [-snapshot DIR|off] [-first DAY] [-last DAY]
//	           [-workers N] [-max-skip N]
//	dropscoped -archive DIR -loadtest [-clients N] [-duration D] [-seed N] [-ring N] [-swaps M]
//
// SIGHUP reloads the archive directory and swaps the new generation in
// atomically: queries in flight finish against the generation they
// started on, new queries land on the new one, and the old mapping is
// unmapped after its last reader exits. Every response carries the
// generation digest (body field "generation" and the
// X-Dropscope-Generation header), so a client can always tell which
// archive state answered it.
//
// -loadtest boots the daemon on a loopback listener, drives a seeded
// deterministic request mix against it for -duration, and prints a QPS
// and latency-percentile summary as JSON — the measurement behind
// BENCH_PR6.json and the CI serve gate. -swaps M additionally performs
// M in-process generation swaps spread over the run, so the measured
// load includes swap traffic.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dropscope"
	"dropscope/internal/serve"
	"dropscope/internal/timex"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dropscoped:", err)
	os.Exit(1)
}

func main() {
	var (
		archiveDir = flag.String("archive", "", "study archive directory (required)")
		listen     = flag.String("listen", "127.0.0.1:8434", "listen address")
		snapshot   = flag.String("snapshot", "auto", `index snapshot directory ("auto" = ARCHIVE/ribsnap, "off" disables)`)
		first      = flag.String("first", "", "window first day (default: the study default)")
		last       = flag.String("last", "", "window last day (default: the study default)")
		workers    = flag.Int("workers", 0, "cold-build RIB loading workers (0 = GOMAXPROCS)")
		maxSkip    = flag.Int("max-skip", 0, "per-collector skip budget (0 = default, negative = unlimited)")

		loadtest = flag.Bool("loadtest", false, "run the deterministic load driver and exit")
		clients  = flag.Int("clients", 8, "loadtest: concurrent clients")
		duration = flag.Duration("duration", 2*time.Second, "loadtest: run length")
		seed     = flag.Uint64("seed", 1, "loadtest: request-mix seed")
		ring     = flag.Int("ring", 4096, "loadtest: distinct requests in the mix")
		swaps    = flag.Int("swaps", 0, "loadtest: in-process generation swaps during the run")
	)
	flag.Parse()
	if *archiveDir == "" {
		fmt.Fprintln(os.Stderr, "dropscoped: -archive is required")
		flag.Usage()
		os.Exit(2)
	}

	window := dropscope.DefaultConfig().Window
	if *first != "" {
		d, err := timex.ParseDay(*first)
		if err != nil {
			fatal(err)
		}
		window.First = d
	}
	if *last != "" {
		d, err := timex.ParseDay(*last)
		if err != nil {
			fatal(err)
		}
		window.Last = d
	}
	opts := serve.LoadOptions{
		Window:  window,
		MaxSkip: *maxSkip,
		Workers: *workers,
	}
	switch *snapshot {
	case "off":
	case "auto":
		opts.SnapshotDir = filepath.Join(*archiveDir, "ribsnap")
	default:
		opts.SnapshotDir = *snapshot
	}

	t0 := time.Now()
	gen, err := serve.Load(*archiveDir, opts)
	if err != nil {
		fatal(err)
	}
	srv := serve.New(gen)
	log.Printf("dropscoped: loaded generation %s in %v (window %s)",
		gen.DigestHex()[:12], time.Since(t0).Round(time.Millisecond), gen.Window())

	if *loadtest {
		runLoadtest(srv, gen, *archiveDir, opts, *clients, *duration, *seed, *ring, *swaps)
		return
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	log.Printf("dropscoped: serving on http://%s", ln.Addr())
	httpSrv := &http.Server{Handler: srv}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for s := range sig {
		if s != syscall.SIGHUP {
			break
		}
		// Reload and swap. A failed reload keeps the current generation
		// serving: a broken archive must never take the daemon down.
		t0 := time.Now()
		next, err := serve.Load(*archiveDir, opts)
		if err != nil {
			log.Printf("dropscoped: SIGHUP reload failed, keeping generation %s: %v",
				srv.Generation().DigestHex()[:12], err)
			continue
		}
		srv.Swap(next)
		log.Printf("dropscoped: SIGHUP swapped in generation %s in %v",
			next.DigestHex()[:12], time.Since(t0).Round(time.Millisecond))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fatal(err)
	}
}

// runLoadtest boots a loopback listener, drives the seeded request mix,
// and prints the LoadResult JSON. With swaps > 0 it reloads the archive
// and swaps generations mid-load at even intervals, so the run also
// proves swap-under-load keeps every request whole.
func runLoadtest(srv *serve.Server, gen *serve.Generation, archiveDir string, opts serve.LoadOptions, clients int, duration time.Duration, seed uint64, ring, swaps int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	paths := serve.RequestMix(gen, seed, ring)
	done := make(chan struct{})
	if swaps > 0 {
		go func() {
			interval := duration / time.Duration(swaps+1)
			for i := 0; i < swaps; i++ {
				select {
				case <-done:
					return
				case <-time.After(interval):
				}
				next, err := serve.Load(archiveDir, opts)
				if err != nil {
					log.Printf("dropscoped: loadtest swap %d failed: %v", i+1, err)
					continue
				}
				srv.Swap(next)
			}
		}()
	}
	res, err := serve.RunLoad("http://"+ln.Addr().String(), paths, serve.RunOptions{
		Clients:  clients,
		Duration: duration,
	})
	close(done)
	if err != nil {
		fatal(err)
	}
	out := struct {
		serve.LoadResult
		Swaps   uint64 `json:"swaps"`
		Clients int    `json:"clients"`
		Seed    uint64 `json:"seed"`
	}{res, srv.Swaps(), clients, seed}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}
