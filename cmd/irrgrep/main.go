// Command irrgrep queries a journaled RPSL archive for the route objects
// covering a prefix, optionally at a point in time.
//
// Usage:
//
//	irrgrep -journal irr/journal.rpsl -prefix 192.0.2.0/24 [-day 2021-06-01]
package main

import (
	"flag"
	"fmt"
	"os"

	"dropscope/internal/irr"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

func main() {
	var (
		journal = flag.String("journal", "", "IRR journal file (required)")
		prefix  = flag.String("prefix", "", "prefix to query (required)")
		day     = flag.String("day", "", "optional day (YYYY-MM-DD): show objects live that day")
	)
	flag.Parse()
	if *journal == "" || *prefix == "" {
		flag.Usage()
		os.Exit(2)
	}

	p, err := netx.ParsePrefix(*prefix)
	if err != nil {
		fatal(err)
	}
	db, err := loadJournal(*journal)
	if err != nil {
		fatal(err)
	}

	if *day != "" {
		d, err := timex.ParseDay(*day)
		if err != nil {
			fatal(err)
		}
		routes := db.RoutesAt(p, d)
		if len(routes) == 0 {
			fmt.Printf("no route objects covering %s on %s\n", p, d)
			os.Exit(1)
		}
		for _, r := range routes {
			fmt.Printf("%s origin %s mnt-by %s org %s\n", r.Prefix, r.Origin, r.MntBy, r.OrgID)
		}
		return
	}

	spans := db.RouteHistory(p)
	if len(spans) == 0 {
		fmt.Printf("no route object history for %s\n", p)
		os.Exit(1)
	}
	for _, s := range spans {
		end := "live"
		if s.HasRemoved {
			end = "removed " + s.Removed.String()
		}
		fmt.Printf("%s origin %s org %-12s created %s, %s\n",
			s.Route.Prefix, s.Route.Origin, s.Route.OrgID, s.Created, end)
	}
}

// loadJournal reads the archive journal format (%ADD/%DEL directives).
func loadJournal(path string) (*irr.DB, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return irr.ParseJournal(raw)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irrgrep:", err)
	os.Exit(2)
}
