// Command dropscope runs the full study end to end: it generates the
// synthetic world (or loads archives from a directory), runs every
// analysis, and prints each of the paper's tables and figures.
//
// Usage:
//
//	dropscope [-scale N] [-seed N] [-load DIR] [-save DIR] [-json] [-serial] [-workers N] [-strict] [-max-skip N]
//
// By default RIB loading and the experiment suite run in parallel across
// the available CPUs; -serial forces the single-threaded reference path
// and -workers caps the experiment fan-out (0 = GOMAXPROCS). Both paths
// print byte-identical reports.
//
// Archives loaded with -load are read leniently: corrupt records and
// malformed lines are skipped and counted, collectors damaged beyond the
// -max-skip budget are quarantined, and the report gains a data-health
// section. -strict instead fails on the first damaged record, naming its
// record index and byte offset. Over undamaged archives the two modes
// print byte-identical reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dropscope"
)

func main() {
	var (
		scale   = flag.Int("scale", 64, "background population divisor (1 = paper-size populations)")
		seed    = flag.Int64("seed", 1, "deterministic world seed")
		load    = flag.String("load", "", "load archives from this directory instead of generating")
		save    = flag.String("save", "", "after generating, persist archives to this directory")
		asJSON  = flag.Bool("json", false, "emit the machine-readable summary instead of the text report")
		serial  = flag.Bool("serial", false, "disable all parallelism: serial RIB loading and experiment execution")
		workers = flag.Int("workers", 0, "experiment fan-out bound (0 = GOMAXPROCS, 1 = serial experiments)")
		strict  = flag.Bool("strict", false, "with -load: fail on the first corrupt record instead of skipping leniently")
		maxSkip = flag.Int("max-skip", 0, "with -load: per-collector skip budget before quarantine (0 = default 100, negative = unlimited)")
	)
	flag.Parse()

	cfg := dropscope.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed

	var (
		study *dropscope.Study
		err   error
	)
	if *load != "" {
		opts := dropscope.IngestOptions{Strict: *strict, MaxSkip: *maxSkip}
		if *serial {
			opts.Workers = 1
		}
		study, err = dropscope.LoadStudyWithOptions(*load, cfg, opts)
	} else if *serial {
		study, err = dropscope.NewStudySerial(cfg)
	} else {
		study, err = dropscope.NewStudy(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *save != "" {
		if err := study.WriteArchives(*save); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "archives written to %s\n", *save)
	}
	var results dropscope.Results
	if *serial {
		results = study.ResultsSerial()
	} else {
		results = study.ResultsWithConcurrency(*workers)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results.Summary()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := results.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
