// Command dropscope runs the full study end to end: it generates the
// synthetic world (or loads archives from a directory), runs every
// analysis, and prints each of the paper's tables and figures.
//
// Usage:
//
//	dropscope [-scale N] [-seed N] [-load DIR] [-save DIR] [-json] [-serial] [-workers N] [-strict] [-max-skip N]
//	          [-index-cache DIR|auto|off] [-append] [-shards N] [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// By default RIB loading and the experiment suite run in parallel across
// the available CPUs; -serial forces the single-threaded reference path
// and -workers caps the experiment fan-out (0 = GOMAXPROCS). Both paths
// print byte-identical reports.
//
// Archives loaded with -load are read leniently: corrupt records and
// malformed lines are skipped and counted, collectors damaged beyond the
// -max-skip budget are quarantined, and the report gains a data-health
// section. -strict instead fails on the first damaged record, naming its
// record index and byte offset. Over undamaged archives the two modes
// print byte-identical reports.
//
// Loads warm-start from a persistent index snapshot: the default
// -index-cache auto keeps DIR/ribsnap/index.ribsnap next to the archives
// loaded with -load DIR, keyed on a digest of the MRT bytes. A matching
// snapshot skips MRT decode and index construction entirely (the
// dominant load cost); a missing, stale, or damaged one falls back to a
// cold build and is rewritten. Reports are byte-identical either way.
// -index-cache off disables the cache; any other value names an explicit
// snapshot directory.
//
// -append extends the cache to growing archives: when the MRT files
// gained bytes at their tails since the snapshot was written (old bytes
// untouched), only the appended bytes are decoded and merged onto the
// snapshotted index — days already ingested are never re-decoded — and
// the merged index replaces the snapshot. The report is byte-identical
// to a cold rebuild; any non-append change falls back to one.
//
// The profiling flags wrap the whole run: -cpuprofile and -memprofile
// write pprof profiles (the heap profile is taken at exit, after a GC),
// -trace writes a runtime execution trace. Because a warm start shifts
// work from decode-time CPU to a file mapping, comparing cold and warm
// heap profiles of the same archive (two runs, -memprofile each) is the
// quickest way to see what the snapshot saves; scripts/bench.sh compare
// automates the allocation side. Inspect profiles with `go tool pprof` /
// `go tool trace`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"dropscope"
)

// profiling starts the profilers selected on the command line and
// returns a stop function to run at exit. Any profile that cannot be
// started is fatal: a run whose requested profile is silently missing
// wastes the whole measurement.
func profiling(cpuprofile, memprofile, traceFile string) func() {
	var stops []func()
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		if memprofile != "" {
			f, err := os.Create(memprofile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		scale    = flag.Int("scale", 64, "background population divisor (1 = paper-size populations)")
		seed     = flag.Int64("seed", 1, "deterministic world seed")
		load     = flag.String("load", "", "load archives from this directory instead of generating")
		save     = flag.String("save", "", "after generating, persist archives to this directory")
		asJSON   = flag.Bool("json", false, "emit the machine-readable summary instead of the text report")
		serial   = flag.Bool("serial", false, "disable all parallelism: serial RIB loading and experiment execution")
		workers  = flag.Int("workers", 0, "experiment fan-out bound (0 = GOMAXPROCS, 1 = serial experiments)")
		strict   = flag.Bool("strict", false, "with -load: fail on the first corrupt record instead of skipping leniently")
		maxSkip  = flag.Int("max-skip", 0, "with -load: per-collector skip budget before quarantine (0 = default 100, negative = unlimited)")
		idxCache = flag.String("index-cache", "auto", "with -load: index snapshot directory for warm starts; auto = DIR/ribsnap under -load, off = disabled")
		appendI  = flag.Bool("append", false, "with -load and an index cache: when the archives grew append-only since the cached snapshot, ingest only the appended bytes and merge onto the snapshot instead of rebuilding cold (output is byte-identical; rewritten archives fall back cold)")
		shards   = flag.Int("shards", 0, "with -load: serve from a prefix-range sharded index cut into N pieces (0/1 = single index; output is byte-identical)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	stop := profiling(*cpuprofile, *memprofile, *traceFile)
	err := run(*scale, *seed, *load, *save, *asJSON, *serial, *workers, *strict, *maxSkip, *idxCache, *appendI, *shards)
	stop()
	if err != nil {
		fatal(err)
	}
}

// snapshotDir resolves the -index-cache flag against the -load directory.
func snapshotDir(idxCache, load string) string {
	switch idxCache {
	case "off":
		return ""
	case "auto":
		return filepath.Join(load, "ribsnap")
	default:
		return idxCache
	}
}

func run(scale int, seed int64, load, save string, asJSON, serial bool, workers int, strict bool, maxSkip int, idxCache string, appendIngest bool, shards int) error {
	cfg := dropscope.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed

	var (
		study *dropscope.Study
		err   error
	)
	if load != "" {
		opts := dropscope.IngestOptions{
			Strict:      strict,
			MaxSkip:     maxSkip,
			SnapshotDir: snapshotDir(idxCache, load),
			Append:      appendIngest,
			Shards:      shards,
		}
		if serial {
			opts.Workers = 1
		}
		study, err = dropscope.LoadStudyWithOptions(load, cfg, opts)
	} else if serial {
		study, err = dropscope.NewStudySerial(cfg)
	} else {
		study, err = dropscope.NewStudy(cfg)
	}
	if err != nil {
		return err
	}
	defer study.Close()
	if save != "" {
		if err := study.WriteArchives(save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "archives written to %s\n", save)
	}
	var results dropscope.Results
	if serial {
		results = study.ResultsSerial()
	} else {
		results = study.ResultsWithConcurrency(workers)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results.Summary())
	}
	return results.Render(os.Stdout)
}
