// Command rtrd serves validated ROA payloads from an archive directory
// over the RPKI-to-Router protocol (RFC 8210), the way a validator feeds
// routers doing route origin validation.
//
// Usage:
//
//	rtrd -archive DIR -day 2022-03-30 [-listen 127.0.0.1:8282] [-as0]
//	     [-refresh 3600] [-retry 600] [-expire 7200]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"dropscope/internal/archive"
	"dropscope/internal/rpki"
	"dropscope/internal/rtr"
	"dropscope/internal/timex"
)

func main() {
	var (
		dir     = flag.String("archive", "", "archive directory from synthgen (required)")
		dayStr  = flag.String("day", "2022-03-30", "serve the VRP snapshot of this day")
		listen  = flag.String("listen", "127.0.0.1:8282", "listen address")
		withAS0 = flag.Bool("as0", false, "include the APNIC/LACNIC AS0 TALs")
		refresh = flag.Uint("refresh", uint(rtr.DefaultIntervals.Refresh), "End Of Data refresh interval, seconds")
		retry   = flag.Uint("retry", uint(rtr.DefaultIntervals.Retry), "End Of Data retry interval, seconds")
		expire  = flag.Uint("expire", uint(rtr.DefaultIntervals.Expire), "End Of Data expire interval, seconds")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	day, err := timex.ParseDay(*dayStr)
	if err != nil {
		fatal(err)
	}
	bundle, err := archive.Load(*dir)
	if err != nil {
		fatal(err)
	}
	tals := append([]rpki.TrustAnchor{}, rpki.DefaultTALs...)
	if *withAS0 {
		tals = append(tals, rpki.TAAPNICAS0, rpki.TALACNICAS0)
	}
	vrps := rtr.SnapshotVRPs(bundle.RPKI, day, tals)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rtrd: serving %d VRPs (snapshot %s) on %s\n", len(vrps), day, ln.Addr())
	srv := rtr.NewServer(1, vrps)
	srv.SetIntervals(rtr.Intervals{
		Refresh: uint32(*refresh), Retry: uint32(*retry), Expire: uint32(*expire),
	})
	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrd:", err)
	os.Exit(1)
}
