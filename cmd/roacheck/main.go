// Command roacheck validates an announcement against a ROA snapshot CSV
// (RFC 6811 route origin validation).
//
// Usage:
//
//	roacheck -roas snapshot.csv -prefix 132.255.0.0/22 -origin 263692 [-as0]
//
// Exit status: 0 valid, 1 invalid, 2 not found, 3 error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rpki"
)

func main() {
	var (
		roasPath = flag.String("roas", "", "ROA snapshot CSV (required)")
		prefix   = flag.String("prefix", "", "announced prefix (required)")
		origin   = flag.String("origin", "", "origin ASN, with or without 'AS' (required)")
		withAS0  = flag.Bool("as0", false, "also honor the APNIC/LACNIC AS0 TALs")
	)
	flag.Parse()
	if *roasPath == "" || *prefix == "" || *origin == "" {
		flag.Usage()
		os.Exit(3)
	}

	f, err := os.Open(*roasPath)
	if err != nil {
		fatal(err)
	}
	roas, err := rpki.ParseSnapshotCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	p, err := netx.ParsePrefix(*prefix)
	if err != nil {
		fatal(err)
	}
	asnStr := strings.TrimPrefix(strings.ToUpper(*origin), "AS")
	asn, err := strconv.ParseUint(asnStr, 10, 32)
	if err != nil {
		fatal(fmt.Errorf("bad origin %q", *origin))
	}

	tals := append([]rpki.TrustAnchor{}, rpki.DefaultTALs...)
	if *withAS0 {
		tals = append(tals, rpki.TAAPNICAS0, rpki.TALACNICAS0)
	}
	allowed := make(map[rpki.TrustAnchor]bool, len(tals))
	for _, ta := range tals {
		allowed[ta] = true
	}
	var candidates []rpki.ROA
	for _, r := range roas {
		if allowed[r.TA] {
			candidates = append(candidates, r)
		}
	}

	v := rpki.Validate(p, bgp.ASN(asn), candidates)
	fmt.Printf("%s origin AS%d: %s\n", p, asn, v)
	for _, r := range candidates {
		if r.Prefix.Covers(p) {
			fmt.Printf("  covering ROA: %s\n", r)
		}
	}
	switch v {
	case rpki.Valid:
		os.Exit(0)
	case rpki.Invalid:
		os.Exit(1)
	default:
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roacheck:", err)
	os.Exit(3)
}
