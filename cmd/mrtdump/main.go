// Command mrtdump prints MRT files as text, one line per record, in the
// style of bgpdump.
//
// Usage:
//
//	mrtdump FILE.mrt [FILE2.mrt ...]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"dropscope/internal/mrt"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "mrtdump: no input files")
		os.Exit(2)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for _, path := range flag.Args() {
		if err := dump(out, path); err != nil {
			fmt.Fprintf(os.Stderr, "mrtdump: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func dump(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := mrt.NewReader(bufio.NewReader(f))
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		ts := rec.Timestamp().Format("2006-01-02 15:04:05")
		switch rr := rec.(type) {
		case *mrt.PeerIndexTable:
			fmt.Fprintf(w, "%s|PEER_INDEX|%s|%d peers\n", ts, rr.ViewName, len(rr.Peers))
			for i, p := range rr.Peers {
				fmt.Fprintf(w, "  [%d] %s %s\n", i, p.AS, p.Addr)
			}
		case *mrt.RIBPrefix:
			fmt.Fprintf(w, "%s|RIB|%s|%d entries\n", ts, rr.Prefix, len(rr.Entries))
			for _, e := range rr.Entries {
				fmt.Fprintf(w, "  peer=%d path=%s\n", e.PeerIndex, e.Attrs.Path)
			}
		case *mrt.BGP4MPMessage:
			for _, p := range rr.Update.Withdrawn {
				fmt.Fprintf(w, "%s|BGP4MP|%s|%s|W|%s\n", ts, rr.PeerAddr, rr.PeerAS, p)
			}
			for _, p := range rr.Update.NLRI {
				fmt.Fprintf(w, "%s|BGP4MP|%s|%s|A|%s|%s\n", ts, rr.PeerAddr, rr.PeerAS, p, rr.Update.Attrs.Path)
			}
		}
	}
}
