package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
)

func writeTestMRT(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	w := mrt.NewWriter(bw)
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	recs := []mrt.Record{
		&mrt.PeerIndexTable{
			When: t0, ViewName: "t",
			Peers: []mrt.Peer{{Addr: netx.AddrFrom4(10, 0, 0, 1), AS: 64500}},
		},
		&mrt.RIBPrefix{
			When: t0, Prefix: netx.MustParsePrefix("132.255.0.0/22"),
			Entries: []mrt.RIBEntry{{PeerIndex: 0, OriginatedTime: t0,
				Attrs: bgp.Attrs{Path: bgp.Sequence(64500, 263692)}}},
		},
		&mrt.BGP4MPMessage{
			When: t0.Add(time.Hour), PeerAS: 64500, LocalAS: 6447,
			PeerAddr: netx.AddrFrom4(10, 0, 0, 1),
			Update: &bgp.Update{
				Attrs: bgp.Attrs{Path: bgp.Sequence(64500, 50509, 263692)},
				NLRI:  []netx.Prefix{netx.MustParsePrefix("132.255.0.0/22")},
			},
		},
		&mrt.BGP4MPMessage{
			When: t0.Add(2 * time.Hour), PeerAS: 64500, LocalAS: 6447,
			PeerAddr: netx.AddrFrom4(10, 0, 0, 1),
			Update:   &bgp.Update{Withdrawn: []netx.Prefix{netx.MustParsePrefix("132.255.0.0/22")}},
		},
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDumpOutput(t *testing.T) {
	path := writeTestMRT(t)
	var b strings.Builder
	if err := dump(&b, path); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"PEER_INDEX", "AS64500",
		"RIB|132.255.0.0/22", "64500 263692",
		"|A|132.255.0.0/22|64500 50509 263692",
		"|W|132.255.0.0/22",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpMissingFile(t *testing.T) {
	var b strings.Builder
	if err := dump(&b, filepath.Join(t.TempDir(), "absent.mrt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestDumpGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.mrt")
	if err := os.WriteFile(path, []byte("not mrt at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := dump(&b, path); err == nil {
		t.Error("garbage file should error")
	}
}
