// Command synthgen generates the synthetic world and writes every archive
// to a directory in its native on-disk format (MRT, DROP text, RPSL
// journal, ROA CSVs, delegated-extended stats).
//
// Usage:
//
//	synthgen -dir OUT [-scale N] [-seed N] [-volume N]
//
// -volume N switches on RouteViews-realistic volume amplification: the
// MRT streams additionally carry background churn whose per-collector
// record counts are drawn from a seeded lognormal distribution around
// N — multi-day announce/withdraw flaps of synthetic prefixes disjoint
// from everything the study measures. The analysis results over the
// amplified archives are unchanged; the index build cost (and the
// payoff of `dropscope -shards` / `dropscoped -shards`) scales with N.
package main

import (
	"flag"
	"fmt"
	"os"

	"dropscope"
)

func main() {
	var (
		dir    = flag.String("dir", "", "output directory (required)")
		scale  = flag.Int("scale", 64, "background population divisor")
		seed   = flag.Int64("seed", 1, "deterministic world seed")
		volume = flag.Int("volume", 0, "MRT volume amplification: per-collector churn record target, lognormal-distributed (0 = off)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "synthgen: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := dropscope.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	study, err := dropscope.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var vrecs, vpfx int
	if *volume > 0 {
		vrecs, vpfx = study.AmplifyVolume(*volume, *seed)
	}
	if err := study.WriteArchives(*dir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("world seed=%d scale=%d written to %s\n", *seed, *scale, *dir)
	fmt.Printf("  %d DROP listings, %d collectors\n",
		len(study.World.Truth.Listings), len(study.World.Collectors))
	if *volume > 0 {
		fmt.Printf("  volume amplification: %d churn records over %d synthetic prefixes\n", vrecs, vpfx)
	}
}
