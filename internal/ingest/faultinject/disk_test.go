package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"dropscope/internal/ribsnap"
)

// writeTemp runs the canonical create/write/sync/close/rename/syncdir
// sequence through fs, returning the first error.
func writeTemp(fs ribsnap.FS, dir string, payload []byte) error {
	f, err := fs.CreateTemp(dir, ".ribsnap-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(f.Name(), filepath.Join(dir, "out")); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func TestDiskFSCountsOps(t *testing.T) {
	d := NewDiskFS(nil, DiskOpts{})
	if err := writeTemp(d, t.TempDir(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if d.Ops() != 6 {
		t.Fatalf("ops = %d, want 6 (create, write, sync, close, rename, syncdir)", d.Ops())
	}
	if d.Crashed() {
		t.Fatal("clean run must not crash")
	}
}

func TestDiskFSFailStop(t *testing.T) {
	for k := 0; k < 6; k++ {
		d := NewDiskFS(nil, DiskOpts{Crash: true, CrashAfter: k})
		err := writeTemp(d, t.TempDir(), []byte("hello"))
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("k=%d: want ErrCrashed, got %v", k, err)
		}
		if !d.Crashed() {
			t.Fatalf("k=%d: Crashed() false after crash", k)
		}
		// Fail-stop: every later op fails too, including removes.
		if err := d.Remove("whatever"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("k=%d: post-crash op succeeded: %v", k, err)
		}
		if d.Ops() != k {
			t.Fatalf("k=%d: %d ops succeeded", k, d.Ops())
		}
	}
}

func TestDiskFSNoSpace(t *testing.T) {
	dir := t.TempDir()
	d := NewDiskFS(nil, DiskOpts{SpaceBytes: 3})
	f, err := d.CreateTemp(dir, ".ribsnap-*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello"))
	if !errors.Is(err, ErrNoSpace) || n != 3 {
		t.Fatalf("write = (%d, %v), want (3, ErrNoSpace)", n, err)
	}
	// The budget is spent; nothing more fits.
	if n, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) || n != 0 {
		t.Fatalf("second write = (%d, %v), want (0, ErrNoSpace)", n, err)
	}
}

func TestDiskFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	d := NewDiskFS(nil, DiskOpts{ShortEvery: 2})
	f, err := d.CreateTemp(dir, ".ribsnap-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("full")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	n, err := f.Write([]byte("chopped"))
	if !errors.Is(err, io.ErrShortWrite) || n != 3 {
		t.Fatalf("second write = (%d, %v), want (3, ErrShortWrite)", n, err)
	}
}

func TestDiskFSBitFlipsDeterministic(t *testing.T) {
	out := func(seed uint64) []byte {
		dir := t.TempDir()
		d := NewDiskFS(nil, DiskOpts{FlipBits: 2, FlipSeed: seed})
		f, err := d.CreateTemp(dir, ".ribsnap-*")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("the quick brown fox")); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, c := out(7), out(7), out(8)
	if string(a) != string(b) {
		t.Fatal("same seed produced different damage")
	}
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical damage")
	}
	if string(a) == "the quick brown fox" {
		t.Fatal("no bits were flipped")
	}
}
