// Disk-level fault injection: an fsio.FS implementation that wraps a
// real filesystem and damages the write path deterministically — short
// writes, exhausted space, silent bit flips, and fail-stop crashes at
// an exact operation index. The crash model is the interesting one: a
// kernel panic or power cut stops a process between any two syscalls,
// so DiskFS counts every mutating operation (create, write, sync,
// close, rename, directory sync, remove) and, once the configured
// budget is spent, fails that operation and every later one. Driving a
// snapshot write with CrashAfter = 0, 1, 2, ... N exercises a crash at
// every step of the durability protocol, and recovery must find either
// the old or the new complete snapshot at every single K.
//
// Like the stream injectors in this package, all damage is a pure
// function of the seed.
package faultinject

import (
	"errors"
	"io"
	"sync"

	"dropscope/internal/fsio"
)

// ErrCrashed is the failure every operation returns once a DiskFS has
// fail-stopped. Recovery code never sees it — the "process" is dead —
// but tests assert on it to distinguish the simulated crash from real
// filesystem errors.
var ErrCrashed = errors.New("faultinject: simulated crash (fail-stop)")

// ErrNoSpace models ENOSPC: the write consumed the remaining budget,
// wrote what fit, and failed.
var ErrNoSpace = errors.New("faultinject: no space left on device")

// DiskOpts configures a DiskFS. The zero value injects nothing.
type DiskOpts struct {
	// CrashAfter fail-stops the filesystem after this many mutating
	// operations have succeeded; negative (or, for convenience in
	// zero-valued opts, zero with no other signal) never crashes. Use
	// NeverCrash for clarity.
	CrashAfter int
	// Crash enables the CrashAfter budget (so CrashAfter == 0 can mean
	// "crash before the very first operation").
	Crash bool
	// SpaceBytes is the total byte budget for data writes; negative or
	// zero means unlimited.
	SpaceBytes int64
	// FlipBits silently flips this many pseudo-random bits in every
	// data write — bitrot at the platter, invisible until a checksum
	// looks. Requires FlipSeed to vary the damage.
	FlipBits int
	// FlipSeed seeds the bit flipper.
	FlipSeed uint64
	// ShortEvery makes every Nth data write stop halfway with
	// io.ErrShortWrite; zero disables.
	ShortEvery int
}

// DiskFS wraps an fsio.FS with deterministic fault injection. Safe
// for concurrent use to the extent the wrapped FS is; the fault state
// is mutex-guarded.
type DiskFS struct {
	base fsio.FS

	mu      sync.Mutex
	ops     int
	writes  int
	space   int64
	crashed bool
	opts    DiskOpts
	flip    *Injector
}

// NewDiskFS wraps base (nil means the real OS) with the configured
// faults.
func NewDiskFS(base fsio.FS, opts DiskOpts) *DiskFS {
	if base == nil {
		base = fsio.OS
	}
	d := &DiskFS{base: base, opts: opts, space: opts.SpaceBytes}
	if opts.FlipBits > 0 {
		d.flip = New(opts.FlipSeed)
	}
	return d
}

// Ops reports how many mutating operations have succeeded — run a
// clean write first to learn the protocol length, then replay with
// CrashAfter at each index below it.
func (d *DiskFS) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Crashed reports whether the fail-stop has triggered.
func (d *DiskFS) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// step spends one operation from the crash budget. After the budget is
// gone every operation — including cleanup removes — fails, which is
// exactly what a dead process can(not) do.
func (d *DiskFS) step() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if d.opts.Crash && d.ops >= d.opts.CrashAfter {
		d.crashed = true
		return ErrCrashed
	}
	d.ops++
	return nil
}

// mangle applies the data-write faults to p, returning the bytes to
// hand the real file, how many of the caller's bytes that covers, and
// the error the write must report.
func (d *DiskFS) mangle(p []byte) ([]byte, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(p)
	var err error
	if d.opts.ShortEvery > 0 {
		d.writes++
		if d.writes%d.opts.ShortEvery == 0 && n > 1 {
			n = n / 2
			err = io.ErrShortWrite
		}
	}
	if d.opts.SpaceBytes > 0 {
		if int64(n) > d.space {
			n = int(d.space)
			err = ErrNoSpace
		}
		d.space -= int64(n)
	}
	out := p[:n]
	if d.flip != nil && n > 0 {
		out = d.flip.FlipBits(out, d.opts.FlipBits)
	}
	return out, n, err
}

func (d *DiskFS) CreateTemp(dir, pattern string) (fsio.File, error) {
	if err := d.step(); err != nil {
		return nil, err
	}
	f, err := d.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &diskFile{d: d, f: f}, nil
}

func (d *DiskFS) Rename(oldpath, newpath string) error {
	if err := d.step(); err != nil {
		return err
	}
	return d.base.Rename(oldpath, newpath)
}

func (d *DiskFS) Remove(name string) error {
	if err := d.step(); err != nil {
		return err
	}
	return d.base.Remove(name)
}

func (d *DiskFS) SyncDir(dir string) error {
	if err := d.step(); err != nil {
		return err
	}
	return d.base.SyncDir(dir)
}

// diskFile threads every file operation through the owner's fault
// state.
type diskFile struct {
	d *DiskFS
	f fsio.File
}

func (df *diskFile) Name() string { return df.f.Name() }

func (df *diskFile) Write(p []byte) (int, error) {
	if err := df.d.step(); err != nil {
		return 0, err
	}
	out, n, ferr := df.d.mangle(p)
	if _, err := df.f.Write(out); err != nil {
		return 0, err
	}
	if ferr != nil {
		return n, ferr
	}
	return len(p), nil
}

func (df *diskFile) WriteAt(p []byte, off int64) (int, error) {
	if err := df.d.step(); err != nil {
		return 0, err
	}
	out, n, ferr := df.d.mangle(p)
	if _, err := df.f.WriteAt(out, off); err != nil {
		return 0, err
	}
	if ferr != nil {
		return n, ferr
	}
	return len(p), nil
}

func (df *diskFile) Sync() error {
	if err := df.d.step(); err != nil {
		return err
	}
	return df.f.Sync()
}

func (df *diskFile) Close() error {
	if err := df.d.step(); err != nil {
		return err
	}
	return df.f.Close()
}
