package faultinject

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- conn
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	accepted, ok := <-ch
	if !ok {
		t.Fatal("accept failed")
	}
	return dialed, accepted
}

func TestChaoserScheduleDeterministic(t *testing.T) {
	collect := func(seed uint64) []FaultKind {
		c := NewChaoser(seed, ChaosConfig{}, 16)
		var kinds []FaultKind
		for i := 0; i < 16; i++ {
			a, b := net.Pipe()
			wrapped := c.Wrap(a).(*chaosConn)
			kinds = append(kinds, wrapped.kind)
			if wrapped.budget < 1 || wrapped.budget > 512 {
				t.Fatalf("budget %d outside default [1,512]", wrapped.budget)
			}
			a.Close()
			b.Close()
		}
		return kinds
	}
	a, b := collect(42), collect(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	seen := map[FaultKind]bool{}
	for _, k := range a {
		seen[k] = true
	}
	if len(seen) < 3 {
		t.Errorf("16 draws hit only %d fault kinds: %v", len(seen), a)
	}
}

func TestChaosConnWriteFaults(t *testing.T) {
	for _, kind := range []FaultKind{FaultReset, FaultPartialWrite, FaultStall} {
		t.Run(kind.String(), func(t *testing.T) {
			local, remote := tcpPair(t)
			defer local.Close()
			defer remote.Close()
			cc := &chaosConn{Conn: local, kind: kind, budget: 4, stall: time.Millisecond}

			msg := []byte("0123456789")
			start := time.Now()
			n, err := cc.Write(msg)
			var inj *InjectedFault
			if !errors.As(err, &inj) || inj.Kind != kind {
				t.Fatalf("write error = %v, want injected %s", err, kind)
			}
			if !errors.Is(err, ErrInjected) {
				t.Error("injected fault must unwrap to ErrInjected")
			}
			switch kind {
			case FaultPartialWrite:
				if n != 4 {
					t.Errorf("partial write forwarded %d bytes, want 4", n)
				}
				buf := make([]byte, 16)
				remote.SetReadDeadline(time.Now().Add(2 * time.Second))
				got, _ := io.ReadFull(remote, buf[:4])
				if got != 4 || string(buf[:4]) != "0123" {
					t.Errorf("peer received %q", buf[:got])
				}
			case FaultStall:
				if time.Since(start) < time.Millisecond {
					t.Error("stall did not block")
				}
				if n != 0 {
					t.Errorf("stall wrote %d bytes", n)
				}
			default:
				if n != 0 {
					t.Errorf("reset wrote %d bytes", n)
				}
			}
			// The transport is dead afterwards.
			if _, err := cc.Write([]byte("x")); err == nil {
				t.Error("write after fault should fail")
			}
		})
	}
}

func TestChaosConnReadTruncation(t *testing.T) {
	local, remote := tcpPair(t)
	defer local.Close()
	defer remote.Close()
	cc := &chaosConn{Conn: local, kind: FaultTruncate, budget: 3}

	if _, err := remote.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	local.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := cc.Read(buf)
	if err != nil || n != 3 || string(buf[:3]) != "abc" {
		t.Fatalf("truncated read = %d %q %v, want 3 \"abc\"", n, buf[:n], err)
	}
	if _, err := cc.Read(buf); err != io.EOF {
		t.Errorf("read after truncation = %v, want io.EOF", err)
	}
}

func TestChaosConnPassesCleanTrafficBeforeFault(t *testing.T) {
	local, remote := tcpPair(t)
	defer local.Close()
	defer remote.Close()
	cc := &chaosConn{Conn: local, kind: FaultReset, budget: 1 << 20}

	echoDone := make(chan struct{})
	go func() {
		defer close(echoDone)
		buf := make([]byte, 64)
		n, err := remote.Read(buf)
		if err != nil {
			return
		}
		_, _ = remote.Write(buf[:n])
	}()
	if _, err := cc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(cc, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("echo = %q %v", buf, err)
	}
	<-echoDone
}

func TestChaoserBudgetExhaustsToCleanConns(t *testing.T) {
	c := NewChaoser(1, ChaosConfig{}, 2)
	a1, b1 := net.Pipe()
	defer a1.Close()
	defer b1.Close()
	if _, ok := c.Wrap(a1).(*chaosConn); !ok {
		t.Fatal("first wrap should inject")
	}
	a2, b2 := net.Pipe()
	defer a2.Close()
	defer b2.Close()
	if _, ok := c.Wrap(a2).(*chaosConn); !ok {
		t.Fatal("second wrap should inject")
	}
	a3, b3 := net.Pipe()
	defer a3.Close()
	defer b3.Close()
	if wrapped := c.Wrap(a3); wrapped != a3 {
		t.Error("wrap past the budget must pass the conn through untouched")
	}
	if c.Remaining() != 0 || c.Injected() != 2 {
		t.Errorf("remaining=%d injected=%d", c.Remaining(), c.Injected())
	}
}
