// Package faultinject corrupts byte streams deterministically so the
// ingest layer's fault tolerance can be tested reproducibly: truncation,
// bit flips, MRT length-field lies, and garbage interleave. Every fault
// is a pure function of the Injector's seed — the same seed over the
// same input always yields the same damaged bytes, across platforms and
// Go versions (the generator is a self-contained splitmix64, not
// math/rand).
//
// All methods copy their input; the original slice is never mutated.
package faultinject

import "encoding/binary"

// Injector is a seeded fault source. The zero value is usable but every
// zero-seeded Injector produces the same faults; use New with distinct
// seeds for distinct damage.
type Injector struct {
	state uint64
}

// New returns an Injector with the given seed.
func New(seed uint64) *Injector { return &Injector{state: seed} }

// next advances the splitmix64 state and returns the next value.
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). n must be positive.
func (in *Injector) intn(n int) int {
	return int(in.next() % uint64(n))
}

// Truncate cuts b at a pseudo-random point in [min(keepAtLeast, len(b)),
// len(b)), modeling a dump whose transfer died mid-record.
func (in *Injector) Truncate(b []byte, keepAtLeast int) []byte {
	if len(b) == 0 {
		return nil
	}
	if keepAtLeast > len(b) {
		keepAtLeast = len(b)
	}
	cut := keepAtLeast
	if span := len(b) - keepAtLeast; span > 0 {
		cut += in.intn(span)
	}
	return append([]byte(nil), b[:cut]...)
}

// FlipBits flips n pseudo-random bits anywhere in b.
func (in *Injector) FlipBits(b []byte, n int) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		out[in.intn(len(out))] ^= 1 << in.intn(8)
	}
	return out
}

// Interleave inserts n runs of up to maxRun garbage bytes at
// pseudo-random offsets, modeling foreign data spliced into an archive.
func (in *Injector) Interleave(b []byte, n, maxRun int) []byte {
	out := append([]byte(nil), b...)
	for i := 0; i < n; i++ {
		runLen := 1 + in.intn(maxRun)
		run := make([]byte, runLen)
		for j := range run {
			run[j] = byte(in.next())
		}
		at := in.intn(len(out) + 1)
		out = append(out[:at:at], append(run, out[at:]...)...)
	}
	return out
}

// mrtHeaderLen is the fixed MRT common header size (RFC 6396 §2): a
// 4-byte timestamp, 2-byte type, 2-byte subtype, 4-byte body length.
const mrtHeaderLen = 12

// mrtRecordOffsets walks the MRT length-prefixed framing of b and
// returns the byte offset of every complete record header.
func mrtRecordOffsets(b []byte) []int {
	var offs []int
	off := 0
	for off+mrtHeaderLen <= len(b) {
		length := int(binary.BigEndian.Uint32(b[off+8:]))
		next := off + mrtHeaderLen + length
		if next > len(b) {
			break
		}
		offs = append(offs, off)
		off = next
	}
	return offs
}

// LieLengths corrupts the length field of up to n pseudo-randomly chosen
// MRT record headers, inflating each by 1..maxLie bytes — the framing
// lie that makes a reader swallow the following records as body.
func (in *Injector) LieLengths(b []byte, n, maxLie int) []byte {
	out := append([]byte(nil), b...)
	offs := mrtRecordOffsets(out)
	if len(offs) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		off := offs[in.intn(len(offs))]
		length := binary.BigEndian.Uint32(out[off+8:])
		binary.BigEndian.PutUint32(out[off+8:], length+uint32(1+in.intn(maxLie)))
	}
	return out
}

// DamageMRT applies the package's full repertoire to an MRT stream: a
// few length lies, a garbage interleave, a burst of bit flips, and a
// trailing truncation. The damage is heavy enough that a lenient reader
// must skip records and a strict reader must fail.
func (in *Injector) DamageMRT(b []byte) []byte {
	out := in.LieLengths(b, 2, 4096)
	out = in.Interleave(out, 3, 64)
	out = in.FlipBits(out, 40)
	return in.Truncate(out, len(out)*9/10)
}
