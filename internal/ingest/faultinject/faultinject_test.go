package faultinject

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// sampleStream builds a fake MRT stream of n records with small bodies —
// enough structure for the framing-aware faults without importing mrt.
func sampleStream(n int) []byte {
	var b []byte
	for i := 0; i < n; i++ {
		var hdr [12]byte
		binary.BigEndian.PutUint32(hdr[0:], 1559692800+uint32(i))
		binary.BigEndian.PutUint16(hdr[4:], 13)
		binary.BigEndian.PutUint16(hdr[6:], 2)
		body := bytes.Repeat([]byte{byte(i)}, 20+i%7)
		binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
		b = append(b, hdr[:]...)
		b = append(b, body...)
	}
	return b
}

func TestDeterministicAcrossRuns(t *testing.T) {
	in1, in2 := New(42), New(42)
	src := sampleStream(50)
	if !bytes.Equal(in1.DamageMRT(src), in2.DamageMRT(src)) {
		t.Error("same seed produced different damage")
	}
	if bytes.Equal(New(1).DamageMRT(src), New(2).DamageMRT(src)) {
		t.Error("different seeds produced identical damage")
	}
}

func TestInputNeverMutated(t *testing.T) {
	src := sampleStream(20)
	orig := append([]byte(nil), src...)
	in := New(7)
	in.Truncate(src, 10)
	in.FlipBits(src, 32)
	in.Interleave(src, 4, 16)
	in.LieLengths(src, 3, 100)
	in.DamageMRT(src)
	if !bytes.Equal(src, orig) {
		t.Error("injector mutated its input")
	}
}

func TestTruncateBounds(t *testing.T) {
	in := New(3)
	src := sampleStream(10)
	for i := 0; i < 100; i++ {
		out := in.Truncate(src, 24)
		if len(out) < 24 || len(out) >= len(src)+1 {
			t.Fatalf("truncate length %d out of [24, %d)", len(out), len(src))
		}
	}
	if got := in.Truncate(nil, 5); got != nil {
		t.Errorf("truncate(nil) = %v", got)
	}
}

func TestFlipBitsChangesExactBits(t *testing.T) {
	in := New(9)
	src := sampleStream(10)
	out := in.FlipBits(src, 5)
	diff := 0
	for i := range src {
		for b := src[i] ^ out[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	// Collisions can cancel flips in pairs, so parity and bound both hold.
	if diff == 0 || diff > 5 {
		t.Errorf("flipped bits = %d", diff)
	}
}

func TestInterleaveGrows(t *testing.T) {
	in := New(11)
	src := sampleStream(5)
	out := in.Interleave(src, 3, 8)
	if len(out) <= len(src) || len(out) > len(src)+3*8 {
		t.Errorf("interleave length %d from %d", len(out), len(src))
	}
}

func TestLieLengthsCorruptsFraming(t *testing.T) {
	in := New(13)
	src := sampleStream(30)
	out := in.LieLengths(src, 2, 64)
	if bytes.Equal(src, out) {
		t.Error("length lie changed nothing")
	}
	if len(out) != len(src) {
		t.Errorf("length lie resized the stream: %d vs %d", len(out), len(src))
	}
	// The walk must see fewer (or shifted) records once a length lies.
	if got, want := len(mrtRecordOffsets(out)), len(mrtRecordOffsets(src)); got >= want {
		t.Errorf("record walk after lie found %d records, want < %d", got, want)
	}
}

func TestRecordWalkStopsAtPartialRecord(t *testing.T) {
	src := sampleStream(4)
	offs := mrtRecordOffsets(src[:len(src)-3])
	if len(offs) != 3 {
		t.Errorf("offsets over truncated stream = %d, want 3", len(offs))
	}
}
