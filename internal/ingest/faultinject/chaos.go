// Chaos connection wrapper: the live-session counterpart of the MRT
// byte-stream damage in this package. A Chaoser wraps net.Conns so
// that each carries one seeded fault — a mid-message reset, a stall
// that ends in a reset, a partial write, or read truncation — and
// after a configured number of faults passes connections through
// untouched, so a supervised session layer can be soaked with N
// deterministic failures and then allowed to converge.
//
// The fault parameters (kind, trigger byte count) are a pure function
// of the seed; the exact byte at which a fault lands may shift with
// goroutine interleaving on a real socket, but the sequence of kinds
// and budgets is reproducible.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// FaultKind enumerates the connection faults a Chaoser injects.
type FaultKind uint8

const (
	// FaultReset closes the transport mid-message.
	FaultReset FaultKind = iota
	// FaultStall blocks the operation for the configured stall
	// duration, then resets — a peer that hangs and dies.
	FaultStall
	// FaultPartialWrite delivers a prefix of the crossing write, then
	// resets — the peer receives a truncated message.
	FaultPartialWrite
	// FaultTruncate cuts the read side: delivered bytes stop short and
	// subsequent reads see EOF, as when a peer's send dies silently.
	FaultTruncate
	numFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultReset:
		return "reset"
	case FaultStall:
		return "stall"
	case FaultPartialWrite:
		return "partial-write"
	case FaultTruncate:
		return "truncate"
	}
	return "unknown"
}

// ErrInjected is the sentinel every injected connection fault wraps;
// errors.Is(err, ErrInjected) distinguishes chaos from real failures.
var ErrInjected = errors.New("faultinject: injected connection fault")

// InjectedFault is the error a chaos connection returns when its
// fault fires.
type InjectedFault struct {
	Kind FaultKind
}

func (e *InjectedFault) Error() string {
	return fmt.Sprintf("faultinject: injected %s", e.Kind)
}

func (e *InjectedFault) Unwrap() error { return ErrInjected }

// Timeout marks stalls as timeout-like so deadline-aware session code
// classifies them the way it classifies a real stalled peer.
func (e *InjectedFault) Timeout() bool { return e.Kind == FaultStall }

// ChaosConfig shapes the injected faults.
type ChaosConfig struct {
	// MinBytes/MaxBytes bound how many bytes a connection carries (in
	// both directions combined) before its fault fires. Defaults 1 and
	// 512.
	MinBytes, MaxBytes int
	// Stall is how long a FaultStall blocks before resetting.
	// Default 10ms — long enough to exercise recovery, short enough
	// for soak tests.
	Stall time.Duration
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.MinBytes <= 0 {
		c.MinBytes = 1
	}
	if c.MaxBytes < c.MinBytes {
		c.MaxBytes = c.MinBytes + 511
	}
	if c.Stall <= 0 {
		c.Stall = 10 * time.Millisecond
	}
	return c
}

// Chaoser hands out chaos-wrapped connections until its fault budget
// is spent, then passes connections through untouched. Safe for
// concurrent use.
type Chaoser struct {
	mu        sync.Mutex
	in        *Injector
	cfg       ChaosConfig
	remaining int
	injected  int
}

// NewChaoser returns a Chaoser seeding its fault schedule from seed,
// with a budget of faults connections to damage.
func NewChaoser(seed uint64, cfg ChaosConfig, faults int) *Chaoser {
	return &Chaoser{in: New(seed), cfg: cfg.withDefaults(), remaining: faults}
}

// Remaining returns how many faults are still to be injected.
func (c *Chaoser) Remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remaining
}

// Injected returns how many chaos connections have been handed out.
func (c *Chaoser) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// Wrap returns conn armed with the next scheduled fault, or conn
// itself once the budget is spent.
func (c *Chaoser) Wrap(conn net.Conn) net.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return conn
	}
	c.remaining--
	c.injected++
	kind := FaultKind(c.in.intn(int(numFaultKinds)))
	budget := c.cfg.MinBytes
	if span := c.cfg.MaxBytes - c.cfg.MinBytes; span > 0 {
		budget += c.in.intn(span + 1)
	}
	return &chaosConn{Conn: conn, kind: kind, budget: budget, stall: c.cfg.Stall}
}

// Dialer wraps a dial function so every dialed connection passes
// through Wrap.
func (c *Chaoser) Dialer(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return c.Wrap(conn), nil
	}
}

// chaosConn carries exactly one scheduled fault. Reads and writes
// drain the shared byte budget; the operation that crosses it fires
// the fault and kills the connection.
type chaosConn struct {
	net.Conn
	mu      sync.Mutex
	kind    FaultKind
	budget  int // bytes remaining before the fault fires
	stall   time.Duration
	tripped bool
}

func (c *chaosConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.tripped {
		kind := c.kind
		c.mu.Unlock()
		if kind == FaultTruncate {
			return 0, io.EOF
		}
		return 0, &InjectedFault{Kind: kind}
	}
	if len(p) <= c.budget {
		c.mu.Unlock()
		got, err := c.Conn.Read(p)
		c.mu.Lock()
		c.budget -= got
		c.mu.Unlock()
		return got, err
	}
	// This read crosses the budget: the fault fires.
	n := c.budget
	c.budget = 0
	c.tripped = true
	kind := c.kind
	c.mu.Unlock()
	if kind == FaultTruncate {
		// Deliver the final budgeted bytes; subsequent reads see EOF.
		if n > 0 {
			return c.Conn.Read(p[:n])
		}
		_ = c.Conn.Close()
		return 0, io.EOF
	}
	if kind == FaultStall {
		time.Sleep(c.stall)
	}
	_ = c.Conn.Close()
	return 0, &InjectedFault{Kind: kind}
}

func (c *chaosConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.tripped {
		kind := c.kind
		c.mu.Unlock()
		return 0, &InjectedFault{Kind: kind}
	}
	if len(p) <= c.budget {
		c.mu.Unlock()
		wrote, err := c.Conn.Write(p)
		c.mu.Lock()
		c.budget -= wrote
		c.mu.Unlock()
		return wrote, err
	}
	// This write crosses the budget: the fault fires.
	n := c.budget
	c.budget = 0
	c.tripped = true
	kind := c.kind
	c.mu.Unlock()
	if kind == FaultStall {
		time.Sleep(c.stall)
	}
	wrote := 0
	if kind == FaultPartialWrite && n > 0 {
		// Forward the budgeted prefix so the peer decodes a truncated
		// message, then die.
		wrote, _ = c.Conn.Write(p[:n])
	}
	_ = c.Conn.Close()
	return wrote, &InjectedFault{Kind: kind}
}

func (c *chaosConn) Close() error { return c.Conn.Close() }
