package ingest

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSourceCountersAndCoverage(t *testing.T) {
	var s Source
	if got := s.Coverage(); got != 1 {
		t.Errorf("untouched coverage = %v", got)
	}
	s.Accept(8)
	s.Skip(Truncated)
	s.Skip(Corrupt)
	if s.Records != 8 || s.Skipped() != 2 {
		t.Errorf("records=%d skipped=%d", s.Records, s.Skipped())
	}
	if got := s.Coverage(); got != 0.8 {
		t.Errorf("coverage = %v", got)
	}
	if s.Clean() {
		t.Error("source with skips reported clean")
	}
	if got := s.Skips.String(); got != "truncated=1 corrupt=1" {
		t.Errorf("skips string = %q", got)
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Add(BadLine)
	b.Add(BadLine)
	b.Add(Unsupported)
	a.Merge(b)
	if a[BadLine] != 2 || a[Unsupported] != 1 || a.Total() != 3 {
		t.Errorf("merged = %v", a)
	}
}

func TestHealthReportDeterministicOrder(t *testing.T) {
	h := NewHealth()
	h.Source("mrt/rv2").Accept(5)
	h.Source("drop/a.txt").Skip(BadLine)
	h.Source("mrt/rv1").Quarantine("skip budget exhausted")

	r := h.Report()
	if len(r.Sources) != 3 {
		t.Fatalf("sources = %d", len(r.Sources))
	}
	for i, want := range []string{"drop/a.txt", "mrt/rv1", "mrt/rv2"} {
		if r.Sources[i].Name != want {
			t.Errorf("source[%d] = %q, want %q", i, r.Sources[i].Name, want)
		}
	}
	if r.TotalRecords != 5 || r.TotalSkipped != 1 {
		t.Errorf("totals = %d/%d", r.TotalRecords, r.TotalSkipped)
	}
	if len(r.Quarantined) != 1 || r.Quarantined[0] != "mrt/rv1" {
		t.Errorf("quarantined = %v", r.Quarantined)
	}
	if r.Clean() {
		t.Error("damaged report claims clean")
	}
	if !(Report{}).Clean() {
		t.Error("zero report should be clean")
	}
}

func TestHealthConcurrentSourceLookup(t *testing.T) {
	h := NewHealth()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := h.Source("mrt/shared-registry-" + string(rune('a'+i%4)))
			_ = src.Name
		}(i)
	}
	wg.Wait()
	if got := len(h.Sources()); got != 4 {
		t.Errorf("distinct sources = %d", got)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	h := NewHealth()
	src := h.Source("mrt/rv3")
	src.Accept(10)
	src.Skip(Corrupt)
	src.Quarantine("too much damage")
	raw, err := json.Marshal(h.Report())
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sources[0].Skips[Corrupt] != 1 || !back.Sources[0].Quarantined {
		t.Errorf("round trip = %+v", back.Sources[0])
	}
}
