// Package ingest tracks the health of the data-loading layer: how many
// records each input source contributed, how many were skipped and why,
// and which sources were quarantined outright. The paper's pipeline runs
// over 33 months of real-world archives where truncated dumps and corrupt
// records are routine; rather than dying on the first bad byte, the
// lenient ingest paths count and classify every skip here so a study can
// complete over damaged inputs and report exactly what it did not see.
//
// A Source is the per-stream accumulator (one MRT collector file, one
// DROP snapshot, one delegated-extended file, ...). A Health groups the
// sources of one study. Counter updates on a Source must come from a
// single goroutine — the loaders give each concurrent worker its own
// Source — while Health's registry is internally locked, so any number
// of workers may look their source up concurrently. Report flattens the
// whole Health into a deterministic, JSON-friendly snapshot.
package ingest

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Reason classifies why one record or line was skipped.
type Reason uint8

// Skip reasons. Truncated marks a record cut off by end of stream;
// Corrupt marks a record whose framing or body failed to decode;
// Unsupported marks a well-framed record of a type the pipeline does not
// carry; BadLine marks an unparseable line of a text format.
const (
	Truncated Reason = iota
	Corrupt
	Unsupported
	BadLine
	numReasons
)

// Reasons lists every skip reason in rendering order.
func Reasons() []Reason { return []Reason{Truncated, Corrupt, Unsupported, BadLine} }

// String names the reason as it appears in reports.
func (r Reason) String() string {
	switch r {
	case Truncated:
		return "truncated"
	case Corrupt:
		return "corrupt"
	case Unsupported:
		return "unsupported"
	case BadLine:
		return "bad-line"
	}
	return "unknown"
}

// Counters holds per-reason skip counts.
type Counters [numReasons]uint64

// Add counts one skip for the reason.
func (c *Counters) Add(r Reason) { c[r]++ }

// Total sums the counts across all reasons.
func (c Counters) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// Merge folds o into c.
func (c *Counters) Merge(o Counters) {
	for i, v := range o {
		c[i] += v
	}
}

// String renders the non-zero counts as "truncated=2 corrupt=5".
func (c Counters) String() string {
	var parts []string
	for _, r := range Reasons() {
		if c[r] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", r, c[r]))
		}
	}
	return strings.Join(parts, " ")
}

// Source accumulates the health of one input stream. Records counts the
// records (or lines) that decoded; Skips counts what was dropped at any
// stage, so a record that decoded but could not be applied appears in
// both. Not safe for concurrent use — each loading goroutine owns its
// Source exclusively.
type Source struct {
	Name        string
	Records     uint64
	Skips       Counters
	Quarantined bool
	Note        string // quarantine reason, empty otherwise

	// Session-level liveness counters, filled by the live collectors
	// and RTR clients rather than the archive loaders. Reconnects
	// counts successful re-establishments after a session failure;
	// StaleRetained counts routes kept across a session loss under
	// graceful-restart semantics; StaleSwept counts retained routes
	// that were never re-announced and were swept by the stale timer
	// or end-of-RIB marker.
	Reconnects    uint64
	StaleRetained uint64
	StaleSwept    uint64

	// Serving-layer resilience counters, filled by the query daemon's
	// admission gate, panic-recovery middleware, and reload
	// supervisor. Shed counts requests rejected with 503 by admission
	// control; Panics counts handler panics contained by the recovery
	// middleware; ReloadRetries counts failed generation-reload
	// attempts the supervisor retried under backoff.
	Shed          uint64
	Panics        uint64
	ReloadRetries uint64
}

// Accept counts n records as successfully ingested.
func (s *Source) Accept(n uint64) { s.Records += n }

// Skip counts one skipped record with its reason.
func (s *Source) Skip(r Reason) { s.Skips.Add(r) }

// Skipped returns the total skips across all reasons.
func (s *Source) Skipped() uint64 { return s.Skips.Total() }

// Coverage returns the fraction of observed records that were ingested:
// Records / (Records + Skipped), and 1 for an untouched source.
func (s *Source) Coverage() float64 {
	total := s.Records + s.Skipped()
	if total == 0 {
		return 1
	}
	return float64(s.Records) / float64(total)
}

// Reconnect counts one successful session re-establishment.
func (s *Source) Reconnect() { s.Reconnects++ }

// RetainStale counts n routes retained across a session loss.
func (s *Source) RetainStale(n uint64) { s.StaleRetained += n }

// SweepStale counts n retained routes swept unrefreshed.
func (s *Source) SweepStale(n uint64) { s.StaleSwept += n }

// CountShed counts n requests rejected by admission control.
func (s *Source) CountShed(n uint64) { s.Shed += n }

// CountPanic counts one contained handler panic.
func (s *Source) CountPanic() { s.Panics++ }

// CountReloadRetry counts one failed, retried reload attempt.
func (s *Source) CountReloadRetry() { s.ReloadRetries++ }

// Quarantine marks the whole source as dropped from the study.
func (s *Source) Quarantine(note string) {
	s.Quarantined = true
	s.Note = note
}

// Clean reports whether the source ingested without skips or quarantine.
func (s *Source) Clean() bool { return s.Skipped() == 0 && !s.Quarantined }

// Health is the per-study accumulator: a registry of named sources.
// Source lookup is internally locked so concurrent loaders may each
// claim their own source; the counters inside a Source are not locked.
type Health struct {
	mu      sync.Mutex
	sources map[string]*Source
}

// NewHealth returns an empty accumulator.
func NewHealth() *Health {
	return &Health{sources: make(map[string]*Source)}
}

// Source returns the named source, creating it on first use. Safe for
// concurrent callers; the returned Source itself is single-goroutine.
func (h *Health) Source(name string) *Source {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sources[name]
	if !ok {
		s = &Source{Name: name}
		h.sources[name] = s
	}
	return s
}

// Sources returns every registered source sorted by name.
func (h *Health) Sources() []*Source {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Source, 0, len(h.sources))
	for _, s := range h.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Report flattens the accumulator into a deterministic snapshot. Call it
// only after every loader has finished writing its sources.
func (h *Health) Report() Report {
	var r Report
	for _, s := range h.Sources() {
		r.TotalRecords += s.Records
		r.TotalSkipped += s.Skipped()
		if s.Quarantined {
			r.Quarantined = append(r.Quarantined, s.Name)
		}
		r.TotalReconnects += s.Reconnects
		sr := SourceReport{
			Name:          s.Name,
			Records:       s.Records,
			Skips:         s.Skips,
			Coverage:      s.Coverage(),
			Quarantined:   s.Quarantined,
			Note:          s.Note,
			Reconnects:    s.Reconnects,
			StaleRetained: s.StaleRetained,
			StaleSwept:    s.StaleSwept,
			Shed:          s.Shed,
			Panics:        s.Panics,
			ReloadRetries: s.ReloadRetries,
		}
		r.Sources = append(r.Sources, sr)
	}
	return r
}

// Report is a flattened Health snapshot: sources in name order, totals,
// and the quarantine list. The zero Report is Clean.
type Report struct {
	Sources         []SourceReport `json:"sources,omitempty"`
	TotalRecords    uint64         `json:"total_records"`
	TotalSkipped    uint64         `json:"total_skipped"`
	TotalReconnects uint64         `json:"total_reconnects,omitempty"`
	Quarantined     []string       `json:"quarantined,omitempty"`
}

// SourceReport is one source's flattened state.
type SourceReport struct {
	Name          string   `json:"name"`
	Records       uint64   `json:"records"`
	Skips         Counters `json:"skips"`
	Coverage      float64  `json:"coverage"`
	Quarantined   bool     `json:"quarantined,omitempty"`
	Note          string   `json:"note,omitempty"`
	Reconnects    uint64   `json:"reconnects,omitempty"`
	StaleRetained uint64   `json:"stale_retained,omitempty"`
	StaleSwept    uint64   `json:"stale_swept,omitempty"`
	Shed          uint64   `json:"shed,omitempty"`
	Panics        uint64   `json:"panics,omitempty"`
	ReloadRetries uint64   `json:"reload_retries,omitempty"`
}

// Clean reports whether nothing was skipped and nothing quarantined —
// the report of a study over undamaged inputs.
func (r Report) Clean() bool {
	return r.TotalSkipped == 0 && len(r.Quarantined) == 0
}

// Options selects the ingest mode of a file-based load.
type Options struct {
	// Strict restores fail-fast loading: the first malformed byte of any
	// input aborts with a record-index and byte-offset error.
	Strict bool
	// MaxSkip is the per-collector skipped-record budget in lenient mode:
	// a collector whose stream skips more than MaxSkip records is
	// quarantined and the study proceeds on the survivors.
	MaxSkip int
}

// DefaultMaxSkip is the per-collector skip budget lenient loads use when
// the caller does not choose one.
const DefaultMaxSkip = 100
