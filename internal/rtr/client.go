package rtr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/netx"
	"dropscope/internal/rpki"
	"dropscope/internal/session"
)

// CacheError is an RTR Error Report PDU received from the cache,
// surfaced as a typed error so callers can branch on the code — the
// timer state machine downgrades to a cache reset on
// ErrNoDataAvailable instead of dying.
type CacheError struct {
	Code uint16
	Text string
}

func (e *CacheError) Error() string {
	return fmt.Sprintf("rtr: cache error %d: %s", e.Code, e.Text)
}

// Client performs RTR synchronization against a cache.
type Client struct {
	conn io.ReadWriter

	SessionID uint16
	Serial    uint32
	VRPs      []VRP

	// Refresh/Retry/Expire are the timer intervals (seconds) from the
	// most recent End Of Data; zero until one arrives.
	Refresh, Retry, Expire uint32
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriter) *Client { return &Client{conn: conn} }

// readPDU reads the next PDU, transparently consuming Serial Notify —
// a cache may push notifies at any time (RFC 8210 §5.2) and they must
// not desynchronize a query/response exchange in flight.
func (c *Client) readPDU() (PDU, error) {
	for {
		pdu, err := ReadPDU(c.conn)
		if err != nil {
			return nil, err
		}
		if _, ok := pdu.(*SerialNotify); ok {
			continue
		}
		return pdu, nil
	}
}

// Reset performs a Reset Query and collects the full VRP set.
func (c *Client) Reset() error {
	if err := WritePDU(c.conn, &ResetQuery{}); err != nil {
		return err
	}
	return c.collect(true)
}

// Poll performs a Serial Query with the client's current serial. If the
// cache answers Cache Reset, Poll falls back to a full Reset.
func (c *Client) Poll() error {
	if err := WritePDU(c.conn, &SerialQuery{SessionID: c.SessionID, Serial: c.Serial}); err != nil {
		return err
	}
	pdu, err := c.readPDU()
	if err != nil {
		return err
	}
	switch p := pdu.(type) {
	case *CacheReset:
		return c.Reset()
	case *CacheResponse:
		c.SessionID = p.SessionID
		return c.collectBody(false)
	case *ErrorReport:
		return &CacheError{Code: p.Code, Text: p.Text}
	default:
		return fmt.Errorf("rtr: unexpected %T to serial query", pdu)
	}
}

func (c *Client) collect(reset bool) error {
	pdu, err := c.readPDU()
	if err != nil {
		return err
	}
	cr, ok := pdu.(*CacheResponse)
	if !ok {
		if er, isErr := pdu.(*ErrorReport); isErr {
			return &CacheError{Code: er.Code, Text: er.Text}
		}
		return fmt.Errorf("rtr: expected cache response, got %T", pdu)
	}
	c.SessionID = cr.SessionID
	return c.collectBody(reset)
}

func (c *Client) collectBody(reset bool) error {
	if reset {
		c.VRPs = c.VRPs[:0]
	}
	for {
		pdu, err := c.readPDU()
		if err != nil {
			return err
		}
		switch p := pdu.(type) {
		case *IPv4Prefix:
			if p.Announce {
				c.VRPs = append(c.VRPs, p.VRP)
			} else {
				c.VRPs = removeVRP(c.VRPs, p.VRP)
			}
		case *EndOfData:
			c.Serial = p.Serial
			c.Refresh, c.Retry, c.Expire = p.Refresh, p.Retry, p.Expire
			return nil
		case *ErrorReport:
			return &CacheError{Code: p.Code, Text: p.Text}
		default:
			return fmt.Errorf("rtr: unexpected %T in data stream", pdu)
		}
	}
}

func removeVRP(vrps []VRP, v VRP) []VRP {
	out := vrps[:0]
	for _, x := range vrps {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// Validate runs RFC 6811 origin validation of (prefix, origin) against
// the client's current VRP set.
func (c *Client) Validate(p VRPQuery) rpki.Validity {
	return validate(c.VRPs, p)
}

func validate(vrps []VRP, p VRPQuery) rpki.Validity {
	roas := make([]rpki.ROA, 0, 8)
	for _, v := range vrps {
		if v.Prefix.Covers(p.Prefix) {
			roas = append(roas, rpki.ROA{Prefix: v.Prefix, MaxLength: v.MaxLength, ASN: v.ASN})
		}
	}
	return rpki.Validate(p.Prefix, p.Origin, roas)
}

// VRPQuery is one announcement to validate.
type VRPQuery struct {
	Prefix netx.Prefix
	Origin bgp.ASN
}

// RFC 8210 §6 bounds on the EOD intervals; values outside are clamped.
const (
	minRefresh, maxRefresh = 1, 86400
	minRetry, maxRetry     = 1, 7200
	minExpire, maxExpire   = 600, 172800
)

func clampSeconds(v uint32, lo, hi uint32) time.Duration {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return time.Duration(v) * time.Second
}

// ClientConfig parameterizes a supervised ClientSession.
type ClientConfig struct {
	// Dial establishes the transport to the cache.
	Dial func(ctx context.Context) (net.Conn, error)
	// Clock drives the refresh/retry/expire timers; nil uses the real
	// clock. Tests inject session.FakeClock.
	Clock session.Clock
	// Refresh/Retry/Expire are the intervals used before the first End
	// Of Data announces the cache's own; zero values default to the
	// RFC 8210 suggestions (3600s/600s/7200s).
	Refresh, Retry, Expire time.Duration
	// IOTimeout bounds each synchronization exchange on transports
	// with deadline support; zero means 30s.
	IOTimeout time.Duration
	// Health, when non-nil, receives session-level reconnect counters.
	Health *ingest.Source
}

// ClientStats counts the state machine's transitions.
type ClientStats struct {
	Syncs          uint64 // successful Reset/Poll synchronizations
	FallbackResets uint64 // incremental Poll downgraded to full Reset
	Reconnects     uint64 // successful syncs after a connection loss
	DialFailures   uint64
	Expirations    uint64 // data aged out past the Expire interval
}

// ClientSession is the RFC 8210 §6 timer state machine around Client:
// it keeps a router's VRP view synchronized with a cache for as long
// as the context lives, honoring the cache's Refresh/Retry/Expire
// intervals, downgrading from incremental to full cache reset when
// the cache loses the session's history or data (ErrNoDataAvailable),
// and — when the cache stays unreachable past Expire — discarding the
// VRP set so Validate degrades to NotFound for every query rather
// than answering from stale data (the failure mode a deliberately
// stalled cache, per Stalloris, would otherwise induce).
type ClientSession struct {
	cfg   ClientConfig
	clock session.Clock

	mu        sync.Mutex
	vrps      []VRP
	sessionID uint16
	serial    uint32
	haveData  bool
	wasDown   bool
	lastSync  time.Time
	refresh   time.Duration
	retry     time.Duration
	expire    time.Duration
	stats     ClientStats
}

// NewClientSession returns an unstarted session; Run drives it.
func NewClientSession(cfg ClientConfig) *ClientSession {
	clock := cfg.Clock
	if clock == nil {
		clock = session.Real()
	}
	cs := &ClientSession{cfg: cfg, clock: clock}
	cs.refresh = cfg.Refresh
	if cs.refresh <= 0 {
		cs.refresh = time.Duration(DefaultIntervals.Refresh) * time.Second
	}
	cs.retry = cfg.Retry
	if cs.retry <= 0 {
		cs.retry = time.Duration(DefaultIntervals.Retry) * time.Second
	}
	cs.expire = cfg.Expire
	if cs.expire <= 0 {
		cs.expire = time.Duration(DefaultIntervals.Expire) * time.Second
	}
	if cs.cfg.IOTimeout <= 0 {
		cs.cfg.IOTimeout = 30 * time.Second
	}
	return cs
}

// Run executes the timer state machine until ctx ends.
func (cs *ClientSession) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := cs.cfg.Dial(ctx)
		if err != nil {
			cs.mu.Lock()
			cs.stats.DialFailures++
			cs.mu.Unlock()
		} else {
			cs.syncLoop(ctx, conn)
			conn.Close()
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := cs.waitRetry(ctx); err != nil {
			return err
		}
	}
}

// syncLoop synchronizes over one connection until it fails: an
// initial Reset (or incremental Poll when state survives from the
// previous connection), then a Poll every Refresh interval.
func (cs *ClientSession) syncLoop(ctx context.Context, conn net.Conn) {
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	c := NewClient(conn)
	cs.mu.Lock()
	c.SessionID, c.Serial = cs.sessionID, cs.serial
	c.VRPs = append([]VRP(nil), cs.vrps...)
	incremental := cs.haveData
	cs.mu.Unlock()

	sync := func(incremental bool) error {
		cs.armIODeadline(conn)
		var err error
		if incremental {
			err = c.Poll()
		} else {
			err = c.Reset()
		}
		var ce *CacheError
		if incremental && errors.As(err, &ce) {
			// The cache answered but cannot serve the incremental
			// query — ErrNoDataAvailable after a cache restart, or a
			// session mismatch. Downgrade to a full cache reset.
			cs.mu.Lock()
			cs.stats.FallbackResets++
			cs.mu.Unlock()
			cs.armIODeadline(conn)
			err = c.Reset()
		}
		return err
	}

	if sync(incremental) != nil {
		return
	}
	cs.publish(c)
	t := cs.clock.NewTimer(cs.refreshInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C():
		}
		if sync(true) != nil {
			return
		}
		cs.publish(c)
		t.Reset(cs.refreshInterval())
	}
}

// armIODeadline bounds the next exchange on deadline-capable conns.
func (cs *ClientSession) armIODeadline(conn net.Conn) {
	deadline := time.Now().Add(cs.cfg.IOTimeout)
	netx.SetReadDeadline(conn, deadline)
	netx.SetWriteDeadline(conn, deadline)
}

// publish installs a completed synchronization as the current view.
func (cs *ClientSession) publish(c *Client) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.vrps = append(cs.vrps[:0:0], c.VRPs...)
	cs.sessionID, cs.serial = c.SessionID, c.Serial
	if c.Expire > 0 { // an EOD arrived: honor the cache's intervals
		cs.refresh = clampSeconds(c.Refresh, minRefresh, maxRefresh)
		cs.retry = clampSeconds(c.Retry, minRetry, maxRetry)
		cs.expire = clampSeconds(c.Expire, minExpire, maxExpire)
	}
	cs.lastSync = cs.clock.Now()
	cs.haveData = true
	cs.stats.Syncs++
	if cs.wasDown {
		cs.wasDown = false
		cs.stats.Reconnects++
		if cs.cfg.Health != nil {
			cs.cfg.Health.Reconnect()
		}
	}
}

func (cs *ClientSession) refreshInterval() time.Duration {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.refresh
}

// waitRetry parks the state machine for the Retry interval (or until
// the expire deadline, whichever is sooner) after a failed or lost
// connection, then applies expiry.
func (cs *ClientSession) waitRetry(ctx context.Context) error {
	cs.mu.Lock()
	cs.wasDown = true
	wait := cs.retry
	if cs.haveData {
		if rem := cs.lastSync.Add(cs.expire).Sub(cs.clock.Now()); rem > 0 && rem < wait {
			wait = rem
		}
	}
	cs.mu.Unlock()
	t := cs.clock.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C():
	}
	cs.checkExpire()
	return nil
}

// checkExpire discards the VRP set once it has aged past Expire.
func (cs *ClientSession) checkExpire() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.expiredLocked() {
		cs.vrps = nil
		cs.haveData = false
		cs.stats.Expirations++
	}
}

// expiredLocked reports whether the data is past its Expire deadline.
func (cs *ClientSession) expiredLocked() bool {
	return cs.haveData && !cs.clock.Now().Before(cs.lastSync.Add(cs.expire))
}

// Validate runs RFC 6811 origin validation against the session's
// current view. Expiry is enforced here as well as in the run loop:
// once the cache has been unreachable past Expire, every query is
// NotFound — never a Valid or Invalid derived from stale VRPs.
func (cs *ClientSession) Validate(q VRPQuery) rpki.Validity {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if !cs.haveData || cs.expiredLocked() {
		return rpki.NotFound
	}
	return validate(cs.vrps, q)
}

// VRPs returns a copy of the current (unexpired) VRP set.
func (cs *ClientSession) VRPs() []VRP {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if !cs.haveData || cs.expiredLocked() {
		return nil
	}
	return append([]VRP(nil), cs.vrps...)
}

// Serial returns the last synchronized serial.
func (cs *ClientSession) Serial() uint32 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.serial
}

// Stats snapshots the state-machine counters.
func (cs *ClientSession) Stats() ClientStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.stats
}
