package rtr

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"dropscope/internal/rpki"
	"dropscope/internal/timex"
)

// Server serves VRPs from an rpki.Archive snapshot over the RTR protocol.
// It answers Reset Query with the full data set and Serial Query with an
// incremental delta when the requested serial is within its retained
// history (maxDeltas versions), falling back to Cache Reset otherwise.
type Server struct {
	mu        sync.Mutex
	sessionID uint16
	serial    uint32
	vrps      []VRP
	deltas    []delta // oldest first; deltas[i] upgrades serial-1 -> serial
	intervals Intervals

	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// delta records one Update's changes.
type delta struct {
	serial    uint32 // the serial this delta produces
	announced []VRP
	withdrawn []VRP
}

// maxDeltas bounds the retained incremental history.
const maxDeltas = 8

// Intervals are the router timer intervals a cache advertises in End
// Of Data (RFC 8210 §5.8), in seconds.
type Intervals struct {
	Refresh, Retry, Expire uint32
}

// DefaultIntervals are the RFC 8210 suggested values.
var DefaultIntervals = Intervals{Refresh: 3600, Retry: 600, Expire: 7200}

// SnapshotVRPs flattens the archive's live ROAs on day d under the given
// trust anchors into deduplicated, deterministic VRPs. AS0 ROAs are
// included: a router applying them rejects covered announcements.
func SnapshotVRPs(a *rpki.Archive, d timex.Day, tals []rpki.TrustAnchor) []VRP {
	seen := make(map[VRP]bool)
	var out []VRP
	for _, roa := range a.LiveAt(d, tals) {
		v := VRP{Prefix: roa.Prefix, MaxLength: roa.MaxLength, ASN: roa.ASN}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Prefix.Compare(out[j].Prefix); c != 0 {
			return c < 0
		}
		if out[i].MaxLength != out[j].MaxLength {
			return out[i].MaxLength < out[j].MaxLength
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// NewServer returns a server initialized with the given VRP set and
// the default RFC 8210 timer intervals.
func NewServer(sessionID uint16, vrps []VRP) *Server {
	return &Server{sessionID: sessionID, serial: 1, vrps: vrps, intervals: DefaultIntervals}
}

// SetIntervals replaces the Refresh/Retry/Expire intervals advertised
// in every subsequent End Of Data.
func (s *Server) SetIntervals(iv Intervals) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intervals = iv
}

// Update replaces the VRP set and bumps the serial, as a validator does
// on each validation run. The diff against the previous set is retained
// so routers at recent serials receive incremental updates.
func (s *Server) Update(vrps []VRP) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := make(map[VRP]bool, len(s.vrps))
	for _, v := range s.vrps {
		old[v] = true
	}
	cur := make(map[VRP]bool, len(vrps))
	for _, v := range vrps {
		cur[v] = true
	}
	var d delta
	for _, v := range vrps {
		if !old[v] {
			d.announced = append(d.announced, v)
		}
	}
	for _, v := range s.vrps {
		if !cur[v] {
			d.withdrawn = append(d.withdrawn, v)
		}
	}
	s.vrps = vrps
	s.serial++
	d.serial = s.serial
	s.deltas = append(s.deltas, d)
	if len(s.deltas) > maxDeltas {
		s.deltas = s.deltas[len(s.deltas)-maxDeltas:]
	}
}

// Serial returns the current serial number.
func (s *Server) Serial() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serial
}

// Serve accepts connections on ln until Close. It returns the first
// accept error after Close (net.ErrClosed), which callers may ignore.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			_ = s.HandleConn(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// HandleConn runs the protocol on one established connection until the
// peer disconnects or errors. Exported so tests can drive it over
// net.Pipe.
func (s *Server) HandleConn(conn io.ReadWriter) error {
	for {
		pdu, err := ReadPDU(conn)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			_ = WritePDU(conn, &ErrorReport{Code: ErrCorruptData, Text: err.Error()})
			return err
		}
		switch q := pdu.(type) {
		case *ResetQuery:
			if err := s.sendAll(conn); err != nil {
				return err
			}
		case *SerialQuery:
			s.mu.Lock()
			current := s.serial
			session := s.sessionID
			s.mu.Unlock()
			if q.SessionID != session {
				if err := WritePDU(conn, &ErrorReport{Code: ErrCorruptData, Text: "session mismatch"}); err != nil {
					return err
				}
				continue
			}
			if q.Serial == current {
				// Up to date: empty delta.
				if err := WritePDU(conn, &CacheResponse{SessionID: session}); err != nil {
					return err
				}
				if err := s.sendEOD(conn); err != nil {
					return err
				}
			} else if ann, wd, ok := s.deltasSince(q.Serial); ok {
				// Within retained history: incremental update.
				if err := WritePDU(conn, &CacheResponse{SessionID: session}); err != nil {
					return err
				}
				for _, v := range wd {
					if err := WritePDU(conn, &IPv4Prefix{Announce: false, VRP: v}); err != nil {
						return err
					}
				}
				for _, v := range ann {
					if err := WritePDU(conn, &IPv4Prefix{Announce: true, VRP: v}); err != nil {
						return err
					}
				}
				if err := s.sendEOD(conn); err != nil {
					return err
				}
			} else {
				// Serial older than the retained history: force a reset.
				if err := WritePDU(conn, &CacheReset{}); err != nil {
					return err
				}
			}
		case *ErrorReport:
			return fmt.Errorf("rtr: peer error %d: %s", q.Code, q.Text)
		default:
			if err := WritePDU(conn, &ErrorReport{Code: ErrUnsupportedPDUType,
				Text: fmt.Sprintf("unexpected %T", pdu)}); err != nil {
				return err
			}
		}
	}
}

// deltasSince coalesces the retained deltas from the given serial to the
// current one. It reports false when the serial predates the history.
// Changes that cancel out across versions (announced then withdrawn) are
// elided. All comparisons use RFC 1982 serial arithmetic (SerialBefore)
// so sessions survive uint32 serial wraparound.
func (s *Server) deltasSince(serial uint32) (announced, withdrawn []VRP, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.deltas) == 0 || SerialBefore(serial, s.deltas[0].serial-1) || SerialBefore(s.serial, serial) {
		return nil, nil, false
	}
	state := make(map[VRP]int) // +1 announced, -1 withdrawn
	for _, d := range s.deltas {
		if !SerialBefore(serial, d.serial) {
			continue
		}
		for _, v := range d.announced {
			state[v]++
		}
		for _, v := range d.withdrawn {
			state[v]--
		}
	}
	for v, n := range state {
		switch {
		case n > 0:
			announced = append(announced, v)
		case n < 0:
			withdrawn = append(withdrawn, v)
		}
	}
	sortVRPs(announced)
	sortVRPs(withdrawn)
	return announced, withdrawn, true
}

func sortVRPs(vrps []VRP) {
	sort.Slice(vrps, func(i, j int) bool {
		if c := vrps[i].Prefix.Compare(vrps[j].Prefix); c != 0 {
			return c < 0
		}
		if vrps[i].MaxLength != vrps[j].MaxLength {
			return vrps[i].MaxLength < vrps[j].MaxLength
		}
		return vrps[i].ASN < vrps[j].ASN
	})
}

func (s *Server) sendAll(w io.Writer) error {
	s.mu.Lock()
	vrps := s.vrps
	session := s.sessionID
	s.mu.Unlock()
	if err := WritePDU(w, &CacheResponse{SessionID: session}); err != nil {
		return err
	}
	for _, v := range vrps {
		if err := WritePDU(w, &IPv4Prefix{Announce: true, VRP: v}); err != nil {
			return err
		}
	}
	return s.sendEOD(w)
}

func (s *Server) sendEOD(w io.Writer) error {
	s.mu.Lock()
	eod := &EndOfData{
		SessionID: s.sessionID, Serial: s.serial,
		Refresh: s.intervals.Refresh, Retry: s.intervals.Retry, Expire: s.intervals.Expire,
	}
	s.mu.Unlock()
	return WritePDU(w, eod)
}
