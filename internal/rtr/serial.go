package rtr

// SerialBefore reports s1 < s2 in RFC 1982 serial-number arithmetic
// (SERIAL_BITS = 32), the comparison RFC 8210 §5.9 prescribes for RTR
// serial numbers. A cache that has been bumping its serial for years
// wraps uint32; plain integer comparison would then either replay the
// whole history to an up-to-date router or drop deltas it still has.
// Note RFC 1982 leaves s1 != s2 with s2-s1 == 2^31 undefined; this
// implementation reports false for both orderings of such a pair,
// which deltasSince treats as "outside retained history" — a safe
// cache reset.
func SerialBefore(s1, s2 uint32) bool {
	return s1 != s2 &&
		((s1 < s2 && s2-s1 < 1<<31) ||
			(s1 > s2 && s1-s2 > 1<<31))
}
