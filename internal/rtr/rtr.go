// Package rtr implements the RPKI-to-Router protocol (RFC 8210, version
// 1) for IPv4 prefixes: the PDU wire format, a Server that feeds
// validated ROA payloads (VRPs) from an rpki.Archive snapshot to routers,
// and a Client that performs the synchronization handshake. This is the
// deployment mechanism for the route origin validation the paper
// evaluates — operators run exactly this protocol between validator and
// router.
package rtr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
)

// Protocol version implemented (RFC 8210).
const Version = 1

// PDU type codes.
const (
	TypeSerialNotify  = 0
	TypeSerialQuery   = 1
	TypeResetQuery    = 2
	TypeCacheResponse = 3
	TypeIPv4Prefix    = 4
	TypeEndOfData     = 7
	TypeCacheReset    = 8
	TypeErrorReport   = 10
)

// Error codes from RFC 8210 §12.
const (
	ErrCorruptData        = 0
	ErrInternalError      = 1
	ErrNoDataAvailable    = 2
	ErrInvalidRequest     = 3
	ErrUnsupportedVersion = 4
	ErrUnsupportedPDUType = 5
)

// VRP is a validated ROA payload: the (prefix, maxLength, ASN) triple a
// router uses for origin validation.
type VRP struct {
	Prefix    netx.Prefix
	MaxLength int
	ASN       bgp.ASN
}

// Announce/withdraw flag in the IPv4 Prefix PDU.
const (
	flagWithdraw = 0
	flagAnnounce = 1
)

// PDU is any protocol data unit.
type PDU interface {
	write(w io.Writer) error
	pduType() byte
}

// SerialNotify tells the router new data is available.
type SerialNotify struct {
	SessionID uint16
	Serial    uint32
}

// SerialQuery asks for the delta since Serial.
type SerialQuery struct {
	SessionID uint16
	Serial    uint32
}

// ResetQuery asks for the complete data set.
type ResetQuery struct{}

// CacheResponse opens a data stream.
type CacheResponse struct {
	SessionID uint16
}

// IPv4Prefix carries one VRP announce or withdraw.
type IPv4Prefix struct {
	Announce bool
	VRP      VRP
}

// EndOfData closes a data stream.
type EndOfData struct {
	SessionID uint16
	Serial    uint32
	// Refresh/Retry/Expire intervals in seconds (RFC 8210 §5.8).
	Refresh, Retry, Expire uint32
}

// CacheReset tells the router to fall back to a reset query.
type CacheReset struct{}

// ErrorReport carries a protocol error.
type ErrorReport struct {
	Code uint16
	Text string
}

func (p *SerialNotify) pduType() byte  { return TypeSerialNotify }
func (p *SerialQuery) pduType() byte   { return TypeSerialQuery }
func (p *ResetQuery) pduType() byte    { return TypeResetQuery }
func (p *CacheResponse) pduType() byte { return TypeCacheResponse }
func (p *IPv4Prefix) pduType() byte    { return TypeIPv4Prefix }
func (p *EndOfData) pduType() byte     { return TypeEndOfData }
func (p *CacheReset) pduType() byte    { return TypeCacheReset }
func (p *ErrorReport) pduType() byte   { return TypeErrorReport }

// header writes the 8-byte common PDU header.
func header(w io.Writer, typ byte, sessionOrZero uint16, length uint32) error {
	var h [8]byte
	h[0] = Version
	h[1] = typ
	binary.BigEndian.PutUint16(h[2:], sessionOrZero)
	binary.BigEndian.PutUint32(h[4:], length)
	_, err := w.Write(h[:])
	return err
}

func (p *SerialNotify) write(w io.Writer) error {
	if err := header(w, TypeSerialNotify, p.SessionID, 12); err != nil {
		return err
	}
	return writeU32(w, p.Serial)
}

func (p *SerialQuery) write(w io.Writer) error {
	if err := header(w, TypeSerialQuery, p.SessionID, 12); err != nil {
		return err
	}
	return writeU32(w, p.Serial)
}

func (p *ResetQuery) write(w io.Writer) error {
	return header(w, TypeResetQuery, 0, 8)
}

func (p *CacheResponse) write(w io.Writer) error {
	return header(w, TypeCacheResponse, p.SessionID, 8)
}

func (p *IPv4Prefix) write(w io.Writer) error {
	if err := header(w, TypeIPv4Prefix, 0, 20); err != nil {
		return err
	}
	var b [12]byte
	if p.Announce {
		b[0] = flagAnnounce
	}
	b[1] = byte(p.VRP.Prefix.Bits())
	b[2] = byte(p.VRP.MaxLength)
	binary.BigEndian.PutUint32(b[4:], uint32(p.VRP.Prefix.Addr()))
	binary.BigEndian.PutUint32(b[8:], uint32(p.VRP.ASN))
	_, err := w.Write(b[:])
	return err
}

func (p *EndOfData) write(w io.Writer) error {
	if err := header(w, TypeEndOfData, p.SessionID, 24); err != nil {
		return err
	}
	for _, v := range []uint32{p.Serial, p.Refresh, p.Retry, p.Expire} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	return nil
}

func (p *CacheReset) write(w io.Writer) error {
	return header(w, TypeCacheReset, 0, 8)
}

func (p *ErrorReport) write(w io.Writer) error {
	// Error Report: 4-byte encapsulated-PDU length (0), then 4-byte text
	// length and the text.
	total := uint32(8 + 4 + 4 + len(p.Text))
	if err := header(w, TypeErrorReport, p.Code, total); err != nil {
		return err
	}
	if err := writeU32(w, 0); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(p.Text))); err != nil {
		return err
	}
	_, err := io.WriteString(w, p.Text)
	return err
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// WritePDU serializes one PDU.
func WritePDU(w io.Writer, p PDU) error { return p.write(w) }

// Decode errors.
var (
	ErrTruncated  = errors.New("rtr: truncated PDU")
	ErrBadVersion = errors.New("rtr: unsupported protocol version")
)

// ReadPDU reads and decodes one PDU.
func ReadPDU(r io.Reader) (PDU, error) {
	var h [8]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if h[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, h[0])
	}
	typ := h[1]
	session := binary.BigEndian.Uint16(h[2:])
	length := binary.BigEndian.Uint32(h[4:])
	if length < 8 || length > 1<<16 {
		return nil, fmt.Errorf("rtr: implausible PDU length %d", length)
	}
	body := make([]byte, length-8)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrTruncated, err)
	}

	switch typ {
	case TypeSerialNotify, TypeSerialQuery:
		if len(body) != 4 {
			return nil, fmt.Errorf("rtr: serial PDU length %d", len(body))
		}
		serial := binary.BigEndian.Uint32(body)
		if typ == TypeSerialNotify {
			return &SerialNotify{SessionID: session, Serial: serial}, nil
		}
		return &SerialQuery{SessionID: session, Serial: serial}, nil
	case TypeResetQuery:
		return &ResetQuery{}, nil
	case TypeCacheResponse:
		return &CacheResponse{SessionID: session}, nil
	case TypeIPv4Prefix:
		if len(body) != 12 {
			return nil, fmt.Errorf("rtr: ipv4 prefix PDU length %d", len(body))
		}
		bits, maxLen := int(body[1]), int(body[2])
		if bits > 32 || maxLen > 32 || maxLen < bits {
			return nil, fmt.Errorf("rtr: bad prefix lengths %d/%d", bits, maxLen)
		}
		addr := netx.Addr(binary.BigEndian.Uint32(body[4:]))
		p := netx.PrefixFrom(addr, bits)
		if p.Addr() != addr {
			return nil, fmt.Errorf("rtr: prefix %s has host bits", p)
		}
		return &IPv4Prefix{
			Announce: body[0]&flagAnnounce != 0,
			VRP: VRP{
				Prefix:    p,
				MaxLength: maxLen,
				ASN:       bgp.ASN(binary.BigEndian.Uint32(body[8:])),
			},
		}, nil
	case TypeEndOfData:
		if len(body) != 16 {
			return nil, fmt.Errorf("rtr: end of data PDU length %d", len(body))
		}
		return &EndOfData{
			SessionID: session,
			Serial:    binary.BigEndian.Uint32(body),
			Refresh:   binary.BigEndian.Uint32(body[4:]),
			Retry:     binary.BigEndian.Uint32(body[8:]),
			Expire:    binary.BigEndian.Uint32(body[12:]),
		}, nil
	case TypeCacheReset:
		return &CacheReset{}, nil
	case TypeErrorReport:
		if len(body) < 8 {
			return nil, fmt.Errorf("rtr: error report PDU length %d", len(body))
		}
		// All length arithmetic in uint64 to rule out 32-bit wraparound on
		// adversarial values.
		encLen := uint64(binary.BigEndian.Uint32(body))
		if 4+encLen+4 > uint64(len(body)) {
			return nil, fmt.Errorf("rtr: error report lengths inconsistent")
		}
		txtOff := 4 + encLen
		txtLen := uint64(binary.BigEndian.Uint32(body[txtOff:]))
		if txtOff+4+txtLen > uint64(len(body)) {
			return nil, fmt.Errorf("rtr: error report text overruns")
		}
		return &ErrorReport{
			Code: session,
			Text: string(body[txtOff+4 : txtOff+4+txtLen]),
		}, nil
	default:
		return nil, fmt.Errorf("rtr: unsupported PDU type %d", typ)
	}
}
