package rtr

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dropscope/internal/netx"
	"dropscope/internal/rpki"
	"dropscope/internal/session"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSerialBefore(t *testing.T) {
	cases := []struct {
		s1, s2 uint32
		want   bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{0xFFFFFFFF, 0, true}, // wraparound: 0 is one after max
		{0, 0xFFFFFFFF, false},
		{0xFFFFFFFE, 2, true},
		{2, 0xFFFFFFFE, false},
		{0, 1 << 31, false}, // RFC 1982 undefined pair: false both ways
		{1 << 31, 0, false},
	}
	for _, c := range cases {
		if got := SerialBefore(c.s1, c.s2); got != c.want {
			t.Errorf("SerialBefore(%#x, %#x) = %v, want %v", c.s1, c.s2, got, c.want)
		}
	}
}

// TestPollSurvivesSerialWraparound pins the RFC 1982 comparison end to
// end: a cache whose serial wraps past 0xFFFFFFFF must still serve an
// incremental delta to a router at a pre-wrap serial, not force a cache
// reset (or, worse with plain comparisons, replay nothing at all).
func TestPollSurvivesSerialWraparound(t *testing.T) {
	srv := NewServer(7, sampleVRPs())
	srv.mu.Lock()
	srv.serial = 0xFFFFFFFE
	srv.mu.Unlock()

	extra1 := VRP{Prefix: netx.MustParsePrefix("198.51.100.0/24"), MaxLength: 24, ASN: 64501}
	extra2 := VRP{Prefix: netx.MustParsePrefix("203.0.113.0/24"), MaxLength: 24, ASN: 64502}
	srv.Update(append(sampleVRPs(), extra1))         // serial 0xFFFFFFFF
	srv.Update(append(sampleVRPs(), extra1, extra2)) // serial wraps to 0

	if got := srv.Serial(); got != 0 {
		t.Fatalf("server serial = %#x, want wrapped 0", got)
	}

	client, server := net.Pipe()
	defer client.Close()
	go func() { _ = srv.HandleConn(server) }()

	// An empty starting VRP set distinguishes the two outcomes: an
	// incremental poll applies only the two announced deltas, a full
	// reset would deliver all five VRPs.
	c := NewClient(client)
	c.SessionID = 7
	c.Serial = 0xFFFFFFFE
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial != 0 {
		t.Errorf("client serial = %#x, want 0", c.Serial)
	}
	if len(c.VRPs) != 2 {
		t.Fatalf("got %d VRPs, want 2 incremental announcements (a reset would deliver %d)",
			len(c.VRPs), len(sampleVRPs())+2)
	}
}

// dialer hands out pipes to a live server until the cache is killed.
type dialer struct {
	mu      sync.Mutex
	srv     *Server
	dead    bool
	handoff net.Conn // when set, the next dial returns it once
	conns   []net.Conn
}

func (d *dialer) dial(ctx context.Context) (net.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.handoff != nil {
		c := d.handoff
		d.handoff = nil
		return c, nil
	}
	if d.dead {
		return nil, errors.New("cache unreachable")
	}
	client, server := net.Pipe()
	d.conns = append(d.conns, client, server)
	srv := d.srv
	go func() { _ = srv.HandleConn(server) }()
	return client, nil
}

// kill makes future dials fail and severs every live connection.
func (d *dialer) kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dead = true
	for _, c := range d.conns {
		c.Close()
	}
}

func TestClientSessionRefreshPolls(t *testing.T) {
	srv := NewServer(7, sampleVRPs())
	d := &dialer{srv: srv}
	defer d.kill()
	fake := session.NewFake(time.Unix(1_600_000_000, 0))
	cs := NewClientSession(ClientConfig{Dial: d.dial, Clock: fake})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cs.Run(ctx) }()

	waitFor(t, "initial sync", func() bool { return cs.Stats().Syncs >= 1 })
	if got := len(cs.VRPs()); got != len(sampleVRPs()) {
		t.Fatalf("after reset: %d VRPs, want %d", got, len(sampleVRPs()))
	}

	extra := VRP{Prefix: netx.MustParsePrefix("198.51.100.0/24"), MaxLength: 24, ASN: 64501}
	srv.Update(append(sampleVRPs(), extra))

	fake.BlockUntil(1) // refresh timer armed
	fake.Advance(time.Duration(DefaultIntervals.Refresh) * time.Second)

	waitFor(t, "refresh poll", func() bool { return cs.Stats().Syncs >= 2 })
	if got := len(cs.VRPs()); got != len(sampleVRPs())+1 {
		t.Fatalf("after refresh: %d VRPs, want %d", got, len(sampleVRPs())+1)
	}
	if got := cs.Serial(); got != srv.Serial() {
		t.Errorf("client serial %d, server %d", got, srv.Serial())
	}
	if st := cs.Stats(); st.FallbackResets != 0 {
		t.Errorf("unexpected fallback resets: %+v", st)
	}

	cancel()
	<-done
}

// TestClientSessionFallbackReset drives the ErrNoDataAvailable
// downgrade: a cache that restarts and loses its delta history answers
// the incremental Serial Query with No Data Available; the session must
// fall back to a full cache reset on the same connection instead of
// treating it as fatal.
func TestClientSessionFallbackReset(t *testing.T) {
	srv := NewServer(7, sampleVRPs())
	d := &dialer{srv: srv}
	defer d.kill()
	fake := session.NewFake(time.Unix(1_600_000_000, 0))
	cs := NewClientSession(ClientConfig{Dial: d.dial, Clock: fake})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cs.Run(ctx) }()

	waitFor(t, "initial sync", func() bool { return cs.Stats().Syncs >= 1 })

	// The cache "restarts": sever the connection, then script the next
	// one by hand — Serial Query gets No Data Available, the follow-up
	// Reset Query gets the full set.
	d.kill()
	fake.BlockUntil(1) // refresh timer armed
	fake.Advance(time.Duration(DefaultIntervals.Refresh) * time.Second)
	fake.BlockUntil(1) // retry timer armed after the failed poll

	client, server := net.Pipe()
	defer client.Close()
	scripted := make(chan error, 1)
	go func() {
		defer server.Close()
		pdu, err := ReadPDU(server)
		if err != nil {
			scripted <- err
			return
		}
		if _, ok := pdu.(*SerialQuery); !ok {
			scripted <- fmt.Errorf("expected SerialQuery, got %T", pdu)
			return
		}
		if err := WritePDU(server, &ErrorReport{Code: ErrNoDataAvailable, Text: "restarted"}); err != nil {
			scripted <- err
			return
		}
		if pdu, err = ReadPDU(server); err != nil {
			scripted <- err
			return
		}
		if _, ok := pdu.(*ResetQuery); !ok {
			scripted <- fmt.Errorf("expected ResetQuery, got %T", pdu)
			return
		}
		scripted <- srv.sendAll(server)
	}()
	d.mu.Lock()
	d.handoff = client
	d.mu.Unlock()

	fake.Advance(time.Duration(DefaultIntervals.Retry) * time.Second)

	waitFor(t, "fallback reset sync", func() bool { return cs.Stats().Syncs >= 2 })
	if err := <-scripted; err != nil {
		t.Fatalf("scripted cache: %v", err)
	}
	st := cs.Stats()
	if st.FallbackResets != 1 {
		t.Errorf("FallbackResets = %d, want 1 (stats %+v)", st.FallbackResets, st)
	}
	if st.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", st.Reconnects)
	}
	if got := len(cs.VRPs()); got != len(sampleVRPs()) {
		t.Errorf("after fallback reset: %d VRPs, want %d", got, len(sampleVRPs()))
	}

	cancel()
	<-done
}

// TestClientSessionExpireToNotFound is the acceptance scenario: the
// cache dies, and once the last good sync ages past the Expire
// interval every origin-validation query — including ones that were
// Valid and ones that were Invalid — answers NotFound. The session must
// never serve stale Valid/Invalid verdicts from expired data.
func TestClientSessionExpireToNotFound(t *testing.T) {
	srv := NewServer(7, []VRP{
		{Prefix: netx.MustParsePrefix("10.0.0.0/8"), MaxLength: 24, ASN: 64500},
	})
	srv.SetIntervals(Intervals{Refresh: 60, Retry: 300, Expire: 600})
	d := &dialer{srv: srv}
	defer d.kill()
	fake := session.NewFake(time.Unix(1_600_000_000, 0))
	cs := NewClientSession(ClientConfig{Dial: d.dial, Clock: fake})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cs.Run(ctx) }()

	waitFor(t, "initial sync", func() bool { return cs.Stats().Syncs >= 1 })

	valid := VRPQuery{Prefix: netx.MustParsePrefix("10.1.0.0/16"), Origin: 64500}
	invalid := VRPQuery{Prefix: netx.MustParsePrefix("10.1.0.0/16"), Origin: 64666}
	if got := cs.Validate(valid); got != rpki.Valid {
		t.Fatalf("live cache: Validate(valid) = %v", got)
	}
	if got := cs.Validate(invalid); got != rpki.Invalid {
		t.Fatalf("live cache: Validate(invalid) = %v", got)
	}

	// Cache dies right after the first sync.
	d.kill()

	fake.BlockUntil(1)             // refresh timer armed
	fake.Advance(60 * time.Second) // t+60: poll fails, retry wait starts
	fake.BlockUntil(1)             // retry timer armed (300s)
	if got := cs.Validate(valid); got != rpki.Valid {
		t.Fatalf("within expire: Validate(valid) = %v, want retained Valid", got)
	}
	fake.Advance(300 * time.Second) // t+360: still within expire, dial fails
	fake.BlockUntil(1)              // retry wait trimmed to the expire deadline
	if got := cs.Validate(invalid); got != rpki.Invalid {
		t.Fatalf("within expire: Validate(invalid) = %v, want retained Invalid", got)
	}
	fake.Advance(240 * time.Second) // t+600: expire deadline reached

	waitFor(t, "expiry", func() bool { return cs.Stats().Expirations >= 1 })
	if got := cs.Validate(valid); got != rpki.NotFound {
		t.Errorf("past expire: Validate(previously Valid) = %v, want NotFound", got)
	}
	if got := cs.Validate(invalid); got != rpki.NotFound {
		t.Errorf("past expire: Validate(previously Invalid) = %v, want NotFound", got)
	}
	if got := cs.VRPs(); got != nil {
		t.Errorf("past expire: VRPs() = %v, want nil", got)
	}

	cancel()
	<-done
}
