package rtr

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rpki"
	"dropscope/internal/timex"
)

func sampleVRPs() []VRP {
	return []VRP{
		{Prefix: netx.MustParsePrefix("132.255.0.0/22"), MaxLength: 22, ASN: 263692},
		{Prefix: netx.MustParsePrefix("10.0.0.0/8"), MaxLength: 24, ASN: 64500},
		{Prefix: netx.MustParsePrefix("192.0.2.0/24"), MaxLength: 32, ASN: bgp.AS0},
	}
}

func TestPDURoundTrip(t *testing.T) {
	pdus := []PDU{
		&SerialNotify{SessionID: 7, Serial: 42},
		&SerialQuery{SessionID: 7, Serial: 41},
		&ResetQuery{},
		&CacheResponse{SessionID: 7},
		&IPv4Prefix{Announce: true, VRP: sampleVRPs()[0]},
		&IPv4Prefix{Announce: false, VRP: sampleVRPs()[1]},
		&EndOfData{SessionID: 7, Serial: 42, Refresh: 3600, Retry: 600, Expire: 7200},
		&CacheReset{},
		&ErrorReport{Code: ErrNoDataAvailable, Text: "nothing yet"},
	}
	var buf bytes.Buffer
	for _, p := range pdus {
		if err := WritePDU(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range pdus {
		got, err := ReadPDU(&buf)
		if err != nil {
			t.Fatalf("pdu %d: %v", i, err)
		}
		if got.pduType() != want.pduType() {
			t.Fatalf("pdu %d: type %d != %d", i, got.pduType(), want.pduType())
		}
		switch w := want.(type) {
		case *IPv4Prefix:
			g := got.(*IPv4Prefix)
			if g.Announce != w.Announce || g.VRP != w.VRP {
				t.Errorf("pdu %d: %+v != %+v", i, g, w)
			}
		case *EndOfData:
			g := got.(*EndOfData)
			if *g != *w {
				t.Errorf("pdu %d: %+v != %+v", i, g, w)
			}
		case *ErrorReport:
			g := got.(*ErrorReport)
			if g.Code != w.Code || g.Text != w.Text {
				t.Errorf("pdu %d: %+v != %+v", i, g, w)
			}
		}
	}
	if _, err := ReadPDU(&buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadPDURejectsBadInput(t *testing.T) {
	cases := map[string][]byte{
		"bad version":   {9, TypeResetQuery, 0, 0, 0, 0, 0, 8},
		"short length":  {Version, TypeResetQuery, 0, 0, 0, 0, 0, 4},
		"unknown type":  {Version, 99, 0, 0, 0, 0, 0, 8},
		"host bits set": {Version, TypeIPv4Prefix, 0, 0, 0, 0, 0, 20, 1, 24, 24, 0, 192, 0, 2, 1, 0, 0, 0, 5},
		"maxlen < bits": {Version, TypeIPv4Prefix, 0, 0, 0, 0, 0, 20, 1, 24, 20, 0, 192, 0, 2, 0, 0, 0, 0, 5},
	}
	for name, raw := range cases {
		if _, err := ReadPDU(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPDUFuzzSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	for _, p := range []PDU{&IPv4Prefix{Announce: true, VRP: sampleVRPs()[0]}, &EndOfData{Serial: 9}} {
		_ = WritePDU(&buf, p)
	}
	wire := buf.Bytes()
	for i := 0; i < 3000; i++ {
		mut := append([]byte(nil), wire...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		r := bytes.NewReader(mut)
		for {
			if _, err := ReadPDU(r); err != nil {
				break
			}
		}
	}
}

func TestResetHandshakeOverPipe(t *testing.T) {
	srv := NewServer(99, sampleVRPs())
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.HandleConn(server)
	}()

	c := NewClient(client)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if c.SessionID != 99 || c.Serial != 1 {
		t.Errorf("session=%d serial=%d", c.SessionID, c.Serial)
	}
	if len(c.VRPs) != 3 {
		t.Fatalf("VRPs = %+v", c.VRPs)
	}

	// Router-side validation using the synced VRPs.
	if v := c.Validate(VRPQuery{Prefix: netx.MustParsePrefix("132.255.0.0/22"), Origin: 263692}); v != rpki.Valid {
		t.Errorf("owner announcement = %v", v)
	}
	if v := c.Validate(VRPQuery{Prefix: netx.MustParsePrefix("132.255.0.0/22"), Origin: 50509}); v != rpki.Invalid {
		t.Errorf("forged origin = %v", v)
	}
	if v := c.Validate(VRPQuery{Prefix: netx.MustParsePrefix("192.0.2.0/24"), Origin: 64500}); v != rpki.Invalid {
		t.Errorf("AS0-covered announcement = %v", v)
	}
	if v := c.Validate(VRPQuery{Prefix: netx.MustParsePrefix("203.0.113.0/24"), Origin: 64500}); v != rpki.NotFound {
		t.Errorf("uncovered announcement = %v", v)
	}

	client.Close()
	<-done
}

func TestSerialQueryFlow(t *testing.T) {
	srv := NewServer(7, sampleVRPs())
	client, server := net.Pipe()
	go func() { _ = srv.HandleConn(server) }()
	defer client.Close()

	c := NewClient(client)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}

	// Poll while current: empty delta, same serial.
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial != 1 || len(c.VRPs) != 3 {
		t.Errorf("after current poll: serial=%d vrps=%d", c.Serial, len(c.VRPs))
	}

	// Cache updates: the next poll receives the incremental delta.
	srv.Update(sampleVRPs()[:1])
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial != 2 || len(c.VRPs) != 1 {
		t.Errorf("after update poll: serial=%d vrps=%d", c.Serial, len(c.VRPs))
	}
}

func TestSessionMismatchReported(t *testing.T) {
	srv := NewServer(7, nil)
	client, server := net.Pipe()
	go func() { _ = srv.HandleConn(server) }()
	defer client.Close()

	if err := WritePDU(client, &SerialQuery{SessionID: 1234, Serial: 1}); err != nil {
		t.Fatal(err)
	}
	pdu, err := ReadPDU(client)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pdu.(*ErrorReport); !ok {
		t.Errorf("expected error report, got %T", pdu)
	}
}

func TestServeOverTCP(t *testing.T) {
	srv := NewServer(3, sampleVRPs())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if len(c.VRPs) != 3 {
		t.Errorf("VRPs over TCP = %d", len(c.VRPs))
	}
	conn.Close()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned %v", err)
	}
}

func TestSnapshotVRPs(t *testing.T) {
	var a rpki.Archive
	d := timex.MustParseDay("2021-01-01")
	roas := []rpki.ROA{
		{Prefix: netx.MustParsePrefix("10.0.0.0/8"), MaxLength: 24, ASN: 64500, TA: rpki.TARIPE},
		{Prefix: netx.MustParsePrefix("10.0.0.0/8"), MaxLength: 24, ASN: 64500, TA: rpki.TAARIN}, // dup VRP, distinct TA
		{Prefix: netx.MustParsePrefix("192.0.2.0/24"), MaxLength: 32, ASN: bgp.AS0, TA: rpki.TALACNICAS0},
	}
	for _, r := range roas {
		if err := a.Add(d, r); err != nil {
			t.Fatal(err)
		}
	}
	all := SnapshotVRPs(&a, d+1, nil)
	if len(all) != 2 {
		t.Errorf("deduplicated VRPs = %+v", all)
	}
	prodOnly := SnapshotVRPs(&a, d+1, rpki.DefaultTALs)
	if len(prodOnly) != 1 {
		t.Errorf("production-TAL VRPs = %+v", prodOnly)
	}
	if before := SnapshotVRPs(&a, d-1, nil); len(before) != 0 {
		t.Errorf("VRPs before creation = %+v", before)
	}
}

func TestIncrementalDelta(t *testing.T) {
	vrps := sampleVRPs()
	srv := NewServer(5, vrps)
	client, server := net.Pipe()
	go func() { _ = srv.HandleConn(server) }()
	defer client.Close()

	c := NewClient(client)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}

	// Version 2: drop one VRP, add one.
	added := VRP{Prefix: netx.MustParsePrefix("203.0.113.0/24"), MaxLength: 24, ASN: 65000}
	v2 := append(append([]VRP{}, vrps[1:]...), added)
	srv.Update(v2)
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial != 2 {
		t.Errorf("serial = %d", c.Serial)
	}
	if len(c.VRPs) != 3 {
		t.Fatalf("VRPs after delta = %+v", c.VRPs)
	}
	found := false
	for _, v := range c.VRPs {
		if v == vrps[0] {
			t.Errorf("withdrawn VRP still present: %+v", v)
		}
		if v == added {
			found = true
		}
	}
	if !found {
		t.Error("announced VRP missing after delta")
	}

	// Several versions at once coalesce; cancelled changes elide.
	v3 := append([]VRP{}, v2...) // re-add vrps[0]
	v3 = append(v3, vrps[0])
	srv.Update(v3)
	srv.Update(v2) // and remove it again: net change vs serial 2 is zero
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial != 4 || len(c.VRPs) != 3 {
		t.Errorf("after coalesced delta: serial=%d vrps=%d", c.Serial, len(c.VRPs))
	}
}

func TestDeltaHistoryEviction(t *testing.T) {
	srv := NewServer(5, sampleVRPs())
	client, server := net.Pipe()
	go func() { _ = srv.HandleConn(server) }()
	defer client.Close()

	c := NewClient(client)
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	// Push far more versions than the retained history.
	cur := sampleVRPs()
	for i := 0; i < 20; i++ {
		cur = append(cur, VRP{Prefix: netx.PrefixFrom(netx.AddrFrom4(10, 99, byte(i), 0), 24), MaxLength: 24, ASN: 65001})
		srv.Update(append([]VRP{}, cur...))
	}
	// Client at serial 1 is far behind: the server forces a reset, and
	// the client recovers the full current set.
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if c.Serial != 21 || len(c.VRPs) != len(cur) {
		t.Errorf("after reset recovery: serial=%d vrps=%d want %d", c.Serial, len(c.VRPs), len(cur))
	}
}
