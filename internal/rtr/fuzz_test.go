package rtr

import (
	"bytes"
	"testing"
)

func FuzzReadPDU(f *testing.F) {
	for _, p := range []PDU{
		&ResetQuery{},
		&IPv4Prefix{Announce: true, VRP: sampleVRPs()[0]},
		&EndOfData{SessionID: 1, Serial: 2, Refresh: 3, Retry: 4, Expire: 5},
		&ErrorReport{Code: 2, Text: "x"},
	} {
		var buf bytes.Buffer
		_ = WritePDU(&buf, p)
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pdu, err := ReadPDU(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WritePDU(&out, pdu); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}
