// Crash-recovery property tests for the durable write path: a
// fail-stop crash at *every* operation of the write protocol must
// leave the snapshot path holding either the old complete snapshot or
// the new complete snapshot — never a torn file, and never an adopted
// temp. External test package: the disk injector lives in faultinject,
// which imports ribsnap.
package ribsnap_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest/faultinject"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/ribsnap"
	"dropscope/internal/timex"
)

// tinyFrozen builds the smallest closed index worth snapshotting.
func tinyFrozen(t testing.TB) (*rib.Frozen, timex.Range) {
	t.Helper()
	day0 := timex.MustParseDay("2019-06-05")
	window := timex.Range{First: day0, Last: day0 + 10}
	ix := rib.NewIndex()
	peers := []mrt.Peer{{Addr: netx.AddrFrom4(203, 0, 113, 1), AS: 64500}}
	recs := []mrt.Record{
		&mrt.PeerIndexTable{When: day0.Time(), Peers: peers},
		&mrt.RIBPrefix{When: day0.Time(), Prefix: netx.MustParsePrefix("192.0.2.0/24"),
			Entries: []mrt.RIBEntry{{PeerIndex: 0, OriginatedTime: (day0 - 5).Time(),
				Attrs: bgp.Attrs{Path: bgp.Sequence(64500, 100)}}}},
	}
	if err := ix.Load("rv0", recs); err != nil {
		t.Fatal(err)
	}
	ix.Close(window.Last)
	f, err := ix.Frozen()
	if err != nil {
		t.Fatal(err)
	}
	return f, window
}

func digestOf(b byte) (d [32]byte) {
	for i := range d {
		d[i] = b
	}
	return d
}

// loadDigest loads and immediately closes, reporting only the error.
func loadDigest(path string, d [32]byte) error {
	s, err := ribsnap.Load(path, d)
	if err != nil {
		return err
	}
	return s.Close()
}

// TestCrashAtEveryWriteStep is the central recovery property: for every
// prefix of the write protocol's operation sequence, a fail-stop crash
// immediately after that prefix leaves the path loadable as exactly one
// complete snapshot — the old one if the rename had not happened yet,
// the new one after — and the startup sweep leaves no temp debris.
func TestCrashAtEveryWriteStep(t *testing.T) {
	f, window := tinyFrozen(t)
	oldDigest, newDigest := digestOf(0xAA), digestOf(0xBB)

	// A clean instrumented run measures the protocol length.
	clean := faultinject.NewDiskFS(nil, faultinject.DiskOpts{})
	cleanDir := t.TempDir()
	cleanPath := filepath.Join(cleanDir, "index.ribsnap")
	if err := ribsnap.WriteFS(clean, cleanPath, f, window, newDigest, nil); err != nil {
		t.Fatalf("clean write: %v", err)
	}
	nOps := clean.Ops()
	if nOps < 5 {
		t.Fatalf("suspiciously short protocol: %d ops", nOps)
	}
	t.Logf("write protocol is %d operations", nOps)

	for k := 0; k < nOps; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "index.ribsnap")
		if err := ribsnap.Write(path, f, window, oldDigest, nil); err != nil {
			t.Fatalf("k=%d: seeding old snapshot: %v", k, err)
		}

		disk := faultinject.NewDiskFS(nil, faultinject.DiskOpts{Crash: true, CrashAfter: k})
		err := ribsnap.WriteFS(disk, path, f, window, newDigest, nil)
		if !errors.Is(err, faultinject.ErrCrashed) {
			t.Fatalf("k=%d: want simulated crash, got %v", k, err)
		}

		// "Reboot": the startup sweep collects orphaned temps.
		if _, err := ribsnap.SweepTemps(dir); err != nil {
			t.Fatalf("k=%d: sweep: %v", k, err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Name() != "index.ribsnap" {
				t.Fatalf("k=%d: debris survived recovery: %s", k, e.Name())
			}
		}

		// Exactly one of the two generations must load completely.
		switch err := loadDigest(path, newDigest); {
		case err == nil:
			// Crash after the rename: the new snapshot won.
		case errors.Is(err, ribsnap.ErrStale):
			// Still the old generation; it must be fully intact.
			if err := loadDigest(path, oldDigest); err != nil {
				t.Fatalf("k=%d: old snapshot damaged: %v", k, err)
			}
		default:
			t.Fatalf("k=%d: path holds garbage: %v", k, err)
		}
	}
}

// TestCrashWithoutPredecessor covers first-boot crashes: no old
// snapshot exists, so recovery must find either nothing (plus no
// debris) or the complete new snapshot.
func TestCrashWithoutPredecessor(t *testing.T) {
	f, window := tinyFrozen(t)
	newDigest := digestOf(0xCC)

	clean := faultinject.NewDiskFS(nil, faultinject.DiskOpts{})
	if err := ribsnap.WriteFS(clean, filepath.Join(t.TempDir(), "x.ribsnap"), f, window, newDigest, nil); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < clean.Ops(); k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "index.ribsnap")
		disk := faultinject.NewDiskFS(nil, faultinject.DiskOpts{Crash: true, CrashAfter: k})
		if err := ribsnap.WriteFS(disk, path, f, window, newDigest, nil); !errors.Is(err, faultinject.ErrCrashed) {
			t.Fatalf("k=%d: want simulated crash, got %v", k, err)
		}
		if _, err := ribsnap.SweepTemps(dir); err != nil {
			t.Fatal(err)
		}
		if _, statErr := os.Stat(path); statErr == nil {
			if err := loadDigest(path, newDigest); err != nil {
				t.Fatalf("k=%d: renamed snapshot damaged: %v", k, err)
			}
		} else if !os.IsNotExist(statErr) {
			t.Fatal(statErr)
		}
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if e.Name() != "index.ribsnap" {
				t.Fatalf("k=%d: debris survived recovery: %s", k, e.Name())
			}
		}
	}
}

// TestWriteENOSPC: an exhausted disk fails the write, and recovery
// leaves the old snapshot untouched.
func TestWriteENOSPC(t *testing.T) {
	f, window := tinyFrozen(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.ribsnap")
	oldDigest := digestOf(0x11)
	if err := ribsnap.Write(path, f, window, oldDigest, nil); err != nil {
		t.Fatal(err)
	}
	disk := faultinject.NewDiskFS(nil, faultinject.DiskOpts{SpaceBytes: 256})
	err := ribsnap.WriteFS(disk, path, f, window, digestOf(0x22), nil)
	if !errors.Is(err, faultinject.ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if _, err := ribsnap.SweepTemps(dir); err != nil {
		t.Fatal(err)
	}
	if err := loadDigest(path, oldDigest); err != nil {
		t.Fatalf("old snapshot damaged by failed write: %v", err)
	}
}

// TestWriteShortWrite: a half-written buffer fails the write rather
// than producing a silently truncated temp that could ever be renamed.
func TestWriteShortWrite(t *testing.T) {
	f, window := tinyFrozen(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.ribsnap")
	disk := faultinject.NewDiskFS(nil, faultinject.DiskOpts{ShortEvery: 3})
	err := ribsnap.WriteFS(disk, path, f, window, digestOf(0x33), nil)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want ErrShortWrite, got %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("short write must not produce a snapshot: %v", statErr)
	}
}

// TestWriteBitFlips: silent write-time corruption survives the write
// call (the disk lied) but can never be loaded — the CRC catches it.
func TestWriteBitFlips(t *testing.T) {
	f, window := tinyFrozen(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.ribsnap")
	d := digestOf(0x44)
	disk := faultinject.NewDiskFS(nil, faultinject.DiskOpts{FlipBits: 4, FlipSeed: 7})
	if err := ribsnap.WriteFS(disk, path, f, window, d, nil); err != nil {
		t.Fatalf("silent corruption must not fail the write: %v", err)
	}
	err := loadDigest(path, d)
	if err == nil {
		t.Fatal("corrupted snapshot loaded cleanly")
	}
	if !errors.Is(err, ribsnap.ErrCorrupt) && !errors.Is(err, ribsnap.ErrTruncated) &&
		!errors.Is(err, ribsnap.ErrStale) && !errors.Is(err, ribsnap.ErrVersion) {
		t.Fatalf("want a typed load failure, got %v", err)
	}
}

// TestSweepTemps: the startup sweep removes exactly the orphaned write
// temps and reports them, leaving everything else alone.
func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{".ribsnap-123", ".ribsnap-abc"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "index.ribsnap")
	if err := os.WriteFile(keep, []byte("snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	swept, err := ribsnap.SweepTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 2 {
		t.Fatalf("swept %v, want the two orphans", swept)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "index.ribsnap" {
		t.Fatalf("sweep touched the wrong files: %v", entries)
	}
	// Missing directory is a clean no-op, not an error.
	if _, err := ribsnap.SweepTemps(filepath.Join(dir, "nope")); err != nil {
		t.Fatalf("sweep of missing dir: %v", err)
	}
}
