package ribsnap

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dropscope/internal/timex"
)

// ArchiveCursor records how far into one collector's archive file a
// snapshot's index has consumed: the byte count and the SHA-256 of
// exactly those bytes. The delta-append path verifies the current file
// still begins with those bytes (append-only growth) and resumes
// decoding at Size; any rewrite, truncation, or reorder changes the
// prefix hash and forces a cold rebuild.
type ArchiveCursor struct {
	Collector string // file name without the .mrt suffix
	Size      uint64
	Sum       [32]byte
}

// Lineage is the delta-append chain metadata a snapshot can carry:
// where each archive file's consumed prefix ends (Cursors), the
// largest record day folded into the index (MaxDay — open-span
// recovery is sound only while it does not exceed the close day), and,
// for a generation built by merging a delta onto an earlier one, that
// parent's digest.
type Lineage struct {
	HasParent bool
	Parent    [32]byte
	MaxDay    timex.Day
	Cursors   []ArchiveCursor
}

// decodeLineage parses the optional lineage + cursors sections. Both
// absent returns nil (a pre-lineage snapshot); one without the other is
// corrupt.
func decodeLineage(linB, curB []byte) (*Lineage, error) {
	if linB == nil && curB == nil {
		return nil, nil
	}
	if linB == nil || curB == nil {
		return nil, fmt.Errorf("%w: lineage and cursor sections must coexist", ErrCorrupt)
	}
	if len(linB) != lineageSize {
		return nil, fmt.Errorf("%w: lineage section %d bytes", ErrCorrupt, len(linB))
	}
	c := &cursor{b: linB}
	lin := &Lineage{}
	lin.HasParent = c.u32() != 0
	lin.MaxDay = timex.Day(int32(c.u32()))
	copy(lin.Parent[:], linB[8:40])

	cc := &cursor{b: curB}
	n := int(cc.u32())
	if n < 0 || n > len(curB) {
		return nil, fmt.Errorf("%w: cursor entries %d", ErrCorrupt, n)
	}
	lin.Cursors = make([]ArchiveCursor, 0, n)
	for i := 0; i < n; i++ {
		name := cc.stringPad4(int(cc.u32()))
		size := cc.u64()
		var sum [32]byte
		if cc.bad || cc.off+32 > len(cc.b) {
			cc.bad = true
			break
		}
		copy(sum[:], cc.b[cc.off:cc.off+32])
		cc.off += 32
		lin.Cursors = append(lin.Cursors, ArchiveCursor{Collector: name, Size: size, Sum: sum})
	}
	if cc.bad {
		return nil, fmt.Errorf("%w: cursor section overrun", ErrCorrupt)
	}
	return lin, nil
}

// ArchiveCursors hashes every *.mrt file under dir in name order,
// returning the cursors a snapshot built from the archive's current
// state should persist. The per-file hashes double as the append-only
// check for the next delta: a grown file whose first Size bytes still
// hash to Sum was strictly appended to.
func ArchiveCursors(dir string) ([]ArchiveCursor, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".mrt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]ArchiveCursor, 0, len(names))
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		h := sha256.New()
		n, err := io.Copy(h, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		cur := ArchiveCursor{Collector: strings.TrimSuffix(name, ".mrt"), Size: uint64(n)}
		h.Sum(cur.Sum[:0])
		out = append(out, cur)
	}
	return out, nil
}

// DigestCursors folds archive cursors into the archive digest: for
// every cursor in collector order, its name, consumed size, and
// content hash. This is the digest definition — DigestMRT is exactly
// DigestCursors over ArchiveCursors — so any code that already holds
// per-file cursors (a snapshot's lineage, a delta build's output) can
// derive the digest without re-reading a byte of the archive.
func DigestCursors(cursors []ArchiveCursor) [32]byte {
	sorted := make([]ArchiveCursor, len(cursors))
	copy(sorted, cursors)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Collector < sorted[j].Collector })
	h := sha256.New()
	var hdr [8]byte
	for _, c := range sorted {
		io.WriteString(h, c.Collector)
		h.Write([]byte{0})
		binary.LittleEndian.PutUint64(hdr[:], c.Size)
		h.Write(hdr[:])
		h.Write(c.Sum[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// LoadAt loads the snapshot at path keyed on whatever archive digest
// it was written with — the entry point for adopting a stale-but-valid
// snapshot as a delta base, where the caller knows the archive moved
// on and wants the previous state rather than a staleness error.
func LoadAt(path string) (*Snapshot, error) {
	digest, err := readHeaderDigest(path)
	if err != nil {
		return nil, err
	}
	return Load(path, digest)
}
