package ribsnap

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

// storeFixture builds a frozen index once for the store tests.
func storeFixture(t testing.TB) (*rib.Frozen, timex.Range) {
	t.Helper()
	ix, window := randomIndex(t, 99)
	frozen, err := ix.Frozen()
	if err != nil {
		t.Fatal(err)
	}
	return frozen, window
}

func TestStoreWritePromoteLoad(t *testing.T) {
	frozen, window := storeFixture(t)
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := dg(0xA1)
	if err := st.Write(frozen, window, a, nil); err != nil {
		t.Fatal(err)
	}
	if got := st.Manifest().Status(a); got != GenWritten {
		t.Fatalf("status after write = %v", got)
	}
	if err := st.Promote(a); err != nil {
		t.Fatal(err)
	}
	// Promoting the live generation again must not grow the journal.
	before, _ := os.Stat(filepath.Join(dir, ManifestName))
	if err := st.Promote(a); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(dir, ManifestName))
	if before.Size() != after.Size() {
		t.Fatal("idempotent promote grew the journal")
	}

	snap, err := st.Load(a)
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()

	// A fresh open (the restart path) recovers the same live generation.
	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if live, ok := st2.Manifest().Promoted(); !ok || live != a {
		t.Fatalf("recovered promoted = %x/%v, want a", live[:4], ok)
	}
}

func TestStoreCorruptMarkBlocksLoadUntilRewrite(t *testing.T) {
	frozen, window := storeFixture(t)
	st, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := dg(0xA2)
	if err := st.Write(frozen, window, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.MarkCorrupt(a); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(a); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("load of corrupt generation = %v, want ErrCorrupt", err)
	}
	// A rewrite supersedes the mark — the cold-rebuild recovery cycle.
	if err := st.Write(frozen, window, a, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Load(a)
	if err != nil {
		t.Fatalf("load after rewrite: %v", err)
	}
	snap.Close()
}

func TestStoreAdoptsUnrecordedGeneration(t *testing.T) {
	frozen, window := storeFixture(t)
	dir := t.TempDir()
	a := dg(0xA3)
	// Simulate a crash between the durable rename and the journal
	// append: the generation file exists, the manifest never heard of it.
	if err := Write(filepath.Join(dir, GenName(a)), frozen, window, a, nil); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Manifest().Status(a); got != GenWritten {
		t.Fatalf("adopted status = %v, want written", got)
	}
	snap, err := st.Load(a)
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
}

func TestStoreMarksMissingFilesRemoved(t *testing.T) {
	frozen, window := storeFixture(t)
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := dg(0xA4)
	if err := st.Write(frozen, window, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(st.GenPath(a)); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Manifest().Status(a); got != GenRemoved {
		t.Fatalf("status of vanished generation = %v, want removed", got)
	}
}

func TestStoreRemovesHeaderlessDebris(t *testing.T) {
	dir := t.TempDir()
	debris := filepath.Join(dir, "gen-00000000000000ff.ribsnap")
	if err := os.WriteFile(debris, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatalf("headerless debris survived recovery: %v", err)
	}
}

func TestStoreLegacyFallback(t *testing.T) {
	frozen, window := storeFixture(t)
	dir := t.TempDir()
	a := dg(0xA5)
	// The batch CLI wrote its single-file snapshot; the daemon's store
	// must serve it even with no generation of its own.
	if err := Write(filepath.Join(dir, legacyName), frozen, window, a, nil); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st.Load(a)
	if err != nil {
		t.Fatalf("legacy fallback load: %v", err)
	}
	snap.Close()
}

func TestStoreGCRetention(t *testing.T) {
	frozen, window := storeFixture(t)
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := dg(0xB1), dg(0xB2), dg(0xB3)
	for _, d := range [][32]byte{a, b, c} {
		if err := st.Write(frozen, window, d, nil); err != nil {
			t.Fatal(err)
		}
		if err := st.Promote(d); err != nil {
			t.Fatal(err)
		}
	}
	// c live, b retired (retained), a evicted.
	if live, ok := st.Manifest().Promoted(); !ok || live != c {
		t.Fatalf("live = %x/%v, want c", live[:4], ok)
	}
	if got := st.Manifest().Status(a); got != GenRemoved {
		t.Fatalf("a status = %v, want removed", got)
	}
	if _, err := os.Stat(st.GenPath(a)); !os.IsNotExist(err) {
		t.Fatalf("a's file survived GC: %v", err)
	}
	if got := st.Manifest().Status(b); got != GenRetired {
		t.Fatalf("b status = %v, want retired", got)
	}
	if _, err := os.Stat(st.GenPath(b)); err != nil {
		t.Fatalf("b's file should be retained: %v", err)
	}

	// Corrupt generations are first in the eviction line.
	if err := st.MarkCorrupt(b); err != nil {
		t.Fatal(err)
	}
	d := dg(0xB4)
	if err := st.Write(frozen, window, d, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Promote(d); err != nil {
		t.Fatal(err)
	}
	if got := st.Manifest().Status(b); got != GenRemoved {
		t.Fatalf("corrupt b should be evicted first, status = %v", got)
	}
}

func TestStoreSweepsTempsOnOpen(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, ".ribsnap-orphan")
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp survived store open: %v", err)
	}
}

// TestStoreGCMixedShardedAndLegacy pins retention across the three
// on-disk layouts at once: sharded generation directories are evicted
// (recursively) under the same Retain cap as single-file generations,
// and the batch CLI's legacy index.ribsnap — which the manifest never
// owns — survives every GC pass.
func TestStoreGCMixedShardedAndLegacy(t *testing.T) {
	ix, window := randomIndex(t, 99)
	frozen, err := ix.Frozen()
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ix.FrozenShards(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	legacy := dg(0xC0)
	if err := Write(filepath.Join(dir, legacyName), frozen, window, legacy, nil); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, StoreOptions{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}

	// a sharded, b single-file, c sharded; promoted in order, so after c
	// the non-live set {a, b} exceeds Retain: 1 and a — the oldest — is
	// evicted even though it is a directory, not a file.
	a, b, c := dg(0xC1), dg(0xC2), dg(0xC3)
	if err := st.WriteShards(shards, window, a, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Promote(a); err != nil {
		t.Fatal(err)
	}
	if !st.HasShards(a) {
		t.Fatal("sharded generation a not recognized after write")
	}
	if err := st.Write(frozen, window, b, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Promote(b); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteShards(shards, window, c, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Promote(c); err != nil {
		t.Fatal(err)
	}

	if got := st.Status(a); got != GenRemoved {
		t.Fatalf("a status = %v, want removed", got)
	}
	if _, err := os.Stat(st.GenDirPath(a)); !os.IsNotExist(err) {
		t.Fatalf("a's shard directory survived GC: %v", err)
	}
	if got := st.Status(b); got != GenRetired {
		t.Fatalf("b status = %v, want retired", got)
	}
	if _, err := os.Stat(st.GenPath(b)); err != nil {
		t.Fatalf("retired b's file should be retained: %v", err)
	}
	set, err := st.LoadShards(c, 0)
	if err != nil {
		t.Fatalf("live sharded generation c: %v", err)
	}
	set.Close()

	// The legacy single-file snapshot is not a generation: GC must not
	// touch it, and digest-based fallback loads still work.
	if _, err := os.Stat(filepath.Join(dir, legacyName)); err != nil {
		t.Fatalf("legacy snapshot did not survive GC: %v", err)
	}
	snap, err := st.Load(legacy)
	if err != nil {
		t.Fatalf("legacy fallback load after GC: %v", err)
	}
	snap.Close()

	// Restart: recovery re-adopts the survivors and keeps the removals.
	st2, err := OpenStore(dir, StoreOptions{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	if live, ok := st2.Promoted(); !ok || live != c {
		t.Fatalf("recovered live = %x/%v, want c", live[:4], ok)
	}
	if got := st2.Status(a); got != GenRemoved {
		t.Fatalf("recovered a status = %v, want removed", got)
	}
}

// TestStoreDerivedLineageRoundTrip pins the ancestry journal: a
// generation written with a parent-bearing lineage is journaled as
// derived, Parent recovers the parent digest (across a restart), and a
// parentless lineage journals a plain written record.
func TestStoreDerivedLineageRoundTrip(t *testing.T) {
	frozen, window := storeFixture(t)
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, child := dg(0xD1), dg(0xD2)
	if err := st.WriteLineage(frozen, window, base, nil, &Lineage{MaxDay: 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Parent(base); ok {
		t.Fatal("parentless lineage must not journal ancestry")
	}
	lin := &Lineage{HasParent: true, Parent: base, MaxDay: 5}
	if err := st.WriteLineage(frozen, window, child, nil, lin); err != nil {
		t.Fatal(err)
	}
	if p, ok := st.Parent(child); !ok || p != base {
		t.Fatalf("Parent(child) = %x/%v, want base", p[:4], ok)
	}
	if got := st.Status(child); got != GenWritten {
		t.Fatalf("derived child status = %v, want written", got)
	}

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := st2.Parent(child); !ok || p != base {
		t.Fatalf("replayed Parent(child) = %x/%v, want base", p[:4], ok)
	}
}
