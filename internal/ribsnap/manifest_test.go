package ribsnap

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// refreshRecordCRC recomputes a hand-edited record's payload checksum.
func refreshRecordCRC(rec []byte) {
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
}

func dg(b byte) (d [32]byte) {
	for i := range d {
		d[i] = b
	}
	return d
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := dg(1), dg(2)
	for _, step := range []struct {
		op GenStatus
		d  [32]byte
	}{
		{GenWritten, a}, {GenPromoted, a}, {GenWritten, b},
		{GenPromoted, b}, {GenRetired, a},
	} {
		if err := m.Append(step.op, step.d); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen: replay must reconstruct the same state.
	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Status(a); got != GenRetired {
		t.Fatalf("a status = %v, want retired", got)
	}
	if got := m2.Status(b); got != GenPromoted {
		t.Fatalf("b status = %v, want promoted", got)
	}
	if live, ok := m2.Promoted(); !ok || live != b {
		t.Fatalf("promoted = %x/%v, want b", live[:4], ok)
	}
	if got := m2.Status(dg(9)); got != GenUnknown {
		t.Fatalf("unseen digest status = %v, want unknown", got)
	}
	gens := m2.Generations()
	if len(gens) != 2 || gens[0].Digest != b || gens[1].Digest != a {
		t.Fatalf("generations order wrong: %+v", gens)
	}
}

func TestManifestLastRecordWins(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := dg(3)
	for _, op := range []GenStatus{GenWritten, GenPromoted, GenCorrupt} {
		if err := m.Append(op, a); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := m.Promoted(); ok {
		t.Fatal("corrupting the live generation must clear promotion")
	}
	// A rewrite supersedes the corrupt mark.
	if err := m.Append(GenWritten, a); err != nil {
		t.Fatal(err)
	}
	if got := m.Status(a); got != GenWritten {
		t.Fatalf("status after rewrite = %v, want written", got)
	}
	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Status(a); got != GenWritten {
		t.Fatalf("replayed status = %v, want written", got)
	}
}

func TestManifestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(GenWritten, dg(4)); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(GenPromoted, dg(4)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the second record at every byte boundary; replay must keep
	// the first record and truncate the rest.
	for cut := recLen + 1; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m2, err := OpenManifest(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if got := m2.Status(dg(4)); got != GenWritten {
			t.Fatalf("cut=%d: status = %v, want written (torn promote dropped)", cut, got)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != int64(recLen) {
			t.Fatalf("cut=%d: torn tail not truncated: size %d", cut, st.Size())
		}
		// Appends after truncation must land cleanly.
		if err := m2.Append(GenRetired, dg(4)); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		m3, err := OpenManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := m3.Status(dg(4)); got != GenRetired {
			t.Fatalf("cut=%d: post-truncation append lost: %v", cut, got)
		}
	}
}

func TestManifestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(GenWritten, dg(5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(GenPromoted, dg(5)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	full, _ := os.ReadFile(path)
	full[recLen+20] ^= 0xFF // flip a payload byte of record 2
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Status(dg(5)); got != GenWritten {
		t.Fatalf("status = %v, want written (rotted promote dropped)", got)
	}
}

func TestManifestUnknownOpSkipped(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(GenWritten, dg(6)); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a checksum-valid record with op 99 between two real
	// ones: a journal written by a future binary.
	path := filepath.Join(dir, ManifestName)
	full, _ := os.ReadFile(path)
	alien := append([]byte(nil), full[:recLen]...)
	alien[8+1] = 99
	refreshRecordCRC(alien)
	full = append(full, alien...)
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Append(GenPromoted, dg(6)); err != nil {
		t.Fatal(err)
	}
	m3, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := m3.Status(dg(6)); got != GenPromoted {
		t.Fatalf("status = %v: unknown-op record must be skipped, not fatal", got)
	}
}

func TestReadManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing journal: %v", err)
	}
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(GenWritten, dg(7)); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(GenPromoted, dg(7)); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Op != GenWritten || recs[1].Op != GenPromoted ||
		recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("records = %+v", recs)
	}
}
