// Store: the manifest-backed snapshot directory the serving layer
// loads and reloads through. One directory holds per-generation
// snapshot files (gen-<digest16>.ribsnap), the manifest journal, and —
// for archives written by the batch CLI — the legacy single-file
// index.ribsnap, which the store still adopts as a fallback so the two
// write paths interoperate.
//
// Opening a store is the crash-recovery point: orphaned write temps
// are swept, the manifest's torn tail (if any) is truncated, snapshot
// files that exist without a manifest record (a crash between the
// durable rename and the journal append) are adopted as written, and
// records whose file has vanished are marked removed. After OpenStore
// returns, the directory and the journal agree.
package ribsnap

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

// DefaultRetain is how many non-live generations (retired or corrupt)
// a store keeps on disk before garbage-collecting the oldest.
const DefaultRetain = 2

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// Retain caps how many non-live generation files survive GC.
	// 0 means DefaultRetain; negative keeps everything.
	Retain int
	// FS is the filesystem seam for writes; nil means the real OS.
	FS FS
}

// Store is a manifest-backed snapshot directory. A mutex serializes
// all methods: the serving layer's reload goroutine writes and
// promotes while the background scrubber reports corruption, and the
// journal must observe one order.
type Store struct {
	mu     sync.Mutex
	dir    string
	fsys   FS
	m      *Manifest
	retain int
}

// GenName returns the snapshot file name for a generation digest.
func GenName(digest [32]byte) string {
	return "gen-" + hex.EncodeToString(digest[:8]) + ".ribsnap"
}

// OpenStore opens (creating if needed) the snapshot store under dir
// and runs crash recovery: temp sweep, manifest torn-tail truncation,
// and file/journal reconciliation.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OS
	}
	retain := opts.Retain
	if retain == 0 {
		retain = DefaultRetain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := sweepTempsFS(fsys, dir); err != nil {
		return nil, fmt.Errorf("ribsnap: store: sweeping temps: %w", err)
	}
	m, err := OpenManifestFS(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("ribsnap: store: %w", err)
	}
	st := &Store{dir: dir, fsys: fsys, m: m, retain: retain}
	if err := st.reconcile(); err != nil {
		return nil, fmt.Errorf("ribsnap: store: %w", err)
	}
	return st, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Manifest exposes the replayed journal state. Callers must not use it
// concurrently with store mutations; prefer Status and Promoted, which
// take the store lock.
func (st *Store) Manifest() *Manifest { return st.m }

// Status reports a generation's replayed lifecycle state.
func (st *Store) Status(digest [32]byte) GenStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m.Status(digest)
}

// Promoted returns the live generation's digest, if any.
func (st *Store) Promoted() ([32]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m.Promoted()
}

// GenPath returns the path a generation's snapshot file lives at.
func (st *Store) GenPath(digest [32]byte) string {
	return filepath.Join(st.dir, GenName(digest))
}

// GenDirPath returns the directory a sharded generation lives under.
func (st *Store) GenDirPath(digest [32]byte) string {
	return filepath.Join(st.dir, GenDirName(digest))
}

// HasShards reports whether the generation exists in the sharded
// layout (a generation directory with a readable shard manifest).
func (st *Store) HasShards(digest [32]byte) bool {
	_, err := os.Stat(filepath.Join(st.GenDirPath(digest), shardManifestName))
	return err == nil
}

// reconcile aligns the journal with the directory: a generation file
// with no record was written durably just before a crash killed the
// journal append — adopt it; a record whose file is gone (operator
// deletion, partial GC) is marked removed so loads stop considering
// it.
func (st *Store) reconcile() error {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return err
	}
	onDisk := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			// A sharded generation directory. Its identity lives in the
			// shard manifest (written last, durably): a directory with a
			// valid manifest was fully written — adopt it; one without is
			// the debris of a writer that died mid-fan-out — remove it.
			if !strings.HasPrefix(name, "gen-") || strings.HasSuffix(name, ".ribsnap") {
				continue
			}
			man, merr := ReadShardManifest(filepath.Join(st.dir, name, shardManifestName))
			if merr != nil {
				if rerr := os.RemoveAll(filepath.Join(st.dir, name)); rerr != nil {
					return rerr
				}
				continue
			}
			onDisk[name] = true
			if st.m.Status(man.Digest) == GenUnknown {
				if err := st.m.Append(GenWritten, man.Digest); err != nil {
					return err
				}
			}
			continue
		}
		if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, ".ribsnap") {
			continue
		}
		onDisk[name] = true
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), ".ribsnap")
		raw, herr := hex.DecodeString(hexPart)
		if herr != nil || len(raw) != 8 {
			continue // foreign file; leave it alone
		}
		// Adoption needs the full digest, which only the file header
		// holds (the name carries a prefix). Read the header; a file
		// that cannot even produce one is write debris — remove it.
		digest, derr := readHeaderDigest(filepath.Join(st.dir, name))
		if derr != nil {
			if rerr := st.fsys.Remove(filepath.Join(st.dir, name)); rerr != nil {
				return rerr
			}
			delete(onDisk, name)
			continue
		}
		if st.m.Status(digest) == GenUnknown {
			if err := st.m.Append(GenWritten, digest); err != nil {
				return err
			}
		}
	}
	for _, rec := range st.m.Generations() {
		if rec.Op == GenRemoved {
			continue
		}
		if !onDisk[GenName(rec.Digest)] && !onDisk[GenDirName(rec.Digest)] {
			if err := st.m.Append(GenRemoved, rec.Digest); err != nil {
				return err
			}
		}
	}
	return nil
}

// readHeaderDigest pulls the archive digest out of a snapshot file's
// header without loading the payload.
func readHeaderDigest(path string) ([32]byte, error) {
	var zero [32]byte
	f, err := os.Open(path)
	if err != nil {
		return zero, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if n, rerr := f.ReadAt(hdr[:], 0); n != headerSize {
		return zero, fmt.Errorf("%w: %d header bytes: %v", ErrTruncated, n, rerr)
	}
	h, err := decodeHeader(hdr[:])
	if err != nil {
		return zero, err
	}
	return h.digest, nil
}

// legacyName is the single-file snapshot the batch CLI maintains; the
// store adopts it read-only when it has no generation of its own for a
// digest.
const legacyName = "index.ribsnap"

// Load returns the snapshot for digest: the store's own generation
// file when the manifest says it is intact, else the legacy
// index.ribsnap. A generation the manifest marks corrupt fails
// immediately with ErrCorrupt — the whole point of the mark is that a
// damaged file must not be re-adopted just because its CRC happens to
// re-verify against damaged expectations, or the damage is in a
// region load-time verification does not reach until queried.
func (st *Store) Load(digest [32]byte) (*Snapshot, error) {
	st.mu.Lock()
	status := st.m.Status(digest)
	st.mu.Unlock()
	switch status {
	case GenCorrupt:
		return nil, fmt.Errorf("%w: generation %s marked corrupt in manifest",
			ErrCorrupt, hex.EncodeToString(digest[:8]))
	case GenWritten, GenPromoted, GenRetired:
		return Load(st.GenPath(digest), digest)
	}
	return Load(filepath.Join(st.dir, legacyName), digest)
}

// Write durably persists a new generation snapshot and journals it as
// written. It does not promote; callers promote after deciding the
// generation is the one to serve.
func (st *Store) Write(f *rib.Frozen, window timex.Range, digest [32]byte, counts []CollectorCount) error {
	return st.WriteLineage(f, window, digest, counts, nil)
}

// WriteLineage is Write with the generation's lineage embedded in the
// snapshot and — when the lineage names a parent — journaled as a
// derived record, so the manifest carries the delta-append ancestry
// chain.
func (st *Store) WriteLineage(f *rib.Frozen, window timex.Range, digest [32]byte, counts []CollectorCount, lin *Lineage) error {
	if err := WriteLineageFS(st.fsys, st.GenPath(digest), f, window, digest, counts, lin); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.journalWritten(digest, lin)
}

// journalWritten appends the written (or derived) record for a fresh
// generation. Callers hold st.mu.
func (st *Store) journalWritten(digest [32]byte, lin *Lineage) error {
	if lin != nil && lin.HasParent {
		return st.m.AppendDerived(digest, lin.Parent)
	}
	return st.m.Append(GenWritten, digest)
}

// Parent reports the generation digest was delta-derived from, if its
// manifest record carried ancestry.
func (st *Store) Parent(digest [32]byte) ([32]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m.Parent(digest)
}

// WriteShards durably persists a sharded generation — shards cut with
// rib.FrozenShards written in parallel on a bounded pool (workers <= 0
// means one per shard), then the shard manifest, then the parent
// directory fsync — and journals it as written. The manifest is
// written last, so crash recovery has a single rule: a generation
// directory with a valid manifest is complete, one without is debris.
// Like Write, it does not promote.
func (st *Store) WriteShards(shards []*rib.Frozen, window timex.Range, digest [32]byte, counts []CollectorCount, workers int) error {
	return st.WriteShardsLineage(shards, window, digest, counts, workers, nil)
}

// WriteShardsLineage is WriteShards with lineage: every shard file
// carries an identical copy (like the window and counts), and a
// parent-bearing lineage journals a derived record.
func (st *Store) WriteShardsLineage(shards []*rib.Frozen, window timex.Range, digest [32]byte, counts []CollectorCount, workers int, lin *Lineage) error {
	if len(shards) == 0 {
		return fmt.Errorf("ribsnap: WriteShards needs at least one shard")
	}
	dir := st.GenDirPath(digest)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if workers <= 0 || workers > len(shards) {
		workers = len(shards)
	}
	errs := make([]error, len(shards))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				errs[i] = WriteLineageFS(st.fsys, filepath.Join(dir, ShardFileName(i)),
					shards[i], window, digest, counts, lin)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ribsnap: shard %d: %w", i, err)
		}
	}
	man := &ShardManifest{Digest: digest, Window: window}
	man.Shards = make([]ShardInfo, len(shards))
	for i, f := range shards {
		si := ShardInfo{NumPrefixes: len(f.Prefixes)}
		if len(f.Prefixes) > 0 {
			si.Bound = f.Prefixes[0]
		}
		man.Shards[i] = si
	}
	if err := writeShardManifestFS(st.fsys, dir, man); err != nil {
		return err
	}
	if err := st.fsys.SyncDir(st.dir); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.journalWritten(digest, lin)
}

// LoadShards opens the sharded generation for digest as a ShardSet.
// The manifest refuses generations journaled corrupt, exactly as Load
// does for single-file generations.
func (st *Store) LoadShards(digest [32]byte, maxResident int) (*ShardSet, error) {
	st.mu.Lock()
	status := st.m.Status(digest)
	st.mu.Unlock()
	if status == GenCorrupt {
		return nil, fmt.Errorf("%w: generation %s marked corrupt in manifest",
			ErrCorrupt, hex.EncodeToString(digest[:8]))
	}
	return OpenShardSet(st.GenDirPath(digest), digest, maxResident)
}

// Promote journals digest as the live generation, retires the previous
// one (if different), and garbage-collects beyond the retention cap.
// Promoting the already-live generation is a no-op, so reload cycles
// that land on the same archive state do not grow the journal.
func (st *Store) Promote(digest [32]byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.m.Promoted(); ok && cur == digest {
		return nil
	}
	prev, hadPrev := st.m.Promoted()
	if err := st.m.Append(GenPromoted, digest); err != nil {
		return err
	}
	if hadPrev && prev != digest {
		if err := st.m.Append(GenRetired, prev); err != nil {
			return err
		}
	}
	return st.gc()
}

// MarkCorrupt journals a generation as damaged (scrub mismatch, load
// failure). Subsequent Store.Load calls for the digest fail with
// ErrCorrupt until a rewrite supersedes the mark.
func (st *Store) MarkCorrupt(digest [32]byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m.Append(GenCorrupt, digest)
}

// GC removes non-live generation files beyond the retention cap,
// oldest records first, journaling each removal. Corrupt generations
// are kept within the same cap — they are forensic evidence — but are
// first in line for eviction.
func (st *Store) GC() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gc()
}

func (st *Store) gc() error {
	if st.retain < 0 {
		return nil
	}
	var evictable []ManifestRecord
	for _, rec := range st.m.Generations() {
		if rec.Op == GenRetired || rec.Op == GenCorrupt {
			evictable = append(evictable, rec)
		}
	}
	if len(evictable) <= st.retain {
		return nil
	}
	// Corrupt first, then oldest first (Generations is already
	// seq-ordered; a stable partition keeps that within each class).
	sort.SliceStable(evictable, func(i, j int) bool {
		ci, cj := evictable[i].Op == GenCorrupt, evictable[j].Op == GenCorrupt
		return ci && !cj
	})
	for _, rec := range evictable[:len(evictable)-st.retain] {
		path := st.GenPath(rec.Digest)
		if err := st.fsys.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		// A sharded generation is a directory; recursive removal stays
		// outside the fault-injection seam (each file inside was written
		// through it, but GC of a retired tree is not a durability edge
		// the crash suite needs to cut).
		if dirPath := st.GenDirPath(rec.Digest); dirPath != "" {
			if err := os.RemoveAll(dirPath); err != nil {
				return err
			}
		}
		if err := st.m.Append(GenRemoved, rec.Digest); err != nil {
			return err
		}
	}
	return st.fsys.SyncDir(st.dir)
}
