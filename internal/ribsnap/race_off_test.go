//go:build !race

package ribsnap

// raceEnabled reports whether the race detector is compiled in. The
// eviction soak trims its iteration count under it: instrumented
// mmap/madvise churn is slow enough to time out otherwise.
const raceEnabled = false
