// The filesystem seam under the snapshot write path. Everything Write
// touches on disk goes through the fsio.FS interface (aliased here for
// callers), so the disk-fault injector
// (internal/ingest/faultinject.DiskFS) can interpose short writes,
// ENOSPC, bit flips on the way down, and fail-stop crashes at any step
// — and the crash-recovery suite can prove that whatever step the
// process dies at, a subsequent Load sees either the old complete
// snapshot or the new complete snapshot, never garbage.
//
// # Why rename alone is not durable
//
// The classic temp+rename pattern is atomic against readers but not
// against power loss: without an fsync of the temp file the rename can
// promote a name whose *contents* never reached the platter, and
// without an fsync of the parent directory the rename itself can
// vanish on power loss (the directory entry lives in the directory's
// own blocks, which have their own writeback schedule). The durable
// sequence is: write temp → fsync temp → close → rename → fsync
// directory. Write follows it exactly, and the manifest journal
// (manifest.go) appends with the same discipline.

package ribsnap

import (
	"os"
	"path/filepath"
	"strings"

	"dropscope/internal/fsio"
)

// File aliases the seam's file interface; see fsio.File.
type File = fsio.File

// FS aliases the seam interface Write runs through; see fsio.FS. The
// default is the real OS (OS); tests and the fault injector substitute
// their own.
type FS = fsio.FS

// OS is the real filesystem.
var OS FS = fsio.OS

// tempPattern names the writer's temp files. SweepTemps matches on the
// prefix (the part before "*"), so the two stay in lockstep.
const tempPattern = ".ribsnap-*"

// SweepTemps garbage-collects orphaned snapshot temp files under dir —
// the debris of writers that crashed between CreateTemp and Rename.
// It returns the names removed. Call it at startup, before any writer
// is live: the sweep cannot tell an orphan from an in-flight temp, so
// it assumes the single-writer discipline the snapshot store already
// requires. A missing dir sweeps nothing.
func SweepTemps(dir string) ([]string, error) {
	return sweepTempsFS(OS, dir)
}

func sweepTempsFS(fsys FS, dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	prefix := strings.TrimSuffix(tempPattern, "*")
	var swept []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
			return swept, err
		}
		swept = append(swept, e.Name())
	}
	return swept, nil
}
