package ribsnap

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

var day0 = timex.MustParseDay("2019-06-05")

func at(d timex.Day) time.Time { return d.Time() }

// splitmix64 is the deterministic PRNG used to randomize worlds.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

// randomIndex builds a closed index over a randomized world: a few
// collectors, each with a peer table, RIB seed records, and
// announce/withdraw churn over a mix of shared and collector-local
// prefixes (including covering/covered pairs, MOAS, and open spans).
func randomIndex(t testing.TB, seed uint64) (*rib.Index, timex.Range) {
	t.Helper()
	rng := splitmix64(seed)
	window := timex.Range{First: day0, Last: day0 + 60}

	ix := rib.NewIndex()
	nCollectors := 2 + rng.intn(3)
	shared := []netx.Prefix{
		netx.MustParsePrefix("192.0.2.0/24"),
		netx.MustParsePrefix("192.0.2.0/25"), // covered by the /24
		netx.MustParsePrefix("198.51.100.0/24"),
	}
	for c := 0; c < nCollectors; c++ {
		name := fmt.Sprintf("rv%d", c)
		peers := make([]mrt.Peer, 2+rng.intn(2))
		for i := range peers {
			peers[i] = mrt.Peer{
				Addr: netx.AddrFrom4(203, 0, byte(113+c), byte(1+i)),
				AS:   bgp.ASN(64500 + 10*c + i),
			}
		}
		recs := []mrt.Record{&mrt.PeerIndexTable{When: at(day0), Peers: peers}}
		for i, p := range peers {
			recs = append(recs, &mrt.RIBPrefix{When: at(day0), Prefix: shared[0],
				Entries: []mrt.RIBEntry{{PeerIndex: uint16(i), OriginatedTime: at(day0 - 5),
					Attrs: bgp.Attrs{Path: bgp.Sequence(p.AS, bgp.ASN(100+rng.intn(3)))}}}})
		}
		nEvents := 10 + rng.intn(20)
		day := day0
		for e := 0; e < nEvents; e++ {
			day += timex.Day(rng.intn(4))
			peer := peers[rng.intn(len(peers))]
			var pfx netx.Prefix
			if rng.intn(3) == 0 {
				pfx = shared[rng.intn(len(shared))]
			} else {
				pfx = netx.PrefixFrom(netx.AddrFrom4(10, byte(c), byte(rng.intn(4)), 0), 24-rng.intn(9))
			}
			if rng.intn(4) == 0 {
				recs = append(recs, &mrt.BGP4MPMessage{When: at(day), PeerAS: peer.AS, PeerAddr: peer.Addr,
					LocalAS: 6447, Update: &bgp.Update{Withdrawn: []netx.Prefix{pfx}}})
			} else {
				path := bgp.Sequence(peer.AS, bgp.ASN(3356+rng.intn(2)), bgp.ASN(200+rng.intn(5)))
				recs = append(recs, &mrt.BGP4MPMessage{When: at(day), PeerAS: peer.AS, PeerAddr: peer.Addr,
					LocalAS: 6447, Update: &bgp.Update{Attrs: bgp.Attrs{Path: path}, NLRI: []netx.Prefix{pfx}}})
			}
		}
		if err := ix.Load(name, recs); err != nil {
			t.Fatal(err)
		}
	}
	ix.Close(window.Last)
	return ix, window
}

func writeSnapshot(t testing.TB, ix *rib.Index, window timex.Range, digest [32]byte) string {
	t.Helper()
	frozen, err := ix.Frozen()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.ribsnap")
	counts := []CollectorCount{{Collector: "rv0", Records: 42}, {Collector: "rv1", Records: 7}}
	if err := Write(path, frozen, window, digest, counts); err != nil {
		t.Fatal(err)
	}
	return path
}

// probeDays are the days queries compare on: before, inside, and after
// the window.
func probeDays() []timex.Day {
	return []timex.Day{day0 - 2, day0, day0 + 3, day0 + 11, day0 + 30, day0 + 61, day0 + 90}
}

// TestRoundTripProperty is the encode→decode property over randomized
// worlds: the reloaded index must answer Observed, VisibleFraction,
// OriginTimeline — and the covering and per-peer queries layered on the
// same state — identically to the index the snapshot was taken from.
func TestRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ix, window := randomIndex(t, seed)
			digest := [32]byte{1, 2, 3, byte(seed)}
			path := writeSnapshot(t, ix, window, digest)

			snap, err := Load(path, digest)
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Close()
			got := snap.Index

			if snap.Window != window {
				t.Errorf("window %v != %v", snap.Window, window)
			}
			if !reflect.DeepEqual(got.Peers(), ix.Peers()) {
				t.Fatalf("peers diverged:\ncold %v\nwarm %v", ix.Peers(), got.Peers())
			}
			cp, wp := ix.Prefixes(), got.Prefixes()
			if !reflect.DeepEqual(cp, wp) {
				t.Fatalf("prefixes diverged:\ncold %v\nwarm %v", cp, wp)
			}
			probes := append(append([]netx.Prefix{}, cp...),
				netx.MustParsePrefix("192.0.2.0/26"),   // covered by announced space, never announced
				netx.MustParsePrefix("192.0.0.0/16"),   // covers announced space
				netx.MustParsePrefix("203.0.113.0/24"), // unrelated
			)
			for _, p := range probes {
				if !reflect.DeepEqual(ix.OriginTimeline(p), got.OriginTimeline(p)) {
					t.Errorf("%s: OriginTimeline diverged", p)
				}
				cf, cok := ix.FirstObserved(p)
				wf, wok := got.FirstObserved(p)
				if cf != wf || cok != wok {
					t.Errorf("%s: FirstObserved (%v,%v) != (%v,%v)", p, cf, cok, wf, wok)
				}
				for _, d := range probeDays() {
					if c, w := ix.Observed(p, d), got.Observed(p, d); c != w {
						t.Errorf("%s day %v: Observed %v != %v", p, d, c, w)
					}
					if c, w := ix.VisibleFraction(p, d), got.VisibleFraction(p, d); c != w {
						t.Errorf("%s day %v: VisibleFraction %v != %v", p, d, c, w)
					}
					if c, w := ix.AnyOverlapObserved(p, d), got.AnyOverlapObserved(p, d); c != w {
						t.Errorf("%s day %v: AnyOverlapObserved %v != %v", p, d, c, w)
					}
					if !reflect.DeepEqual(ix.PeersObserving(p, d), got.PeersObserving(p, d)) {
						t.Errorf("%s day %v: PeersObserving diverged", p, d)
					}
					co, cok := ix.OriginAt(p, d)
					wo, wok := got.OriginAt(p, d)
					if co != wo || cok != wok {
						t.Errorf("%s day %v: OriginAt (%v,%v) != (%v,%v)", p, d, co, cok, wo, wok)
					}
					for _, ref := range ix.Peers() {
						if c, w := ix.PeerObserved(ref, p, d), got.PeerObserved(ref, p, d); c != w {
							t.Errorf("%s day %v peer %v: PeerObserved %v != %v", p, d, ref, c, w)
						}
					}
				}
			}
			for _, d := range probeDays() {
				if !reflect.DeepEqual(ix.MOASConflicts(d), got.MOASConflicts(d)) {
					t.Errorf("day %v: MOASConflicts diverged", d)
				}
				if !reflect.DeepEqual(ix.RoutedSpace(d, 1), got.RoutedSpace(d, 1)) {
					t.Errorf("day %v: RoutedSpace diverged", d)
				}
			}
			if !reflect.DeepEqual(ix.ByOrigin(), got.ByOrigin()) {
				t.Error("ByOrigin diverged")
			}
			wantCounts := []CollectorCount{{Collector: "rv0", Records: 42}, {Collector: "rv1", Records: 7}}
			if !reflect.DeepEqual(snap.Counts, wantCounts) {
				t.Errorf("counts %v != %v", snap.Counts, wantCounts)
			}
		})
	}
}

// TestLoadTruncated cuts the file at many points; every cut must fail
// with a typed error — never a successfully loaded wrong index.
func TestLoadTruncated(t *testing.T) {
	ix, window := randomIndex(t, 3)
	digest := [32]byte{9}
	path := writeSnapshot(t, ix, window, digest)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, headerSize - 1, headerSize, headerSize + 5, len(whole) / 2, len(whole) - 1}
	for _, cut := range cuts {
		trunc := filepath.Join(t.TempDir(), "trunc.ribsnap")
		if err := os.WriteFile(trunc, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(trunc, digest)
		if err == nil {
			t.Fatalf("cut at %d: Load succeeded on a truncated snapshot", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut at %d: error %v, want ErrTruncated or ErrCorrupt", cut, err)
		}
	}
}

// TestLoadFlippedBytes flips single bytes across the whole file; every
// flip must surface as some typed validation error.
func TestLoadFlippedBytes(t *testing.T) {
	ix, window := randomIndex(t, 4)
	digest := [32]byte{7}
	path := writeSnapshot(t, ix, window, digest)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	typed := []error{ErrTruncated, ErrCorrupt, ErrVersion, ErrStale}
	for off := 0; off < len(whole); off += 1 + off/16 {
		flipped := append([]byte(nil), whole...)
		flipped[off] ^= 0x40
		target := filepath.Join(dir, "flip.ribsnap")
		if err := os.WriteFile(target, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(target, digest)
		if err == nil {
			t.Fatalf("flip at %d: Load succeeded on a corrupted snapshot", off)
		}
		ok := false
		for _, want := range typed {
			if errors.Is(err, want) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("flip at %d: untyped error %v", off, err)
		}
	}
}

// TestLoadStaleDigest proves a digest mismatch — the archive changed
// since the snapshot — fails with ErrStale.
func TestLoadStaleDigest(t *testing.T) {
	ix, window := randomIndex(t, 5)
	digest := [32]byte{1}
	path := writeSnapshot(t, ix, window, digest)
	if _, err := Load(path, [32]byte{2}); !errors.Is(err, ErrStale) {
		t.Fatalf("error %v, want ErrStale", err)
	}
}

// TestLoadBadVersion proves version skew fails with ErrVersion.
func TestLoadBadVersion(t *testing.T) {
	ix, window := randomIndex(t, 6)
	digest := [32]byte{1}
	path := writeSnapshot(t, ix, window, digest)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole[8] = 99 // version field
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, digest); !errors.Is(err, ErrVersion) {
		t.Fatalf("error %v, want ErrVersion", err)
	}
}

// TestLoadMissing keeps the not-yet-written case distinguishable: a
// missing file is a plain fs error, not a corruption error.
func TestLoadMissing(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.ribsnap"), [32]byte{})
	if !os.IsNotExist(err) {
		t.Fatalf("error %v, want fs.ErrNotExist", err)
	}
}

// TestDigestMRT pins the digest's sensitivity: same bytes same digest,
// any content or name change a different one.
func TestDigestMRT(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.mrt", "aaaa")
	write("b.mrt", "bbbb")
	d1, err := DigestMRT(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DigestMRT(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("digest not deterministic")
	}
	write("b.mrt", "bbbc")
	d3, err := DigestMRT(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("content change did not change digest")
	}
	write("b.mrt", "bbbb")
	write("c.txt", "ignored")
	d4, err := DigestMRT(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d4 != d1 {
		t.Fatal("non-.mrt file changed the digest")
	}
}
