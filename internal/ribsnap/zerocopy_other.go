// On big-endian platforms the little-endian file layout never matches
// memory, so every zero-copy cast declines and the explicit
// little-endian copying decoders in ribsnap.go run instead. Answers
// are identical either way; only load cost differs.

//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package ribsnap

import (
	"dropscope/internal/bgp"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

func spansZeroCopy([]byte) []rib.Span { return nil }
func u32sZeroCopy([]byte) []uint32    { return nil }
func i32sZeroCopy([]byte) []int32     { return nil }
func daysZeroCopy([]byte) []timex.Day { return nil }
func asnsZeroCopy([]byte) []bgp.ASN   { return nil }
