package ribsnap

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAcquireAfterCloseErrClosed is the regression test for the
// unguarded-unmap bug: a late reader arriving after Close must get the
// typed ErrClosed instead of walking unmapped memory.
func TestAcquireAfterCloseErrClosed(t *testing.T) {
	ix, window := randomIndex(t, 11)
	digest := [32]byte{1}
	path := writeSnapshot(t, ix, window, digest)
	snap, err := Load(path, digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Acquire(); err != nil {
		t.Fatalf("Acquire on live snapshot: %v", err)
	}
	snap.Release()
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Acquire(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrClosed", err)
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseDefersUnmapUntilLastRelease pins the drain protocol: with
// readers in flight, Close must not release the mapping; the final
// Release does, exactly once.
func TestCloseDefersUnmapUntilLastRelease(t *testing.T) {
	var unmapped atomic.Int32
	snap := &Snapshot{unmap: func() error { unmapped.Add(1); return nil }}

	for i := 0; i < 3; i++ {
		if err := snap.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if n := unmapped.Load(); n != 0 {
		t.Fatalf("unmapped %d times with 3 readers in flight; want 0", n)
	}
	snap.Release()
	snap.Release()
	if n := unmapped.Load(); n != 0 {
		t.Fatalf("unmapped %d times with 1 reader in flight; want 0", n)
	}
	snap.Release()
	if n := unmapped.Load(); n != 1 {
		t.Fatalf("unmapped %d times after last Release; want 1", n)
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("Close after drain: %v", err)
	}
	if n := unmapped.Load(); n != 1 {
		t.Fatalf("unmapped %d times after repeated Close; want 1", n)
	}
}

// TestZeroSnapshotLifetime checks a Snapshot with no mapping (a
// cold-built index wrapped for the daemon) supports the same protocol.
func TestZeroSnapshotLifetime(t *testing.T) {
	var snap Snapshot
	if err := snap.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if err := snap.Acquire(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrClosed", err)
	}
}

// TestConcurrentAcquireCloseRace hammers Acquire/Release from many
// goroutines while Close lands mid-flight: every reader either acquired
// (and the mapping stayed alive until its Release) or saw ErrClosed,
// and the unmap ran exactly once. Run under -race this also proves the
// guard itself is data-race-free.
func TestConcurrentAcquireCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		var unmapped atomic.Int32
		alive := atomic.Bool{}
		alive.Store(true)
		snap := &Snapshot{unmap: func() error {
			alive.Store(false)
			unmapped.Add(1)
			return nil
		}}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if err := snap.Acquire(); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Acquire: %v", err)
						}
						return
					}
					if !alive.Load() {
						t.Error("acquired snapshot with mapping already released")
					}
					snap.Release()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap.Close()
		}()
		wg.Wait()
		if n := unmapped.Load(); n != 1 {
			t.Fatalf("round %d: unmapped %d times; want 1", round, n)
		}
	}
}

// TestLoadRecordsDigest checks Load surfaces the archive digest the
// snapshot was keyed on — the generation identity the daemon reports.
func TestLoadRecordsDigest(t *testing.T) {
	ix, window := randomIndex(t, 12)
	digest := [32]byte{9, 8, 7}
	path := writeSnapshot(t, ix, window, digest)
	snap, err := Load(path, digest)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.Digest != digest {
		t.Fatalf("snapshot digest %x, want %x", snap.Digest, digest)
	}
}
