//go:build !linux

package ribsnap

import (
	"io"
	"os"
)

// mapFile reads the whole file on platforms without the mmap path. The
// zero-copy casts still apply to the read buffer when aligned, so only
// the one-time file read costs more than the mapped variant. The file
// handle is kept open (and returned) so the background scrubber can
// re-verify the same inode; the caller closes it on release.
func mapFile(path string) ([]byte, *os.File, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return data, f, nil, nil
}

// dropPages is a no-op without a mapping to advise on.
func dropPages([]byte) {}
