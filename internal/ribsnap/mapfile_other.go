//go:build !linux

package ribsnap

import "os"

// mapFile reads the whole file on platforms without the mmap path.
// The zero-copy casts still apply to the read buffer when aligned, so
// only the one-time file read costs more than the mapped variant.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
