package ribsnap

import (
	"reflect"
	"testing"

	"dropscope/internal/netx"
)

// withZeroCopy runs fn with the zero-copy cast forced on or off,
// restoring the previous setting afterwards. Serial use only: the
// gate is a package variable, not per-load state.
func withZeroCopy(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := zerocopyEnabled
	zerocopyEnabled = on
	defer func() { zerocopyEnabled = prev }()
	fn()
}

// TestCopyDecodePathMatchesZeroCopy forces the copying decode fallback
// — the code path a big-endian or misaligned mapping would take, which
// little-endian CI otherwise never executes — and checks that the two
// decodes of the same snapshot answer queries identically.
func TestCopyDecodePathMatchesZeroCopy(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		ix, window := randomIndex(t, seed)
		digest := [32]byte{9, 9, byte(seed)}
		path := writeSnapshot(t, ix, window, digest)

		load := func(on bool) *Snapshot {
			t.Helper()
			var s *Snapshot
			withZeroCopy(t, on, func() {
				var err error
				s, err = Load(path, digest)
				if err != nil {
					t.Fatalf("zerocopy=%v: %v", on, err)
				}
			})
			return s
		}
		zc, cp := load(true), load(false)

		probes := append(append([]netx.Prefix{}, zc.Index.Prefixes()...),
			netx.MustParsePrefix("192.0.2.0/26"),
			netx.MustParsePrefix("203.0.113.0/24"),
		)
		if !reflect.DeepEqual(zc.Index.Peers(), cp.Index.Peers()) {
			t.Fatal("peers diverged between decode paths")
		}
		if !reflect.DeepEqual(zc.Index.Prefixes(), cp.Index.Prefixes()) {
			t.Fatal("prefixes diverged between decode paths")
		}
		if !reflect.DeepEqual(zc.Index.ByOrigin(), cp.Index.ByOrigin()) {
			t.Fatal("ByOrigin diverged between decode paths")
		}
		for _, p := range probes {
			if !reflect.DeepEqual(zc.Index.OriginTimeline(p), cp.Index.OriginTimeline(p)) {
				t.Errorf("%s: OriginTimeline diverged", p)
			}
			for _, d := range probeDays() {
				if a, b := zc.Index.Observed(p, d), cp.Index.Observed(p, d); a != b {
					t.Errorf("%s day %v: Observed %v != %v", p, d, a, b)
				}
				if a, b := zc.Index.VisibleFraction(p, d), cp.Index.VisibleFraction(p, d); a != b {
					t.Errorf("%s day %v: VisibleFraction %v != %v", p, d, a, b)
				}
				if !reflect.DeepEqual(zc.Index.PeersObserving(p, d), cp.Index.PeersObserving(p, d)) {
					t.Errorf("%s day %v: PeersObserving diverged", p, d)
				}
			}
		}
		for _, d := range probeDays() {
			if !reflect.DeepEqual(zc.Index.MOASConflicts(d), cp.Index.MOASConflicts(d)) {
				t.Errorf("day %v: MOASConflicts diverged", d)
			}
		}
		zc.Close()
		cp.Close()
	}
}

// TestCopyDecodeIsIndependentOfMapping: with zero-copy disabled the
// decoded index must not alias the mapped bytes — closing the snapshot
// (unmapping the file) must leave every decoded structure readable.
func TestCopyDecodeIsIndependentOfMapping(t *testing.T) {
	ix, window := randomIndex(t, 3)
	digest := [32]byte{7}
	path := writeSnapshot(t, ix, window, digest)

	withZeroCopy(t, false, func() {
		s, err := Load(path, digest)
		if err != nil {
			t.Fatal(err)
		}
		prefixes := s.Index.Prefixes()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// After Close the mapping is gone; copied columns must survive.
		for _, p := range prefixes {
			for _, d := range probeDays() {
				_ = s.Index.Observed(p, d)
				_ = s.Index.VisibleFraction(p, d)
			}
			_ = s.Index.OriginTimeline(p)
		}
	})
}
