package ribsnap

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
)

// FuzzSnapshotLoad drives the header/section/column parser with
// adversarial bytes. Whatever the input, decode must return a typed
// error or a usable snapshot — never panic, never index out of bounds.
//
// Two probes per input: the raw bytes (exercising the header, CRC, and
// digest gates), and a patched copy whose header CRC is recomputed over
// the mutated payload (so fuzz mutations reach the section table and
// the per-section decoders instead of dying at the checksum).
func FuzzSnapshotLoad(f *testing.F) {
	ix, window := randomIndex(f, 5)
	digest := [32]byte{5, 5, 5}
	path := writeSnapshot(f, ix, window, digest)
	real, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)
	f.Add(real[:headerSize])
	f.Add(real[:len(real)/2])
	f.Add([]byte{})
	f.Add([]byte("DSRIBSNP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var dg [32]byte
		if len(data) >= 48 {
			copy(dg[:], data[16:48])
		}
		if s, derr := decode(data, dg); derr == nil {
			_ = s.Index.Peers()
			_ = s.Index.Prefixes()
		}

		if len(data) < headerSize {
			return
		}
		b := append([]byte(nil), data...)
		paylen := binary.LittleEndian.Uint64(b[48:56])
		if paylen > uint64(len(b)-headerSize) {
			return
		}
		binary.LittleEndian.PutUint32(b[56:60],
			crc32.Checksum(b[headerSize:headerSize+int(paylen)], castagnoli))
		copy(dg[:], b[16:48])
		if s, derr := decode(b, dg); derr == nil {
			_ = s.Index.Peers()
			for _, p := range s.Index.Prefixes() {
				_ = s.Index.OriginTimeline(p)
				break
			}
		}
	})
}
