// Sharded generation layout: one generation directory
// (gen-<digest16>/) holding K independently mmap-able shard snapshots
// (shard-<i>.ribsnap, each a standard snapshot file over one prefix
// range) plus a small shard manifest (shards.manifest) recording the
// boundary table — the first prefix and prefix count of every shard —
// keyed to the archive digest. The per-shard files reuse the exact v1
// snapshot format, so the durable-write discipline, load-time CRC and
// digest checks, and the incremental scrubber all extend per shard
// without new code paths; the manifest is the only new on-disk record
// and is written with the same temp+fsync+rename+syncdir sequence.
//
// ShardSet is the residency manager over one such directory: shards
// fault in on first touch (Load + mmap), a memory budget caps how many
// stay resident, and the least-recently-used shard is evicted — its
// pages dropped with madvise(DONTNEED) and its snapshot closed — when
// the budget is exceeded. Eviction rides the refcounted Snapshot
// lifecycle: in-flight readers of the victim finish against the old
// mapping (the final Release unmaps), while new queries fault the
// shard back in. A multi-year archive therefore serves from a bounded
// RSS, paying one fault per cold range instead of holding everything.
package ribsnap

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

// shardManifestName is the boundary-table file inside a generation
// directory.
const shardManifestName = "shards.manifest"

// shardManifestVersion versions the manifest encoding; the shard
// snapshot files themselves carry the ribsnap Version.
const shardManifestVersion = 1

var shardMagic = [8]byte{'D', 'S', 'S', 'H', 'M', 'A', 'N', 'I'}

// GenDirName returns the sharded generation directory name for a
// digest. It deliberately lacks the .ribsnap suffix, so single-file
// and sharded generations of the same digest coexist without clashing.
func GenDirName(digest [32]byte) string {
	return "gen-" + hex.EncodeToString(digest[:8])
}

// ShardFileName returns shard i's snapshot file name.
func ShardFileName(i int) string { return fmt.Sprintf("shard-%d.ribsnap", i) }

// ShardInfo is one shard's boundary-table record.
type ShardInfo struct {
	// Bound is the first (address-ordered) prefix the shard owns; the
	// first shard additionally owns everything below its bound.
	Bound netx.Prefix
	// NumPrefixes is the shard's distinct prefix count.
	NumPrefixes int
}

// ShardManifest is the decoded shards.manifest: the boundary table a
// point query routes through, keyed to the archive digest it was cut
// from.
type ShardManifest struct {
	Digest [32]byte
	Window timex.Range
	Shards []ShardInfo
}

// encodeShardManifest renders the manifest: magic, version, shard
// count, digest, window, per-shard (addr, bits, nprefixes) records,
// and a trailing CRC-32C over everything before it.
func encodeShardManifest(m *ShardManifest) []byte {
	buf := make([]byte, 0, 8+4+4+32+8+12*len(m.Shards)+4)
	buf = append(buf, shardMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, shardManifestVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Shards)))
	buf = append(buf, m.Digest[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Window.First))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Window.Last))
	for _, s := range m.Shards {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Bound.Addr()))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Bound.Bits()))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.NumPrefixes))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// ReadShardManifest decodes and verifies a shards.manifest file.
func ReadShardManifest(path string) (*ShardManifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < 8+4+4+32+8+4 {
		return nil, fmt.Errorf("%w: shard manifest %d bytes", ErrTruncated, len(b))
	}
	if string(b[0:8]) != string(shardMagic[:]) {
		return nil, fmt.Errorf("%w: shard manifest bad magic", ErrCorrupt)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != le32(tail) {
		return nil, fmt.Errorf("%w: shard manifest CRC mismatch", ErrCorrupt)
	}
	if v := le32(b[8:12]); v != shardManifestVersion {
		return nil, fmt.Errorf("%w: shard manifest version %d, want %d", ErrVersion, v, shardManifestVersion)
	}
	k := int(le32(b[12:16]))
	if want := 8 + 4 + 4 + 32 + 8 + 12*k + 4; len(b) != want {
		return nil, fmt.Errorf("%w: shard manifest %d bytes, want %d for %d shards", ErrCorrupt, len(b), want, k)
	}
	m := &ShardManifest{}
	copy(m.Digest[:], b[16:48])
	m.Window = timex.Range{First: timex.Day(le32(b[48:52])), Last: timex.Day(le32(b[52:56]))}
	off := 56
	m.Shards = make([]ShardInfo, k)
	for i := range m.Shards {
		addr := netx.Addr(le32(b[off : off+4]))
		bits := int(le32(b[off+4 : off+8]))
		if bits > 32 {
			return nil, fmt.Errorf("%w: shard %d bound /%d", ErrCorrupt, i, bits)
		}
		m.Shards[i] = ShardInfo{
			Bound:       netx.PrefixFrom(addr, bits),
			NumPrefixes: int(le32(b[off+8 : off+12])),
		}
		off += 12
	}
	return m, nil
}

// writeShardManifestFS durably writes the manifest into dir with the
// same temp → fsync → rename → fsync-dir sequence every snapshot write
// uses.
func writeShardManifestFS(fsys FS, dir string, m *ShardManifest) (err error) {
	tmp, err := fsys.CreateTemp(dir, tempPattern)
	if err != nil {
		return fmt.Errorf("ribsnap: shard manifest temp: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmpName)
		}
	}()
	if _, err = tmp.Write(encodeShardManifest(m)); err != nil {
		return fmt.Errorf("ribsnap: shard manifest write: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ribsnap: shard manifest sync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ribsnap: shard manifest close: %w", err)
	}
	if err = fsys.Rename(tmpName, filepath.Join(dir, shardManifestName)); err != nil {
		return fmt.Errorf("ribsnap: shard manifest rename: %w", err)
	}
	if err = fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("ribsnap: shard manifest dir sync: %w", err)
	}
	return nil
}

// ShardSet manages the residency of one sharded generation directory.
// Construct with OpenShardSet; hand queries to shards through Handles
// (or Sharded). All residency state sits behind one mutex: faulting a
// shard in is single-flight, and the resident fast path (one lock, one
// refcount bump) allocates nothing.
type ShardSet struct {
	dir     string
	digest  [32]byte
	man     *ShardManifest
	window  timex.Range
	counts  []CollectorCount
	peers   []rib.PeerRef
	lineage *Lineage

	mu          sync.Mutex
	slots       []*Snapshot // nil = not resident
	bad         []bool      // scrub found rot; fail fast, serve the rest
	lastUse     []int64     // LRU clock value per shard
	tick        int64
	maxResident int // <= 0 means unlimited
	resident    int
	closed      bool

	faults    atomic.Int64 // shards faulted in (including the eager first)
	evictions atomic.Int64 // shards evicted for budget
}

// OpenShardSet opens the sharded generation under dir, verifying the
// manifest against the expected archive digest. maxResident caps how
// many shards stay mapped at once (<= 0 means all of them). The first
// shard is faulted in eagerly: its header supplies the window and
// collector counts (every shard file carries identical copies) and
// the global peer table.
func OpenShardSet(dir string, digest [32]byte, maxResident int) (*ShardSet, error) {
	man, err := ReadShardManifest(filepath.Join(dir, shardManifestName))
	if err != nil {
		return nil, err
	}
	if man.Digest != digest {
		return nil, ErrStale
	}
	k := len(man.Shards)
	if k == 0 {
		return nil, fmt.Errorf("%w: shard manifest lists no shards", ErrCorrupt)
	}
	ss := &ShardSet{
		dir:         dir,
		digest:      digest,
		man:         man,
		slots:       make([]*Snapshot, k),
		bad:         make([]bool, k),
		lastUse:     make([]int64, k),
		maxResident: maxResident,
	}
	snap, err := Load(ss.ShardPath(0), digest)
	if err != nil {
		return nil, fmt.Errorf("ribsnap: shard 0: %w", err)
	}
	ss.slots[0] = snap
	ss.resident = 1
	ss.tick = 1
	ss.lastUse[0] = 1
	ss.faults.Add(1)
	// Decoded by copy in every snapshot: safe past shard-0 eviction.
	ss.window = snap.Window
	ss.counts = snap.Counts
	ss.peers = snap.Index.Peers()
	ss.lineage = snap.Lineage
	return ss, nil
}

// Window returns the study window the shards were frozen over.
func (ss *ShardSet) Window() timex.Range { return ss.window }

// Counts returns the per-collector record counts preserved at freeze.
func (ss *ShardSet) Counts() []CollectorCount { return ss.counts }

// Peers returns the global peer table shared by every shard.
func (ss *ShardSet) Peers() []rib.PeerRef { return ss.peers }

// Digest returns the archive digest the generation is keyed on.
func (ss *ShardSet) Digest() [32]byte { return ss.digest }

// Lineage returns the delta-append lineage the shards were written
// with (every shard file carries an identical copy), or nil for a
// generation persisted before lineage support.
func (ss *ShardSet) Lineage() *Lineage { return ss.lineage }

// NumShards returns the shard count.
func (ss *ShardSet) NumShards() int { return len(ss.slots) }

// ShardPath returns shard i's snapshot file path.
func (ss *ShardSet) ShardPath(i int) string {
	return filepath.Join(ss.dir, ShardFileName(i))
}

// Manifest returns the decoded boundary table.
func (ss *ShardSet) Manifest() *ShardManifest { return ss.man }

// AcquireIndex pins shard i's index: resident shards return
// immediately (no allocation), evicted shards fault back in under the
// set lock — single-flight, so a thundering herd of queries against a
// cold range maps the file once. The returned release token must be
// released exactly once; until then the index stays valid even if the
// shard is evicted or the set closed underneath.
func (ss *ShardSet) AcquireIndex(i int) (*rib.Index, rib.ShardRelease, error) {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if i < 0 || i >= len(ss.slots) {
		ss.mu.Unlock()
		return nil, nil, fmt.Errorf("ribsnap: shard %d of %d", i, len(ss.slots))
	}
	if ss.bad[i] {
		ss.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: shard %d marked bad", ErrCorrupt, i)
	}
	if snap := ss.slots[i]; snap != nil {
		if err := snap.Acquire(); err == nil {
			ss.tick++
			ss.lastUse[i] = ss.tick
			ss.mu.Unlock()
			return snap.Index, snap, nil
		}
		// Closed underneath (cannot happen while we hold the lock, but
		// stay defensive): treat as evicted and fault back in.
		ss.slots[i] = nil
		ss.resident--
	}
	snap, err := Load(ss.ShardPath(i), ss.digest)
	if err != nil {
		ss.mu.Unlock()
		return nil, nil, fmt.Errorf("ribsnap: shard %d: %w", i, err)
	}
	ss.faults.Add(1)
	ss.slots[i] = snap
	ss.resident++
	ss.tick++
	ss.lastUse[i] = ss.tick
	snap.Acquire() // fresh snapshot: cannot fail
	ss.evictLocked(i)
	ss.mu.Unlock()
	return snap.Index, snap, nil
}

// evictLocked closes least-recently-used shards (never keep) until the
// budget holds. Closing a victim with readers in flight only marks it:
// the last Release unmaps, so the budget is a target the set converges
// to, not a hard ceiling during overlap.
func (ss *ShardSet) evictLocked(keep int) {
	for ss.maxResident > 0 && ss.resident > ss.maxResident {
		victim := -1
		for j, snap := range ss.slots {
			if snap == nil || j == keep {
				continue
			}
			if victim < 0 || ss.lastUse[j] < ss.lastUse[victim] {
				victim = j
			}
		}
		if victim < 0 {
			return
		}
		snap := ss.slots[victim]
		ss.slots[victim] = nil
		ss.resident--
		ss.evictions.Add(1)
		// Hint the pages out now — a clean read-only mapping refaults
		// from the file, so this is safe under in-flight readers — then
		// retire the snapshot; the refcount drains the mapping itself.
		snap.DropPages()
		snap.Close()
	}
}

// MarkBad flags shard i after a scrub finding: it is evicted if
// resident and every future AcquireIndex fails fast with ErrCorrupt,
// so the damage degrades only this shard's prefix range.
func (ss *ShardSet) MarkBad(i int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if i < 0 || i >= len(ss.slots) || ss.bad[i] {
		return
	}
	ss.bad[i] = true
	if snap := ss.slots[i]; snap != nil {
		ss.slots[i] = nil
		ss.resident--
		snap.Close()
	}
}

// SetMaxResident adjusts the residency budget (<= 0 means unlimited)
// and evicts immediately if the new budget is exceeded.
func (ss *ShardSet) SetMaxResident(n int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.maxResident = n
	if !ss.closed {
		ss.evictLocked(-1)
	}
}

// Resident reports how many shards are currently mapped.
func (ss *ShardSet) Resident() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.resident
}

// Faults reports how many shard fault-ins the set has performed.
func (ss *ShardSet) Faults() int64 { return ss.faults.Load() }

// Evictions reports how many budget evictions the set has performed.
func (ss *ShardSet) Evictions() int64 { return ss.evictions.Load() }

// ResidentShards reports per-shard residency.
func (ss *ShardSet) ResidentShards() []bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]bool, len(ss.slots))
	for i, snap := range ss.slots {
		out[i] = snap != nil
	}
	return out
}

// IsBad reports whether shard i has been marked bad by a scrub
// finding.
func (ss *ShardSet) IsBad(i int) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return i >= 0 && i < len(ss.bad) && ss.bad[i]
}

// BadShards reports per-shard scrub-degraded state.
func (ss *ShardSet) BadShards() []bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return append([]bool(nil), ss.bad...)
}

// Close retires the set: resident shards are closed (in-flight readers
// drain against their old mappings) and future acquires fail.
func (ss *ShardSet) Close() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil
	}
	ss.closed = true
	var snaps []*Snapshot
	for i, snap := range ss.slots {
		if snap != nil {
			snaps = append(snaps, snap)
			ss.slots[i] = nil
		}
	}
	ss.resident = 0
	ss.mu.Unlock()
	var err error
	for _, snap := range snaps {
		if cerr := snap.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// setShard adapts one shard index to rib.ShardHandle.
type setShard struct {
	ss *ShardSet
	i  int
}

func (h setShard) AcquireIndex() (*rib.Index, rib.ShardRelease, error) {
	return h.ss.AcquireIndex(h.i)
}

// Handles returns the set's shards as rib.ShardHandle values, in shard
// order.
func (ss *ShardSet) Handles() []rib.ShardHandle {
	out := make([]rib.ShardHandle, len(ss.slots))
	for i := range out {
		out[i] = setShard{ss: ss, i: i}
	}
	return out
}

// Sharded assembles the fan-out querier over the set, routing through
// the manifest's boundary table.
func (ss *ShardSet) Sharded(workers int) (*rib.Sharded, error) {
	bounds := make([]netx.Prefix, len(ss.man.Shards))
	counts := make([]int, len(ss.man.Shards))
	for i, si := range ss.man.Shards {
		bounds[i] = si.Bound
		counts[i] = si.NumPrefixes
	}
	return rib.NewSharded(ss.Handles(), bounds, counts, ss.peers, workers)
}

// Master wraps the set behind a mapping-free Snapshot whose lifecycle
// closes it: the serving layer's generation plumbing (refcount pinning,
// Close-on-swap, drain accounting) then manages a sharded generation
// exactly like a single-file one — the set shuts down when the old
// generation's last in-flight request releases.
func (ss *ShardSet) Master() *Snapshot {
	return &Snapshot{
		Window: ss.window,
		Counts: ss.counts,
		Digest: ss.digest,
		unmap:  ss.Close,
	}
}
