// Background scrub support: incremental re-verification of a loaded
// snapshot's bytes against the checksums in its header, long after the
// load-time check passed. A snapshot that verified once can still rot —
// disk bitrot, a torn overwrite, an operator truncating the file — and
// a mapped generation serves whatever the page cache hands it, so the
// serving layer re-reads the backing file in small rate-limited steps
// and compares the running CRC-32C against the header.
//
// The scrub reads through the *retained file handle* (the fd Load kept
// open), not the mapping and not the path:
//
//   - Reading the fd goes through the same page cache the MAP_PRIVATE
//     mapping is backed by, so resident pages are verified exactly as
//     served, and evicted pages are re-read from disk — which is where
//     rot is caught.
//   - Reading the fd never faults a mapped page, so a file truncated
//     underneath the mapping surfaces as a short read (ErrTruncated),
//     not a SIGBUS in the scrubber.
//   - The fd pins the inode, so a snapshot renamed-over or unlinked
//     mid-scrub is still verified as the generation being served, not
//     confused with its replacement.

package ribsnap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Scrub is one incremental verification pass over a file-backed
// snapshot. Step it until done; any error means the backing bytes no
// longer match what was loaded. A Scrub made with NewScrub holds no
// resources beyond the snapshot's own retained handle, so abandoning
// one mid-pass is free; a Scrub made with OpenScrub owns its file
// handle and must be Closed.
type Scrub struct {
	s    *Snapshot
	off  uint64 // payload bytes verified so far
	crc  uint32
	done bool
	owns bool // OpenScrub path: the fd is ours to close
}

// NewScrub starts a verification pass. It returns nil for cold-built
// (mapping-free) snapshots, which have no backing file to verify.
func (s *Snapshot) NewScrub() *Scrub {
	if s.file == nil {
		return nil
	}
	return &Scrub{s: s}
}

// OpenScrub starts a verification pass over the snapshot file at path
// without loading it — the path the sharded scrubber takes, where a
// shard may be evicted (no retained handle exists) yet its on-disk
// bytes still need periodic re-verification. The expected identity is
// taken from the file's own header at open; Step then proves the
// payload matches that header, exactly as the loaded-snapshot pass
// does. The returned Scrub owns its file handle: Close it when the
// pass completes or is abandoned.
func OpenScrub(path string) (*Scrub, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	if n, rerr := f.ReadAt(hdr[:], 0); n != headerSize {
		f.Close()
		return nil, fmt.Errorf("%w: scrub: header short (%d bytes): %v", ErrTruncated, n, rerr)
	}
	h, err := decodeHeader(hdr[:])
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Scrub{
		s:    &Snapshot{Digest: h.digest, path: path, file: f, paylen: h.paylen, crc: h.crc},
		owns: true,
	}, nil
}

// Close releases an OpenScrub handle; a NewScrub pass has nothing to
// release and Close is a no-op.
func (sc *Scrub) Close() error {
	if !sc.owns || sc.s.file == nil {
		return nil
	}
	f := sc.s.file
	sc.s.file = nil
	return f.Close()
}

// Step verifies up to n more payload bytes (plus, on the first step,
// the 64-byte header) and reports whether the pass is complete. A
// header that no longer matches the loaded identity, a short read, or
// a final CRC mismatch returns an error wrapping ErrCorrupt or
// ErrTruncated; the pass is then dead and the snapshot's bytes must be
// considered damaged.
func (sc *Scrub) Step(n int) (done bool, err error) {
	if sc.done {
		return true, nil
	}
	if n <= 0 {
		n = 1 << 20
	}
	if sc.off == 0 {
		if err := sc.checkHeader(); err != nil {
			return false, err
		}
	}
	remaining := sc.s.paylen - sc.off
	if uint64(n) > remaining {
		n = int(remaining)
	}
	if n > 0 {
		buf := make([]byte, n)
		rn, rerr := sc.s.file.ReadAt(buf, int64(headerSize)+int64(sc.off))
		if rn != n {
			return false, fmt.Errorf("%w: scrub: payload short at %d/%d bytes: %v",
				ErrTruncated, sc.off+uint64(rn), sc.s.paylen, rerr)
		}
		sc.crc = crc32.Update(sc.crc, castagnoli, buf)
		sc.off += uint64(n)
	}
	if sc.off < sc.s.paylen {
		return false, nil
	}
	if sc.crc != sc.s.crc {
		return false, fmt.Errorf("%w: scrub: payload CRC %08x, header says %08x",
			ErrCorrupt, sc.crc, sc.s.crc)
	}
	sc.done = true
	return true, nil
}

// Offset reports how many payload bytes the pass has verified.
func (sc *Scrub) Offset() uint64 { return sc.off }

// Size reports the payload size the pass will cover.
func (sc *Scrub) Size() uint64 { return sc.s.paylen }

// checkHeader re-reads the 64-byte header and compares it against the
// identity captured at load: magic, version, digest, payload length,
// and stored CRC. Any drift means the file is no longer the snapshot
// that was loaded.
func (sc *Scrub) checkHeader() error {
	var hdr [headerSize]byte
	if n, err := sc.s.file.ReadAt(hdr[:], 0); n != headerSize {
		return fmt.Errorf("%w: scrub: header short (%d bytes): %v", ErrTruncated, n, err)
	}
	fresh, err := decodeHeader(hdr[:])
	if err != nil {
		return fmt.Errorf("scrub: header no longer parses: %w", err)
	}
	if fresh.digest != sc.s.Digest || fresh.paylen != sc.s.paylen || fresh.crc != sc.s.crc {
		return fmt.Errorf("%w: scrub: header drifted from the loaded identity", ErrCorrupt)
	}
	return nil
}

// header is the parsed fixed header, shared by decode and the scrub
// path.
type header struct {
	version uint32
	nsec    uint32
	digest  [32]byte
	paylen  uint64
	crc     uint32
}

// decodeHeader validates the fixed 64-byte header fields (not the
// payload bounds, which need the file size).
func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	if string(b[0:8]) != string(magic[:]) {
		return h, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	h.version = le32(b[8:12])
	if h.version != Version {
		return h, fmt.Errorf("%w: file version %d, want %d", ErrVersion, h.version, Version)
	}
	if le32(b[60:64]) != 0 {
		return h, fmt.Errorf("%w: reserved header bytes set", ErrCorrupt)
	}
	h.nsec = le32(b[12:16])
	copy(h.digest[:], b[16:48])
	h.paylen = le64(b[48:56])
	h.crc = le32(b[56:60])
	return h, nil
}

func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
