// Package ribsnap persists a closed rib.Index as a versioned,
// checksummed snapshot file so repeat runs over unchanged MRT archives
// can skip decode, merge, and close entirely — the warm-start path.
//
// # File layout
//
// A snapshot is a 64-byte header, a section table, and little-endian
// flat sections, each 8-byte aligned:
//
//	off  0  magic   [8]byte  "DSRIBSNP"
//	off  8  version uint32   (Version)
//	off 12  nsec    uint32   section count
//	off 16  digest  [32]byte sha256 of the source MRT archive bytes
//	off 48  paylen  uint64   bytes following the header
//	off 56  crc     uint32   CRC-32C (Castagnoli) of the payload
//	off 60  _       uint32   reserved, zero
//
// The payload begins with nsec 24-byte table entries — id uint32,
// reserved uint32, offset uint64, length uint64, offsets relative to
// the payload start — followed by the section data. The numeric
// columns of the index (spans, offset tables, visibility events) are
// stored exactly as they sit in memory on little-endian machines, so
// Load can map the file (syscall.Mmap on linux, os.ReadFile elsewhere)
// and hand the sections to rib.FromFrozen without copying; variable-
// length sections (peers, paths, per-collector record counts) always
// decode by copy into a handful of arena allocations.
//
// # Validity
//
// A snapshot is valid for exactly one archive state: Load recomputes
// nothing but compares the stored digest against the caller's digest
// of the current MRT bytes (DigestMRT) and the stored version against
// Version. Any failure — short file, bad magic, version skew, CRC
// mismatch, stale digest, malformed section — returns a typed error
// (ErrTruncated, ErrVersion, ErrCorrupt, ErrStale) and never a wrong
// index; callers fall back to a cold rebuild and rewrite the file.
package ribsnap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

// Version is the snapshot format version. Bump it whenever the section
// layout or the rib columnar representation changes shape; older files
// then fail Load with ErrVersion and are rebuilt.
const Version = 1

var magic = [8]byte{'D', 'S', 'R', 'I', 'B', 'S', 'N', 'P'}

const (
	headerSize = 64
	tableEntry = 24
)

// Section ids. The table may list them in any order; each id appears
// at most once.
const (
	secMeta        = 1  // window first/last day
	secPeers       = 2  // packed PeerRef table
	secPrefixAddrs = 3  // uint32 per sorted prefix
	secPrefixBits  = 4  // uint8 per sorted prefix
	secPaths       = 5  // packed AS-path dictionary
	secSpans       = 6  // 20-byte rib.Span per span
	secSpanOff     = 7  // uint32[nprefix+1]
	secEvDay       = 8  // int32 per visibility event
	secEvCount     = 9  // int32 per visibility event
	secEvOff       = 10 // uint32[nprefix+1]
	secCounts      = 11 // packed per-collector record counts
	secLineage     = 12 // parent digest + max record day (delta-append chain)
	secCursors     = 13 // per-collector archive byte cursors
)

// Typed load failures, in the order Load checks them. Callers treat
// every one as "rebuild cold"; the distinction only feeds skip
// classification (ingest.Truncated / Corrupt / Unsupported).
var (
	ErrTruncated = errors.New("ribsnap: snapshot truncated")
	ErrCorrupt   = errors.New("ribsnap: snapshot corrupt")
	ErrVersion   = errors.New("ribsnap: snapshot version mismatch")
	ErrStale     = errors.New("ribsnap: snapshot stale (archive digest mismatch)")
)

// ErrClosed is returned by Acquire once Close has been called: the
// mapping is (or is about to be) gone, and a reader that proceeded
// anyway would fault on the unmapped pages. Long-lived readers — the
// query daemon's request handlers — must bracket every use of the
// index with Acquire/Release and treat ErrClosed as "this generation
// is retired, look up the current one".
var ErrClosed = errors.New("ribsnap: snapshot closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CollectorCount records how many MRT records one collector
// contributed to the snapshotted index — replayed into ingest.Health
// on warm loads so a warm study reports the same record totals as the
// cold run that wrote the snapshot.
type CollectorCount struct {
	Collector string
	Records   uint64
}

// Snapshot is a loaded snapshot: the reconstructed index plus the
// ingest bookkeeping a warm start must replay. When the file was
// memory-mapped, the index's columnar store aliases the mapping;
// Close unmaps it, after which the index must not be used.
//
// # Lifetime under concurrent readers
//
// The mapped slices carry no lifetime information of their own: a
// reader still walking the index when the mapping is released faults.
// Single-owner callers (the warm-start CLI path) simply Close when
// done. Concurrent-reader callers — the query daemon, where any number
// of in-flight requests share one snapshot while a reload retires it —
// bracket each use with Acquire/Release. Close then only marks the
// snapshot closed: new Acquire calls fail with ErrClosed, and the
// mapping is actually released by whichever of Close or the final
// Release runs last. The zero Snapshot (no mapping) supports the same
// protocol with a no-op unmap, so cold-built indexes can share the
// daemon's generation plumbing.
type Snapshot struct {
	Index  *rib.Index
	Window timex.Range
	Counts []CollectorCount
	// Digest is the archive digest the snapshot was keyed on — the
	// generation identity a serving layer reports with every response.
	Digest [32]byte
	// Lineage carries the delta-append chain metadata when the snapshot
	// was written with it; nil for pre-lineage snapshots, which can be
	// served but never extended incrementally.
	Lineage *Lineage

	// File-backed identity, retained for the background scrubber: the
	// open handle pins the exact inode the mapping reads, so scrub
	// verification is immune to the file being renamed over or
	// unlinked. Zero for cold-built (mapping-free) snapshots.
	path   string
	file   *os.File
	paylen uint64
	crc    uint32

	// mapped is the raw mapping when the snapshot is mmap-backed; it
	// exists so eviction can hint the pages out (DropPages) before the
	// refcount drains the mapping itself.
	mapped []byte

	unmap func() error

	mu     sync.Mutex
	refs   int
	closed bool
}

// Path returns the snapshot file the mapping was loaded from ("" for a
// cold-built snapshot).
func (s *Snapshot) Path() string { return s.path }

// Acquire registers a reader. It fails with ErrClosed once Close has
// run; on success the caller must Release exactly once when done, and
// until then the index and every slice derived from it stay valid.
func (s *Snapshot) Acquire() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.refs++
	return nil
}

// Release drops one Acquire. The reader must not touch the index
// afterwards. If Close already ran and this was the last reader, the
// mapping is released now.
func (s *Snapshot) Release() {
	s.mu.Lock()
	if s.refs <= 0 {
		s.mu.Unlock()
		panic("ribsnap: Release without matching Acquire")
	}
	s.refs--
	last := s.refs == 0 && s.closed
	var u func() error
	if last {
		u, s.unmap = s.unmap, nil
	}
	s.mu.Unlock()
	if u != nil {
		u()
	}
}

// Refs reports the number of in-flight readers. A retired generation
// has drained exactly when Refs reports zero — the serving layer's
// leak and soak tests assert it, and the panic-isolation middleware's
// whole job is keeping it reachable.
func (s *Snapshot) Refs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs
}

// Close retires the snapshot: subsequent Acquire calls fail with
// ErrClosed. With no readers in flight the file mapping is released
// immediately and its error returned; otherwise the last Release
// unmaps and Close returns nil. Close is idempotent and safe to call
// concurrently with Acquire/Release.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	s.closed = true
	var u func() error
	if s.refs == 0 {
		u, s.unmap = s.unmap, nil
	}
	s.mu.Unlock()
	if u != nil {
		return u()
	}
	return nil
}

// DigestMRT hashes the MRT archive state under dir: for every *.mrt
// file in name order, its name, size, and the SHA-256 of its contents,
// folded per DigestCursors. Any change to the archive bytes — a
// collector added, removed, renamed, or edited — changes the digest
// and invalidates snapshots keyed on it. Because the digest is a fold
// of the per-file cursor hashes, one read of the archive yields both
// the digest and the lineage cursors a snapshot persists, and a delta
// build derives the grown archive's digest from the cursors it already
// computed — no second pass over the bytes.
func DigestMRT(dir string) ([32]byte, error) {
	var zero [32]byte
	cursors, err := ArchiveCursors(dir)
	if err != nil {
		return zero, err
	}
	return DigestCursors(cursors), nil
}

// --- encoding -----------------------------------------------------------

func pad4(n int) int { return (n + 3) &^ 3 }
func pad8(n int) int { return (n + 7) &^ 7 }

// pathTotals returns the flattened dictionary dimensions: total
// segments and total ASNs across all paths.
func pathTotals(paths []bgp.ASPath) (segs, asns int) {
	for _, p := range paths {
		segs += len(p)
		for _, seg := range p {
			asns += len(seg.ASNs)
		}
	}
	return segs, asns
}

func peersSize(peers []rib.PeerRef) int {
	n := 4
	for _, p := range peers {
		n += 12 + pad4(len(p.Collector))
	}
	return n
}

func pathsSize(paths []bgp.ASPath) int {
	segs, asns := pathTotals(paths)
	return 24 + 4*len(paths) + pad4(segs) + 4*segs + 4*asns
}

func countsSize(counts []CollectorCount) int {
	n := 4
	for _, c := range counts {
		n += 4 + pad4(len(c.Collector)) + 8
	}
	return n
}

// lineageSize is the fixed secLineage layout: has-parent flag, max
// record day, parent digest.
const lineageSize = 4 + 4 + 32

func cursorsSize(cs []ArchiveCursor) int {
	n := 4
	for _, c := range cs {
		n += 4 + pad4(len(c.Collector)) + 8 + 32
	}
	return n
}

// crcWriter tracks the running CRC-32C and byte count of everything
// written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   uint64
	err error
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	cw.n += uint64(n)
	cw.err = err
	return n, err
}

// sectionEncoder accumulates little-endian section bytes through a
// reused scratch buffer, flushing to the underlying writer.
type sectionEncoder struct {
	cw  *crcWriter
	buf []byte
}

func (e *sectionEncoder) flush() {
	if len(e.buf) > 0 {
		e.cw.Write(e.buf)
		e.buf = e.buf[:0]
	}
}

func (e *sectionEncoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *sectionEncoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *sectionEncoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *sectionEncoder) bytesPad4(b []byte) {
	e.buf = append(e.buf, b...)
	for i := len(b); i%4 != 0; i++ {
		e.buf = append(e.buf, 0)
	}
	if len(e.buf) >= 1<<16 {
		e.flush()
	}
}

// Write persists a frozen index, the study window it was closed with,
// and per-collector record counts as a snapshot at path, atomically
// and durably: the payload is streamed to an O_EXCL temp file, the
// temp is fsynced before the rename, and the parent directory is
// fsynced after it, so a crash (or power loss) at any step leaves
// either the old complete snapshot or the new complete snapshot at
// path — never a torn file. digest must be DigestMRT of the archive
// the index was built from.
func Write(path string, f *rib.Frozen, window timex.Range, digest [32]byte, counts []CollectorCount) error {
	return WriteLineageFS(OS, path, f, window, digest, counts, nil)
}

// WriteFS is Write over an explicit filesystem seam — the entry point
// the disk-fault injector drives. See fs.go for the durability
// rationale.
func WriteFS(fsys FS, path string, f *rib.Frozen, window timex.Range, digest [32]byte, counts []CollectorCount) error {
	return WriteLineageFS(fsys, path, f, window, digest, counts, nil)
}

// WriteLineage is Write with the snapshot's lineage attached: the
// archive cursors the delta-append path resumes decoding from, the
// index's largest record day, and — for a delta-built generation — the
// parent digest. A nil lineage writes the exact pre-lineage layout.
func WriteLineage(path string, f *rib.Frozen, window timex.Range, digest [32]byte, counts []CollectorCount, lin *Lineage) error {
	return WriteLineageFS(OS, path, f, window, digest, counts, lin)
}

// WriteLineageFS is WriteLineage over an explicit filesystem seam.
func WriteLineageFS(fsys FS, path string, f *rib.Frozen, window timex.Range, digest [32]byte, counts []CollectorCount, lin *Lineage) (err error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, tempPattern)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			// Best effort: under a simulated fail-stop crash the Remove
			// fails too, leaving the orphan the startup sweep collects.
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()

	n := len(f.Prefixes)
	type section struct {
		id  uint32
		len int
	}
	sections := []section{
		{secMeta, 8},
		{secPeers, peersSize(f.Peers)},
		{secPrefixAddrs, 4 * n},
		{secPrefixBits, n},
		{secPaths, pathsSize(f.Paths)},
		{secSpans, 20 * len(f.Col)},
		{secSpanOff, 4 * len(f.SpanOff)},
		{secEvDay, 4 * len(f.EvDay)},
		{secEvCount, 4 * len(f.EvCount)},
		{secEvOff, 4 * len(f.EvOff)},
		{secCounts, countsSize(counts)},
	}
	if lin != nil {
		sections = append(sections,
			section{secLineage, lineageSize},
			section{secCursors, cursorsSize(lin.Cursors)})
	}

	// Header placeholder; rewritten with the payload length and CRC once
	// everything is streamed out.
	var hdr [headerSize]byte
	if _, err = tmp.Write(hdr[:]); err != nil {
		return err
	}

	cw := &crcWriter{w: tmp}
	enc := &sectionEncoder{cw: cw}

	// Section table: offsets are assigned sequentially, 8-aligned, from
	// the payload start (which the table itself occupies first).
	off := uint64(tableEntry * len(sections))
	for _, s := range sections {
		enc.u32(s.id)
		enc.u32(0)
		enc.u64(off)
		enc.u64(uint64(s.len))
		off += uint64(pad8(s.len))
	}

	pad := func(written int) {
		for i := written; i%8 != 0; i++ {
			enc.u8(0)
		}
	}

	// secMeta
	enc.u32(uint32(window.First))
	enc.u32(uint32(window.Last))

	// secPeers
	enc.u32(uint32(len(f.Peers)))
	for _, p := range f.Peers {
		enc.u32(uint32(p.Addr))
		enc.u32(uint32(p.AS))
		enc.u32(uint32(len(p.Collector)))
		enc.bytesPad4([]byte(p.Collector))
	}
	pad(peersSize(f.Peers))

	// secPrefixAddrs
	for _, p := range f.Prefixes {
		enc.u32(uint32(p.Addr()))
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	pad(4 * n)

	// secPrefixBits
	for _, p := range f.Prefixes {
		enc.u8(uint8(p.Bits()))
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	pad(n)

	// secPaths: counts, then four flat columns — per-path segment
	// counts, per-segment types, per-segment ASN counts, all ASNs.
	segs, asns := pathTotals(f.Paths)
	enc.u64(uint64(len(f.Paths)))
	enc.u64(uint64(segs))
	enc.u64(uint64(asns))
	for _, p := range f.Paths {
		enc.u32(uint32(len(p)))
	}
	enc.flush()
	segTypes := 0
	for _, p := range f.Paths {
		for _, seg := range p {
			enc.u8(seg.Type)
			segTypes++
		}
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	for i := segTypes; i%4 != 0; i++ {
		enc.u8(0)
	}
	for _, p := range f.Paths {
		for _, seg := range p {
			enc.u32(uint32(len(seg.ASNs)))
		}
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	for _, p := range f.Paths {
		for _, seg := range p {
			for _, a := range seg.ASNs {
				enc.u32(uint32(a))
			}
			if len(enc.buf) >= 1<<16 {
				enc.flush()
			}
		}
	}
	pad(pathsSize(f.Paths))

	// secSpans: the 20-byte layout mirrors rib.Span field order.
	for _, s := range f.Col {
		enc.u32(s.Prefix)
		enc.u32(uint32(s.Peer))
		enc.u32(uint32(s.From))
		enc.u32(uint32(s.To))
		enc.u32(uint32(s.Path))
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	pad(20 * len(f.Col))

	// secSpanOff / secEvDay / secEvCount / secEvOff
	for _, v := range f.SpanOff {
		enc.u32(v)
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	pad(4 * len(f.SpanOff))
	for _, d := range f.EvDay {
		enc.u32(uint32(d))
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	pad(4 * len(f.EvDay))
	for _, c := range f.EvCount {
		enc.u32(uint32(c))
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	pad(4 * len(f.EvCount))
	for _, v := range f.EvOff {
		enc.u32(v)
		if len(enc.buf) >= 1<<16 {
			enc.flush()
		}
	}
	pad(4 * len(f.EvOff))

	// secCounts
	enc.u32(uint32(len(counts)))
	for _, c := range counts {
		enc.u32(uint32(len(c.Collector)))
		enc.bytesPad4([]byte(c.Collector))
		enc.u64(c.Records)
	}
	pad(countsSize(counts))

	if lin != nil {
		// secLineage
		var hasParent uint32
		if lin.HasParent {
			hasParent = 1
		}
		enc.u32(hasParent)
		enc.u32(uint32(lin.MaxDay))
		enc.bytesPad4(lin.Parent[:])
		pad(lineageSize)

		// secCursors
		enc.u32(uint32(len(lin.Cursors)))
		for _, c := range lin.Cursors {
			enc.u32(uint32(len(c.Collector)))
			enc.bytesPad4([]byte(c.Collector))
			enc.u64(c.Size)
			enc.bytesPad4(c.Sum[:])
		}
		pad(cursorsSize(lin.Cursors))
	}

	enc.flush()
	if cw.err != nil {
		return cw.err
	}

	// Finalize the header.
	copy(hdr[0:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(sections)))
	copy(hdr[16:48], digest[:])
	binary.LittleEndian.PutUint64(hdr[48:56], cw.n)
	binary.LittleEndian.PutUint32(hdr[56:60], cw.crc)
	if _, err = tmp.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	// Durability point for the contents: everything above is in the
	// page cache until this fsync returns.
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Durability point for the name: the rename itself lives in the
	// directory's blocks and survives power loss only once the
	// directory is synced.
	return fsys.SyncDir(dir)
}

// --- decoding -----------------------------------------------------------

// Load reads, verifies, and reconstructs the snapshot at path. digest
// must be the caller's fresh DigestMRT of the archive about to be
// analyzed; a stored digest that differs fails with ErrStale. On linux
// the file is memory-mapped and the index adopts the mapped numeric
// columns without copying (keep the Snapshot alive — and un-Closed —
// as long as the index is in use); elsewhere the file is read whole.
func Load(path string, digest [32]byte) (*Snapshot, error) {
	data, f, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	release := func() error {
		var uerr error
		if unmap != nil {
			uerr = unmap()
		}
		if f != nil {
			if cerr := f.Close(); uerr == nil {
				uerr = cerr
			}
		}
		return uerr
	}
	snap, err := decode(data, digest)
	if err != nil {
		release()
		return nil, err
	}
	snap.path = path
	snap.file = f
	if unmap != nil {
		snap.mapped = data
	}
	snap.unmap = release
	return snap, nil
}

// DropPages hints the OS that the snapshot's mapped pages are no
// longer needed (madvise MADV_DONTNEED on linux; a no-op elsewhere and
// for mapping-free snapshots). The mapping stays valid — a read-only
// private file mapping refaults dropped pages from the file — so this
// is safe even with readers in flight; eviction calls it to return a
// cold shard's RSS ahead of the refcount drain.
func (s *Snapshot) DropPages() {
	if s.mapped != nil {
		dropPages(s.mapped)
	}
}

func decode(data []byte, digest [32]byte) (*Snapshot, error) {
	hdr, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	nsec := int(hdr.nsec)
	paylen := hdr.paylen
	if paylen > uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: payload %d bytes, file holds %d", ErrTruncated, paylen, len(data)-headerSize)
	}
	payload := data[headerSize : headerSize+int(paylen)]
	if crc := crc32.Checksum(payload, castagnoli); crc != hdr.crc {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if hdr.digest != digest {
		return nil, ErrStale
	}
	snapDigest := hdr.digest
	snapCRC := hdr.crc

	if nsec < 0 || nsec*tableEntry > len(payload) {
		return nil, fmt.Errorf("%w: section table overruns payload", ErrCorrupt)
	}
	secs := make(map[uint32][]byte, nsec)
	for i := 0; i < nsec; i++ {
		e := payload[i*tableEntry : (i+1)*tableEntry]
		id := binary.LittleEndian.Uint32(e[0:4])
		off := binary.LittleEndian.Uint64(e[8:16])
		length := binary.LittleEndian.Uint64(e[16:24])
		if off > uint64(len(payload)) || length > uint64(len(payload))-off {
			return nil, fmt.Errorf("%w: section %d out of bounds", ErrCorrupt, id)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, id)
		}
		secs[id] = payload[off : off+length]
	}
	need := func(id uint32) ([]byte, error) {
		b, ok := secs[id]
		if !ok {
			return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
		}
		return b, nil
	}

	var snap Snapshot
	snap.Digest = snapDigest
	snap.paylen = paylen
	snap.crc = snapCRC

	meta, err := need(secMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != 8 {
		return nil, fmt.Errorf("%w: meta section %d bytes", ErrCorrupt, len(meta))
	}
	snap.Window = timex.Range{
		First: timex.Day(int32(binary.LittleEndian.Uint32(meta[0:4]))),
		Last:  timex.Day(int32(binary.LittleEndian.Uint32(meta[4:8]))),
	}

	peers, err := decodePeers(secs[secPeers])
	if err != nil {
		return nil, err
	}
	addrs, err := need(secPrefixAddrs)
	if err != nil {
		return nil, err
	}
	bits, err := need(secPrefixBits)
	if err != nil {
		return nil, err
	}
	prefixes, err := decodePrefixes(addrs, bits)
	if err != nil {
		return nil, err
	}
	paths, err := decodePaths(secs[secPaths])
	if err != nil {
		return nil, err
	}
	spansB, err := need(secSpans)
	if err != nil {
		return nil, err
	}
	if len(spansB)%20 != 0 {
		return nil, fmt.Errorf("%w: span section %d bytes", ErrCorrupt, len(spansB))
	}
	spanOffB, err := need(secSpanOff)
	if err != nil {
		return nil, err
	}
	evDayB, err := need(secEvDay)
	if err != nil {
		return nil, err
	}
	evCountB, err := need(secEvCount)
	if err != nil {
		return nil, err
	}
	evOffB, err := need(secEvOff)
	if err != nil {
		return nil, err
	}
	for _, b := range [][]byte{spanOffB, evDayB, evCountB, evOffB} {
		if len(b)%4 != 0 {
			return nil, fmt.Errorf("%w: missized numeric section", ErrCorrupt)
		}
	}
	snap.Counts, err = decodeCounts(secs[secCounts])
	if err != nil {
		return nil, err
	}
	// Lineage is optional: snapshots written before the delta-append
	// path simply lack it (and are ineligible as delta bases).
	snap.Lineage, err = decodeLineage(secs[secLineage], secs[secCursors])
	if err != nil {
		return nil, err
	}

	frozen := &rib.Frozen{
		Peers:    peers,
		Prefixes: prefixes,
		Paths:    paths,
		Col:      decodeSpans(spansB),
		SpanOff:  decodeU32s(spanOffB),
		EvDay:    decodeDays(evDayB),
		EvCount:  decodeI32s(evCountB),
		EvOff:    decodeU32s(evOffB),
	}
	if snap.Lineage != nil {
		frozen.MaxDay = snap.Lineage.MaxDay
	}
	ix, err := rib.FromFrozen(frozen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	snap.Index = ix
	return &snap, nil
}

// cursor walks a packed section with bounds checks; any overrun sets
// bad and subsequent reads return zeros, checked once at the end.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) u32() uint32 {
	if c.bad || c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.bad || c.off+8 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) stringPad4(n int) string {
	if c.bad || n < 0 || c.off+pad4(n) > len(c.b) {
		c.bad = true
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += pad4(n)
	return s
}

func decodePeers(b []byte) ([]rib.PeerRef, error) {
	if b == nil {
		return nil, fmt.Errorf("%w: missing peer section", ErrCorrupt)
	}
	c := &cursor{b: b}
	n := int(c.u32())
	if n < 0 || n > len(b) {
		return nil, fmt.Errorf("%w: peer count %d", ErrCorrupt, n)
	}
	peers := make([]rib.PeerRef, 0, n)
	// Collector names repeat across a collector's peers: share one
	// string per distinct name instead of allocating per peer.
	names := make(map[string]string)
	for i := 0; i < n; i++ {
		addr := netx.Addr(c.u32())
		as := bgp.ASN(c.u32())
		name := c.stringPad4(int(c.u32()))
		if interned, ok := names[name]; ok {
			name = interned
		} else {
			names[name] = name
		}
		peers = append(peers, rib.PeerRef{Collector: name, Addr: addr, AS: as})
	}
	if c.bad {
		return nil, fmt.Errorf("%w: peer section overrun", ErrCorrupt)
	}
	return peers, nil
}

func decodePrefixes(addrs, bits []byte) ([]netx.Prefix, error) {
	if len(addrs)%4 != 0 || len(addrs)/4 != len(bits) {
		return nil, fmt.Errorf("%w: prefix sections %d/%d", ErrCorrupt, len(addrs), len(bits))
	}
	n := len(bits)
	out := make([]netx.Prefix, n)
	for i := 0; i < n; i++ {
		if bits[i] > 32 {
			return nil, fmt.Errorf("%w: prefix length %d", ErrCorrupt, bits[i])
		}
		out[i] = netx.PrefixFrom(netx.Addr(binary.LittleEndian.Uint32(addrs[4*i:])), int(bits[i]))
	}
	return out, nil
}

// decodePaths rebuilds the path dictionary from its four flat columns
// using two arenas — one for all segments, one for all ASNs — so the
// whole dictionary costs a fixed handful of allocations however many
// paths it holds.
func decodePaths(b []byte) ([]bgp.ASPath, error) {
	if b == nil {
		return nil, fmt.Errorf("%w: missing path section", ErrCorrupt)
	}
	c := &cursor{b: b}
	nPaths := c.u64()
	nSegs := c.u64()
	nASNs := c.u64()
	limit := uint64(len(b))
	if nPaths > limit || nSegs > limit || nASNs > limit {
		return nil, fmt.Errorf("%w: path dictionary dimensions", ErrCorrupt)
	}
	segCounts := make([]uint32, nPaths)
	for i := range segCounts {
		segCounts[i] = c.u32()
	}
	segArena := make([]bgp.PathSegment, nSegs)
	for i := range segArena {
		if c.bad || c.off >= len(c.b) {
			c.bad = true
			break
		}
		segArena[i].Type = c.b[c.off]
		c.off++
	}
	c.off = pad4(c.off)
	asnCounts := make([]uint32, nSegs)
	for i := range asnCounts {
		asnCounts[i] = c.u32()
	}
	var asnArena []bgp.ASN
	if c.bad || uint64(len(c.b)-c.off) < 4*nASNs {
		c.bad = true
	} else if nASNs > 0 {
		raw := c.b[c.off : c.off+int(4*nASNs)]
		c.off += int(4 * nASNs)
		if zerocopyEnabled {
			asnArena = asnsZeroCopy(raw)
		}
		if asnArena == nil {
			asnArena = make([]bgp.ASN, nASNs)
			for i := range asnArena {
				asnArena[i] = bgp.ASN(binary.LittleEndian.Uint32(raw[4*i:]))
			}
		}
	}
	if c.bad {
		return nil, fmt.Errorf("%w: path section overrun", ErrCorrupt)
	}

	var segSum, asnSum uint64
	for _, sc := range segCounts {
		segSum += uint64(sc)
	}
	for _, ac := range asnCounts {
		asnSum += uint64(ac)
	}
	if segSum != nSegs || asnSum != nASNs {
		return nil, fmt.Errorf("%w: path dictionary counts disagree", ErrCorrupt)
	}

	paths := make([]bgp.ASPath, nPaths)
	segAt, asnAt := 0, 0
	for i := range paths {
		sc := int(segCounts[i])
		if sc == 0 {
			continue // stored as the nil path, exactly as interned cold
		}
		segs := segArena[segAt : segAt+sc : segAt+sc]
		for j := range segs {
			ac := int(asnCounts[segAt+j])
			segs[j].ASNs = asnArena[asnAt : asnAt+ac : asnAt+ac]
			asnAt += ac
		}
		segAt += sc
		paths[i] = bgp.ASPath(segs)
	}
	return paths, nil
}

func decodeCounts(b []byte) ([]CollectorCount, error) {
	if b == nil {
		return nil, fmt.Errorf("%w: missing counts section", ErrCorrupt)
	}
	c := &cursor{b: b}
	n := int(c.u32())
	if n < 0 || n > len(b) {
		return nil, fmt.Errorf("%w: counts entries %d", ErrCorrupt, n)
	}
	out := make([]CollectorCount, 0, n)
	for i := 0; i < n; i++ {
		name := c.stringPad4(int(c.u32()))
		records := c.u64()
		out = append(out, CollectorCount{Collector: name, Records: records})
	}
	if c.bad {
		return nil, fmt.Errorf("%w: counts section overrun", ErrCorrupt)
	}
	return out, nil
}

// --- numeric column decoding -------------------------------------------
//
// Each decode* tries the platform zero-copy cast first (little-endian
// machines, aligned data: the mapped bytes are the in-memory layout)
// and falls back to an explicit little-endian copy.

// zerocopyEnabled gates every zero-copy cast. It exists so tests on
// little-endian CI can force the copying fallback — the path that is
// otherwise exercised only on big-endian or misaligned mappings.
var zerocopyEnabled = true

func decodeU32s(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if zerocopyEnabled {
		if v := u32sZeroCopy(b); v != nil {
			return v
		}
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func decodeI32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if zerocopyEnabled {
		if v := i32sZeroCopy(b); v != nil {
			return v
		}
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func decodeDays(b []byte) []timex.Day {
	if len(b) == 0 {
		return nil
	}
	if zerocopyEnabled {
		if v := daysZeroCopy(b); v != nil {
			return v
		}
	}
	out := make([]timex.Day, len(b)/4)
	for i := range out {
		out[i] = timex.Day(int32(binary.LittleEndian.Uint32(b[4*i:])))
	}
	return out
}

func decodeSpans(b []byte) []rib.Span {
	if len(b) == 0 {
		return nil
	}
	if zerocopyEnabled {
		if v := spansZeroCopy(b); v != nil {
			return v
		}
	}
	out := make([]rib.Span, len(b)/20)
	for i := range out {
		e := b[20*i:]
		out[i] = rib.Span{
			Prefix: binary.LittleEndian.Uint32(e[0:4]),
			Peer:   int32(binary.LittleEndian.Uint32(e[4:8])),
			From:   timex.Day(int32(binary.LittleEndian.Uint32(e[8:12]))),
			To:     timex.Day(int32(binary.LittleEndian.Uint32(e[12:16]))),
			Path:   bgp.PathID(binary.LittleEndian.Uint32(e[16:20])),
		}
	}
	return out
}
