// Zero-copy section adoption for little-endian platforms: the on-disk
// little-endian layout of every numeric column is exactly its in-memory
// layout here, so a mapped (or whole-read) file's bytes can be
// reinterpreted as the typed slices rib.FromFrozen adopts. Each cast
// verifies the platform alignment of the element type and returns nil
// — selecting the copying fallback — when the backing bytes are not
// aligned; mmap returns page-aligned memory and sections are 8-byte
// aligned within the file, so in practice the casts always apply on
// the mapped path.

//go:build 386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

package ribsnap

import (
	"unsafe"

	"dropscope/internal/bgp"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

// The span cast depends on rib.Span's exact 20-byte field layout;
// these compile-time assertions pin it so a struct change breaks the
// build here instead of silently corrupting snapshots.
var (
	_ [unsafe.Sizeof(rib.Span{})]byte        = [20]byte{}
	_ [unsafe.Offsetof(rib.Span{}.Peer)]byte = [4]byte{}
	_ [unsafe.Offsetof(rib.Span{}.From)]byte = [8]byte{}
	_ [unsafe.Offsetof(rib.Span{}.To)]byte   = [12]byte{}
	_ [unsafe.Offsetof(rib.Span{}.Path)]byte = [16]byte{}
)

func aligned(b []byte, align uintptr) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))%align == 0
}

func spansZeroCopy(b []byte) []rib.Span {
	if len(b) == 0 || len(b)%20 != 0 || !aligned(b, unsafe.Alignof(rib.Span{})) {
		return nil
	}
	return unsafe.Slice((*rib.Span)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/20)
}

func u32sZeroCopy(b []byte) []uint32 {
	if len(b) == 0 || len(b)%4 != 0 || !aligned(b, 4) {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

func i32sZeroCopy(b []byte) []int32 {
	if len(b) == 0 || len(b)%4 != 0 || !aligned(b, 4) {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

func daysZeroCopy(b []byte) []timex.Day {
	if len(b) == 0 || len(b)%4 != 0 || !aligned(b, 4) {
		return nil
	}
	return unsafe.Slice((*timex.Day)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

func asnsZeroCopy(b []byte) []bgp.ASN {
	if len(b) == 0 || len(b)%4 != 0 || !aligned(b, 4) {
		return nil
	}
	return unsafe.Slice((*bgp.ASN)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}
