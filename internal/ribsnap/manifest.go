// The generation manifest: a small append-only, checksummed journal in
// the snapshot directory recording the lifecycle of every snapshot
// generation — written, promoted, retired, corrupt, removed. The
// serving layer's snapshot store (store.go) replays it at startup to
// recover exactly which generations exist and which one is live,
// instead of probing bare paths and trusting whatever file answers.
//
// # Record format
//
// The journal is a sequence of self-checking binary records:
//
//	u32  payload length (little-endian)
//	u32  CRC-32C (Castagnoli) of the payload
//	payload:
//	  u8   record version (1)
//	  u8   op (written/promoted/retired/corrupt/removed)
//	  u16  reserved, zero
//	  u64  sequence number (monotonic per journal)
//	  i64  unix seconds (operational metadata only)
//	  [32] generation digest
//
// Replay walks records until the first torn or checksum-failing one —
// the write that a crash interrupted — and truncates the journal there
// before appending anything new, so a torn tail can never swallow
// later records. A valid record with an unknown version or op is
// skipped, not fatal: old binaries must be able to walk journals
// written by newer ones. Appends are fsynced; the journal's own
// durability follows the same contract as the snapshots it describes.
package ribsnap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// ManifestName is the journal's file name inside a snapshot directory.
const ManifestName = "manifest.log"

// GenStatus is the lifecycle state of one generation, as replayed from
// the manifest. Later records supersede earlier ones for the same
// digest, so a generation rewritten after being marked corrupt is
// clean again.
type GenStatus uint8

const (
	// GenUnknown: no manifest record mentions the digest.
	GenUnknown GenStatus = iota
	// GenWritten: the snapshot file was durably written.
	GenWritten
	// GenPromoted: the generation is (or last was) the live one.
	GenPromoted
	// GenRetired: superseded by a later promotion; file may still exist
	// inside the retention window.
	GenRetired
	// GenCorrupt: load or scrub found damage; the file must never be
	// adopted again until rewritten.
	GenCorrupt
	// GenRemoved: the file was garbage-collected.
	GenRemoved
)

func (s GenStatus) String() string {
	switch s {
	case GenWritten:
		return "written"
	case GenPromoted:
		return "promoted"
	case GenRetired:
		return "retired"
	case GenCorrupt:
		return "corrupt"
	case GenRemoved:
		return "removed"
	}
	return "unknown"
}

const (
	recVersion = 1
	// recVersion2 records carry a second digest after the first: the
	// parent generation a delta-built snapshot was derived from. Old
	// binaries skip them as unknown-version (CRC still verifies) and
	// re-adopt the generation file from disk as plainly written — the
	// ancestry degrades, the store does not.
	recVersion2 = 2

	opWritten  = 1
	opPromoted = 2
	opRetired  = 3
	opCorrupt  = 4
	opRemoved  = 5
	// opDerived is opWritten plus ancestry; only valid in a v2 record.
	opDerived = 6

	recPayloadLen  = 1 + 1 + 2 + 8 + 8 + 32
	recLen         = 8 + recPayloadLen
	recPayloadLen2 = recPayloadLen + 32
	recLen2        = 8 + recPayloadLen2
)

var opToStatus = map[uint8]GenStatus{
	opWritten:  GenWritten,
	opPromoted: GenPromoted,
	opRetired:  GenRetired,
	opCorrupt:  GenCorrupt,
	opRemoved:  GenRemoved,
}

// ManifestRecord is one replayed journal record.
type ManifestRecord struct {
	Seq    uint64
	Unix   int64
	Op     GenStatus
	Digest [32]byte
	// Parent is set (with HasParent) on derived records: the generation
	// this one was delta-built from.
	Parent    [32]byte
	HasParent bool
}

// Manifest is the replayed journal state plus the append handle. Not
// safe for concurrent use; the store serializes access.
type Manifest struct {
	dir  string
	fsys FS

	seq          uint64
	status       map[[32]byte]GenStatus
	seen         map[[32]byte]uint64   // digest -> seq of its latest record
	parents      map[[32]byte][32]byte // digest -> parent it was derived from
	promoted     [32]byte
	havePromoted bool
}

// OpenManifest replays (and, if its tail is torn, truncates) the
// journal under dir, creating an empty one implicitly on first append.
func OpenManifest(dir string) (*Manifest, error) {
	return OpenManifestFS(OS, dir)
}

// OpenManifestFS is OpenManifest over an explicit filesystem seam for
// the append path (replay always reads the real file).
func OpenManifestFS(fsys FS, dir string) (*Manifest, error) {
	m := &Manifest{
		dir:     dir,
		fsys:    fsys,
		status:  make(map[[32]byte]GenStatus),
		seen:    make(map[[32]byte]uint64),
		parents: make(map[[32]byte][32]byte),
	}
	if err := m.replay(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Manifest) path() string { return filepath.Join(m.dir, ManifestName) }

// replay reads the journal, applies every valid record, and truncates
// the file at the first torn or corrupt record so future appends land
// on a clean tail.
func (m *Manifest) replay() error {
	data, err := os.ReadFile(m.path())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	valid := 0
	off := 0
	for off+8 <= len(data) {
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if plen <= 0 || plen > 1<<12 || off+8+plen > len(data) {
			break // torn tail
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, castagnoli) != want {
			break // torn or rotted tail
		}
		off += 8 + plen
		valid = off
		rec, ok := parseRecord(payload)
		if !ok {
			continue // valid checksum, unknown version/op: skip
		}
		m.apply(rec)
	}
	if valid < len(data) {
		if err := os.Truncate(m.path(), int64(valid)); err != nil {
			return fmt.Errorf("ribsnap: manifest: truncating torn tail: %w", err)
		}
		if err := m.fsys.SyncDir(m.dir); err != nil {
			return err
		}
	}
	return nil
}

func parseRecord(p []byte) (ManifestRecord, bool) {
	var rec ManifestRecord
	switch {
	case len(p) == recPayloadLen && p[0] == recVersion:
		st, ok := opToStatus[p[1]]
		if !ok {
			return rec, false
		}
		rec.Op = st
	case len(p) == recPayloadLen2 && p[0] == recVersion2 && p[1] == opDerived:
		rec.Op = GenWritten
		rec.HasParent = true
		copy(rec.Parent[:], p[52:84])
	default:
		return rec, false
	}
	rec.Seq = binary.LittleEndian.Uint64(p[4:12])
	rec.Unix = int64(binary.LittleEndian.Uint64(p[12:20]))
	copy(rec.Digest[:], p[20:52])
	return rec, true
}

func (m *Manifest) apply(rec ManifestRecord) {
	if rec.Seq > m.seq {
		m.seq = rec.Seq
	}
	m.status[rec.Digest] = rec.Op
	m.seen[rec.Digest] = rec.Seq
	if rec.HasParent {
		m.parents[rec.Digest] = rec.Parent
	}
	switch rec.Op {
	case GenPromoted:
		m.promoted = rec.Digest
		m.havePromoted = true
	case GenRetired, GenCorrupt, GenRemoved:
		if m.havePromoted && m.promoted == rec.Digest {
			m.havePromoted = false
		}
	}
}

// Status reports the replayed lifecycle state of a generation.
func (m *Manifest) Status(digest [32]byte) GenStatus { return m.status[digest] }

// Promoted returns the live generation's digest, if one is promoted
// and not since retired, corrupted, or removed.
func (m *Manifest) Promoted() ([32]byte, bool) { return m.promoted, m.havePromoted }

// Parent returns the generation a digest was delta-derived from, if
// its written record carried ancestry.
func (m *Manifest) Parent(digest [32]byte) ([32]byte, bool) {
	p, ok := m.parents[digest]
	return p, ok
}

// Generations lists every digest the manifest knows, in the order of
// their most recent record (oldest first) — the GC eviction order.
func (m *Manifest) Generations() []ManifestRecord {
	out := make([]ManifestRecord, 0, len(m.status))
	for d, st := range m.status {
		out = append(out, ManifestRecord{Digest: d, Op: st, Seq: m.seen[d]})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Append writes one record durably (O_APPEND write + fsync) and applies
// it to the replayed state.
func (m *Manifest) Append(op GenStatus, digest [32]byte) error {
	var opByte uint8
	for b, st := range opToStatus {
		if st == op {
			opByte = b
			break
		}
	}
	if opByte == 0 {
		return fmt.Errorf("ribsnap: manifest: cannot append status %v", op)
	}
	m.seq++
	rec := ManifestRecord{Seq: m.seq, Unix: time.Now().Unix(), Op: op, Digest: digest}

	var buf [recLen]byte
	p := buf[8:]
	p[0] = recVersion
	p[1] = opByte
	binary.LittleEndian.PutUint64(p[4:12], rec.Seq)
	binary.LittleEndian.PutUint64(p[12:20], uint64(rec.Unix))
	copy(p[20:52], digest[:])
	binary.LittleEndian.PutUint32(buf[0:4], recPayloadLen)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(p, castagnoli))

	if err := m.writeRecord(buf[:]); err != nil {
		return err
	}
	m.apply(rec)
	return nil
}

// AppendDerived journals digest as durably written with ancestry: a v2
// record also naming the parent generation the snapshot was delta-built
// from. Replay treats it as GenWritten plus a parent edge.
func (m *Manifest) AppendDerived(digest, parent [32]byte) error {
	m.seq++
	rec := ManifestRecord{Seq: m.seq, Unix: time.Now().Unix(), Op: GenWritten,
		Digest: digest, Parent: parent, HasParent: true}

	var buf [recLen2]byte
	p := buf[8:]
	p[0] = recVersion2
	p[1] = opDerived
	binary.LittleEndian.PutUint64(p[4:12], rec.Seq)
	binary.LittleEndian.PutUint64(p[12:20], uint64(rec.Unix))
	copy(p[20:52], digest[:])
	copy(p[52:84], parent[:])
	binary.LittleEndian.PutUint32(buf[0:4], recPayloadLen2)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(p, castagnoli))

	if err := m.writeRecord(buf[:]); err != nil {
		return err
	}
	m.apply(rec)
	return nil
}

// writeRecord appends one encoded record durably (O_APPEND + fsync).
func (m *Manifest) writeRecord(buf []byte) error {
	f, err := os.OpenFile(m.path(), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest replays the journal under dir read-only (no truncation,
// no append handle) and returns every valid record in order — the
// inspection path for tests and tooling.
func ReadManifest(dir string) ([]ManifestRecord, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var recs []ManifestRecord
	off := 0
	for off+8 <= len(data) {
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if plen <= 0 || plen > 1<<12 || off+8+plen > len(data) {
			break
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, castagnoli) != want {
			break
		}
		off += 8 + plen
		if rec, ok := parseRecord(payload); ok {
			recs = append(recs, rec)
		}
	}
	return recs, nil
}
