//go:build race

package ribsnap

const raceEnabled = true
