//go:build linux

package ribsnap

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned release function unmaps;
// until it runs, slices derived from the data stay valid. A read-only
// private mapping means a concurrent rewrite of the file (snapshots
// are replaced atomically by rename) never mutates loaded pages.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length maps; an empty file is just a
		// truncated snapshot.
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
