//go:build linux

package ribsnap

import (
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the still-open file alongside
// the mapping. The returned release function unmaps; until it runs,
// slices derived from the data stay valid. A read-only private mapping
// means a concurrent rewrite of the file (snapshots are replaced
// atomically by rename) never mutates loaded pages. The file handle is
// kept open so the background scrubber can re-read the exact inode the
// mapping was taken over; the caller closes it when the snapshot is
// released.
func mapFile(path string) ([]byte, *os.File, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length maps; an empty file is just a
		// truncated snapshot.
		return nil, f, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return data, f, func() error { return syscall.Munmap(data) }, nil
}

// dropPages releases the mapping's resident pages back to the OS.
// Best-effort: the mapping is PROT_READ/MAP_PRIVATE over a file, so
// dropped pages refault from the file on the next touch and no data
// can be lost.
func dropPages(b []byte) {
	_ = syscall.Madvise(b, syscall.MADV_DONTNEED)
}
