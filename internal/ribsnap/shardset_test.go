package ribsnap

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

// shardFixture freezes a randomized index into K shards and writes
// them through a Store, returning the store, the source index, and the
// window. The caller owns loading.
func shardFixture(t testing.TB, k int, digest [32]byte) (*Store, *rib.Index, timex.Range) {
	t.Helper()
	ix, window := randomIndex(t, 41)
	shards, err := ix.FrozenShards(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	counts := []CollectorCount{{Collector: "rv0", Records: 11}, {Collector: "rv1", Records: 5}}
	if err := st.WriteShards(shards, window, digest, counts, 0); err != nil {
		t.Fatal(err)
	}
	return st, ix, window
}

func TestShardManifestRoundTrip(t *testing.T) {
	m := &ShardManifest{
		Digest: dg(0x5A),
		Window: timex.Range{First: day0, Last: day0 + 60},
		Shards: []ShardInfo{
			{Bound: netx.MustParsePrefix("10.0.0.0/16"), NumPrefixes: 120},
			{Bound: netx.MustParsePrefix("10.9.0.0/24"), NumPrefixes: 77},
			{Bound: netx.MustParsePrefix("198.51.100.0/24"), NumPrefixes: 3},
		},
	}
	dir := t.TempDir()
	if err := writeShardManifestFS(OS, dir, m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shardManifestName)
	got, err := ReadShardManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: got %+v want %+v", got, m)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte, wantErr error) {
		t.Helper()
		b := mutate(append([]byte(nil), raw...))
		p := filepath.Join(t.TempDir(), shardManifestName)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadShardManifest(p); !errors.Is(err, wantErr) {
			t.Fatalf("%s: err = %v, want %v", name, err, wantErr)
		}
	}
	corrupt("flipped body byte", func(b []byte) []byte { b[20] ^= 0xFF; return b }, ErrCorrupt)
	corrupt("truncated", func(b []byte) []byte { return encodeTail(b[:len(b)-16]) }, ErrCorrupt)
	corrupt("short", func(b []byte) []byte { return b[:10] }, ErrTruncated)
	corrupt("bad magic", func(b []byte) []byte {
		b[0] = 'X'
		return b
	}, ErrCorrupt)
	// Version and bound-bits corruption must re-seal the CRC so the
	// field check itself fires.
	reseal := func(b []byte) []byte {
		body := b[:len(b)-4]
		return encodeTail(body)
	}
	corrupt("future version", func(b []byte) []byte {
		b[8] = 99
		return reseal(b)
	}, ErrVersion)
	corrupt("bound bits > 32", func(b []byte) []byte {
		b[56+4] = 200
		return reseal(b)
	}, ErrCorrupt)
}

// encodeTail re-appends a valid CRC over body.
func encodeTail(body []byte) []byte {
	sum := crc32.Checksum(body, castagnoli)
	return append(append([]byte(nil), body...),
		byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

func TestWriteLoadShards(t *testing.T) {
	d := dg(0xC4)
	st, ix, window := shardFixture(t, 4, d)
	if !st.HasShards(d) {
		t.Fatal("HasShards = false after WriteShards")
	}
	if st.HasShards(dg(0xEE)) {
		t.Fatal("HasShards = true for unknown digest")
	}
	ss, err := st.LoadShards(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", ss.NumShards())
	}
	if ss.Window() != window {
		t.Fatalf("Window = %v, want %v", ss.Window(), window)
	}
	if ss.Digest() != d {
		t.Fatal("digest mismatch")
	}
	if len(ss.Counts()) != 2 || ss.Counts()[0].Collector != "rv0" {
		t.Fatalf("Counts = %+v", ss.Counts())
	}
	if !reflect.DeepEqual(ss.Peers(), ix.Peers()) {
		t.Fatal("Peers diverge from source index")
	}

	sh, err := ss.Sharded(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ix.Prefixes() {
		for _, day := range probeDays() {
			if a, b := ix.VisibleCount(p, day), sh.VisibleCount(p, day); a != b {
				t.Fatalf("VisibleCount(%v,%v) = %d via shards, want %d", p, day, b, a)
			}
			ao, aok := ix.OriginAt(p, day)
			bo, bok := sh.OriginAt(p, day)
			if ao != bo || aok != bok {
				t.Fatalf("OriginAt(%v,%v) diverges", p, day)
			}
		}
	}

	// The master snapshot carries identity but no mapping; closing it
	// tears the set down exactly once.
	master := ss.Master()
	if master.Digest != d || master.Window != window || master.Index != nil {
		t.Fatalf("master = %+v", master)
	}
}

func TestLoadShardsRefusesCorrupt(t *testing.T) {
	d := dg(0xC5)
	st, _, _ := shardFixture(t, 2, d)
	if err := st.MarkCorrupt(d); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadShards(d, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadShards after MarkCorrupt: %v, want ErrCorrupt", err)
	}
}

func TestOpenShardSetStaleDigest(t *testing.T) {
	d := dg(0xC6)
	st, _, _ := shardFixture(t, 2, d)
	if _, err := OpenShardSet(st.GenDirPath(d), dg(0xC7), 0); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong-digest open: %v, want ErrStale", err)
	}
}

func TestShardSetResidencyBudget(t *testing.T) {
	d := dg(0xC8)
	st, ix, _ := shardFixture(t, 4, d)
	ss, err := st.LoadShards(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	// Touch every shard several times; the budget must hold throughout
	// and the counters must show real faults and evictions.
	for round := 0; round < 3; round++ {
		for i := 0; i < ss.NumShards(); i++ {
			rix, rel, err := ss.AcquireIndex(i)
			if err != nil {
				t.Fatalf("round %d shard %d: %v", round, i, err)
			}
			if rix.NumPrefixes() == 0 {
				t.Fatalf("shard %d empty", i)
			}
			rel.Release()
			if r := ss.Resident(); r > 2 {
				t.Fatalf("resident = %d, budget 2", r)
			}
		}
	}
	if f := ss.Faults(); f < 4 {
		t.Fatalf("faults = %d, want >= 4", f)
	}
	if e := ss.Evictions(); e < 2 {
		t.Fatalf("evictions = %d, want >= 2", e)
	}
	res := ss.ResidentShards()
	n := 0
	for _, r := range res {
		if r {
			n++
		}
	}
	if n != ss.Resident() {
		t.Fatalf("ResidentShards counts %d, Resident() = %d", n, ss.Resident())
	}

	// Queries through the sharded view still answer correctly while
	// shards fault in and out under the budget.
	sh, err := ss.Sharded(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ix.Prefixes() {
		if a, b := ix.Observed(p, day0+10), sh.Observed(p, day0+10); a != b {
			t.Fatalf("Observed(%v) = %v via budgeted shards, want %v", p, b, a)
		}
	}
}

func TestShardSetMarkBad(t *testing.T) {
	d := dg(0xC9)
	st, _, _ := shardFixture(t, 3, d)
	ss, err := st.LoadShards(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	ss.MarkBad(1)
	if !ss.IsBad(1) || ss.IsBad(0) {
		t.Fatalf("IsBad: %v", ss.BadShards())
	}
	if _, _, err := ss.AcquireIndex(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("acquire of bad shard: %v, want ErrCorrupt", err)
	}
	// The other shards keep serving.
	if _, rel, err := ss.AcquireIndex(2); err != nil {
		t.Fatal(err)
	} else {
		rel.Release()
	}
}

// TestShardEvictionSoak hammers queries across every shard from many
// goroutines while the residency budget forces constant LRU eviction
// of the neighbors: every query must succeed and answer exactly as the
// unsharded index does. Run under -race this is the eviction soak the
// sharding design is gated on.
func TestShardEvictionSoak(t *testing.T) {
	const k = 6
	d := dg(0xCA)
	st, ix, _ := shardFixture(t, k, d)
	ss, err := st.LoadShards(d, (k+1)/2)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	sh, err := ss.Sharded(k)
	if err != nil {
		t.Fatal(err)
	}

	prefixes := ix.Prefixes()
	days := probeDays()
	iters := 400
	if raceEnabled {
		iters = 120
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				p := prefixes[(g*131+it*17)%len(prefixes)]
				day := days[(g+it)%len(days)]
				if a, b := ix.VisibleCount(p, day), sh.VisibleCount(p, day); a != b {
					select {
					case errc <- fmt.Errorf("goroutine %d: VisibleCount(%v,%v) = %d, want %d", g, p, day, b, a):
					default:
					}
					return
				}
				if it%7 == 0 {
					// Aggregate fan-out touches every shard at once,
					// maximizing pressure on the eviction clock.
					if a, b := ix.RoutedSpace(day, 1).Len(), sh.RoutedSpace(day, 1).Len(); a != b {
						select {
						case errc <- fmt.Errorf("goroutine %d: RoutedSpace(%v) = %d, want %d", g, day, b, a):
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if r := ss.Resident(); r > (k+1)/2 {
		t.Fatalf("resident = %d after soak, budget %d", r, (k+1)/2)
	}
	t.Logf("soak: faults=%d evictions=%d", ss.Faults(), ss.Evictions())
}

// TestShardSetAcquireAllocs pins the resident fast path: acquiring a
// mapped shard is one lock and one refcount bump, nothing on the heap
// — the property that keeps sharded point queries at 0 allocs/op.
func TestShardSetAcquireAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	d := dg(0xCB)
	st, ix, _ := shardFixture(t, 3, d)
	ss, err := st.LoadShards(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	sh, err := ss.Sharded(0)
	if err != nil {
		t.Fatal(err)
	}
	// Fault everything in once; the measurement is the resident path.
	for i := 0; i < ss.NumShards(); i++ {
		if _, rel, err := ss.AcquireIndex(i); err != nil {
			t.Fatal(err)
		} else {
			rel.Release()
		}
	}
	p := ix.Prefixes()[0]
	if avg := testing.AllocsPerRun(500, func() {
		sh.Observed(p, day0+5)
	}); avg != 0 {
		t.Errorf("resident shard point query allocates %.2f objects/op; want 0", avg)
	}
}
