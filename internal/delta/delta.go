// Package delta builds a new RIB index generation from a frozen base
// plus the bytes appended to the MRT archive since the base was
// snapshotted — without re-decoding the consumed prefix of any file.
//
// The contract is append-only growth: every archive file the base
// consumed must still begin with exactly the bytes it consumed (checked
// by hashing the first Cursor.Size bytes and comparing against the
// cursor's SHA-256). New files are whole-file suffixes (a collector
// that came online after the base). Any rewrite, truncation, or
// removal fails Build, and the caller falls back to a cold rebuild —
// delta ingest may cost time, never correctness.
package delta

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dropscope/internal/mrt"
	"dropscope/internal/rib"
	"dropscope/internal/ribsnap"
	"dropscope/internal/timex"
)

// Result is a successful delta build: the merged frozen index, the
// per-collector record counts a snapshot of it should carry (base
// counts plus strictly decoded suffix records), the lineage for the
// new generation (parent digest, new archive cursors, MaxDay), and the
// grown archive's digest, derived from the new cursors — the same
// single pass that verified the consumed prefixes — so callers persist
// the merged snapshot without a separate DigestMRT pass.
type Result struct {
	Frozen  *rib.Frozen
	Counts  []ribsnap.CollectorCount
	Lineage *ribsnap.Lineage
	Digest  [32]byte
}

// Build replays the archive suffix under mrtDir on top of base and
// merges. base must be the frozen index of the parent snapshot,
// baseLin/baseCounts its lineage and counts, baseWindow the window it
// was built for, window the (same-start, same-or-later-end) window the
// merged index serves, and parent the parent snapshot's digest.
//
// Suffix decoding is strict: the first corrupt record or semantically
// unreplayable condition (a condition the lenient cold path would have
// skipped) fails the build, because an overlay cannot reproduce the
// cold path's per-record skip accounting. The caller's cold fallback
// then produces the canonical lenient result.
func Build(mrtDir string, base *rib.Frozen, baseLin *ribsnap.Lineage, baseCounts []ribsnap.CollectorCount, baseWindow, window timex.Range, parent [32]byte) (*Result, error) {
	if baseLin == nil {
		return nil, fmt.Errorf("delta: base snapshot carries no lineage (written before delta support)")
	}
	if window.First != baseWindow.First {
		return nil, fmt.Errorf("delta: window start moved (%v -> %v)", baseWindow.First, window.First)
	}
	if window.Last < baseWindow.Last {
		return nil, fmt.Errorf("delta: window end moved backwards (%v -> %v)", baseWindow.Last, window.Last)
	}
	db, err := rib.NewDeltaBase(base, baseWindow.Last)
	if err != nil {
		return nil, err
	}

	entries, err := os.ReadDir(mrtDir)
	if err != nil {
		return nil, fmt.Errorf("delta: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".mrt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	curByName := make(map[string]ribsnap.ArchiveCursor, len(baseLin.Cursors))
	for _, c := range baseLin.Cursors {
		curByName[c.Collector] = c
	}
	present := make(map[string]bool, len(names))

	var overlays []*rib.Overlay
	suffixCounts := make(map[string]uint64)
	newCursors := make([]ribsnap.ArchiveCursor, 0, len(names))
	for _, name := range names { // sorted, so overlays come out collector-ordered
		collector := strings.TrimSuffix(name, ".mrt")
		present[collector] = true
		suffix, nc, err := readSuffix(filepath.Join(mrtDir, name), collector, curByName)
		if err != nil {
			return nil, err
		}
		newCursors = append(newCursors, nc)
		if len(suffix) == 0 {
			continue
		}
		ov := db.NewOverlay(collector)
		r := mrt.NewReader(bytes.NewReader(suffix))
		var n uint64
		for {
			rec, rerr := r.Next()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return nil, fmt.Errorf("delta: %s suffix: %w", name, rerr)
			}
			if aerr := ov.Apply(rec); aerr != nil {
				return nil, fmt.Errorf("delta: %s suffix: %w", name, aerr)
			}
			n++
		}
		overlays = append(overlays, ov)
		suffixCounts[collector] = n
	}
	for _, c := range baseLin.Cursors {
		if !present[c.Collector] {
			return nil, fmt.Errorf("delta: collector %s removed from archive", c.Collector)
		}
	}

	merged, err := rib.MergeFrozen(db, overlays, window.Last)
	if err != nil {
		return nil, err
	}

	counts := mergeCounts(baseCounts, suffixCounts)
	lin := &ribsnap.Lineage{
		HasParent: true,
		Parent:    parent,
		MaxDay:    merged.MaxDay,
		Cursors:   newCursors,
	}
	return &Result{Frozen: merged, Counts: counts, Lineage: lin,
		Digest: ribsnap.DigestCursors(newCursors)}, nil
}

// readSuffix verifies the file at path still begins with the bytes its
// base cursor consumed (single pass: hash the prefix, compare, then
// keep hashing through the suffix for the new cursor) and returns the
// appended bytes. A file with no base cursor is a new collector: the
// whole file is suffix.
func readSuffix(path, collector string, curByName map[string]ribsnap.ArchiveCursor) ([]byte, ribsnap.ArchiveCursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ribsnap.ArchiveCursor{}, fmt.Errorf("delta: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	var consumed uint64
	if cur, ok := curByName[collector]; ok {
		if _, err := io.CopyN(h, f, int64(cur.Size)); err != nil {
			// io.EOF here means the file shrank below the consumed prefix.
			return nil, ribsnap.ArchiveCursor{}, fmt.Errorf("delta: %s: consumed prefix unreadable (%v); not append-only", filepath.Base(path), err)
		}
		var sum [32]byte
		h.Sum(sum[:0])
		if sum != cur.Sum {
			return nil, ribsnap.ArchiveCursor{}, fmt.Errorf("delta: %s: consumed prefix rewritten; not append-only", filepath.Base(path))
		}
		consumed = cur.Size
	}
	// Sum does not reset the hash state, so continuing through the
	// suffix yields the whole-file hash for the new cursor.
	suffix, err := io.ReadAll(io.TeeReader(f, h))
	if err != nil {
		return nil, ribsnap.ArchiveCursor{}, fmt.Errorf("delta: %s: %w", filepath.Base(path), err)
	}
	nc := ribsnap.ArchiveCursor{Collector: collector, Size: consumed + uint64(len(suffix))}
	h.Sum(nc.Sum[:0])
	return suffix, nc, nil
}

// mergeCounts folds the suffix record counts into the base snapshot's
// per-collector counts, sorted by collector name — exactly the counts
// a cold build over the grown archive would record.
func mergeCounts(base []ribsnap.CollectorCount, suffix map[string]uint64) []ribsnap.CollectorCount {
	m := make(map[string]uint64, len(base)+len(suffix))
	for _, c := range base {
		m[c.Collector] = c.Records
	}
	for name, n := range suffix {
		m[name] += n
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ribsnap.CollectorCount, 0, len(names))
	for _, name := range names {
		out = append(out, ribsnap.CollectorCount{Collector: name, Records: m[name]})
	}
	return out
}
