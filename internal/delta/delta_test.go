package delta

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/ribsnap"
	"dropscope/internal/timex"
)

var day0 = timex.MustParseDay("2019-06-05")

func peerAt(n byte) netx.Addr { return netx.AddrFrom4(203, 0, 113, n) }

func announce(d timex.Day, addr netx.Addr, as bgp.ASN, path bgp.ASPath, ps ...netx.Prefix) mrt.Record {
	return &mrt.BGP4MPMessage{
		When: d.Time(), PeerAS: as, PeerAddr: addr, LocalAS: 6447,
		Update: &bgp.Update{
			Attrs: bgp.Attrs{Origin: bgp.OriginIGP, Path: path, NextHop: addr, HasNextHop: true},
			NLRI:  ps,
		},
	}
}

func withdraw(d timex.Day, addr netx.Addr, as bgp.ASN, ps ...netx.Prefix) mrt.Record {
	return &mrt.BGP4MPMessage{
		When: d.Time(), PeerAS: as, PeerAddr: addr, LocalAS: 6447,
		Update: &bgp.Update{Withdrawn: ps},
	}
}

// stream is one collector's records split at the append boundary.
type stream struct {
	collector string
	base      []mrt.Record
	suffix    []mrt.Record
}

func scenario() (streams []stream, baseEnd, newEnd timex.Day) {
	var (
		pfxA = netx.MustParsePrefix("10.0.0.0/8")
		pfxB = netx.MustParsePrefix("172.16.0.0/12")
		pfxC = netx.MustParsePrefix("192.0.2.0/24")
		pfxE = netx.MustParsePrefix("8.0.0.0/8")

		pathX = bgp.Sequence(64500, 100)
		pathY = bgp.Sequence(64501, 100)
		pathZ = bgp.Sequence(64500, 200, 300)
	)
	baseEnd = day0 + 9
	newEnd = day0 + 12
	rv1 := stream{
		collector: "rv1",
		base: []mrt.Record{
			announce(day0, peerAt(1), 64500, pathX, pfxA, pfxB),
			announce(day0+1, peerAt(2), 64501, pathY, pfxA),
			withdraw(day0+3, peerAt(2), 64501, pfxA),
		},
		suffix: []mrt.Record{
			announce(day0+10, peerAt(1), 64500, pathX, pfxA), // same-path continuation
			announce(day0+11, peerAt(1), 64500, pathZ, pfxB), // path change closes base-open
			announce(day0+10, peerAt(3), 64502, pathY, pfxC), // new peer, new prefix
			announce(day0+11, peerAt(1), 64500, pathX, pfxE),
			withdraw(day0+12, peerAt(1), 64500, pfxE), // suffix flap
		},
	}
	// A collector that only exists in the suffix (came online later).
	rv0 := stream{
		collector: "rv0",
		suffix: []mrt.Record{
			announce(day0+10, peerAt(20), 65020, bgp.Sequence(65020, 100), pfxA),
		},
	}
	// A collector with no appended data.
	rv3 := stream{
		collector: "rv3",
		base: []mrt.Record{
			announce(day0+1, peerAt(30), 65030, bgp.Sequence(65030, 100), pfxB),
		},
	}
	return []stream{rv1, rv0, rv3}, baseEnd, newEnd
}

// writeArchive writes each stream's base records as dir/<collector>.mrt.
func writeArchive(t *testing.T, dir string, streams []stream, suffix bool) {
	t.Helper()
	for _, s := range streams {
		recs := s.base
		if suffix {
			recs = s.suffix
		}
		if len(recs) == 0 && !suffix {
			continue
		}
		flags := os.O_CREATE | os.O_WRONLY
		if suffix {
			if len(recs) == 0 {
				continue
			}
			flags |= os.O_APPEND
		} else {
			flags |= os.O_TRUNC
		}
		f, err := os.OpenFile(filepath.Join(dir, s.collector+".mrt"), flags, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		w := mrt.NewWriter(f)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func coldFrozen(t *testing.T, streams []stream, full bool, end timex.Day) *rib.Frozen {
	t.Helper()
	sorted := append([]stream(nil), streams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].collector < sorted[j].collector })
	ix := rib.NewIndex()
	for _, s := range sorted {
		recs := append([]mrt.Record(nil), s.base...)
		if full {
			recs = append(recs, s.suffix...)
		}
		if len(recs) == 0 {
			continue
		}
		if err := ix.Load(s.collector, recs); err != nil {
			t.Fatal(err)
		}
	}
	ix.Close(end)
	f, err := ix.Frozen()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func requireEquivalent(t *testing.T, cold, merged *rib.Frozen) {
	t.Helper()
	if len(merged.Peers) != len(cold.Peers) {
		t.Fatalf("peers: got %d, want %d", len(merged.Peers), len(cold.Peers))
	}
	for i := range cold.Peers {
		if merged.Peers[i] != cold.Peers[i] {
			t.Fatalf("peer %d: got %+v, want %+v", i, merged.Peers[i], cold.Peers[i])
		}
	}
	if len(merged.Prefixes) != len(cold.Prefixes) {
		t.Fatalf("prefixes: got %d, want %d", len(merged.Prefixes), len(cold.Prefixes))
	}
	for i := range cold.Prefixes {
		if merged.Prefixes[i] != cold.Prefixes[i] {
			t.Fatalf("prefix %d: got %v, want %v", i, merged.Prefixes[i], cold.Prefixes[i])
		}
	}
	if len(merged.Col) != len(cold.Col) {
		t.Fatalf("spans: got %d, want %d", len(merged.Col), len(cold.Col))
	}
	for i := range cold.Col {
		c, m := cold.Col[i], merged.Col[i]
		if m.Prefix != c.Prefix || m.Peer != c.Peer || m.From != c.From || m.To != c.To {
			t.Fatalf("span %d: got %+v, want %+v", i, m, c)
		}
		if !bgp.PathEqual(merged.Paths[m.Path], cold.Paths[c.Path]) {
			t.Fatalf("span %d path: got %v, want %v", i, merged.Paths[m.Path], cold.Paths[c.Path])
		}
	}
	if merged.MaxDay != cold.MaxDay {
		t.Fatalf("MaxDay: got %d, want %d", merged.MaxDay, cold.MaxDay)
	}
	for i := range cold.EvDay {
		if merged.EvDay[i] != cold.EvDay[i] || merged.EvCount[i] != cold.EvCount[i] {
			t.Fatalf("event %d: got (%d,%d), want (%d,%d)", i,
				merged.EvDay[i], merged.EvCount[i], cold.EvDay[i], cold.EvCount[i])
		}
	}
}

// setup writes the base archive, freezes the base index, captures its
// lineage, then appends the suffix records. It returns everything Build
// needs plus the streams for cold comparison.
func setup(t *testing.T) (dir string, streams []stream, base *rib.Frozen, lin *ribsnap.Lineage, counts []ribsnap.CollectorCount, baseWindow, window timex.Range) {
	t.Helper()
	dir = t.TempDir()
	var baseEnd, newEnd timex.Day
	streams, baseEnd, newEnd = scenario()
	writeArchive(t, dir, streams, false)

	base = coldFrozen(t, streams, false, baseEnd)
	cursors, err := ribsnap.ArchiveCursors(dir)
	if err != nil {
		t.Fatal(err)
	}
	lin = &ribsnap.Lineage{MaxDay: base.MaxDay, Cursors: cursors}
	for _, s := range streams {
		if len(s.base) > 0 {
			counts = append(counts, ribsnap.CollectorCount{Collector: s.collector, Records: uint64(len(s.base))})
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].Collector < counts[j].Collector })

	writeArchive(t, dir, streams, true)
	baseWindow = timex.Range{First: day0, Last: baseEnd}
	window = timex.Range{First: day0, Last: newEnd}
	return
}

func TestBuildMatchesColdRebuild(t *testing.T) {
	dir, streams, base, lin, counts, baseWindow, window := setup(t)
	parent := [32]byte{1, 2, 3}
	res, err := Build(dir, base, lin, counts, baseWindow, window, parent)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cold := coldFrozen(t, streams, true, window.Last)
	requireEquivalent(t, cold, res.Frozen)

	// Counts must equal base plus strictly decoded suffix records,
	// sorted by collector, including the suffix-only collector.
	want := map[string]uint64{}
	for _, s := range streams {
		if n := uint64(len(s.base) + len(s.suffix)); n > 0 {
			want[s.collector] = n
		}
	}
	if len(res.Counts) != len(want) {
		t.Fatalf("counts: got %d collectors, want %d", len(res.Counts), len(want))
	}
	for i, c := range res.Counts {
		if i > 0 && res.Counts[i-1].Collector >= c.Collector {
			t.Fatalf("counts not sorted: %q >= %q", res.Counts[i-1].Collector, c.Collector)
		}
		if want[c.Collector] != c.Records {
			t.Fatalf("counts[%s]: got %d, want %d", c.Collector, c.Records, want[c.Collector])
		}
	}

	if !res.Lineage.HasParent || res.Lineage.Parent != parent {
		t.Fatalf("lineage parent: got %+v", res.Lineage)
	}
	if res.Lineage.MaxDay != res.Frozen.MaxDay {
		t.Fatalf("lineage MaxDay %d != frozen MaxDay %d", res.Lineage.MaxDay, res.Frozen.MaxDay)
	}
	// New cursors must match a fresh hash of the grown archive.
	fresh, err := ribsnap.ArchiveCursors(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(res.Lineage.Cursors) {
		t.Fatalf("cursors: got %d, want %d", len(res.Lineage.Cursors), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != res.Lineage.Cursors[i] {
			t.Fatalf("cursor %d: got %+v, want %+v", i, res.Lineage.Cursors[i], fresh[i])
		}
	}
}

// TestBuildChained verifies a second delta on top of the first: the
// generation chain base -> delta1 -> delta2 must still match a cold
// rebuild of the whole archive.
func TestBuildChained(t *testing.T) {
	dir, streams, base, lin, counts, baseWindow, window := setup(t)
	res1, err := Build(dir, base, lin, counts, baseWindow, window, [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	// Grow the archive again.
	more := announce(window.Last+2, peerAt(40), 65040, bgp.Sequence(65040, 7), netx.MustParsePrefix("100.64.0.0/10"))
	f, err := os.OpenFile(filepath.Join(dir, "rv1.mrt"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := mrt.NewWriter(f).Write(more); err != nil {
		t.Fatal(err)
	}
	f.Close()
	window2 := timex.Range{First: window.First, Last: window.Last + 2}
	res2, err := Build(dir, res1.Frozen, res1.Lineage, res1.Counts, window, window2, [32]byte{2})
	if err != nil {
		t.Fatalf("chained Build: %v", err)
	}
	for i := range streams {
		if streams[i].collector == "rv1" {
			streams[i].suffix = append(streams[i].suffix, more)
		}
	}
	requireEquivalent(t, coldFrozen(t, streams, true, window2.Last), res2.Frozen)
}

func TestBuildRefusesTamperedArchive(t *testing.T) {
	t.Run("rewritten prefix", func(t *testing.T) {
		dir, _, base, lin, counts, baseWindow, window := setup(t)
		path := filepath.Join(dir, "rv1.mrt")
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[4] ^= 0xff // inside the consumed prefix
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Build(dir, base, lin, counts, baseWindow, window, [32]byte{}); err == nil ||
			!strings.Contains(err.Error(), "not append-only") {
			t.Fatalf("Build = %v, want append-only refusal", err)
		}
	})
	t.Run("truncated below cursor", func(t *testing.T) {
		dir, _, base, lin, counts, baseWindow, window := setup(t)
		path := filepath.Join(dir, "rv1.mrt")
		if err := os.Truncate(path, 8); err != nil {
			t.Fatal(err)
		}
		if _, err := Build(dir, base, lin, counts, baseWindow, window, [32]byte{}); err == nil ||
			!strings.Contains(err.Error(), "not append-only") {
			t.Fatalf("Build = %v, want append-only refusal", err)
		}
	})
	t.Run("collector removed", func(t *testing.T) {
		dir, _, base, lin, counts, baseWindow, window := setup(t)
		if err := os.Remove(filepath.Join(dir, "rv3.mrt")); err != nil {
			t.Fatal(err)
		}
		if _, err := Build(dir, base, lin, counts, baseWindow, window, [32]byte{}); err == nil ||
			!strings.Contains(err.Error(), "removed from archive") {
			t.Fatalf("Build = %v, want removed-collector refusal", err)
		}
	})
	t.Run("corrupt suffix", func(t *testing.T) {
		dir, _, base, lin, counts, baseWindow, window := setup(t)
		f, err := os.OpenFile(filepath.Join(dir, "rv1.mrt"), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, err := Build(dir, base, lin, counts, baseWindow, window, [32]byte{}); err == nil {
			t.Fatal("Build over a corrupt suffix should fail (strict decode)")
		}
	})
}

func TestBuildValidatesInputs(t *testing.T) {
	dir, _, base, lin, counts, baseWindow, window := setup(t)
	if _, err := Build(dir, base, nil, counts, baseWindow, window, [32]byte{}); err == nil ||
		!strings.Contains(err.Error(), "no lineage") {
		t.Fatalf("Build without lineage = %v", err)
	}
	moved := baseWindow
	moved.First++
	if _, err := Build(dir, base, lin, counts, moved, window, [32]byte{}); err == nil ||
		!strings.Contains(err.Error(), "window start moved") {
		t.Fatalf("Build with moved start = %v", err)
	}
	shrunk := baseWindow
	shrunk.Last = baseWindow.Last - 1
	if _, err := Build(dir, base, lin, counts, baseWindow, shrunk, [32]byte{}); err == nil ||
		!strings.Contains(err.Error(), "backwards") {
		t.Fatalf("Build with shrunk window = %v", err)
	}
}
