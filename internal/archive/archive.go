// Package archive persists and reloads the full dataset as on-disk
// archive files in each substrate's native format:
//
//	dir/
//	  mrt/<collector>.mrt           binary MRT streams (RFC 6396)
//	  drop/<YYYYMMDD>.txt           DROP snapshots, changed days only
//	  sbl/records.txt               SBL record store
//	  irr/journal.rpsl              journaled RPSL objects
//	  rpki/<YYYYMMDD>.csv           ROA snapshots, changed days only
//	  rirstats/<YYYYMMDD>/delegated-<rir>-extended  RIR stats, changed days
//
// Loading reconstructs every journaled store by diffing consecutive
// snapshots — the same reassembly the paper's pipeline performed over the
// public archives.
package archive

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dropscope/internal/drop"
	"dropscope/internal/ingest"
	"dropscope/internal/irr"
	"dropscope/internal/mrt"
	"dropscope/internal/rirstats"
	"dropscope/internal/rpki"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
)

// Bundle is the set of stores the archive directory holds.
type Bundle struct {
	MRT  map[string][]mrt.Record
	DROP *drop.Archive
	SBL  *sbl.DB
	IRR  *irr.DB
	RPKI *rpki.Archive
	RIR  *rirstats.Timeline
}

// Write persists the bundle under dir, creating subdirectories.
func Write(dir string, b *Bundle) error {
	for _, sub := range []string{"mrt", "drop", "sbl", "irr", "rpki", "rirstats"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return err
		}
	}
	if err := writeMRT(filepath.Join(dir, "mrt"), b.MRT); err != nil {
		return err
	}
	if err := writeDROP(filepath.Join(dir, "drop"), b.DROP); err != nil {
		return err
	}
	if err := writeSBL(filepath.Join(dir, "sbl", "records.txt"), b.SBL); err != nil {
		return err
	}
	if err := writeIRR(filepath.Join(dir, "irr", "journal.rpsl"), b.IRR); err != nil {
		return err
	}
	if err := writeRPKI(filepath.Join(dir, "rpki"), b.RPKI); err != nil {
		return err
	}
	return writeRIRStats(filepath.Join(dir, "rirstats"), b.RIR)
}

// Load reads a bundle previously persisted with Write. Any corrupt
// record or malformed line fails the load; use LoadWithHealth to read
// damaged archives.
func Load(dir string) (*Bundle, error) {
	return load(dir, LoadOptions{})
}

// LoadWithHealth is the lenient variant of Load: corrupt MRT records and
// malformed text lines are skipped rather than fatal, with every skip
// classified per source in h (source names are archive-relative paths
// like "mrt/rv1" or "drop/20190605.txt"). The caller decides afterwards
// — from h's per-source counters — whether any source is too damaged to
// use. h must not be nil.
func LoadWithHealth(dir string, h *ingest.Health) (*Bundle, error) {
	return LoadWithOptions(dir, LoadOptions{Health: h})
}

// LoadOptions configures LoadWithOptions.
type LoadOptions struct {
	// Health enables lenient loading with per-source skip accounting, as
	// in LoadWithHealth. Nil loads strictly.
	Health *ingest.Health
	// SkipMRT leaves Bundle.MRT nil and never opens the mrt/
	// subdirectory. Warm-start callers set it when a verified index
	// snapshot already carries everything the MRT streams would be
	// decoded into.
	SkipMRT bool
}

// LoadWithOptions is Load under explicit options.
func LoadWithOptions(dir string, opts LoadOptions) (*Bundle, error) {
	return load(dir, opts)
}

func load(dir string, opts LoadOptions) (*Bundle, error) {
	h := opts.Health
	b := &Bundle{SBL: sbl.NewDB(), DROP: drop.NewArchive(), IRR: &irr.DB{}, RPKI: &rpki.Archive{}, RIR: &rirstats.Timeline{}}
	var err error
	if !opts.SkipMRT {
		if b.MRT, err = loadMRT(filepath.Join(dir, "mrt"), h); err != nil {
			return nil, err
		}
	}
	if err = loadDROP(filepath.Join(dir, "drop"), b.DROP, h); err != nil {
		return nil, err
	}
	if err = loadSBL(filepath.Join(dir, "sbl", "records.txt"), b.SBL, h); err != nil {
		return nil, err
	}
	if err = loadIRR(filepath.Join(dir, "irr", "journal.rpsl"), b.IRR, h); err != nil {
		return nil, err
	}
	if err = loadRPKI(filepath.Join(dir, "rpki"), b.RPKI, h); err != nil {
		return nil, err
	}
	if err = loadRIRStats(filepath.Join(dir, "rirstats"), b.RIR, h); err != nil {
		return nil, err
	}
	return b, nil
}

// --- MRT ----------------------------------------------------------------

func writeMRT(dir string, streams map[string][]mrt.Record) error {
	names := make([]string, 0, len(streams))
	for n := range streams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := os.Create(filepath.Join(dir, name+".mrt"))
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		w := mrt.NewWriter(bw)
		for _, rec := range streams[name] {
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func loadMRT(dir string, h *ingest.Health) (map[string][]mrt.Record, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]mrt.Record)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mrt") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		collector := strings.TrimSuffix(e.Name(), ".mrt")
		var opts []mrt.Option
		if h != nil {
			opts = []mrt.Option{mrt.Lenient(), mrt.WithSource(h.Source("mrt/" + collector))}
		}
		recs, err := mrt.ReadAll(bufio.NewReader(f), opts...)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", e.Name(), err)
		}
		out[collector] = recs
	}
	return out, nil
}

// --- DROP ---------------------------------------------------------------

func writeDROP(dir string, a *drop.Archive) error {
	for _, day := range a.Days() {
		entries, _ := a.Snapshot(day)
		f, err := os.Create(filepath.Join(dir, day.Compact()+".txt"))
		if err != nil {
			return err
		}
		err = drop.Write(f, day, entries)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func loadDROP(dir string, a *drop.Archive, h *ingest.Health) error {
	days, err := snapshotDays(dir, ".txt")
	if err != nil {
		return err
	}
	for _, day := range days {
		name := day.Compact() + ".txt"
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		var entries []drop.Entry
		if h != nil {
			entries, err = drop.ParseHealth(f, h.Source("drop/"+name))
		} else {
			entries, err = drop.Parse(f)
		}
		f.Close()
		if err != nil {
			return err
		}
		if err := a.AddSnapshot(day, entries); err != nil {
			return err
		}
	}
	return nil
}

// snapshotDays lists the days for files named <YYYYMMDD><ext> in dir.
func snapshotDays(dir, ext string) ([]timex.Day, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var days []timex.Day
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ext)
		if e.IsDir() || !strings.HasSuffix(e.Name(), ext) {
			// rirstats uses per-day directories instead.
			if e.IsDir() && ext == "" {
				name = e.Name()
			} else {
				continue
			}
		}
		d, err := timex.ParseDay(name)
		if err != nil {
			continue
		}
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	return days, nil
}

// --- SBL ----------------------------------------------------------------

// The store format ("@<ID>" then the record text until the next '@')
// lives in the sbl package; the archive layer only handles the files.
func writeSBL(path string, db *sbl.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = sbl.WriteStore(f, db)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func loadSBL(path string, db *sbl.DB, h *ingest.Health) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if h != nil {
		return sbl.ParseStoreHealth(f, db, h.Source("sbl/records.txt"))
	}
	return sbl.ParseStore(f, db)
}

// --- IRR ----------------------------------------------------------------

func writeIRR(path string, db *irr.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = db.WriteJournal(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func loadIRR(path string, db *irr.DB, h *ingest.Health) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var parsed *irr.DB
	if h != nil {
		parsed, err = irr.ParseJournalHealth(raw, h.Source("irr/journal.rpsl"))
	} else {
		parsed, err = irr.ParseJournal(raw)
	}
	if err != nil {
		return err
	}
	*db = *parsed
	return nil
}

// --- RPKI ---------------------------------------------------------------

func writeRPKI(dir string, a *rpki.Archive) error {
	for _, day := range a.ChangeDays() {
		f, err := os.Create(filepath.Join(dir, day.Compact()+".csv"))
		if err != nil {
			return err
		}
		err = a.WriteSnapshotCSV(f, day)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func loadRPKI(dir string, a *rpki.Archive, h *ingest.Health) error {
	days, err := snapshotDays(dir, ".csv")
	if err != nil {
		return err
	}
	prev := make(map[rpki.ROA]bool)
	for _, day := range days {
		name := day.Compact() + ".csv"
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		var roas []rpki.ROA
		if h != nil {
			roas, err = rpki.ParseSnapshotCSVHealth(f, h.Source("rpki/"+name))
		} else {
			roas, err = rpki.ParseSnapshotCSV(f)
		}
		f.Close()
		if err != nil {
			return err
		}
		cur := make(map[rpki.ROA]bool, len(roas))
		for _, r := range roas {
			cur[r] = true
		}
		// Revocations then creations, deterministically ordered.
		for _, r := range sortedROAs(prev) {
			if !cur[r] {
				if err := a.Revoke(day, r); err != nil {
					return err
				}
			}
		}
		for _, r := range sortedROAs(cur) {
			if !prev[r] {
				if err := a.Add(day, r); err != nil {
					return err
				}
			}
		}
		prev = cur
	}
	return nil
}

func sortedROAs(m map[rpki.ROA]bool) []rpki.ROA {
	out := make([]rpki.ROA, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Prefix.Compare(out[j].Prefix); c != 0 {
			return c < 0
		}
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		if out[i].MaxLength != out[j].MaxLength {
			return out[i].MaxLength < out[j].MaxLength
		}
		return out[i].TA < out[j].TA
	})
	return out
}

// --- RIR stats ------------------------------------------------------------

func writeRIRStats(dir string, t *rirstats.Timeline) error {
	days := t.ChangeDays()
	// Always include a base snapshot on the earliest representable day of
	// interest: the day before the first change (or epoch if none).
	base := timex.Day(0)
	if len(days) > 0 {
		base = days[0] - 1
	}
	days = append([]timex.Day{base}, days...)
	for _, day := range days {
		ddir := filepath.Join(dir, day.Compact())
		if err := os.MkdirAll(ddir, 0o755); err != nil {
			return err
		}
		recs := t.RecordsAt(day)
		for _, rir := range rirstats.AllRIRs {
			f, err := os.Create(filepath.Join(ddir, fmt.Sprintf("delegated-%s-extended", rir)))
			if err != nil {
				return err
			}
			err = rirstats.WriteFile(f, rir, day, recs)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func loadRIRStats(dir string, t *rirstats.Timeline, h *ingest.Health) error {
	days, err := snapshotDays(dir, "")
	if err != nil {
		return err
	}
	if len(days) == 0 {
		return fmt.Errorf("archive: no rirstats snapshots in %s", dir)
	}
	first := true
	prev := make(map[string]rirstats.Status)
	for _, day := range days {
		ddir := filepath.Join(dir, day.Compact())
		var recs []rirstats.Record
		for _, rir := range rirstats.AllRIRs {
			name := fmt.Sprintf("delegated-%s-extended", rir)
			f, err := os.Open(filepath.Join(ddir, name))
			if err != nil {
				return err
			}
			var rs []rirstats.Record
			if h != nil {
				rs, err = rirstats.ParseFileHealth(f, h.Source("rirstats/"+day.Compact()+"/"+name))
			} else {
				rs, err = rirstats.ParseFile(f)
			}
			f.Close()
			if err != nil {
				return err
			}
			recs = append(recs, rs...)
		}
		for _, rec := range recs {
			for _, blk := range rec.Prefixes() {
				k := string(rec.Registry) + "|" + blk.String()
				if first {
					if err := t.Manage(blk, rec.Registry, rec.Status); err != nil {
						return err
					}
					prev[k] = rec.Status
					continue
				}
				if prev[k] != rec.Status {
					if err := t.SetStatus(blk, day, rec.Status); err != nil {
						return err
					}
					prev[k] = rec.Status
				}
			}
		}
		first = false
	}
	return nil
}
