package archive

import (
	"path/filepath"
	"testing"

	"dropscope/internal/analysis"
	"dropscope/internal/scenario"
	"dropscope/internal/timex"
)

// TestRoundTripThroughDisk generates a (small) world, persists every
// archive to disk in its native format, reloads it, and verifies the
// reloaded pipeline produces the same headline results — the full
// "pipeline reassembly" path.
func TestRoundTripThroughDisk(t *testing.T) {
	p := scenario.DefaultParams()
	p.Scale = 512 // small background keeps disk I/O quick
	w, err := scenario.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bundle := &Bundle{MRT: w.MRT, DROP: w.DROP, SBL: w.SBL, IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR}
	if err := Write(dir, bundle); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	// DROP listings identical.
	orig := w.DROP.Listings()
	back := loaded.DROP.Listings()
	if len(orig) != len(back) {
		t.Fatalf("listings: %d != %d", len(orig), len(back))
	}
	for i := range orig {
		if orig[i] != back[i] {
			t.Fatalf("listing %d: %+v != %+v", i, orig[i], back[i])
		}
	}

	// SBL records identical.
	if got, want := loaded.SBL.Len(), w.SBL.Len(); got != want {
		t.Errorf("SBL records: %d != %d", got, want)
	}
	for _, id := range w.SBL.IDs() {
		a, _ := w.SBL.Get(id)
		b, ok := loaded.SBL.Get(id)
		if !ok || a != b {
			t.Errorf("SBL %s mismatch", id)
		}
	}

	// IRR journal identical length and per-event equality of key fields.
	if got, want := loaded.IRR.Len(), w.IRR.Len(); got != want {
		t.Fatalf("IRR events: %d != %d", got, want)
	}
	oe, le := w.IRR.Events(), loaded.IRR.Events()
	for i := range oe {
		if oe[i].Day != le[i].Day || oe[i].Op != le[i].Op ||
			oe[i].Object.Class() != le[i].Object.Class() ||
			oe[i].Object.Key() != le[i].Object.Key() {
			t.Fatalf("IRR event %d differs", i)
		}
	}

	// RPKI: both archives agree on signing status across spot days.
	for _, lt := range w.Truth.Listings[:50] {
		for _, d := range []int{-1, 0, 30, 300} {
			day := lt.Added + timex.Day(d)
			if w.RPKI.SignedAt(lt.Prefix, day) != loaded.RPKI.SignedAt(lt.Prefix, day) {
				t.Errorf("RPKI signed-at mismatch for %v at %v", lt.Prefix, day)
			}
		}
	}

	// RIR stats: allocation status matches on spot checks.
	for _, lt := range w.Truth.Listings[:50] {
		for _, d := range []int{0, 100} {
			day := lt.Added + timex.Day(d)
			if w.RIR.AllocatedAt(lt.Prefix, day) != loaded.RIR.AllocatedAt(lt.Prefix, day) {
				t.Errorf("RIR allocation mismatch for %v at %v", lt.Prefix, day)
			}
		}
	}

	// MRT streams byte-equivalent record counts.
	for name, recs := range w.MRT {
		if got := len(loaded.MRT[name]); got != len(recs) {
			t.Errorf("MRT %s: %d != %d records", name, got, len(recs))
		}
	}

	// The reloaded dataset drives the full pipeline to the same headline
	// numbers as the in-memory one.
	run := func(b *Bundle) (int, float64) {
		pl, err := analysis.New(analysis.Dataset{
			Window: p.Window, DROP: b.DROP, SBL: b.SBL, IRR: b.IRR,
			RPKI: b.RPKI, RIR: b.RIR, MRT: b.MRT,
		})
		if err != nil {
			t.Fatal(err)
		}
		f1 := pl.Fig1Classification()
		f2 := pl.Fig2Visibility()
		return f1.WithRecord, f2.WithdrawnWithin30
	}
	wr1, wd1 := run(bundle)
	wr2, wd2 := run(loaded)
	if wr1 != wr2 || wd1 != wd2 {
		t.Errorf("pipeline results differ: (%d, %.4f) vs (%d, %.4f)", wr1, wd1, wr2, wd2)
	}

	// Spot-check a file exists in each native format.
	for _, f := range []string{"sbl/records.txt", "irr/journal.rpsl"} {
		if _, err := filepath.Glob(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s", f)
		}
	}
}
