package archive

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dropscope/internal/sbl"
	"dropscope/internal/scenario"
)

var goldenDir string

// writeSmallWorld returns a fresh copy of a tiny world's archive
// directory; the world is generated and persisted once per process.
func writeSmallWorld(t *testing.T) string {
	t.Helper()
	if goldenDir == "" {
		p := scenario.DefaultParams()
		p.Scale = 2048
		w, err := scenario.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "dropscope-golden-*")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {}) // golden dir is process-lifetime; OS temp cleanup applies
		if err := Write(dir, &Bundle{MRT: w.MRT, DROP: w.DROP, SBL: w.SBL, IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR}); err != nil {
			t.Fatal(err)
		}
		goldenDir = dir
	}
	dir := t.TempDir()
	if err := os.CopyFS(dir, os.DirFS(goldenDir)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// corrupt truncates or scribbles on one file matched by the glob.
func corrupt(t *testing.T, dir, glob string, mode string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no files match %s", glob)
	}
	path := matches[0]
	switch mode {
	case "truncate":
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()/2); err != nil {
			t.Fatal(err)
		}
	case "garbage":
		if err := os.WriteFile(path, []byte("!!! not a valid archive file !!!\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// Each corruption must produce a clean error from Load — never a panic,
// never silent acceptance.
func TestLoadRejectsCorruptMRT(t *testing.T) {
	dir := writeSmallWorld(t)
	corrupt(t, dir, "mrt/*.mrt", "truncate")
	if _, err := Load(dir); err == nil {
		t.Error("truncated MRT should fail to load")
	}
}

func TestLoadRejectsGarbageDROP(t *testing.T) {
	dir := writeSmallWorld(t)
	corrupt(t, dir, "drop/*.txt", "garbage")
	if _, err := Load(dir); err == nil {
		t.Error("garbage DROP snapshot should fail to load")
	}
}

func TestLoadRejectsGarbageIRRJournal(t *testing.T) {
	dir := writeSmallWorld(t)
	corrupt(t, dir, "irr/journal.rpsl", "garbage")
	if _, err := Load(dir); err == nil {
		t.Error("garbage IRR journal should fail to load")
	}
}

func TestLoadRejectsGarbageROACSV(t *testing.T) {
	dir := writeSmallWorld(t)
	corrupt(t, dir, "rpki/*.csv", "garbage")
	if _, err := Load(dir); err == nil {
		t.Error("garbage ROA CSV should fail to load")
	}
}

func TestLoadRejectsGarbageRIRStats(t *testing.T) {
	dir := writeSmallWorld(t)
	corrupt(t, dir, "rirstats/*/delegated-arin-extended", "garbage")
	if _, err := Load(dir); err == nil {
		t.Error("garbage RIR stats should fail to load")
	}
}

func TestLoadRejectsMissingDirectory(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty directory should fail to load")
	}
}

func TestLoadToleratesForeignFiles(t *testing.T) {
	dir := writeSmallWorld(t)
	// Droppings that do not match the expected names must be ignored.
	for _, junk := range []string{"mrt/README", "drop/notes.md", "rpki/checksum.sha256"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("hello"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Load(dir); err != nil {
		t.Errorf("foreign files should be ignored: %v", err)
	}
}

func TestSBLRecordWithAtSignInText(t *testing.T) {
	// Record text lines are preserved; emails with '@' mid-line survive
	// the store format (only line-leading '@' is structural).
	dir := t.TempDir()
	path := filepath.Join(dir, "records.txt")
	content := "@SBL1\nhijacked range, contact billing@ahostinginc.com for removal\nsecond line\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	db := sbl.NewDB()
	if err := loadSBL(path, db, nil); err != nil {
		t.Fatal(err)
	}
	rec, ok := db.Get("SBL1")
	if !ok || !strings.Contains(rec.Text, "billing@ahostinginc.com") || !strings.Contains(rec.Text, "second line") {
		t.Errorf("record = %+v", rec)
	}
}
