// Package topo models an AS-level Internet topology with customer-
// provider and peer-peer relationships and computes valley-free
// (Gao-Rexford) best paths from every AS toward an injection point.
// The routeviews package uses these paths to synthesize the AS paths
// that collector peers would report for each announcement.
package topo

import (
	"fmt"
	"sort"

	"dropscope/internal/bgp"
)

// Rel is a business relationship between two ASes.
type Rel uint8

// Relationship kinds.
const (
	// ProviderOf: the first AS is the provider of the second.
	ProviderOf Rel = iota
	// PeerWith: settlement-free peering.
	PeerWith
)

// Graph is an AS-level topology. The zero value is empty and ready to use.
type Graph struct {
	providers map[bgp.ASN][]bgp.ASN // customer -> providers
	customers map[bgp.ASN][]bgp.ASN // provider -> customers
	peers     map[bgp.ASN][]bgp.ASN
	asns      map[bgp.ASN]bool
}

func (g *Graph) init() {
	if g.asns == nil {
		g.providers = make(map[bgp.ASN][]bgp.ASN)
		g.customers = make(map[bgp.ASN][]bgp.ASN)
		g.peers = make(map[bgp.ASN][]bgp.ASN)
		g.asns = make(map[bgp.ASN]bool)
	}
}

// AddAS registers an AS with no links (isolated until linked).
func (g *Graph) AddAS(a bgp.ASN) {
	g.init()
	g.asns[a] = true
}

// Link records a relationship between a and b. For ProviderOf, a is the
// provider and b the customer. Duplicate links are idempotent.
func (g *Graph) Link(a, b bgp.ASN, rel Rel) error {
	if a == b {
		return fmt.Errorf("topo: self link on %s", a)
	}
	g.init()
	g.asns[a], g.asns[b] = true, true
	switch rel {
	case ProviderOf:
		if !contains(g.customers[a], b) {
			g.customers[a] = append(g.customers[a], b)
			g.providers[b] = append(g.providers[b], a)
		}
	case PeerWith:
		if !contains(g.peers[a], b) {
			g.peers[a] = append(g.peers[a], b)
			g.peers[b] = append(g.peers[b], a)
		}
	default:
		return fmt.Errorf("topo: unknown relationship %d", rel)
	}
	return nil
}

func contains(s []bgp.ASN, v bgp.ASN) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Has reports whether the AS is part of the graph.
func (g *Graph) Has(a bgp.ASN) bool { return g.asns[a] }

// Len returns the number of ASes.
func (g *Graph) Len() int { return len(g.asns) }

// ASes returns all ASes in ascending order.
func (g *Graph) ASes() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(g.asns))
	for a := range g.asns {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// routeKind orders route preference: customer-learned beats peer-learned
// beats provider-learned (Gao-Rexford export economics).
type routeKind uint8

const (
	fromNone routeKind = iota
	fromProvider
	fromPeer
	fromCustomer
	fromSelf
)

type best struct {
	kind routeKind
	path []bgp.ASN // from this AS to the injector, inclusive
}

// better reports whether candidate (kind, path) beats current b.
func (b best) better(kind routeKind, path []bgp.ASN) bool {
	if kind != b.kind {
		return kind > b.kind
	}
	if len(path) != len(b.path) {
		return len(path) < len(b.path)
	}
	// Deterministic tie-break: lexicographically smaller path wins.
	for i := range path {
		if path[i] != b.path[i] {
			return path[i] < b.path[i]
		}
	}
	return false
}

// betterCand is better() for the candidate path head∘tail, compared
// in place so the fixpoint loops only materialize a path when a route
// is actually adopted — almost all candidates lose.
func (b best) betterCand(kind routeKind, head bgp.ASN, tail []bgp.ASN) bool {
	if kind != b.kind {
		return kind > b.kind
	}
	if len(tail)+1 != len(b.path) {
		return len(tail)+1 < len(b.path)
	}
	if head != b.path[0] {
		return head < b.path[0]
	}
	for i, v := range tail {
		if v != b.path[i+1] {
			return v < b.path[i+1]
		}
	}
	return false
}

func prepend(head bgp.ASN, tail []bgp.ASN) []bgp.ASN {
	out := make([]bgp.ASN, len(tail)+1)
	out[0] = head
	copy(out[1:], tail)
	return out
}

// PathsFrom computes every AS's valley-free best path toward injector.
// The returned map gives, for each AS that can reach the injector, the
// AS-level path starting at that AS and ending at injector. The injector
// maps to the single-element path [injector].
//
// Propagation follows Gao-Rexford: routes learned from customers are
// exported to everyone; routes learned from peers or providers are
// exported only to customers. Preference: customer > peer > provider,
// then shortest path, then lowest next hop.
func (g *Graph) PathsFrom(injector bgp.ASN) map[bgp.ASN][]bgp.ASN {
	g.init()
	if !g.asns[injector] {
		return nil
	}
	state := map[bgp.ASN]best{injector: {kind: fromSelf, path: []bgp.ASN{injector}}}

	// Stage 1: customer routes climb provider chains. Iterate to fixpoint
	// (the provider DAG may be deep); each AS adopts the best
	// customer-learned route.
	changed := true
	for changed {
		changed = false
		for asn, st := range state {
			if st.kind < fromCustomer {
				continue // only customer-learned/self routes climb
			}
			for _, prov := range g.providers[asn] {
				if cur, ok := state[prov]; !ok || cur.betterCand(fromCustomer, prov, st.path) {
					state[prov] = best{kind: fromCustomer, path: prepend(prov, st.path)}
					changed = true
				}
			}
		}
	}

	// Stage 2: one peer hop. Any AS holding a customer/self route exports
	// it to its peers.
	peerAdds := make(map[bgp.ASN]best)
	for asn, st := range state {
		if st.kind < fromCustomer {
			continue
		}
		for _, peer := range g.peers[asn] {
			if cur, ok := state[peer]; ok && !cur.betterCand(fromPeer, peer, st.path) {
				continue
			}
			if prev, ok := peerAdds[peer]; ok && !prev.betterCand(fromPeer, peer, st.path) {
				continue
			}
			peerAdds[peer] = best{kind: fromPeer, path: prepend(peer, st.path)}
		}
	}
	for asn, st := range peerAdds {
		if cur, ok := state[asn]; !ok || cur.better(st.kind, st.path) {
			state[asn] = st
		}
	}

	// Stage 3: routes descend customer cones. Everyone exports their best
	// route to customers; iterate to fixpoint.
	changed = true
	for changed {
		changed = false
		for asn, st := range state {
			for _, cust := range g.customers[asn] {
				cur, ok := state[cust]
				if !ok || cur.betterCand(fromProvider, cust, st.path) {
					state[cust] = best{kind: fromProvider, path: prepend(cust, st.path)}
					changed = true
				}
			}
		}
	}

	out := make(map[bgp.ASN][]bgp.ASN, len(state))
	for asn, st := range state {
		out[asn] = st.path
	}
	return out
}

// CustomerCone returns the set of ASes reachable from a by walking only
// provider→customer edges, including a itself — the AS-rank notion of an
// AS's customer cone. Cone size is the standard proxy for how much of the
// Internet an AS can send hijacked routes to from "below".
func (g *Graph) CustomerCone(a bgp.ASN) []bgp.ASN {
	g.init()
	if !g.asns[a] {
		return nil
	}
	seen := map[bgp.ASN]bool{a: true}
	queue := []bgp.ASN{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range g.customers[cur] {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	out := make([]bgp.ASN, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathBetween returns the valley-free best path from src toward injector,
// if one exists.
func (g *Graph) PathBetween(src, injector bgp.ASN) ([]bgp.ASN, bool) {
	paths := g.PathsFrom(injector)
	p, ok := paths[src]
	return p, ok
}
