package topo

import (
	"testing"

	"dropscope/internal/bgp"
)

// buildChain: T1 is a tier-1; T1 -> P1 -> C1 (provider chains), plus T1
// peers with T2, which is provider of P2 -> C2.
//
//	T1(10) ===peer=== T2(20)
//	  |                 |
//	 P1(11)            P2(21)
//	  |                 |
//	 C1(12)            C2(22)
func buildChain(t *testing.T) *Graph {
	t.Helper()
	var g Graph
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Link(10, 11, ProviderOf))
	must(g.Link(11, 12, ProviderOf))
	must(g.Link(20, 21, ProviderOf))
	must(g.Link(21, 22, ProviderOf))
	must(g.Link(10, 20, PeerWith))
	return &g
}

func pathEq(got []bgp.ASN, want ...bgp.ASN) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestUphillPropagation(t *testing.T) {
	g := buildChain(t)
	paths := g.PathsFrom(12) // origin at the bottom of the left chain
	if !pathEq(paths[12], 12) {
		t.Errorf("self path = %v", paths[12])
	}
	if !pathEq(paths[11], 11, 12) {
		t.Errorf("P1 path = %v", paths[11])
	}
	if !pathEq(paths[10], 10, 11, 12) {
		t.Errorf("T1 path = %v", paths[10])
	}
	// Across the peering edge and down the right chain.
	if !pathEq(paths[20], 20, 10, 11, 12) {
		t.Errorf("T2 path = %v", paths[20])
	}
	if !pathEq(paths[22], 22, 21, 20, 10, 11, 12) {
		t.Errorf("C2 path = %v", paths[22])
	}
}

func TestValleyFree(t *testing.T) {
	// A route learned from a provider must not be re-exported to a peer:
	// make C1 also peer with C2. The path from C2's side to origin at T1
	// must not take the C1—C2 peering shortcut, because C1's route to T1
	// is provider-learned.
	g := buildChain(t)
	if err := g.Link(12, 22, PeerWith); err != nil {
		t.Fatal(err)
	}
	paths := g.PathsFrom(10) // origin at T1
	// C2's valid path climbs to T2 and crosses the T1–T2 peering.
	if !pathEq(paths[22], 22, 21, 20, 10) {
		t.Errorf("C2 path = %v (valley through C1 forbidden)", paths[22])
	}
}

func TestPeerShortcutUsedWhenValid(t *testing.T) {
	// Origin at C1: C2 may use the C1—C2 peering since C1's route is its
	// own (exportable to peers).
	g := buildChain(t)
	if err := g.Link(12, 22, PeerWith); err != nil {
		t.Fatal(err)
	}
	paths := g.PathsFrom(12)
	if !pathEq(paths[22], 22, 12) {
		t.Errorf("C2 path = %v, want direct peering", paths[22])
	}
}

func TestCustomerPreferredOverPeer(t *testing.T) {
	// T1 can reach origin both via its customer chain and via its peer
	// T2; the customer route must win even if same length.
	var g Graph
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Link(10, 11, ProviderOf)) // T1 -> P1
	must(g.Link(20, 11, ProviderOf)) // T2 -> P1 (multihomed customer)
	must(g.Link(10, 20, PeerWith))
	paths := g.PathsFrom(11)
	if !pathEq(paths[10], 10, 11) {
		t.Errorf("T1 path = %v, want direct customer route", paths[10])
	}
}

func TestUnreachableAndUnknown(t *testing.T) {
	g := buildChain(t)
	g.AddAS(99) // isolated
	paths := g.PathsFrom(12)
	if _, ok := paths[99]; ok {
		t.Error("isolated AS should have no path")
	}
	if got := g.PathsFrom(1234); got != nil {
		t.Errorf("unknown injector should return nil, got %v", got)
	}
	if _, ok := g.PathBetween(99, 12); ok {
		t.Error("PathBetween to isolated AS")
	}
	if p, ok := g.PathBetween(22, 12); !ok || len(p) == 0 {
		t.Error("PathBetween should find valley-free route")
	}
}

func TestSelfLinkRejected(t *testing.T) {
	var g Graph
	if err := g.Link(5, 5, ProviderOf); err == nil {
		t.Error("self link should fail")
	}
	if err := g.Link(5, 6, Rel(99)); err == nil {
		t.Error("unknown relationship should fail")
	}
}

func TestIdempotentLinks(t *testing.T) {
	var g Graph
	for i := 0; i < 3; i++ {
		if err := g.Link(1, 2, ProviderOf); err != nil {
			t.Fatal(err)
		}
		if err := g.Link(1, 3, PeerWith); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
	paths := g.PathsFrom(2)
	if !pathEq(paths[1], 1, 2) {
		t.Errorf("duplicate links changed path: %v", paths[1])
	}
}

func TestASesSorted(t *testing.T) {
	g := buildChain(t)
	asns := g.ASes()
	for i := 1; i < len(asns); i++ {
		if asns[i-1] >= asns[i] {
			t.Fatalf("ASes not sorted: %v", asns)
		}
	}
	if !g.Has(10) || g.Has(1000) {
		t.Error("Has misreports")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-kind equal-length paths: lower next hop must win, and
	// repeated runs must agree.
	var g Graph
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Link(11, 1, ProviderOf)) // 11 -> 1
	must(g.Link(12, 1, ProviderOf)) // 12 -> 1
	must(g.Link(30, 11, ProviderOf))
	must(g.Link(30, 12, ProviderOf))
	var firstPath []bgp.ASN
	for i := 0; i < 10; i++ {
		paths := g.PathsFrom(1)
		if i == 0 {
			firstPath = paths[30]
			if !pathEq(firstPath, 30, 11, 1) {
				t.Fatalf("tie break: %v", firstPath)
			}
		} else if !pathEq(paths[30], firstPath...) {
			t.Fatalf("nondeterministic: %v vs %v", paths[30], firstPath)
		}
	}
}

func TestLargeConeFixpoint(t *testing.T) {
	// A 100-deep provider chain must converge and produce correct depth.
	var g Graph
	for i := 0; i < 100; i++ {
		if err := g.Link(bgp.ASN(i), bgp.ASN(i+1), ProviderOf); err != nil {
			t.Fatal(err)
		}
	}
	paths := g.PathsFrom(100) // bottom of the chain
	if got := len(paths[0]); got != 101 {
		t.Errorf("top-of-chain path length = %d", got)
	}
}

func TestCustomerCone(t *testing.T) {
	g := buildChain(t)
	cone := g.CustomerCone(10) // T1: P1, C1 under it
	if !pathEq(cone, 10, 11, 12) {
		t.Errorf("T1 cone = %v", cone)
	}
	// Leaf AS cone is itself.
	if !pathEq(g.CustomerCone(12), 12) {
		t.Errorf("leaf cone = %v", g.CustomerCone(12))
	}
	// Peering does not extend the cone.
	for _, asn := range g.CustomerCone(10) {
		if asn == 20 || asn == 21 || asn == 22 {
			t.Errorf("peer's customers leaked into cone: %v", g.CustomerCone(10))
		}
	}
	if g.CustomerCone(9999) != nil {
		t.Error("unknown AS should have nil cone")
	}
}

func TestCustomerConeMultihomed(t *testing.T) {
	var g Graph
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Diamond: 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4. AS4 counted once.
	must(g.Link(1, 2, ProviderOf))
	must(g.Link(1, 3, ProviderOf))
	must(g.Link(2, 4, ProviderOf))
	must(g.Link(3, 4, ProviderOf))
	if cone := g.CustomerCone(1); !pathEq(cone, 1, 2, 3, 4) {
		t.Errorf("diamond cone = %v", cone)
	}
}
