package analysis

import (
	"testing"
)

func TestROVCounterfactual(t *testing.T) {
	_, p := pipeline(t)
	rov := p.ROVCounterfactual()

	totalHijacks := rov.HijacksBlocked + rov.HijacksAccepted + rov.HijacksUncovered + rov.HijacksUnrouted
	if totalHijacks != 134 {
		t.Errorf("hijack total = %d, want 134 non-incident", totalHijacks)
	}
	// The paper's core finding: hijackers target unsigned space, so ROV
	// is silent (NotFound) for the overwhelming majority.
	if rov.HijacksUncovered < 100 {
		t.Errorf("uncovered hijacks = %d, expected the vast majority", rov.HijacksUncovered)
	}
	// Exactly one hijack was RPKI-valid (the case study); the two
	// attacker-controlled ROAs also validate (the attacker made sure).
	if rov.HijacksAccepted != 3 {
		t.Errorf("accepted (valid) hijacks = %d, want 3", rov.HijacksAccepted)
	}
	if rov.HijacksBlocked != 0 {
		t.Errorf("blocked hijacks = %d; no hijack should be invalid in this world", rov.HijacksBlocked)
	}

	// Squats: production TALs never cover free-pool space; the AS0 TALs
	// cover squats listed after the policy dates.
	if rov.SquatsTotal != 40 {
		t.Errorf("squats = %d", rov.SquatsTotal)
	}
	if rov.SquatsBlockedDefault != 0 {
		t.Errorf("default TALs blocked %d squats; should be 0", rov.SquatsBlockedDefault)
	}
	if rov.SquatsBlockedWithAS0 == 0 {
		t.Error("AS0 TALs should block the post-policy squats")
	}
	if rov.SquatsBlockedWithAS0 >= rov.SquatsTotal {
		t.Error("pre-policy squats cannot be blocked by later AS0 ROAs")
	}
}

func TestAS0WhatIf(t *testing.T) {
	_, p := pipeline(t)
	a := p.AS0WhatIf()
	if a.VulnerableSpace == 0 {
		t.Fatal("no vulnerable signed-unrouted space")
	}
	// The three big organizations dominate (paper: 70.1%).
	share := float64(a.RemediedByTop3) / float64(a.VulnerableSpace)
	if share < 0.5 || share > 0.9 {
		t.Errorf("top-3 share = %.3f, want ≈0.70", share)
	}
	// Unsigned-unrouted space dwarfs the signed-unrouted surface
	// (paper: 30 /8 vs 6.7 /8).
	if a.UnsignedUnroutedSpace <= a.VulnerableSpace {
		t.Errorf("unsigned-unrouted (%d) should exceed signed-unrouted (%d)",
			a.UnsignedUnroutedSpace, a.VulnerableSpace)
	}
}

func TestMaxLengthAnalysis(t *testing.T) {
	_, p := pipeline(t)
	m := p.MaxLengthAnalysis()
	if m.ROAs == 0 {
		t.Fatal("no ROAs")
	}
	if m.LooseMaxLength == 0 {
		t.Fatal("no loose-maxLength ROAs; generator should emit ~35%")
	}
	frac := float64(m.LooseMaxLength) / float64(m.ROAs)
	if frac < 0.15 || frac > 0.55 {
		t.Errorf("loose fraction = %.3f, want ≈0.35", frac)
	}
	// Nearly all loose ROAs cover routed prefixes whose sub-prefixes are
	// unannounced: forgeable (Gilad et al.: 84%).
	vulnFrac := float64(m.VulnerableLoose) / float64(m.LooseMaxLength)
	if vulnFrac < 0.7 {
		t.Errorf("vulnerable-loose fraction = %.3f, want high", vulnFrac)
	}
	if m.ForgeableSpace == 0 {
		t.Error("no forgeable space computed")
	}
}

func TestPathEndCounterfactual(t *testing.T) {
	_, p := pipeline(t)
	pe := p.PathEndCounterfactual()
	if pe.RecordsBuilt == 0 {
		t.Fatal("no path-end records enrolled")
	}
	total := pe.HijacksInvalid + pe.HijacksValid + pe.HijacksNotFound + pe.HijacksUnrouted
	if total != 134 {
		t.Errorf("hijack total = %d, want 134", total)
	}
	// The RPKI-valid hijack has an enrolled owner (it was routed at
	// window start via its legitimate transit): path-end catches it.
	if !pe.CaseStudyCaught {
		t.Error("case-study hijack not caught by path-end validation")
	}
	if pe.HijacksInvalid == 0 {
		t.Error("no hijacks caught")
	}
	// Most hijacked space is abandoned: no one enrolled, validation is
	// silent — deployment dependence, the paper's caveat.
	if pe.HijacksNotFound < pe.HijacksInvalid {
		t.Errorf("expected notfound (%d) to dominate invalid (%d)",
			pe.HijacksNotFound, pe.HijacksInvalid)
	}
}

func TestSerialHijackers(t *testing.T) {
	_, p := pipeline(t)
	// Serial hijackers: several prefixes, mostly blocklisted, announced
	// briefly (median span under a year).
	profiles := p.SerialHijackers(3, 0.5, 365)
	if len(profiles) == 0 {
		t.Fatal("no serial hijackers profiled")
	}
	for _, prof := range profiles {
		// Operators announcing for the whole window are excluded by the
		// span criterion even when their space is listed.
		if prof.Origin >= 64500 && prof.Origin < 64900 {
			t.Errorf("persistent operator %v profiled as serial hijacker (%+v)", prof.Origin, prof)
		}
	}
	// The attacker pool (213000+) dominates the profile list.
	attackers := 0
	for _, prof := range profiles {
		if prof.Origin >= 213000 && prof.Origin < 213100 {
			attackers++
		}
	}
	if attackers < len(profiles)/2 {
		t.Errorf("attacker ASes = %d of %d profiles", attackers, len(profiles))
	}
}

func TestMOASSweep(t *testing.T) {
	_, p := pipeline(t)
	rep := p.MOASSweep()
	if len(rep.Samples) < 30 {
		t.Fatalf("samples = %d", len(rep.Samples))
	}
	// The case-study hijack re-originates 132.255.0.0/22 with the owner
	// ASN after withdrawal — no MOAS there. But forged-origin hijacks of
	// still-announced prefixes are rare in this world, so conflicts should
	// be low but the machinery must at least run and be consistent.
	for _, s := range rep.Samples {
		if s.Listed > s.Conflicts {
			t.Fatalf("listed %d > conflicts %d", s.Listed, s.Conflicts)
		}
	}
}

func TestMOASConflictsPresent(t *testing.T) {
	_, p := pipeline(t)
	rep := p.MOASSweep()
	peak := 0
	for _, s := range rep.Samples {
		if s.Conflicts > peak {
			peak = s.Conflicts
		}
	}
	if peak == 0 {
		t.Error("the world plants active-space hijacks; MOAS sweep should see conflicts")
	}
}
