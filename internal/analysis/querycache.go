package analysis

import (
	"sync"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

// queryCache memoizes the whole-index day queries that several
// experiments repeat against the same closed Index: the routed-space
// set (Fig5's sweep plus three end-of-window analyses), the MOAS sweep,
// and the per-origin activity aggregation. The experiment fan-out runs
// on concurrent goroutines sharing one Pipeline, so each key resolves
// through its own sync.Once — the first caller computes, everyone else
// blocks briefly and shares the result. Cached values are shared and
// must be treated as immutable by callers; every current caller only
// reads them.
type queryCache struct {
	mu     sync.Mutex
	routed map[routedKey]*routedEntry
	moas   map[timex.Day]*moasEntry

	originsOnce sync.Once
	origins     map[bgp.ASN]*rib.OriginActivity
}

type routedKey struct {
	day      timex.Day
	minPeers int
}

type routedEntry struct {
	once sync.Once
	set  *netx.Set
}

type moasEntry struct {
	once sync.Once
	ms   []rib.MOAS
}

// RoutedSpaceAt is Index.RoutedSpace memoized on (day, minPeers). The
// returned set is shared across callers: read it, never Add to it.
func (p *Pipeline) RoutedSpaceAt(d timex.Day, minPeers int) *netx.Set {
	k := routedKey{day: d, minPeers: minPeers}
	p.cache.mu.Lock()
	if p.cache.routed == nil {
		p.cache.routed = make(map[routedKey]*routedEntry)
	}
	e := p.cache.routed[k]
	if e == nil {
		e = &routedEntry{}
		p.cache.routed[k] = e
	}
	p.cache.mu.Unlock()
	e.once.Do(func() { e.set = p.Index.RoutedSpace(d, minPeers) })
	return e.set
}

// MOASConflictsAt is Index.MOASConflicts memoized per day. The returned
// slice is shared across callers and must not be mutated.
func (p *Pipeline) MOASConflictsAt(d timex.Day) []rib.MOAS {
	p.cache.mu.Lock()
	if p.cache.moas == nil {
		p.cache.moas = make(map[timex.Day]*moasEntry)
	}
	e := p.cache.moas[d]
	if e == nil {
		e = &moasEntry{}
		p.cache.moas[d] = e
	}
	p.cache.mu.Unlock()
	e.once.Do(func() { e.ms = p.Index.MOASConflicts(d) })
	return e.ms
}

// OriginActivity is Index.ByOrigin memoized. The returned map and its
// activities are shared across callers and must not be mutated.
func (p *Pipeline) OriginActivity() map[bgp.ASN]*rib.OriginActivity {
	p.cache.originsOnce.Do(func() { p.cache.origins = p.Index.ByOrigin() })
	return p.cache.origins
}
