package analysis

import (
	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/rpki"
	"dropscope/internal/sbl"
)

// ROVImpact quantifies how much of the DROP abuse universal route origin
// validation would actually have stopped — the counterfactual behind the
// paper's conclusion that RPKI alone is not enough.
type ROVImpact struct {
	// Hijacked listings by the ROV outcome of the malicious announcement
	// on the listing day, under the default (production) TALs.
	HijacksBlocked   int // Invalid: ROV deployment would have rejected it
	HijacksAccepted  int // Valid: the RPKI-valid hijack class
	HijacksUncovered int // NotFound: no ROA — ROV is silent
	HijacksUnrouted  int // not announced on the listing day

	// Unallocated listings under the default TALs vs. with the RIR AS0
	// TALs loaded.
	SquatsBlockedDefault int
	SquatsBlockedWithAS0 int
	SquatsTotal          int
}

// ROVCounterfactual validates every hijacked and unallocated listing's
// announcement against the ROA archive as of its listing day.
func (p *Pipeline) ROVCounterfactual() ROVImpact {
	var out ROVImpact
	as0TALs := append(append([]rpki.TrustAnchor{}, rpki.DefaultTALs...),
		rpki.TAAPNICAS0, rpki.TALACNICAS0)
	for _, l := range p.NonIncident() {
		origin, routed := p.originAtListing(l)
		switch {
		case l.Has(sbl.Hijacked):
			if !routed {
				out.HijacksUnrouted++
				continue
			}
			switch p.ds.RPKI.ValidateAt(l.Prefix, origin, l.Added, rpki.DefaultTALs) {
			case rpki.Invalid:
				out.HijacksBlocked++
			case rpki.Valid:
				out.HijacksAccepted++
			default:
				out.HijacksUncovered++
			}
		case l.Has(sbl.Unallocated) || l.UnallocatedAtListing:
			out.SquatsTotal++
			if !routed {
				continue
			}
			if p.ds.RPKI.ValidateAt(l.Prefix, origin, l.Added, rpki.DefaultTALs) == rpki.Invalid {
				out.SquatsBlockedDefault++
			}
			if p.ds.RPKI.ValidateAt(l.Prefix, origin, l.Added, as0TALs) == rpki.Invalid {
				out.SquatsBlockedWithAS0++
			}
		}
	}
	return out
}

// AS0Remediation is the what-if the paper's §6.2.1 argues for: signing
// all unrouted signed space with AS0 instead of a routable ASN.
type AS0Remediation struct {
	// VulnerableSpace is signed-but-unrouted space whose ROA authorizes a
	// routable ASN at window end (forgeable-origin surface).
	VulnerableSpace uint64
	// RemediedByTopN is the space removed if only the N largest holders
	// adopted AS0 (paper: three organizations cover 70.1%).
	RemediedByTop3 uint64
	// UnsignedUnroutedSpace is the remaining surface no ROA can describe
	// until it is signed at all.
	UnsignedUnroutedSpace uint64
}

// AS0WhatIf computes the remediation arithmetic at window end.
func (p *Pipeline) AS0WhatIf() AS0Remediation {
	var out AS0Remediation
	end := p.ds.Window.Last
	routed := p.RoutedSpaceAt(end, 1)

	holdings := make(map[bgp.ASN]uint64)
	for _, roa := range p.ds.RPKI.LiveAt(end, rpki.DefaultTALs) {
		if roa.ASN == bgp.AS0 || routed.Overlaps(roa.Prefix) {
			continue
		}
		out.VulnerableSpace += roa.Prefix.NumAddrs()
		holdings[roa.ASN] += roa.Prefix.NumAddrs()
	}
	var hs []Holding
	for asn, space := range holdings {
		hs = append(hs, Holding{asn, space})
	}
	sortHoldings(hs)
	for i := 0; i < len(hs) && i < 3; i++ {
		out.RemediedByTop3 += hs[i].Space
	}

	for _, rec := range p.ds.RIR.RecordsAt(end) {
		if rec.Status != rirstats.Allocated && rec.Status != rirstats.Assigned {
			continue
		}
		for _, blk := range rec.Prefixes() {
			if !routed.Overlaps(blk) && !p.ds.RPKI.SignedAt(blk, end) {
				out.UnsignedUnroutedSpace += blk.NumAddrs()
			}
		}
	}
	return out
}

// MaxLengthAudit quantifies the forged-origin sub-prefix surface the
// paper's §2.3 discusses (Gilad et al.): a ROA whose maxLength exceeds
// its prefix length authorizes sub-prefixes the holder does not announce,
// each hijackable by forging the ROA's origin.
type MaxLengthAudit struct {
	ROAs           int // non-AS0 ROAs under production TALs at window end
	LooseMaxLength int // ROAs with maxLength > prefix length
	// VulnerableLoose counts loose ROAs where some authorized sub-prefix
	// is unannounced (forgeable); Gilad et al. found 84% in 2017.
	VulnerableLoose int
	// ForgeableSpace sums the unannounced authorized space.
	ForgeableSpace uint64
}

// MaxLengthAnalysis audits the live ROAs at window end. A loose ROA is
// forgeable wherever the owner's most specific announcement is shorter
// than the maxLength: the attacker announces a longer authorized
// sub-prefix with the forged origin, which is RPKI-valid and wins the
// longest-prefix match. Space the owner already announces at maxLength is
// safe (the attacker can at best tie).
func (p *Pipeline) MaxLengthAnalysis() MaxLengthAudit {
	var out MaxLengthAudit
	end := p.ds.Window.Last
	routed := p.RoutedSpaceAt(end, 1)
	for _, roa := range p.ds.RPKI.LiveAt(end, rpki.DefaultTALs) {
		if roa.ASN == bgp.AS0 {
			continue
		}
		out.ROAs++
		if roa.MaxLength <= roa.Prefix.Bits() {
			continue
		}
		out.LooseMaxLength++
		var safe netx.Set
		for _, m := range routed.MembersCoveredBy(roa.Prefix) {
			if m.Bits() >= roa.MaxLength {
				safe.Add(m)
			}
		}
		forgeable := roa.Prefix.NumAddrs() - safe.AddrCount()
		if forgeable > 0 {
			out.VulnerableLoose++
			out.ForgeableSpace += forgeable
		}
	}
	return out
}
