package analysis

import (
	"dropscope/internal/rirstats"
	"dropscope/internal/sbl"
)

// Table1Cell is one (region, population) cell of Table 1.
type Table1Cell struct {
	Signed int // prefixes that gained a ROA during the window
	Total  int // population size (prefixes without a ROA at baseline)
}

// Rate returns the cell's signing rate (0 if empty).
func (c Table1Cell) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Signed) / float64(c.Total)
}

// Table1 is the RPKI-uptake table: per RIR, the signing rate of prefixes
// never listed on DROP, removed from DROP, and still present on DROP.
type Table1 struct {
	Never   map[rirstats.RIR]Table1Cell
	Removed map[rirstats.RIR]Table1Cell
	Present map[rirstats.RIR]Table1Cell
	// §4.2: among removed listings signed during the window, how the
	// signing ASN relates to the BGP origin at listing time.
	RemovedSignedDifferentASN int
	RemovedSignedSameASN      int
	RemovedSignedUnrouted     int
}

// overall sums a row map into one cell.
func overall(m map[rirstats.RIR]Table1Cell) Table1Cell {
	var out Table1Cell
	for _, c := range m {
		out.Signed += c.Signed
		out.Total += c.Total
	}
	return out
}

// Overall returns the three bottom-row cells (never, removed, present).
func (t Table1) Overall() (never, removed, present Table1Cell) {
	return overall(t.Never), overall(t.Removed), overall(t.Present)
}

// Table1RPKIUptake computes the signing rates. The "never on DROP"
// population is every prefix observed in BGP during the window that
// never appeared on DROP and had no covering ROA at window start; the
// listing populations are the non-incident, allocated listings without a
// ROA on their listing day.
func (p *Pipeline) Table1RPKIUptake() Table1 {
	out := Table1{
		Never:   make(map[rirstats.RIR]Table1Cell),
		Removed: make(map[rirstats.RIR]Table1Cell),
		Present: make(map[rirstats.RIR]Table1Cell),
	}
	start, end := p.ds.Window.First, p.ds.Window.Last

	listed := make(map[string]bool)
	for _, l := range p.Listings {
		listed[l.Prefix.String()] = true
	}

	// Never-on-DROP population from the reassembled RIBs.
	for _, pfx := range p.Index.Prefixes() {
		if listed[pfx.String()] {
			continue
		}
		reg, ok := p.ds.RIR.ManagedBy(pfx)
		if !ok || !p.ds.RIR.AllocatedAt(pfx, start) {
			continue
		}
		if p.ds.RPKI.SignedAt(pfx, start) {
			continue // had a ROA at baseline; outside this population
		}
		cell := out.Never[reg]
		cell.Total++
		if p.ds.RPKI.SignedAt(pfx, end) {
			cell.Signed++
		}
		out.Never[reg] = cell
	}

	// Listing populations.
	for _, l := range p.NonIncident() {
		if l.Has(sbl.Unallocated) || l.UnallocatedAtListing {
			continue // nothing to sign for unallocated space
		}
		if !l.HasRegistry {
			continue
		}
		if p.ds.RPKI.SignedAt(l.Prefix, l.Added) {
			continue // had a ROA when added (outside Table 1)
		}
		signed := p.ds.RPKI.SignedAt(l.Prefix, end)
		row := out.Present
		if l.HasRemoved {
			row = out.Removed
		}
		cell := row[l.Registry]
		cell.Total++
		if signed {
			cell.Signed++
		}
		row[l.Registry] = cell

		// §4.2 breakdown for removed-and-signed listings.
		if l.HasRemoved && signed {
			_, signASN, ok := p.ds.RPKI.FirstSigned(l.Prefix)
			if !ok {
				continue
			}
			origin, routed := p.originAtListing(l)
			switch {
			case !routed:
				out.RemovedSignedUnrouted++
			case origin == signASN:
				out.RemovedSignedSameASN++
			default:
				out.RemovedSignedDifferentASN++
			}
		}
	}
	return out
}
