package analysis

import (
	"sort"

	"dropscope/internal/bgp"
	"dropscope/internal/timex"
)

// HijackerProfile summarizes one origin AS's behavior the way Testart et
// al.'s serial-hijacker study profiled ASes: how much it originates, how
// long its announcements live, and how much of its footprint lands on
// the blocklist.
type HijackerProfile struct {
	Origin bgp.ASN
	// PrefixCount is the number of distinct prefixes the AS originated in
	// the window; ListedCount is how many of those appeared on DROP.
	PrefixCount int
	ListedCount int
	// MedianSpanDays is the median origination-span length: serial
	// hijackers announce briefly, legitimate operators persistently.
	MedianSpanDays int
	// ListedFraction = ListedCount / PrefixCount.
	ListedFraction float64
}

// SerialHijackers profiles every origin AS and returns the repeat
// offenders of §2.1: at least minPrefixes distinct prefixes, a
// blocklisted share of at least minListedFraction, and a median
// origination span of at most maxMedianSpanDays — brief announcements
// are the discriminating feature Testart et al. identified (legitimate
// operators announce persistently, even when their space is listed).
// Results are sorted by listed count descending.
func (p *Pipeline) SerialHijackers(minPrefixes int, minListedFraction float64, maxMedianSpanDays int) []HijackerProfile {
	listed := make(map[string]bool)
	for _, l := range p.Listings {
		listed[l.Prefix.String()] = true
	}

	var out []HijackerProfile
	for origin, act := range p.OriginActivity() {
		if len(act.Prefixes) < minPrefixes {
			continue
		}
		prof := HijackerProfile{Origin: origin, PrefixCount: len(act.Prefixes)}
		var spanLens []int
		for _, pfx := range act.Prefixes {
			if listed[pfx.String()] {
				prof.ListedCount++
			}
			for _, s := range p.Index.OriginTimeline(pfx) {
				if s.Origin == origin {
					spanLens = append(spanLens, int(s.To-s.From))
				}
			}
		}
		sort.Ints(spanLens)
		if len(spanLens) > 0 {
			prof.MedianSpanDays = spanLens[len(spanLens)/2]
		}
		prof.ListedFraction = float64(prof.ListedCount) / float64(prof.PrefixCount)
		if prof.ListedFraction >= minListedFraction && prof.MedianSpanDays <= maxMedianSpanDays {
			out = append(out, prof)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ListedCount != out[j].ListedCount {
			return out[i].ListedCount > out[j].ListedCount
		}
		return out[i].Origin < out[j].Origin
	})
	return out
}

// MOASReport counts multiple-origin-AS conflicts over a monthly sweep and
// how many conflicted prefixes were DROP-listed at the time — tying the
// coarse MOAS alarm to ground truth the blocklist provides.
type MOASReport struct {
	Samples []MOASSample
}

// MOASSample is one sweep point.
type MOASSample struct {
	Day       timex.Day
	Conflicts int
	Listed    int
}

// MOASSweep samples MOAS conflicts monthly across the window.
func (p *Pipeline) MOASSweep() MOASReport {
	var out MOASReport
	const step = 30
	for d := p.ds.Window.First; d <= p.ds.Window.Last; d += step {
		s := MOASSample{Day: d}
		for _, m := range p.MOASConflictsAt(d) {
			s.Conflicts++
			if p.ds.DROP.ListedAt(m.Prefix, d) {
				s.Listed++
			}
		}
		out.Samples = append(out.Samples, s)
	}
	return out
}
