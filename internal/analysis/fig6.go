package analysis

import (
	"sort"

	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/rpki"
	"dropscope/internal/timex"
)

// Fig6Event is one unallocated prefix appearing on DROP.
type Fig6Event struct {
	Day      timex.Day
	Prefix   netx.Prefix
	Registry rirstats.RIR // registry whose free pool holds the space
}

// Fig6 is the unallocated-space timeline of §6.2.2.
type Fig6 struct {
	Events []Fig6Event
	ByRIR  map[rirstats.RIR]int
	// APNICAS0Day / LACNICAS0Day are detected from the RPKI archive as
	// the first day an AS0-TAL ROA appears for each registry.
	APNICAS0Day  timex.Day
	HasAPNICAS0  bool
	LACNICAS0Day timex.Day
	HasLACNICAS0 bool
	// FilterableAtEnd counts routed prefixes on the final day whose
	// announcements the AS0 TALs would have rejected — the paper found
	// every full-table peer still carried ≈30 such prefixes.
	FilterableAtEnd int
}

// Fig6UnallocatedTimeline extracts the unallocated listings and the RIR
// AS0 policy activations.
func (p *Pipeline) Fig6UnallocatedTimeline() Fig6 {
	out := Fig6{ByRIR: make(map[rirstats.RIR]int)}
	for _, l := range p.Listings {
		if !l.UnallocatedAtListing {
			continue
		}
		ev := Fig6Event{Day: l.Added, Prefix: l.Prefix, Registry: l.Registry}
		out.Events = append(out.Events, ev)
		out.ByRIR[l.Registry]++
	}
	sort.Slice(out.Events, func(i, j int) bool {
		if out.Events[i].Day != out.Events[j].Day {
			return out.Events[i].Day < out.Events[j].Day
		}
		return out.Events[i].Prefix.Compare(out.Events[j].Prefix) < 0
	})

	// Policy activation days: first AS0-TAL ROA per registry, found by
	// scanning the window against each AS0 TAL.
	out.APNICAS0Day, out.HasAPNICAS0 = p.firstAS0Day(rpki.TAAPNICAS0)
	out.LACNICAS0Day, out.HasLACNICAS0 = p.firstAS0Day(rpki.TALACNICAS0)

	// Routed-but-AS0-covered prefixes at window end.
	end := p.ds.Window.Last
	as0TALs := []rpki.TrustAnchor{rpki.TAAPNICAS0, rpki.TALACNICAS0}
	for _, pfx := range p.Index.Prefixes() {
		if !p.Index.Observed(pfx, end) {
			continue
		}
		origin, ok := p.Index.OriginAt(pfx, end)
		if !ok {
			continue
		}
		if p.ds.RPKI.ValidateAt(pfx, origin, end, as0TALs) == rpki.Invalid {
			out.FilterableAtEnd++
		}
	}
	return out
}

func (p *Pipeline) firstAS0Day(ta rpki.TrustAnchor) (timex.Day, bool) {
	tals := []rpki.TrustAnchor{ta}
	lo, hi := p.ds.Window.First, p.ds.Window.Last
	if len(p.ds.RPKI.LiveAt(hi, tals)) == 0 {
		return 0, false
	}
	// Binary search for the first day with a live AS0-TAL ROA. ROA
	// presence under one TAL is monotone here: policies activate once.
	for lo < hi {
		mid := lo + (hi-lo)/2
		if len(p.ds.RPKI.LiveAt(mid, tals)) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// Fig7Sample is one point of the free-pool series.
type Fig7Sample struct {
	Day   timex.Day
	Pools map[rirstats.RIR]uint64
}

// Fig7FreePools sweeps the window monthly, reporting each registry's
// unallocated (available) address space.
func (p *Pipeline) Fig7FreePools() []Fig7Sample {
	var out []Fig7Sample
	const step = 30
	for d := p.ds.Window.First; d <= p.ds.Window.Last; d += step {
		s := Fig7Sample{Day: d, Pools: make(map[rirstats.RIR]uint64)}
		for _, rir := range rirstats.AllRIRs {
			s.Pools[rir] = p.ds.RIR.FreePool(rir, d)
		}
		out = append(out, s)
	}
	return out
}
