package analysis

import (
	"sort"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/rpki"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
)

// PreSignedHijack is one hijacked listing that was RPKI-signed before it
// was blocklisted.
type PreSignedHijack struct {
	Prefix netx.Prefix
	Listed timex.Day
	// AttackerControlledROA is inferred when the ROA's ASN changed in
	// step with the BGP origin before the listing (§6.1 found two such).
	AttackerControlledROA bool
	// RPKIValidHijack is set when the announcement on the listing day
	// validated against the pre-existing ROA — the paper's headline case.
	RPKIValidHijack bool
}

// Fig4Row is one prefix timeline of the Figure-4 case study.
type Fig4Row struct {
	Prefix netx.Prefix
	Spans  []rib.OriginSpan
	Signed bool // covered by a ROA during the hijack
	Listed bool // added to DROP in the window
}

// Fig4 is the §6.1 RPKI-effectiveness analysis.
type Fig4 struct {
	HijackedListings int
	PreSigned        []PreSignedHijack
	// Case study reconstruction around the RPKI-valid hijack.
	CasePrefix     netx.Prefix
	CaseOrigin     bgp.ASN
	CaseTransit    bgp.ASN // the hijacker's transit AS
	Rows           []Fig4Row
	SiblingCount   int
	SiblingsListed int
}

// Fig4RPKIValidHijacks finds hijacked listings that were signed before
// listing, identifies the RPKI-valid hijack, and reconstructs the
// case-study timeline including sibling prefixes announced through the
// same transit with the same spoofed origin.
func (p *Pipeline) Fig4RPKIValidHijacks() Fig4 {
	var out Fig4
	for _, l := range p.NonIncident() {
		if !l.Has(sbl.Hijacked) {
			continue
		}
		out.HijackedListings++
		if !p.ds.RPKI.SignedAt(l.Prefix, l.Added-1) {
			continue
		}
		h := PreSignedHijack{Prefix: l.Prefix, Listed: l.Added}

		// Attacker-controlled ROA: more than one ROA ASN in the two years
		// before listing, tracking the BGP origin.
		hist := p.ds.RPKI.History(l.Prefix)
		asns := make(map[bgp.ASN]bool)
		for _, s := range hist {
			if s.Created <= l.Added && s.Created >= l.Added-730 {
				asns[s.ROA.ASN] = true
			}
		}
		h.AttackerControlledROA = len(asns) > 1

		if origin, ok := p.Index.OriginAt(l.Prefix, l.Added); ok {
			if p.ds.RPKI.ValidateAt(l.Prefix, origin, l.Added, rpki.DefaultTALs) == rpki.Valid {
				h.RPKIValidHijack = !h.AttackerControlledROA
			}
		}
		out.PreSigned = append(out.PreSigned, h)
	}
	sort.Slice(out.PreSigned, func(i, j int) bool {
		return out.PreSigned[i].Prefix.Compare(out.PreSigned[j].Prefix) < 0
	})

	// Case study: take the RPKI-valid hijack (if any) and find siblings:
	// prefixes whose in-window announcements share the same origin and
	// the same penultimate (transit) AS.
	for _, h := range out.PreSigned {
		if !h.RPKIValidHijack {
			continue
		}
		out.CasePrefix = h.Prefix
		tl := p.Index.OriginTimeline(h.Prefix)
		if len(tl) == 0 {
			break
		}
		last := tl[len(tl)-1]
		out.CaseOrigin, out.CaseTransit = last.Origin, last.Transit

		listedSet := make(map[netx.Prefix]bool)
		for _, l := range p.Listings {
			listedSet[l.Prefix] = true
		}
		out.Rows = append(out.Rows, Fig4Row{
			Prefix: h.Prefix, Spans: tl, Signed: true, Listed: true,
		})
		for _, pfx := range p.Index.Prefixes() {
			if pfx == h.Prefix {
				continue
			}
			spans := p.Index.OriginTimeline(pfx)
			match := false
			for _, s := range spans {
				if s.Origin == out.CaseOrigin && s.Transit == out.CaseTransit {
					match = true
				}
			}
			if !match {
				continue
			}
			out.SiblingCount++
			row := Fig4Row{
				Prefix: pfx, Spans: spans,
				Signed: p.ds.RPKI.SignedAt(pfx, p.ds.Window.Last),
				Listed: listedSet[pfx],
			}
			if row.Listed {
				out.SiblingsListed++
			}
			out.Rows = append(out.Rows, row)
		}
		break
	}
	return out
}
