// Package analysis implements the paper's measurement pipeline. It
// consumes only the archive substrates — DROP snapshots, SBL records,
// reassembled RouteViews RIBs, the IRR journal, the RPKI archive, and RIR
// stats — and recomputes every table and figure of the paper. It never
// touches generator ground truth.
package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dropscope/internal/bgp"
	"dropscope/internal/drop"
	"dropscope/internal/ingest"
	"dropscope/internal/irr"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/rirstats"
	"dropscope/internal/rpki"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
)

// Dataset is the full set of inputs the pipeline consumes.
type Dataset struct {
	Window timex.Range
	DROP   *drop.Archive
	SBL    *sbl.DB
	IRR    *irr.DB
	RPKI   *rpki.Archive
	RIR    *rirstats.Timeline
	// MRT holds each collector's record stream.
	MRT map[string][]mrt.Record
}

// Listing is one DROP listing enriched with everything the analyses need.
type Listing struct {
	drop.Listing
	Classification sbl.Classification
	Registry       rirstats.RIR
	HasRegistry    bool
	// UnallocatedAtListing reports the RIR-stats allocation state on the
	// listing day.
	UnallocatedAtListing bool
	// Incident marks the prefixes attributed to the two AFRINIC incidents,
	// identified (as in the paper) as the anomalously large hijack blocks;
	// they are excluded from the behavioral analyses.
	Incident bool
}

// Has reports whether the listing carries category c.
func (l *Listing) Has(c sbl.Category) bool { return l.Classification.Has(c) }

// Pipeline joins the data sets and serves every experiment. Build one
// with New; it reassembles the RIBs once and reuses them.
type Pipeline struct {
	ds       Dataset
	Index    rib.Querier
	Listings []*Listing
	// Health accumulates ingest accounting when the pipeline was built
	// leniently (Options.Lenient); nil after a strict build.
	Health *ingest.Health

	cache queryCache
}

// Options configures how New builds the pipeline.
type Options struct {
	// Workers bounds the RIB-loading pool. <= 0 means
	// runtime.GOMAXPROCS(0); 1 loads serially.
	Workers int
	// Lenient tolerates damaged collectors: instead of the first
	// unappliable record failing the build, records are skipped and
	// counted, and a collector whose skip count exceeds MaxSkip is
	// quarantined — dropped from the merge — while the study proceeds
	// with the remaining collectors.
	Lenient bool
	// MaxSkip is the per-collector skip budget in lenient mode. 0 means
	// ingest.DefaultMaxSkip; negative means unlimited.
	MaxSkip int
	// Health receives per-source accounting in lenient mode. When nil, a
	// fresh accumulator is created (exposed as Pipeline.Health). Pass the
	// same Health the archive was loaded with so decode-stage skips count
	// toward each collector's budget.
	Health *ingest.Health
	// Index, when non-nil, is a prebuilt query view over a closed RIB
	// index — typically warm-loaded from a snapshot (internal/ribsnap),
	// possibly a prefix-range sharded fan-out (rib.Sharded) — installed
	// as Pipeline.Index verbatim. MRT reassembly (load, merge, close) is
	// skipped entirely and ds.MRT may be nil; everything else (listings,
	// classification, registry annotation) proceeds normally. The caller
	// vouches that the index matches the dataset's MRT state and window.
	Index rib.Querier
}

// New builds the pipeline: loads every collector's MRT stream into a RIB
// index, extracts DROP listing events, classifies SBL records, and
// annotates listings with registry and allocation state.
//
// The per-collector RIB reassembly — the dominant cost — runs on a
// bounded pool of runtime.GOMAXPROCS(0) workers; the per-collector
// results are merged in sorted collector order, so the built pipeline is
// identical to the serial path's byte for byte. Use NewSerial (or
// NewWithConcurrency with workers = 1) to load on the calling goroutine
// only.
func New(ds Dataset) (*Pipeline, error) {
	return NewWithConcurrency(ds, 0)
}

// NewSerial is New with the RIB-loading worker pool disabled: every
// collector loads sequentially on the calling goroutine. It exists as the
// single-threaded escape hatch and as the reference the parallel path is
// benchmarked and differentially tested against.
func NewSerial(ds Dataset) (*Pipeline, error) {
	return NewWithConcurrency(ds, 1)
}

// NewWithConcurrency is New with an explicit worker bound. workers <= 0
// means runtime.GOMAXPROCS(0); workers == 1 loads serially. Whatever the
// bound, results are deterministic: collector RIBs merge in sorted name
// order.
func NewWithConcurrency(ds Dataset, workers int) (*Pipeline, error) {
	return NewWithOptions(ds, Options{Workers: workers})
}

// NewWithOptions is New under explicit build options. A strict build
// (the default) fails on the first unappliable record, exactly as New
// does; a lenient build skips and counts damage per collector,
// quarantines collectors beyond their skip budget, and records
// everything in Pipeline.Health. Whatever the options, collector RIBs
// merge in sorted name order, so serial and parallel builds over the
// same (possibly damaged) dataset are identical.
func NewWithOptions(ds Dataset, opts Options) (*Pipeline, error) {
	if ds.DROP == nil || ds.SBL == nil || ds.IRR == nil || ds.RPKI == nil || ds.RIR == nil {
		return nil, fmt.Errorf("analysis: incomplete dataset")
	}
	p := &Pipeline{ds: ds}
	if opts.Lenient {
		if opts.Health == nil {
			opts.Health = ingest.NewHealth()
		}
		if opts.MaxSkip == 0 {
			opts.MaxSkip = ingest.DefaultMaxSkip
		}
		p.Health = opts.Health
	}

	if opts.Index != nil {
		p.Index = opts.Index
	} else {
		collectors := make([]string, 0, len(ds.MRT))
		for name := range ds.MRT {
			collectors = append(collectors, name)
		}
		sort.Strings(collectors)

		ribs, err := loadCollectors(ds.MRT, collectors, opts)
		if err != nil {
			return nil, err
		}
		ix := rib.NewIndex()
		for _, c := range ribs {
			if c == nil {
				continue // quarantined
			}
			if err := ix.Merge(c); err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", c.Collector(), err)
			}
		}
		ix.Close(ds.Window.Last)
		p.Index = ix
	}

	for _, l := range ds.DROP.Listings() {
		el := &Listing{Listing: l, Classification: ds.SBL.ClassifyRef(l.SBLRef)}
		if reg, ok := ds.RIR.ManagedBy(l.Prefix); ok {
			el.Registry, el.HasRegistry = reg, true
		}
		el.UnallocatedAtListing = ds.RIR.UnallocatedAt(l.Prefix, l.Added)
		p.Listings = append(p.Listings, el)
	}
	p.markIncidents()
	return p, nil
}

// loadCollectors reassembles each collector's RIB, fanning the work out
// over a bounded pool. Error propagation is errgroup-style: the first
// failure stops workers from claiming further collectors, in-flight loads
// drain, and the error reported is the erroring collector earliest in
// sorted order — the same one the serial path would have surfaced.
//
// In lenient mode a collector never errors: its unappliable records are
// skipped and counted, and if the skip total (decode-stage skips already
// on its Source plus semantic skips added here) exceeds the budget, the
// collector is quarantined — its slot stays nil. Each quarantine
// decision depends only on that collector's own stream, so worker count
// cannot change the outcome.
func loadCollectors(streams map[string][]mrt.Record, collectors []string, opts Options) ([]*rib.CollectorRIB, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(collectors) {
		workers = len(collectors)
	}
	ribs := make([]*rib.CollectorRIB, len(collectors))
	errs := make([]error, len(collectors))

	loadOne := func(name string) (*rib.CollectorRIB, error) {
		if !opts.Lenient {
			return rib.LoadCollector(name, streams[name])
		}
		recs := streams[name]
		src := opts.Health.Source("mrt/" + name)
		if src.Records == 0 && src.Skipped() == 0 {
			// The stream arrived in memory without passing through a
			// lenient decode; every record present counts as accepted.
			src.Accept(uint64(len(recs)))
		}
		if overBudget(src, opts.MaxSkip) {
			// Decode-stage damage alone exhausted the budget.
			src.Quarantine(budgetNote(src, opts.MaxSkip))
			return nil, nil
		}
		c, err := rib.LoadCollectorHealth(name, recs, src)
		if err != nil {
			return nil, err
		}
		if overBudget(src, opts.MaxSkip) {
			src.Quarantine(budgetNote(src, opts.MaxSkip))
			return nil, nil
		}
		return c, nil
	}

	if workers <= 1 {
		for i, name := range collectors {
			c, err := loadOne(name)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", name, err)
			}
			ribs[i] = c
		}
		return ribs, nil
	}

	var (
		next   atomic.Int64 // next unclaimed collector index
		failed atomic.Bool  // set on first error; stops new claims
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(collectors) || failed.Load() {
					return
				}
				c, err := loadOne(collectors[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				ribs[i] = c
			}
		}()
	}
	wg.Wait()

	// Workers claim indices in increasing order, so the lowest-index error
	// matches what serial loading would have hit first.
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", collectors[i], err)
		}
	}
	return ribs, nil
}

// overBudget reports whether the source's skip total exceeds the budget.
// A negative budget means unlimited.
func overBudget(src *ingest.Source, budget int) bool {
	return budget >= 0 && src.Skipped() > uint64(budget)
}

func budgetNote(src *ingest.Source, budget int) string {
	return fmt.Sprintf("%d skips exceed budget %d", src.Skipped(), budget)
}

// HealthReport summarizes the ingest accounting of a lenient build. A
// strict build returns a zero (clean) report.
func (p *Pipeline) HealthReport() ingest.Report {
	if p.Health == nil {
		return ingest.Report{}
	}
	return p.Health.Report()
}

// markIncidents identifies the AFRINIC-incident prefixes the way the
// paper did: hijack-labeled AFRINIC prefixes of anomalous size (/14 or
// larger) clustered on shared listing days.
func (p *Pipeline) markIncidents() {
	for _, l := range p.Listings {
		if l.Has(sbl.Hijacked) && l.Registry == rirstats.Afrinic && l.Prefix.Bits() <= 14 {
			l.Incident = true
		}
	}
}

// Window returns the analysis window.
func (p *Pipeline) Window() timex.Range { return p.ds.Window }

// Dataset returns the underlying dataset.
func (p *Pipeline) Dataset() Dataset { return p.ds }

// NonIncident returns the listings excluding the AFRINIC incidents.
func (p *Pipeline) NonIncident() []*Listing {
	out := make([]*Listing, 0, len(p.Listings))
	for _, l := range p.Listings {
		if !l.Incident {
			out = append(out, l)
		}
	}
	return out
}

// originAtListing returns the plurality BGP origin of the prefix on its
// listing day.
func (p *Pipeline) originAtListing(l *Listing) (bgp.ASN, bool) {
	return p.Index.OriginAt(l.Prefix, l.Added)
}

// addrSpace sums the union address space of the given listings.
func addrSpace(ls []*Listing) uint64 {
	var set netx.Set
	for _, l := range ls {
		set.Add(l.Prefix)
	}
	return set.AddrCount()
}
