package analysis

import (
	"math"
	"testing"

	"dropscope/internal/rirstats"
	"dropscope/internal/sbl"
	"dropscope/internal/scenario"
)

var (
	cachedWorld    *scenario.World
	cachedPipeline *Pipeline
)

func pipeline(t *testing.T) (*scenario.World, *Pipeline) {
	t.Helper()
	if cachedPipeline == nil {
		w, err := scenario.Generate(scenario.DefaultParams())
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		p, err := New(Dataset{
			Window: w.Params.Window,
			DROP:   w.DROP, SBL: w.SBL, IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR,
			MRT: w.MRT,
		})
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		cachedWorld, cachedPipeline = w, p
	}
	return cachedWorld, cachedPipeline
}

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f ± %.3f", name, got, want, tol)
	}
}

func TestPipelineRejectsIncompleteDataset(t *testing.T) {
	if _, err := New(Dataset{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestFig1(t *testing.T) {
	_, p := pipeline(t)
	f := p.Fig1Classification()
	if f.TotalPrefixes != 712 {
		t.Errorf("total = %d", f.TotalPrefixes)
	}
	if f.WithRecord != 526 {
		t.Errorf("with record = %d", f.WithRecord)
	}
	counts := make(map[sbl.Category]int)
	for _, r := range f.Rows {
		counts[r.Category] = r.Exclusive + r.Additional
	}
	if counts[sbl.Hijacked] != 179 {
		t.Errorf("HJ = %d, want 179", counts[sbl.Hijacked])
	}
	if counts[sbl.Snowshoe] != 220 {
		t.Errorf("SS = %d, want 220", counts[sbl.Snowshoe])
	}
	if counts[sbl.Unallocated] != 40 {
		t.Errorf("UA = %d, want 40", counts[sbl.Unallocated])
	}
	if counts[sbl.NoRecord] != 186 {
		t.Errorf("NR = %d, want 186", counts[sbl.NoRecord])
	}
	if f.OverlapPrefixes != 15 {
		t.Errorf("overlap prefixes = %d, want 15", f.OverlapPrefixes)
	}
	// The AFRINIC incidents dominate address space (paper: 48.8%).
	near(t, "incident space share", f.IncidentSpaceShare, 0.488, 0.15)
	// Snowshoe: many prefixes, small space share (paper: 8.5%).
	var ssSpace float64
	for _, r := range f.Rows {
		if r.Category == sbl.Snowshoe {
			ssSpace = float64(r.AddrSpace) / float64(f.TotalSpace)
		}
	}
	if ssSpace > 0.15 {
		t.Errorf("snowshoe space share = %.3f, should be small", ssSpace)
	}
}

func TestFig2VisibilityAndFiltering(t *testing.T) {
	w, p := pipeline(t)
	f := p.Fig2Visibility()

	// Paper: 19% withdrawn within 30 days overall; 70.7% for hijacked,
	// 54.8% for unallocated.
	near(t, "withdrawn within 30d", f.WithdrawnWithin30, 0.19, 0.07)
	near(t, "hijack withdrawal", f.WithdrawnByCategory[sbl.Hijacked], 0.707, 0.12)
	near(t, "unalloc withdrawal", f.WithdrawnByCategory[sbl.Unallocated], 0.548, 0.17)

	// Exactly the planted filtering peers must be detected.
	if len(f.FilteringPeers) != len(w.Truth.FilterPeers) {
		t.Fatalf("filtering peers = %v, want %d", f.FilteringPeers, len(w.Truth.FilterPeers))
	}
	want := make(map[string]bool)
	for _, fp := range w.Truth.FilterPeers {
		want[fp.Collector+"/"+fp.PeerAddr.String()] = true
	}
	for _, ref := range f.FilteringPeers {
		if !want[ref.Collector+"/"+ref.Addr.String()] {
			t.Errorf("unexpected filtering peer %v", ref)
		}
	}

	// CDF sanity: visibility at -1 should be high for most prefixes, and
	// the +30 curve must sit below the -1 curve on average.
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if m1, m30 := mean(f.CDF[-1]), mean(f.CDF[30]); m30 >= m1 {
		t.Errorf("mean visibility +30 (%.3f) should be below -1 (%.3f)", m30, m1)
	}
}

func TestDealloc(t *testing.T) {
	_, p := pipeline(t)
	d := p.DeallocAnalysis()
	near(t, "MH space dealloc", d.MalHostingSpaceDealloc, 0.174, 0.12)
	near(t, "removed dealloc", d.RemovedDealloc, 0.088, 0.06)
	if d.RemovedDealloc > 0 && d.RemovedWithinWeekOfDealloc == 0 {
		t.Error("no removed-within-week-of-dealloc cases found")
	}
}

func TestTable1(t *testing.T) {
	_, p := pipeline(t)
	tb := p.Table1RPKIUptake()
	never, removed, present := tb.Overall()

	// Paper overall rates: never 22.3%, removed 42.5%, present 13.8%.
	near(t, "never rate", never.Rate(), 0.223, 0.08)
	near(t, "removed rate", removed.Rate(), 0.425, 0.15)
	if present.Rate() >= removed.Rate() {
		t.Errorf("present rate (%.3f) should be below removed rate (%.3f)",
			present.Rate(), removed.Rate())
	}
	if never.Rate() >= removed.Rate() {
		t.Errorf("base rate (%.3f) should be below removed rate (%.3f)",
			never.Rate(), removed.Rate())
	}

	// Per-RIR populations match Table 1's row counts.
	if n := tb.Removed[rirstats.RIPE].Total; n < 70 || n > 90 {
		t.Errorf("RIPE removed population = %d, want ≈83", n)
	}
	if n := tb.Present[rirstats.ARIN].Total; n < 155 || n > 180 {
		t.Errorf("ARIN present population = %d, want ≈169", n)
	}

	// §4.2: removed-and-signed mostly signed with a different ASN.
	tot := tb.RemovedSignedDifferentASN + tb.RemovedSignedSameASN + tb.RemovedSignedUnrouted
	if tot == 0 {
		t.Fatal("no removed-and-signed listings")
	}
	diffFrac := float64(tb.RemovedSignedDifferentASN) / float64(tot)
	near(t, "removed signed different ASN", diffFrac, 0.823, 0.15)
}

func TestSec5IRR(t *testing.T) {
	_, p := pipeline(t)
	s := p.Sec5IRR()

	near(t, "IRR coverage fraction", s.CoveredFraction, 0.317, 0.08)
	if s.CoveredSpaceFraction < 0.5 {
		t.Errorf("IRR covered space = %.3f, want ≈0.688", s.CoveredSpaceFraction)
	}
	near(t, "created month before", s.CreatedMonthBefore, 0.32, 0.15)
	near(t, "removed month after", s.RemovedMonthAfter, 0.43, 0.20)

	if s.NamedHijacks != 130 {
		t.Errorf("named hijacks = %d, want 130", s.NamedHijacks)
	}
	if s.WithHijackerASNObject != 57 {
		t.Errorf("hijacker-ASN objects = %d, want 57", s.WithHijackerASNObject)
	}
	if s.WithoutOrDifferent != 73 {
		t.Errorf("without/different = %d, want 73", s.WithoutOrDifferent)
	}
	if s.DistinctHijackerASNs != 13 {
		t.Errorf("distinct hijacker ASNs = %d, want 13", s.DistinctHijackerASNs)
	}
	if s.TopOrgsCover != 49 {
		t.Errorf("top-3 orgs cover = %d, want 49", s.TopOrgsCover)
	}
	if s.CommonTransit != 50509 {
		t.Errorf("common transit = %v, want AS50509", s.CommonTransit)
	}
	if s.CommonTransitPrefixes != 15 {
		t.Errorf("common transit prefixes = %d, want 15", s.CommonTransitPrefixes)
	}
	if s.PreexistingIRREntries != 5 {
		t.Errorf("pre-existing IRR entries = %d, want 5", s.PreexistingIRREntries)
	}
	if s.LateCreations != 2 {
		t.Errorf("late creations = %d, want 2", s.LateCreations)
	}
	if s.UnallocatedWithObject != 1 {
		t.Errorf("unallocated with object = %d, want 1", s.UnallocatedWithObject)
	}

	// Figure 3: announcements follow object creation within a week.
	within7 := 0
	for _, d := range s.DaysToBGP {
		if d >= 0 && d <= 7 {
			within7++
		}
	}
	if frac := float64(within7) / float64(len(s.DaysToBGP)); frac < 0.9 {
		t.Errorf("BGP-within-7-days fraction = %.3f", frac)
	}
}

func TestFig4CaseStudy(t *testing.T) {
	w, p := pipeline(t)
	f := p.Fig4RPKIValidHijacks()

	if f.HijackedListings != 179-45 {
		t.Errorf("non-incident hijacked = %d, want 134", f.HijackedListings)
	}
	if len(f.PreSigned) != 3 {
		t.Fatalf("pre-signed hijacks = %d, want 3", len(f.PreSigned))
	}
	var attackerControlled, rpkiValid int
	for _, h := range f.PreSigned {
		if h.AttackerControlledROA {
			attackerControlled++
		}
		if h.RPKIValidHijack {
			rpkiValid++
		}
	}
	if attackerControlled != 2 {
		t.Errorf("attacker-controlled ROAs = %d, want 2", attackerControlled)
	}
	if rpkiValid != 1 {
		t.Errorf("RPKI-valid hijacks = %d, want 1", rpkiValid)
	}

	cs := w.Truth.CaseStudy
	if f.CasePrefix != cs.Prefix {
		t.Errorf("case prefix = %v, want %v", f.CasePrefix, cs.Prefix)
	}
	if f.CaseOrigin != cs.OwnerAS || f.CaseTransit != cs.HijackVia {
		t.Errorf("case actors = %v via %v", f.CaseOrigin, f.CaseTransit)
	}
	if f.SiblingCount != len(cs.Siblings) {
		t.Errorf("siblings = %d, want %d", f.SiblingCount, len(cs.Siblings))
	}
	if f.SiblingsListed != 3 {
		t.Errorf("siblings listed = %d, want 3", f.SiblingsListed)
	}
}

func TestFig5ROAStatus(t *testing.T) {
	_, p := pipeline(t)
	f := p.Fig5ROAStatus()
	if len(f.Samples) < 30 {
		t.Fatalf("samples = %d", len(f.Samples))
	}
	first, last := f.Samples[0], f.Samples[len(f.Samples)-1]

	// Signed space grows substantially (paper: 20 -> 49.1 /8).
	growth := float64(last.ROASpace) / float64(first.ROASpace)
	if growth < 1.6 || growth > 4.0 {
		t.Errorf("ROA space growth = %.2fx, want ≈2.4x", growth)
	}
	// Percent routed declines (paper: 97.1% -> 90.5%).
	if first.PercentRouted() < 0.90 {
		t.Errorf("initial %%routed = %.3f, want ≈0.97", first.PercentRouted())
	}
	if last.PercentRouted() >= first.PercentRouted() {
		t.Errorf("%%routed should decline: %.3f -> %.3f", first.PercentRouted(), last.PercentRouted())
	}
	near(t, "final %routed", last.PercentRouted(), 0.905, 0.05)

	// ARIN holds the bulk of allocated-unrouted-unsigned (paper: 60.8%).
	var total uint64
	for _, v := range f.UnroutedNoROAByRIR {
		total += v
	}
	if total == 0 {
		t.Fatal("no allocated-unrouted-unsigned space")
	}
	arinShare := float64(f.UnroutedNoROAByRIR[rirstats.ARIN]) / float64(total)
	near(t, "ARIN unrouted-unsigned share", arinShare, 0.608, 0.15)

	// The top signed-unrouted holding is the Amazon stand-in (AS16509).
	if len(f.TopSignedUnroutedHoldings) == 0 || f.TopSignedUnroutedHoldings[0].ASN != 16509 {
		t.Errorf("top holdings = %+v", f.TopSignedUnroutedHoldings)
	}
}

func TestFig6Unallocated(t *testing.T) {
	w, p := pipeline(t)
	f := p.Fig6UnallocatedTimeline()
	if len(f.Events) != 40 {
		t.Errorf("unallocated events = %d, want 40", len(f.Events))
	}
	if f.ByRIR[rirstats.LACNIC] != 19 || f.ByRIR[rirstats.Afrinic] != 12 {
		t.Errorf("clusters = %+v, want LACNIC 19, AFRINIC 12", f.ByRIR)
	}
	if !f.HasAPNICAS0 || f.APNICAS0Day != w.Params.APNICAS0Day {
		t.Errorf("APNIC AS0 day = %v (%v)", f.APNICAS0Day, f.HasAPNICAS0)
	}
	if !f.HasLACNICAS0 || f.LACNICAS0Day != w.Params.LACNICAS0Day {
		t.Errorf("LACNIC AS0 day = %v (%v)", f.LACNICAS0Day, f.HasLACNICAS0)
	}
	// Paper: ≈30 routed prefixes at window end would be filtered by the
	// AS0 TALs.
	if f.FilterableAtEnd < 20 || f.FilterableAtEnd > 40 {
		t.Errorf("filterable at end = %d, want ≈30", f.FilterableAtEnd)
	}
}

func TestFig7FreePools(t *testing.T) {
	_, p := pipeline(t)
	samples := p.Fig7FreePools()
	if len(samples) < 30 {
		t.Fatalf("samples = %d", len(samples))
	}
	first, last := samples[0], samples[len(samples)-1]
	// AFRINIC has the largest pool throughout (paper Fig 7).
	for _, rir := range rirstats.AllRIRs {
		if rir != rirstats.Afrinic && first.Pools[rir] >= first.Pools[rirstats.Afrinic] {
			t.Errorf("%s pool (%d) >= AFRINIC (%d)", rir, first.Pools[rir], first.Pools[rirstats.Afrinic])
		}
	}
	// Pools decline as RIRs allocate.
	for _, rir := range []rirstats.RIR{rirstats.Afrinic, rirstats.LACNIC} {
		if last.Pools[rir] >= first.Pools[rir] {
			t.Errorf("%s pool did not decline: %d -> %d", rir, first.Pools[rir], last.Pools[rir])
		}
	}
}

func TestTable2(t *testing.T) {
	_, p := pipeline(t)
	tb := p.Table2SBLBreakdown()
	if tb.Records != 526 {
		t.Errorf("records = %d, want 526", tb.Records)
	}
	// Appendix A: 90% one keyword, 2.7% two, 7.3% none. Our corpus is
	// cleaner: nearly all one-label, 15 multi-label, none unreviewable.
	if tb.OneCategory+tb.MultiLabel+tb.NeedsReview != tb.Records {
		t.Error("breakdown does not sum")
	}
	if tb.MultiLabel != 15 {
		t.Errorf("multi-label = %d, want 15", tb.MultiLabel)
	}
	if tb.WithASN < 130 {
		t.Errorf("records naming ASNs = %d, want ≥130", tb.WithASN)
	}
}
