package analysis

import (
	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/rpki"
	"dropscope/internal/timex"
)

// Fig5Sample is one point of the Figure-5 time series.
type Fig5Sample struct {
	Day timex.Day
	// ROASpace is the address space covered by production-TAL non-AS0
	// ROAs; RoutedROASpace is the part overlapping routed space.
	ROASpace       uint64
	RoutedROASpace uint64
	// SignedUnrouted is ROASpace that overlaps no routed announcement
	// (the non-AS0 hijackable surface).
	SignedUnrouted uint64
	// AllocatedUnroutedNoROA is allocated space neither routed nor signed.
	AllocatedUnroutedNoROA uint64
}

// PercentRouted returns the share of signed space that is routed.
func (s Fig5Sample) PercentRouted() float64 {
	if s.ROASpace == 0 {
		return 0
	}
	return float64(s.RoutedROASpace) / float64(s.ROASpace)
}

// Fig5 is the ROA routing-status series plus end-of-window breakdowns.
type Fig5 struct {
	Samples []Fig5Sample
	// UnroutedNoROAByRIR breaks the final sample's allocated-unrouted-
	// unsigned space down by registry (the paper: ARIN holds 60.8%).
	UnroutedNoROAByRIR map[rirstats.RIR]uint64
	// TopSignedUnroutedHoldings lists the largest signed-but-unrouted
	// holdings (by signing ASN) at window end — the paper's Amazon /
	// Prudential / Alibaba observation.
	TopSignedUnroutedHoldings []Holding
}

// Holding aggregates signed-unrouted space by the authorized ASN.
type Holding struct {
	ASN   bgp.ASN
	Space uint64
}

// Fig5ROAStatus sweeps the window monthly, classifying signed and
// allocated space by routing status.
func (p *Pipeline) Fig5ROAStatus() Fig5 {
	out := Fig5{UnroutedNoROAByRIR: make(map[rirstats.RIR]uint64)}
	const step = 30

	for d := p.ds.Window.First; d <= p.ds.Window.Last; d += step {
		out.Samples = append(out.Samples, p.fig5Sample(d))
	}
	if last := out.Samples[len(out.Samples)-1].Day; last != p.ds.Window.Last {
		out.Samples = append(out.Samples, p.fig5Sample(p.ds.Window.Last))
	}

	// End-of-window breakdowns.
	end := p.ds.Window.Last
	routed := p.RoutedSpaceAt(end, 1)
	for _, rec := range p.ds.RIR.RecordsAt(end) {
		if rec.Status != rirstats.Allocated && rec.Status != rirstats.Assigned {
			continue
		}
		for _, blk := range rec.Prefixes() {
			if routed.Overlaps(blk) || p.ds.RPKI.SignedAt(blk, end) {
				continue
			}
			out.UnroutedNoROAByRIR[rec.Registry] += blk.NumAddrs()
		}
	}

	holdings := make(map[bgp.ASN]uint64)
	for _, roa := range p.ds.RPKI.LiveAt(end, rpki.DefaultTALs) {
		if roa.ASN == bgp.AS0 || routed.Overlaps(roa.Prefix) {
			continue
		}
		holdings[roa.ASN] += roa.Prefix.NumAddrs()
	}
	for asn, space := range holdings {
		out.TopSignedUnroutedHoldings = append(out.TopSignedUnroutedHoldings, Holding{asn, space})
	}
	sortHoldings(out.TopSignedUnroutedHoldings)
	if len(out.TopSignedUnroutedHoldings) > 5 {
		out.TopSignedUnroutedHoldings = out.TopSignedUnroutedHoldings[:5]
	}
	return out
}

func sortHoldings(hs []Holding) {
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && (hs[j].Space > hs[j-1].Space || (hs[j].Space == hs[j-1].Space && hs[j].ASN < hs[j-1].ASN)); j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
}

func (p *Pipeline) fig5Sample(d timex.Day) Fig5Sample {
	s := Fig5Sample{Day: d}
	routed := p.RoutedSpaceAt(d, 1)

	var signedSet netx.Set
	var signedRouted netx.Set
	for _, roa := range p.ds.RPKI.LiveAt(d, rpki.DefaultTALs) {
		if roa.ASN == bgp.AS0 {
			continue
		}
		signedSet.Add(roa.Prefix)
		if routed.Overlaps(roa.Prefix) {
			signedRouted.Add(roa.Prefix)
		}
	}
	s.ROASpace = signedSet.AddrCount()
	s.RoutedROASpace = signedRouted.AddrCount()
	s.SignedUnrouted = s.ROASpace - s.RoutedROASpace

	for _, rec := range p.ds.RIR.RecordsAt(d) {
		if rec.Status != rirstats.Allocated && rec.Status != rirstats.Assigned {
			continue
		}
		for _, blk := range rec.Prefixes() {
			if routed.Overlaps(blk) || p.ds.RPKI.SignedAt(blk, d) {
				continue
			}
			s.AllocatedUnroutedNoROA += blk.NumAddrs()
		}
	}
	return s
}
