package analysis

import (
	"reflect"
	"testing"

	"dropscope/internal/mrt"
	"dropscope/internal/scenario"
)

// smallDataset generates a reduced world (large Scale divisor = small
// background population) so the parallel/serial comparisons stay fast.
func smallDataset(t *testing.T) Dataset {
	t.Helper()
	cfg := scenario.DefaultParams()
	cfg.Scale = 512
	w, err := scenario.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return Dataset{
		Window: w.Params.Window,
		DROP:   w.DROP, SBL: w.SBL, IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR,
		MRT: w.MRT,
	}
}

// TestParallelNewMatchesSerial builds the pipeline both ways over the
// same archives and checks the reassembled index and a spread of
// experiment outputs are identical — the guarantee that lets New default
// to the concurrent loader.
func TestParallelNewMatchesSerial(t *testing.T) {
	ds := smallDataset(t)
	serial, err := NewSerial(ds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.Index.Peers(), parallel.Index.Peers()) {
		t.Fatal("peer registration order diverged between serial and parallel load")
	}
	if s, p := serial.Index.NumPrefixes(), parallel.Index.NumPrefixes(); s != p {
		t.Fatalf("prefix counts diverged: %d != %d", s, p)
	}
	if !reflect.DeepEqual(serial.Listings, parallel.Listings) {
		t.Fatal("listings diverged")
	}

	checks := []struct {
		name string
		run  func(p *Pipeline) any
	}{
		{"Fig1", func(p *Pipeline) any { return p.Fig1Classification() }},
		{"Fig2", func(p *Pipeline) any { return p.Fig2Visibility() }},
		{"Table1", func(p *Pipeline) any { return p.Table1RPKIUptake() }},
		{"Fig4", func(p *Pipeline) any { return p.Fig4RPKIValidHijacks() }},
		{"Fig6", func(p *Pipeline) any { return p.Fig6UnallocatedTimeline() }},
		{"Hijackers", func(p *Pipeline) any { return p.SerialHijackers(3, 0.5, 365) }},
		{"MOAS", func(p *Pipeline) any { return p.MOASSweep() }},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.run(serial), c.run(parallel)) {
			t.Errorf("%s diverged between serial and parallel pipelines", c.name)
		}
	}
}

// TestParallelNewWorkerSweep checks every worker bound produces the same
// index, including bounds above the collector count.
func TestParallelNewWorkerSweep(t *testing.T) {
	ds := smallDataset(t)
	ref, err := NewSerial(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 64} {
		p, err := NewWithConcurrency(ds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref.Index.Peers(), p.Index.Peers()) {
			t.Errorf("workers=%d: peer order diverged", workers)
		}
		if ref.Index.NumPrefixes() != p.Index.NumPrefixes() {
			t.Errorf("workers=%d: prefix count diverged", workers)
		}
	}
}

// TestParallelLoadErrorMatchesSerial corrupts one collector's stream and
// checks the parallel loader surfaces the same error, wrapped the same
// way, as the serial path.
func TestParallelLoadErrorMatchesSerial(t *testing.T) {
	ds := smallDataset(t)
	// Rebuild the MRT map with one collector's stream truncated so a RIB
	// record precedes its peer index table.
	broken := make(map[string][]mrt.Record, len(ds.MRT))
	corrupted := ""
	for name, recs := range ds.MRT {
		broken[name] = recs
	}
	for name, recs := range broken {
		for i, rec := range recs {
			if _, ok := rec.(*mrt.RIBPrefix); ok && i > 0 {
				broken[name] = recs[i:]
				corrupted = name
				break
			}
		}
		if corrupted != "" {
			break
		}
	}
	if corrupted == "" {
		t.Skip("no RIB record found to corrupt")
	}
	ds.MRT = broken

	_, errSerial := NewSerial(ds)
	_, errParallel := New(ds)
	if errSerial == nil || errParallel == nil {
		t.Fatalf("both paths should fail: serial=%v parallel=%v", errSerial, errParallel)
	}
	if errSerial.Error() != errParallel.Error() {
		t.Errorf("error strings diverged:\nserial   %v\nparallel %v", errSerial, errParallel)
	}
}
