package analysis

import (
	"sort"

	"dropscope/internal/rib"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
)

// Fig2Offsets are the observation offsets relative to the listing day
// used in the left panel of Figure 2.
var Fig2Offsets = []int{-1, 2, 7, 30}

// Fig2 is the routing-visibility analysis of §4.1.
type Fig2 struct {
	// CDF maps each day offset to the sorted per-listing fractions of
	// peers observing the prefix (the left panel's curves).
	CDF map[int][]float64
	// WithdrawnWithin30 is the fraction of listings no longer BGP-observed
	// 30 days after listing (among those observed the day before listing).
	WithdrawnWithin30 float64
	// WithdrawnByCategory breaks the same fraction down by label.
	WithdrawnByCategory map[sbl.Category]float64
	// FilteringPeers are peers whose tables systematically exclude listed
	// prefixes (the right panel's three outliers).
	FilteringPeers []rib.PeerRef
	// PeerCarryFraction maps every peer to the fraction of widely-visible
	// listed prefixes it carried while they were listed.
	PeerCarryFraction map[rib.PeerRef]float64
}

// Fig2Visibility computes DROP's correlation with routing visibility.
// AFRINIC-incident prefixes are excluded, as in the paper.
func (p *Pipeline) Fig2Visibility() Fig2 {
	out := Fig2{
		CDF:                 make(map[int][]float64),
		WithdrawnByCategory: make(map[sbl.Category]float64),
		PeerCarryFraction:   make(map[rib.PeerRef]float64),
	}
	listings := p.NonIncident()

	for _, off := range Fig2Offsets {
		fracs := make([]float64, 0, len(listings))
		for _, l := range listings {
			fracs = append(fracs, p.Index.VisibleFraction(l.Prefix, l.Added+timex.Day(off)))
		}
		sort.Float64s(fracs)
		out.CDF[off] = fracs
	}

	// Withdrawal within 30 days: observed at -1, unobserved at +30.
	catTotal := make(map[sbl.Category]int)
	catWithdrawn := make(map[sbl.Category]int)
	total, withdrawn := 0, 0
	for _, l := range listings {
		if !p.Index.Observed(l.Prefix, l.Added-1) {
			continue
		}
		total++
		gone := !p.Index.Observed(l.Prefix, l.Added+30)
		if gone {
			withdrawn++
		}
		for _, c := range l.Classification.Categories {
			catTotal[c]++
			if gone {
				catWithdrawn[c]++
			}
		}
	}
	if total > 0 {
		out.WithdrawnWithin30 = float64(withdrawn) / float64(total)
	}
	for c, n := range catTotal {
		if n > 0 {
			out.WithdrawnByCategory[c] = float64(catWithdrawn[c]) / float64(n)
		}
	}

	// Filtering-peer detection: for listings that most peers carried
	// while listed, check which peers were missing them.
	type peerStat struct{ seen, eligible int }
	stats := make(map[rib.PeerRef]*peerStat)
	for _, ref := range p.Index.Peers() {
		stats[ref] = &peerStat{}
	}
	for _, l := range listings {
		day := l.Added + 2
		frac := p.Index.VisibleFraction(l.Prefix, day)
		if frac < 0.5 {
			continue // not widely visible; says nothing about filtering
		}
		for _, ref := range p.Index.Peers() {
			st := stats[ref]
			st.eligible++
			if p.Index.PeerObserved(ref, l.Prefix, day) {
				st.seen++
			}
		}
	}
	for ref, st := range stats {
		if st.eligible == 0 {
			continue
		}
		frac := float64(st.seen) / float64(st.eligible)
		out.PeerCarryFraction[ref] = frac
		if frac < 0.2 {
			out.FilteringPeers = append(out.FilteringPeers, ref)
		}
	}
	sort.Slice(out.FilteringPeers, func(i, j int) bool {
		return out.FilteringPeers[i].String() < out.FilteringPeers[j].String()
	})
	return out
}

// Dealloc is the §4.1 deallocation analysis.
type Dealloc struct {
	// MalHostingSpaceDealloc is the fraction of malicious-hosting space
	// allocated at listing and deallocated by window end.
	MalHostingSpaceDealloc float64
	// RemovedDealloc is the fraction of removed listings deallocated by
	// window end.
	RemovedDealloc float64
	// RemovedWithinWeekOfDealloc is, among deallocated removed listings,
	// the fraction removed from DROP within a week of the deallocation.
	RemovedWithinWeekOfDealloc float64
}

// DeallocAnalysis computes the RIR-deallocation correlations of §4.1.
func (p *Pipeline) DeallocAnalysis() Dealloc {
	var out Dealloc
	end := p.ds.Window.Last

	var mhTotal, mhDealloc uint64
	for _, l := range p.NonIncident() {
		if !l.Has(sbl.MaliciousHosting) {
			continue
		}
		if !p.ds.RIR.AllocatedAt(l.Prefix, l.Added) {
			continue
		}
		mhTotal += l.Prefix.NumAddrs()
		if !p.ds.RIR.AllocatedAt(l.Prefix, end) {
			mhDealloc += l.Prefix.NumAddrs()
		}
	}
	if mhTotal > 0 {
		out.MalHostingSpaceDealloc = float64(mhDealloc) / float64(mhTotal)
	}

	removed, dealloced, withinWeek := 0, 0, 0
	for _, l := range p.NonIncident() {
		if !l.HasRemoved {
			continue
		}
		if !p.ds.RIR.AllocatedAt(l.Prefix, l.Added) {
			continue // unallocated listings have nothing to deallocate
		}
		removed++
		if p.ds.RIR.AllocatedAt(l.Prefix, end) {
			continue
		}
		dealloced++
		if d, ok := p.deallocDay(l, end); ok && l.Removed >= d && l.Removed-d <= 7 {
			withinWeek++
		}
	}
	if removed > 0 {
		out.RemovedDealloc = float64(dealloced) / float64(removed)
	}
	if dealloced > 0 {
		out.RemovedWithinWeekOfDealloc = float64(withinWeek) / float64(dealloced)
	}
	return out
}

// deallocDay scans for the day l's prefix stopped being allocated.
func (p *Pipeline) deallocDay(l *Listing, end timex.Day) (timex.Day, bool) {
	for d := l.Added; d <= end; d++ {
		if !p.ds.RIR.AllocatedAt(l.Prefix, d) {
			return d, true
		}
	}
	return 0, false
}
