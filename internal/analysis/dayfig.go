package analysis

import (
	"dropscope/internal/timex"
)

// DayFigures is the per-day cut of the study the serving layer exposes
// at /v1/figures/{day}: the routed address space, MOAS conflict count,
// DROP listing pressure, and live ROA population on one day. Each field
// is a whole-index sweep, so the underlying queries go through the
// pipeline's memoized query cache — the first request for a day pays
// the sweep, every later request for the same day reuses it.
type DayFigures struct {
	Day timex.Day `json:"day"`
	// RoutedAddrs is the union address space observed by at least one
	// peer, in addresses; RoutedSlash8 expresses it in the paper's /8
	// equivalents.
	RoutedAddrs  uint64  `json:"routed_addrs"`
	RoutedSlash8 float64 `json:"routed_slash8"`
	// MOASConflicts counts prefixes simultaneously originated by more
	// than one AS — the coarse hijack-detector signature.
	MOASConflicts int `json:"moas_conflicts"`
	// DROPListed counts prefixes on the DROP list effective that day;
	// DROPListedAddrs is their summed address space (not unioned — DROP
	// entries do not nest in practice).
	DROPListed      int    `json:"drop_listed"`
	DROPListedAddrs uint64 `json:"drop_listed_addrs"`
	// ROAsLive counts ROAs live under any trust anchor.
	ROAsLive int `json:"roas_live"`
}

// ListedCountAt returns how many DROP listings were effective on day d
// and their summed address space. It scans the diffed listing events —
// O(listings), allocation-free — rather than materializing the day's
// snapshot.
func (p *Pipeline) ListedCountAt(d timex.Day) (n int, addrs uint64) {
	for _, l := range p.Listings {
		if l.Added <= d && (!l.HasRemoved || d < l.Removed) {
			n++
			addrs += l.Prefix.NumAddrs()
		}
	}
	return n, addrs
}

// FigureDay computes the per-day figures for d. The routed-space and
// MOAS sweeps are memoized per day (shared with the experiment
// fan-out); the DROP and ROA counts are linear scans.
func (p *Pipeline) FigureDay(d timex.Day) DayFigures {
	f := DayFigures{Day: d}
	routed := p.RoutedSpaceAt(d, 1)
	f.RoutedAddrs = routed.AddrCount()
	f.RoutedSlash8 = routed.SlashEquivalents(8)
	f.MOASConflicts = len(p.MOASConflictsAt(d))
	f.DROPListed, f.DROPListedAddrs = p.ListedCountAt(d)
	f.ROAsLive = len(p.ds.RPKI.LiveAt(d, nil))
	return f
}
