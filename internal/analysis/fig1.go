package analysis

import (
	"dropscope/internal/netx"
	"dropscope/internal/sbl"
)

// Fig1Row is one category bar of Figure 1.
type Fig1Row struct {
	Category sbl.Category
	// Exclusive counts prefixes carrying only this label; Additional
	// counts prefixes carrying this label alongside others (the stacked
	// segment in the figure).
	Exclusive  int
	Additional int
	// AddrSpace is the union address space of all prefixes with the label.
	AddrSpace uint64
	// IncidentPrefixes / IncidentSpace isolate the AFRINIC-incident share
	// (the hatched part of the HJ bars).
	IncidentPrefixes int
	IncidentSpace    uint64
}

// Fig1 is the DROP classification breakdown of Figure 1.
type Fig1 struct {
	Rows          []Fig1Row
	TotalPrefixes int
	WithRecord    int
	TotalSpace    uint64
	// OverlapPrefixes counts prefixes with more than one label.
	OverlapPrefixes int
	// IncidentSpaceShare is the AFRINIC incidents' share of DROP space.
	IncidentSpaceShare float64
}

// Fig1Classification categorizes every DROP listing via its SBL record
// (Appendix A) and accounts prefixes and address space per category.
func (p *Pipeline) Fig1Classification() Fig1 {
	var out Fig1
	out.TotalPrefixes = len(p.Listings)

	byCat := make(map[sbl.Category][]*Listing)
	var all netx.Set
	var incidentSet netx.Set
	for _, l := range p.Listings {
		all.Add(l.Prefix)
		if l.Incident {
			incidentSet.Add(l.Prefix)
		}
		if !l.Has(sbl.NoRecord) {
			out.WithRecord++
		}
		if len(l.Classification.Categories) > 1 {
			out.OverlapPrefixes++
		}
		for _, c := range l.Classification.Categories {
			byCat[c] = append(byCat[c], l)
		}
	}
	out.TotalSpace = all.AddrCount()
	incidentSpace := incidentSet.AddrCount()
	if out.TotalSpace > 0 {
		out.IncidentSpaceShare = float64(incidentSpace) / float64(out.TotalSpace)
	}

	for _, c := range sbl.Categories() {
		ls := byCat[c]
		row := Fig1Row{Category: c, AddrSpace: addrSpace(ls)}
		for _, l := range ls {
			if len(l.Classification.Categories) == 1 {
				row.Exclusive++
			} else {
				row.Additional++
			}
			if l.Incident {
				row.IncidentPrefixes++
			}
		}
		if c == sbl.Hijacked {
			row.IncidentSpace = incidentSpace
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Table2 summarizes the Appendix-A keyword process over the SBL corpus:
// how many records matched one keyword, several, or none (manual review).
type Table2 struct {
	Records     int
	OneCategory int
	MultiLabel  int
	NeedsReview int
	// WithASN counts records naming at least one malicious ASN.
	WithASN int
}

// Table2SBLBreakdown classifies every listing's SBL record and tallies
// the keyword-match distribution the appendix reports.
func (p *Pipeline) Table2SBLBreakdown() Table2 {
	var out Table2
	for _, l := range p.Listings {
		if l.Has(sbl.NoRecord) {
			continue
		}
		out.Records++
		switch n := len(l.Classification.Categories); {
		case l.Classification.NeedsReview && n == 0:
			out.NeedsReview++
		case n == 1:
			out.OneCategory++
		default:
			out.MultiLabel++
		}
		if len(l.Classification.ASNs) > 0 {
			out.WithASN++
		}
	}
	return out
}
