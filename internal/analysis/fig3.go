package analysis

import (
	"sort"

	"dropscope/internal/bgp"
	"dropscope/internal/irr"
	"dropscope/internal/netx"
	"dropscope/internal/sbl"
)

// Sec5 is the IRR-effectiveness analysis of §5.
type Sec5 struct {
	// CoveredListings counts listings with a route object (exact or more
	// specific) live at some point in the 7 days before listing;
	// CoveredFraction and CoveredSpaceFraction are their share of the
	// DROP population and address space.
	CoveredListings      int
	CoveredFraction      float64
	CoveredSpaceFraction float64
	// CreatedMonthBefore is the fraction of covered listings whose
	// covering object was created within the month before listing;
	// RemovedMonthAfter is the fraction whose object was removed within a
	// month after listing.
	CreatedMonthBefore float64
	RemovedMonthAfter  float64

	// Named-hijack analysis: listings whose SBL record names a hijacking
	// ASN, split by whether a route object carried that ASN.
	NamedHijacks          int
	WithHijackerASNObject int
	WithoutOrDifferent    int
	// DistinctHijackerASNs counts the ASNs appearing in those objects.
	DistinctHijackerASNs int
	// OrgGroups maps ORG-IDs to how many of the hijacker-ASN objects they
	// created; TopOrgsCover is the share of objects from the top 3 orgs.
	OrgGroups    map[string]int
	TopOrgsCover int
	// CommonTransitPrefixes counts prefixes from the largest org whose
	// announcement path shared a common transit AS (AS50509 in the paper),
	// and CommonTransit is that AS.
	CommonTransit         bgp.ASN
	CommonTransitPrefixes int
	// PreexistingIRREntries counts hijacker-object prefixes that also had
	// an older route object from someone else.
	PreexistingIRREntries int
	// UnallocatedWithObject counts route objects registered for prefixes
	// that were unallocated at the time (§5 found 1).
	UnallocatedWithObject int

	// Figure 3: days from route-object creation to first BGP appearance
	// and to DROP listing, for the hijacker-ASN objects. LateCreations
	// counts objects created over a year after announcement began.
	DaysToBGP     []int
	DaysToDROP    []int
	LateCreations int
}

// Sec5IRR computes §5 and the Figure 3 CDF inputs.
func (p *Pipeline) Sec5IRR() Sec5 {
	var out Sec5
	out.OrgGroups = make(map[string]int)
	listings := p.NonIncident()
	// The paper's §5 numbers are over all 712 listings; the AFRINIC
	// incidents count toward coverage (their space dominates), so use the
	// full set for coverage but the non-incident set for hijack analysis.
	all := p.Listings

	var dropSet, coveredSet netx.Set
	createdMonthBefore, removedMonthAfter := 0, 0
	for _, l := range all {
		dropSet.Add(l.Prefix)
		spans := p.ds.IRR.RouteHistory(l.Prefix)
		var covering []irr.RouteSpan
		for _, s := range spans {
			// Live at any point within [Added-7, Added].
			endsBefore := s.HasRemoved && s.Removed < l.Added-7
			startsAfter := s.Created > l.Added
			if !endsBefore && !startsAfter {
				covering = append(covering, s)
			}
		}
		if len(covering) == 0 {
			continue
		}
		out.CoveredListings++
		coveredSet.Add(l.Prefix)
		newest := covering[len(covering)-1]
		if l.Added-newest.Created <= 30 {
			createdMonthBefore++
		}
		removed := false
		for _, s := range covering {
			if s.HasRemoved && s.Removed > l.Added && s.Removed-l.Added <= 30 {
				removed = true
			}
		}
		if removed {
			removedMonthAfter++
		}
	}
	if n := len(all); n > 0 {
		out.CoveredFraction = float64(out.CoveredListings) / float64(n)
	}
	if total := dropSet.AddrCount(); total > 0 {
		out.CoveredSpaceFraction = float64(coveredSet.AddrCount()) / float64(total)
	}
	if out.CoveredListings > 0 {
		out.CreatedMonthBefore = float64(createdMonthBefore) / float64(out.CoveredListings)
		out.RemovedMonthAfter = float64(removedMonthAfter) / float64(out.CoveredListings)
	}

	// Hijacker-ASN route objects.
	hijackerASNs := make(map[bgp.ASN]bool)
	type orgHit struct {
		l   *Listing
		obj irr.RouteSpan
	}
	orgPrefixes := make(map[string][]orgHit)
	for _, l := range listings {
		if !l.Has(sbl.Hijacked) || len(l.Classification.ASNs) == 0 {
			continue
		}
		out.NamedHijacks++
		named := make(map[bgp.ASN]bool, len(l.Classification.ASNs))
		for _, a := range l.Classification.ASNs {
			named[a] = true
		}
		var match *irr.RouteSpan
		spans := p.ds.IRR.RouteHistory(l.Prefix)
		for i := range spans {
			if named[spans[i].Route.Origin] {
				match = &spans[i]
				break
			}
		}
		if match == nil {
			out.WithoutOrDifferent++
			continue
		}
		out.WithHijackerASNObject++
		hijackerASNs[match.Route.Origin] = true
		org := match.Route.OrgID
		out.OrgGroups[org]++
		orgPrefixes[org] = append(orgPrefixes[org], orgHit{l, *match})

		// Pre-existing entries by someone else.
		for _, s := range spans {
			if s.Created < match.Created && s.Route.Origin != match.Route.Origin {
				out.PreexistingIRREntries++
				break
			}
		}

		// Figure 3 deltas.
		if first, ok := p.Index.FirstObserved(l.Prefix); ok {
			delta := int(first - match.Created)
			if delta < -365 {
				out.LateCreations++
			} else {
				out.DaysToBGP = append(out.DaysToBGP, delta)
				out.DaysToDROP = append(out.DaysToDROP, int(l.Added-match.Created))
			}
		}
	}
	out.DistinctHijackerASNs = len(hijackerASNs)

	// Top-3 org coverage and the common-transit check on the largest org.
	type orgCount struct {
		org string
		n   int
	}
	var ocs []orgCount
	for org, n := range out.OrgGroups {
		ocs = append(ocs, orgCount{org, n})
	}
	sort.Slice(ocs, func(i, j int) bool {
		if ocs[i].n != ocs[j].n {
			return ocs[i].n > ocs[j].n
		}
		return ocs[i].org < ocs[j].org
	})
	for i := 0; i < len(ocs) && i < 3; i++ {
		out.TopOrgsCover += ocs[i].n
	}
	// Look for the org whose prefixes share a single adjacent-to-origin
	// transit across ALL its announcements (the paper's AS50509 finding).
	for _, oc := range ocs {
		var ls []*Listing
		for _, h := range orgPrefixes[oc.org] {
			ls = append(ls, h.l)
		}
		transit, n := p.commonTransit(ls)
		if n == len(ls) && n > out.CommonTransitPrefixes {
			out.CommonTransit, out.CommonTransitPrefixes = transit, n
		}
	}

	// Route objects for unallocated prefixes.
	for _, l := range all {
		if !l.UnallocatedAtListing {
			continue
		}
		for _, s := range p.ds.IRR.RouteHistory(l.Prefix) {
			if p.ds.RIR.UnallocatedAt(s.Route.Prefix, s.Created) {
				out.UnallocatedWithObject++
				break
			}
		}
	}

	sort.Ints(out.DaysToBGP)
	sort.Ints(out.DaysToDROP)
	return out
}

// commonTransit finds the AS (other than the origin) present in every
// listing's announcement path, if any, with the count of paths containing
// it.
func (p *Pipeline) commonTransit(ls []*Listing) (bgp.ASN, int) {
	counts := make(map[bgp.ASN]int)
	for _, l := range ls {
		day := l.Added
		if first, ok := p.Index.FirstObserved(l.Prefix); ok {
			day = first + 1
		}
		path, ok := p.Index.PathAt(l.Prefix, day)
		if !ok {
			path, ok = p.Index.PathAt(l.Prefix, l.Added-1)
			if !ok {
				continue
			}
		}
		origin, _ := path.Origin()
		seen := make(map[bgp.ASN]bool)
		for _, seg := range path {
			for _, a := range seg.ASNs {
				if a != origin && !seen[a] {
					seen[a] = true
					counts[a]++
				}
			}
		}
	}
	var best bgp.ASN
	bestN := 0
	for a, n := range counts {
		// Prefer the highest count; ignore ubiquitous tier-1s by requiring
		// the AS to be adjacent to the origin in at least one path.
		if n > bestN && p.adjacentToOrigin(ls, a) {
			best, bestN = a, n
		}
	}
	return best, bestN
}

func (p *Pipeline) adjacentToOrigin(ls []*Listing, a bgp.ASN) bool {
	for _, l := range ls {
		day := l.Added
		if first, ok := p.Index.FirstObserved(l.Prefix); ok {
			day = first + 1
		}
		path, ok := p.Index.PathAt(l.Prefix, day)
		if !ok || len(path) == 0 {
			continue
		}
		last := path[len(path)-1]
		if last.Type == bgp.SegmentSequence && len(last.ASNs) >= 2 && last.ASNs[len(last.ASNs)-2] == a {
			return true
		}
	}
	return false
}

// CDFPoint converts a sorted series into (x, fraction≤x) pairs for
// rendering.
func CDFPoint(sorted []int) []struct {
	X    int
	Frac float64
} {
	out := make([]struct {
		X    int
		Frac float64
	}, len(sorted))
	for i, x := range sorted {
		out[i].X = x
		out[i].Frac = float64(i+1) / float64(len(sorted))
	}
	return out
}
