package analysis

import (
	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/pathend"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
)

// PathEndImpact is the counterfactual for path-end validation (Cohen et
// al.), the §2.3 defense that checks the AS adjacent to the origin: had
// every origin routed at window start signed its then-current neighbors,
// how would the hijack announcements have validated?
type PathEndImpact struct {
	RecordsBuilt int
	// Hijacked listings by path-end outcome of their listing-day path.
	HijacksInvalid  int // caught: neighbor not authorized
	HijacksValid    int // missed: hijacker used an authorized neighbor
	HijacksNotFound int // origin never signed a record (abandoned space)
	HijacksUnrouted int
	// CaseStudyCaught reports whether the RPKI-valid hijack of the case
	// study fails path-end validation (the paper's implicit argument for
	// path security).
	CaseStudyCaught bool
}

// PathEndCounterfactual builds path-end records from the first 30 days of
// the window — each origin authorizes the neighbors it then used — and
// validates every non-incident hijacked listing's announcement path on
// its listing day. It re-derives the case-study prefix by running the
// Figure-4 analysis; callers that already have it (the parallel Results
// scheduler) use PathEndWithCase instead.
func (p *Pipeline) PathEndCounterfactual() PathEndImpact {
	return p.PathEndWithCase(p.Fig4RPKIValidHijacks().CasePrefix)
}

// PathEndWithCase is PathEndCounterfactual with the case-study prefix
// (Fig4.CasePrefix) supplied by the caller, skipping the embedded Fig4
// recomputation. A zero prefix simply never matches, leaving
// CaseStudyCaught false.
func (p *Pipeline) PathEndWithCase(casePrefix netx.Prefix) PathEndImpact {
	var out PathEndImpact
	table := pathend.NewTable()

	// Enrollment: neighbors observed during the first 30 days.
	start := p.ds.Window.First
	enrolled := make(map[bgp.ASN]map[bgp.ASN]bool)
	for _, pfx := range p.Index.Prefixes() {
		for _, d := range []timex.Day{start, start + 15, start + 30} {
			path, ok := p.Index.PathAt(pfx, d)
			if !ok || len(path) == 0 {
				continue
			}
			origin, ok := path.Origin()
			if !ok {
				continue
			}
			last := path[len(path)-1]
			if last.Type != bgp.SegmentSequence || len(last.ASNs) < 2 {
				continue
			}
			neighbor := last.ASNs[len(last.ASNs)-2]
			if enrolled[origin] == nil {
				enrolled[origin] = make(map[bgp.ASN]bool)
			}
			enrolled[origin][neighbor] = true
		}
	}
	for origin, neighbors := range enrolled {
		rec := pathend.Record{Origin: origin}
		for n := range neighbors {
			rec.Neighbors = append(rec.Neighbors, n)
		}
		if err := table.Add(rec); err == nil {
			out.RecordsBuilt++
		}
	}

	// Validation of hijack announcements.
	for _, l := range p.NonIncident() {
		if !l.Has(sbl.Hijacked) {
			continue
		}
		path, ok := p.Index.PathAt(l.Prefix, l.Added)
		if !ok {
			path, ok = p.Index.PathAt(l.Prefix, l.Added-1)
		}
		if !ok {
			out.HijacksUnrouted++
			continue
		}
		switch table.Validate(path) {
		case pathend.Invalid:
			out.HijacksInvalid++
			if l.Prefix == casePrefix {
				out.CaseStudyCaught = true
			}
		case pathend.Valid:
			out.HijacksValid++
		default:
			out.HijacksNotFound++
		}
	}
	return out
}
