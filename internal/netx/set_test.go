package netx

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	var s Set
	p := MustParsePrefix("192.0.2.0/24")
	s.Add(p)
	if !s.Contains(p) {
		t.Error("Contains after Add")
	}
	if s.Contains(MustParsePrefix("192.0.2.0/25")) {
		t.Error("Contains should be exact")
	}
	if !s.CoveredBy(MustParsePrefix("192.0.2.128/25")) {
		t.Error("CoveredBy should match more specifics of members")
	}
	if !s.ContainsAddr(AddrFrom4(192, 0, 2, 99)) {
		t.Error("ContainsAddr inside member")
	}
	if s.ContainsAddr(AddrFrom4(192, 0, 3, 1)) {
		t.Error("ContainsAddr outside member")
	}
	if !s.Remove(p) || s.Contains(p) {
		t.Error("Remove failed")
	}
}

func TestSetAddrCountDisjoint(t *testing.T) {
	var s Set
	s.Add(MustParsePrefix("10.0.0.0/24"))
	s.Add(MustParsePrefix("10.0.1.0/24"))
	if got := s.AddrCount(); got != 512 {
		t.Errorf("AddrCount = %d, want 512", got)
	}
}

func TestSetAddrCountOverlap(t *testing.T) {
	var s Set
	s.Add(MustParsePrefix("10.0.0.0/8"))
	s.Add(MustParsePrefix("10.1.0.0/16"))    // inside the /8
	s.Add(MustParsePrefix("10.1.2.0/24"))    // inside both
	s.Add(MustParsePrefix("192.0.2.0/24"))   // disjoint
	s.Add(MustParsePrefix("192.0.2.128/25")) // inside previous
	want := uint64(1<<24 + 256)
	if got := s.AddrCount(); got != want {
		t.Errorf("AddrCount = %d, want %d", got, want)
	}
}

func TestSetSlashEquivalents(t *testing.T) {
	var s Set
	s.Add(MustParsePrefix("10.0.0.0/8"))
	s.Add(MustParsePrefix("11.0.0.0/9"))
	if got := s.SlashEquivalents(8); got != 1.5 {
		t.Errorf("SlashEquivalents(8) = %v, want 1.5", got)
	}
}

func TestSetUnion(t *testing.T) {
	var a, b Set
	a.Add(MustParsePrefix("10.0.0.0/24"))
	b.Add(MustParsePrefix("10.0.1.0/24"))
	b.Add(MustParsePrefix("10.0.0.0/24"))
	a.Union(&b)
	if a.Len() != 2 || a.AddrCount() != 512 {
		t.Errorf("Union: len=%d count=%d", a.Len(), a.AddrCount())
	}
}

func TestSetPrefixesSorted(t *testing.T) {
	var s Set
	for _, str := range []string{"203.0.113.0/24", "10.0.0.0/8", "172.16.0.0/12"} {
		s.Add(MustParsePrefix(str))
	}
	ps := s.Prefixes()
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Compare(ps[i]) >= 0 {
			t.Fatalf("Prefixes not sorted: %v", ps)
		}
	}
}

// TestSetAddrCountMatchesBitmap verifies union accounting against a
// brute-force per-address bitmap over a confined 16-bit space.
func TestSetAddrCountMatchesBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		var s Set
		seen := make(map[Addr]bool)
		base := AddrFrom4(100, 64, 0, 0)
		for i := 0; i < 30; i++ {
			bits := 18 + rng.Intn(15)
			off := Addr(rng.Uint32() & 0xFFFF) // confine to 100.64.0.0/16
			p := PrefixFrom(base|off, bits)
			s.Add(p)
			for a := p.FirstAddr(); ; a++ {
				seen[a] = true
				if a == p.LastAddr() {
					break
				}
			}
		}
		if got, want := s.AddrCount(), uint64(len(seen)); got != want {
			t.Fatalf("trial %d: AddrCount = %d, want %d", trial, got, want)
		}
	}
}
