package netx

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"192.0.2.1", AddrFrom4(192, 0, 2, 1), true},
		{"10.0.0.0", AddrFrom4(10, 0, 0, 0), true},
		{"256.0.0.0", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
		{"1..2.3", 0, false},
		{"1.2.3.", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"192.0.2.0/24", true},
		{"0.0.0.0/0", true},
		{"10.0.0.0/8", true},
		{"192.0.2.1/32", true},
		{"192.0.2.1/24", false}, // host bits set
		{"192.0.2.0/33", false},
		{"192.0.2.0/-1", false},
		{"192.0.2.0", false},
		{"bogus/24", false},
		{"192.0.2.0/abc", false},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePrefix(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && p.String() != c.in {
			t.Errorf("ParsePrefix(%q).String() = %q", c.in, p.String())
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if !p.Contains(AddrFrom4(192, 0, 2, 0)) || !p.Contains(AddrFrom4(192, 0, 2, 255)) {
		t.Error("prefix should contain its own range endpoints")
	}
	if p.Contains(AddrFrom4(192, 0, 3, 0)) || p.Contains(AddrFrom4(192, 0, 1, 255)) {
		t.Error("prefix should not contain adjacent addresses")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(0) || !all.Contains(0xFFFFFFFF) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixCovers(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"10.0.0.0/8", "10.1.0.0/16", true},
		{"10.0.0.0/8", "10.0.0.0/8", true},
		{"10.1.0.0/16", "10.0.0.0/8", false},
		{"10.0.0.0/8", "11.0.0.0/16", false},
		{"0.0.0.0/0", "203.0.113.0/24", true},
		{"192.0.2.0/25", "192.0.2.128/25", false},
	}
	for _, c := range cases {
		p, q := MustParsePrefix(c.p), MustParsePrefix(c.q)
		if got := p.Covers(q); got != c.want {
			t.Errorf("%s.Covers(%s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes do not overlap")
	}
}

func TestPrefixHalvesParent(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	lo, hi := p.Halves()
	if lo.String() != "192.0.2.0/25" || hi.String() != "192.0.2.128/25" {
		t.Errorf("Halves = %v, %v", lo, hi)
	}
	if lo.Parent() != p || hi.Parent() != p {
		t.Error("Parent of halves should be original")
	}
}

func TestPrefixHalvesPanicsOnHost(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic splitting a /32")
		}
	}()
	MustParsePrefix("192.0.2.1/32").Halves()
}

func TestPrefixNumAddrs(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"0.0.0.0/0", 1 << 32},
		{"10.0.0.0/8", 1 << 24},
		{"192.0.2.0/24", 256},
		{"192.0.2.1/32", 1},
	}
	for _, c := range cases {
		if got := MustParsePrefix(c.in).NumAddrs(); got != c.want {
			t.Errorf("%s NumAddrs = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPrefixFirstLastAddr(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if p.FirstAddr().String() != "192.0.2.0" || p.LastAddr().String() != "192.0.2.255" {
		t.Errorf("range = %v..%v", p.FirstAddr(), p.LastAddr())
	}
}

func TestPrefixCompareAndSort(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("192.0.2.0/25"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("192.0.2.0/24"),
		MustParsePrefix("10.0.0.0/16"),
	}
	SortPrefixes(ps)
	want := []string{"10.0.0.0/8", "10.0.0.0/16", "192.0.2.0/24", "192.0.2.0/25"}
	for i, w := range want {
		if ps[i].String() != w {
			t.Fatalf("sorted[%d] = %s, want %s", i, ps[i], w)
		}
	}
	if ps[0].Compare(ps[0]) != 0 {
		t.Error("Compare with self should be 0")
	}
}

func TestSlashEquivalents(t *testing.T) {
	if got := SlashEquivalents(1<<24, 8); got != 1.0 {
		t.Errorf("one /8 = %v", got)
	}
	if got := SlashEquivalents(3<<23, 8); got != 1.5 {
		t.Errorf("1.5 /8 = %v", got)
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		bits := rng.Intn(33)
		p := PrefixFrom(Addr(rng.Uint32()), bits)
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip %v failed: %v %v", p, back, err)
		}
	}
}

func TestCoversIsPartialOrder(t *testing.T) {
	// Property: Covers is reflexive and antisymmetric (on distinct prefixes,
	// mutual covering is impossible).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
		q := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
		if !p.Covers(p) {
			t.Fatalf("%v should cover itself", p)
		}
		if p != q && p.Covers(q) && q.Covers(p) {
			t.Fatalf("distinct %v and %v mutually cover", p, q)
		}
	}
}

func TestTextMarshaling(t *testing.T) {
	type doc struct {
		Addr   Addr           `json:"addr"`
		Prefix Prefix         `json:"prefix"`
		ByPfx  map[Prefix]int `json:"by_prefix"`
	}
	in := doc{
		Addr:   AddrFrom4(192, 0, 2, 1),
		Prefix: MustParsePrefix("132.255.0.0/22"),
		ByPfx:  map[Prefix]int{MustParsePrefix("10.0.0.0/8"): 7},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"132.255.0.0/22"`) || !strings.Contains(string(raw), `"10.0.0.0/8"`) {
		t.Errorf("marshal = %s", raw)
	}
	var out doc
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Addr != in.Addr || out.Prefix != in.Prefix || out.ByPfx[MustParsePrefix("10.0.0.0/8")] != 7 {
		t.Errorf("round trip: %+v", out)
	}
	if err := json.Unmarshal([]byte(`{"prefix":"garbage"}`), &out); err == nil {
		t.Error("bad prefix should fail to unmarshal")
	}
}
