// Package netx provides IPv4 prefix arithmetic for routing analysis:
// a compact Prefix value type, parsing and formatting, containment tests,
// a Patricia trie keyed by prefix, and prefix sets that account address
// space in /8 equivalents the way the paper reports it.
package netx

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Addr is an IPv4 address held as a big-endian 32-bit integer.
type Addr uint32

// AddrFrom4 assembles an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String renders a in dotted-quad form.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	// Hand-rolled to avoid fmt allocation in hot paths.
	var b [15]byte
	s := strconv.AppendUint(b[:0], uint64(o1), 10)
	s = append(s, '.')
	s = strconv.AppendUint(s, uint64(o2), 10)
	s = append(s, '.')
	s = strconv.AppendUint(s, uint64(o3), 10)
	s = append(s, '.')
	s = strconv.AppendUint(s, uint64(o4), 10)
	return string(s)
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var a uint32
	part := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return 0, fmt.Errorf("netx: octet out of range in %q", s)
			}
		case c == '.':
			if val < 0 || part == 3 {
				return 0, fmt.Errorf("netx: malformed address %q", s)
			}
			a = a<<8 | uint32(val)
			val = -1
			part++
		default:
			return 0, fmt.Errorf("netx: invalid character %q in address %q", c, s)
		}
	}
	if part != 3 || val < 0 {
		return 0, fmt.Errorf("netx: malformed address %q", s)
	}
	a = a<<8 | uint32(val)
	return Addr(a), nil
}

// Prefix is an IPv4 CIDR prefix. The zero value is 0.0.0.0/0.
// Prefix is comparable and suitable as a map key.
type Prefix struct {
	addr Addr // masked network address
	bits uint8
}

// ErrBadPrefix reports a malformed prefix string or invalid prefix length.
var ErrBadPrefix = errors.New("netx: invalid prefix")

// PrefixFrom returns the prefix addr/bits with host bits zeroed.
// It panics if bits > 32 — callers construct prefixes from validated input.
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic("netx: prefix length out of range")
	}
	return Prefix{addr & maskOf(bits), uint8(bits)}
}

func maskOf(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// ParsePrefix parses a CIDR string such as "192.0.2.0/24".
// Host bits below the mask must be zero (as in routing data).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q missing '/'", ErrBadPrefix, s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %v", ErrBadPrefix, err)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: bad length in %q", ErrBadPrefix, s)
	}
	if addr&^maskOf(bits) != 0 {
		return Prefix{}, fmt.Errorf("%w: %q has host bits set", ErrBadPrefix, s)
	}
	return Prefix{addr, uint8(bits)}, nil
}

// MustParsePrefix is ParsePrefix for constants in tests and examples;
// it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the network address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length of p.
func (p Prefix) Bits() int { return int(p.bits) }

// String renders p in CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Contains reports whether address a falls within p.
func (p Prefix) Contains(a Addr) bool {
	return a&maskOf(int(p.bits)) == p.addr
}

// Covers reports whether p covers q: q is equal to or more specific than p
// and lies within p's address range.
func (p Prefix) Covers(q Prefix) bool {
	return q.bits >= p.bits && q.addr&maskOf(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any addresses.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Covers(q) || q.Covers(p)
}

// NumAddrs returns the number of addresses covered by p.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - uint(p.bits))
}

// FirstAddr returns the lowest address in p (the network address).
func (p Prefix) FirstAddr() Addr { return p.addr }

// LastAddr returns the highest address in p.
func (p Prefix) LastAddr() Addr {
	return p.addr | ^maskOf(int(p.bits))
}

// Halves splits p into its two more-specific halves.
// It panics on a /32, which cannot be split.
func (p Prefix) Halves() (lo, hi Prefix) {
	if p.bits == 32 {
		panic("netx: cannot split a /32")
	}
	nb := int(p.bits) + 1
	lo = Prefix{p.addr, uint8(nb)}
	hi = Prefix{p.addr | Addr(1)<<(32-uint(nb)), uint8(nb)}
	return lo, hi
}

// Parent returns the prefix one bit shorter that covers p.
// It panics on a /0.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		panic("netx: /0 has no parent")
	}
	nb := int(p.bits) - 1
	return Prefix{p.addr & maskOf(nb), uint8(nb)}
}

// Compare orders prefixes by address then by length (shorter first).
// It returns -1, 0, or 1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.addr < q.addr:
		return -1
	case p.addr > q.addr:
		return 1
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

// SortPrefixes sorts prefixes in place by address then length.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}

// SearchPrefixes binary-searches ps — which must be sorted as by
// SortPrefixes — for p. It returns the index at which p is (or would be
// inserted) and whether p is present. The search is hand-rolled rather
// than closure-based so callers on allocation-free query paths stay at
// zero allocations.
func SearchPrefixes(ps []Prefix, p Prefix) (int, bool) {
	i, j := 0, len(ps)
	for i < j {
		m := int(uint(i+j) >> 1)
		if ps[m].Compare(p) < 0 {
			i = m + 1
		} else {
			j = m
		}
	}
	return i, i < len(ps) && ps[i] == p
}

// SlashEquivalents expresses n addresses as the equivalent number of
// prefixes of the given length. The paper reports address space as
// "/8 equivalents": SlashEquivalents(n, 8).
func SlashEquivalents(n uint64, bits int) float64 {
	if bits < 0 || bits > 32 {
		panic("netx: prefix length out of range")
	}
	return float64(n) / float64(uint64(1)<<(32-uint(bits)))
}

// MarshalText implements encoding.TextMarshaler.
func (a Addr) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Addr) UnmarshalText(b []byte) error {
	parsed, err := ParseAddr(string(b))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler, so Prefix works as a
// JSON value and map key.
func (p Prefix) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Prefix) UnmarshalText(b []byte) error {
	parsed, err := ParsePrefix(string(b))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}
