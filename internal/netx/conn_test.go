package netx

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestDeadlinePlumbing(t *testing.T) {
	// A bytes.Buffer has no deadlines: the helpers report false.
	var buf bytes.Buffer
	if SetReadDeadline(&buf, time.Now()) {
		t.Error("read deadline on bytes.Buffer should report false")
	}
	if SetWriteDeadline(&buf, time.Now()) {
		t.Error("write deadline on bytes.Buffer should report false")
	}

	// A net.Pipe end supports both, and an applied read deadline in the
	// past makes the blocked read fail instead of hanging.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if !SetReadDeadline(a, time.Now().Add(-time.Second)) {
		t.Fatal("read deadline on net.Conn should report true")
	}
	if !SetWriteDeadline(a, time.Now().Add(time.Hour)) {
		t.Fatal("write deadline on net.Conn should report true")
	}
	var p [1]byte
	if _, err := a.Read(p[:]); err == nil {
		t.Error("read past deadline should fail")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Errorf("read error = %v, want timeout", err)
	}
}
