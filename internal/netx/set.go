package netx

// Set is a set of prefixes with address-space accounting. Overlapping
// members are deduplicated at counting time so that AddrCount reports
// the size of the union, the way the paper accounts DROP address space.
// The zero value is an empty set ready to use.
type Set struct {
	t Trie[struct{}]
}

// Add inserts p into the set.
func (s *Set) Add(p Prefix) { s.t.Insert(p, struct{}{}) }

// Remove deletes p from the set, reporting whether it was present.
func (s *Set) Remove(p Prefix) bool { return s.t.Delete(p) }

// Contains reports whether exactly p is a member.
func (s *Set) Contains(p Prefix) bool {
	_, ok := s.t.Get(p)
	return ok
}

// ContainsAddr reports whether any member covers address a.
func (s *Set) ContainsAddr(a Addr) bool {
	_, _, ok := s.t.LongestMatch(PrefixFrom(a, 32))
	return ok
}

// CoveredBy reports whether p is covered by some member (equal or less
// specific than p).
func (s *Set) CoveredBy(p Prefix) bool {
	_, _, ok := s.t.LongestMatch(p)
	return ok
}

// Len returns the number of member prefixes (not deduplicated).
func (s *Set) Len() int { return s.t.Len() }

// Prefixes returns the members in address order.
func (s *Set) Prefixes() []Prefix {
	out := make([]Prefix, 0, s.t.Len())
	s.t.Walk(func(p Prefix, _ struct{}) bool {
		out = append(out, p)
		return true
	})
	return out
}

// AddrCount returns the number of addresses in the union of the members.
func (s *Set) AddrCount() uint64 {
	var n uint64
	var skip Prefix
	var skipping bool
	s.t.Walk(func(p Prefix, _ struct{}) bool {
		// Walk yields shorter prefixes before their more-specifics at the
		// same address, and address order otherwise; any member covered by
		// the last counted prefix contributes nothing new.
		if skipping && skip.Covers(p) {
			return true
		}
		n += p.NumAddrs()
		skip, skipping = p, true
		return true
	})
	return n
}

// SlashEquivalents returns the union size expressed in prefixes of the
// given length, e.g. SlashEquivalents(8) for the paper's "/8 equivalents".
func (s *Set) SlashEquivalents(bits int) float64 {
	return SlashEquivalents(s.AddrCount(), bits)
}

// Overlaps reports whether any member shares addresses with p (covers
// it or is covered by it).
func (s *Set) Overlaps(p Prefix) bool {
	if s.CoveredBy(p) {
		return true
	}
	found := false
	s.t.CoveredBy(p, func(Prefix, struct{}) bool {
		found = true
		return false
	})
	return found
}

// MembersCoveredBy returns the members equal to or more specific than p,
// in address order.
func (s *Set) MembersCoveredBy(p Prefix) []Prefix {
	var out []Prefix
	s.t.CoveredBy(p, func(q Prefix, _ struct{}) bool {
		out = append(out, q)
		return true
	})
	return out
}

// Union adds every member of other to s.
func (s *Set) Union(other *Set) {
	other.t.Walk(func(p Prefix, _ struct{}) bool {
		s.Add(p)
		return true
	})
}
