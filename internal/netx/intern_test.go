package netx

import "testing"

func TestInterner(t *testing.T) {
	var in Interner
	a := MustParsePrefix("192.0.2.0/24")
	b := MustParsePrefix("10.0.0.0/8")

	if in.Len() != 0 {
		t.Fatalf("zero-value Len = %d", in.Len())
	}
	if _, ok := in.Lookup(a); ok {
		t.Fatal("Lookup hit on empty interner")
	}

	ida := in.Intern(a)
	idb := in.Intern(b)
	if ida != 0 || idb != 1 {
		t.Fatalf("ids not dense first-sight order: %d, %d", ida, idb)
	}
	if got := in.Intern(a); got != ida {
		t.Errorf("re-intern returned %d, want %d", got, ida)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if in.At(ida) != a || in.At(idb) != b {
		t.Error("At does not round-trip")
	}
	if id, ok := in.Lookup(b); !ok || id != idb {
		t.Errorf("Lookup(b) = %d,%v", id, ok)
	}
	// Same address, different mask length = distinct prefixes.
	c := MustParsePrefix("192.0.2.0/25")
	if in.Intern(c) != 2 {
		t.Error("prefix length not part of identity")
	}
}
