package netx

import (
	"math/rand"
	"testing"
)

// TestTrieModelConformance drives the trie and a map side by side through
// random insert/delete/get operations and checks full agreement.
func TestTrieModelConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var tr Trie[int]
	model := make(map[Prefix]int)

	randPfx := func() Prefix {
		// Confine to a /12 so collisions are frequent.
		base := AddrFrom4(100, 64, 0, 0)
		return PrefixFrom(base|Addr(rng.Uint32()&0x000FFFFF), 12+rng.Intn(21))
	}

	for op := 0; op < 20000; op++ {
		p := randPfx()
		switch rng.Intn(3) {
		case 0: // insert
			v := rng.Int()
			tr.Insert(p, v)
			model[p] = v
		case 1: // delete
			_, inModel := model[p]
			if got := tr.Delete(p); got != inModel {
				t.Fatalf("op %d: Delete(%v) = %v, model %v", op, p, got, inModel)
			}
			delete(model, p)
		case 2: // get
			want, inModel := model[p]
			got, ok := tr.Get(p)
			if ok != inModel || (ok && got != want) {
				t.Fatalf("op %d: Get(%v) = %v,%v, model %v,%v", op, p, got, ok, want, inModel)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: Len %d != model %d", op, tr.Len(), len(model))
		}
	}

	// Final sweep: walk returns exactly the model's keys.
	count := 0
	tr.Walk(func(p Prefix, v int) bool {
		if want, ok := model[p]; !ok || want != v {
			t.Fatalf("walk: unexpected entry %v=%v", p, v)
		}
		count++
		return true
	})
	if count != len(model) {
		t.Fatalf("walk visited %d, model has %d", count, len(model))
	}
}

// TestSetUnionCommutative checks that member insertion order does not
// affect address accounting.
func TestSetUnionCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		var ps []Prefix
		for i := 0; i < 40; i++ {
			ps = append(ps, PrefixFrom(Addr(rng.Uint32()), 8+rng.Intn(17)))
		}
		var a, b Set
		for _, p := range ps {
			a.Add(p)
		}
		for i := len(ps) - 1; i >= 0; i-- {
			b.Add(ps[i])
		}
		if a.AddrCount() != b.AddrCount() {
			t.Fatalf("trial %d: order-dependent union: %d vs %d", trial, a.AddrCount(), b.AddrCount())
		}
	}
}

// TestSetOverlapsConsistent cross-checks Overlaps against the definition.
func TestSetOverlapsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		var s Set
		var members []Prefix
		for i := 0; i < 50; i++ {
			p := PrefixFrom(Addr(rng.Uint32()), 6+rng.Intn(20))
			s.Add(p)
			members = append(members, p)
		}
		for i := 0; i < 100; i++ {
			q := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
			want := false
			for _, m := range members {
				if m.Overlaps(q) {
					want = true
					break
				}
			}
			if got := s.Overlaps(q); got != want {
				t.Fatalf("trial %d: Overlaps(%v) = %v, want %v", trial, q, got, want)
			}
		}
	}
}

// TestMembersCoveredBySorted checks ordering and membership.
func TestMembersCoveredBySorted(t *testing.T) {
	var s Set
	for _, str := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8", "10.200.0.0/16"} {
		s.Add(MustParsePrefix(str))
	}
	got := s.MembersCoveredBy(MustParsePrefix("10.0.0.0/8"))
	want := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.200.0.0/16"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
