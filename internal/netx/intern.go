package netx

// Interner assigns dense uint32 handles to prefixes in first-Intern
// order, so data structures that repeat the same prefixes millions of
// times (per-peer RIB spans, most obviously) can store a 4-byte ID
// instead of the prefix value plus map overhead. The zero value is
// ready to use. An Interner is not safe for concurrent mutation;
// lookups against a no-longer-mutated Interner are safe from any
// number of goroutines.
type Interner struct {
	ids      map[Prefix]uint32
	prefixes []Prefix
}

// Intern returns the handle for p, assigning the next dense ID on
// first sight.
func (in *Interner) Intern(p Prefix) uint32 {
	if id, ok := in.ids[p]; ok {
		return id
	}
	if in.ids == nil {
		in.ids = make(map[Prefix]uint32)
	}
	id := uint32(len(in.prefixes))
	in.prefixes = append(in.prefixes, p)
	in.ids[p] = id
	return id
}

// Lookup returns the handle for p without interning it.
func (in *Interner) Lookup(p Prefix) (uint32, bool) {
	id, ok := in.ids[p]
	return id, ok
}

// At returns the prefix for a handle previously returned by Intern.
func (in *Interner) At(id uint32) Prefix { return in.prefixes[id] }

// Len returns the number of distinct interned prefixes. Handles are
// exactly 0..Len()-1.
func (in *Interner) Len() int { return len(in.prefixes) }
