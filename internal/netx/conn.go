// Deadline plumbing for the live-session layer. bgpd and rtr hold
// their transports as io.ReadWriter so tests can drive them over
// net.Pipe or in-memory buffers; these helpers apply read/write
// deadlines when the underlying stream supports them and report
// whether they did, so a stalled peer cannot block a session forever
// while buffer-backed tests keep working unchanged.
package netx

import "time"

// ReadDeadliner is the read-deadline half of net.Conn.
type ReadDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// WriteDeadliner is the write-deadline half of net.Conn.
type WriteDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// SetReadDeadline applies t when rw supports read deadlines. It
// reports whether a deadline was set.
func SetReadDeadline(rw any, t time.Time) bool {
	if d, ok := rw.(ReadDeadliner); ok {
		return d.SetReadDeadline(t) == nil
	}
	return false
}

// SetWriteDeadline applies t when rw supports write deadlines. It
// reports whether a deadline was set.
func SetWriteDeadline(rw any, t time.Time) bool {
	if d, ok := rw.(WriteDeadliner); ok {
		return d.SetWriteDeadline(t) == nil
	}
	return false
}
