package netx_test

import (
	"fmt"

	"dropscope/internal/netx"
)

// ExampleTrie_LongestMatch shows longest-prefix matching, the join
// underlying every archive correlation in the pipeline.
func ExampleTrie_LongestMatch() {
	var t netx.Trie[string]
	t.Insert(netx.MustParsePrefix("10.0.0.0/8"), "aggregate")
	t.Insert(netx.MustParsePrefix("10.1.0.0/16"), "customer")

	pfx, val, _ := t.LongestMatch(netx.MustParsePrefix("10.1.2.0/24"))
	fmt.Println(pfx, val)
	pfx, val, _ = t.LongestMatch(netx.MustParsePrefix("10.9.0.0/16"))
	fmt.Println(pfx, val)
	// Output:
	// 10.1.0.0/16 customer
	// 10.0.0.0/8 aggregate
}

// ExampleSet_SlashEquivalents shows the /8-equivalent accounting used for
// the paper's address-space figures.
func ExampleSet_SlashEquivalents() {
	var s netx.Set
	s.Add(netx.MustParsePrefix("41.0.0.0/8"))
	s.Add(netx.MustParsePrefix("41.0.0.0/16")) // nested: no double count
	s.Add(netx.MustParsePrefix("102.0.0.0/9"))
	fmt.Printf("%.1f /8 equivalents\n", s.SlashEquivalents(8))
	// Output:
	// 1.5 /8 equivalents
}
