package netx

// Trie is a binary (Patricia-style, path-expanded) trie keyed by Prefix.
// Each node corresponds to one bit of the address; values attach to the
// node at the prefix's depth. The zero value is an empty trie ready to use.
//
// Trie supports exact lookup, longest-prefix match, covering-entry and
// covered-entry enumeration — the operations the analysis pipeline needs
// to join blocklist prefixes against RIBs, ROAs, IRR objects, and RIR
// delegations.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Len returns the number of prefixes stored in t.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores val under p, replacing any existing value.
func (t *Trie[V]) Insert(p Prefix, val V) {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for depth := 0; depth < p.Bits(); depth++ {
		b := bitAt(p.Addr(), depth)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = val, true
}

// Delete removes the entry for p, reporting whether it was present.
// Empty interior nodes are left in place; tries in this pipeline are
// built once and queried many times, so compaction is not worth it.
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	for depth := 0; n != nil && depth < p.Bits(); depth++ {
		n = n.child[bitAt(p.Addr(), depth)]
	}
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Get returns the value stored at exactly p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	for depth := 0; n != nil && depth < p.Bits(); depth++ {
		n = n.child[bitAt(p.Addr(), depth)]
	}
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// LongestMatch returns the most specific stored prefix that covers p,
// along with its value. It reports false if no stored prefix covers p.
func (t *Trie[V]) LongestMatch(p Prefix) (Prefix, V, bool) {
	var (
		best    Prefix
		bestVal V
		found   bool
	)
	n := t.root
	for depth := 0; n != nil; depth++ {
		if n.set {
			best = PrefixFrom(p.Addr(), depth)
			bestVal = n.val
			found = true
		}
		if depth == p.Bits() {
			break
		}
		n = n.child[bitAt(p.Addr(), depth)]
	}
	return best, bestVal, found
}

// Covering calls fn for every stored prefix that covers p (equal or less
// specific), from / shortest to longest. fn returning false stops the walk.
func (t *Trie[V]) Covering(p Prefix, fn func(Prefix, V) bool) {
	n := t.root
	for depth := 0; n != nil; depth++ {
		if n.set {
			if !fn(PrefixFrom(p.Addr(), depth), n.val) {
				return
			}
		}
		if depth == p.Bits() {
			return
		}
		n = n.child[bitAt(p.Addr(), depth)]
	}
}

// CoveredBy calls fn for every stored prefix covered by p (equal or more
// specific), in address order. fn returning false stops the walk.
func (t *Trie[V]) CoveredBy(p Prefix, fn func(Prefix, V) bool) {
	n := t.root
	for depth := 0; n != nil && depth < p.Bits(); depth++ {
		n = n.child[bitAt(p.Addr(), depth)]
	}
	if n == nil {
		return
	}
	walk(n, p, fn)
}

// Walk calls fn for every stored prefix in address order.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	if t.root == nil {
		return
	}
	walk(t.root, Prefix{}, fn)
}

func walk[V any](n *trieNode[V], at Prefix, fn func(Prefix, V) bool) bool {
	if n.set && !fn(at, n.val) {
		return false
	}
	if at.Bits() == 32 {
		return true
	}
	lo, hi := at.Halves()
	if n.child[0] != nil && !walk(n.child[0], lo, fn) {
		return false
	}
	if n.child[1] != nil && !walk(n.child[1], hi, fn) {
		return false
	}
	return true
}

// bitAt returns bit number depth of a, counting from the most significant.
func bitAt(a Addr, depth int) int {
	return int(a>>(31-uint(depth))) & 1
}
