package netx

import (
	"math/rand"
	"testing"
)

func TestTrieInsertGet(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 42)
	if v, ok := tr.Get(p); !ok || v != 42 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/9")); ok {
		t.Error("more specific should not be present")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	tr.Insert(p, 7) // replace
	if v, _ := tr.Get(p); v != 7 {
		t.Errorf("replace failed: %v", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d", tr.Len())
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	pfx, v, ok := tr.LongestMatch(MustParsePrefix("203.0.113.7/32"))
	if !ok || v != "default" || pfx.String() != "0.0.0.0/0" {
		t.Fatalf("LongestMatch via default = %v %v %v", pfx, v, ok)
	}
}

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		q, wantPfx, wantVal string
		ok                  bool
	}{
		{"10.1.2.3/32", "10.1.2.0/24", "twentyfour", true},
		{"10.1.3.0/24", "10.1.0.0/16", "sixteen", true},
		{"10.2.0.0/16", "10.0.0.0/8", "eight", true},
		{"10.1.2.0/24", "10.1.2.0/24", "twentyfour", true}, // exact counts
		{"10.16.0.0/12", "10.0.0.0/8", "eight", true},      // shorter query
		{"11.0.0.0/8", "", "", false},
	}
	for _, c := range cases {
		pfx, v, ok := tr.LongestMatch(MustParsePrefix(c.q))
		if ok != c.ok {
			t.Errorf("LongestMatch(%s) ok=%v want %v", c.q, ok, c.ok)
			continue
		}
		if ok && (pfx.String() != c.wantPfx || v != c.wantVal) {
			t.Errorf("LongestMatch(%s) = %v,%q want %v,%q", c.q, pfx, v, c.wantPfx, c.wantVal)
		}
	}
}

func TestTrieDelete(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("192.0.2.0/24")
	tr.Insert(p, 1)
	if !tr.Delete(p) {
		t.Fatal("Delete should report present")
	}
	if tr.Delete(p) {
		t.Fatal("second Delete should report absent")
	}
	if _, ok := tr.Get(p); ok {
		t.Fatal("deleted entry still present")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTrieCovering(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 16)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 24)
	tr.Insert(MustParsePrefix("11.0.0.0/8"), 0)

	var got []int
	tr.Covering(MustParsePrefix("10.1.2.0/24"), func(_ Prefix, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 || got[0] != 8 || got[1] != 16 || got[2] != 24 {
		t.Fatalf("Covering = %v", got)
	}

	// Early stop.
	got = got[:0]
	tr.Covering(MustParsePrefix("10.1.2.0/24"), func(_ Prefix, v int) bool {
		got = append(got, v)
		return false
	})
	if len(got) != 1 {
		t.Fatalf("Covering with early stop = %v", got)
	}
}

func TestTrieCoveredBy(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 16)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 24)
	tr.Insert(MustParsePrefix("10.200.0.0/16"), 200)
	tr.Insert(MustParsePrefix("11.0.0.0/8"), 0)

	var got []int
	tr.CoveredBy(MustParsePrefix("10.0.0.0/8"), func(_ Prefix, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 4 {
		t.Fatalf("CoveredBy = %v", got)
	}
	if got[0] != 8 || got[1] != 16 || got[2] != 24 || got[3] != 200 {
		t.Fatalf("CoveredBy order = %v", got)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[struct{}]
	in := []string{"192.0.2.0/24", "10.0.0.0/8", "10.0.0.0/16", "172.16.0.0/12"}
	for _, s := range in {
		tr.Insert(MustParsePrefix(s), struct{}{})
	}
	var got []string
	tr.Walk(func(p Prefix, _ struct{}) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"10.0.0.0/8", "10.0.0.0/16", "172.16.0.0/12", "192.0.2.0/24"}
	if len(got) != len(want) {
		t.Fatalf("Walk = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order = %v, want %v", got, want)
		}
	}
}

func TestTrieEmptyOperations(t *testing.T) {
	var tr Trie[int]
	if tr.Len() != 0 {
		t.Error("empty trie Len != 0")
	}
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/8")); ok {
		t.Error("Get on empty trie")
	}
	if _, _, ok := tr.LongestMatch(MustParsePrefix("10.0.0.0/8")); ok {
		t.Error("LongestMatch on empty trie")
	}
	if tr.Delete(MustParsePrefix("10.0.0.0/8")) {
		t.Error("Delete on empty trie")
	}
	tr.Walk(func(Prefix, int) bool { t.Error("Walk on empty trie called fn"); return false })
}

// TestTrieMatchesLinearScan cross-checks LongestMatch against a brute-force
// reference over random prefix sets.
func TestTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		var tr Trie[int]
		var all []Prefix
		for i := 0; i < 200; i++ {
			p := PrefixFrom(Addr(rng.Uint32()), 4+rng.Intn(29))
			if _, ok := tr.Get(p); ok {
				continue
			}
			tr.Insert(p, i)
			all = append(all, p)
		}
		for i := 0; i < 200; i++ {
			q := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
			var best Prefix
			found := false
			for _, p := range all {
				if p.Covers(q) && (!found || p.Bits() > best.Bits()) {
					best, found = p, true
				}
			}
			gotPfx, _, gotOK := tr.LongestMatch(q)
			if gotOK != found {
				t.Fatalf("trial %d: LongestMatch(%v) ok=%v want %v", trial, q, gotOK, found)
			}
			if found && gotPfx != best {
				t.Fatalf("trial %d: LongestMatch(%v) = %v want %v", trial, q, gotPfx, best)
			}
		}
	}
}
