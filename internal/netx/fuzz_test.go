package netx

import "testing"

func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"192.0.2.0/24", "0.0.0.0/0", "255.255.255.255/32", "10.0.0.0/8",
		"", "/", "1.2.3.4", "1.2.3.4/", "999.0.0.0/8", "1.2.3.4/33",
		"1.2.3.4/-1", "a.b.c.d/24", "1..2.3/8", "192.0.2.1/24",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		// Any accepted prefix must round-trip exactly.
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip %q -> %v -> %v (%v)", s, p, back, err)
		}
	})
}

func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{"0.0.0.0", "255.255.255.255", "1.2.3.4", "", "256.1.1.1", "1.2.3", "....", "01.02.03.04"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		back, err := ParseAddr(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip %q -> %v -> %v (%v)", s, a, back, err)
		}
	})
}
