package bgpd

import (
	"net"
	"testing"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

func TestCollectorRecordsLiveSession(t *testing.T) {
	day := timex.MustParseDay("2022-03-30")
	col := NewCollector("live-test", Config{
		LocalAS: 6447, RouterID: netx.AddrFrom4(128, 223, 51, 1),
	})
	col.Clock = func() time.Time { return day.Time() }

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- col.Serve(ln) }()

	// Speaker side: establish and send an announce + a withdraw.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Establish(conn, Config{LocalAS: 50509, RouterID: netx.AddrFrom4(203, 0, 113, 66)})
	if err != nil {
		t.Fatal(err)
	}
	pfx := netx.MustParsePrefix("132.255.0.0/22")
	if err := sess.SendUpdate(&bgp.Update{
		Attrs: bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.Sequence(50509, 263692),
			NextHop: netx.AddrFrom4(203, 0, 113, 66), HasNextHop: true},
		NLRI: []netx.Prefix{pfx},
	}); err != nil {
		t.Fatal(err)
	}
	other := netx.MustParsePrefix("198.51.100.0/24")
	if err := sess.SendUpdate(&bgp.Update{Withdrawn: []netx.Prefix{other}}); err != nil {
		t.Fatal(err)
	}

	// Wait until both updates are recorded.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(col.Records()) >= 3 { // peer table + 2 updates
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records = %d", len(col.Records()))
		}
		time.Sleep(10 * time.Millisecond)
	}
	sess.Close()

	ix, err := col.Index(day + 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Observed(pfx, day) {
		t.Error("live announcement not in index")
	}
	if o, ok := ix.OriginAt(pfx, day); !ok || o != 263692 {
		t.Errorf("origin = %v %v", o, ok)
	}
	if len(ix.Peers()) != 1 || ix.Peers()[0].AS != 50509 {
		t.Errorf("peers = %v", ix.Peers())
	}

	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
}

func TestCollectorRejectsWrongAS(t *testing.T) {
	col := NewCollector("strict", Config{
		LocalAS: 6447, RouterID: 1, RemoteAS: 64500,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = col.Serve(ln) }()
	defer col.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := Establish(conn, Config{LocalAS: 99999, RouterID: 2}); err == nil {
		t.Error("speaker with wrong AS should be rejected")
	}
	if got := len(col.Records()); got != 1 { // just the peer table
		t.Errorf("records after rejected session = %d", got)
	}
}
