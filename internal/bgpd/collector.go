package bgpd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/session"
	"dropscope/internal/timex"
)

// Collector accepts inbound BGP sessions and records everything it hears
// as MRT records — a live, miniature RouteViews collector. The recorded
// stream loads into the same rib.Index the archived data feeds, and can
// be persisted with an mrt.Writer.
//
// Alongside the raw record log the collector keeps a live per-peer
// route table with graceful-restart semantics (RFC 4724): when a
// session dies, the peer's routes are retained and marked stale rather
// than wiped; a reconnecting peer refreshes them by re-announcing, and
// an empty UPDATE (the End-of-RIB marker) or the stale timer sweeps
// whatever was not re-announced. A peer flap therefore never empties
// the RIB, and session churn is visible in the ingest Health counters
// instead of the data.
type Collector struct {
	Name   string
	Config Config
	// Clock returns the record timestamp; defaults to time.Now. Tests
	// inject fixed clocks for determinism.
	Clock func() time.Time
	// StaleTime bounds how long a dead peer's routes stay retained
	// before the sweep; zero means 5 minutes. The deadline is
	// evaluated against Timers, so tests control it.
	StaleTime time.Duration
	// Timers supplies the stale-sweep clock; nil uses the real clock.
	Timers session.Clock
	// Health, when non-nil, receives session-level liveness counters:
	// reconnects, stale retentions, stale sweeps.
	Health *ingest.Source

	mu      sync.Mutex
	peers   []mrt.Peer
	peerIdx map[netx.Addr]int
	records []mrt.Record
	tables  map[netx.Addr]*peerTable

	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// peerTable is one peer's live adjacency: the last announced path per
// prefix, with graceful-restart stale marks.
type peerTable struct {
	as     bgp.ASN
	routes map[netx.Prefix]*liveRoute
	down   bool
	// staleDeadline, when set, is the instant the peer's stale routes
	// are swept unless an End-of-RIB marker sweeps them first. The
	// sweep is applied lazily on the next table access.
	staleDeadline time.Time
}

type liveRoute struct {
	attrs bgp.Attrs
	stale bool
}

// LiveRoute is one row of the collector's live table.
type LiveRoute struct {
	Peer   netx.Addr
	PeerAS bgp.ASN
	Prefix netx.Prefix
	Path   bgp.ASPath
	Stale  bool
}

// NewCollector returns a collector speaking with the given local config.
func NewCollector(name string, cfg Config) *Collector {
	return &Collector{
		Name:    name,
		Config:  cfg,
		peerIdx: make(map[netx.Addr]int),
		tables:  make(map[netx.Addr]*peerTable),
	}
}

func (c *Collector) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

func (c *Collector) timers() session.Clock {
	if c.Timers != nil {
		return c.Timers
	}
	return session.Real()
}

func (c *Collector) staleTime() time.Duration {
	if c.StaleTime > 0 {
		return c.StaleTime
	}
	return 5 * time.Minute
}

// Serve accepts BGP sessions on ln until Close.
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			_ = c.handle(conn)
		}()
	}
}

// Close stops the listener and waits for sessions to drain.
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	ln := c.ln
	c.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	c.wg.Wait()
	return err
}

// handle runs one inbound session, recording every update.
func (c *Collector) handle(conn net.Conn) error {
	sess, err := Establish(conn, c.Config)
	if err != nil {
		return err
	}
	defer sess.Close()

	peerAddr := remoteAddr(conn)
	c.registerPeer(peerAddr, sess.PeerAS)
	c.sessionUp(peerAddr, sess.PeerAS)
	defer c.sessionDown(peerAddr)
	for {
		u, err := sess.Recv()
		if err != nil {
			return err
		}
		c.record(peerAddr, sess.PeerAS, u)
		c.apply(peerAddr, sess.PeerAS, u)
	}
}

// DialPeer keeps an outbound session to one peer alive under
// supervision: dial, establish, ingest updates; on failure mark the
// peer's routes stale and redial under the supervisor's backoff. It
// returns when ctx ends (nil), or when the restart budget in scfg is
// exhausted.
func (c *Collector) DialPeer(ctx context.Context, name string, dial func(context.Context) (net.Conn, error), scfg session.Config) error {
	run := func(ctx context.Context) error {
		conn, err := dial(ctx)
		if err != nil {
			return err
		}
		defer conn.Close()
		// Unblock Establish/Recv when the context ends.
		stop := context.AfterFunc(ctx, func() { conn.Close() })
		defer stop()

		sess, err := Establish(conn, c.Config)
		if err != nil {
			return err
		}
		defer sess.Close()

		peerAddr := remoteAddr(conn)
		c.registerPeer(peerAddr, sess.PeerAS)
		c.sessionUp(peerAddr, sess.PeerAS)
		defer c.sessionDown(peerAddr)
		for {
			u, err := sess.Recv()
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return err
			}
			c.record(peerAddr, sess.PeerAS, u)
			c.apply(peerAddr, sess.PeerAS, u)
		}
	}
	err := session.Supervise(ctx, name, run, scfg)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}

func remoteAddr(conn net.Conn) netx.Addr {
	if tcp, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		if v4 := tcp.IP.To4(); v4 != nil {
			return netx.AddrFrom4(v4[0], v4[1], v4[2], v4[3])
		}
	}
	return 0
}

func (c *Collector) registerPeer(addr netx.Addr, as bgp.ASN) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.peerIdx[addr]; ok {
		return
	}
	c.peerIdx[addr] = len(c.peers)
	c.peers = append(c.peers, mrt.Peer{BGPID: addr, Addr: addr, AS: as})
}

// sessionUp prepares (or revives) the peer's live table. Stale routes
// from a previous incarnation are retained for the peer to refresh.
func (c *Collector) sessionUp(addr netx.Addr, as bgp.ASN) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tb, ok := c.tables[addr]
	if !ok {
		tb = &peerTable{routes: make(map[netx.Prefix]*liveRoute)}
		c.tables[addr] = tb
	}
	c.maybeSweepLocked(tb)
	tb.as = as
	if tb.down {
		tb.down = false
		if c.Health != nil {
			c.Health.Reconnect()
		}
	}
}

// sessionDown marks the peer's routes stale and arms the sweep
// deadline — graceful-restart retention instead of a RIB wipe.
func (c *Collector) sessionDown(addr netx.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tb, ok := c.tables[addr]
	if !ok {
		return
	}
	tb.down = true
	retained := uint64(0)
	for _, r := range tb.routes {
		if !r.stale {
			r.stale = true
			retained++
		}
	}
	if c.Health != nil && retained > 0 {
		c.Health.RetainStale(retained)
	}
	if retained > 0 {
		tb.staleDeadline = c.timers().Now().Add(c.staleTime())
	}
}

// maybeSweepLocked applies an expired stale deadline. Sweeps are lazy:
// every table access funnels through here, so once the deadline passes
// no stale route is observable. Callers hold c.mu.
func (c *Collector) maybeSweepLocked(tb *peerTable) {
	if tb.staleDeadline.IsZero() || c.timers().Now().Before(tb.staleDeadline) {
		return
	}
	c.sweepLocked(tb)
}

// sweepLocked removes every stale route of tb and clears the
// deadline. Callers hold c.mu.
func (c *Collector) sweepLocked(tb *peerTable) {
	swept := uint64(0)
	for p, r := range tb.routes {
		if r.stale {
			delete(tb.routes, p)
			swept++
		}
	}
	tb.staleDeadline = time.Time{}
	if c.Health != nil && swept > 0 {
		c.Health.SweepStale(swept)
	}
}

// apply folds one update into the live route table. An empty UPDATE —
// no withdrawals, no NLRI — is the End-of-RIB marker (RFC 4724 §2):
// the peer has finished re-announcing, so surviving stale routes are
// swept immediately.
func (c *Collector) apply(addr netx.Addr, as bgp.ASN, u *bgp.Update) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tb, ok := c.tables[addr]
	if !ok {
		tb = &peerTable{as: as, routes: make(map[netx.Prefix]*liveRoute)}
		c.tables[addr] = tb
	}
	c.maybeSweepLocked(tb)
	if len(u.Withdrawn) == 0 && len(u.NLRI) == 0 {
		c.sweepLocked(tb)
		return
	}
	for _, p := range u.Withdrawn {
		delete(tb.routes, p)
	}
	for _, p := range u.NLRI {
		tb.routes[p] = &liveRoute{attrs: u.Attrs}
	}
}

func (c *Collector) record(addr netx.Addr, as bgp.ASN, u *bgp.Update) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = append(c.records, &mrt.BGP4MPMessage{
		When:      c.now(),
		PeerAS:    as,
		LocalAS:   c.Config.LocalAS,
		PeerAddr:  addr,
		LocalAddr: c.Config.RouterID,
		Update:    u,
	})
}

// LiveRoutes returns the live table — retained stale routes included —
// sorted by (peer, prefix) for deterministic comparison.
func (c *Collector) LiveRoutes() []LiveRoute {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []LiveRoute
	for addr, tb := range c.tables {
		c.maybeSweepLocked(tb)
		for p, r := range tb.routes {
			out = append(out, LiveRoute{
				Peer:   addr,
				PeerAS: tb.as,
				Prefix: p,
				Path:   r.attrs.Path,
				Stale:  r.stale,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Prefix.Compare(out[j].Prefix) < 0
	})
	return out
}

// RIBString renders the live table one route per line — the canonical
// form the chaos soak test compares byte-for-byte between a faulty and
// a fault-free run.
func (c *Collector) RIBString() string {
	var b strings.Builder
	for _, r := range c.LiveRoutes() {
		fmt.Fprintf(&b, "%s AS%d %s path=%s", r.Peer, r.PeerAS, r.Prefix, r.Path)
		if r.Stale {
			b.WriteString(" stale")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Records returns the collector's full MRT stream so far: a peer index
// table followed by every recorded update.
func (c *Collector) Records() []mrt.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]mrt.Record, 0, len(c.records)+1)
	out = append(out, &mrt.PeerIndexTable{
		When:        c.now(),
		CollectorID: c.Config.RouterID,
		ViewName:    c.Name,
		Peers:       append([]mrt.Peer(nil), c.peers...),
	})
	return append(out, c.records...)
}

// Index builds a fresh rib.Index from everything heard so far, closed at
// the given day.
func (c *Collector) Index(end timex.Day) (*rib.Index, error) {
	ix := rib.NewIndex()
	if err := ix.Load(c.Name, c.Records()); err != nil {
		return nil, err
	}
	ix.Close(end)
	return ix, nil
}
