package bgpd

import (
	"net"
	"sync"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
)

// Collector accepts inbound BGP sessions and records everything it hears
// as MRT records — a live, miniature RouteViews collector. The recorded
// stream loads into the same rib.Index the archived data feeds, and can
// be persisted with an mrt.Writer.
type Collector struct {
	Name   string
	Config Config
	// Clock returns the record timestamp; defaults to time.Now. Tests
	// inject fixed clocks for determinism.
	Clock func() time.Time

	mu      sync.Mutex
	peers   []mrt.Peer
	peerIdx map[netx.Addr]int
	records []mrt.Record

	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// NewCollector returns a collector speaking with the given local config.
func NewCollector(name string, cfg Config) *Collector {
	return &Collector{Name: name, Config: cfg, peerIdx: make(map[netx.Addr]int)}
}

func (c *Collector) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// Serve accepts BGP sessions on ln until Close.
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			_ = c.handle(conn)
		}()
	}
}

// Close stops the listener and waits for sessions to drain.
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	ln := c.ln
	c.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	c.wg.Wait()
	return err
}

// handle runs one inbound session, recording every update.
func (c *Collector) handle(conn net.Conn) error {
	sess, err := Establish(conn, c.Config)
	if err != nil {
		return err
	}
	defer sess.Close()

	peerAddr := remoteAddr(conn)
	c.registerPeer(peerAddr, sess.PeerAS)
	for {
		u, err := sess.Recv()
		if err != nil {
			return err
		}
		c.record(peerAddr, sess.PeerAS, u)
	}
}

func remoteAddr(conn net.Conn) netx.Addr {
	if tcp, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		if v4 := tcp.IP.To4(); v4 != nil {
			return netx.AddrFrom4(v4[0], v4[1], v4[2], v4[3])
		}
	}
	return 0
}

func (c *Collector) registerPeer(addr netx.Addr, as bgp.ASN) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.peerIdx[addr]; ok {
		return
	}
	c.peerIdx[addr] = len(c.peers)
	c.peers = append(c.peers, mrt.Peer{BGPID: addr, Addr: addr, AS: as})
}

func (c *Collector) record(addr netx.Addr, as bgp.ASN, u *bgp.Update) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = append(c.records, &mrt.BGP4MPMessage{
		When:      c.now(),
		PeerAS:    as,
		LocalAS:   c.Config.LocalAS,
		PeerAddr:  addr,
		LocalAddr: c.Config.RouterID,
		Update:    u,
	})
}

// Records returns the collector's full MRT stream so far: a peer index
// table followed by every recorded update.
func (c *Collector) Records() []mrt.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]mrt.Record, 0, len(c.records)+1)
	out = append(out, &mrt.PeerIndexTable{
		When:        c.now(),
		CollectorID: c.Config.RouterID,
		ViewName:    c.Name,
		Peers:       append([]mrt.Peer(nil), c.peers...),
	})
	return append(out, c.records...)
}

// Index builds a fresh rib.Index from everything heard so far, closed at
// the given day.
func (c *Collector) Index(end timex.Day) (*rib.Index, error) {
	ix := rib.NewIndex()
	if err := ix.Load(c.Name, c.Records()); err != nil {
		return nil, err
	}
	ix.Close(end)
	return ix, nil
}
