package bgpd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/ingest/faultinject"
	"dropscope/internal/netx"
	"dropscope/internal/session"
)

// TestHoldTimerExpiry pins RFC 4271 §6.5 on a deterministic clock: a
// peer that goes silent for a full hold time is torn down with a Hold
// Timer Expired NOTIFICATION, and the local reader surfaces
// ErrHoldExpired. The peer's fake clock never advances, so it sends no
// keepalives — a silent peer by construction.
func TestHoldTimerExpiry(t *testing.T) {
	fake := session.NewFake(time.Unix(1_700_000_000, 0))
	peerFake := session.NewFake(time.Unix(1_700_000_000, 0))
	sa, sb := establishPair(t,
		Config{LocalAS: 1, RouterID: 1, HoldTime: 30 * time.Second, Clock: fake},
		Config{LocalAS: 2, RouterID: 2, HoldTime: 30 * time.Second, Clock: peerFake},
	)
	defer sb.Close()
	defer sa.Close()

	recvErr := make(chan error, 1)
	go func() {
		_, err := sa.Recv()
		recvErr <- err
	}()

	fake.BlockUntil(2) // keepalive timer + hold watchdog armed
	fake.Advance(30 * time.Second)

	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrHoldExpired) {
			t.Fatalf("Recv after silent hold time: %v, want ErrHoldExpired", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not return after hold timer expiry")
	}

	// The silent peer must see the Hold Timer Expired NOTIFICATION.
	_, err := sb.Recv()
	var notif *bgp.Notification
	if !errors.As(err, &notif) || notif.Code != bgp.NotifHoldTimeExpired {
		t.Fatalf("peer read %v, want Hold Timer Expired notification", err)
	}
}

// TestWriteTimeoutOnStalledPeer covers the write-deadline satellite: a
// peer that never drains its socket cannot block a send forever; the
// write fails with ErrWriteTimeout.
func TestWriteTimeoutOnStalledPeer(t *testing.T) {
	a, b := net.Pipe() // no reader on b: every write to a blocks
	defer a.Close()
	defer b.Close()

	if err := deadlineWrite(a, make([]byte, 64), 50*time.Millisecond); !errors.Is(err, ErrWriteTimeout) {
		t.Fatalf("deadlineWrite on stalled conn: %v, want ErrWriteTimeout", err)
	}

	// Same failure through the Session send path.
	s := &Session{conn: a, writeTimeout: 50 * time.Millisecond}
	u := &bgp.Update{Withdrawn: []netx.Prefix{netx.MustParsePrefix("192.0.2.0/24")}}
	if err := s.SendUpdate(u); !errors.Is(err, ErrWriteTimeout) {
		t.Fatalf("SendUpdate on stalled conn: %v, want ErrWriteTimeout", err)
	}
}

func waitRoutes(t *testing.T, col *Collector, what string, cond func([]LiveRoute) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(col.LiveRoutes()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; live table:\n%s", what, col.RIBString())
}

// TestCollectorGracefulRestartRetention drives the full stale-route
// life cycle: a session flap retains routes as stale instead of wiping
// the RIB, a reconnecting peer refreshes what it re-announces, the
// End-of-RIB marker sweeps the rest, and the stale timer sweeps a peer
// that never comes back.
func TestCollectorGracefulRestartRetention(t *testing.T) {
	fake := session.NewFake(time.Unix(1_700_000_000, 0))
	health := &ingest.Source{Name: "live"}
	col := NewCollector("gr", Config{LocalAS: 6447, RouterID: netx.AddrFrom4(128, 223, 51, 1)})
	col.Timers = fake
	col.StaleTime = 2 * time.Minute
	col.Health = health

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- col.Serve(ln) }()

	p1 := netx.MustParsePrefix("192.0.2.0/24")
	p2 := netx.MustParsePrefix("198.51.100.0/24")
	announce := func(sess *Session, prefixes ...netx.Prefix) {
		t.Helper()
		for _, p := range prefixes {
			err := sess.SendUpdate(&bgp.Update{
				Attrs: bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.Sequence(64500, 263692),
					NextHop: netx.AddrFrom4(203, 0, 113, 66), HasNextHop: true},
				NLRI: []netx.Prefix{p},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	dial := func() *Session {
		t.Helper()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		sess, err := Establish(conn, Config{LocalAS: 64500, RouterID: netx.AddrFrom4(203, 0, 113, 66)})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	sess := dial()
	announce(sess, p1, p2)
	waitRoutes(t, col, "both routes fresh", func(rs []LiveRoute) bool {
		return len(rs) == 2 && !rs[0].Stale && !rs[1].Stale
	})

	// Session flap: the routes must survive, marked stale.
	sess.Close()
	waitRoutes(t, col, "both routes retained stale", func(rs []LiveRoute) bool {
		return len(rs) == 2 && rs[0].Stale && rs[1].Stale
	})

	// Reconnect, refresh p1 only; End-of-RIB sweeps the unrefreshed p2.
	sess2 := dial()
	announce(sess2, p1)
	if err := sess2.SendUpdate(&bgp.Update{}); err != nil { // End-of-RIB
		t.Fatal(err)
	}
	waitRoutes(t, col, "p1 refreshed, p2 swept by End-of-RIB", func(rs []LiveRoute) bool {
		return len(rs) == 1 && rs[0].Prefix == p1 && !rs[0].Stale
	})

	// Final flap with no reconnect: the stale timer sweeps the rest.
	sess2.Close()
	waitRoutes(t, col, "p1 retained stale", func(rs []LiveRoute) bool {
		return len(rs) == 1 && rs[0].Stale
	})
	fake.Advance(col.StaleTime + time.Second)
	if rs := col.LiveRoutes(); len(rs) != 0 {
		t.Fatalf("after stale timer: %d routes still live:\n%s", len(rs), col.RIBString())
	}

	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
	if health.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", health.Reconnects)
	}
	if health.StaleRetained != 3 {
		t.Errorf("StaleRetained = %d, want 3", health.StaleRetained)
	}
	if health.StaleSwept != 2 {
		t.Errorf("StaleSwept = %d, want 2 (one End-of-RIB, one timer)", health.StaleSwept)
	}
}

// announceSpeaker serves BGP sessions for the soak test: every accepted
// session announces the full prefix set, sends the End-of-RIB marker,
// then holds the session open until the peer goes away.
func announceSpeaker(t *testing.T, prefixes []netx.Prefix) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				sess, err := Establish(conn, Config{LocalAS: 64500, RouterID: netx.AddrFrom4(203, 0, 113, 66)})
				if err != nil {
					return
				}
				defer sess.Close()
				for i, p := range prefixes {
					u := &bgp.Update{
						Attrs: bgp.Attrs{Origin: bgp.OriginIGP,
							Path:    bgp.Sequence(64500, bgp.ASN(65000+i)),
							NextHop: netx.AddrFrom4(203, 0, 113, 66), HasNextHop: true},
						NLRI: []netx.Prefix{p},
					}
					if err := sess.SendUpdate(u); err != nil {
						return
					}
				}
				if err := sess.SendUpdate(&bgp.Update{}); err != nil { // End-of-RIB
					return
				}
				for {
					if _, err := sess.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		wg.Wait()
	}
}

// runSoak supervises one collector session against an announceSpeaker,
// optionally through a Chaoser, until the live table converges: for the
// fault-free baseline (ch == nil), until every prefix is fresh; for the
// chaos run, until the fault budget is spent and the table matches
// `want` byte for byte. It returns the converged RIBString.
func runSoak(t *testing.T, prefixes []netx.Prefix, ch *faultinject.Chaoser, want string) string {
	t.Helper()
	addr, stop := announceSpeaker(t, prefixes)
	defer stop()

	health := &ingest.Source{Name: "soak"}
	col := NewCollector("soak", Config{LocalAS: 6447, RouterID: netx.AddrFrom4(128, 223, 51, 1)})
	col.StaleTime = time.Hour // only End-of-RIB sweeps during the soak
	col.Health = health

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if ch != nil {
			return ch.Wrap(conn), nil
		}
		return conn, nil
	}
	dpDone := make(chan error, 1)
	go func() {
		dpDone <- col.DialPeer(ctx, "soak-peer", dial, session.Config{
			Backoff: session.Backoff{Min: time.Millisecond, Max: 5 * time.Millisecond},
		})
	}()

	deadline := time.Now().Add(60 * time.Second)
	var rib string
	for {
		if ch == nil || ch.Remaining() == 0 {
			if ch == nil {
				rs := col.LiveRoutes()
				fresh := len(rs) == len(prefixes)
				for _, r := range rs {
					fresh = fresh && !r.Stale
				}
				if fresh {
					rib = col.RIBString()
					break
				}
			} else if got := col.RIBString(); got == want {
				rib = got
				break
			}
		}
		if time.Now().After(deadline) {
			remaining := 0
			if ch != nil {
				remaining = ch.Remaining()
			}
			t.Fatalf("soak did not converge: %d faults remaining, live table:\n%s",
				remaining, col.RIBString())
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancel()
	if err := <-dpDone; err != nil {
		t.Fatalf("DialPeer: %v", err)
	}
	if ch != nil && health.Reconnects == 0 {
		t.Error("chaos run saw no reconnects")
	}
	return rib
}

// TestChaosSoakConvergence is the acceptance soak: a supervised
// collector session fed through at least 50 seeded connection faults
// (mid-message resets, stalls, partial writes, truncations) must
// converge to a live RIB byte-identical to a fault-free run's.
func TestChaosSoakConvergence(t *testing.T) {
	const nPrefixes = 120
	const nFaults = 50
	prefixes := make([]netx.Prefix, nPrefixes)
	for i := range prefixes {
		prefixes[i] = netx.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
	}

	baseline := runSoak(t, prefixes, nil, "")
	if baseline == "" {
		t.Fatal("empty baseline RIB")
	}

	ch := faultinject.NewChaoser(0xD1205C0E, faultinject.ChaosConfig{}, nFaults)
	got := runSoak(t, prefixes, ch, baseline)
	if got != baseline {
		t.Errorf("chaos RIB diverged from fault-free run\nchaos:\n%s\nbaseline:\n%s", got, baseline)
	}
	if n := ch.Injected(); n != nFaults {
		t.Errorf("injected %d faults, want %d", n, nFaults)
	}
}
