// Package bgpd implements a compact BGP-4 speaker over net.Conn: the
// OPEN/KEEPALIVE session handshake with 4-octet-AS capability (RFC 6793),
// hold-time negotiation, keepalive scheduling, UPDATE exchange, and
// NOTIFICATION-based teardown. It is the live-session counterpart of the
// archived MRT data: a collector built on this package hears the same
// updates a RouteViews collector records.
//
// Sessions are defensive about sick peers: every write carries a
// deadline so a stalled peer cannot block the keepalive loop or an
// UPDATE send forever (ErrWriteTimeout), and a clock-driven hold-timer
// watchdog tears a silent session down with a Hold Timer Expired
// NOTIFICATION (ErrHoldExpired), per RFC 4271 §6.5.
package bgpd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/session"
)

// Config parameterizes one side of a session.
type Config struct {
	LocalAS  bgp.ASN
	RouterID netx.Addr
	// RemoteAS, when non-zero, is enforced against the peer's OPEN.
	RemoteAS bgp.ASN
	// HoldTime proposed in the OPEN; the session uses min(ours, theirs).
	// Zero proposes 90s. RFC 4271 requires 0 or >= 3.
	HoldTime time.Duration
	// WriteTimeout bounds every write to the peer, mirroring the
	// hold-time read deadline; zero derives it from the negotiated
	// hold time. A write that misses it fails with ErrWriteTimeout.
	WriteTimeout time.Duration
	// Clock drives the keepalive and hold-timer loops; nil uses the
	// real clock. Tests inject session.FakeClock for determinism.
	Clock session.Clock
}

// Session is an established BGP session.
type Session struct {
	conn     net.Conn
	mu       sync.Mutex // guards writes to conn
	PeerAS   bgp.ASN
	PeerID   netx.Addr
	HoldTime time.Duration

	clock        session.Clock
	writeTimeout time.Duration

	activity    chan struct{} // pinged on every received message
	holdExpired atomic.Bool
	expireOnce  sync.Once

	closeOnce sync.Once
	closed    chan struct{}
	keepDone  chan struct{}
	watchDone chan struct{}
}

// Errors.
var (
	ErrASMismatch = errors.New("bgpd: peer AS does not match configuration")
	// ErrWriteTimeout marks a write that missed its deadline on a
	// stalled peer.
	ErrWriteTimeout = errors.New("bgpd: write timed out on stalled peer")
	// ErrHoldExpired marks a session torn down because the peer sent
	// nothing for a full hold time.
	ErrHoldExpired = errors.New("bgpd: hold timer expired")
)

// isTimeout reports whether err is a transport timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// deadlineWrite writes b with an optional write deadline.
func deadlineWrite(conn net.Conn, b []byte, timeout time.Duration) error {
	if timeout > 0 {
		netx.SetWriteDeadline(conn, time.Now().Add(timeout))
	}
	_, err := conn.Write(b)
	if err != nil && isTimeout(err) {
		return fmt.Errorf("%w: %v", ErrWriteTimeout, err)
	}
	return err
}

// Establish runs the OPEN handshake on an established transport
// connection. Both sides call Establish; the protocol is symmetric.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	hold := cfg.HoldTime
	if hold == 0 {
		hold = 90 * time.Second
	}
	holdSecs := uint16(hold / time.Second)
	handshakeTimeout := cfg.WriteTimeout
	if handshakeTimeout == 0 {
		handshakeTimeout = hold
	}

	// Send our OPEN.
	open := &bgp.Open{AS: cfg.LocalAS, HoldTime: holdSecs, RouterID: cfg.RouterID}
	if err := deadlineWrite(conn, bgp.EncodeOpen(open), handshakeTimeout); err != nil {
		return nil, fmt.Errorf("bgpd: send open: %w", err)
	}

	// Receive theirs. The handshake reads carry the same deadline as
	// the writes so a peer that stalls mid-OPEN cannot wedge Establish.
	netx.SetReadDeadline(conn, time.Now().Add(handshakeTimeout))
	msg, err := bgp.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("bgpd: read open: %w", err)
	}
	if msg.Type == bgp.TypeNotification {
		n, _ := bgp.DecodeNotification(msg.Body)
		return nil, n
	}
	if msg.Type != bgp.TypeOpen {
		return nil, fmt.Errorf("bgpd: expected OPEN, got type %d", msg.Type)
	}
	peer, err := bgp.DecodeOpen(msg.Body)
	if err != nil {
		return nil, err
	}
	if cfg.RemoteAS != 0 && peer.AS != cfg.RemoteAS {
		_ = deadlineWrite(conn, bgp.EncodeNotification(&bgp.Notification{Code: bgp.NotifOpenError, Subcode: 2}), handshakeTimeout)
		return nil, fmt.Errorf("%w: got %s", ErrASMismatch, peer.AS)
	}
	if peer.HoldTime != 0 && peer.HoldTime < 3 {
		_ = deadlineWrite(conn, bgp.EncodeNotification(&bgp.Notification{Code: bgp.NotifOpenError, Subcode: 6}), handshakeTimeout)
		return nil, fmt.Errorf("bgpd: unacceptable hold time %d", peer.HoldTime)
	}

	// Negotiated hold time: the minimum; zero disables keepalives.
	negotiated := holdSecs
	if peer.HoldTime < negotiated {
		negotiated = peer.HoldTime
	}

	// Confirm with a KEEPALIVE and wait for the peer's.
	if err := deadlineWrite(conn, bgp.EncodeKeepalive(), handshakeTimeout); err != nil {
		return nil, fmt.Errorf("bgpd: send keepalive: %w", err)
	}
	netx.SetReadDeadline(conn, time.Now().Add(handshakeTimeout))
	msg, err = bgp.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("bgpd: read keepalive: %w", err)
	}
	netx.SetReadDeadline(conn, time.Time{})
	if msg.Type == bgp.TypeNotification {
		n, _ := bgp.DecodeNotification(msg.Body)
		return nil, n
	}
	if msg.Type != bgp.TypeKeepalive {
		return nil, fmt.Errorf("bgpd: expected KEEPALIVE, got type %d", msg.Type)
	}

	clock := cfg.Clock
	if clock == nil {
		clock = session.Real()
	}
	s := &Session{
		conn:         conn,
		PeerAS:       peer.AS,
		PeerID:       peer.RouterID,
		HoldTime:     time.Duration(negotiated) * time.Second,
		clock:        clock,
		writeTimeout: cfg.WriteTimeout,
		activity:     make(chan struct{}, 1),
		closed:       make(chan struct{}),
		keepDone:     make(chan struct{}),
		watchDone:    make(chan struct{}),
	}
	if s.writeTimeout == 0 {
		// Mirror the read deadline: a peer that cannot drain a write
		// within the hold time is as dead as one that sends nothing.
		s.writeTimeout = s.HoldTime
	}
	go s.keepaliveLoop()
	go s.holdWatchdog()
	return s, nil
}

// write sends raw bytes under the session write lock and deadline.
func (s *Session) write(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return deadlineWrite(s.conn, b, s.writeTimeout)
}

// keepaliveLoop sends keepalives at one third of the hold time.
func (s *Session) keepaliveLoop() {
	defer close(s.keepDone)
	if s.HoldTime == 0 {
		return
	}
	interval := s.HoldTime / 3
	t := s.clock.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C():
			if err := s.write(bgp.EncodeKeepalive()); err != nil {
				return
			}
			t.Reset(interval)
		}
	}
}

// holdWatchdog tears the session down when the peer stays silent for
// a full hold time (RFC 4271 §6.5): Hold Timer Expired NOTIFICATION,
// then transport close. Recv surfaces the teardown as ErrHoldExpired.
func (s *Session) holdWatchdog() {
	defer close(s.watchDone)
	if s.HoldTime == 0 {
		return
	}
	t := s.clock.NewTimer(s.HoldTime)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-s.activity:
			t.Reset(s.HoldTime)
		case <-t.C():
			s.expireHold()
			return
		}
	}
}

// expireHold performs the hold-timer teardown exactly once.
func (s *Session) expireHold() {
	s.expireOnce.Do(func() {
		s.holdExpired.Store(true)
		_ = s.write(bgp.EncodeNotification(&bgp.Notification{Code: bgp.NotifHoldTimeExpired}))
		_ = s.conn.Close()
	})
}

// SendUpdate transmits one UPDATE.
func (s *Session) SendUpdate(u *bgp.Update) error {
	wire, err := bgp.EncodeUpdate(u)
	if err != nil {
		return err
	}
	return s.write(wire)
}

// Recv blocks until the next UPDATE arrives, transparently consuming
// keepalives. A received NOTIFICATION is returned as an error of type
// *bgp.Notification; transport EOF is io.EOF; a hold-timer teardown is
// ErrHoldExpired.
func (s *Session) Recv() (*bgp.Update, error) {
	for {
		if s.HoldTime > 0 {
			netx.SetReadDeadline(s.conn, time.Now().Add(s.HoldTime))
		}
		msg, err := bgp.ReadMessage(s.conn)
		if err != nil {
			if s.holdExpired.Load() {
				return nil, fmt.Errorf("%w: peer silent for %v", ErrHoldExpired, s.HoldTime)
			}
			if isTimeout(err) {
				// The read deadline is the real-clock twin of the
				// watchdog; whichever fires first wins.
				s.expireHold()
				return nil, fmt.Errorf("%w: peer silent for %v", ErrHoldExpired, s.HoldTime)
			}
			return nil, err
		}
		select { // feed the watchdog
		case s.activity <- struct{}{}:
		default:
		}
		switch msg.Type {
		case bgp.TypeKeepalive:
			continue
		case bgp.TypeUpdate:
			return bgp.DecodeUpdate(msg.Raw)
		case bgp.TypeNotification:
			n, derr := bgp.DecodeNotification(msg.Body)
			if derr != nil {
				return nil, derr
			}
			return nil, n
		default:
			return nil, fmt.Errorf("bgpd: unexpected message type %d", msg.Type)
		}
	}
}

// Close sends a cease NOTIFICATION and tears down the transport.
func (s *Session) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		_ = s.write(bgp.EncodeNotification(&bgp.Notification{Code: bgp.NotifCease}))
		err = s.conn.Close()
		<-s.keepDone
		<-s.watchDone
	})
	return err
}
