// Package bgpd implements a compact BGP-4 speaker over net.Conn: the
// OPEN/KEEPALIVE session handshake with 4-octet-AS capability (RFC 6793),
// hold-time negotiation, keepalive scheduling, UPDATE exchange, and
// NOTIFICATION-based teardown. It is the live-session counterpart of the
// archived MRT data: a collector built on this package hears the same
// updates a RouteViews collector records.
package bgpd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
)

// Config parameterizes one side of a session.
type Config struct {
	LocalAS  bgp.ASN
	RouterID netx.Addr
	// RemoteAS, when non-zero, is enforced against the peer's OPEN.
	RemoteAS bgp.ASN
	// HoldTime proposed in the OPEN; the session uses min(ours, theirs).
	// Zero proposes 90s. RFC 4271 requires 0 or >= 3.
	HoldTime time.Duration
}

// Session is an established BGP session.
type Session struct {
	conn     net.Conn
	mu       sync.Mutex // guards writes to conn
	PeerAS   bgp.ASN
	PeerID   netx.Addr
	HoldTime time.Duration

	closeOnce sync.Once
	closed    chan struct{}
	keepDone  chan struct{}
}

// Errors.
var (
	ErrASMismatch = errors.New("bgpd: peer AS does not match configuration")
)

// Establish runs the OPEN handshake on an established transport
// connection. Both sides call Establish; the protocol is symmetric.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	hold := cfg.HoldTime
	if hold == 0 {
		hold = 90 * time.Second
	}
	holdSecs := uint16(hold / time.Second)

	// Send our OPEN.
	open := &bgp.Open{AS: cfg.LocalAS, HoldTime: holdSecs, RouterID: cfg.RouterID}
	if _, err := conn.Write(bgp.EncodeOpen(open)); err != nil {
		return nil, fmt.Errorf("bgpd: send open: %w", err)
	}

	// Receive theirs.
	msg, err := bgp.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("bgpd: read open: %w", err)
	}
	if msg.Type == bgp.TypeNotification {
		n, _ := bgp.DecodeNotification(msg.Body)
		return nil, n
	}
	if msg.Type != bgp.TypeOpen {
		return nil, fmt.Errorf("bgpd: expected OPEN, got type %d", msg.Type)
	}
	peer, err := bgp.DecodeOpen(msg.Body)
	if err != nil {
		return nil, err
	}
	if cfg.RemoteAS != 0 && peer.AS != cfg.RemoteAS {
		_, _ = conn.Write(bgp.EncodeNotification(&bgp.Notification{Code: bgp.NotifOpenError, Subcode: 2}))
		return nil, fmt.Errorf("%w: got %s", ErrASMismatch, peer.AS)
	}
	if peer.HoldTime != 0 && peer.HoldTime < 3 {
		_, _ = conn.Write(bgp.EncodeNotification(&bgp.Notification{Code: bgp.NotifOpenError, Subcode: 6}))
		return nil, fmt.Errorf("bgpd: unacceptable hold time %d", peer.HoldTime)
	}

	// Negotiated hold time: the minimum; zero disables keepalives.
	negotiated := holdSecs
	if peer.HoldTime < negotiated {
		negotiated = peer.HoldTime
	}

	// Confirm with a KEEPALIVE and wait for the peer's.
	if _, err := conn.Write(bgp.EncodeKeepalive()); err != nil {
		return nil, fmt.Errorf("bgpd: send keepalive: %w", err)
	}
	msg, err = bgp.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("bgpd: read keepalive: %w", err)
	}
	if msg.Type == bgp.TypeNotification {
		n, _ := bgp.DecodeNotification(msg.Body)
		return nil, n
	}
	if msg.Type != bgp.TypeKeepalive {
		return nil, fmt.Errorf("bgpd: expected KEEPALIVE, got type %d", msg.Type)
	}

	s := &Session{
		conn:     conn,
		PeerAS:   peer.AS,
		PeerID:   peer.RouterID,
		HoldTime: time.Duration(negotiated) * time.Second,
		closed:   make(chan struct{}),
		keepDone: make(chan struct{}),
	}
	go s.keepaliveLoop()
	return s, nil
}

// keepaliveLoop sends keepalives at one third of the hold time.
func (s *Session) keepaliveLoop() {
	defer close(s.keepDone)
	if s.HoldTime == 0 {
		return
	}
	t := time.NewTicker(s.HoldTime / 3)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			_, err := s.conn.Write(bgp.EncodeKeepalive())
			s.mu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// SendUpdate transmits one UPDATE.
func (s *Session) SendUpdate(u *bgp.Update) error {
	wire, err := bgp.EncodeUpdate(u)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = s.conn.Write(wire)
	return err
}

// Recv blocks until the next UPDATE arrives, transparently consuming
// keepalives. A received NOTIFICATION is returned as an error of type
// *bgp.Notification; transport EOF is io.EOF.
func (s *Session) Recv() (*bgp.Update, error) {
	for {
		if s.HoldTime > 0 {
			_ = s.conn.SetReadDeadline(time.Now().Add(s.HoldTime))
		}
		msg, err := bgp.ReadMessage(s.conn)
		if err != nil {
			return nil, err
		}
		switch msg.Type {
		case bgp.TypeKeepalive:
			continue
		case bgp.TypeUpdate:
			return bgp.DecodeUpdate(msg.Raw)
		case bgp.TypeNotification:
			n, derr := bgp.DecodeNotification(msg.Body)
			if derr != nil {
				return nil, derr
			}
			return nil, n
		default:
			return nil, fmt.Errorf("bgpd: unexpected message type %d", msg.Type)
		}
	}
}

// Close sends a cease NOTIFICATION and tears down the transport.
func (s *Session) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mu.Lock()
		_, _ = s.conn.Write(bgp.EncodeNotification(&bgp.Notification{Code: bgp.NotifCease}))
		s.mu.Unlock()
		err = s.conn.Close()
		<-s.keepDone
	})
	return err
}
