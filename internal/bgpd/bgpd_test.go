package bgpd

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
)

// establishPair runs both sides of the handshake over a TCP loopback
// connection (net.Pipe has no buffering, which would deadlock the
// symmetric handshake).
func establishPair(t *testing.T, a, b Config) (*Session, *Session) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		s   *Session
		err error
	}
	acceptCh := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			acceptCh <- result{nil, err}
			return
		}
		s, err := Establish(conn, b)
		acceptCh <- result{s, err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Establish(conn, a)
	if err != nil {
		t.Fatalf("dial side: %v", err)
	}
	rb := <-acceptCh
	if rb.err != nil {
		t.Fatalf("accept side: %v", rb.err)
	}
	return sa, rb.s
}

func TestHandshake(t *testing.T) {
	sa, sb := establishPair(t,
		Config{LocalAS: 64500, RouterID: netx.AddrFrom4(10, 0, 0, 1)},
		Config{LocalAS: 4200000001, RouterID: netx.AddrFrom4(10, 0, 0, 2)},
	)
	defer sa.Close()
	defer sb.Close()

	if sa.PeerAS != 4200000001 {
		t.Errorf("dial side peer AS = %v (4-octet capability must carry the full ASN)", sa.PeerAS)
	}
	if sb.PeerAS != 64500 {
		t.Errorf("accept side peer AS = %v", sb.PeerAS)
	}
	if sa.PeerID != netx.AddrFrom4(10, 0, 0, 2) {
		t.Errorf("peer router ID = %v", sa.PeerID)
	}
	if sa.HoldTime != 90*time.Second {
		t.Errorf("negotiated hold = %v", sa.HoldTime)
	}
}

func TestHoldTimeNegotiation(t *testing.T) {
	sa, sb := establishPair(t,
		Config{LocalAS: 1, RouterID: 1, HoldTime: 30 * time.Second},
		Config{LocalAS: 2, RouterID: 2, HoldTime: 12 * time.Second},
	)
	defer sa.Close()
	defer sb.Close()
	if sa.HoldTime != 12*time.Second || sb.HoldTime != 12*time.Second {
		t.Errorf("negotiated hold = %v / %v, want 12s", sa.HoldTime, sb.HoldTime)
	}
}

func TestUpdateExchange(t *testing.T) {
	sa, sb := establishPair(t,
		Config{LocalAS: 64500, RouterID: 1},
		Config{LocalAS: 64501, RouterID: 2},
	)
	defer sa.Close()
	defer sb.Close()

	want := &bgp.Update{
		Attrs: bgp.Attrs{
			Origin:     bgp.OriginIGP,
			Path:       bgp.Sequence(64500, 263692),
			NextHop:    netx.AddrFrom4(10, 0, 0, 1),
			HasNextHop: true,
		},
		NLRI: []netx.Prefix{netx.MustParsePrefix("132.255.0.0/22")},
	}
	if err := sa.SendUpdate(want); err != nil {
		t.Fatal(err)
	}
	got, err := sb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 1 || got.NLRI[0] != want.NLRI[0] || !got.Attrs.Path.Equal(want.Attrs.Path) {
		t.Errorf("received %+v", got)
	}
}

func TestRecvSkipsKeepalives(t *testing.T) {
	sa, sb := establishPair(t,
		// Short hold → frequent keepalives from the peer.
		Config{LocalAS: 1, RouterID: 1, HoldTime: 3 * time.Second},
		Config{LocalAS: 2, RouterID: 2, HoldTime: 3 * time.Second},
	)
	defer sa.Close()
	defer sb.Close()

	// Give the peer time to emit at least one keepalive, then an update.
	time.Sleep(1200 * time.Millisecond)
	u := &bgp.Update{Withdrawn: []netx.Prefix{netx.MustParsePrefix("192.0.2.0/24")}}
	if err := sa.SendUpdate(u); err != nil {
		t.Fatal(err)
	}
	got, err := sb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Withdrawn) != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestRemoteASEnforced(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		_, err = Establish(conn, Config{LocalAS: 2, RouterID: 2, RemoteAS: 9999})
		errCh <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, dialErr := Establish(conn, Config{LocalAS: 1, RouterID: 1})
	acceptErr := <-errCh
	if !errors.Is(acceptErr, ErrASMismatch) {
		t.Errorf("accept side error = %v", acceptErr)
	}
	// The dialer should see a notification or connection error.
	if dialErr == nil {
		t.Error("dial side should fail after AS mismatch")
	}
}

func TestCloseSendsCease(t *testing.T) {
	sa, sb := establishPair(t,
		Config{LocalAS: 1, RouterID: 1},
		Config{LocalAS: 2, RouterID: 2},
	)
	defer sb.Close()
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := sb.Recv()
	var notif *bgp.Notification
	if !errors.As(err, &notif) || notif.Code != bgp.NotifCease {
		t.Errorf("expected cease notification, got %v", err)
	}
	// Double close is safe.
	if err := sa.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &bgp.Open{AS: 4200000001, HoldTime: 180, RouterID: netx.AddrFrom4(192, 0, 2, 1)}
	wire := bgp.EncodeOpen(o)
	msg, err := bgp.ReadMessage(bytesReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	got, err := bgp.DecodeOpen(msg.Body)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *o {
		t.Errorf("round trip: %+v != %+v", got, o)
	}
}

func TestSmallASNoTransition(t *testing.T) {
	o := &bgp.Open{AS: 64500, HoldTime: 90, RouterID: 7}
	msg, err := bgp.ReadMessage(bytesReader(bgp.EncodeOpen(o)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := bgp.DecodeOpen(msg.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.AS != 64500 {
		t.Errorf("AS = %v", got.AS)
	}
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
