// Package routeviews synthesizes RouteViews-style MRT archives: given an
// AS topology and a timeline of route injection events, it computes the
// AS path each collector peer would select and emits a TABLE_DUMP_V2 RIB
// snapshot at the window start followed by BGP4MP update records — real
// MRT bytes that the rib package reassembles without any knowledge of
// the generator.
package routeviews

import (
	"fmt"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
	"dropscope/internal/topo"
)

// Peer is one BGP neighbor of a collector.
type Peer struct {
	AS        bgp.ASN
	Addr      netx.Addr
	FullTable bool
}

// Collector is one RouteViews collector with its peering set.
type Collector struct {
	Name      string
	LocalAS   bgp.ASN
	LocalAddr netx.Addr
	Peers     []Peer
}

// Event is one route injection or withdrawal in the synthetic world.
// Tail is the AS-path suffix as announced by the injector: Tail[0] is
// the AS that injects the route into the topology and Tail[len-1] is the
// (possibly spoofed) origin. A legitimate origination has Tail ==
// [origin]; a forged-origin hijack via AS50509 of a prefix "owned" by
// AS263692 has Tail == [50509, 263692].
type Event struct {
	Day      timex.Day
	Withdraw bool
	Prefix   netx.Prefix
	Tail     []bgp.ASN
}

// FilterFunc decides whether a peer suppresses a prefix from the routes
// it reports (modeling the DROP-filtering peers in §4.1). It is
// consulted with the event day.
type FilterFunc func(c *Collector, p Peer, prefix netx.Prefix, day timex.Day) bool

// Emitter converts events into per-collector MRT record streams.
type Emitter struct {
	Graph      *topo.Graph
	Collectors []Collector
	Filter     FilterFunc // nil means no filtering

	pathCache map[bgp.ASN]map[bgp.ASN][]bgp.ASN

	// Best-path selection re-evaluates the same few (peer, tail) routes
	// for every event, collector, and peer, so the candidate paths are
	// hash-consed: peerMemo maps (tail, peer AS) to an interned path id
	// (id+1; 0 = peer cannot reach the injector), and pathLens caches
	// each interned path's AS-hop length for the selection comparisons.
	paths    bgp.PathInterner
	pathLens []int
	peerMemo map[peerPathKey]int32
}

type peerPathKey struct {
	tail string
	peer bgp.ASN
}

// peerPathID is peerPath memoized through the interner: tailK must be
// tailKey(tail). It returns the interned id of the path peer as would
// report, or false if the peer cannot reach the injector.
func (e *Emitter) peerPathID(peerAS bgp.ASN, tailK string, tail []bgp.ASN) (bgp.PathID, bool) {
	k := peerPathKey{tail: tailK, peer: peerAS}
	if v, ok := e.peerMemo[k]; ok {
		if v == 0 {
			return 0, false
		}
		return bgp.PathID(v - 1), true
	}
	if e.peerMemo == nil {
		e.peerMemo = make(map[peerPathKey]int32)
	}
	path := e.peerPath(peerAS, tail)
	if path == nil {
		e.peerMemo[k] = 0
		return 0, false
	}
	// peerPath builds the path fresh and nothing mutates it after, so
	// the interner can adopt it without a defensive clone.
	id := e.paths.InternShared(path)
	if int(id) == len(e.pathLens) {
		e.pathLens = append(e.pathLens, path.Len())
	}
	e.peerMemo[k] = int32(id) + 1
	return id, true
}

// betterID is better() over interned ids, using the cached lengths and
// memoized string renderings.
func (e *Emitter) betterID(a, b bgp.PathID) bool {
	if la, lb := e.pathLens[a], e.pathLens[b]; la != lb {
		return la < lb
	}
	return e.paths.String(a) < e.paths.String(b)
}

func (e *Emitter) pathsFrom(injector bgp.ASN) map[bgp.ASN][]bgp.ASN {
	if e.pathCache == nil {
		e.pathCache = make(map[bgp.ASN]map[bgp.ASN][]bgp.ASN)
	}
	if p, ok := e.pathCache[injector]; ok {
		return p
	}
	p := e.Graph.PathsFrom(injector)
	e.pathCache[injector] = p
	return p
}

// peerPath returns the AS path peer as would report for an event, or nil
// if the peer cannot reach the injector.
func (e *Emitter) peerPath(peerAS bgp.ASN, tail []bgp.ASN) bgp.ASPath {
	if len(tail) == 0 {
		return nil
	}
	injector := tail[0]
	var base []bgp.ASN
	if peerAS == injector {
		base = []bgp.ASN{peerAS}
	} else {
		paths := e.pathsFrom(injector)
		base = paths[peerAS]
		if base == nil {
			return nil
		}
	}
	full := make([]bgp.ASN, 0, len(base)+len(tail)-1)
	full = append(full, base...)
	full = append(full, tail[1:]...)
	return bgp.Sequence(full...)
}

func tailKey(t []bgp.ASN) string {
	b := make([]byte, 0, len(t)*5)
	for _, a := range t {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a), '|')
	}
	return string(b)
}

// Emit produces each collector's MRT record stream for the window
// starting at start. Events with Day <= start contribute to the initial
// TABLE_DUMP_V2 snapshot; later events become BGP4MP updates in day
// order. Events must be sorted by Day.
//
// Each peer performs best-path selection among the live candidate
// announcements for a prefix (shortest AS path, then lexicographic), so
// competing origins yield genuine multiple-origin views across peers and
// a withdrawal of the preferred route falls back to the next candidate.
func (e *Emitter) Emit(events []Event, start timex.Day) (map[string][]mrt.Record, error) {
	if e.Graph == nil {
		return nil, fmt.Errorf("routeviews: emitter needs a topology")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Day < events[i-1].Day {
			return nil, fmt.Errorf("routeviews: events out of order at %d", i)
		}
	}
	for _, ev := range events {
		if len(ev.Tail) == 0 {
			return nil, fmt.Errorf("routeviews: event with empty tail for %s", ev.Prefix)
		}
	}

	// Live candidate announcements per prefix, keyed by tail.
	type candidate struct {
		tail []bgp.ASN
		day  timex.Day
	}
	live := make(map[netx.Prefix]map[string]candidate)
	apply := func(ev Event) {
		m := live[ev.Prefix]
		if m == nil {
			m = make(map[string]candidate)
			live[ev.Prefix] = m
		}
		k := tailKey(ev.Tail)
		if ev.Withdraw {
			delete(m, k)
		} else {
			if old, ok := m[k]; ok {
				// Refresh keeps the original day.
				m[k] = candidate{ev.Tail, old.day}
			} else {
				m[k] = candidate{ev.Tail, ev.Day}
			}
		}
	}

	// bestFor selects the peer's route among live candidates, as an
	// interned path id. The candidate map key is exactly the tail key the
	// memo needs, so selection allocates nothing once the memo is warm.
	bestFor := func(c *Collector, p Peer, prefix netx.Prefix, day timex.Day) (bgp.PathID, timex.Day, bool) {
		if e.filtered(c, p, prefix, day) {
			return 0, 0, false
		}
		var bestID bgp.PathID
		var bestDay timex.Day
		found := false
		for k, cand := range live[prefix] {
			id, ok := e.peerPathID(p.AS, k, cand.tail)
			if !ok {
				continue
			}
			if !found || e.betterID(id, bestID) {
				bestID, bestDay, found = id, cand.day, true
			}
		}
		return bestID, bestDay, found
	}

	// Split events at the window start.
	split := len(events)
	for i, ev := range events {
		if ev.Day > start {
			split = i
			break
		}
	}
	for _, ev := range events[:split] {
		apply(ev)
	}

	// exported tracks what each (collector, peer) currently advertises.
	type exportKey struct {
		collector string
		peerIdx   int
		prefix    netx.Prefix
	}
	exported := make(map[exportKey]int32) // interned path id+1; 0 = none

	out := make(map[string][]mrt.Record, len(e.Collectors))
	recs := make(map[string][]mrt.Record, len(e.Collectors))

	// Initial snapshot per collector.
	prefixes := make([]netx.Prefix, 0, len(live))
	for p := range live {
		prefixes = append(prefixes, p)
	}
	netx.SortPrefixes(prefixes)
	for ci := range e.Collectors {
		c := &e.Collectors[ci]
		pit := &mrt.PeerIndexTable{
			When:        start.Time(),
			CollectorID: c.LocalAddr,
			ViewName:    c.Name,
		}
		for _, p := range c.Peers {
			pit.Peers = append(pit.Peers, mrt.Peer{BGPID: p.Addr, Addr: p.Addr, AS: p.AS})
		}
		recs[c.Name] = append(recs[c.Name], pit)

		seq := uint32(0)
		for _, prefix := range prefixes {
			rib := &mrt.RIBPrefix{When: start.Time(), Sequence: seq, Prefix: prefix}
			for pi, p := range c.Peers {
				id, day, ok := bestFor(c, p, prefix, start)
				if !ok {
					continue
				}
				rib.Entries = append(rib.Entries, mrt.RIBEntry{
					PeerIndex:      uint16(pi),
					OriginatedTime: day.Time(),
					Attrs:          bgp.Attrs{Origin: bgp.OriginIGP, Path: e.paths.Path(id)},
				})
				exported[exportKey{c.Name, pi, prefix}] = int32(id) + 1
			}
			if len(rib.Entries) > 0 {
				recs[c.Name] = append(recs[c.Name], rib)
				seq++
			}
		}
	}

	// Updates: after each event, re-run best-path selection at each peer
	// and emit the difference.
	for _, ev := range events[split:] {
		apply(ev)
		for ci := range e.Collectors {
			c := &e.Collectors[ci]
			for pi, p := range c.Peers {
				key := exportKey{c.Name, pi, ev.Prefix}
				prev := exported[key]
				id, _, ok := bestFor(c, p, ev.Prefix, ev.Day)
				cur := int32(0)
				if ok {
					cur = int32(id) + 1
				}
				if cur == prev {
					continue
				}
				u := &bgp.Update{}
				if !ok {
					u.Withdrawn = []netx.Prefix{ev.Prefix}
					delete(exported, key)
				} else {
					u.Attrs = bgp.Attrs{Origin: bgp.OriginIGP, Path: e.paths.Path(id), NextHop: p.Addr, HasNextHop: true}
					u.NLRI = []netx.Prefix{ev.Prefix}
					exported[key] = cur
				}
				recs[c.Name] = append(recs[c.Name], &mrt.BGP4MPMessage{
					When:      ev.Day.Time(),
					PeerAS:    p.AS,
					LocalAS:   c.LocalAS,
					PeerAddr:  p.Addr,
					LocalAddr: c.LocalAddr,
					Update:    u,
				})
			}
		}
	}
	for name, r := range recs {
		out[name] = r
	}
	return out, nil
}

// better reports whether path a beats b under BGP-style selection:
// shorter AS path first, then lexicographically smaller.
func better(a, b bgp.ASPath) bool {
	if la, lb := a.Len(), b.Len(); la != lb {
		return la < lb
	}
	return a.String() < b.String()
}

func (e *Emitter) filtered(c *Collector, p Peer, prefix netx.Prefix, day timex.Day) bool {
	return e.Filter != nil && e.Filter(c, p, prefix, day)
}
