package routeviews

import (
	"bytes"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/timex"
	"dropscope/internal/topo"
)

var (
	d0  = timex.MustParseDay("2019-06-05")
	pfx = netx.MustParsePrefix("192.0.2.0/24")
)

// testWorld: two tier-1s (100, 200) peering; origin AS 300 customers of
// 100; hijacker AS 400 customers of 200. Collector peers at 100 and 200.
func testWorld(t *testing.T) (*topo.Graph, []Collector) {
	t.Helper()
	var g topo.Graph
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Link(100, 300, topo.ProviderOf))
	must(g.Link(200, 400, topo.ProviderOf))
	must(g.Link(100, 200, topo.PeerWith))
	cols := []Collector{{
		Name:      "rv-test",
		LocalAS:   6447,
		LocalAddr: netx.AddrFrom4(198, 51, 100, 1),
		Peers: []Peer{
			{AS: 100, Addr: netx.AddrFrom4(203, 0, 113, 1), FullTable: true},
			{AS: 200, Addr: netx.AddrFrom4(203, 0, 113, 2), FullTable: true},
		},
	}}
	return &g, cols
}

func TestEmitSnapshotAndUpdates(t *testing.T) {
	g, cols := testWorld(t)
	em := &Emitter{Graph: g, Collectors: cols}
	events := []Event{
		{Day: d0 - 30, Prefix: pfx, Tail: []bgp.ASN{300}}, // live at window start
		{Day: d0 + 10, Prefix: pfx, Tail: []bgp.ASN{300}, Withdraw: true},
		{Day: d0 + 20, Prefix: pfx, Tail: []bgp.ASN{400, 300}}, // forged-origin hijack
	}
	recs, err := em.Emit(events, d0)
	if err != nil {
		t.Fatal(err)
	}
	stream := recs["rv-test"]
	if len(stream) == 0 {
		t.Fatal("no records")
	}
	if _, ok := stream[0].(*mrt.PeerIndexTable); !ok {
		t.Fatalf("first record is %T", stream[0])
	}

	// Snapshot should show the prefix at both peers with correct paths.
	ribRec, ok := stream[1].(*mrt.RIBPrefix)
	if !ok {
		t.Fatalf("second record is %T", stream[1])
	}
	if ribRec.Prefix != pfx || len(ribRec.Entries) != 2 {
		t.Fatalf("rib = %+v", ribRec)
	}
	// Peer 100 reaches origin 300 directly (customer): path 100 300.
	if got := ribRec.Entries[0].Attrs.Path.String(); got != "100 300" {
		t.Errorf("peer100 path = %q", got)
	}
	// Peer 200 crosses the peering: 200 100 300.
	if got := ribRec.Entries[1].Attrs.Path.String(); got != "200 100 300" {
		t.Errorf("peer200 path = %q", got)
	}

	// Updates: a withdrawal day d0+10 and a hijack announcement d0+20
	// at each peer.
	var withdraws, announces int
	for _, r := range stream[2:] {
		m, ok := r.(*mrt.BGP4MPMessage)
		if !ok {
			t.Fatalf("unexpected record %T", r)
		}
		if len(m.Update.Withdrawn) > 0 {
			withdraws++
		}
		if len(m.Update.NLRI) > 0 {
			announces++
			// Hijack path must end with spoofed origin 300 via 400.
			if o, _ := m.Update.Attrs.Path.Origin(); o != 300 {
				t.Errorf("hijack origin = %v", o)
			}
			if !m.Update.Attrs.Path.Contains(400) {
				t.Errorf("hijack path misses injector: %v", m.Update.Attrs.Path)
			}
		}
	}
	if withdraws != 2 || announces != 2 {
		t.Errorf("withdraws=%d announces=%d", withdraws, announces)
	}
}

func TestEmitFeedsRIBIndex(t *testing.T) {
	g, cols := testWorld(t)
	em := &Emitter{Graph: g, Collectors: cols}
	events := []Event{
		{Day: d0 - 30, Prefix: pfx, Tail: []bgp.ASN{300}},
		{Day: d0 + 10, Prefix: pfx, Tail: []bgp.ASN{300}, Withdraw: true},
	}
	recs, err := em.Emit(events, d0)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through real MRT bytes.
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	for _, r := range recs["rv-test"] {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	parsed, err := mrt.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	ix := rib.NewIndex()
	if err := ix.Load("rv-test", parsed); err != nil {
		t.Fatal(err)
	}
	ix.Close(d0 + 100)

	if got := ix.VisibleFraction(pfx, d0+5); got != 1.0 {
		t.Errorf("visible before withdraw = %v", got)
	}
	if got := ix.VisibleFraction(pfx, d0+15); got != 0.0 {
		t.Errorf("visible after withdraw = %v", got)
	}
	if o, ok := ix.OriginAt(pfx, d0+5); !ok || o != 300 {
		t.Errorf("origin = %v %v", o, ok)
	}
}

func TestPeerFiltering(t *testing.T) {
	g, cols := testWorld(t)
	em := &Emitter{
		Graph:      g,
		Collectors: cols,
		Filter: func(_ *Collector, p Peer, prefix netx.Prefix, _ timex.Day) bool {
			return p.AS == 200 && prefix == pfx // peer 200 drops the prefix
		},
	}
	events := []Event{{Day: d0 - 1, Prefix: pfx, Tail: []bgp.ASN{300}}}
	recs, err := em.Emit(events, d0)
	if err != nil {
		t.Fatal(err)
	}
	ribRec := recs["rv-test"][1].(*mrt.RIBPrefix)
	if len(ribRec.Entries) != 1 || ribRec.Entries[0].PeerIndex != 0 {
		t.Errorf("filtered snapshot = %+v", ribRec.Entries)
	}
}

func TestUnreachableInjectorInvisible(t *testing.T) {
	g, cols := testWorld(t)
	em := &Emitter{Graph: g, Collectors: cols}
	// Injector 999 is not in the topology: no peer sees it.
	events := []Event{{Day: d0 - 1, Prefix: pfx, Tail: []bgp.ASN{999}}}
	recs, err := em.Emit(events, d0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs["rv-test"]) != 1 { // just the peer index table
		t.Errorf("records = %d", len(recs["rv-test"]))
	}
}

func TestEmitValidation(t *testing.T) {
	g, cols := testWorld(t)
	em := &Emitter{Graph: g, Collectors: cols}
	if _, err := em.Emit([]Event{{Day: d0, Prefix: pfx}}, d0); err == nil {
		t.Error("empty tail should fail")
	}
	bad := []Event{
		{Day: d0 + 2, Prefix: pfx, Tail: []bgp.ASN{300}},
		{Day: d0 + 1, Prefix: pfx, Tail: []bgp.ASN{300}},
	}
	if _, err := em.Emit(bad, d0); err == nil {
		t.Error("out-of-order events should fail")
	}
	em2 := &Emitter{Collectors: cols}
	if _, err := em2.Emit(nil, d0); err == nil {
		t.Error("missing graph should fail")
	}
}

func TestWithdrawBeforeStartExcludedFromSnapshot(t *testing.T) {
	g, cols := testWorld(t)
	em := &Emitter{Graph: g, Collectors: cols}
	events := []Event{
		{Day: d0 - 30, Prefix: pfx, Tail: []bgp.ASN{300}},
		{Day: d0 - 10, Prefix: pfx, Tail: []bgp.ASN{300}, Withdraw: true},
	}
	recs, err := em.Emit(events, d0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs["rv-test"]) != 1 {
		t.Errorf("withdrawn-before-start route leaked into snapshot: %d recs", len(recs["rv-test"]))
	}
}
