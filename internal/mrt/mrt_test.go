package mrt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
)

var t0 = time.Date(2019, time.June, 5, 0, 0, 0, 0, time.UTC)

func samplePeerIndex() *PeerIndexTable {
	return &PeerIndexTable{
		When:        t0,
		CollectorID: netx.AddrFrom4(198, 51, 100, 1),
		ViewName:    "rv2",
		Peers: []Peer{
			{BGPID: netx.AddrFrom4(10, 0, 0, 1), Addr: netx.AddrFrom4(203, 0, 113, 1), AS: 64500},
			{BGPID: netx.AddrFrom4(10, 0, 0, 2), Addr: netx.AddrFrom4(203, 0, 113, 2), AS: 4200000001},
		},
	}
}

func sampleRIB() *RIBPrefix {
	return &RIBPrefix{
		When:     t0,
		Sequence: 17,
		Prefix:   netx.MustParsePrefix("132.255.0.0/22"),
		Entries: []RIBEntry{
			{
				PeerIndex:      0,
				OriginatedTime: t0.Add(-24 * time.Hour),
				Attrs: bgp.Attrs{
					Origin: bgp.OriginIGP,
					Path:   bgp.Sequence(64500, 21575, 263692),
				},
			},
			{
				PeerIndex:      1,
				OriginatedTime: t0.Add(-48 * time.Hour),
				Attrs: bgp.Attrs{
					Origin: bgp.OriginIGP,
					Path:   bgp.Sequence(4200000001, 50509, 263692),
				},
			},
		},
	}
}

func sampleBGP4MP() *BGP4MPMessage {
	return &BGP4MPMessage{
		When:      t0.Add(time.Hour),
		PeerAS:    64500,
		LocalAS:   6447,
		PeerAddr:  netx.AddrFrom4(203, 0, 113, 1),
		LocalAddr: netx.AddrFrom4(198, 51, 100, 1),
		Update: &bgp.Update{
			Attrs: bgp.Attrs{
				Origin:     bgp.OriginIGP,
				Path:       bgp.Sequence(64500, 263692),
				NextHop:    netx.AddrFrom4(203, 0, 113, 1),
				HasNextHop: true,
			},
			NLRI: []netx.Prefix{netx.MustParsePrefix("132.255.0.0/22")},
		},
	}
}

func TestRoundTripAllRecordTypes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range []Record{samplePeerIndex(), sampleRIB(), sampleBGP4MP()} {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}

	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}

	pit, ok := recs[0].(*PeerIndexTable)
	if !ok {
		t.Fatalf("record 0 is %T", recs[0])
	}
	if pit.ViewName != "rv2" || len(pit.Peers) != 2 || pit.Peers[1].AS != 4200000001 {
		t.Errorf("peer index = %+v", pit)
	}
	if !pit.Timestamp().Equal(t0) {
		t.Errorf("timestamp = %v", pit.Timestamp())
	}

	rib, ok := recs[1].(*RIBPrefix)
	if !ok {
		t.Fatalf("record 1 is %T", recs[1])
	}
	if rib.Prefix.String() != "132.255.0.0/22" || rib.Sequence != 17 || len(rib.Entries) != 2 {
		t.Errorf("rib = %+v", rib)
	}
	if o, _ := rib.Entries[1].Attrs.Path.Origin(); o != 263692 {
		t.Errorf("entry 1 origin = %v", o)
	}
	if !rib.Entries[0].OriginatedTime.Equal(t0.Add(-24 * time.Hour)) {
		t.Errorf("originated = %v", rib.Entries[0].OriginatedTime)
	}

	msg, ok := recs[2].(*BGP4MPMessage)
	if !ok {
		t.Fatalf("record 2 is %T", recs[2])
	}
	if msg.PeerAS != 64500 || msg.LocalAS != 6447 || len(msg.Update.NLRI) != 1 {
		t.Errorf("bgp4mp = %+v", msg)
	}
}

func TestZeroLengthPrefixRIB(t *testing.T) {
	r := sampleRIB()
	r.Prefix = netx.MustParsePrefix("0.0.0.0/0")
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(r); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].(*RIBPrefix).Prefix.Bits() != 0 {
		t.Error("default route round trip")
	}
}

func TestReaderCleanEOF(t *testing.T) {
	recs, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty stream: %v %v", recs, err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	_, err := ReadAll(bytes.NewReader([]byte{1, 2, 3}))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v", err)
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(sampleRIB()); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	_, err := ReadAll(bytes.NewReader(cut))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v", err)
	}
}

func TestReaderUnsupportedType(t *testing.T) {
	// Type 11 (TABLE_DUMP, old format) is not supported.
	raw := []byte{0, 0, 0, 0, 0, 11, 0, 1, 0, 0, 0, 0}
	_, err := ReadAll(bytes.NewReader(raw))
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestReaderRejectsHugeRecord(t *testing.T) {
	raw := []byte{0, 0, 0, 0, 0, 13, 0, 2, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadAll(bytes.NewReader(raw)); err == nil {
		t.Error("oversized record length should fail")
	}
}

func TestWriterRejectsUnknownRecord(t *testing.T) {
	err := NewWriter(io.Discard).Write(nil)
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestManyRecordsStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 500
	for i := 0; i < n; i++ {
		r := sampleRIB()
		r.Sequence = uint32(i)
		r.Prefix = netx.PrefixFrom(netx.AddrFrom4(10, byte(i>>8), byte(i), 0), 24)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf)
	for i := 0; i < n; i++ {
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.(*RIBPrefix).Sequence != uint32(i) {
			t.Fatalf("record %d out of order", i)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestDecodeFuzzSafety(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(samplePeerIndex())
	_ = w.Write(sampleRIB())
	_ = w.Write(sampleBGP4MP())
	wire := buf.Bytes()

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		mut := append([]byte(nil), wire...)
		for j := 0; j < 1+rng.Intn(6); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		// Must never panic; errors are fine. Length-field mutations are
		// bounded by the record cap so memory stays sane.
		_, _ = ReadAll(bytes.NewReader(mut))
	}
}

func TestPeerIndexTrailingBytesRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(samplePeerIndex()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Extend declared record length by one and add a junk byte.
	bodyLen := uint32(raw[8])<<24 | uint32(raw[9])<<16 | uint32(raw[10])<<8 | uint32(raw[11])
	bodyLen++
	raw[8], raw[9], raw[10], raw[11] = byte(bodyLen>>24), byte(bodyLen>>16), byte(bodyLen>>8), byte(bodyLen)
	raw = append(raw, 0xAA)
	if _, err := ReadAll(bytes.NewReader(raw)); err == nil {
		t.Error("trailing bytes should be rejected")
	}
}
