package mrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"regexp"
	"strings"
	"testing"

	"dropscope/internal/ingest"
)

// threeRecordStream returns the wire bytes of the three sample records
// and the offset of each record's header.
func threeRecordStream(t *testing.T) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	offs := make([]int, 0, 3)
	for _, rec := range []Record{samplePeerIndex(), sampleRIB(), sampleBGP4MP()} {
		offs = append(offs, buf.Len())
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), offs
}

func TestStrictErrorCarriesRecordIndexAndOffset(t *testing.T) {
	wire, offs := threeRecordStream(t)
	// Make record 1's body undecodable: its prefix-length byte becomes 45.
	wire[offs[1]+12+4] = 45
	recs, err := ReadAll(bytes.NewReader(wire))
	if err == nil {
		t.Fatal("corrupt record did not fail strict read")
	}
	want := regexp.MustCompile(`^mrt: record 1 at offset 0x[0-9a-f]+: `)
	if !want.MatchString(err.Error()) {
		t.Errorf("error %q lacks record index and offset", err)
	}
	if !strings.Contains(err.Error(), "0x"+hex(offs[1])) {
		t.Errorf("error %q does not name offset %#x", err, offs[1])
	}
	// Partial-result contract: the good prefix survives the error.
	if len(recs) != 1 {
		t.Errorf("partial result = %d records, want 1", len(recs))
	}
}

func hex(n int) string {
	const digits = "0123456789abcdef"
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n >>= 4 {
		b = append([]byte{digits[n&0xF]}, b...)
	}
	return string(b)
}

func TestStrictTruncatedKeepsErrorsIs(t *testing.T) {
	wire, _ := threeRecordStream(t)
	_, err := ReadAll(bytes.NewReader(wire[:len(wire)-3]))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("errors.Is(ErrTruncated) lost through wrapping: %v", err)
	}
	if !regexp.MustCompile(`record 2 at offset 0x[0-9a-f]+`).MatchString(err.Error()) {
		t.Errorf("truncation error %q lacks record context", err)
	}
}

func TestLenientSkipsCorruptRecord(t *testing.T) {
	wire, offs := threeRecordStream(t)
	wire[offs[1]+12+4] = 45 // record 1 body undecodable
	src := &ingest.Source{Name: "mrt/test"}
	r := NewReader(bytes.NewReader(wire), Lenient(), WithSource(src))
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("lenient read failed: %v", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 || r.Skipped() != 1 {
		t.Fatalf("records=%d skipped=%d, want 2/1", len(recs), r.Skipped())
	}
	if _, ok := recs[0].(*PeerIndexTable); !ok {
		t.Errorf("record 0 is %T", recs[0])
	}
	if _, ok := recs[1].(*BGP4MPMessage); !ok {
		t.Errorf("record 1 is %T", recs[1])
	}
	if src.Records != 2 || src.Skips[ingest.Corrupt] != 1 {
		t.Errorf("source = %+v", src)
	}
}

func TestLenientResyncsPastLengthLie(t *testing.T) {
	wire, offs := threeRecordStream(t)
	// Record 1's length field claims more than the cap: the framing is a
	// lie, so the reader must scan for record 2's header.
	binary.BigEndian.PutUint32(wire[offs[1]+8:], 0xFFFFFF00)
	recs, err := ReadAll(bytes.NewReader(wire), Lenient())
	if err != nil {
		t.Fatalf("lenient read failed: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (resync must reach record 2)", len(recs))
	}
	if _, ok := recs[1].(*BGP4MPMessage); !ok {
		t.Errorf("post-resync record is %T", recs[1])
	}
}

func TestLenientGarbageInterleave(t *testing.T) {
	wire, offs := threeRecordStream(t)
	// Seven garbage bytes spliced in front of record 1.
	garbage := bytes.Repeat([]byte{0xFF}, 7)
	mut := append([]byte(nil), wire[:offs[1]]...)
	mut = append(mut, garbage...)
	mut = append(mut, wire[offs[1]:]...)
	src := &ingest.Source{Name: "mrt/test"}
	recs, err := ReadAll(bytes.NewReader(mut), Lenient(), WithSource(src))
	if err != nil {
		t.Fatalf("lenient read failed: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want all 3 despite garbage", len(recs))
	}
	if src.Skipped() == 0 {
		t.Error("garbage produced no skip count")
	}
}

func TestLenientTruncatedTailTerminates(t *testing.T) {
	wire, _ := threeRecordStream(t)
	src := &ingest.Source{Name: "mrt/test"}
	recs, err := ReadAll(bytes.NewReader(wire[:len(wire)-3]), Lenient(), WithSource(src))
	if err != nil {
		t.Fatalf("lenient read failed: %v", err)
	}
	if len(recs) != 2 {
		t.Errorf("records = %d, want 2", len(recs))
	}
	if src.Skips[ingest.Truncated] != 1 {
		t.Errorf("source = %+v, want one truncated skip", src)
	}
}

func TestLenientSkipBudget(t *testing.T) {
	wire, offs := threeRecordStream(t)
	wire[offs[1]+12+4] = 45
	wire[offs[2]+12+10] = 0xFF // damage record 2's body too
	_, err := ReadAll(bytes.NewReader(wire), Lenient(), MaxSkips(1))
	if err == nil || !strings.Contains(err.Error(), "skip budget") {
		t.Errorf("err = %v, want skip-budget exhaustion", err)
	}
}

// TestLenientCleanStreamByteIdentical is the compatibility anchor: over
// an undamaged stream the lenient reader must yield exactly the records
// the strict reader does.
func TestLenientCleanStreamByteIdentical(t *testing.T) {
	wire, _ := threeRecordStream(t)
	strict, err := ReadAll(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	src := &ingest.Source{Name: "mrt/test"}
	lenient, err := ReadAll(bytes.NewReader(wire), Lenient(), WithSource(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != len(lenient) {
		t.Fatalf("record counts differ: %d vs %d", len(strict), len(lenient))
	}
	var sb, lb bytes.Buffer
	sw, lw := NewWriter(&sb), NewWriter(&lb)
	for i := range strict {
		if err := sw.Write(strict[i]); err != nil {
			t.Fatal(err)
		}
		if err := lw.Write(lenient[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(sb.Bytes(), lb.Bytes()) {
		t.Error("lenient decode of a clean stream diverged from strict")
	}
	if !src.Clean() || src.Records != 3 {
		t.Errorf("clean stream source = %+v", src)
	}
}
