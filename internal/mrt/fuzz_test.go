package mrt

import (
	"bytes"
	"io"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/ingest/faultinject"
	"dropscope/internal/netx"
)

func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(samplePeerIndex())
	_ = w.Write(sampleRIB())
	_ = w.Write(sampleBGP4MP())
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			rec, err := r.Next()
			if err != nil {
				if err != io.EOF && rec != nil {
					t.Fatal("record returned with error")
				}
				return
			}
			// Accepted records must re-serialize.
			var out bytes.Buffer
			if werr := NewWriter(&out).Write(rec); werr != nil {
				t.Fatalf("re-encode failed: %v", werr)
			}
		}
	})
}

// FuzzReaderLenient drives the resynchronizing reader over arbitrary
// bytes. The invariants: it never panics, with an unlimited skip budget
// the only terminal condition is io.EOF, the record count is bounded by
// the framing (one header per 12 bytes), and the skip count is bounded
// by the input length — every skip consumes at least one byte, so the
// loop always terminates.
func FuzzReaderLenient(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(samplePeerIndex())
	_ = w.Write(sampleRIB())
	_ = w.Write(sampleBGP4MP())
	clean := buf.Bytes()
	f.Add(clean)
	f.Add(faultinject.New(1).DamageMRT(clean))
	f.Add(faultinject.New(2).DamageMRT(clean))
	f.Add(faultinject.New(3).FlipBits(clean, 64))
	f.Add(faultinject.New(4).Interleave(clean, 5, 32))
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	// BGP4MP UPDATE streams: the frames the delta-append path strictly
	// decodes from archive suffixes. A withdraw-only message, a
	// fully-attributed announcement (AS4 path, MED, LocalPref,
	// communities), and a back-to-back run of both; plus a truncated and
	// a bit-flipped copy so the resynchronizer walks damaged UPDATE
	// framing, not just damaged RIB framing.
	var ubuf bytes.Buffer
	uw := NewWriter(&ubuf)
	withdraw := sampleBGP4MP()
	withdraw.Update = &bgp.Update{Withdrawn: []netx.Prefix{netx.MustParsePrefix("132.255.0.0/22")}}
	announce := sampleBGP4MP()
	announce.Update.Attrs = bgp.Attrs{
		Origin:      bgp.OriginIGP,
		Path:        bgp.Sequence(4200000001, 50509, 263692),
		NextHop:     netx.AddrFrom4(203, 0, 113, 2),
		HasNextHop:  true,
		MED:         90,
		HasMED:      true,
		LocalPref:   200,
		HasLocal:    true,
		Communities: []uint32{64500<<16 | 13335, 0xFFFF0000},
	}
	_ = uw.Write(withdraw)
	_ = uw.Write(announce)
	_ = uw.Write(sampleBGP4MP())
	updates := ubuf.Bytes()
	f.Add(updates)
	f.Add(updates[:len(updates)-7])
	f.Add(faultinject.New(5).FlipBits(updates, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := &ingest.Source{Name: "fuzz"}
		r := NewReader(bytes.NewReader(data), Lenient(), WithSource(src))
		records := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("lenient reader returned non-EOF error: %v", err)
			}
			records++
		}
		if records > len(data)/12 {
			t.Fatalf("%d records from %d bytes", records, len(data))
		}
		if r.Skipped() > len(data)+1 {
			t.Fatalf("%d skips from %d bytes", r.Skipped(), len(data))
		}
		if int(src.Records) != records || src.Skipped() != uint64(r.Skipped()) {
			t.Fatalf("source counters diverged: %+v vs %d/%d", src, records, r.Skipped())
		}
	})
}
