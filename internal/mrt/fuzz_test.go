package mrt

import (
	"bytes"
	"io"
	"testing"

	"dropscope/internal/ingest"
	"dropscope/internal/ingest/faultinject"
)

func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(samplePeerIndex())
	_ = w.Write(sampleRIB())
	_ = w.Write(sampleBGP4MP())
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			rec, err := r.Next()
			if err != nil {
				if err != io.EOF && rec != nil {
					t.Fatal("record returned with error")
				}
				return
			}
			// Accepted records must re-serialize.
			var out bytes.Buffer
			if werr := NewWriter(&out).Write(rec); werr != nil {
				t.Fatalf("re-encode failed: %v", werr)
			}
		}
	})
}

// FuzzReaderLenient drives the resynchronizing reader over arbitrary
// bytes. The invariants: it never panics, with an unlimited skip budget
// the only terminal condition is io.EOF, the record count is bounded by
// the framing (one header per 12 bytes), and the skip count is bounded
// by the input length — every skip consumes at least one byte, so the
// loop always terminates.
func FuzzReaderLenient(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(samplePeerIndex())
	_ = w.Write(sampleRIB())
	_ = w.Write(sampleBGP4MP())
	clean := buf.Bytes()
	f.Add(clean)
	f.Add(faultinject.New(1).DamageMRT(clean))
	f.Add(faultinject.New(2).DamageMRT(clean))
	f.Add(faultinject.New(3).FlipBits(clean, 64))
	f.Add(faultinject.New(4).Interleave(clean, 5, 32))
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := &ingest.Source{Name: "fuzz"}
		r := NewReader(bytes.NewReader(data), Lenient(), WithSource(src))
		records := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("lenient reader returned non-EOF error: %v", err)
			}
			records++
		}
		if records > len(data)/12 {
			t.Fatalf("%d records from %d bytes", records, len(data))
		}
		if r.Skipped() > len(data)+1 {
			t.Fatalf("%d skips from %d bytes", r.Skipped(), len(data))
		}
		if int(src.Records) != records || src.Skipped() != uint64(r.Skipped()) {
			t.Fatalf("source counters diverged: %+v vs %d/%d", src, records, r.Skipped())
		}
	})
}
