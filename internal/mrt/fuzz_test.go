package mrt

import (
	"bytes"
	"io"
	"testing"
)

func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(samplePeerIndex())
	_ = w.Write(sampleRIB())
	_ = w.Write(sampleBGP4MP())
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			rec, err := r.Next()
			if err != nil {
				if err != io.EOF && rec != nil {
					t.Fatal("record returned with error")
				}
				return
			}
			// Accepted records must re-serialize.
			var out bytes.Buffer
			if werr := NewWriter(&out).Write(rec); werr != nil {
				t.Fatalf("re-encode failed: %v", werr)
			}
		}
	})
}
