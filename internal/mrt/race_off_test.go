//go:build !race

package mrt

// raceEnabled reports whether the race detector is compiled in. The
// allocation-regression tests skip under it: instrumentation changes
// sync.Pool behavior and allocation counts.
const raceEnabled = false
