// Package mrt implements the MRT routing-information export format
// (RFC 6396) used by RouteViews and RIPE RIS archives: the common record
// header, TABLE_DUMP_V2 RIB snapshots (PEER_INDEX_TABLE and
// RIB_IPV4_UNICAST), and BGP4MP_MESSAGE_AS4 update records.
//
// Reader streams records from an io.Reader without slurping the file;
// Writer is its inverse. Both operate on the same typed records, so a
// write→read round trip is lossless.
//
// The Reader has two modes. Strict (the default) fails on the first
// malformed record with an error carrying the record index and byte
// offset. Lenient — enabled with the Lenient option — resynchronizes
// past corrupt, truncated, and unsupported records, counting and
// classifying every skip, so a damaged archive still yields all of its
// decodable records.
package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/netx"
)

// MRT record types and subtypes used by this pipeline (RFC 6396 §4).
const (
	TypeTableDumpV2 = 13
	TypeBGP4MP      = 16

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2

	SubtypeBGP4MPMessageAS4 = 4
)

// Record is any decoded MRT record.
type Record interface {
	// Timestamp returns the record's header timestamp.
	Timestamp() time.Time
	mrtRecord()
}

// Peer identifies one collector peer in a PEER_INDEX_TABLE.
type Peer struct {
	BGPID netx.Addr
	Addr  netx.Addr
	AS    bgp.ASN
}

// PeerIndexTable is the TABLE_DUMP_V2 peer index that RIB entries
// reference by position.
type PeerIndexTable struct {
	When        time.Time
	CollectorID netx.Addr
	ViewName    string
	Peers       []Peer
}

func (p *PeerIndexTable) Timestamp() time.Time { return p.When }
func (p *PeerIndexTable) mrtRecord()           {}

// RIBEntry is one peer's path for the prefix of a RIB_IPV4_UNICAST record.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime time.Time
	Attrs          bgp.Attrs
}

// RIBPrefix is a TABLE_DUMP_V2 RIB_IPV4_UNICAST record: every peer's best
// path for one prefix at dump time.
type RIBPrefix struct {
	When     time.Time
	Sequence uint32
	Prefix   netx.Prefix
	Entries  []RIBEntry
}

func (r *RIBPrefix) Timestamp() time.Time { return r.When }
func (r *RIBPrefix) mrtRecord()           {}

// BGP4MPMessage is a BGP4MP_MESSAGE_AS4 record carrying one BGP UPDATE
// received by the collector from a peer.
type BGP4MPMessage struct {
	When      time.Time
	PeerAS    bgp.ASN
	LocalAS   bgp.ASN
	Interface uint16
	PeerAddr  netx.Addr
	LocalAddr netx.Addr
	Update    *bgp.Update
}

func (m *BGP4MPMessage) Timestamp() time.Time { return m.When }
func (m *BGP4MPMessage) mrtRecord()           {}

// Decode errors.
var (
	ErrTruncated   = errors.New("mrt: truncated record")
	ErrUnsupported = errors.New("mrt: unsupported record type")
)

// afiIPv4 is the only address family this pipeline carries.
const afiIPv4 = 1

// Writer emits MRT records to an io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write serializes one record.
func (w *Writer) Write(rec Record) error {
	w.buf = w.buf[:0]
	var typ, sub uint16
	switch r := rec.(type) {
	case *PeerIndexTable:
		typ, sub = TypeTableDumpV2, SubtypePeerIndexTable
		w.buf = appendPeerIndexTable(w.buf, r)
	case *RIBPrefix:
		typ, sub = TypeTableDumpV2, SubtypeRIBIPv4Unicast
		var err error
		w.buf, err = appendRIBPrefix(w.buf, r)
		if err != nil {
			return err
		}
	case *BGP4MPMessage:
		typ, sub = TypeBGP4MP, SubtypeBGP4MPMessageAS4
		var err error
		w.buf, err = appendBGP4MP(w.buf, r)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: %T", ErrUnsupported, rec)
	}

	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(rec.Timestamp().Unix()))
	binary.BigEndian.PutUint16(hdr[4:], typ)
	binary.BigEndian.PutUint16(hdr[6:], sub)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(w.buf)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf)
	return err
}

func appendPeerIndexTable(b []byte, p *PeerIndexTable) []byte {
	b = be32a(b, uint32(p.CollectorID))
	b = be16a(b, uint16(len(p.ViewName)))
	b = append(b, p.ViewName...)
	b = be16a(b, uint16(len(p.Peers)))
	for _, peer := range p.Peers {
		// Peer type: bit 0 = IPv6 addr (never set here), bit 1 = 4-byte AS.
		b = append(b, 0x02)
		b = be32a(b, uint32(peer.BGPID))
		b = be32a(b, uint32(peer.Addr))
		b = be32a(b, uint32(peer.AS))
	}
	return b
}

func appendRIBPrefix(b []byte, r *RIBPrefix) ([]byte, error) {
	b = be32a(b, r.Sequence)
	b = append(b, byte(r.Prefix.Bits()))
	n := (r.Prefix.Bits() + 7) / 8
	a := uint32(r.Prefix.Addr())
	for i := 0; i < n; i++ {
		b = append(b, byte(a>>(24-8*uint(i))))
	}
	b = be16a(b, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		b = be16a(b, e.PeerIndex)
		b = be32a(b, uint32(e.OriginatedTime.Unix()))
		attrs := bgp.EncodeAttrs(&e.Attrs)
		if len(attrs) > 0xFFFF {
			return nil, fmt.Errorf("mrt: attribute block %d bytes too large", len(attrs))
		}
		b = be16a(b, uint16(len(attrs)))
		b = append(b, attrs...)
	}
	return b, nil
}

func appendBGP4MP(b []byte, m *BGP4MPMessage) ([]byte, error) {
	b = be32a(b, uint32(m.PeerAS))
	b = be32a(b, uint32(m.LocalAS))
	b = be16a(b, m.Interface)
	b = be16a(b, afiIPv4)
	b = be32a(b, uint32(m.PeerAddr))
	b = be32a(b, uint32(m.LocalAddr))
	msg, err := bgp.EncodeUpdate(m.Update)
	if err != nil {
		return nil, err
	}
	return append(b, msg...), nil
}

func be16a(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func be32a(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// maxRecord caps a single record body so a lying length field cannot
// force an arbitrary allocation.
const maxRecord = 1 << 24

// Reader streams MRT records from an io.Reader.
type Reader struct {
	r   io.Reader
	buf []byte

	off int64 // absolute offset of the next unread byte
	rec int   // index of the next record to be attempted

	// pending holds a header pre-read during resynchronization; Next
	// consumes it before reading fresh bytes.
	pending    [12]byte
	hasPending bool

	lenient  bool
	maxSkips int
	skipped  int
	src      *ingest.Source
}

// Option configures a Reader.
type Option func(*Reader)

// Lenient switches the Reader to fault-tolerant mode: corrupt,
// truncated, and unsupported records are counted and skipped — scanning
// forward for the next plausible record header when the framing itself
// is damaged — instead of aborting the stream.
func Lenient() Option { return func(r *Reader) { r.lenient = true } }

// MaxSkips bounds how many records a lenient Reader may skip before it
// gives up with an error; n <= 0 (the default) means unlimited.
func MaxSkips(n int) Option { return func(r *Reader) { r.maxSkips = n } }

// WithSource attaches an ingest health accumulator: every accepted
// record and every classified skip is counted into src.
func WithSource(src *ingest.Source) Option { return func(r *Reader) { r.src = src } }

// NewReader returns a Reader consuming r. With no options the Reader is
// strict: the first malformed record fails with an error carrying the
// record index and byte offset.
func NewReader(r io.Reader, opts ...Option) *Reader {
	rd := &Reader{r: r}
	for _, o := range opts {
		o(rd)
	}
	return rd
}

// Skipped returns how many records the Reader has skipped so far (always
// 0 in strict mode, where the first bad record aborts instead).
func (r *Reader) Skipped() int { return r.skipped }

// Offset returns the absolute byte offset of the next unread byte.
func (r *Reader) Offset() int64 { return r.off }

// recordError is a classified per-record failure. It carries the record
// index and starting byte offset, wraps the underlying cause (so
// errors.Is sees ErrTruncated / ErrUnsupported), and tells the lenient
// loop how to recover.
type recordError struct {
	Record int
	Offset int64
	Reason ingest.Reason
	resync bool     // framing untrustworthy: scan forward for the next header
	atEOF  bool     // stream exhausted mid-record: nothing left to recover
	hdr    [12]byte // the implausible header, seeding the resync scan
	err    error
}

func (e *recordError) Error() string {
	return fmt.Sprintf("mrt: record %d at offset %#x: %v", e.Record, e.Offset, e.err)
}

func (e *recordError) Unwrap() error { return e.err }

// Next returns the next record, or io.EOF at the end of the stream.
//
// In strict mode any malformed record aborts with a *recordError-backed
// error naming the record index and byte offset; errors.Is with
// ErrTruncated and ErrUnsupported keeps working through the wrapping. In
// lenient mode Next skips past damage — classifying each skip, scanning
// byte-wise for the next plausible header when the framing lied — and
// only ever returns a record, io.EOF, or a skip-budget-exhausted error
// when a MaxSkips bound is set.
func (r *Reader) Next() (Record, error) {
	for {
		rec, err := r.next()
		if err == nil {
			if r.src != nil {
				r.src.Accept(1)
			}
			return rec, nil
		}
		if err == io.EOF {
			return nil, io.EOF
		}
		re := err.(*recordError)
		if !r.lenient {
			return nil, re
		}
		r.skipped++
		if r.src != nil {
			r.src.Skip(re.Reason)
		}
		if r.maxSkips > 0 && r.skipped > r.maxSkips {
			return nil, fmt.Errorf("mrt: skip budget %d exhausted: %w", r.maxSkips, re)
		}
		if re.atEOF {
			return nil, io.EOF
		}
		if re.resync && !r.resync(re.hdr) {
			return nil, io.EOF
		}
	}
}

// readHeader returns the next record's starting offset and 12-byte
// header, consuming a pending resync header first. A clean end of stream
// is io.EOF; a partial header is a truncated-at-EOF record error.
func (r *Reader) readHeader() (int64, [12]byte, error) {
	if r.hasPending {
		r.hasPending = false
		return r.off - 12, r.pending, nil
	}
	start := r.off
	var hdr [12]byte
	n, err := io.ReadFull(r.r, hdr[:])
	r.off += int64(n)
	if err == io.EOF {
		return start, hdr, io.EOF
	}
	if err != nil {
		return start, hdr, &recordError{
			Record: r.rec, Offset: start, Reason: ingest.Truncated, atEOF: true,
			err: fmt.Errorf("%w: header: %v", ErrTruncated, err),
		}
	}
	return start, hdr, nil
}

// next decodes one record. Its only non-nil errors are io.EOF and
// *recordError.
func (r *Reader) next() (Record, error) {
	start, hdr, err := r.readHeader()
	if err != nil {
		return nil, err
	}
	idx := r.rec
	r.rec++
	ts := time.Unix(int64(binary.BigEndian.Uint32(hdr[0:])), 0).UTC()
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	length := binary.BigEndian.Uint32(hdr[8:])
	if length > maxRecord {
		return nil, &recordError{
			Record: idx, Offset: start, Reason: ingest.Corrupt, resync: true, hdr: hdr,
			err: fmt.Errorf("record length %d exceeds cap", length),
		}
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	body := r.buf[:length]
	n, err := io.ReadFull(r.r, body)
	r.off += int64(n)
	if err != nil {
		return nil, &recordError{
			Record: idx, Offset: start, Reason: ingest.Truncated, atEOF: true,
			err: fmt.Errorf("%w: body: %v", ErrTruncated, err),
		}
	}

	// Each decoder returns a concrete pointer; convert to the Record
	// interface only on success so a failed decode yields an untyped nil.
	// Decode failures leave the stream at the next record boundary (the
	// body was fully consumed), so the lenient loop continues in place.
	var rec Record
	switch {
	case typ == TypeTableDumpV2 && sub == SubtypePeerIndexTable:
		rec, err = convert(decodePeerIndexTable(ts, body))
	case typ == TypeTableDumpV2 && sub == SubtypeRIBIPv4Unicast:
		rec, err = convert(decodeRIBPrefix(ts, body))
	case typ == TypeBGP4MP && sub == SubtypeBGP4MPMessageAS4:
		rec, err = convert(decodeBGP4MP(ts, body))
	default:
		return nil, &recordError{
			Record: idx, Offset: start, Reason: ingest.Unsupported,
			err: fmt.Errorf("%w: type %d subtype %d", ErrUnsupported, typ, sub),
		}
	}
	if err != nil {
		reason := ingest.Corrupt
		if errors.Is(err, ErrTruncated) {
			reason = ingest.Truncated
		}
		return nil, &recordError{Record: idx, Offset: start, Reason: reason, err: err}
	}
	return rec, nil
}

// convert narrows a concrete decode result to the Record interface
// without producing a typed-nil Record on error.
func convert[T Record](rec T, err error) (Record, error) {
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// knownTypeSubtypes are the (type, subtype) pairs this package decodes —
// the resynchronization scan only locks onto one of these.
var knownTypeSubtypes = map[[2]uint16]bool{
	{TypeTableDumpV2, SubtypePeerIndexTable}: true,
	{TypeTableDumpV2, SubtypeRIBIPv4Unicast}: true,
	{TypeBGP4MP, SubtypeBGP4MPMessageAS4}:    true,
}

// Timestamp sanity bounds for resynchronization only: RouteViews started
// publishing MRT in the late 1990s, so anything outside [1990, 2100) in
// the timestamp field is treated as garbage when hunting for a header.
const (
	resyncMinUnix = 631152000  // 1990-01-01
	resyncMaxUnix = 4102444800 // 2100-01-01
)

// plausibleHeader reports whether hdr could start a real record: a
// decodable (type, subtype), an in-cap length, and a sane timestamp.
func plausibleHeader(hdr [12]byte) bool {
	ts := binary.BigEndian.Uint32(hdr[0:])
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	length := binary.BigEndian.Uint32(hdr[8:])
	return knownTypeSubtypes[[2]uint16{typ, sub}] &&
		length <= maxRecord &&
		ts >= resyncMinUnix && ts < resyncMaxUnix
}

// resync slides a 12-byte window — seeded with the implausible header's
// own bytes, so the scan effectively restarts one byte past the failed
// record's start — until the window holds a plausible record header,
// which it leaves pending for the next read. It reports false when the
// stream ends first. The seed header is never plausible (that is what
// triggered the resync), so each call consumes at least one byte and a
// lenient Reader always terminates.
func (r *Reader) resync(window [12]byte) bool {
	for {
		var b [1]byte
		n, err := r.r.Read(b[:])
		if n == 0 {
			if err == nil {
				continue
			}
			return false
		}
		r.off++
		copy(window[:], window[1:])
		window[11] = b[0]
		if plausibleHeader(window) {
			r.pending = window
			r.hasPending = true
			return true
		}
	}
}

func decodePeerIndexTable(ts time.Time, b []byte) (*PeerIndexTable, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	p := &PeerIndexTable{When: ts, CollectorID: netx.Addr(binary.BigEndian.Uint32(b))}
	nameLen := int(binary.BigEndian.Uint16(b[4:]))
	if len(b) < 8+nameLen {
		return nil, ErrTruncated
	}
	p.ViewName = string(b[6 : 6+nameLen])
	count := int(binary.BigEndian.Uint16(b[6+nameLen:]))
	b = b[8+nameLen:]
	for i := 0; i < count; i++ {
		if len(b) < 1 {
			return nil, ErrTruncated
		}
		ptype := b[0]
		if ptype&0x01 != 0 {
			return nil, fmt.Errorf("mrt: IPv6 peers unsupported")
		}
		asLen := 2
		if ptype&0x02 != 0 {
			asLen = 4
		}
		need := 1 + 4 + 4 + asLen
		if len(b) < need {
			return nil, ErrTruncated
		}
		peer := Peer{
			BGPID: netx.Addr(binary.BigEndian.Uint32(b[1:])),
			Addr:  netx.Addr(binary.BigEndian.Uint32(b[5:])),
		}
		if asLen == 4 {
			peer.AS = bgp.ASN(binary.BigEndian.Uint32(b[9:]))
		} else {
			peer.AS = bgp.ASN(binary.BigEndian.Uint16(b[9:]))
		}
		p.Peers = append(p.Peers, peer)
		b = b[need:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("mrt: %d trailing bytes in peer index table", len(b))
	}
	return p, nil
}

func decodeRIBPrefix(ts time.Time, b []byte) (*RIBPrefix, error) {
	if len(b) < 5 {
		return nil, ErrTruncated
	}
	r := &RIBPrefix{When: ts, Sequence: binary.BigEndian.Uint32(b)}
	bits := int(b[4])
	if bits > 32 {
		return nil, fmt.Errorf("mrt: prefix length %d", bits)
	}
	n := (bits + 7) / 8
	if len(b) < 5+n+2 {
		return nil, ErrTruncated
	}
	var a uint32
	for i := 0; i < n; i++ {
		a |= uint32(b[5+i]) << (24 - 8*uint(i))
	}
	r.Prefix = netx.PrefixFrom(netx.Addr(a), bits)
	count := int(binary.BigEndian.Uint16(b[5+n:]))
	b = b[7+n:]
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return nil, ErrTruncated
		}
		e := RIBEntry{
			PeerIndex:      binary.BigEndian.Uint16(b),
			OriginatedTime: time.Unix(int64(binary.BigEndian.Uint32(b[2:])), 0).UTC(),
		}
		attrLen := int(binary.BigEndian.Uint16(b[6:]))
		if len(b) < 8+attrLen {
			return nil, ErrTruncated
		}
		if err := bgp.DecodeAttrs(b[8:8+attrLen], &e.Attrs); err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, e)
		b = b[8+attrLen:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("mrt: %d trailing bytes in RIB record", len(b))
	}
	return r, nil
}

func decodeBGP4MP(ts time.Time, b []byte) (*BGP4MPMessage, error) {
	if len(b) < 20 {
		return nil, ErrTruncated
	}
	afi := binary.BigEndian.Uint16(b[10:])
	if afi != afiIPv4 {
		return nil, fmt.Errorf("mrt: AFI %d unsupported", afi)
	}
	m := &BGP4MPMessage{
		When:      ts,
		PeerAS:    bgp.ASN(binary.BigEndian.Uint32(b)),
		LocalAS:   bgp.ASN(binary.BigEndian.Uint32(b[4:])),
		Interface: binary.BigEndian.Uint16(b[8:]),
		PeerAddr:  netx.Addr(binary.BigEndian.Uint32(b[12:])),
		LocalAddr: netx.Addr(binary.BigEndian.Uint32(b[16:])),
	}
	u, err := bgp.DecodeUpdate(b[20:])
	if err != nil {
		return nil, err
	}
	m.Update = u
	return m, nil
}

// ReadAll drains r, returning every record decoded before the stream
// ended. Its contract is partial-result: on error the returned slice
// still holds every record successfully parsed up to that point, so a
// caller hitting a truncated archive keeps the good prefix — check the
// slice even when err != nil. Options are forwarded to the underlying
// Reader; with Lenient() the error can only be a skip-budget overrun.
func ReadAll(r io.Reader, opts ...Option) ([]Record, error) {
	mr := NewReader(r, opts...)
	var out []Record
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
