// Package mrt implements the MRT routing-information export format
// (RFC 6396) used by RouteViews and RIPE RIS archives: the common record
// header, TABLE_DUMP_V2 RIB snapshots (PEER_INDEX_TABLE and
// RIB_IPV4_UNICAST), and BGP4MP_MESSAGE_AS4 update records.
//
// Reader streams records from an io.Reader without slurping the file;
// Writer is its inverse. Both operate on the same typed records, so a
// write→read round trip is lossless.
//
// The Reader has two modes. Strict (the default) fails on the first
// malformed record with an error carrying the record index and byte
// offset. Lenient — enabled with the Lenient option — resynchronizes
// past corrupt, truncated, and unsupported records, counting and
// classifying every skip, so a damaged archive still yields all of its
// decodable records.
package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/netx"
)

// MRT record types and subtypes used by this pipeline (RFC 6396 §4).
const (
	TypeTableDumpV2 = 13
	TypeBGP4MP      = 16

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2

	SubtypeBGP4MPMessageAS4 = 4
)

// Record is any decoded MRT record.
type Record interface {
	// Timestamp returns the record's header timestamp.
	Timestamp() time.Time
	mrtRecord()
}

// Peer identifies one collector peer in a PEER_INDEX_TABLE.
type Peer struct {
	BGPID netx.Addr
	Addr  netx.Addr
	AS    bgp.ASN
}

// PeerIndexTable is the TABLE_DUMP_V2 peer index that RIB entries
// reference by position.
type PeerIndexTable struct {
	When        time.Time
	CollectorID netx.Addr
	ViewName    string
	Peers       []Peer
}

func (p *PeerIndexTable) Timestamp() time.Time { return p.When }
func (p *PeerIndexTable) mrtRecord()           {}

// RIBEntry is one peer's path for the prefix of a RIB_IPV4_UNICAST record.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime time.Time
	Attrs          bgp.Attrs
}

// RIBPrefix is a TABLE_DUMP_V2 RIB_IPV4_UNICAST record: every peer's best
// path for one prefix at dump time.
type RIBPrefix struct {
	When     time.Time
	Sequence uint32
	Prefix   netx.Prefix
	Entries  []RIBEntry
}

func (r *RIBPrefix) Timestamp() time.Time { return r.When }
func (r *RIBPrefix) mrtRecord()           {}

// BGP4MPMessage is a BGP4MP_MESSAGE_AS4 record carrying one BGP UPDATE
// received by the collector from a peer.
type BGP4MPMessage struct {
	When      time.Time
	PeerAS    bgp.ASN
	LocalAS   bgp.ASN
	Interface uint16
	PeerAddr  netx.Addr
	LocalAddr netx.Addr
	Update    *bgp.Update
}

func (m *BGP4MPMessage) Timestamp() time.Time { return m.When }
func (m *BGP4MPMessage) mrtRecord()           {}

// Decode errors.
var (
	ErrTruncated   = errors.New("mrt: truncated record")
	ErrUnsupported = errors.New("mrt: unsupported record type")
)

// afiIPv4 is the only address family this pipeline carries.
const afiIPv4 = 1

// Writer emits MRT records to an io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write serializes one record.
func (w *Writer) Write(rec Record) error {
	w.buf = w.buf[:0]
	var typ, sub uint16
	switch r := rec.(type) {
	case *PeerIndexTable:
		typ, sub = TypeTableDumpV2, SubtypePeerIndexTable
		w.buf = appendPeerIndexTable(w.buf, r)
	case *RIBPrefix:
		typ, sub = TypeTableDumpV2, SubtypeRIBIPv4Unicast
		var err error
		w.buf, err = appendRIBPrefix(w.buf, r)
		if err != nil {
			return err
		}
	case *BGP4MPMessage:
		typ, sub = TypeBGP4MP, SubtypeBGP4MPMessageAS4
		var err error
		w.buf, err = appendBGP4MP(w.buf, r)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: %T", ErrUnsupported, rec)
	}

	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(rec.Timestamp().Unix()))
	binary.BigEndian.PutUint16(hdr[4:], typ)
	binary.BigEndian.PutUint16(hdr[6:], sub)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(w.buf)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf)
	return err
}

func appendPeerIndexTable(b []byte, p *PeerIndexTable) []byte {
	b = be32a(b, uint32(p.CollectorID))
	b = be16a(b, uint16(len(p.ViewName)))
	b = append(b, p.ViewName...)
	b = be16a(b, uint16(len(p.Peers)))
	for _, peer := range p.Peers {
		// Peer type: bit 0 = IPv6 addr (never set here), bit 1 = 4-byte AS.
		b = append(b, 0x02)
		b = be32a(b, uint32(peer.BGPID))
		b = be32a(b, uint32(peer.Addr))
		b = be32a(b, uint32(peer.AS))
	}
	return b
}

func appendRIBPrefix(b []byte, r *RIBPrefix) ([]byte, error) {
	b = be32a(b, r.Sequence)
	b = append(b, byte(r.Prefix.Bits()))
	n := (r.Prefix.Bits() + 7) / 8
	a := uint32(r.Prefix.Addr())
	for i := 0; i < n; i++ {
		b = append(b, byte(a>>(24-8*uint(i))))
	}
	b = be16a(b, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		b = be16a(b, e.PeerIndex)
		b = be32a(b, uint32(e.OriginatedTime.Unix()))
		attrs := bgp.EncodeAttrs(&e.Attrs)
		if len(attrs) > 0xFFFF {
			return nil, fmt.Errorf("mrt: attribute block %d bytes too large", len(attrs))
		}
		b = be16a(b, uint16(len(attrs)))
		b = append(b, attrs...)
	}
	return b, nil
}

func appendBGP4MP(b []byte, m *BGP4MPMessage) ([]byte, error) {
	b = be32a(b, uint32(m.PeerAS))
	b = be32a(b, uint32(m.LocalAS))
	b = be16a(b, m.Interface)
	b = be16a(b, afiIPv4)
	b = be32a(b, uint32(m.PeerAddr))
	b = be32a(b, uint32(m.LocalAddr))
	msg, err := bgp.EncodeUpdate(m.Update)
	if err != nil {
		return nil, err
	}
	return append(b, msg...), nil
}

func be16a(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func be32a(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// maxRecord caps a single record body so a lying length field cannot
// force an arbitrary allocation.
const maxRecord = 1 << 24

// Reader streams MRT records from an io.Reader.
type Reader struct {
	r   io.Reader
	buf []byte

	off int64 // absolute offset of the next unread byte
	rec int   // index of the next record to be attempted

	// pending holds a header pre-read during resynchronization; Next
	// consumes it before reading fresh bytes.
	pending    [12]byte
	hasPending bool

	// scan is the chunked resynchronization buffer; leftover holds
	// bytes fetched during a resync chunk but not yet consumed by the
	// parser (they alias leftoverArr and are drained by readFull).
	scan        []byte
	leftover    []byte
	leftoverArr [resyncChunk]byte
	// hdrArr is the header read target. A local array would escape
	// through the io.Reader interface and cost one heap allocation per
	// record; a Reader field does not.
	hdrArr [12]byte

	lenient  bool
	maxSkips int
	skipped  int
	src      *ingest.Source

	reuse   bool
	scratch *decodeScratch
}

// decodeScratch bundles the record structs and slice storage a reusing
// Reader decodes into. Pooling the bundle lets short-lived Readers
// (one per collector file) inherit warmed-up entry, path-segment, and
// prefix slices instead of regrowing them from nothing.
type decodeScratch struct {
	pit PeerIndexTable
	rp  RIBPrefix
	b4  BGP4MPMessage
	upd bgp.Update
}

var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

// Option configures a Reader.
type Option func(*Reader)

// Lenient switches the Reader to fault-tolerant mode: corrupt,
// truncated, and unsupported records are counted and skipped — scanning
// forward for the next plausible record header when the framing itself
// is damaged — instead of aborting the stream.
func Lenient() Option { return func(r *Reader) { r.lenient = true } }

// MaxSkips bounds how many records a lenient Reader may skip before it
// gives up with an error; n <= 0 (the default) means unlimited.
func MaxSkips(n int) Option { return func(r *Reader) { r.maxSkips = n } }

// WithSource attaches an ingest health accumulator: every accepted
// record and every classified skip is counted into src.
func WithSource(src *ingest.Source) Option { return func(r *Reader) { r.src = src } }

// ReuseRecords switches the Reader to pooled decode mode: Next returns
// records backed by Reader-owned scratch storage drawn from a
// sync.Pool, so steady-state decoding allocates nothing. Each record
// (and everything it references — peer lists, RIB entries, attributes,
// AS paths, prefixes) is valid only until the following Next call;
// callers must copy or intern whatever they keep. Call Release when
// done to return the scratch to the pool. Do not combine with ReadAll
// or AppendRecords, which retain every record.
func ReuseRecords() Option { return func(r *Reader) { r.reuse = true } }

// Release returns a reusing Reader's scratch storage to the shared
// pool. After Release, records previously returned by Next must no
// longer be used. Release is a no-op on a strict-allocation Reader.
func (r *Reader) Release() {
	if r.scratch != nil {
		scratchPool.Put(r.scratch)
		r.scratch = nil
	}
}

func (r *Reader) getScratch() *decodeScratch {
	if r.scratch == nil {
		r.scratch = scratchPool.Get().(*decodeScratch)
	}
	return r.scratch
}

// NewReader returns a Reader consuming r. With no options the Reader is
// strict: the first malformed record fails with an error carrying the
// record index and byte offset.
func NewReader(r io.Reader, opts ...Option) *Reader {
	rd := &Reader{r: r}
	for _, o := range opts {
		o(rd)
	}
	return rd
}

// Skipped returns how many records the Reader has skipped so far (always
// 0 in strict mode, where the first bad record aborts instead).
func (r *Reader) Skipped() int { return r.skipped }

// Offset returns the absolute byte offset of the next unread byte.
func (r *Reader) Offset() int64 { return r.off }

// recordError is a classified per-record failure. It carries the record
// index and starting byte offset, wraps the underlying cause (so
// errors.Is sees ErrTruncated / ErrUnsupported), and tells the lenient
// loop how to recover.
type recordError struct {
	Record int
	Offset int64
	Reason ingest.Reason
	resync bool     // framing untrustworthy: scan forward for the next header
	atEOF  bool     // stream exhausted mid-record: nothing left to recover
	hdr    [12]byte // the implausible header, seeding the resync scan
	err    error
}

func (e *recordError) Error() string {
	return fmt.Sprintf("mrt: record %d at offset %#x: %v", e.Record, e.Offset, e.err)
}

func (e *recordError) Unwrap() error { return e.err }

// Next returns the next record, or io.EOF at the end of the stream.
//
// In strict mode any malformed record aborts with a *recordError-backed
// error naming the record index and byte offset; errors.Is with
// ErrTruncated and ErrUnsupported keeps working through the wrapping. In
// lenient mode Next skips past damage — classifying each skip, scanning
// byte-wise for the next plausible header when the framing lied — and
// only ever returns a record, io.EOF, or a skip-budget-exhausted error
// when a MaxSkips bound is set.
func (r *Reader) Next() (Record, error) {
	for {
		rec, err := r.next()
		if err == nil {
			if r.src != nil {
				r.src.Accept(1)
			}
			return rec, nil
		}
		if err == io.EOF {
			return nil, io.EOF
		}
		re := err.(*recordError)
		if !r.lenient {
			return nil, re
		}
		r.skipped++
		if r.src != nil {
			r.src.Skip(re.Reason)
		}
		if r.maxSkips > 0 && r.skipped > r.maxSkips {
			return nil, fmt.Errorf("mrt: skip budget %d exhausted: %w", r.maxSkips, re)
		}
		if re.atEOF {
			return nil, io.EOF
		}
		if re.resync && !r.resync(re.hdr) {
			return nil, io.EOF
		}
	}
}

// readHeader returns the next record's starting offset and 12-byte
// header, consuming a pending resync header first. A clean end of stream
// is io.EOF; a partial header is a truncated-at-EOF record error.
func (r *Reader) readHeader() (int64, [12]byte, error) {
	if r.hasPending {
		r.hasPending = false
		return r.off - 12, r.pending, nil
	}
	start := r.off
	n, err := r.readFull(r.hdrArr[:])
	hdr := r.hdrArr
	r.off += int64(n)
	if err == io.EOF {
		return start, hdr, io.EOF
	}
	if err != nil {
		return start, hdr, &recordError{
			Record: r.rec, Offset: start, Reason: ingest.Truncated, atEOF: true,
			err: fmt.Errorf("%w: header: %v", ErrTruncated, err),
		}
	}
	return start, hdr, nil
}

// next decodes one record. Its only non-nil errors are io.EOF and
// *recordError.
func (r *Reader) next() (Record, error) {
	start, hdr, err := r.readHeader()
	if err != nil {
		return nil, err
	}
	idx := r.rec
	r.rec++
	ts := time.Unix(int64(binary.BigEndian.Uint32(hdr[0:])), 0).UTC()
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	length := binary.BigEndian.Uint32(hdr[8:])
	if length > maxRecord {
		return nil, &recordError{
			Record: idx, Offset: start, Reason: ingest.Corrupt, resync: true, hdr: hdr,
			err: fmt.Errorf("record length %d exceeds cap", length),
		}
	}
	if cap(r.buf) < int(length) {
		// Grow-and-reuse: doubling (capped at the record bound) means a
		// stream of slightly-growing records settles on one buffer
		// instead of reallocating per record.
		grow := 2 * cap(r.buf)
		if grow < int(length) {
			grow = int(length)
		}
		if grow > maxRecord {
			grow = maxRecord
		}
		r.buf = make([]byte, grow)
	}
	body := r.buf[:length]
	n, err := r.readFull(body)
	r.off += int64(n)
	if err != nil {
		return nil, &recordError{
			Record: idx, Offset: start, Reason: ingest.Truncated, atEOF: true,
			err: fmt.Errorf("%w: body: %v", ErrTruncated, err),
		}
	}

	// Each decoder returns a concrete pointer; convert to the Record
	// interface only on success so a failed decode yields an untyped nil.
	// Decode failures leave the stream at the next record boundary (the
	// body was fully consumed), so the lenient loop continues in place.
	var rec Record
	switch {
	case typ == TypeTableDumpV2 && sub == SubtypePeerIndexTable:
		if r.reuse {
			s := r.getScratch()
			if err = decodePeerIndexTableInto(ts, body, &s.pit, true); err == nil {
				rec = &s.pit
			}
		} else {
			rec, err = convert(decodePeerIndexTable(ts, body))
		}
	case typ == TypeTableDumpV2 && sub == SubtypeRIBIPv4Unicast:
		if r.reuse {
			s := r.getScratch()
			if err = decodeRIBPrefixInto(ts, body, &s.rp, true); err == nil {
				rec = &s.rp
			}
		} else {
			rec, err = convert(decodeRIBPrefix(ts, body))
		}
	case typ == TypeBGP4MP && sub == SubtypeBGP4MPMessageAS4:
		if r.reuse {
			s := r.getScratch()
			if err = decodeBGP4MPInto(ts, body, &s.b4, &s.upd); err == nil {
				rec = &s.b4
			}
		} else {
			rec, err = convert(decodeBGP4MP(ts, body))
		}
	default:
		return nil, &recordError{
			Record: idx, Offset: start, Reason: ingest.Unsupported,
			err: fmt.Errorf("%w: type %d subtype %d", ErrUnsupported, typ, sub),
		}
	}
	if err != nil {
		reason := ingest.Corrupt
		if errors.Is(err, ErrTruncated) {
			reason = ingest.Truncated
		}
		return nil, &recordError{Record: idx, Offset: start, Reason: reason, err: err}
	}
	return rec, nil
}

// convert narrows a concrete decode result to the Record interface
// without producing a typed-nil Record on error.
func convert[T Record](rec T, err error) (Record, error) {
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// knownTypeSubtypes are the (type, subtype) pairs this package decodes —
// the resynchronization scan only locks onto one of these.
var knownTypeSubtypes = map[[2]uint16]bool{
	{TypeTableDumpV2, SubtypePeerIndexTable}: true,
	{TypeTableDumpV2, SubtypeRIBIPv4Unicast}: true,
	{TypeBGP4MP, SubtypeBGP4MPMessageAS4}:    true,
}

// Timestamp sanity bounds for resynchronization only: RouteViews started
// publishing MRT in the late 1990s, so anything outside [1990, 2100) in
// the timestamp field is treated as garbage when hunting for a header.
const (
	resyncMinUnix = 631152000  // 1990-01-01
	resyncMaxUnix = 4102444800 // 2100-01-01
)

// plausibleHeader reports whether hdr could start a real record: a
// decodable (type, subtype), an in-cap length, and a sane timestamp.
func plausibleHeader(hdr [12]byte) bool {
	ts := binary.BigEndian.Uint32(hdr[0:])
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	length := binary.BigEndian.Uint32(hdr[8:])
	return knownTypeSubtypes[[2]uint16{typ, sub}] &&
		length <= maxRecord &&
		ts >= resyncMinUnix && ts < resyncMaxUnix
}

// resyncChunk is how many bytes a resync scan fetches per underlying
// Read call, and bounds the leftover carried between scans.
const resyncChunk = 512

// readFull fills p, draining bytes fetched-but-unconsumed by a resync
// scan before touching the underlying reader. Like io.ReadFull it
// returns io.EOF only when no byte of p was read.
func (r *Reader) readFull(p []byte) (int, error) {
	n := 0
	if len(r.leftover) > 0 {
		c := copy(p, r.leftover)
		r.leftover = r.leftover[c:]
		n += c
		if n == len(p) {
			return n, nil
		}
	}
	m, err := io.ReadFull(r.r, p[n:])
	if err == io.EOF && n > 0 {
		// p began with leftover bytes, so a clean underlying EOF is
		// still a truncated read of p.
		err = io.ErrUnexpectedEOF
	}
	return n + m, err
}

// resync slides a 12-byte window — seeded with the implausible header's
// own bytes, so the scan effectively restarts one byte past the failed
// record's start — until the window holds a plausible record header,
// which it leaves pending for the next read. It reports false when the
// stream ends first. The seed header is never plausible (that is what
// triggered the resync), so each call consumes at least one byte and a
// lenient Reader always terminates.
//
// The scan reads the stream in reused resyncChunk-sized chunks rather
// than byte-at-a-time; bytes fetched past the recovered header are
// parked in r.leftover for readFull to drain, so nothing is lost and
// nothing is reallocated however long the damage runs.
func (r *Reader) resync(window [12]byte) bool {
	if r.scan == nil {
		r.scan = make([]byte, resyncChunk)
	}
	for {
		var chunk []byte
		if len(r.leftover) > 0 {
			// A previous resync over-read and the record it recovered
			// failed too; scan those fetched bytes first.
			chunk = r.leftover
			r.leftover = nil
		} else {
			n, err := r.r.Read(r.scan)
			if n == 0 {
				if err == nil {
					continue
				}
				return false
			}
			chunk = r.scan[:n]
		}
		for i := 0; i < len(chunk); i++ {
			r.off++
			copy(window[:], window[1:])
			window[11] = chunk[i]
			if plausibleHeader(window) {
				r.pending = window
				r.hasPending = true
				// Park the unscanned remainder (possibly aliasing
				// leftoverArr already; copy is overlap-safe).
				rest := chunk[i+1:]
				r.leftover = r.leftoverArr[:copy(r.leftoverArr[:], rest)]
				return true
			}
		}
	}
}

func decodePeerIndexTable(ts time.Time, b []byte) (*PeerIndexTable, error) {
	p := &PeerIndexTable{}
	if err := decodePeerIndexTableInto(ts, b, p, false); err != nil {
		return nil, err
	}
	return p, nil
}

// decodePeerIndexTableInto decodes into p. With reuse set, p's peer
// slice capacity is recycled in place.
func decodePeerIndexTableInto(ts time.Time, b []byte, p *PeerIndexTable, reuse bool) error {
	if len(b) < 8 {
		return ErrTruncated
	}
	peers := p.Peers[:0]
	if !reuse {
		peers = nil
	}
	*p = PeerIndexTable{When: ts, CollectorID: netx.Addr(binary.BigEndian.Uint32(b))}
	nameLen := int(binary.BigEndian.Uint16(b[4:]))
	if len(b) < 8+nameLen {
		return ErrTruncated
	}
	p.ViewName = string(b[6 : 6+nameLen])
	count := int(binary.BigEndian.Uint16(b[6+nameLen:]))
	b = b[8+nameLen:]
	for i := 0; i < count; i++ {
		if len(b) < 1 {
			return ErrTruncated
		}
		ptype := b[0]
		if ptype&0x01 != 0 {
			return fmt.Errorf("mrt: IPv6 peers unsupported")
		}
		asLen := 2
		if ptype&0x02 != 0 {
			asLen = 4
		}
		need := 1 + 4 + 4 + asLen
		if len(b) < need {
			return ErrTruncated
		}
		peer := Peer{
			BGPID: netx.Addr(binary.BigEndian.Uint32(b[1:])),
			Addr:  netx.Addr(binary.BigEndian.Uint32(b[5:])),
		}
		if asLen == 4 {
			peer.AS = bgp.ASN(binary.BigEndian.Uint32(b[9:]))
		} else {
			peer.AS = bgp.ASN(binary.BigEndian.Uint16(b[9:]))
		}
		peers = append(peers, peer)
		b = b[need:]
	}
	if len(b) != 0 {
		return fmt.Errorf("mrt: %d trailing bytes in peer index table", len(b))
	}
	p.Peers = peers
	return nil
}

func decodeRIBPrefix(ts time.Time, b []byte) (*RIBPrefix, error) {
	r := &RIBPrefix{}
	if err := decodeRIBPrefixInto(ts, b, r, false); err != nil {
		return nil, err
	}
	return r, nil
}

// decodeRIBPrefixInto decodes into r. With reuse set, r's entry slice
// is recycled slot by slot: each incoming entry re-decodes into the
// attribute storage (path segments, ASN slices, communities) parked in
// its slot by the previous record.
func decodeRIBPrefixInto(ts time.Time, b []byte, r *RIBPrefix, reuse bool) error {
	if len(b) < 5 {
		return ErrTruncated
	}
	entries := r.Entries[:0]
	if !reuse {
		entries = nil
	}
	*r = RIBPrefix{When: ts, Sequence: binary.BigEndian.Uint32(b)}
	bits := int(b[4])
	if bits > 32 {
		return fmt.Errorf("mrt: prefix length %d", bits)
	}
	n := (bits + 7) / 8
	if len(b) < 5+n+2 {
		return ErrTruncated
	}
	var a uint32
	for i := 0; i < n; i++ {
		a |= uint32(b[5+i]) << (24 - 8*uint(i))
	}
	r.Prefix = netx.PrefixFrom(netx.Addr(a), bits)
	count := int(binary.BigEndian.Uint16(b[5+n:]))
	b = b[7+n:]
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return ErrTruncated
		}
		var e RIBEntry
		if k := len(entries); k < cap(entries) {
			e = entries[:k+1][k] // recycle the slot's attribute storage
		}
		e.PeerIndex = binary.BigEndian.Uint16(b)
		e.OriginatedTime = time.Unix(int64(binary.BigEndian.Uint32(b[2:])), 0).UTC()
		attrLen := int(binary.BigEndian.Uint16(b[6:]))
		if len(b) < 8+attrLen {
			return ErrTruncated
		}
		var err error
		if reuse {
			err = bgp.DecodeAttrsReuse(b[8:8+attrLen], &e.Attrs)
		} else {
			e.Attrs = bgp.Attrs{}
			err = bgp.DecodeAttrs(b[8:8+attrLen], &e.Attrs)
		}
		if err != nil {
			return err
		}
		entries = append(entries, e)
		b = b[8+attrLen:]
	}
	if len(b) != 0 {
		return fmt.Errorf("mrt: %d trailing bytes in RIB record", len(b))
	}
	r.Entries = entries
	return nil
}

func decodeBGP4MP(ts time.Time, b []byte) (*BGP4MPMessage, error) {
	m := &BGP4MPMessage{}
	if err := decodeBGP4MPInto(ts, b, m, nil); err != nil {
		return nil, err
	}
	return m, nil
}

// decodeBGP4MPInto decodes into m. A non-nil upd enables reuse mode:
// the UPDATE decodes into upd, recycling its slice storage.
func decodeBGP4MPInto(ts time.Time, b []byte, m *BGP4MPMessage, upd *bgp.Update) error {
	if len(b) < 20 {
		return ErrTruncated
	}
	afi := binary.BigEndian.Uint16(b[10:])
	if afi != afiIPv4 {
		return fmt.Errorf("mrt: AFI %d unsupported", afi)
	}
	*m = BGP4MPMessage{
		When:      ts,
		PeerAS:    bgp.ASN(binary.BigEndian.Uint32(b)),
		LocalAS:   bgp.ASN(binary.BigEndian.Uint32(b[4:])),
		Interface: binary.BigEndian.Uint16(b[8:]),
		PeerAddr:  netx.Addr(binary.BigEndian.Uint32(b[12:])),
		LocalAddr: netx.Addr(binary.BigEndian.Uint32(b[16:])),
	}
	if upd != nil {
		if err := bgp.DecodeUpdateInto(b[20:], upd); err != nil {
			return err
		}
		m.Update = upd
		return nil
	}
	u, err := bgp.DecodeUpdate(b[20:])
	if err != nil {
		return err
	}
	m.Update = u
	return nil
}

// ReadAll drains r, returning every record decoded before the stream
// ended. Its contract is partial-result: on error the returned slice
// still holds every record successfully parsed up to that point, so a
// caller hitting a truncated archive keeps the good prefix — check the
// slice even when err != nil. Options are forwarded to the underlying
// Reader; with Lenient() the error can only be a skip-budget overrun.
func ReadAll(r io.Reader, opts ...Option) ([]Record, error) {
	return AppendRecords(nil, r, opts...)
}

// AppendRecords drains r, appending every decoded record to dst and
// returning the extended slice. Like ReadAll its contract is
// partial-result: on error the returned slice still ends with every
// record parsed so far. Because the records are retained, do not pass
// the ReuseRecords option here.
func AppendRecords(dst []Record, r io.Reader, opts ...Option) ([]Record, error) {
	mr := NewReader(r, opts...)
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
		dst = append(dst, rec)
	}
}
