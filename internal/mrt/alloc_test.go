package mrt

import (
	"bytes"
	"io"
	"testing"
)

// TestReaderNextReuseAllocs pins the reuse-mode decode loop at zero
// steady-state allocations per record: the record buffer, the pooled
// decode scratch, and every slice inside the decoded records are
// recycled between Next calls. A regression here silently reintroduces
// the per-record garbage this mode exists to avoid.
func TestReaderNextReuseAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(samplePeerIndex()); err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for i := 0; i < n; i++ {
		if err := w.Write(sampleRIB()); err != nil {
			t.Fatal(err)
		}
		if err := w.Write(sampleBGP4MP()); err != nil {
			t.Fatal(err)
		}
	}

	r := NewReader(bytes.NewReader(buf.Bytes()), ReuseRecords())
	defer r.Release()
	// Warm up: the first records size the body buffer and the reused
	// entry/prefix/path slices.
	for i := 0; i < 100; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			t.Fatal("nil record")
		}
	})
	if avg != 0 {
		t.Fatalf("Reader.Next in reuse mode allocates %.2f objects/record; want 0", avg)
	}
	// Drain to prove the stream was still well-formed end to end.
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
}
