package scenario

import (
	"testing"

	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/rpki"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
)

// genWorld memoizes one default world across the package's tests;
// generation takes a couple of seconds.
var worldCache *World

func genWorld(t *testing.T) *World {
	t.Helper()
	if worldCache == nil {
		w, err := Generate(DefaultParams())
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		worldCache = w
	}
	return worldCache
}

func TestListingPopulationCounts(t *testing.T) {
	w := genWorld(t)
	p := w.Params
	if got := len(w.Truth.Listings); got != p.TotalListings {
		t.Errorf("listings = %d, want %d", got, p.TotalListings)
	}

	var incident, ua, hj, ss, ks, mh, nr, withRecord int
	for _, lt := range w.Truth.Listings {
		if lt.Incident {
			incident++
		}
		has := func(c sbl.Category) bool {
			for _, got := range lt.Categories {
				if got == c {
					return true
				}
			}
			return false
		}
		if has(sbl.Unallocated) {
			ua++
		}
		if has(sbl.Hijacked) {
			hj++
		}
		if has(sbl.Snowshoe) {
			ss++
		}
		if has(sbl.KnownSpam) {
			ks++
		}
		if has(sbl.MaliciousHosting) {
			mh++
		}
		if has(sbl.NoRecord) {
			nr++
		} else {
			withRecord++
		}
	}
	if incident != p.IncidentListings {
		t.Errorf("incident = %d", incident)
	}
	if ua != p.UnallocListings {
		t.Errorf("unallocated = %d", ua)
	}
	if hj != p.HijackListings {
		t.Errorf("hijacked = %d, want %d", hj, p.HijackListings)
	}
	if ss != p.SnowshoeListings {
		t.Errorf("snowshoe = %d, want %d", ss, p.SnowshoeListings)
	}
	if ks != p.KnownSpamListings {
		t.Errorf("known-spam = %d, want %d", ks, p.KnownSpamListings)
	}
	if mh != p.MalHostListings {
		t.Errorf("malicious-hosting = %d, want %d", mh, p.MalHostListings)
	}
	if withRecord != 526 {
		t.Errorf("with SBL record = %d, want 526", withRecord)
	}
	if nr != 186 {
		t.Errorf("no-record = %d, want 186", nr)
	}
}

func TestDROPArchiveMatchesTruth(t *testing.T) {
	w := genWorld(t)
	listings := w.DROP.Listings()
	if len(listings) != len(w.Truth.Listings) {
		t.Fatalf("archive listings = %d, truth = %d", len(listings), len(w.Truth.Listings))
	}
	truthByPrefix := make(map[netx.Prefix]*ListingTruth)
	for _, lt := range w.Truth.Listings {
		truthByPrefix[lt.Prefix] = lt
	}
	for _, l := range listings {
		lt, ok := truthByPrefix[l.Prefix]
		if !ok {
			t.Errorf("archive has unexpected prefix %v", l.Prefix)
			continue
		}
		if l.Added != lt.Added {
			t.Errorf("%v added %v != truth %v", l.Prefix, l.Added, lt.Added)
		}
		if l.HasRemoved != lt.HasRemoved {
			t.Errorf("%v removal mismatch", l.Prefix)
		}
	}
}

func TestSBLRecordsDeletedForRemoved(t *testing.T) {
	w := genWorld(t)
	for _, lt := range w.Truth.Listings {
		_, ok := w.SBL.Get(lt.SBLRef)
		if lt.HasRemoved && ok {
			t.Errorf("%v removed but SBL record still present", lt.Prefix)
		}
		if !lt.HasRemoved && !ok {
			t.Errorf("%v present but SBL record missing", lt.Prefix)
		}
	}
}

func TestMRTStreamsLoadIntoRIB(t *testing.T) {
	w := genWorld(t)
	if len(w.MRT) != w.Params.Collectors {
		t.Fatalf("collector streams = %d", len(w.MRT))
	}
	ix := rib.NewIndex()
	for name, recs := range w.MRT {
		if err := ix.Load(name, recs); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
	}
	ix.Close(w.Params.Window.Last)
	if got := len(ix.Peers()); got != w.Params.Collectors*w.Params.PeersPerCollector {
		t.Errorf("peers = %d", got)
	}
	// The case-study prefix must be visible and RPKI-valid during hijack.
	cs := w.Truth.CaseStudy
	if !ix.Observed(cs.Prefix, cs.HijackDay+5) {
		t.Error("case-study hijack not observed")
	}
	if o, ok := ix.OriginAt(cs.Prefix, cs.HijackDay+5); !ok || o != cs.OwnerAS {
		t.Errorf("case-study origin = %v, %v", o, ok)
	}
	path, ok := ix.PathAt(cs.Prefix, cs.HijackDay+5)
	if !ok || !path.Contains(cs.HijackVia) {
		t.Errorf("case-study path = %v", path)
	}
}

func TestCaseStudyRPKIValidHijack(t *testing.T) {
	w := genWorld(t)
	cs := w.Truth.CaseStudy
	v := w.RPKI.ValidateAt(cs.Prefix, cs.OwnerAS, cs.HijackDay+5, nil)
	if v.String() != "valid" {
		t.Errorf("hijack announcement validity = %v, want valid", v)
	}
}

func TestUnallocatedListingsAreUnallocated(t *testing.T) {
	w := genWorld(t)
	for _, lt := range w.Truth.Listings {
		isUA := false
		for _, c := range lt.Categories {
			if c == sbl.Unallocated {
				isUA = true
			}
		}
		if isUA && w.RIR.AllocatedAt(lt.Prefix, lt.Added) {
			t.Errorf("%v listed as unallocated but allocated at %v", lt.Prefix, lt.Added)
		}
		if !isUA && !lt.HasRemoved && !w.RIR.AllocatedAt(lt.Prefix, lt.Added) {
			// Every non-UA listing must be inside allocated space when
			// listed (removed ones may be deallocated later, not before).
			t.Errorf("%v should be allocated at listing", lt.Prefix)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := DefaultParams()
	p.Scale = 512 // keep this test fast
	w1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Truth.Listings) != len(w2.Truth.Listings) {
		t.Fatal("listing counts differ across runs")
	}
	for i := range w1.Truth.Listings {
		a, b := w1.Truth.Listings[i], w2.Truth.Listings[i]
		if a.Prefix != b.Prefix || a.Added != b.Added || a.SBLRef != b.SBLRef {
			t.Fatalf("listing %d differs: %+v vs %+v", i, a, b)
		}
	}
	if w1.Truth.BackgroundN != w2.Truth.BackgroundN {
		t.Error("background counts differ")
	}
}

func TestWithdrawalRatesByCategory(t *testing.T) {
	w := genWorld(t)
	var hjN, hjW, uaN, uaW int
	for _, lt := range w.Truth.Listings {
		for _, c := range lt.Categories {
			switch c {
			case sbl.Hijacked:
				if !lt.Incident {
					hjN++
					if lt.HasWithdrawn {
						hjW++
					}
				}
			case sbl.Unallocated:
				uaN++
				if lt.HasWithdrawn {
					uaW++
				}
			}
		}
	}
	hjRate := float64(hjW) / float64(hjN)
	uaRate := float64(uaW) / float64(uaN)
	if hjRate < 0.55 || hjRate > 0.85 {
		t.Errorf("hijack withdrawal rate = %.3f, want ≈0.707", hjRate)
	}
	if uaRate < 0.38 || uaRate > 0.72 {
		t.Errorf("unallocated withdrawal rate = %.3f, want ≈0.548", uaRate)
	}
}

func TestAS0PolicyROAs(t *testing.T) {
	w := genWorld(t)
	p := w.Params
	// Before the APNIC policy date there are no AS0-TAL ROAs; after, the
	// remaining APNIC pool blocks are covered.
	before := w.RPKI.LiveAt(p.APNICAS0Day-1, []rpki.TrustAnchor{rpki.TAAPNICAS0})
	after := w.RPKI.LiveAt(p.APNICAS0Day+1, []rpki.TrustAnchor{rpki.TAAPNICAS0})
	if len(before) != 0 {
		t.Errorf("AS0 ROAs before policy = %d", len(before))
	}
	if len(after) == 0 {
		t.Error("no AS0 ROAs after policy date")
	}
}

func TestIRRJournalSane(t *testing.T) {
	w := genWorld(t)
	if w.IRR.Len() == 0 {
		t.Fatal("empty IRR journal")
	}
	// The 7-day-pre-listing coverage should land near 31.7%.
	covered := 0
	for _, lt := range w.Truth.Listings {
		rs := w.IRR.RoutesAt(lt.Prefix, lt.Added-1)
		if len(rs) > 0 {
			covered++
		}
	}
	frac := float64(covered) / float64(len(w.Truth.Listings))
	if frac < 0.24 || frac > 0.42 {
		t.Errorf("IRR coverage fraction = %.3f, want ≈0.317", frac)
	}
}

func TestTimexWindowEndpoints(t *testing.T) {
	p := DefaultParams()
	if p.Window.First != timex.MustParseDay("2019-06-05") || p.Window.Last != timex.MustParseDay("2022-03-30") {
		t.Errorf("window = %v", p.Window)
	}
	if p.Window.Days() != 1030 {
		t.Errorf("window days = %d", p.Window.Days())
	}
}

// TestMultiSeedRobustness generates small worlds under several seeds and
// checks that the paper-pinned invariants hold for each — guarding
// against calibration that only works for the default seed.
func TestMultiSeedRobustness(t *testing.T) {
	for seed := int64(2); seed <= 4; seed++ {
		p := DefaultParams()
		p.Seed = seed
		p.Scale = 512
		w, err := Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := len(w.Truth.Listings); got != p.TotalListings {
			t.Errorf("seed %d: listings = %d", seed, got)
		}
		if got := len(w.DROP.Listings()); got != p.TotalListings {
			t.Errorf("seed %d: archive listings = %d", seed, got)
		}
		// The case study must exist and be RPKI-valid under every seed.
		cs := w.Truth.CaseStudy
		if v := w.RPKI.ValidateAt(cs.Prefix, cs.OwnerAS, cs.HijackDay+5, nil); v.String() != "valid" {
			t.Errorf("seed %d: case-study validity = %v", seed, v)
		}
		// Withdrawal-rate calibration within loose bounds.
		var hjN, hjW int
		for _, lt := range w.Truth.Listings {
			for _, c := range lt.Categories {
				if c == sbl.Hijacked && !lt.Incident {
					hjN++
					if lt.HasWithdrawn {
						hjW++
					}
				}
			}
		}
		if rate := float64(hjW) / float64(hjN); rate < 0.5 || rate > 0.9 {
			t.Errorf("seed %d: hijack withdrawal rate = %.3f", seed, rate)
		}
	}
}
