package scenario

import (
	"fmt"

	"dropscope/internal/bgp"
	"dropscope/internal/irr"
	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/routeviews"
	"dropscope/internal/rpki"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
)

// presentQuota and removedQuota are consumed across the labeled and
// removed populations; they reproduce Table 1's per-RIR row counts. The
// three Figure-4 siblings take three LACNIC present slots up front and
// the operator-AS0 case takes one LACNIC removed slot, so the quotas here
// are the paper counts minus those.
func (g *gen) presentDeck() *rirDeck {
	return g.newDeck(map[string]int{
		"afrinic": g.p.PresentByRIR["afrinic"],
		"apnic":   g.p.PresentByRIR["apnic"],
		"arin":    g.p.PresentByRIR["arin"],
		"lacnic":  g.p.PresentByRIR["lacnic"] - 3, // 3 siblings placed already
		"ripencc": g.p.PresentByRIR["ripencc"],
	})
}

func (g *gen) removedDeck() *rirDeck {
	return g.newDeck(g.p.RemovedByRIR)
}

// buildHijackNamed creates the 130 hijacked listings whose SBL record
// names the hijacking ASN, including the 57 with fraudulent IRR route
// objects (§5) and the 2 pre-listing attacker-controlled ROAs (§6.1).
func (g *gen) buildHijackNamed() error {
	g.deckPresent = g.presentDeck()
	g.deckRemoved = g.removedDeck()
	g.presentSign = g.newQuotaSamplers(g.p.PresentByRIR, g.p.PresentSignRate)
	g.removedSign = g.newQuotaSamplers(g.p.RemovedByRIR, g.p.RemovedSignRate)

	n := g.p.HijackNamedASN         // 130
	withIRR := g.p.HijackIRRWithASN // 57

	// The 13 distinct hijacker ASNs that appear in route objects: 5
	// defunct ASes (used by the AS50509-linked org) + 8 attacker ASes.
	objASNs := make([]bgp.ASN, 0, 13)
	objASNs = append(objASNs, g.defunctAS[:5]...)
	objASNs = append(objASNs, g.attackerAS[2:10]...)

	// ORG-ID plan for the 57: the first 15 belong to ORG-HJ1 (announced
	// via AS50509 with defunct origins), the next 18 to ORG-HJ2, the next
	// 16 to ORG-HJ3 (49 across 3 orgs); the last 8 get unique org ids.
	orgOf := func(i int) string {
		switch {
		case i < 15:
			return "ORG-HJ1"
		case i < 33:
			return "ORG-HJ2"
		case i < 49:
			return "ORG-HJ3"
		default:
			return fmt.Sprintf("ORG-HX%d", i)
		}
	}

	for i := 0; i < n; i++ {
		bits := g.pickBits([][2]int{{16, 40}, {17, 50}, {18, 40}})
		preSigned := i >= n-2 // the last two are the attacker-ROA cases
		var rir rirstats.RIR
		var err error
		if preSigned {
			rir = rirstats.RIPE
		} else {
			rir, err = g.deckPresent.deal()
			if err != nil {
				return err
			}
		}
		p, err := g.allocate(rir, bits, g.p.Window.First-timex.Day(1000+g.rng.Intn(4000)))
		if err != nil {
			return err
		}
		listed := g.day(g.p.Window.First+30, g.p.Window.Last-40)

		lt := &ListingTruth{
			Prefix: p, Categories: []sbl.Category{sbl.Hijacked},
			RIR: rir, Added: listed, PreSigned: preSigned,
		}

		var tail []bgp.ASN
		var namedASN bgp.ASN
		hasIRR := i < withIRR
		if hasIRR && i < 15 {
			// ORG-HJ1: defunct origin injected via AS50509.
			namedASN = objASNs[i%5]
			tail = []bgp.ASN{asHijackVia, namedASN}
		} else if hasIRR {
			namedASN = objASNs[5+(i-15)%8]
			tail = []bgp.ASN{namedASN}
		} else {
			namedASN = g.attackerAS[10+g.rng.Intn(10)]
			tail = []bgp.ASN{namedASN}
		}
		lt.NamedASN = namedASN

		// Announcement: shortly before listing. For the 57 IRR cases the
		// announcement follows the route-object creation within a week
		// (Figure 3), except two stragglers who created the object more
		// than a year after announcing.
		announce := listed - timex.Day(5+g.rng.Intn(21))
		if hasIRR {
			late := i == 20 || i == 40 // the HijackIRRLatePair
			var created timex.Day
			if late {
				// The stragglers announced over a year before registering
				// the object; pin their listing late enough that the whole
				// sequence stays inside the observation window.
				listed = g.day(g.p.Window.First+650, g.p.Window.Last-40)
				lt.Added = listed
				announce = listed - timex.Day(420+g.rng.Intn(100))
				created = announce + timex.Day(380+g.rng.Intn(30))
			} else {
				created = announce - timex.Day(g.rng.Intn(7)+1)
			}
			obj := irr.Route{
				Prefix: p, Origin: namedASN, Descr: "customer network",
				MntBy: "MAINT-" + orgOf(i), OrgID: orgOf(i), Source: "RADB",
				Created: created, HasDate: true,
			}.Object()
			g.irrEvents = append(g.irrEvents, irrEv{day: created, obj: obj})
			// RADb cleanup: most fraudulent objects are removed within a
			// month after the prefix appears on DROP (§5's 43%).
			if g.chance(0.80) {
				g.irrEvents = append(g.irrEvents, irrEv{day: listed + timex.Day(3+g.rng.Intn(27)), del: true, obj: obj})
			}
			lt.HasIRR, lt.IRRCreated, lt.IRRHijackASN = true, created, true

			// Five of the 57 targets also had a stale pre-existing entry.
			if i < 5 {
				old := irr.Route{
					Prefix: p, Origin: g.operatorAS[i], Descr: "legacy network",
					MntBy: "MAINT-LEGACY", OrgID: fmt.Sprintf("ORG-LEG%d", i), Source: "RADB",
					Created: g.p.Window.First - 2000, HasDate: true,
				}.Object()
				g.irrEvents = append(g.irrEvents, irrEv{day: g.p.Window.First - 2000, obj: old})
			}
		} else if i < withIRR+29 {
			// 29 named hijacks have a route object with a different,
			// unrelated ASN (an old legitimate object).
			created := g.p.Window.First - timex.Day(500+g.rng.Intn(1500))
			g.irrEvents = append(g.irrEvents, irrEv{day: created, obj: irr.Route{
				Prefix: p, Origin: g.operatorAS[g.rng.Intn(len(g.operatorAS))],
				Descr: "legacy assignment", MntBy: "MAINT-OLD", Source: "RADB",
				Created: created, HasDate: true,
			}.Object()})
			lt.HasIRR, lt.IRRCreated = true, created
		}

		wd, hasWd := g.announceWindowed(p, tail, announce, listed, g.p.WithdrawHijack)
		lt.AnnouncedDay, lt.WithdrawnDay, lt.HasWithdrawn = announce, wd, hasWd

		// A few hijacks target space the owner still announces — the
		// multiple-origin-AS (MOAS) conflict pattern detectors alarm on.
		if i >= 57 && i < 60 {
			owner := g.operatorAS[100+i]
			g.bgpEvents = append(g.bgpEvents, routeviews.Event{
				Day: g.p.Window.First - timex.Day(200+g.rng.Intn(100)), Prefix: p, Tail: []bgp.ASN{owner},
			})
		}

		// The two pre-signed hijacks: the attacker controls the ROA and
		// re-signs it whenever the BGP origin changes (§6.1).
		if preSigned {
			firstROA := rpki.ROA{Prefix: p, MaxLength: p.Bits(), ASN: g.attackerAS[20], TA: taOf(rir)}
			g.roaEvents = append(g.roaEvents, roaEv{day: announce - 600, roa: firstROA})
			g.roaEvents = append(g.roaEvents, roaEv{day: announce - 100, revoke: true, roa: firstROA})
			g.roaEvents = append(g.roaEvents, roaEv{day: announce - 100, roa: rpki.ROA{
				Prefix: p, MaxLength: p.Bits(), ASN: namedASN, TA: taOf(rir),
			}})
		}

		// SBL text: 5 of the named hijacks are dual-labeled snowshoe.
		ref := g.newSBLRef()
		lt.SBLRef = ref
		text := fmt.Sprintf("Hijacked netblock %s on Stolen AS%d; illegal announcement.", p, uint32(namedASN))
		if i >= 50 && i < 55 {
			text = fmt.Sprintf("Snowshoe IP block on Stolen AS%d; hijacked range %s.", uint32(namedASN), p)
			lt.Categories = append(lt.Categories, sbl.Snowshoe)
		}
		g.w.SBL.Put(sbl.Record{ID: ref, Text: text})
		g.addDrop(p, ref, listed, 0, false)
		g.w.Truth.Listings = append(g.w.Truth.Listings, lt)
	}
	return nil
}

// buildOtherLabeled creates the snowshoe, known-spam, and malicious-
// hosting listings that remain on DROP.
func (g *gen) buildOtherLabeled() error {
	type group struct {
		n         int
		preSigned int
		cats      []sbl.Category
		sizes     [][2]int
		textFn    func(p netx.Prefix, asn bgp.ASN) string
	}
	groups := []group{
		{
			n: 205, preSigned: 23, cats: []sbl.Category{sbl.Snowshoe},
			sizes: [][2]int{{18, 60}, {19, 100}, {20, 45}},
			textFn: func(p netx.Prefix, _ bgp.ASN) string {
				return fmt.Sprintf("Snowshoe spam range %s used for high volume emission from many addresses.", p)
			},
		},
		{
			n: 10, preSigned: 0, cats: []sbl.Category{sbl.Snowshoe, sbl.KnownSpam},
			sizes: [][2]int{{19, 1}},
			textFn: func(p netx.Prefix, _ bgp.ASN) string {
				return fmt.Sprintf("Register Of Known Spam Operations: snowshoe range %s.", p)
			},
		},
		{
			n: 32, preSigned: 5, cats: []sbl.Category{sbl.KnownSpam},
			sizes: [][2]int{{19, 1}},
			textFn: func(p netx.Prefix, _ bgp.ASN) string {
				return fmt.Sprintf("Register Of Known Spam Operations: %s under control of a spam operation.", p)
			},
		},
		{
			n: 60, preSigned: 12, cats: []sbl.Category{sbl.MaliciousHosting},
			sizes: [][2]int{{18, 30}, {19, 30}},
			textFn: func(p netx.Prefix, asn bgp.ASN) string {
				return fmt.Sprintf("AS%d spammer hosting: bulletproof hosting at %s ignoring abuse complaints.", uint32(asn), p)
			},
		},
	}

	for _, grp := range groups {
		for i := 0; i < grp.n; i++ {
			preSigned := i < grp.preSigned
			var rir rirstats.RIR
			var err error
			if preSigned {
				// Pre-signed listings are outside Table 1's rows; deal
				// them proportionally to the overall population.
				rir = rirstats.AllRIRs[g.rng.Intn(len(rirstats.AllRIRs))]
			} else {
				rir, err = g.deckPresent.deal()
				if err != nil {
					return err
				}
			}
			allocDay := g.p.Window.First - timex.Day(500+g.rng.Intn(3000))
			p, err := g.allocate(rir, g.pickBits(grp.sizes), allocDay)
			if err != nil {
				return err
			}
			origin := g.operatorAS[g.rng.Intn(len(g.operatorAS))]
			listed := g.day(g.p.Window.First+20, g.p.Window.Last-30)
			announce := listed - timex.Day(60+g.rng.Intn(400))
			wd, hasWd := g.announceWindowed(p, []bgp.ASN{origin}, announce, listed, g.p.WithdrawOther)

			lt := &ListingTruth{
				Prefix: p, Categories: grp.cats, RIR: rir, Added: listed,
				AnnouncedDay: announce, WithdrawnDay: wd, HasWithdrawn: hasWd,
				PreSigned: preSigned,
			}

			if preSigned {
				g.roaEvents = append(g.roaEvents, roaEv{day: announce - timex.Day(g.rng.Intn(300)), roa: rpki.ROA{
					Prefix: p, MaxLength: p.Bits(), ASN: origin, TA: taOf(rir),
				}})
			} else if g.presentSign[rir].sample() {
				// Table 1: still-on-DROP prefixes sign at a low rate.
				signDay := g.day(listed+30, g.p.Window.Last)
				g.roaEvents = append(g.roaEvents, roaEv{day: signDay, roa: rpki.ROA{
					Prefix: p, MaxLength: p.Bits(), ASN: origin, TA: taOf(rir),
				}})
				lt.SignedAfter = true
			}

			// Some operators hold legitimate IRR objects; a slice of them
			// created within the month before listing contributes to §5's
			// 31.7% / 32% numbers.
			switch r := g.rng.Float64(); {
			case r < 0.13:
				created := listed - timex.Day(1+g.rng.Intn(28))
				g.irrEvents = append(g.irrEvents, irrEv{day: created, obj: irr.Route{
					Prefix: p, Origin: origin, Descr: "hosting network", MntBy: "MAINT-H",
					Source: "RADB", Created: created, HasDate: true,
				}.Object()})
				lt.HasIRR, lt.IRRCreated = true, created
			case r < 0.26:
				created := g.p.Window.First - timex.Day(100+g.rng.Intn(900))
				obj := irr.Route{
					Prefix: p, Origin: origin, Descr: "service network", MntBy: "MAINT-S",
					Source: "RADB", Created: created, HasDate: true,
				}.Object()
				g.irrEvents = append(g.irrEvents, irrEv{day: created, obj: obj})
				if g.chance(0.3) {
					g.irrEvents = append(g.irrEvents, irrEv{day: listed + timex.Day(2+g.rng.Intn(28)), del: true, obj: obj})
				}
				lt.HasIRR, lt.IRRCreated = true, created
			}

			// §4.1: malicious-hosting space gets deallocated by RIRs.
			if grp.cats[0] == sbl.MaliciousHosting && g.chance(g.p.MalHostDeallocSpace) {
				deallocDay := listed + timex.Day(30+g.rng.Intn(270))
				if deallocDay < g.p.Window.Last {
					g.rirStatus = append(g.rirStatus, statusEv{deallocDay, p, rirstats.Available})
					g.bgpEvents = append(g.bgpEvents, routeviews.Event{Day: deallocDay, Prefix: p, Tail: []bgp.ASN{origin}, Withdraw: true})
					lt.Deallocated = true
				}
			}

			ref := g.newSBLRef()
			lt.SBLRef = ref
			g.w.SBL.Put(sbl.Record{ID: ref, Text: grp.textFn(p, origin)})
			g.addDrop(p, ref, listed, 0, false)
			g.w.Truth.Listings = append(g.w.Truth.Listings, lt)
		}
	}
	return nil
}

// buildRemoved creates the 185 listings Spamhaus removes before window
// end; their SBL records are deleted, so the analysis sees them as "No
// SBL Record" (Fig 1's NR category). Table 1's removed rows and §4.2's
// post-removal signing behavior are produced here.
func (g *gen) buildRemoved() error {
	// Hidden ground-truth categories.
	truthCats := make([][]sbl.Category, 0, 185)
	for i := 0; i < 60; i++ {
		truthCats = append(truthCats, []sbl.Category{sbl.Hijacked})
	}
	for i := 0; i < 69; i++ {
		truthCats = append(truthCats, []sbl.Category{sbl.Snowshoe})
	}
	for i := 0; i < 35; i++ {
		truthCats = append(truthCats, []sbl.Category{sbl.MaliciousHosting})
	}
	for i := 0; i < 21; i++ {
		truthCats = append(truthCats, []sbl.Category{sbl.KnownSpam})
	}

	for i, cats := range truthCats {
		rir, err := g.deckRemoved.deal()
		if err != nil {
			return err
		}
		p, err := g.allocate(rir, g.pickBits([][2]int{{17, 60}, {19, 70}, {18, 55}}), g.p.Window.First-timex.Day(800+g.rng.Intn(3000)))
		if err != nil {
			return err
		}
		listed := g.day(g.p.Window.First+20, g.p.Window.Last-120)
		removed := listed + timex.Day(60+g.rng.Intn(300))
		if removed > g.p.Window.Last-7 {
			removed = g.p.Window.Last - 7
		}

		hijack := cats[0] == sbl.Hijacked
		var origin bgp.ASN
		if hijack {
			origin = g.attackerAS[g.rng.Intn(len(g.attackerAS))]
		} else {
			origin = g.operatorAS[g.rng.Intn(len(g.operatorAS))]
		}

		lt := &ListingTruth{
			Prefix: p, Categories: []sbl.Category{sbl.NoRecord}, TruthCats: cats,
			RIR: rir, Added: listed, Removed: removed, HasRemoved: true,
		}

		// §4.2: ~11% of removed+signed prefixes were unrouted at listing
		// time; produce a share of removed listings never routed in the
		// window.
		unroutedAtListing := i%9 == 0
		var announce timex.Day
		if !unroutedAtListing {
			announce = listed - timex.Day(30+g.rng.Intn(200))
			wd, hasWd := g.announceWindowed(p, []bgp.ASN{origin}, announce, listed, g.p.WithdrawOther)
			lt.AnnouncedDay, lt.WithdrawnDay, lt.HasWithdrawn = announce, wd, hasWd
		}

		// Table 1 removed-row signing: remediation-driven RPKI adoption.
		if g.removedSign[rir].sample() {
			signASN := g.operatorAS[g.rng.Intn(len(g.operatorAS))] // the reclaiming owner
			if !unroutedAtListing && !g.chance(g.p.SignDifferentASN/(g.p.SignDifferentASN+0.063)) {
				signASN = origin // occasionally the listing-time origin signs
			}
			signDay := removed - timex.Day(g.rng.Intn(45))
			g.roaEvents = append(g.roaEvents, roaEv{day: signDay, roa: rpki.ROA{
				Prefix: p, MaxLength: p.Bits(), ASN: signASN, TA: taOf(rir),
			}})
			lt.SignedAfter = true
		}

		// §4.1: 8.8% of removed prefixes were deallocated; half were
		// removed from DROP within a week of the deallocation.
		if g.chance(g.p.RemovedDealloc) {
			var deallocDay timex.Day
			if g.chance(0.5) {
				deallocDay = removed - timex.Day(g.rng.Intn(7))
			} else {
				deallocDay = removed - timex.Day(8+g.rng.Intn(50))
			}
			if deallocDay > listed {
				g.rirStatus = append(g.rirStatus, statusEv{deallocDay, p, rirstats.Available})
				lt.Deallocated = true
			}
		}

		// Some removed prefixes also carried route objects pre-listing,
		// filling out §5's coverage.
		if g.chance(0.25) {
			created := listed - timex.Day(1+g.rng.Intn(180))
			obj := irr.Route{
				Prefix: p, Origin: origin, Descr: "network", MntBy: "MAINT-R",
				Source: "RADB", Created: created, HasDate: true,
			}.Object()
			g.irrEvents = append(g.irrEvents, irrEv{day: created, obj: obj})
			if g.chance(0.4) {
				g.irrEvents = append(g.irrEvents, irrEv{day: listed + timex.Day(2+g.rng.Intn(28)), del: true, obj: obj})
			}
			lt.HasIRR, lt.IRRCreated = true, created
		}

		ref := g.newSBLRef()
		lt.SBLRef = ref
		// The record existed while listed but Spamhaus deleted it after
		// remediation; the analysis queries the SBL store after window
		// end, so the record is simply never present.
		g.addDrop(p, ref, listed, removed, true)
		g.w.Truth.Listings = append(g.w.Truth.Listings, lt)
	}
	return nil
}

// buildOperatorAS0Case creates the one DROP prefix an operator remediated
// by signing an AS0 ROA: 45.65.112.0/22 (§6.2.1).
func (g *gen) buildOperatorAS0Case() error {
	p := netx.MustParsePrefix("45.65.112.0/22")
	listed := timex.MustParseDay("2020-01-28")
	signed := timex.MustParseDay("2021-05-05")
	removed := timex.MustParseDay("2021-06-16")

	g.rirManage = append(g.rirManage, manageEv{p, rirstats.LACNIC, rirstats.Available})
	g.rirStatus = append(g.rirStatus, statusEv{g.p.Window.First - 2000, p, rirstats.Allocated})

	origin := g.operatorAS[7]
	g.bgpEvents = append(g.bgpEvents,
		routeviews.Event{Day: listed - 90, Prefix: p, Tail: []bgp.ASN{origin}},
		routeviews.Event{Day: listed, Prefix: p, Tail: []bgp.ASN{origin}},
		routeviews.Event{Day: listed + 45, Prefix: p, Tail: []bgp.ASN{origin}, Withdraw: true},
	)
	g.roaEvents = append(g.roaEvents, roaEv{day: signed, roa: rpki.ROA{
		Prefix: p, MaxLength: 32, ASN: bgp.AS0, TA: rpki.TALACNIC,
	}})

	ref := g.newSBLRef()
	g.addDrop(p, ref, listed, removed, true)
	g.w.Truth.Listings = append(g.w.Truth.Listings, &ListingTruth{
		Prefix: p, SBLRef: ref, Categories: []sbl.Category{sbl.NoRecord},
		TruthCats: []sbl.Category{sbl.MaliciousHosting},
		RIR:       rirstats.LACNIC, Added: listed, Removed: removed, HasRemoved: true,
		AnnouncedDay: listed - 90, SignedAfter: true,
	})
	return nil
}
