// Package scenario generates a deterministic synthetic Internet — AS
// topology, RIR allocations, RPKI archive, IRR registry, BGP event
// timeline, DROP snapshots, and SBL records — calibrated so that the
// paper's findings emerge from the emitted archives. The analysis package
// never reads the generator's ground truth; it consumes only the archives,
// exactly as the paper's pipeline consumed the public data sets.
package scenario

import (
	"dropscope/internal/timex"
)

// Params controls world generation. Every rate and count the paper pins is
// an explicit field so ablations can vary them. The zero value is not
// useful; start from DefaultParams.
type Params struct {
	Seed int64

	// Window is the study window (paper: 2019-06-05 .. 2022-03-30).
	Window timex.Range

	// Scale divides the paper's background population counts. The DROP
	// listings themselves (712 prefixes) are always generated at full
	// size; only the never-listed background scales.
	Scale int

	// Collectors and peers per collector. FilteringPeers peers apply the
	// DROP list as a route filter (paper found 3).
	Collectors        int
	PeersPerCollector int
	FilteringPeers    int

	// Background population per RIR (paper counts; divided by Scale).
	BackgroundByRIR map[string]int
	// Base RPKI signing rate per RIR for never-listed prefixes (Table 1).
	BaseSignRate map[string]float64

	// DROP listing population.
	TotalListings     int // 712
	IncidentListings  int // 45 AFRINIC-incident hijack prefixes
	UnallocListings   int // 40
	HijackListings    int // 179 total labeled hijacked (incl. incidents)
	SnowshoeListings  int // ~220
	MalHostListings   int // ~60
	KnownSpamListings int // ~42
	// Removed is the number of listings Spamhaus removes before window
	// end; their SBL records are deleted (becoming "No SBL Record").
	RemovedByRIR map[string]int // paper: 7/18/40/37/83
	PresentByRIR map[string]int // paper: 11/37/169/9/172

	// Sign rates for prefixes added to DROP without a ROA (Table 1).
	RemovedSignRate map[string]float64 // 14.3/44.4/25.0/35.1/54.2 %
	PresentSignRate map[string]float64 // 0/21.6/0.6/0/19.8 %
	// Of removed-and-then-signed prefixes, fraction signed with an ASN
	// different from the BGP origin at listing time (§4.2: 82.3%).
	SignDifferentASN float64

	// Withdrawal-within-30-days probabilities by category (§4.1).
	WithdrawHijack  float64 // 0.707
	WithdrawUnalloc float64 // 0.548
	WithdrawOther   float64 // small

	// IRR behavior (§5).
	IRRCoverFraction      float64 // 31.7% of listings have route objects pre-listing
	IRRCreatedMonthBefore float64 // 32% of those created <1 month before listing
	IRRRemovedMonthAfter  float64 // 43% removed <1 month after
	HijackNamedASN        int     // 130 HJ prefixes with SBL-named hijacker ASN
	HijackIRRWithASN      int     // 57 of those have route objects with the hijacker ASN
	HijackIRROrgs         int     // 3 ORG-IDs behind 49 of the 57
	HijackIRRLatePair     int     // 2 created the IRR record >1 year after announcing

	// RPKI effectiveness (§6.1).
	PreSignedHijacks int // 3 hijacked prefixes RPKI-signed before listing

	// Deallocation behavior (§4.1).
	MalHostDeallocSpace float64 // 17.4% of MH space deallocated by window end
	RemovedDealloc      float64 // 8.8% of removed prefixes deallocated

	// AS0 policy dates (§2.3.1).
	APNICAS0Day  timex.Day // 2020-09-02
	LACNICAS0Day timex.Day // 2021-06-23
}

// DefaultParams returns the paper-calibrated parameters at 1/64 background
// scale — the whole pipeline runs in seconds while every rate and shape
// the paper reports is preserved.
func DefaultParams() Params {
	return Params{
		Seed:   1,
		Window: timex.Range{First: timex.MustParseDay("2019-06-05"), Last: timex.MustParseDay("2022-03-30")},
		Scale:  64,

		Collectors:        6,
		PeersPerCollector: 8,
		FilteringPeers:    3,

		BackgroundByRIR: map[string]int{
			"afrinic": 3901, "apnic": 42200, "arin": 65200, "lacnic": 15100, "ripencc": 68200,
		},
		BaseSignRate: map[string]float64{
			"afrinic": 0.118, "apnic": 0.263, "arin": 0.085, "lacnic": 0.255, "ripencc": 0.330,
		},

		TotalListings:     712,
		IncidentListings:  45,
		UnallocListings:   40,
		HijackListings:    179,
		SnowshoeListings:  220,
		MalHostListings:   60,
		KnownSpamListings: 42,
		RemovedByRIR: map[string]int{
			"afrinic": 7, "apnic": 18, "arin": 40, "lacnic": 37, "ripencc": 83,
		},
		PresentByRIR: map[string]int{
			"afrinic": 11, "apnic": 37, "arin": 169, "lacnic": 9, "ripencc": 172,
		},
		RemovedSignRate: map[string]float64{
			"afrinic": 0.143, "apnic": 0.444, "arin": 0.250, "lacnic": 0.351, "ripencc": 0.542,
		},
		PresentSignRate: map[string]float64{
			"afrinic": 0.0, "apnic": 0.216, "arin": 0.006, "lacnic": 0.0, "ripencc": 0.198,
		},
		SignDifferentASN: 0.823,

		WithdrawHijack:  0.707,
		WithdrawUnalloc: 0.548,
		WithdrawOther:   0.02,

		IRRCoverFraction:      0.317,
		IRRCreatedMonthBefore: 0.32,
		IRRRemovedMonthAfter:  0.43,
		HijackNamedASN:        130,
		HijackIRRWithASN:      57,
		HijackIRROrgs:         3,
		HijackIRRLatePair:     2,

		PreSignedHijacks: 3,

		MalHostDeallocSpace: 0.174,
		RemovedDealloc:      0.088,

		APNICAS0Day:  timex.MustParseDay("2020-09-02"),
		LACNICAS0Day: timex.MustParseDay("2021-06-23"),
	}
}

// scaled returns n divided by the scale factor, at least 1.
func (p Params) scaled(n int) int {
	if p.Scale <= 1 {
		return n
	}
	v := n / p.Scale
	if v < 1 {
		v = 1
	}
	return v
}
