package scenario

import (
	"sort"

	"dropscope/internal/bgp"
	"dropscope/internal/irr"
	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/routeviews"
	"dropscope/internal/rpki"
	"dropscope/internal/timex"
)

// taOf maps a registry to its production trust anchor.
func taOf(r rirstats.RIR) rpki.TrustAnchor {
	switch r {
	case rirstats.Afrinic:
		return rpki.TAAfrinic
	case rirstats.APNIC:
		return rpki.TAAPNIC
	case rirstats.ARIN:
		return rpki.TAARIN
	case rirstats.LACNIC:
		return rpki.TALACNIC
	default:
		return rpki.TARIPE
	}
}

// rirByName maps stats-file registry names to RIR values.
var rirByName = map[string]rirstats.RIR{
	"afrinic": rirstats.Afrinic,
	"apnic":   rirstats.APNIC,
	"arin":    rirstats.ARIN,
	"lacnic":  rirstats.LACNIC,
	"ripencc": rirstats.RIPE,
}

// bgSizeBits draws a background prefix length: mostly /17–/20 with a few
// larger blocks, giving the /8-equivalent space shares Fig 5 needs once
// multiplied by the population counts.
func (g *gen) bgSizeBits() int {
	switch r := g.rng.Intn(100); {
	case r < 10:
		return 16
	case r < 30:
		return 17
	case r < 65:
		return 18
	case r < 90:
		return 19
	default:
		return 20
	}
}

// preWindowSignedFraction is the share of background prefixes that already
// had a ROA at window start, on top of the Table-1 "never on DROP"
// denominators (which count prefixes unsigned at window start). Chosen so
// signed space grows by the paper's ≈2.4x over the window (Fig 5).
const preWindowSignedFraction = 0.153

// roaMaxLength draws a ROA maxLength for a prefix: most operators pin
// maxLength to the prefix length, but a sizable minority (the paper cites
// Gilad et al.'s maxLength study) allow longer, leaving the gap forgeable.
func (g *gen) roaMaxLength(p netx.Prefix) int {
	if g.chance(0.65) || p.Bits() >= 24 {
		return p.Bits()
	}
	if g.chance(0.5) {
		return p.Bits() + 1
	}
	return p.Bits() + 1 + g.rng.Intn(24-p.Bits())
}

// buildBackground creates the never-listed population: allocated blocks,
// their announcements, their RPKI uptake, plus the three big unrouted
// signed organizations and the allocated-but-unrouted unsigned blocks.
func (g *gen) buildBackground() error {
	start, end := g.p.Window.First, g.p.Window.Last

	bgNames := make([]string, 0, len(g.p.BackgroundByRIR))
	for name := range g.p.BackgroundByRIR {
		bgNames = append(bgNames, name)
	}
	sort.Strings(bgNames)
	for _, name := range bgNames {
		total := g.p.BackgroundByRIR[name]
		rir := rirByName[name]
		n := g.p.scaled(total)
		baseRate := g.p.BaseSignRate[name]
		extraPre := int(float64(n) * preWindowSignedFraction / (1 - preWindowSignedFraction))
		for i := 0; i < n+extraPre; i++ {
			allocDay := start - timex.Day(200+g.rng.Intn(3000))
			p, err := g.allocate(rir, g.bgSizeBits(), allocDay)
			if err != nil {
				return err
			}
			origin := g.operatorAS[g.rng.Intn(len(g.operatorAS))]

			// Announced for the whole window.
			g.bgpEvents = append(g.bgpEvents, routeviews.Event{
				Day: start - timex.Day(30+g.rng.Intn(300)), Prefix: p, Tail: []bgp.ASN{origin},
			})

			// Most routed prefixes have legitimate IRR route objects.
			if g.chance(0.6) {
				created := allocDay + timex.Day(g.rng.Intn(200))
				g.irrEvents = append(g.irrEvents, irrEv{day: created, obj: irr.Route{
					Prefix: p, Origin: origin, Descr: "operator network",
					MntBy: "MAINT-OP", Source: "RADB", Created: created, HasDate: true,
				}.Object()})
			}

			// A slice of loose-maxLength signers also announce the
			// maxLength-level specifics (traffic engineering), making
			// their loose ROAs unforgeable — Gilad et al.'s ~16% safe set.
			announceSpecifics := func(ml int) {
				if ml != p.Bits()+1 || !g.chance(0.4) {
					return
				}
				lo, hi := p.Halves()
				for _, sub := range []netx.Prefix{lo, hi} {
					g.bgpEvents = append(g.bgpEvents, routeviews.Event{
						Day: start - timex.Day(10+g.rng.Intn(100)), Prefix: sub, Tail: []bgp.ASN{origin},
					})
				}
			}

			// RPKI uptake.
			if i >= n {
				// Extra pre-window-signed prefix (not in Table 1's base).
				signDay := start - timex.Day(1+g.rng.Intn(600))
				ml := g.roaMaxLength(p)
				g.roaEvents = append(g.roaEvents, roaEv{day: signDay, roa: rpki.ROA{
					Prefix: p, MaxLength: ml, ASN: origin, TA: taOf(rir),
				}})
				announceSpecifics(ml)
			} else if g.chance(baseRate) {
				// Table 1 base-rate signing during the window.
				signDay := g.day(start+1, end)
				ml := g.roaMaxLength(p)
				g.roaEvents = append(g.roaEvents, roaEv{day: signDay, roa: rpki.ROA{
					Prefix: p, MaxLength: ml, ASN: origin, TA: taOf(rir),
				}})
				announceSpecifics(ml)
			}
			g.w.Truth.BackgroundN++
		}
	}

	// The three big unrouted-but-signed holdings (§6.2.1): together ~70%
	// of the signed-unrouted space. Sizes are the paper's /8 equivalents
	// divided by the scale factor.
	type bigOrg struct {
		name    string
		rir     rirstats.RIR
		bits    []int // blocks to allocate
		signDay timex.Day
		asn     bgp.ASN
	}
	// At scale 64: Amazon 3.1/8 -> ~813K addrs (/13+/14+/15),
	// Prudential 1/8 -> 262K (/14), Alibaba 0.64/8 -> ~168K (/15+/17).
	orgs := []bigOrg{
		{"amazon", rirstats.ARIN, []int{13, 14, 15}, timex.MustParseDay("2021-07-15"), 16509},
		{"prudential", rirstats.ARIN, []int{14}, timex.MustParseDay("2020-03-10"), 2478},
		{"alibaba", rirstats.APNIC, []int{15, 17}, timex.MustParseDay("2021-11-05"), 45102},
	}
	for _, o := range orgs {
		for _, bits := range o.bits {
			p, err := g.allocate(o.rir, bits, start-2000)
			if err != nil {
				return err
			}
			// Signed mid-window with a routable ASN, never announced:
			// exactly the hijackable posture §6.1 warns about.
			g.roaEvents = append(g.roaEvents, roaEv{day: o.signDay, roa: rpki.ROA{
				Prefix: p, MaxLength: p.Bits(), ASN: o.asn, TA: taOf(o.rir),
			}})
		}
	}
	// Smaller unrouted signed blocks make up the remaining ~30%.
	for i := 0; i < 14; i++ {
		rir := rirstats.AllRIRs[i%len(rirstats.AllRIRs)]
		p, err := g.allocate(rir, 17, start-1500)
		if err != nil {
			return err
		}
		g.roaEvents = append(g.roaEvents, roaEv{day: g.day(start, end-60), roa: rpki.ROA{
			Prefix: p, MaxLength: p.Bits(), ASN: g.operatorAS[g.rng.Intn(len(g.operatorAS))], TA: taOf(rir),
		}})
	}

	// Allocated, unrouted, unsigned space (Fig 5's ~30 /8s; 60.8% ARIN).
	// At scale 64 the target is ~7.9M addresses, ARIN ~4.8M.
	unroutedUnsigned := []struct {
		rir  rirstats.RIR
		bits []int
	}{
		{rirstats.ARIN, []int{11, 11, 11, 13, 14}}, // ≈6.8M
		{rirstats.RIPE, []int{12, 14}},             // ≈1.31M
		{rirstats.APNIC, []int{13, 14}},            // ≈0.79M
		{rirstats.LACNIC, []int{13}},               // ≈0.52M
		{rirstats.Afrinic, []int{13, 15}},          // ≈0.66M
	}
	for _, uu := range unroutedUnsigned {
		for _, bits := range uu.bits {
			if _, err := g.allocate(uu.rir, bits, start-2500); err != nil {
				return err
			}
		}
	}

	// Unlisted squats: malicious announcements of free-pool space that
	// never make DROP (the paper's "DROP is a small subset" limitation,
	// and the source of the ≈30 prefixes peers would filter with the RIR
	// AS0 TALs in §6.2.2).
	squatPools := []struct {
		rir rirstats.RIR
		n   int
	}{{rirstats.LACNIC, 9}, {rirstats.APNIC, 8}}
	for _, sp := range squatPools {
		for i := 0; i < sp.n; i++ {
			blk := g.pools[sp.rir][i%3] // stay inside never-allocated blocks
			sub := netx.PrefixFrom(blk.Addr()+netx.Addr(i)<<(32-18), 18)
			if !blk.Covers(sub) {
				sub = netx.PrefixFrom(blk.Addr(), 18)
			}
			attacker := g.attackerAS[g.rng.Intn(len(g.attackerAS))]
			g.bgpEvents = append(g.bgpEvents, routeviews.Event{
				Day: g.day(start+100, end-200), Prefix: sub, Tail: []bgp.ASN{attacker},
			})
			g.w.Truth.UnlistedSquats = append(g.w.Truth.UnlistedSquats, sub)
		}
	}
	return nil
}

// buildAS0Policy creates the RIR AS0 ROAs for unallocated space under the
// separate AS0 TALs at each policy date (§2.3.1/§6.2.2).
func (g *gen) buildAS0Policy() {
	policies := []struct {
		rir rirstats.RIR
		ta  rpki.TrustAnchor
		day timex.Day
	}{
		{rirstats.APNIC, rpki.TAAPNICAS0, g.p.APNICAS0Day},
		{rirstats.LACNIC, rpki.TALACNICAS0, g.p.LACNICAS0Day},
	}
	for _, pol := range policies {
		allocated := make(map[netx.Prefix]timex.Day)
		for _, ev := range g.rirStatus {
			if ev.st == rirstats.Allocated {
				allocated[ev.p] = ev.day
			}
		}
		for _, blk := range g.pools[pol.rir] {
			allocDay, becomesAllocated := allocated[blk]
			if becomesAllocated && allocDay <= pol.day {
				continue // already gone from the free pool at policy time
			}
			roa := rpki.ROA{Prefix: blk, MaxLength: 32, ASN: bgp.AS0, TA: pol.ta}
			g.roaEvents = append(g.roaEvents, roaEv{day: pol.day, roa: roa})
			if becomesAllocated {
				g.roaEvents = append(g.roaEvents, roaEv{day: allocDay, revoke: true, roa: roa})
			}
		}
	}
}
