package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"dropscope/internal/bgp"
	"dropscope/internal/drop"
	"dropscope/internal/irr"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/routeviews"
	"dropscope/internal/rpki"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
	"dropscope/internal/topo"
)

// World bundles every archive the analysis pipeline consumes, plus the
// generator's ground truth (used only by calibration tests, never by the
// analysis itself).
type World struct {
	Params     Params
	Graph      *topo.Graph
	Collectors []routeviews.Collector
	MRT        map[string][]mrt.Record
	DROP       *drop.Archive
	SBL        *sbl.DB
	IRR        *irr.DB
	RPKI       *rpki.Archive
	RIR        *rirstats.Timeline

	Truth Truth
}

// Truth is generation ground truth for calibration tests.
type Truth struct {
	Listings       []*ListingTruth
	FilterPeers    []FilterPeerTruth
	CaseStudy      CaseStudyTruth
	BackgroundN    int
	UnlistedSquats []netx.Prefix
}

// FilterPeerTruth identifies one DROP-filtering peer.
type FilterPeerTruth struct {
	Collector string
	PeerAS    bgp.ASN
	PeerAddr  netx.Addr
}

// CaseStudyTruth records the Figure-4 actors.
type CaseStudyTruth struct {
	Prefix    netx.Prefix // 132.255.0.0/22
	OwnerAS   bgp.ASN     // 263692
	OwnerVia  bgp.ASN     // 21575
	HijackVia bgp.ASN     // 50509
	HijackDay timex.Day
	Siblings  []netx.Prefix
	ListedDay timex.Day
}

// ListingTruth is the ground truth of one DROP listing.
type ListingTruth struct {
	Prefix     netx.Prefix
	SBLRef     string
	Categories []sbl.Category
	RIR        rirstats.RIR
	Added      timex.Day
	Removed    timex.Day
	HasRemoved bool
	Incident   bool
	NamedASN   bgp.ASN // hijacker ASN named in the SBL record; 0 if none
	// TruthCats holds the hidden categories of removed listings whose SBL
	// record was deleted (observed category is NoRecord).
	TruthCats []sbl.Category

	AnnouncedDay timex.Day
	WithdrawnDay timex.Day
	HasWithdrawn bool
	IRRCreated   timex.Day
	HasIRR       bool
	IRRHijackASN bool // route object carries the named hijacker ASN
	PreSigned    bool // had a ROA before listing
	SignedAfter  bool // got its first ROA after listing
	Deallocated  bool
}

// carver hands out consecutive aligned prefixes from a region.
type carver struct {
	cursor netx.Addr
	end    netx.Addr // exclusive; 0 means wrapped top of space
	region netx.Prefix
}

func newCarver(region netx.Prefix) *carver {
	return &carver{cursor: region.FirstAddr(), end: region.LastAddr() + 1, region: region}
}

// take returns the next /bits prefix in the region, aligning the cursor up.
func (c *carver) take(bits int) (netx.Prefix, error) {
	size := netx.Addr(1) << (32 - uint(bits))
	// Align cursor up to the block size.
	cur := (c.cursor + size - 1) &^ (size - 1)
	if cur < c.cursor || (c.end != 0 && cur+size > c.end) || (c.end != 0 && cur >= c.end) {
		return netx.Prefix{}, fmt.Errorf("scenario: region %s exhausted carving /%d", c.region, bits)
	}
	c.cursor = cur + size
	return netx.PrefixFrom(cur, bits), nil
}

// rirRegions maps each RIR to the /8s it manages in the synthetic world.
var rirRegions = map[rirstats.RIR][]byte{
	rirstats.Afrinic: {41, 105, 154, 196, 197},
	rirstats.APNIC:   {1, 14, 27, 36, 39, 42, 43, 49, 58, 59, 60, 61, 101, 110, 111, 112, 113, 114},
	rirstats.ARIN:    {3, 4, 6, 7, 8, 9, 11, 12, 13, 15, 16, 17, 18, 20, 21, 22, 24, 32, 33, 34, 35, 63, 64, 65},
	// 45, 132, 187, 191, and 200 host hand-placed case-study prefixes and
	// are excluded from bulk carving.
	rirstats.LACNIC: {131, 177, 179, 181, 186, 189, 190, 201},
	rirstats.RIPE:   {5, 31, 37, 46, 62, 77, 78, 79, 80, 81, 82, 83, 84, 85, 86, 87, 88, 89, 90, 91},
}

// poolRegions are the dedicated free-pool areas (Fig 7); each RIR's pool
// is managed at /14 granularity inside these blocks.
var poolRegions = map[rirstats.RIR]string{
	rirstats.Afrinic: "102.0.0.0/9", // 28 /14 blocks used
	rirstats.ARIN:    "23.128.0.0/10",
	rirstats.LACNIC:  "148.0.0.0/10",
	rirstats.RIPE:    "185.0.0.0/10",
	rirstats.APNIC:   "103.128.0.0/11",
}

// poolBlocks is how many /14 free-pool blocks each RIR starts with
// (≈ the paper's Fig 7 starting pool sizes, /14 = 262144 addresses).
// Blocks are consumed from fixed ranges so squatted space never collides
// with in-window pool allocations: blocks [0..2] host never-listed squats,
// [3..] host squats that get listed on DROP, and in-window allocations are
// taken from the end of each pool.
var poolBlocks = map[rirstats.RIR]int{
	rirstats.Afrinic: 28, // ≈7.3M
	rirstats.ARIN:    9,  // ≈2.4M
	rirstats.LACNIC:  12, // ≈3.1M
	rirstats.RIPE:    8,  // ≈2.1M
	rirstats.APNIC:   8,  // ≈2.1M
}

// poolAllocations is how many of those blocks each RIR allocates during
// the window (the Fig 7 decline).
var poolAllocations = map[rirstats.RIR]int{
	rirstats.Afrinic: 10,
	rirstats.ARIN:    2,
	rirstats.LACNIC:  5,
	rirstats.RIPE:    3,
	rirstats.APNIC:   2,
}

// gen is the generation context.
type gen struct {
	p   Params
	rng *rand.Rand
	w   *World

	multi map[rirstats.RIR]*multiCarver
	pools map[rirstats.RIR][]netx.Prefix // /14 free-pool blocks

	// accumulated events, applied in day order at the end
	rirManage []manageEv
	rirStatus []statusEv
	roaEvents []roaEv
	irrEvents []irrEv
	bgpEvents []routeviews.Event
	dropAdds  map[timex.Day][]dropChange
	dropDels  map[timex.Day][]netx.Prefix

	deckPresent *rirDeck
	deckRemoved *rirDeck
	presentSign map[rirstats.RIR]*quotaSampler
	removedSign map[rirstats.RIR]*quotaSampler

	operatorAS  []bgp.ASN
	attackerAS  []bgp.ASN
	defunctAS   []bgp.ASN
	nextOrdinal int
}

type manageEv struct {
	p       netx.Prefix
	rir     rirstats.RIR
	initial rirstats.Status
}

type statusEv struct {
	day timex.Day
	p   netx.Prefix
	st  rirstats.Status
}

type roaEv struct {
	day    timex.Day
	revoke bool
	roa    rpki.ROA
}

type irrEv struct {
	day timex.Day
	del bool
	obj *irr.Object
}

type dropChange struct {
	p   netx.Prefix
	ref string
}

// Generate builds a world from the parameters.
func Generate(p Params) (*World, error) {
	g := &gen{
		p:        p,
		rng:      rand.New(rand.NewSource(p.Seed)),
		w:        &World{Params: p, SBL: sbl.NewDB(), DROP: drop.NewArchive(), IRR: &irr.DB{}, RPKI: &rpki.Archive{}, RIR: &rirstats.Timeline{}},
		pools:    make(map[rirstats.RIR][]netx.Prefix),
		dropAdds: make(map[timex.Day][]dropChange),
		dropDels: make(map[timex.Day][]netx.Prefix),
	}
	g.buildTopology()
	if err := g.buildAddressPlan(); err != nil {
		return nil, err
	}
	if err := g.buildBackground(); err != nil {
		return nil, err
	}
	if err := g.buildListings(); err != nil {
		return nil, err
	}
	g.buildAS0Policy()
	if err := g.assemble(); err != nil {
		return nil, err
	}
	return g.w, nil
}

// day returns a uniform random day in [a, b].
func (g *gen) day(a, b timex.Day) timex.Day {
	if b <= a {
		return a
	}
	return a + timex.Day(g.rng.Intn(int(b-a)+1))
}

func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

// --- topology ---------------------------------------------------------

// Well-known actors from the paper's case study.
const (
	asOwner      bgp.ASN = 263692 // Peruvian origin of 132.255.0.0/22
	asOwnerVia   bgp.ASN = 21575  // its long-time South American transit
	asHijackVia  bgp.ASN = 50509  // Russian transit used by the hijacker
	asHijackVia2 bgp.ASN = 34665  // 50509's upstream
)

func (g *gen) buildTopology() {
	var t topo.Graph
	tier1 := []bgp.ASN{1001, 1002, 1003, 1004}
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			_ = t.Link(tier1[i], tier1[j], topo.PeerWith)
		}
	}
	var transits []bgp.ASN
	for i := 0; i < 24; i++ {
		asn := bgp.ASN(2001 + i)
		transits = append(transits, asn)
		_ = t.Link(tier1[i%4], asn, topo.ProviderOf)
		_ = t.Link(tier1[(i+1)%4], asn, topo.ProviderOf)
	}
	// A few lateral peerings among transits for path diversity.
	for i := 0; i+1 < len(transits); i += 3 {
		_ = t.Link(transits[i], transits[i+1], topo.PeerWith)
	}

	// Case-study actors.
	_ = t.Link(tier1[0], asOwnerVia, topo.ProviderOf)
	_ = t.Link(tier1[1], asOwnerVia, topo.ProviderOf)
	_ = t.Link(asOwnerVia, asOwner, topo.ProviderOf)
	_ = t.Link(tier1[3], asHijackVia2, topo.ProviderOf)
	_ = t.Link(asHijackVia2, asHijackVia, topo.ProviderOf)

	// Historic origins and transits of the Figure-4 sibling prefixes.
	_ = t.Link(tier1[2], 3549, topo.ProviderOf)
	_ = t.Link(tier1[3], 16735, topo.ProviderOf)
	_ = t.Link(3549, 28129, topo.ProviderOf)
	_ = t.Link(16735, 263330, topo.ProviderOf)
	_ = t.Link(asOwnerVia, 19361, topo.ProviderOf)

	// Operator ASes announce the background and legitimate DROP prefixes.
	for i := 0; i < 400; i++ {
		asn := bgp.ASN(64500 + i)
		g.operatorAS = append(g.operatorAS, asn)
		_ = t.Link(transits[i%len(transits)], asn, topo.ProviderOf)
		if i%3 == 0 {
			_ = t.Link(transits[(i+7)%len(transits)], asn, topo.ProviderOf)
		}
	}
	// Attacker ASes inject hijacks and squats.
	for i := 0; i < 24; i++ {
		asn := bgp.ASN(213000 + i)
		g.attackerAS = append(g.attackerAS, asn)
		_ = t.Link(transits[(i*5)%len(transits)], asn, topo.ProviderOf)
	}
	// Defunct ASes are spoofed as origins; they have no links at all.
	for i := 0; i < 16; i++ {
		asn := bgp.ASN(265000 + i)
		g.defunctAS = append(g.defunctAS, asn)
		t.AddAS(asn)
	}

	g.w.Graph = &t

	// Collectors peer with tier-1s and transits.
	pool := append(append([]bgp.ASN{}, tier1...), transits...)
	peerAddr := func(ci, pi int) netx.Addr { return netx.AddrFrom4(198, 51, byte(ci), byte(pi+1)) }
	for ci := 0; ci < g.p.Collectors; ci++ {
		c := routeviews.Collector{
			Name:      fmt.Sprintf("route-views%d", ci+1),
			LocalAS:   6447,
			LocalAddr: netx.AddrFrom4(128, 223, 51, byte(ci+1)),
		}
		for pi := 0; pi < g.p.PeersPerCollector; pi++ {
			c.Peers = append(c.Peers, routeviews.Peer{
				AS:        pool[(ci*g.p.PeersPerCollector+pi)%len(pool)],
				Addr:      peerAddr(ci, pi),
				FullTable: true,
			})
		}
		g.w.Collectors = append(g.w.Collectors, c)
	}
	// The first FilteringPeers peers of the first collectors apply DROP
	// as a route filter.
	for i := 0; i < g.p.FilteringPeers && i < len(g.w.Collectors); i++ {
		c := &g.w.Collectors[i]
		g.w.Truth.FilterPeers = append(g.w.Truth.FilterPeers, FilterPeerTruth{
			Collector: c.Name, PeerAS: c.Peers[0].AS, PeerAddr: c.Peers[0].Addr,
		})
	}
}

// --- address plan ------------------------------------------------------

func (g *gen) buildAddressPlan() error {
	g.multi = make(map[rirstats.RIR]*multiCarver)
	for rir, octets := range rirRegions {
		mc := &multiCarver{}
		for _, o := range octets {
			mc.regions = append(mc.regions, newCarver(netx.PrefixFrom(netx.AddrFrom4(o, 0, 0, 0), 8)))
		}
		g.multi[rir] = mc
	}

	// Free pools: /14 blocks, managed as Available.
	for rir, regionStr := range poolRegions {
		region := netx.MustParsePrefix(regionStr)
		c := newCarver(region)
		for i := 0; i < poolBlocks[rir]; i++ {
			blk, err := c.take(14)
			if err != nil {
				return err
			}
			g.pools[rir] = append(g.pools[rir], blk)
			g.rirManage = append(g.rirManage, manageEv{blk, rir, rirstats.Available})
		}
	}

	// Fig 7 decline: some pool blocks get allocated during the window.
	for _, rir := range rirstats.AllRIRs {
		n := poolAllocations[rir]
		blocks := g.pools[rir]
		for i := 0; i < n && i < len(blocks); i++ {
			// Allocate from the end of the pool so squats (carved from the
			// front) stay in available space.
			blk := blocks[len(blocks)-1-i]
			d := g.day(g.p.Window.First+60, g.p.Window.Last-30)
			g.rirStatus = append(g.rirStatus, statusEv{d, blk, rirstats.Allocated})
			// Newly allocated space goes into use shortly after.
			g.bgpEvents = append(g.bgpEvents, routeviews.Event{
				Day:    d + timex.Day(15+g.rng.Intn(45)),
				Prefix: blk,
				Tail:   []bgp.ASN{g.operatorAS[g.rng.Intn(len(g.operatorAS))]},
			})
		}
	}
	return nil
}

type multiCarver struct {
	regions []*carver
	idx     int
}

func (m *multiCarver) take(bits int) (netx.Prefix, error) {
	for m.idx < len(m.regions) {
		p, err := m.regions[m.idx].take(bits)
		if err == nil {
			return p, nil
		}
		m.idx++
	}
	return netx.Prefix{}, fmt.Errorf("scenario: all regions exhausted carving /%d", bits)
}

// allocate carves a /bits prefix from the RIR's space and registers it as
// an allocated block from day d.
func (g *gen) allocate(rir rirstats.RIR, bits int, d timex.Day) (netx.Prefix, error) {
	p, err := g.multi[rir].take(bits)
	if err != nil {
		return netx.Prefix{}, err
	}
	g.rirManage = append(g.rirManage, manageEv{p, rir, rirstats.Available})
	g.rirStatus = append(g.rirStatus, statusEv{d, p, rirstats.Allocated})
	return p, nil
}

// --- final assembly ----------------------------------------------------

// assemble sorts the accumulated events and materializes every archive.
func (g *gen) assemble() error {
	// RIR timeline.
	sort.Slice(g.rirManage, func(i, j int) bool {
		return g.rirManage[i].p.Compare(g.rirManage[j].p) < 0
	})
	for _, ev := range g.rirManage {
		if err := g.w.RIR.Manage(ev.p, ev.rir, ev.initial); err != nil {
			return err
		}
	}
	sort.SliceStable(g.rirStatus, func(i, j int) bool { return g.rirStatus[i].day < g.rirStatus[j].day })
	for _, ev := range g.rirStatus {
		if err := g.w.RIR.SetStatus(ev.p, ev.day, ev.st); err != nil {
			return err
		}
	}

	// RPKI archive.
	sort.SliceStable(g.roaEvents, func(i, j int) bool { return g.roaEvents[i].day < g.roaEvents[j].day })
	for _, ev := range g.roaEvents {
		var err error
		if ev.revoke {
			err = g.w.RPKI.Revoke(ev.day, ev.roa)
		} else {
			err = g.w.RPKI.Add(ev.day, ev.roa)
		}
		if err != nil {
			return err
		}
	}

	// IRR journal.
	sort.SliceStable(g.irrEvents, func(i, j int) bool { return g.irrEvents[i].day < g.irrEvents[j].day })
	for _, ev := range g.irrEvents {
		var err error
		if ev.del {
			err = g.w.IRR.Del(ev.day, ev.obj)
		} else {
			err = g.w.IRR.Add(ev.day, ev.obj)
		}
		if err != nil {
			return err
		}
	}

	// DROP snapshots: rebuild membership on each day it changes.
	if err := g.assembleDROP(); err != nil {
		return err
	}

	// BGP events -> MRT, with the filtering peers consulting the DROP
	// archive (which is complete by now).
	sort.SliceStable(g.bgpEvents, func(i, j int) bool { return g.bgpEvents[i].Day < g.bgpEvents[j].Day })
	filterSet := make(map[string]bool, len(g.w.Truth.FilterPeers))
	for _, fp := range g.w.Truth.FilterPeers {
		filterSet[fp.Collector+"|"+fp.PeerAddr.String()] = true
	}
	em := &routeviews.Emitter{
		Graph:      g.w.Graph,
		Collectors: g.w.Collectors,
		Filter: func(c *routeviews.Collector, p routeviews.Peer, prefix netx.Prefix, day timex.Day) bool {
			if !filterSet[c.Name+"|"+p.Addr.String()] {
				return false
			}
			return g.w.DROP.ListedAt(prefix, day)
		},
	}
	recs, err := em.Emit(g.bgpEvents, g.p.Window.First)
	if err != nil {
		return err
	}
	g.w.MRT = recs
	return nil
}

func (g *gen) assembleDROP() error {
	days := make(map[timex.Day]bool)
	for d := range g.dropAdds {
		days[d] = true
	}
	for d := range g.dropDels {
		days[d] = true
	}
	ordered := make([]timex.Day, 0, len(days))
	for d := range days {
		ordered = append(ordered, d)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	current := make(map[netx.Prefix]string)
	for _, d := range ordered {
		for _, p := range g.dropDels[d] {
			delete(current, p)
		}
		for _, ch := range g.dropAdds[d] {
			current[ch.p] = ch.ref
		}
		entries := make([]drop.Entry, 0, len(current))
		for p, ref := range current {
			entries = append(entries, drop.Entry{Prefix: p, SBLRef: ref})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Prefix.Compare(entries[j].Prefix) < 0 })
		if err := g.w.DROP.AddSnapshot(d, entries); err != nil {
			return err
		}
	}
	return nil
}
