package scenario

import (
	"math"
	"math/rand"
	"sort"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// AmplifyVolume appends RouteViews-realistic background churn to the
// world's MRT streams, scaling record volume for index-build and
// sharding benchmarks without touching any behavior the analysis
// measures. Per-collector record counts are drawn from a seeded
// lognormal around scale — real collectors differ in feed size the
// same way — and each unit of churn is an announce/withdraw flap of a
// synthetic prefix spread across the study window's days, carried by
// one of the collector's existing peers.
//
// The synthetic prefixes are /24s carved from 100.64.0.0/10 (the
// RFC 6598 shared-address block), which the generator's address plan
// never allocates from: amplification grows the prefix column and the
// span count, but no listing, ROA, IRR object, or hijack gains or
// loses an overlapping route. It returns the number of records
// appended and the number of distinct synthetic prefixes used.
//
// The amplified world is deterministic in (scale, seed) and must be
// amplified before the MRT archives are written or a pipeline is
// built over them.
func AmplifyVolume(w *World, scale int, seed int64) (records, prefixes int) {
	if w == nil || scale <= 0 || len(w.Collectors) == 0 {
		return 0, 0
	}
	rng := rand.New(rand.NewSource(seed*1000003 + 0x766f6c))
	window := w.Params.Window
	days := int(window.Last - window.First)
	if days < 1 {
		days = 1
	}

	// One distinct /24 per scale unit, capped by the block's capacity
	// (a /10 holds 2^14 /24s). Collectors share the pool — the same
	// prefix observed at several collectors is the normal case.
	npfx := scale
	if npfx > 1<<14 {
		npfx = 1 << 14
	}
	base := netx.Addr(100)<<24 | netx.Addr(64)<<16
	pool := make([]netx.Prefix, npfx)
	for i := range pool {
		pool[i] = netx.PrefixFrom(base+netx.Addr(i)<<8, 24)
	}

	for ci := range w.Collectors {
		c := &w.Collectors[ci]
		if len(c.Peers) == 0 {
			continue
		}
		n := int(float64(scale) * math.Exp(0.6*rng.NormFloat64()))
		if n < 1 {
			n = 1
		}
		flaps := (n + 1) / 2
		recs := make([]mrt.Record, 0, 2*flaps)
		for f := 0; f < flaps; f++ {
			p := pool[rng.Intn(len(pool))]
			peer := c.Peers[rng.Intn(len(c.Peers))]
			origin := bgp.ASN(64512 + rng.Intn(1024)) // private-use origin
			up := window.First + timex.Day(rng.Intn(days))
			down := up + 1 + timex.Day(rng.Intn(3))
			if down > window.Last {
				down = window.Last
			}
			recs = append(recs, &mrt.BGP4MPMessage{
				When:      up.Time(),
				PeerAS:    peer.AS,
				LocalAS:   c.LocalAS,
				PeerAddr:  peer.Addr,
				LocalAddr: c.LocalAddr,
				Update: &bgp.Update{
					Attrs: bgp.Attrs{
						Origin:     bgp.OriginIGP,
						Path:       bgp.Sequence(peer.AS, origin),
						NextHop:    peer.Addr,
						HasNextHop: true,
					},
					NLRI: []netx.Prefix{p},
				},
			})
			if down > up {
				recs = append(recs, &mrt.BGP4MPMessage{
					When:      down.Time(),
					PeerAS:    peer.AS,
					LocalAS:   c.LocalAS,
					PeerAddr:  peer.Addr,
					LocalAddr: c.LocalAddr,
					Update:    &bgp.Update{Withdrawn: []netx.Prefix{p}},
				})
			}
		}
		// Time-order the appended churn so each (peer, prefix) stream
		// reads announce-before-withdraw, like the emitter's output.
		sort.SliceStable(recs, func(i, j int) bool {
			return recs[i].Timestamp().Before(recs[j].Timestamp())
		})
		w.MRT[c.Name] = append(w.MRT[c.Name], recs...)
		records += len(recs)
	}
	return records, npfx
}
