package scenario

import (
	"fmt"

	"dropscope/internal/bgp"
	"dropscope/internal/irr"
	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/routeviews"
	"dropscope/internal/rpki"
	"dropscope/internal/sbl"
	"dropscope/internal/timex"
)

// rirDeck deals RIR assignments according to fixed per-RIR quotas,
// choosing among remaining quota weighted-random for mixing.
type rirDeck struct {
	g      *gen
	quota  map[rirstats.RIR]int
	remain int
}

func (g *gen) newDeck(quota map[string]int) *rirDeck {
	d := &rirDeck{g: g, quota: make(map[rirstats.RIR]int)}
	for name, n := range quota {
		d.quota[rirByName[name]] = n
		d.remain += n
	}
	return d
}

func (d *rirDeck) take(rir rirstats.RIR) bool {
	if d.quota[rir] <= 0 {
		return false
	}
	d.quota[rir]--
	d.remain--
	return true
}

func (d *rirDeck) deal() (rirstats.RIR, error) {
	if d.remain <= 0 {
		return "", fmt.Errorf("scenario: RIR deck exhausted")
	}
	n := d.g.rng.Intn(d.remain)
	for _, rir := range rirstats.AllRIRs {
		if q := d.quota[rir]; q > 0 {
			if n < q {
				d.quota[rir]--
				d.remain--
				return rir, nil
			}
			n -= q
		}
	}
	return "", fmt.Errorf("scenario: RIR deck inconsistent")
}

// newSBLRef mints the next SBL record identifier.
func (g *gen) newSBLRef() string {
	g.nextOrdinal++
	return fmt.Sprintf("SBL%06d", 300000+g.nextOrdinal)
}

// buildListings generates the full DROP population with all paper-pinned
// behaviors: announcement/withdrawal, IRR fraud, RPKI signing, SBL text,
// removal and deallocation.
func (g *gen) buildListings() error {
	if err := g.buildIncident(); err != nil {
		return err
	}
	if err := g.buildCaseStudy(); err != nil {
		return err
	}
	if err := g.buildUnallocated(); err != nil {
		return err
	}
	if err := g.buildHijackNamed(); err != nil {
		return err
	}
	if err := g.buildOtherLabeled(); err != nil {
		return err
	}
	if err := g.buildRemoved(); err != nil {
		return err
	}
	return g.buildOperatorAS0Case()
}

// pickBits draws a prefix length from a weighted table of (bits, weight).
func (g *gen) pickBits(table [][2]int) int {
	total := 0
	for _, e := range table {
		total += e[1]
	}
	n := g.rng.Intn(total)
	for _, e := range table {
		if n < e[1] {
			return e[0]
		}
		n -= e[1]
	}
	return table[len(table)-1][0]
}

// addDrop schedules a listing addition (and removal) in the DROP archive.
func (g *gen) addDrop(p netx.Prefix, ref string, added timex.Day, removed timex.Day, hasRemoved bool) {
	g.dropAdds[added] = append(g.dropAdds[added], dropChange{p, ref})
	if hasRemoved {
		g.dropDels[removed] = append(g.dropDels[removed], p)
	}
}

// announceWindowed emits an announcement and, with probability pWithdraw,
// a withdrawal within 30 days of the listing day. Returns the withdrawal
// day (0 if none).
func (g *gen) announceWindowed(p netx.Prefix, tail []bgp.ASN, announce timex.Day, listed timex.Day, pWithdraw float64) (timex.Day, bool) {
	g.bgpEvents = append(g.bgpEvents, routeviews.Event{Day: announce, Prefix: p, Tail: tail})
	if announce < listed {
		// Re-announce on the listing day: a no-op refresh for ordinary
		// peers, but it lets DROP-filtering peers drop the route the day
		// the prefix is listed.
		g.bgpEvents = append(g.bgpEvents, routeviews.Event{Day: listed, Prefix: p, Tail: tail})
	}
	if g.chance(pWithdraw) {
		wd := listed + timex.Day(1+g.rng.Intn(29))
		g.bgpEvents = append(g.bgpEvents, routeviews.Event{Day: wd, Prefix: p, Tail: tail, Withdraw: true})
		return wd, true
	}
	return 0, false
}

// --- AFRINIC incidents --------------------------------------------------

var incidentDays = []string{"2019-11-20", "2021-07-14"}

func (g *gen) buildIncident() error {
	sizes := make([]int, 0, g.p.IncidentListings)
	for i := 0; i < g.p.IncidentListings; i++ {
		switch {
		case i < 2:
			sizes = append(sizes, 12)
		case i < 12:
			sizes = append(sizes, 13)
		default:
			sizes = append(sizes, 14)
		}
	}
	fraudAS := g.attackerAS[0]
	cluster1 := timex.MustParseDay(incidentDays[0])
	cluster2 := timex.MustParseDay(incidentDays[1])
	for i, bits := range sizes {
		listed := cluster1
		if i >= 25 {
			listed = cluster2
		}
		p, err := g.allocate(rirstats.Afrinic, bits, g.p.Window.First-3000)
		if err != nil {
			return err
		}
		ref := g.newSBLRef()
		text := fmt.Sprintf("Hijacked legacy netblock %s. Stolen through fraudulent "+
			"resource transfers; announced by AS%d.", p, uint32(fraudAS))
		g.w.SBL.Put(sbl.Record{ID: ref, Text: text})
		g.addDrop(p, ref, listed, 0, false)

		// Fraud org held IRR route objects long before listing (this is
		// what pushes §5's space coverage to ~69%).
		created := listed - timex.Day(200+g.rng.Intn(400))
		g.irrEvents = append(g.irrEvents, irrEv{day: created, obj: irr.Route{
			Prefix: p, Origin: fraudAS, Descr: "transferred netblock",
			MntBy: "MAINT-INCIDENT", OrgID: "ORG-INCIDENT", Source: "RADB",
			Created: created, HasDate: true,
		}.Object()})

		announce := listed - timex.Day(150+g.rng.Intn(500))
		// Incident space stays announced: these were fraudulently
		// *acquired*, not briefly squatted.
		wd, hasWd := g.announceWindowed(p, []bgp.ASN{fraudAS}, announce, listed, 0.1)

		g.w.Truth.Listings = append(g.w.Truth.Listings, &ListingTruth{
			Prefix: p, SBLRef: ref, Categories: []sbl.Category{sbl.Hijacked},
			RIR: rirstats.Afrinic, Added: listed, Incident: true, NamedASN: fraudAS,
			AnnouncedDay: announce, WithdrawnDay: wd, HasWithdrawn: hasWd,
			IRRCreated: created, HasIRR: true,
		})
	}
	return nil
}

// --- Figure 4 case study -------------------------------------------------

func (g *gen) buildCaseStudy() error {
	w := &g.w.Truth.CaseStudy
	w.Prefix = netx.MustParsePrefix("132.255.0.0/22")
	w.OwnerAS, w.OwnerVia, w.HijackVia = asOwner, asOwnerVia, asHijackVia
	w.ListedDay = timex.MustParseDay("2022-03-04")
	w.HijackDay = timex.MustParseDay("2020-12-10")
	hijack2 := timex.MustParseDay("2021-06-10")

	type sib struct {
		pfx      string
		historic bgp.ASN // 0 = unrouted for many years
		via      bgp.ASN
		hijacked timex.Day
		listed   bool
	}
	sibs := []sib{
		{"187.19.64.0/20", 28129, 3549, w.HijackDay, true},
		{"187.110.192.0/20", 0, 0, w.HijackDay, false}, // origin AS19361 in 2018
		{"191.7.224.0/19", 263330, 16735, w.HijackDay, true},
		{"200.150.240.0/20", 0, 0, hijack2, false}, // no origination for 15 yrs
		{"200.189.64.0/20", 0, 0, hijack2, true},
		{"200.202.80.0/20", 0, 0, hijack2, false}, // origin AS19361 in 2018
	}

	// The signed /22: owner announced it via AS21575 until July 2020.
	mainPfx := w.Prefix
	g.rirManage = append(g.rirManage, manageEv{mainPfx, rirstats.LACNIC, rirstats.Available})
	g.rirStatus = append(g.rirStatus, statusEv{g.p.Window.First - 3000, mainPfx, rirstats.Allocated})
	g.roaEvents = append(g.roaEvents, roaEv{day: g.p.Window.First - 400, roa: rpki.ROA{
		Prefix: mainPfx, MaxLength: 22, ASN: asOwner, TA: rpki.TALACNIC,
	}})
	g.bgpEvents = append(g.bgpEvents,
		routeviews.Event{Day: g.p.Window.First - 600, Prefix: mainPfx, Tail: []bgp.ASN{asOwner}},
		routeviews.Event{Day: timex.MustParseDay("2020-07-15"), Prefix: mainPfx, Tail: []bgp.ASN{asOwner}, Withdraw: true},
		// December 2020: hijacker re-originates with the ROA's ASN via
		// AS50509 — the announcement is RPKI-valid (§6.1).
		routeviews.Event{Day: w.HijackDay, Prefix: mainPfx, Tail: []bgp.ASN{asHijackVia, asOwner}},
	)
	refMain := g.newSBLRef()
	g.w.SBL.Put(sbl.Record{ID: refMain, Text: fmt.Sprintf(
		"Hijacked network range %s. Stolen routing through a Russian transit despite a valid ROA.",
		mainPfx)})
	g.addDrop(mainPfx, refMain, w.ListedDay, 0, false)
	// Still announced on the listing day; refresh so filtering peers react.
	g.bgpEvents = append(g.bgpEvents, routeviews.Event{Day: w.ListedDay, Prefix: mainPfx, Tail: []bgp.ASN{asHijackVia, asOwner}})
	g.w.Truth.Listings = append(g.w.Truth.Listings, &ListingTruth{
		Prefix: mainPfx, SBLRef: refMain, Categories: []sbl.Category{sbl.Hijacked},
		RIR: rirstats.LACNIC, Added: w.ListedDay, NamedASN: asHijackVia,
		AnnouncedDay: w.HijackDay, PreSigned: true,
	})

	// Siblings.
	for _, s := range sibs {
		p := netx.MustParsePrefix(s.pfx)
		w.Siblings = append(w.Siblings, p)
		g.rirManage = append(g.rirManage, manageEv{p, rirstats.LACNIC, rirstats.Available})
		g.rirStatus = append(g.rirStatus, statusEv{g.p.Window.First - 3000, p, rirstats.Allocated})
		if s.historic != 0 {
			// Historic origination visible at window start, withdrawn
			// before the hijack.
			g.bgpEvents = append(g.bgpEvents,
				routeviews.Event{Day: g.p.Window.First - 300, Prefix: p, Tail: []bgp.ASN{s.historic}},
				routeviews.Event{Day: g.day(g.p.Window.First+30, timex.MustParseDay("2019-09-01")), Prefix: p, Tail: []bgp.ASN{s.historic}, Withdraw: true},
			)
		}
		// Hijacker announces with the spoofed owner origin via AS50509.
		g.bgpEvents = append(g.bgpEvents, routeviews.Event{
			Day: s.hijacked, Prefix: p, Tail: []bgp.ASN{asHijackVia, asOwner},
		})
		if s.listed {
			ref := g.newSBLRef()
			g.w.SBL.Put(sbl.Record{ID: ref, Text: fmt.Sprintf(
				"Hijacked unrouted netblock %s, stolen origin announced via a Russian transit.", p)})
			g.addDrop(p, ref, w.ListedDay, 0, false)
			g.bgpEvents = append(g.bgpEvents, routeviews.Event{Day: w.ListedDay, Prefix: p, Tail: []bgp.ASN{asHijackVia, asOwner}})
			g.w.Truth.Listings = append(g.w.Truth.Listings, &ListingTruth{
				Prefix: p, SBLRef: ref, Categories: []sbl.Category{sbl.Hijacked},
				RIR: rirstats.LACNIC, Added: w.ListedDay, NamedASN: asOwner,
				AnnouncedDay: s.hijacked,
			})
		}
	}
	return nil
}

// --- unallocated squats (Figure 6) --------------------------------------

func (g *gen) buildUnallocated() error {
	dist := []struct {
		rir rirstats.RIR
		n   int
	}{
		{rirstats.LACNIC, 19}, {rirstats.Afrinic, 12},
		{rirstats.APNIC, 4}, {rirstats.RIPE, 3}, {rirstats.ARIN, 2},
	}
	total := 0
	for _, d := range dist {
		total += d.n
	}
	if total != g.p.UnallocListings {
		return fmt.Errorf("scenario: unallocated distribution sums %d, want %d", total, g.p.UnallocListings)
	}

	irrUAAssigned := false
	for _, d := range dist {
		blocks := g.pools[d.rir]
		for i := 0; i < d.n; i++ {
			// Sub-prefixes of never-allocated pool blocks (indexes >= 3);
			// eight /17s fit per /14 block.
			blk := blocks[3+(i/8)%(len(blocks)-3)]
			sub := netx.PrefixFrom(blk.Addr()+netx.Addr(i%8)<<(32-17), 17)

			var listed timex.Day
			switch d.rir {
			case rirstats.LACNIC:
				// Clustered: some before, most after the LACNIC AS0 policy.
				if i < 7 {
					listed = g.day(g.p.Window.First+60, g.p.LACNICAS0Day-30)
				} else {
					listed = g.day(g.p.LACNICAS0Day+10, g.p.Window.Last-30)
				}
			case rirstats.Afrinic:
				listed = g.day(g.p.Window.First+30, g.p.Window.Last-30)
			case rirstats.APNIC:
				if i < 2 {
					listed = g.day(g.p.Window.First+30, g.p.APNICAS0Day-30)
				} else {
					listed = g.day(g.p.APNICAS0Day+10, g.p.Window.Last-30)
				}
			default:
				listed = g.day(g.p.Window.First+30, g.p.Window.Last-30)
			}

			attacker := g.attackerAS[1+g.rng.Intn(len(g.attackerAS)-1)]
			announce := listed - timex.Day(5+g.rng.Intn(56))
			wd, hasWd := g.announceWindowed(sub, []bgp.ASN{attacker}, announce, listed, g.p.WithdrawUnalloc)

			ref := g.newSBLRef()
			g.w.SBL.Put(sbl.Record{ID: ref, Text: fmt.Sprintf(
				"Unallocated address space %s announced by AS%d; bogon route used for spam emission.",
				sub, uint32(attacker))})
			g.addDrop(sub, ref, listed, 0, false)

			lt := &ListingTruth{
				Prefix: sub, SBLRef: ref, Categories: []sbl.Category{sbl.Unallocated},
				RIR: d.rir, Added: listed, NamedASN: attacker,
				AnnouncedDay: announce, WithdrawnDay: wd, HasWithdrawn: hasWd,
			}

			// One unallocated prefix had an IRR route object (§5).
			if !irrUAAssigned && d.rir == rirstats.LACNIC {
				created := announce - timex.Day(3+g.rng.Intn(4))
				g.irrEvents = append(g.irrEvents, irrEv{day: created, obj: irr.Route{
					Prefix: sub, Origin: attacker, Descr: "transit customer",
					MntBy: "MAINT-SQUAT", OrgID: "ORG-SQUAT", Source: "RADB",
					Created: created, HasDate: true,
				}.Object()})
				lt.HasIRR, lt.IRRCreated = true, created
				irrUAAssigned = true
			}
			g.w.Truth.Listings = append(g.w.Truth.Listings, lt)
		}
	}
	return nil
}

// quotaSampler yields exactly quota hits over total samples, spread
// uniformly, so per-RIR signing counts land on Table 1's numbers instead
// of drifting with Bernoulli noise.
type quotaSampler struct {
	g            *gen
	total, quota int
	seen, hit    int
}

func (q *quotaSampler) sample() bool {
	remaining := q.total - q.seen
	q.seen++
	if remaining <= 0 || q.hit >= q.quota {
		return false
	}
	if q.g.rng.Float64() < float64(q.quota-q.hit)/float64(remaining) {
		q.hit++
		return true
	}
	return false
}

// newQuotaSamplers builds one sampler per RIR from population counts and
// target rates.
func (g *gen) newQuotaSamplers(counts map[string]int, rates map[string]float64) map[rirstats.RIR]*quotaSampler {
	out := make(map[rirstats.RIR]*quotaSampler)
	for name, n := range counts {
		rate := rates[name]
		out[rirByName[name]] = &quotaSampler{
			g: g, total: n, quota: int(rate*float64(n) + 0.5),
		}
	}
	return out
}
