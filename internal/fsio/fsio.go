// Package fsio is the filesystem seam under durable write paths: the
// narrow interface a temp+fsync+rename+syncdir writer needs, with the
// real OS as the default implementation. It is a leaf package on
// purpose — the snapshot writer (internal/ribsnap) consumes it and the
// disk-fault injector (internal/ingest/faultinject) implements it, and
// keeping the seam dependency-free is what lets the injector avoid
// importing the writer (which would cycle through the ingest packages
// the writer's index depends on).
package fsio

import (
	"io"
	"os"
)

// File is the subset of *os.File a durable writer needs. Sync is the
// durability point for file contents; WriteAt back-patches headers
// after a payload is streamed.
type File interface {
	io.Writer
	io.WriterAt
	Name() string
	Sync() error
	Close() error
}

// FS is the seam writes run through. The default is the real OS (OS);
// tests and the fault injector substitute their own.
type FS interface {
	// CreateTemp creates a new O_EXCL temp file in dir; the pattern's
	// "*" is replaced with a random string, exactly as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (error-path temp cleanup).
	Remove(name string) error
	// SyncDir fsyncs a directory, making previously renamed or created
	// entries durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	// os.CreateTemp opens O_RDWR|O_CREATE|O_EXCL: a colliding name from
	// a dead writer is never silently adopted.
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
