package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// drive advances the fake clock whenever the supervisor blocks on its
// backoff timer, until done is closed.
func drive(fake *FakeClock, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		waitCh := make(chan struct{})
		go func() { fake.BlockUntil(1); close(waitCh) }()
		select {
		case <-done:
			return
		case <-waitCh:
			fake.Advance(time.Hour) // >= any capped backoff step
		}
	}
}

func TestSupervisorRetriesUntilSuccess(t *testing.T) {
	fake := NewFake(time.Unix(1_000_000, 0))
	attempts := 0
	sup := New("test", func(ctx context.Context) error {
		attempts++
		if attempts < 4 {
			return errBoom
		}
		return nil
	}, Config{Clock: fake})

	done := make(chan struct{})
	go drive(fake, done)
	if err := sup.Run(context.Background()); err != nil {
		t.Fatalf("Run = %v", err)
	}
	close(done)
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4", attempts)
	}
	if sup.Restarts() != 3 {
		t.Errorf("restarts = %d, want 3", sup.Restarts())
	}
}

func TestSupervisorBackoffGrowsAndCaps(t *testing.T) {
	fake := NewFake(time.Unix(0, 0))
	var mu sync.Mutex
	var waits []time.Duration
	cfg := Config{
		Clock:   fake,
		Backoff: Backoff{Min: 100 * time.Millisecond, Max: 800 * time.Millisecond},
		OnRetry: func(e Event) {
			mu.Lock()
			waits = append(waits, e.Wait)
			mu.Unlock()
		},
	}
	attempts := 0
	sup := New("growth", func(ctx context.Context) error {
		attempts++
		if attempts <= 6 {
			return errBoom
		}
		return nil
	}, cfg)
	done := make(chan struct{})
	go drive(fake, done)
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(done)

	want := []time.Duration{100, 200, 400, 800, 800, 800}
	for i := range want {
		want[i] *= time.Millisecond
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != len(want) {
		t.Fatalf("waits = %v", waits)
	}
	for i, w := range want {
		if waits[i] != w {
			t.Errorf("wait[%d] = %v, want %v", i, waits[i], w)
		}
	}
}

func TestSupervisorJitterDeterministic(t *testing.T) {
	collect := func(seed uint64) []time.Duration {
		fake := NewFake(time.Unix(0, 0))
		var waits []time.Duration
		var mu sync.Mutex
		attempts := 0
		sup := New("jitter", func(ctx context.Context) error {
			attempts++
			if attempts <= 5 {
				return errBoom
			}
			return nil
		}, Config{
			Clock:   fake,
			Seed:    seed,
			Backoff: Backoff{Min: time.Second, Max: time.Minute, Jitter: 0.5},
			OnRetry: func(e Event) { mu.Lock(); waits = append(waits, e.Wait); mu.Unlock() },
		})
		done := make(chan struct{})
		go drive(fake, done)
		if err := sup.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		close(done)
		return waits
	}

	a, b := collect(7), collect(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
		base := Backoff{Min: time.Second, Max: time.Minute, Factor: 2}.step(i)
		if a[i] < base || a[i] > base+base/2 {
			t.Errorf("wait[%d] = %v outside [%v, %v]", i, a[i], base, base+base/2)
		}
	}
	c := collect(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("distinct seeds produced identical jitter")
	}
}

func TestSupervisorBudgetExhausted(t *testing.T) {
	fake := NewFake(time.Unix(0, 0))
	sup := New("budget", func(ctx context.Context) error { return errBoom }, Config{
		Clock:  fake,
		Budget: 3,
		Window: time.Hour * 24 * 365, // the hour-sized drive steps stay inside
	})
	done := make(chan struct{})
	go drive(fake, done)
	err := sup.Run(context.Background())
	close(done)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestSupervisorStableRunResetsBackoff(t *testing.T) {
	fake := NewFake(time.Unix(0, 0))
	var waits []time.Duration
	var mu sync.Mutex
	attempts := 0
	sup := New("stable", func(ctx context.Context) error {
		attempts++
		if attempts == 4 {
			// A long, healthy run: the next failure restarts the
			// backoff sequence at Min.
			fake.Advance(2 * time.Minute)
		}
		if attempts <= 5 {
			return errBoom
		}
		return nil
	}, Config{
		Clock:       fake,
		StableAfter: time.Minute,
		Backoff:     Backoff{Min: 100 * time.Millisecond, Max: 10 * time.Second},
		OnRetry:     func(e Event) { mu.Lock(); waits = append(waits, e.Wait); mu.Unlock() },
	})
	done := make(chan struct{})
	go drive(fake, done)
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(done)
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 5 {
		t.Fatalf("waits = %v", waits)
	}
	if waits[3] != 100*time.Millisecond {
		t.Errorf("wait after stable run = %v, want reset to 100ms (all: %v)", waits[3], waits)
	}
}

func TestSupervisorContextCancelDuringWait(t *testing.T) {
	fake := NewFake(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	sup := New("cancel", func(ctx context.Context) error { return errBoom }, Config{Clock: fake})
	errCh := make(chan error, 1)
	go func() { errCh <- sup.Run(ctx) }()
	fake.BlockUntil(1) // supervisor is parked on its backoff timer
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not observe cancellation")
	}
}

func TestFakeClockTimers(t *testing.T) {
	fake := NewFake(time.Unix(100, 0))
	tm := fake.NewTimer(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	fake.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired at 9s")
	default:
	}
	fake.Advance(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("timer did not fire at 10s")
	}
	// Reset re-arms; Stop disarms.
	tm.Reset(5 * time.Second)
	fake.Advance(4 * time.Second)
	tm.Stop()
	fake.Advance(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if got := fake.Now(); got != time.Unix(124, 0) {
		t.Errorf("Now = %v", got)
	}
}
