// Package session supervises long-lived network sessions: the BGP
// feeds and RPKI-to-Router synchronization the paper's measurement
// substrate keeps up for years across flapping peers and stalled
// caches. A Supervisor runs a session function, and when it fails,
// restarts it under jittered exponential backoff with an optional
// restart budget — the generic self-healing layer under
// bgpd.Collector.DialPeer and rtr.ClientSession. All waiting goes
// through a Clock, so tests drive every retry deterministically.
package session

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrBudgetExhausted is returned (wrapped) by Supervisor.Run when a
// session fails more than Config.Budget times inside Config.Window.
var ErrBudgetExhausted = errors.New("session: restart budget exhausted")

// Backoff shapes the wait between restarts: Min doubling (by Factor)
// up to Max, plus a deterministic jitter fraction drawn from the
// supervisor's seed.
type Backoff struct {
	Min    time.Duration // first wait; 0 means 500ms
	Max    time.Duration // cap; 0 means 30s
	Factor float64       // growth per consecutive failure; 0 means 2
	Jitter float64       // extra wait up to this fraction of the step; 0 means none
}

func (b Backoff) withDefaults() Backoff {
	if b.Min <= 0 {
		b.Min = 500 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 30 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	return b
}

// step returns the base wait for the given consecutive-failure count.
func (b Backoff) step(attempt int) time.Duration {
	d := float64(b.Min)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			return b.Max
		}
	}
	if d > float64(b.Max) {
		return b.Max
	}
	return time.Duration(d)
}

// Event describes one supervised restart, for logging and tests.
type Event struct {
	Name    string        // supervisor name
	Attempt int           // consecutive failures so far (1 on the first restart)
	Err     error         // the failure that triggered the restart
	Wait    time.Duration // jittered backoff before the next attempt
}

// Config parameterizes a Supervisor. The zero value is usable: real
// clock, 500ms..30s doubling backoff, no jitter, unlimited restarts.
type Config struct {
	Backoff Backoff
	// Budget caps restarts inside Window; a session failing more often
	// is abandoned with ErrBudgetExhausted. Zero means unlimited.
	Budget int
	// Window is the sliding budget window; zero means one minute.
	Window time.Duration
	// StableAfter resets the backoff sequence when a session survives
	// at least this long; zero means one minute.
	StableAfter time.Duration
	// Clock drives all waiting; nil means the real clock.
	Clock Clock
	// Seed feeds the deterministic jitter source.
	Seed uint64
	// OnRetry, when non-nil, observes every restart decision.
	OnRetry func(Event)
}

// Supervisor restarts a failing session function under backoff.
type Supervisor struct {
	name string
	run  func(context.Context) error
	cfg  Config

	clock    Clock
	backoff  Backoff
	rng      uint64
	restarts int
}

// New returns a Supervisor for the session function. run is restarted
// every time it returns a non-nil error; returning nil, or the context
// ending, stops supervision.
func New(name string, run func(context.Context) error, cfg Config) *Supervisor {
	if cfg.Clock == nil {
		cfg.Clock = Real()
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.StableAfter <= 0 {
		cfg.StableAfter = time.Minute
	}
	return &Supervisor{
		name:    name,
		run:     run,
		cfg:     cfg,
		clock:   cfg.Clock,
		backoff: cfg.Backoff.withDefaults(),
		rng:     cfg.Seed,
	}
}

// Restarts returns how many times the session has been restarted.
func (s *Supervisor) Restarts() int { return s.restarts }

// next advances the supervisor's splitmix64 jitter state.
func (s *Supervisor) next() uint64 {
	s.rng += 0x9E3779B97F4A7C15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// wait returns the jittered backoff for the given consecutive-failure
// count, never exceeding Max.
func (s *Supervisor) wait(attempt int) time.Duration {
	d := s.backoff.step(attempt)
	if s.backoff.Jitter > 0 {
		frac := float64(s.next()%1000) / 1000
		d += time.Duration(s.backoff.Jitter * frac * float64(d))
		if d > s.backoff.Max {
			d = s.backoff.Max
		}
	}
	return d
}

// Run supervises the session until it returns nil, the context ends,
// or the restart budget is exhausted. The error of the final attempt
// is wrapped into the budget error.
func (s *Supervisor) Run(ctx context.Context) error {
	attempt := 0 // consecutive failures
	var windowStart time.Time
	inWindow := 0
	for {
		start := s.clock.Now()
		err := s.run(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err == nil {
			return nil
		}
		now := s.clock.Now()
		if now.Sub(start) >= s.cfg.StableAfter {
			attempt = 0
		}
		attempt++
		if s.cfg.Budget > 0 {
			if windowStart.IsZero() || now.Sub(windowStart) > s.cfg.Window {
				windowStart = now
				inWindow = 0
			}
			inWindow++
			if inWindow > s.cfg.Budget {
				return fmt.Errorf("%w: %s failed %d times in %v: %v",
					ErrBudgetExhausted, s.name, inWindow, s.cfg.Window, err)
			}
		}
		wait := s.wait(attempt - 1)
		s.restarts++
		if s.cfg.OnRetry != nil {
			s.cfg.OnRetry(Event{Name: s.name, Attempt: attempt, Err: err, Wait: wait})
		}
		t := s.clock.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C():
		}
	}
}

// Supervise is the one-call form: New(name, run, cfg).Run(ctx).
func Supervise(ctx context.Context, name string, run func(context.Context) error, cfg Config) error {
	return New(name, run, cfg).Run(ctx)
}
