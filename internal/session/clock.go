// Clock abstraction for the supervision layer. Every timer the live
// session code arms — reconnect backoff, BGP hold timers, RTR
// refresh/retry/expire — goes through a Clock so tests drive the whole
// state machine deterministically with a FakeClock instead of sleeping.
package session

import (
	"sync"
	"time"
)

// Clock supplies the current time and timers. Real() returns the
// wall-clock implementation; NewFake returns a manually advanced one.
type Clock interface {
	Now() time.Time
	NewTimer(d time.Duration) Timer
}

// Timer is a restartable single-shot timer. Unlike time.Timer, Reset
// and Stop are safe to call without draining C, but C must be consumed
// from a single goroutine.
type Timer interface {
	C() <-chan time.Time
	Stop()
	Reset(d time.Duration)
}

// Real returns the wall-clock Clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return &realTimer{t: time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (r *realTimer) C() <-chan time.Time { return r.t.C }
func (r *realTimer) Stop()               { r.t.Stop() }

// Reset relies on the Go 1.23+ timer semantics (go.mod pins 1.24):
// Reset after a fire cannot deliver the stale value.
func (r *realTimer) Reset(d time.Duration) { r.t.Reset(d) }

// FakeClock is a deterministic Clock: time moves only through Advance,
// which fires every timer whose deadline has been reached. Safe for
// concurrent use.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	timers  map[*fakeTimer]struct{}
	changed chan struct{} // closed and replaced on every state change
}

// NewFake returns a FakeClock starting at the given instant.
func NewFake(start time.Time) *FakeClock {
	return &FakeClock{
		now:     start,
		timers:  make(map[*fakeTimer]struct{}),
		changed: make(chan struct{}),
	}
}

// Now returns the fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTimer arms a timer d from the fake now. A non-positive d fires on
// the next Advance (or immediately at creation for d <= 0).
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{
		clock:  c,
		ch:     make(chan time.Time, 1),
		when:   c.now.Add(d),
		active: true,
	}
	if !t.when.After(c.now) {
		t.fireLocked(c.now)
	}
	c.timers[t] = struct{}{}
	c.signalLocked()
	return t
}

// Advance moves the fake time forward and fires every due timer.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for t := range c.timers {
		if t.active && !t.when.After(c.now) {
			t.fireLocked(c.now)
		}
	}
	c.signalLocked()
}

// BlockUntil waits until at least n timers are armed — the
// synchronization point between a test's Advance and the goroutine
// under test arming its timer.
func (c *FakeClock) BlockUntil(n int) {
	for {
		c.mu.Lock()
		active := 0
		for t := range c.timers {
			if t.active {
				active++
			}
		}
		ch := c.changed
		c.mu.Unlock()
		if active >= n {
			return
		}
		<-ch
	}
}

// signalLocked wakes every BlockUntil waiter.
func (c *FakeClock) signalLocked() {
	close(c.changed)
	c.changed = make(chan struct{})
}

type fakeTimer struct {
	clock  *FakeClock
	ch     chan time.Time
	when   time.Time
	active bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	t.active = false
	delete(c.timers, t)
	c.signalLocked()
}

func (t *fakeTimer) Reset(d time.Duration) {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // drop an unconsumed fire; Reset re-arms cleanly
	case <-t.ch:
	default:
	}
	t.when = c.now.Add(d)
	t.active = true
	c.timers[t] = struct{}{}
	if !t.when.After(c.now) {
		t.fireLocked(c.now)
	}
	c.signalLocked()
}

// fireLocked delivers the tick and disarms. Callers hold clock.mu.
func (t *fakeTimer) fireLocked(now time.Time) {
	t.active = false
	select {
	case t.ch <- now:
	default:
	}
}
