package timex_test

import (
	"fmt"

	"dropscope/internal/timex"
)

// ExampleDay shows day arithmetic across archive formats: the paper's
// study window and the two date spellings the archives use.
func ExampleDay() {
	first := timex.MustParseDay("2019-06-05")
	last := timex.MustParseDay("20220330") // RIR-stats compact form

	fmt.Println(int(last-first)+1, "days")
	fmt.Println(first.Compact(), "..", last.String())
	// Output:
	// 1030 days
	// 20190605 .. 2022-03-30
}
