package timex

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDayRoundTrip(t *testing.T) {
	d := DateDay(2019, time.June, 5)
	if d.String() != "2019-06-05" {
		t.Errorf("String = %q", d.String())
	}
	if d.Compact() != "20190605" {
		t.Errorf("Compact = %q", d.Compact())
	}
	y, m, dd := d.Date()
	if y != 2019 || m != time.June || dd != 5 {
		t.Errorf("Date = %d-%v-%d", y, m, dd)
	}
}

func TestDayArithmetic(t *testing.T) {
	d := DateDay(2020, time.February, 28)
	if (d + 1).String() != "2020-02-29" { // leap year
		t.Errorf("leap day: %v", (d + 1).String())
	}
	if (d + 2).String() != "2020-03-01" {
		t.Errorf("after leap: %v", (d + 2).String())
	}
	jan1 := DateDay(2020, time.January, 1)
	dec31 := DateDay(2019, time.December, 31)
	if jan1-dec31 != 1 {
		t.Errorf("year boundary diff = %d", jan1-dec31)
	}
}

func TestParseDayFormats(t *testing.T) {
	for _, s := range []string{"2022-03-30", "20220330"} {
		d, err := ParseDay(s)
		if err != nil {
			t.Fatalf("ParseDay(%q): %v", s, err)
		}
		if d != DateDay(2022, time.March, 30) {
			t.Errorf("ParseDay(%q) = %v", s, d)
		}
	}
	for _, s := range []string{"", "2022/03/30", "20220399", "2022-13-01", "abc"} {
		if _, err := ParseDay(s); err == nil {
			t.Errorf("ParseDay(%q) should fail", s)
		}
	}
}

func TestDayPropertyRoundTrip(t *testing.T) {
	f := func(n int16) bool {
		d := DateDay(2000, time.January, 1) + Day(int32(n)) // ±~90 years around 2000
		back, err := ParseDay(d.String())
		if err != nil || back != d {
			return false
		}
		back2, err := ParseDay(d.Compact())
		return err == nil && back2 == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromTime(t *testing.T) {
	// 23:59 UTC is still the same day; a timezone east of UTC may not be.
	tt := time.Date(2021, time.July, 4, 23, 59, 0, 0, time.UTC)
	if FromTime(tt) != DateDay(2021, time.July, 4) {
		t.Error("FromTime UTC truncation")
	}
	east := time.FixedZone("east", 3*3600)
	tt2 := time.Date(2021, time.July, 5, 1, 0, 0, 0, east) // 22:00 Jul 4 UTC
	if FromTime(tt2) != DateDay(2021, time.July, 4) {
		t.Error("FromTime should convert to UTC first")
	}
}

func TestRange(t *testing.T) {
	r := Range{DateDay(2019, time.June, 5), DateDay(2019, time.June, 9)}
	if r.Days() != 5 {
		t.Errorf("Days = %d", r.Days())
	}
	if !r.Contains(r.First) || !r.Contains(r.Last) {
		t.Error("Contains endpoints")
	}
	if r.Contains(r.First-1) || r.Contains(r.Last+1) {
		t.Error("Contains outside")
	}
	var visited []Day
	r.Each(func(d Day) bool {
		visited = append(visited, d)
		return true
	})
	if len(visited) != 5 || visited[0] != r.First || visited[4] != r.Last {
		t.Errorf("Each visited %v", visited)
	}
	// Early stop.
	n := 0
	r.Each(func(Day) bool { n++; return false })
	if n != 1 {
		t.Errorf("Each early stop visited %d", n)
	}
	inverted := Range{r.Last, r.First}
	if inverted.Days() != 0 {
		t.Error("inverted range should have 0 days")
	}
}
