// Package timex provides a compact daily-resolution date type used by all
// the archive formats in this repository (DROP snapshots, ROA archives,
// RIR stats, IRR journals), which are published at daily granularity.
package timex

import (
	"fmt"
	"time"
)

// Day counts days since the Unix epoch (1970-01-01 UTC). The zero value
// is the epoch itself. Day is comparable and arithmetic-friendly: d+7 is
// one week later.
type Day int32

// DateDay constructs a Day from a calendar date.
func DateDay(year int, month time.Month, day int) Day {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Day(t.Unix() / 86400)
}

// FromTime truncates t to its UTC calendar day.
func FromTime(t time.Time) Day {
	tt := t.UTC()
	return DateDay(tt.Year(), tt.Month(), tt.Day())
}

// Time returns midnight UTC of d.
func (d Day) Time() time.Time {
	return time.Unix(int64(d)*86400, 0).UTC()
}

// Date returns the calendar date of d.
func (d Day) Date() (year int, month time.Month, day int) {
	return d.Time().Date()
}

// String renders d as "2019-06-05".
func (d Day) String() string {
	y, m, dd := d.Date()
	return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
}

// Compact renders d as "20190605", the form used in RIR stats files and
// archive file names.
func (d Day) Compact() string {
	y, m, dd := d.Date()
	return fmt.Sprintf("%04d%02d%02d", y, m, dd)
}

// ParseDay accepts either "2006-01-02" or "20060102".
func ParseDay(s string) (Day, error) {
	var layout string
	switch len(s) {
	case 10:
		layout = "2006-01-02"
	case 8:
		layout = "20060102"
	default:
		return 0, fmt.Errorf("timex: unrecognized date %q", s)
	}
	t, err := time.Parse(layout, s)
	if err != nil {
		return 0, fmt.Errorf("timex: %v", err)
	}
	return FromTime(t), nil
}

// MustParseDay is ParseDay for constants; it panics on error.
func MustParseDay(s string) Day {
	d, err := ParseDay(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Range is an inclusive span of days.
type Range struct {
	First, Last Day
}

// Contains reports whether d falls within r.
func (r Range) Contains(d Day) bool { return d >= r.First && d <= r.Last }

// Days returns the number of days in r (0 if inverted).
func (r Range) Days() int {
	if r.Last < r.First {
		return 0
	}
	return int(r.Last-r.First) + 1
}

// Each calls fn for every day in r in order, stopping if fn returns false.
func (r Range) Each(fn func(Day) bool) {
	for d := r.First; d <= r.Last; d++ {
		if !fn(d) {
			return
		}
	}
}

// String renders r as "2019-06-05..2022-03-30".
func (r Range) String() string {
	return r.First.String() + ".." + r.Last.String()
}
