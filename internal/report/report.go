// Package report renders analysis results as aligned text tables and
// ASCII plots — the form the benchmark harness and CLI use to present
// each of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends one row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f%%", v*100)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// RawRow appends one row of preformatted strings.
func (t *Table) RawRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)) + "\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CDF renders a cumulative distribution as an ASCII plot: xs must be the
// sorted sample values.
func CDF(title, xlabel string, xs []float64, width, height int) string {
	if len(xs) == 0 {
		return title + ": (no data)\n"
	}
	lo, hi := xs[0], xs[len(xs)-1]
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i, x := range xs {
		frac := float64(i+1) / float64(len(xs))
		col := int((x - lo) / (hi - lo) * float64(width-1))
		row := height - 1 - int(frac*float64(height-1))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = '*'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, line := range grid {
		frac := float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s\n", frac, string(line))
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "       %-*s%s\n", width-len(fmt.Sprint(hi)), fmtF(lo), fmtF(hi))
	fmt.Fprintf(&b, "       (%s)\n", xlabel)
	return b.String()
}

func fmtF(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// Series is one line of a time-series plot.
type Series struct {
	Name   string
	Points []float64 // sampled at uniform x intervals
}

// TimeSeries renders multiple series sampled on a common x grid. Each
// series is drawn with its own rune.
func TimeSeries(title string, xlabels [2]string, series []Series, width, height int) string {
	marks := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s.Points {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if maxLen == 0 {
		return title + ": (no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, v := range s.Points {
			col := 0
			if maxLen > 1 {
				col = i * (width - 1) / (maxLen - 1)
			}
			row := height - 1 - int((v-lo)/(hi-lo)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, line := range grid {
		v := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%10s |%s\n", fmtF(v), string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", width-len(xlabels[1]), xlabels[0], xlabels[1])
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

// Gantt renders labeled horizontal spans (the Figure-4 timeline style).
// Each span is [from, to) in arbitrary units within [min, max].
type GanttRow struct {
	Label string
	Spans []GanttSpan
}

// GanttSpan is one bar of a Gantt row.
type GanttSpan struct {
	From, To float64
	Note     string
}

// Gantt renders the rows across [min, max] scaled to width characters.
func Gantt(title string, min, max float64, rows []GanttRow, width int) string {
	if max <= min {
		max = min + 1
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		line := []byte(strings.Repeat(".", width))
		notes := ""
		for _, s := range r.Spans {
			from := int((s.From - min) / (max - min) * float64(width-1))
			to := int((s.To - min) / (max - min) * float64(width-1))
			if from < 0 {
				from = 0
			}
			if to >= width {
				to = width - 1
			}
			for c := from; c <= to && c < width; c++ {
				line[c] = '='
			}
			if s.Note != "" {
				notes += " [" + s.Note + "]"
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|%s\n", labelW, r.Label, string(line), notes)
	}
	return b.String()
}
