package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "Region", "Rate", "N")
	tb.Row("afrinic", 0.118, 3901)
	tb.Row("ripencc", 0.330, 68200)
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "=") {
		t.Errorf("missing title/underline:\n%s", s)
	}
	if !strings.Contains(s, "11.8%") || !strings.Contains(s, "33.0%") {
		t.Errorf("floats should render as percentages:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Data lines must align: the "Rate" column starts at the same offset.
	var dataLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "afrinic") || strings.HasPrefix(l, "ripencc") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 2 {
		t.Fatalf("data lines: %v", dataLines)
	}
	if strings.Index(dataLines[0], "11.8%") != strings.Index(dataLines[1], "33.0%") {
		t.Errorf("columns unaligned:\n%s", s)
	}
}

func TestTableRawRowAndRagged(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.RawRow("x")
	tb.RawRow("yy", "zz", "extra")
	s := tb.String()
	if !strings.Contains(s, "extra") {
		t.Errorf("ragged row dropped:\n%s", s)
	}
}

func TestCDFRender(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	s := CDF("test cdf", "fraction", xs, 40, 10)
	if !strings.Contains(s, "test cdf") || !strings.Contains(s, "*") {
		t.Errorf("bad CDF:\n%s", s)
	}
	if CDF("empty", "x", nil, 40, 10) != "empty: (no data)\n" {
		t.Error("empty CDF should say no data")
	}
	// Degenerate: all samples equal must not divide by zero.
	s2 := CDF("flat", "x", []float64{5, 5, 5}, 20, 5)
	if !strings.Contains(s2, "*") {
		t.Errorf("flat CDF:\n%s", s2)
	}
}

func TestTimeSeriesRender(t *testing.T) {
	s := TimeSeries("roas", [2]string{"2019", "2022"}, []Series{
		{Name: "signed", Points: []float64{1, 2, 3, 4}},
		{Name: "routed", Points: []float64{1, 1.9, 2.7, 3.5}},
	}, 40, 8)
	if !strings.Contains(s, "signed") || !strings.Contains(s, "routed") {
		t.Errorf("legend missing:\n%s", s)
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Errorf("marks missing:\n%s", s)
	}
	if TimeSeries("none", [2]string{"a", "b"}, nil, 10, 5) != "none: (no data)\n" {
		t.Error("empty series")
	}
	// Constant series must not divide by zero.
	s2 := TimeSeries("const", [2]string{"a", "b"}, []Series{{Name: "c", Points: []float64{2, 2}}}, 10, 5)
	if !strings.Contains(s2, "*") {
		t.Errorf("const series:\n%s", s2)
	}
}

func TestGanttRender(t *testing.T) {
	s := Gantt("timeline", 0, 100, []GanttRow{
		{Label: "132.255.0.0/22", Spans: []GanttSpan{{From: 0, To: 40, Note: "owner"}, {From: 60, To: 100, Note: "hijack"}}},
		{Label: "x", Spans: nil},
	}, 50)
	if !strings.Contains(s, "=") || !strings.Contains(s, "[owner]") || !strings.Contains(s, "[hijack]") {
		t.Errorf("bad gantt:\n%s", s)
	}
	// Out-of-range spans are clamped, not panicking.
	s2 := Gantt("clamp", 0, 10, []GanttRow{
		{Label: "y", Spans: []GanttSpan{{From: -5, To: 50}}},
	}, 20)
	if !strings.Contains(s2, "====") {
		t.Errorf("clamped span:\n%s", s2)
	}
}
