// Package sbl implements the Spamhaus Block List substrate: a store of
// SBL records (the freeform text that documents why a prefix was listed)
// and the paper's Appendix-A semi-automated categorization — keyword
// matching with a manual-review fallback, multi-label output, and
// extraction of the "malicious ASN" named in the record.
package sbl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
)

// Category is one of the paper's six DROP prefix categories (§3.1).
type Category uint8

// Categories, in the order Figure 1 reports them.
const (
	Hijacked Category = iota
	Snowshoe
	KnownSpam
	MaliciousHosting
	Unallocated
	NoRecord
	numCategories
)

// String returns the paper's abbreviation for c.
func (c Category) String() string {
	switch c {
	case Hijacked:
		return "HJ"
	case Snowshoe:
		return "SS"
	case KnownSpam:
		return "KS"
	case MaliciousHosting:
		return "MH"
	case Unallocated:
		return "UA"
	case NoRecord:
		return "NR"
	}
	return "??"
}

// Name returns the full category name.
func (c Category) Name() string {
	switch c {
	case Hijacked:
		return "Hijacked"
	case Snowshoe:
		return "Snowshoe Spam"
	case KnownSpam:
		return "Known Spam Operation"
	case MaliciousHosting:
		return "Malicious Hosting"
	case Unallocated:
		return "Unallocated"
	case NoRecord:
		return "No SBL Record"
	}
	return "Unknown"
}

// Categories lists all categories in report order.
func Categories() []Category {
	return []Category{Hijacked, Snowshoe, KnownSpam, MaliciousHosting, Unallocated, NoRecord}
}

// Record is one SBL database entry.
type Record struct {
	ID   string // e.g. "SBL502548"
	Text string // freeform investigator notes
}

// Classification is the outcome of categorizing one record.
type Classification struct {
	Categories []Category // sorted, deduplicated; empty if nothing matched
	ASNs       []bgp.ASN  // "malicious ASNs" named in the record
	// NeedsReview is set when no keyword matched (Appendix A: 7.3% of
	// records) or when 'hosting' appeared outside an obviously malicious
	// context; a human would assign the label.
	NeedsReview bool
}

// Has reports whether the classification includes c.
func (cl Classification) Has(c Category) bool {
	for _, got := range cl.Categories {
		if got == c {
			return true
		}
	}
	return false
}

// maliciousHostingContexts are the usages the paper's manual pass
// confirmed as malicious ("spam hosting, bulletproof hosting, botnet
// hosting etc"). 'hosting' alone — e.g. a contact address like
// "billing@ahostinginc.com" — does not classify.
var maliciousHostingContexts = []string{
	"spam hosting", "spammer hosting", "bulletproof hosting",
	"botnet hosting", "malware hosting", "abuse hosting",
	"criminal hosting", "hosting malicious",
}

// Classify applies the Appendix-A keyword process to one record's text.
func Classify(text string) Classification {
	lower := strings.ToLower(text)
	var cl Classification
	add := func(c Category) {
		if !cl.Has(c) {
			cl.Categories = append(cl.Categories, c)
		}
	}

	if strings.Contains(lower, "hijack") || strings.Contains(lower, "stolen") {
		add(Hijacked)
	}
	if strings.Contains(lower, "snowshoe") {
		add(Snowshoe)
	}
	if strings.Contains(lower, "known spam operation") ||
		strings.Contains(lower, "register of known spam operations") {
		add(KnownSpam)
	}
	if strings.Contains(lower, "unallocated") || strings.Contains(lower, "bogon") {
		add(Unallocated)
	}
	if strings.Contains(lower, "hosting") {
		matched := false
		for _, ctx := range maliciousHostingContexts {
			if strings.Contains(lower, ctx) {
				add(MaliciousHosting)
				matched = true
				break
			}
		}
		if !matched && len(cl.Categories) == 0 {
			// 'hosting' in a non-malicious context and nothing else
			// matched: defer to manual review.
			cl.NeedsReview = true
		}
	}
	if len(cl.Categories) == 0 {
		cl.NeedsReview = true
	}

	sort.Slice(cl.Categories, func(i, j int) bool { return cl.Categories[i] < cl.Categories[j] })
	cl.ASNs = ExtractASNs(text)
	return cl
}

// ExtractASNs returns the distinct AS numbers written as "AS12345" in
// the text, in order of first appearance.
func ExtractASNs(text string) []bgp.ASN {
	var out []bgp.ASN
	seen := make(map[bgp.ASN]bool)
	for i := 0; i+2 < len(text); i++ {
		if (text[i] != 'A' && text[i] != 'a') || (text[i+1] != 'S' && text[i+1] != 's') {
			continue
		}
		// Must not be inside a word ("ALIAS1" should not match).
		if i > 0 && isWordByte(text[i-1]) {
			continue
		}
		j := i + 2
		var v uint64
		for j < len(text) && text[j] >= '0' && text[j] <= '9' {
			v = v*10 + uint64(text[j]-'0')
			if v > 0xFFFFFFFF {
				v = 0xFFFFFFFF + 1
				break
			}
			j++
		}
		if j == i+2 || v > 0xFFFFFFFF {
			continue
		}
		asn := bgp.ASN(v)
		if !seen[asn] {
			seen[asn] = true
			out = append(out, asn)
		}
		i = j - 1
	}
	return out
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

// DB is an in-memory SBL record store keyed by record ID.
type DB struct {
	records map[string]Record
}

// NewDB returns an empty record store.
func NewDB() *DB { return &DB{records: make(map[string]Record)} }

// Put stores (or replaces) a record.
func (db *DB) Put(rec Record) { db.records[rec.ID] = rec }

// Get returns the record with the given ID.
func (db *DB) Get(id string) (Record, bool) {
	r, ok := db.records[id]
	return r, ok
}

// Delete removes a record, modeling Spamhaus removing the SBL entry
// after remediation (the paper's "No SBL Record" category).
func (db *DB) Delete(id string) { delete(db.records, id) }

// Len returns the number of stored records.
func (db *DB) Len() int { return len(db.records) }

// ClassifyRef classifies the record with the given ID. A missing or
// empty reference yields the NoRecord category.
func (db *DB) ClassifyRef(id string) Classification {
	if id == "" {
		return Classification{Categories: []Category{NoRecord}}
	}
	rec, ok := db.Get(id)
	if !ok {
		return Classification{Categories: []Category{NoRecord}}
	}
	return Classify(rec.Text)
}

// IDs returns the stored record IDs in sorted order.
func (db *DB) IDs() []string {
	out := make([]string, 0, len(db.records))
	for id := range db.records {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// WriteStore serializes the database in the flat store format the
// archive layer persists: an "@<ID>" header line, then the record text
// until the next header. Records are emitted in sorted ID order.
func WriteStore(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for _, id := range db.IDs() {
		rec, _ := db.Get(id)
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n", rec.ID, rec.Text); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseStore reads the format WriteStore emits into db. Text before the
// first "@" header belongs to no record and is dropped; use
// ParseStoreHealth to have such lines counted.
func ParseStore(r io.Reader, db *DB) error {
	return parseStore(r, db, nil)
}

// ParseStoreHealth is the accounting variant of ParseStore: stored
// records are counted on src, and orphan lines preceding the first
// record header are counted as skipped.
func ParseStoreHealth(r io.Reader, db *DB, src *ingest.Source) error {
	return parseStore(r, db, src)
}

func parseStore(r io.Reader, db *DB, src *ingest.Source) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var id string
	var text []string
	flush := func() {
		if id != "" {
			db.Put(Record{ID: id, Text: strings.Join(text, "\n")})
			if src != nil {
				src.Accept(1)
			}
		}
	}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "@") {
			flush()
			id = line[1:]
			text = text[:0]
			continue
		}
		if id == "" {
			// Orphan text before any record header.
			if src != nil && strings.TrimSpace(line) != "" {
				src.Skip(ingest.BadLine)
			}
			continue
		}
		text = append(text, line)
	}
	flush()
	return sc.Err()
}
