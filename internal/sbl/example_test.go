package sbl_test

import (
	"fmt"

	"dropscope/internal/sbl"
)

// ExampleClassify runs the Appendix-A keyword process on a record shaped
// like the paper's Table-2 excerpt SBL502548.
func ExampleClassify() {
	cl := sbl.Classify("Snowshoe IP block on Stolen AS62927 ... james.johnson@networxhosting.com")
	for _, c := range cl.Categories {
		fmt.Println(c.Name())
	}
	fmt.Println("ASNs:", cl.ASNs)
	// Output:
	// Hijacked
	// Snowshoe Spam
	// ASNs: [AS62927]
}
