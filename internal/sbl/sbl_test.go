package sbl

import (
	"testing"

	"dropscope/internal/bgp"
)

// The six excerpts of the paper's Table 2, verbatim keywords.
var table2 = []struct {
	id   string
	text string
	want []Category
}{
	{"SBL310721", "AS204139 spammer hosting", []Category{MaliciousHosting}},
	{"SBL240976", "hijacked IP range ... billing@ahostinginc.com", []Category{Hijacked}},
	{"SBL502548", "Snowshoe IP block on Stolen AS62927 ... james.johnson@networxhosting.com", []Category{Hijacked, Snowshoe}},
	{"SBL322513", "Register Of Known Spam Operations ... snowshoe range", []Category{Snowshoe, KnownSpam}},
	{"SBL294939", "Register Of Known Spam Operations ... illegal netblock hijacking operation", []Category{Hijacked, KnownSpam}},
	{"SBL325529", "Department of Defense ... Spamhaus believes that this IP address range is being used or is about to be used for the purpose of high volume spam emission.", nil}, // manual review
}

func TestTable2Classification(t *testing.T) {
	for _, c := range table2 {
		cl := Classify(c.text)
		if c.want == nil {
			if !cl.NeedsReview || len(cl.Categories) != 0 {
				t.Errorf("%s: want manual review, got %+v", c.id, cl)
			}
			continue
		}
		if len(cl.Categories) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.id, cl.Categories, c.want)
			continue
		}
		for _, w := range c.want {
			if !cl.Has(w) {
				t.Errorf("%s: missing %v in %v", c.id, w, cl.Categories)
			}
		}
	}
}

func TestHostingContextGuard(t *testing.T) {
	// 'hosting' in a contact address must not classify by itself.
	cl := Classify("contact billing@ahostinginc.com for removal")
	if cl.Has(MaliciousHosting) {
		t.Errorf("non-malicious hosting matched: %+v", cl)
	}
	if !cl.NeedsReview {
		t.Error("ambiguous hosting should defer to review")
	}
	// But combined with another keyword the record classifies without review.
	cl2 := Classify("hijacked range, contact abuse@webhosting.example")
	if !cl2.Has(Hijacked) || cl2.NeedsReview {
		t.Errorf("hijack + incidental hosting: %+v", cl2)
	}
	// Bulletproof hosting classifies.
	cl3 := Classify("bulletproof hosting operation ignoring complaints")
	if !cl3.Has(MaliciousHosting) || cl3.NeedsReview {
		t.Errorf("bulletproof hosting: %+v", cl3)
	}
}

func TestUnallocatedKeywords(t *testing.T) {
	for _, text := range []string{"unallocated address space", "announcing a bogon prefix"} {
		if cl := Classify(text); !cl.Has(Unallocated) {
			t.Errorf("%q: %+v", text, cl)
		}
	}
}

func TestMultiLabelSorted(t *testing.T) {
	cl := Classify("snowshoe spam from stolen hijacked unallocated bogon space at a spam hosting outfit, Register of Known Spam Operations")
	want := []Category{Hijacked, Snowshoe, KnownSpam, MaliciousHosting, Unallocated}
	if len(cl.Categories) != len(want) {
		t.Fatalf("got %v", cl.Categories)
	}
	for i := range want {
		if cl.Categories[i] != want[i] {
			t.Fatalf("order: got %v want %v", cl.Categories, want)
		}
	}
}

func TestExtractASNs(t *testing.T) {
	cases := []struct {
		text string
		want []bgp.ASN
	}{
		{"Stolen AS62927 routed via AS50509 and AS62927 again", []bgp.ASN{62927, 50509}},
		{"no asns here", nil},
		{"ALIAS123 is not an ASN, but as4134 is", []bgp.ASN{4134}},
		{"AS alone, AS- too, AS99999999999999 overflows", nil},
		{"AS0 is reserved", []bgp.ASN{0}},
	}
	for _, c := range cases {
		got := ExtractASNs(c.text)
		if len(got) != len(c.want) {
			t.Errorf("%q: got %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%q: got %v, want %v", c.text, got, c.want)
			}
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	abbr := map[Category]string{
		Hijacked: "HJ", Snowshoe: "SS", KnownSpam: "KS",
		MaliciousHosting: "MH", Unallocated: "UA", NoRecord: "NR",
	}
	for c, want := range abbr {
		if c.String() != want {
			t.Errorf("%v.String() = %q", c.Name(), c.String())
		}
		if c.Name() == "Unknown" {
			t.Errorf("category %v has no name", c)
		}
	}
	if got := len(Categories()); got != 6 {
		t.Errorf("Categories() = %d entries", got)
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	db.Put(Record{ID: "SBL1", Text: "hijacked space"})
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if cl := db.ClassifyRef("SBL1"); !cl.Has(Hijacked) {
		t.Errorf("ClassifyRef = %+v", cl)
	}
	// Missing and empty refs yield NoRecord.
	for _, ref := range []string{"", "SBL404"} {
		cl := db.ClassifyRef(ref)
		if !cl.Has(NoRecord) || len(cl.Categories) != 1 {
			t.Errorf("ClassifyRef(%q) = %+v", ref, cl)
		}
	}
	// Deleting the record models post-remediation removal.
	db.Delete("SBL1")
	if cl := db.ClassifyRef("SBL1"); !cl.Has(NoRecord) {
		t.Errorf("after delete: %+v", cl)
	}
	if _, ok := db.Get("SBL1"); ok {
		t.Error("record should be gone")
	}
}
