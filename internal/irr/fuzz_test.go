package irr

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	f.Add(sampleRPSL)
	f.Add("route: 1.2.3.0/24\norigin: AS1\n")
	f.Add("+ orphan continuation\n")
	f.Add("# only comments\n\n\n")
	f.Fuzz(func(t *testing.T, s string) {
		objs, err := Parse(strings.NewReader(s))
		if err != nil {
			return
		}
		// Accepted objects must print and re-parse to the same count.
		var buf bytes.Buffer
		if err := Print(&buf, objs); err != nil {
			t.Fatalf("print: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(back) != len(objs) {
			t.Fatalf("object count %d -> %d", len(objs), len(back))
		}
	})
}

func FuzzParseJournal(f *testing.F) {
	var db DB
	obj := &Object{}
	obj.Add("route", "192.0.2.0/24")
	obj.Add("origin", "AS64500")
	_ = db.Add(100, obj)
	var buf bytes.Buffer
	_ = db.WriteJournal(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("%ADD zzz\nroute: x\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseJournal(data)
	})
}
