// Package irr implements the Internet Routing Registry substrate: RPSL
// object parsing and printing (the flat-file format RADb publishes), and a
// journaled database that answers the temporal queries in the paper —
// which route objects covered a prefix on a given day, when an object was
// created, and when it was removed.
package irr

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// Attr is one RPSL attribute line.
type Attr struct {
	Name  string
	Value string
}

// Object is a generic RPSL object: a class (the first attribute's name)
// plus its attributes in order.
type Object struct {
	Attrs []Attr
}

// Class returns the object class — the name of the first attribute —
// e.g. "route", "mntner", "organisation".
func (o *Object) Class() string {
	if len(o.Attrs) == 0 {
		return ""
	}
	return o.Attrs[0].Name
}

// Key returns the object's primary key (the first attribute's value).
func (o *Object) Key() string {
	if len(o.Attrs) == 0 {
		return ""
	}
	return o.Attrs[0].Value
}

// Get returns the first value of the named attribute.
func (o *Object) Get(name string) (string, bool) {
	for _, a := range o.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// GetAll returns every value of the named attribute.
func (o *Object) GetAll(name string) []string {
	var out []string
	for _, a := range o.Attrs {
		if a.Name == name {
			out = append(out, a.Value)
		}
	}
	return out
}

// Add appends an attribute.
func (o *Object) Add(name, value string) {
	o.Attrs = append(o.Attrs, Attr{name, value})
}

// Route is the typed view of a route object, the record class the
// analysis uses.
type Route struct {
	Prefix  netx.Prefix
	Origin  bgp.ASN
	Descr   string
	MntBy   string
	OrgID   string
	Source  string
	Created timex.Day
	HasDate bool
}

// AsRoute interprets o as a route object.
func (o *Object) AsRoute() (Route, error) {
	if o.Class() != "route" {
		return Route{}, fmt.Errorf("irr: object class %q is not route", o.Class())
	}
	var r Route
	var err error
	r.Prefix, err = netx.ParsePrefix(o.Key())
	if err != nil {
		return Route{}, fmt.Errorf("irr: route key: %v", err)
	}
	os, ok := o.Get("origin")
	if !ok {
		return Route{}, fmt.Errorf("irr: route %s missing origin", r.Prefix)
	}
	asn, err := parseASN(os)
	if err != nil {
		return Route{}, err
	}
	r.Origin = asn
	r.Descr, _ = o.Get("descr")
	r.MntBy, _ = o.Get("mnt-by")
	r.OrgID, _ = o.Get("org")
	r.Source, _ = o.Get("source")
	if cs, ok := o.Get("created"); ok {
		if d, err := timex.ParseDay(cs); err == nil {
			r.Created, r.HasDate = d, true
		}
	}
	return r, nil
}

// Object converts r back into its RPSL form.
func (r Route) Object() *Object {
	o := &Object{}
	o.Add("route", r.Prefix.String())
	if r.Descr != "" {
		o.Add("descr", r.Descr)
	}
	o.Add("origin", r.Origin.String())
	if r.MntBy != "" {
		o.Add("mnt-by", r.MntBy)
	}
	if r.OrgID != "" {
		o.Add("org", r.OrgID)
	}
	if r.HasDate {
		o.Add("created", r.Created.String())
	}
	if r.Source != "" {
		o.Add("source", r.Source)
	}
	return o
}

func parseASN(s string) (bgp.ASN, error) {
	s = strings.TrimSpace(s)
	if len(s) < 3 || (s[0] != 'A' && s[0] != 'a') || (s[1] != 'S' && s[1] != 's') {
		return 0, fmt.Errorf("irr: malformed ASN %q", s)
	}
	n, err := strconv.ParseUint(s[2:], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("irr: malformed ASN %q", s)
	}
	return bgp.ASN(n), nil
}

// Parse reads a stream of RPSL objects: "name: value" lines, '+' or
// whitespace continuation, '#' comments, blank-line separators. The
// first malformed line fails the parse; use ParseHealth to quarantine
// bad lines instead.
func Parse(r io.Reader) ([]*Object, error) {
	return parse(r, nil)
}

// ParseHealth is the lenient variant of Parse: a line that is not a
// well-formed attribute or continuation is skipped and counted on src
// rather than failing the stream. Completed objects are also counted on
// src.
func ParseHealth(r io.Reader, src *ingest.Source) ([]*Object, error) {
	return parse(r, src)
}

func parse(r io.Reader, src *ingest.Source) ([]*Object, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var objs []*Object
	var cur *Object
	lineNo := 0
	flush := func() {
		if cur != nil && len(cur.Attrs) > 0 {
			objs = append(objs, cur)
			if src != nil {
				src.Accept(1)
			}
		}
		cur = nil
	}
	skip := func(format string, args ...interface{}) error {
		if src != nil {
			src.Skip(ingest.BadLine)
			return nil
		}
		return fmt.Errorf(format, args...)
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		// Continuation: leading whitespace or '+'.
		if line[0] == ' ' || line[0] == '\t' || line[0] == '+' {
			if cur == nil || len(cur.Attrs) == 0 {
				if err := skip("irr: line %d: continuation without attribute", lineNo); err != nil {
					return nil, err
				}
				continue
			}
			last := &cur.Attrs[len(cur.Attrs)-1]
			last.Value += " " + strings.TrimSpace(strings.TrimPrefix(line, "+"))
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			if err := skip("irr: line %d: malformed attribute %q", lineNo, line); err != nil {
				return nil, err
			}
			continue
		}
		name := strings.TrimSpace(line[:colon])
		if name == "" {
			if err := skip("irr: line %d: empty attribute name", lineNo); err != nil {
				return nil, err
			}
			continue
		}
		if cur == nil {
			cur = &Object{}
		}
		cur.Add(name, strings.TrimSpace(line[colon+1:]))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return objs, nil
}

// Print writes objects in RPSL form, blank-line separated.
func Print(w io.Writer, objs []*Object) error {
	bw := bufio.NewWriter(w)
	for i, o := range objs {
		if i > 0 {
			if _, err := bw.WriteString("\n"); err != nil {
				return err
			}
		}
		for _, a := range o.Attrs {
			pad := 16 - len(a.Name) - 1
			if pad < 1 {
				pad = 1
			}
			if _, err := fmt.Fprintf(bw, "%s:%s%s\n", a.Name, strings.Repeat(" ", pad), a.Value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Op distinguishes journal operations.
type Op uint8

// Journal operations.
const (
	OpAdd Op = iota
	OpDel
)

// Event is one journal entry: an object added to or removed from the
// registry on a given day.
type Event struct {
	Day    timex.Day
	Op     Op
	Object *Object
}

// DB is a journaled IRR database. Events must be appended in day order;
// queries then reconstruct the registry state at any day.
type DB struct {
	events  []Event
	lastDay timex.Day
}

// Add journals the creation of obj on day d.
func (db *DB) Add(d timex.Day, obj *Object) error { return db.append(Event{d, OpAdd, obj}) }

// Del journals the removal of obj (matched by class and key) on day d.
func (db *DB) Del(d timex.Day, obj *Object) error { return db.append(Event{d, OpDel, obj}) }

func (db *DB) append(e Event) error {
	if len(db.events) > 0 && e.Day < db.lastDay {
		return fmt.Errorf("irr: journal out of order: %v after %v", e.Day, db.lastDay)
	}
	db.events = append(db.events, e)
	db.lastDay = e.Day
	return nil
}

// Len returns the number of journal entries.
func (db *DB) Len() int { return len(db.events) }

// Events returns the journal (not a copy; treat as read-only).
func (db *DB) Events() []Event { return db.events }

// objectKey is the registry primary key. Route objects are keyed by
// (prefix, origin) — RPSL allows multiple route objects for one prefix
// with different origins; other classes are keyed by their first value.
func objectKey(o *Object) string {
	k := o.Class() + "\x00" + o.Key()
	if o.Class() == "route" {
		origin, _ := o.Get("origin")
		k += "\x00" + origin
	}
	return k
}

// SnapshotAt returns all objects live at the end of day d, in journal
// order of creation.
func (db *DB) SnapshotAt(d timex.Day) []*Object {
	type slot struct {
		obj *Object
		idx int
	}
	live := make(map[string]slot)
	for i, e := range db.events {
		if e.Day > d {
			break
		}
		k := objectKey(e.Object)
		switch e.Op {
		case OpAdd:
			live[k] = slot{e.Object, i}
		case OpDel:
			delete(live, k)
		}
	}
	out := make([]*Object, 0, len(live))
	idx := make(map[*Object]int, len(live))
	for _, s := range live {
		out = append(out, s.obj)
		idx[s.obj] = s.idx
	}
	sort.Slice(out, func(i, j int) bool { return idx[out[i]] < idx[out[j]] })
	return out
}

// RouteSpan describes one route object's lifetime in the registry.
type RouteSpan struct {
	Route      Route
	Created    timex.Day
	Removed    timex.Day // day the object was deleted; HasRemoved false if never
	HasRemoved bool
}

// RouteHistory returns the lifetime of every route object whose prefix
// equals p or is more specific than p, ordered by creation day. This is
// the query behind the paper's §5 analysis ("exact match or a more
// specific prefix").
func (db *DB) RouteHistory(p netx.Prefix) []RouteSpan {
	type open struct {
		r   Route
		day timex.Day
	}
	opens := make(map[string]open)
	var out []RouteSpan
	for _, e := range db.events {
		if e.Object.Class() != "route" {
			continue
		}
		r, err := e.Object.AsRoute()
		if err != nil || !p.Covers(r.Prefix) {
			continue
		}
		k := r.Prefix.String() + "|" + r.Origin.String()
		switch e.Op {
		case OpAdd:
			opens[k] = open{r, e.Day}
		case OpDel:
			if o, ok := opens[k]; ok {
				out = append(out, RouteSpan{Route: o.r, Created: o.day, Removed: e.Day, HasRemoved: true})
				delete(opens, k)
			}
		}
	}
	for _, o := range opens {
		out = append(out, RouteSpan{Route: o.r, Created: o.day})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Created != out[j].Created {
			return out[i].Created < out[j].Created
		}
		return out[i].Route.Prefix.Compare(out[j].Route.Prefix) < 0
	})
	return out
}

// RoutesAt returns the route objects live at day d whose prefix equals p
// or is more specific.
func (db *DB) RoutesAt(p netx.Prefix, d timex.Day) []Route {
	var out []Route
	for _, o := range db.SnapshotAt(d) {
		if o.Class() != "route" {
			continue
		}
		r, err := o.AsRoute()
		if err == nil && p.Covers(r.Prefix) {
			out = append(out, r)
		}
	}
	return out
}
