package irr

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dropscope/internal/ingest"
	"dropscope/internal/timex"
)

// WriteJournal serializes the database's journal: each event is a
// "%ADD <date>" or "%DEL <date>" directive followed by the RPSL object
// and a blank line. The format is lossless and replayable.
func (db *DB) WriteJournal(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range db.events {
		op := "ADD"
		if e.Op == OpDel {
			op = "DEL"
		}
		if _, err := fmt.Fprintf(bw, "%%%s %s\n", op, e.Day.Compact()); err != nil {
			return err
		}
		if err := Print(bw, []*Object{e.Object}); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJournal reads the format WriteJournal emits, replaying it into a
// fresh database. The first malformed entry fails the parse; use
// ParseJournalHealth to quarantine bad entries instead.
func ParseJournal(raw []byte) (*DB, error) {
	return parseJournal(raw, nil)
}

// ParseJournalHealth is the lenient variant of ParseJournal: a journal
// entry that cannot be parsed or replayed is skipped and counted on src
// rather than failing the journal. Replayed entries are also counted on
// src.
func ParseJournalHealth(raw []byte, src *ingest.Source) (*DB, error) {
	return parseJournal(raw, src)
}

func parseJournal(raw []byte, src *ingest.Source) (*DB, error) {
	db := &DB{}
	chunks := strings.Split(string(raw), "%")
	skip := func(err error) error {
		if src != nil {
			src.Skip(ingest.BadLine)
			return nil
		}
		return err
	}
	for _, chunk := range chunks {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		nl := strings.IndexByte(chunk, '\n')
		if nl < 0 {
			if err := skip(fmt.Errorf("irr: malformed journal entry %q", chunk)); err != nil {
				return nil, err
			}
			continue
		}
		header := strings.Fields(chunk[:nl])
		if len(header) != 2 {
			if err := skip(fmt.Errorf("irr: malformed journal header %q", chunk[:nl])); err != nil {
				return nil, err
			}
			continue
		}
		day, err := timex.ParseDay(header[1])
		if err != nil {
			if err := skip(err); err != nil {
				return nil, err
			}
			continue
		}
		objs, err := Parse(strings.NewReader(chunk[nl+1:]))
		if err != nil {
			if err := skip(err); err != nil {
				return nil, err
			}
			continue
		}
		if len(objs) != 1 {
			if err := skip(fmt.Errorf("irr: journal entry with %d objects", len(objs))); err != nil {
				return nil, err
			}
			continue
		}
		switch header[0] {
		case "ADD":
			err = db.Add(day, objs[0])
		case "DEL":
			err = db.Del(day, objs[0])
		default:
			err = fmt.Errorf("irr: unknown journal op %q", header[0])
		}
		if err != nil {
			if err := skip(err); err != nil {
				return nil, err
			}
			continue
		}
		if src != nil {
			src.Accept(1)
		}
	}
	return db, nil
}
