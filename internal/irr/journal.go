package irr

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dropscope/internal/timex"
)

// WriteJournal serializes the database's journal: each event is a
// "%ADD <date>" or "%DEL <date>" directive followed by the RPSL object
// and a blank line. The format is lossless and replayable.
func (db *DB) WriteJournal(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range db.events {
		op := "ADD"
		if e.Op == OpDel {
			op = "DEL"
		}
		if _, err := fmt.Fprintf(bw, "%%%s %s\n", op, e.Day.Compact()); err != nil {
			return err
		}
		if err := Print(bw, []*Object{e.Object}); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJournal reads the format WriteJournal emits, replaying it into a
// fresh database.
func ParseJournal(raw []byte) (*DB, error) {
	db := &DB{}
	chunks := strings.Split(string(raw), "%")
	for _, chunk := range chunks {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		nl := strings.IndexByte(chunk, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("irr: malformed journal entry %q", chunk)
		}
		header := strings.Fields(chunk[:nl])
		if len(header) != 2 {
			return nil, fmt.Errorf("irr: malformed journal header %q", chunk[:nl])
		}
		day, err := timex.ParseDay(header[1])
		if err != nil {
			return nil, err
		}
		objs, err := Parse(strings.NewReader(chunk[nl+1:]))
		if err != nil {
			return nil, err
		}
		if len(objs) != 1 {
			return nil, fmt.Errorf("irr: journal entry with %d objects", len(objs))
		}
		switch header[0] {
		case "ADD":
			err = db.Add(day, objs[0])
		case "DEL":
			err = db.Del(day, objs[0])
		default:
			err = fmt.Errorf("irr: unknown journal op %q", header[0])
		}
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}
