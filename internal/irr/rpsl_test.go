package irr

import (
	"bytes"
	"strings"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

const sampleRPSL = `route:         192.0.2.0/24
descr:         Example route   # trailing comment
origin:        AS64500
mnt-by:        MAINT-EX
org:           ORG-EX1
created:       2019-06-01
source:        RADB

# a standalone comment between objects
mntner:        MAINT-EX
descr:         Example maintainer
+              continued on a plus line
auth:          CRYPT-PW x

route:         198.51.100.0/24
origin:        AS64501
source:        RADB
`

func TestParseObjects(t *testing.T) {
	objs, err := Parse(strings.NewReader(sampleRPSL))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("got %d objects", len(objs))
	}
	if objs[0].Class() != "route" || objs[0].Key() != "192.0.2.0/24" {
		t.Errorf("obj0 = %v %v", objs[0].Class(), objs[0].Key())
	}
	if v, _ := objs[0].Get("descr"); v != "Example route" {
		t.Errorf("descr with comment stripped = %q", v)
	}
	if objs[1].Class() != "mntner" {
		t.Errorf("obj1 class = %q", objs[1].Class())
	}
	if v, _ := objs[1].Get("descr"); v != "Example maintainer continued on a plus line" {
		t.Errorf("continuation = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("   leading continuation\n")); err == nil {
		t.Error("orphan continuation should fail")
	}
	if _, err := Parse(strings.NewReader("noline\n")); err == nil {
		t.Error("missing colon should fail")
	}
	if _, err := Parse(strings.NewReader(":empty name\n")); err == nil {
		t.Error("empty attribute name should fail")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	objs, err := Parse(strings.NewReader(sampleRPSL))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Print(&buf, objs); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(objs) {
		t.Fatalf("round trip count: %d != %d", len(back), len(objs))
	}
	for i := range objs {
		if back[i].Class() != objs[i].Class() || back[i].Key() != objs[i].Key() {
			t.Errorf("object %d differs", i)
		}
	}
}

func TestAsRoute(t *testing.T) {
	objs, err := Parse(strings.NewReader(sampleRPSL))
	if err != nil {
		t.Fatal(err)
	}
	r, err := objs[0].AsRoute()
	if err != nil {
		t.Fatal(err)
	}
	if r.Prefix.String() != "192.0.2.0/24" || r.Origin != 64500 || r.MntBy != "MAINT-EX" || r.OrgID != "ORG-EX1" {
		t.Errorf("route = %+v", r)
	}
	if !r.HasDate || r.Created != timex.MustParseDay("2019-06-01") {
		t.Errorf("created = %v %v", r.Created, r.HasDate)
	}
	if _, err := objs[1].AsRoute(); err == nil {
		t.Error("mntner should not convert to route")
	}
	// Route without created date.
	r2, err := objs[2].AsRoute()
	if err != nil {
		t.Fatal(err)
	}
	if r2.HasDate {
		t.Error("obj2 should have no created date")
	}
}

func TestRouteObjectRoundTrip(t *testing.T) {
	r := Route{
		Prefix:  netx.MustParsePrefix("203.0.113.0/24"),
		Origin:  50509,
		Descr:   "hijack special",
		MntBy:   "MAINT-XX",
		OrgID:   "ORG-XX9",
		Source:  "RADB",
		Created: timex.MustParseDay("2021-01-15"),
		HasDate: true,
	}
	back, err := r.Object().AsRoute()
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip: %+v != %+v", back, r)
	}
}

func TestBadRouteObjects(t *testing.T) {
	o := &Object{}
	o.Add("route", "not-a-prefix")
	o.Add("origin", "AS1")
	if _, err := o.AsRoute(); err == nil {
		t.Error("bad prefix should fail")
	}
	o2 := &Object{}
	o2.Add("route", "192.0.2.0/24")
	if _, err := o2.AsRoute(); err == nil {
		t.Error("missing origin should fail")
	}
	o3 := &Object{}
	o3.Add("route", "192.0.2.0/24")
	o3.Add("origin", "64500") // missing AS prefix
	if _, err := o3.AsRoute(); err == nil {
		t.Error("malformed origin should fail")
	}
}

func mkRoute(pfx string, origin uint32, day string) *Object {
	r := Route{
		Prefix: netx.MustParsePrefix(pfx),
		Origin: bgpASN(origin),
		Source: "RADB",
	}
	if day != "" {
		r.Created = timex.MustParseDay(day)
		r.HasDate = true
	}
	return r.Object()
}

func TestDBSnapshotAndHistory(t *testing.T) {
	var db DB
	d := timex.MustParseDay
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Add(d("2019-07-01"), mkRoute("192.0.2.0/24", 64500, "2019-07-01")))
	must(db.Add(d("2019-08-01"), mkRoute("192.0.2.0/25", 50509, "2019-08-01")))
	must(db.Del(d("2019-09-01"), mkRoute("192.0.2.0/24", 64500, "")))
	must(db.Add(d("2019-10-01"), mkRoute("198.51.100.0/24", 64501, "2019-10-01")))

	if got := len(db.SnapshotAt(d("2019-07-15"))); got != 1 {
		t.Errorf("snapshot 07-15: %d objects", got)
	}
	if got := len(db.SnapshotAt(d("2019-08-15"))); got != 2 {
		t.Errorf("snapshot 08-15: %d objects", got)
	}
	if got := len(db.SnapshotAt(d("2019-09-15"))); got != 1 {
		t.Errorf("snapshot 09-15: %d objects (del should apply)", got)
	}

	hist := db.RouteHistory(netx.MustParsePrefix("192.0.2.0/24"))
	if len(hist) != 2 {
		t.Fatalf("history = %+v", hist)
	}
	if !hist[0].HasRemoved || hist[0].Removed != d("2019-09-01") {
		t.Errorf("hist[0] = %+v", hist[0])
	}
	if hist[1].HasRemoved {
		t.Errorf("hist[1] should still be live: %+v", hist[1])
	}
	if hist[1].Route.Origin != 50509 {
		t.Errorf("hist[1] origin = %v", hist[1].Route.Origin)
	}

	// RoutesAt: exact or more specific only.
	rs := db.RoutesAt(netx.MustParsePrefix("192.0.2.0/24"), d("2019-08-15"))
	if len(rs) != 2 {
		t.Errorf("RoutesAt = %+v", rs)
	}
	rs = db.RoutesAt(netx.MustParsePrefix("192.0.2.0/25"), d("2019-08-15"))
	if len(rs) != 1 || rs[1-1].Origin != 50509 {
		t.Errorf("RoutesAt /25 = %+v", rs)
	}
}

func TestDBRejectsOutOfOrder(t *testing.T) {
	var db DB
	d := timex.MustParseDay
	if err := db.Add(d("2020-01-02"), mkRoute("192.0.2.0/24", 1, "")); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(d("2020-01-01"), mkRoute("192.0.2.0/24", 2, "")); err == nil {
		t.Error("out-of-order journal append should fail")
	}
}

func TestDBSameDayAddDel(t *testing.T) {
	var db DB
	d := timex.MustParseDay("2020-05-05")
	obj := mkRoute("10.0.0.0/8", 64500, "2020-05-05")
	if err := db.Add(d, obj); err != nil {
		t.Fatal(err)
	}
	if err := db.Del(d, obj); err != nil {
		t.Fatal(err)
	}
	if got := len(db.SnapshotAt(d)); got != 0 {
		t.Errorf("same-day add+del should leave nothing: %d", got)
	}
	hist := db.RouteHistory(netx.MustParsePrefix("10.0.0.0/8"))
	if len(hist) != 1 || !hist[0].HasRemoved {
		t.Errorf("history should record the short-lived object: %+v", hist)
	}
}

func TestDBMultipleOriginsSamePrefix(t *testing.T) {
	var db DB
	d := timex.MustParseDay
	p := netx.MustParsePrefix("192.0.2.0/24")
	if err := db.Add(d("2020-01-01"), mkRoute("192.0.2.0/24", 100, "2020-01-01")); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(d("2020-01-02"), mkRoute("192.0.2.0/24", 200, "2020-01-02")); err != nil {
		t.Fatal(err)
	}
	if got := len(db.RoutesAt(p, d("2020-01-03"))); got != 2 {
		t.Errorf("two origins should coexist: %d", got)
	}
	if err := db.Del(d("2020-01-04"), mkRoute("192.0.2.0/24", 100, "")); err != nil {
		t.Fatal(err)
	}
	rs := db.RoutesAt(p, d("2020-01-05"))
	if len(rs) != 1 || rs[0].Origin != 200 {
		t.Errorf("delete should be origin-specific: %+v", rs)
	}
}

func bgpASN(v uint32) bgp.ASN { return bgp.ASN(v) }
