package rib

import (
	"fmt"
	"slices"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// TestBuildEventsParallelMatchesSerial pins the determinism contract of
// the parallel event builder: whatever the worker count, the stitched
// evDay/evCount/evOff columns are identical to the serial pass's. The
// world is sized well past minPrefixesPerWorker so the parallel path
// actually engages.
func TestBuildEventsParallelMatchesSerial(t *testing.T) {
	ix := NewIndex()
	recs := []mrt.Record{peerTable()}
	for i := 0; i < 4*minPrefixesPerWorker; i++ {
		p := netx.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
		peer := i % 2
		recs = append(recs,
			announce(day0+timex.Day(i%5), peer, bgp.Sequence(64500, bgp.ASN(100+i%7)), p),
			withdraw(day0+timex.Day(10+i%11), peer, p),
		)
		if i%3 == 0 { // second peer, overlapping span
			recs = append(recs,
				announce(day0+timex.Day(2+i%4), 1-peer, bgp.Sequence(64501, bgp.ASN(100+i%7)), p),
			)
		}
	}
	if err := ix.Load("rv1", recs); err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 60)
	if n := len(ix.sorted); n < 2*minPrefixesPerWorker {
		t.Fatalf("world too small to engage parallel build: %d prefixes", n)
	}

	type cols struct {
		day   []int32
		count []int32
		off   []uint32
	}
	capture := func() cols {
		day := make([]int32, len(ix.evDay))
		for i, d := range ix.evDay {
			day[i] = int32(d)
		}
		return cols{
			day:   day,
			count: slices.Clone(ix.evCount),
			off:   slices.Clone(ix.evOff),
		}
	}

	ix.buildEvents(1)
	serial := capture()
	for _, workers := range []int{2, 3, 7, 16} {
		ix.buildEvents(workers)
		got := capture()
		if !slices.Equal(got.day, serial.day) ||
			!slices.Equal(got.count, serial.count) ||
			!slices.Equal(got.off, serial.off) {
			t.Fatalf("buildEvents(%d) differs from serial build", workers)
		}
	}
}
