package rib

import (
	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// Querier is the read-side contract of a closed Index: every query the
// analysis pipeline, the figures, and the serving layer issue against
// the reassembled multi-collector view. Both the single resident Index
// and the prefix-range Sharded fan-out implement it, and the two are
// required to answer byte-identically — the sharding work is a storage
// and residency optimization, never a semantic one.
//
// Point queries (VisibleCount, Observed, VisibleFraction, OriginAt,
// PathAt, PeerObserved) are the serving hot path and must stay
// allocation-free on every implementation; aggregate queries may
// allocate their result.
type Querier interface {
	// Peers returns all peers registered via peer index tables, in
	// registration order. Callers must not mutate the returned slice.
	Peers() []PeerRef
	// NumPeers returns the number of registered peers across all
	// collectors.
	NumPeers() int
	// NumPrefixes returns the number of distinct prefixes ever observed.
	NumPrefixes() int
	// Prefixes returns every prefix ever observed, in address order.
	Prefixes() []netx.Prefix
	// VisibleCount returns how many peers carried an exact route for p
	// on day d.
	VisibleCount(p netx.Prefix, d timex.Day) int
	// VisibleFraction returns the fraction of all registered peers that
	// carried an exact route for p on day d.
	VisibleFraction(p netx.Prefix, d timex.Day) float64
	// Observed reports whether any peer carried an exact route for p on
	// day d.
	Observed(p netx.Prefix, d timex.Day) bool
	// PeerObserved reports whether the specific peer carried an exact
	// route for p on day d.
	PeerObserved(ref PeerRef, p netx.Prefix, d timex.Day) bool
	// PeersObserving returns the peers that carried an exact route for p
	// on day d.
	PeersObserving(p netx.Prefix, d timex.Day) []PeerRef
	// OriginAt returns the plurality origin AS across peers observing p
	// on day d.
	OriginAt(p netx.Prefix, d timex.Day) (bgp.ASN, bool)
	// PathAt returns one observing peer's AS path for p on day d (the
	// lowest-numbered observing peer, for determinism).
	PathAt(p netx.Prefix, d timex.Day) (bgp.ASPath, bool)
	// OriginTimeline merges all peers' spans for p into a deduplicated
	// origination history ordered by start day.
	OriginTimeline(p netx.Prefix) []OriginSpan
	// FirstObserved returns the first day any peer observed p, if ever.
	FirstObserved(p netx.Prefix) (timex.Day, bool)
	// AnyOverlapObserved reports whether any announced prefix
	// overlapping p (covering it or covered by it) was observed by any
	// peer on day d.
	AnyOverlapObserved(p netx.Prefix, d timex.Day) bool
	// RoutedSpace returns the union of prefixes observed by at least
	// minPeers peers on day d.
	RoutedSpace(d timex.Day, minPeers int) *netx.Set
	// MOASConflicts returns the prefixes with more than one origin AS
	// observed across peers on day d, in address order.
	MOASConflicts(d timex.Day) []MOAS
	// ByOrigin aggregates origination activity per origin AS.
	ByOrigin() map[bgp.ASN]*OriginActivity
}

// Compile-time checks: both index forms satisfy the query contract.
var (
	_ Querier = (*Index)(nil)
	_ Querier = (*Sharded)(nil)
)
