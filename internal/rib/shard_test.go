package rib

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// buildShardTestIndex closes an index with a few hundred prefixes
// spread over several /8s, multiple peers, churn across the window,
// and deliberate MOAS conflicts — enough structure that every query
// family has non-trivial answers on both sides of any shard cut.
func buildShardTestIndex(t testing.TB) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ix := NewIndex()
	recs := []mrt.Record{peerTable()}
	for i := 0; i < 300; i++ {
		addr := netx.Addr(10+i%5)<<24 | netx.Addr((i*2557)%65536)<<8
		bits := 24
		switch i % 7 {
		case 0:
			bits = 16
		case 3:
			bits = 20
		}
		p := netx.PrefixFrom(addr, bits)
		peer := i % 2
		origin := bgp.ASN(100 + i%11)
		up := day0 + timex.Day(rng.Intn(20))
		recs = append(recs, announce(up, peer, bgp.Sequence(bgp.ASN(64500+peer), origin), p))
		if i%3 == 0 {
			recs = append(recs, withdraw(up+timex.Day(1+rng.Intn(10)), peer, p))
		}
		if i%13 == 0 {
			// MOAS: the other peer originates the same prefix elsewhere.
			other := 1 - peer
			recs = append(recs, announce(up+1, other,
				bgp.Sequence(bgp.ASN(64500+other), origin+1000), p))
		}
	}
	sort.SliceStable(recs[1:], func(i, j int) bool {
		return recs[1+i].Timestamp().Before(recs[1+j].Timestamp())
	})
	if err := ix.Load("rv1", recs); err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 60)
	return ix
}

// shardProbes returns the prefixes that exercise every routing edge of
// the boundary table: for each internal cut, the boundary prefix
// itself, its neighbors one rank below and above, and ancestors that
// straddle the cut; plus absent prefixes and whole-space covers.
func shardProbes(ix *Index, sh *Sharded) []netx.Prefix {
	sorted := ix.Prefixes()
	var probes []netx.Prefix
	probes = append(probes, sorted...)
	for _, bound := range sh.Bounds()[1:] {
		i := sort.Search(len(sorted), func(j int) bool {
			return sorted[j].Compare(bound) >= 0
		})
		for _, j := range []int{i - 1, i, i + 1} {
			if j >= 0 && j < len(sorted) {
				probes = append(probes, sorted[j])
			}
		}
		// Ancestors of the boundary straddle the cut for the overlap
		// queries; a sibling /32 below it probes the "just outside"
		// routing edge.
		for b := 0; b <= bound.Bits(); b += 4 {
			probes = append(probes, netx.PrefixFrom(bound.Addr(), b))
		}
		if bound.Addr() > 0 {
			probes = append(probes, netx.PrefixFrom(bound.Addr()-1, 32))
		}
	}
	probes = append(probes,
		netx.PrefixFrom(0, 0),
		netx.MustParsePrefix("10.0.0.0/8"),
		netx.MustParsePrefix("11.0.0.0/8"),
		netx.MustParsePrefix("192.0.2.0/24"),       // absent
		netx.MustParsePrefix("255.255.255.255/32"), // above everything
	)
	return probes
}

// TestShardedByteIdentical is the boundary property suite: for K in
// {1, 2, 7}, every query on every probe prefix (each shard boundary,
// one rank below, one above, straddling ancestors, absent prefixes)
// must answer exactly as the unsharded index does, on every day class
// (before, inside, after the window).
func TestShardedByteIdentical(t *testing.T) {
	ix := buildShardTestIndex(t)
	days := []timex.Day{day0 - 1, day0, day0 + 3, day0 + 9, day0 + 19, day0 + 45, day0 + 61}
	for _, k := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			fs, err := ix.FrozenShards(k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(fs) != k {
				t.Fatalf("FrozenShards(%d) returned %d shards", k, len(fs))
			}
			sh, err := ShardedFromFrozen(fs, 3)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sh.NumPrefixes(), ix.NumPrefixes(); got != want {
				t.Fatalf("NumPrefixes = %d, want %d", got, want)
			}
			if got, want := sh.NumPeers(), ix.NumPeers(); got != want {
				t.Fatalf("NumPeers = %d, want %d", got, want)
			}
			if !reflect.DeepEqual(sh.Prefixes(), ix.Prefixes()) {
				t.Fatal("Prefixes diverge")
			}
			probes := shardProbes(ix, sh)
			for _, p := range probes {
				for _, d := range days {
					comparePoint(t, ix, sh, p, d)
				}
				if a, b := ix.OriginTimeline(p), sh.OriginTimeline(p); !reflect.DeepEqual(a, b) {
					t.Fatalf("OriginTimeline(%v): %v vs %v", p, a, b)
				}
				af, aok := ix.FirstObserved(p)
				bf, bok := sh.FirstObserved(p)
				if af != bf || aok != bok {
					t.Fatalf("FirstObserved(%v): %v,%v vs %v,%v", p, af, aok, bf, bok)
				}
			}
			for _, d := range days {
				for _, minPeers := range []int{1, 2} {
					a := ix.RoutedSpace(d, minPeers).Prefixes()
					b := sh.RoutedSpace(d, minPeers).Prefixes()
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("RoutedSpace(%v,%d): %d vs %d prefixes", d, minPeers, len(a), len(b))
					}
				}
				if a, b := ix.MOASConflicts(d), sh.MOASConflicts(d); !reflect.DeepEqual(a, b) {
					t.Fatalf("MOASConflicts(%v) diverge: %v vs %v", d, a, b)
				}
			}
			if a, b := ix.ByOrigin(), sh.ByOrigin(); !reflect.DeepEqual(a, b) {
				t.Fatal("ByOrigin diverges")
			}
		})
	}
}

// comparePoint checks every point query for (p, d) against the
// unsharded reference.
func comparePoint(t *testing.T, ix *Index, sh *Sharded, p netx.Prefix, d timex.Day) {
	t.Helper()
	if a, b := ix.VisibleCount(p, d), sh.VisibleCount(p, d); a != b {
		t.Fatalf("VisibleCount(%v,%v) = %d vs %d", p, d, b, a)
	}
	if a, b := ix.VisibleFraction(p, d), sh.VisibleFraction(p, d); a != b {
		t.Fatalf("VisibleFraction(%v,%v) = %v vs %v", p, d, b, a)
	}
	if a, b := ix.Observed(p, d), sh.Observed(p, d); a != b {
		t.Fatalf("Observed(%v,%v) = %v vs %v", p, d, b, a)
	}
	if a, b := ix.AnyOverlapObserved(p, d), sh.AnyOverlapObserved(p, d); a != b {
		t.Fatalf("AnyOverlapObserved(%v,%v) = %v vs %v", p, d, b, a)
	}
	ao, aok := ix.OriginAt(p, d)
	bo, bok := sh.OriginAt(p, d)
	if ao != bo || aok != bok {
		t.Fatalf("OriginAt(%v,%v): %v,%v vs %v,%v", p, d, ao, aok, bo, bok)
	}
	ap, apok := ix.PathAt(p, d)
	bp, bpok := sh.PathAt(p, d)
	if apok != bpok || !ap.Equal(bp) {
		t.Fatalf("PathAt(%v,%v): %v,%v vs %v,%v", p, d, ap, apok, bp, bpok)
	}
	if a, b := ix.PeersObserving(p, d), sh.PeersObserving(p, d); !reflect.DeepEqual(a, b) {
		t.Fatalf("PeersObserving(%v,%v): %v vs %v", p, d, a, b)
	}
	for _, ref := range ix.Peers() {
		if a, b := ix.PeerObserved(ref, p, d), sh.PeerObserved(ref, p, d); a != b {
			t.Fatalf("PeerObserved(%v,%v,%v) = %v vs %v", ref, p, d, b, a)
		}
	}
}

// TestFrozenShardsShape checks the cut invariants: counts sum to the
// prefix total, bounds are the first prefix of each shard, k clamps to
// [1, n], and an unclosed index refuses to shard.
func TestFrozenShardsShape(t *testing.T) {
	ix := buildShardTestIndex(t)
	n := ix.NumPrefixes()

	if _, err := NewIndex().FrozenShards(2, 0); err == nil {
		t.Fatal("FrozenShards on an open index should fail")
	}

	for _, k := range []int{0, 1, 2, 7, n, n + 50} {
		fs, err := ix.FrozenShards(k, 2)
		if err != nil {
			t.Fatalf("FrozenShards(%d): %v", k, err)
		}
		want := k
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		if len(fs) != want {
			t.Fatalf("FrozenShards(%d) = %d shards, want %d", k, len(fs), want)
		}
		total := 0
		var prev netx.Prefix
		for i, f := range fs {
			if len(f.Prefixes) == 0 {
				t.Fatalf("shard %d/%d empty", i, len(fs))
			}
			if i > 0 && f.Prefixes[0].Compare(prev) <= 0 {
				t.Fatalf("shard %d bound %v not above previous %v", i, f.Prefixes[0], prev)
			}
			prev = f.Prefixes[0]
			total += len(f.Prefixes)
		}
		if total != n {
			t.Fatalf("shards cover %d prefixes, index has %d", total, n)
		}
	}
}

// TestShardedValidation exercises NewSharded's argument checking.
func TestShardedValidation(t *testing.T) {
	ix := buildShardTestIndex(t)
	fs, err := ix.FrozenShards(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShardedFromFrozen(nil, 0); err == nil {
		t.Fatal("ShardedFromFrozen(nil) should fail")
	}
	sh, err := ShardedFromFrozen(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 3 {
		t.Fatalf("NumShards = %d", sh.NumShards())
	}
	// Out-of-order bounds must be rejected.
	handles := make([]ShardHandle, len(fs))
	bounds := make([]netx.Prefix, len(fs))
	counts := make([]int, len(fs))
	for i, f := range fs {
		rix, err := FromFrozen(f)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = MemShard{Index: rix}
		bounds[i] = f.Prefixes[0]
		counts[i] = len(f.Prefixes)
	}
	bounds[0], bounds[1] = bounds[1], bounds[0]
	if _, err := NewSharded(handles, bounds, counts, fs[0].Peers, 0); err == nil {
		t.Fatal("NewSharded with unsorted bounds should fail")
	}
}

// TestShardedPointQueryAllocs extends the zero-allocation pin to the
// sharded router: boundary-table routing plus the no-defer
// acquire/release must add nothing on the heap to a point query.
func TestShardedPointQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ix := buildShardTestIndex(t)
	fs, err := ix.FrozenShards(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := ShardedFromFrozen(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := ix.Prefixes()[ix.NumPrefixes()/2]
	missing := netx.MustParsePrefix("203.0.113.0/24")
	if avg := testing.AllocsPerRun(500, func() {
		sh.Observed(p, day0+5)
		sh.Observed(missing, day0+5)
		sh.VisibleFraction(p, day0+5)
		sh.VisibleCount(p, day0+5)
	}); avg != 0 {
		t.Errorf("sharded point queries allocate %.2f objects/op; want 0", avg)
	}
}
