package rib

import (
	"fmt"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// Frozen is the flat, position-addressed form of a closed Index: the
// complete query state as plain slices with no maps, pointers into
// other structures, or interner machinery. It exists for snapshot
// layers (internal/ribsnap): every numeric slice can be written as one
// little-endian binary section and — on architectures where the
// in-memory layout matches — adopted straight out of a mapped file
// without copying. Apart from Peers and Paths, whose elements contain
// Go strings and slices and therefore always deserialize by copy, the
// slices are the Index's own storage: callers must treat them as
// read-only.
type Frozen struct {
	Peers    []PeerRef     // global peer table, id order
	Prefixes []netx.Prefix // address-sorted distinct prefixes
	Paths    []bgp.ASPath  // canonical interned paths, PathID order
	Col      []Span        // columnar span store, grouped by sorted-prefix id then peer
	SpanOff  []uint32      // len(Prefixes)+1 offsets into Col
	EvDay    []timex.Day   // per-prefix visibility events: day ...
	EvCount  []int32       // ... and the peer count from that day on
	EvOff    []uint32      // len(Prefixes)+1 offsets into EvDay/EvCount
	// MaxDay is the largest day stamped on any record folded into the
	// index. It rides in the snapshot lineage section (not a core
	// column) and gates the delta-append path: open spans are the ones
	// with To == closeDay+1, which is unambiguous only while
	// MaxDay <= closeDay.
	MaxDay timex.Day
}

// Frozen returns the flat view of a closed index. It errors before
// Close, when the columnar store does not exist yet.
func (ix *Index) Frozen() (*Frozen, error) {
	if !ix.closed || !ix.built {
		return nil, fmt.Errorf("rib: Frozen requires a closed index")
	}
	return &Frozen{
		Peers:    ix.peers,
		Prefixes: ix.sorted,
		Paths:    ix.paths.Paths(),
		Col:      ix.col,
		SpanOff:  ix.spanOff,
		EvDay:    ix.evDay,
		EvCount:  ix.evCount,
		EvOff:    ix.evOff,
		MaxDay:   ix.maxDay,
	}, nil
}

// FromFrozen reconstructs a closed, immutable Index directly over f's
// slices without copying them — f may alias memory-mapped file contents
// that stay valid for the index's lifetime. Only the small lookup
// structures the flat form cannot carry are rebuilt: the peer-id map
// (one entry per peer) and the path interner's per-path metadata. The
// result answers every query exactly as the index Frozen was called on;
// Merge and Load refuse it like any closed index, and Close is a no-op.
func FromFrozen(f *Frozen) (*Index, error) {
	n := len(f.Prefixes)
	if len(f.SpanOff) != n+1 || len(f.EvOff) != n+1 {
		return nil, fmt.Errorf("rib: frozen offset tables sized %d/%d, want %d", len(f.SpanOff), len(f.EvOff), n+1)
	}
	if len(f.EvDay) != len(f.EvCount) {
		return nil, fmt.Errorf("rib: frozen event columns sized %d/%d", len(f.EvDay), len(f.EvCount))
	}
	if n > 0 && (f.SpanOff[0] != 0 || int(f.SpanOff[n]) != len(f.Col) || f.EvOff[0] != 0 || int(f.EvOff[n]) != len(f.EvDay)) {
		return nil, fmt.Errorf("rib: frozen offset tables do not cover their columns")
	}
	ix := &Index{
		peers:      f.Peers,
		peerIDs:    make(map[PeerRef]int, len(f.Peers)),
		peerTables: make(map[string][]int),
		paths:      bgp.FrozenPathInterner(f.Paths),
		closed:     true,
		built:      true,
		sorted:     f.Prefixes,
		col:        f.Col,
		spanOff:    f.SpanOff,
		evDay:      f.EvDay,
		evCount:    f.EvCount,
		evOff:      f.EvOff,
		maxDay:     f.MaxDay,
	}
	for id, ref := range f.Peers {
		ix.peerIDs[ref] = id
	}
	return ix, nil
}
