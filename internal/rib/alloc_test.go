package rib

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
)

func closedTestIndex(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex()
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), pfx),
		announce(day0+2, 1, bgp.Sequence(64501, 100), pfx),
		withdraw(day0+10, 0, pfx),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 100)
	return ix
}

// TestPointQueryAllocs pins the post-Close point queries at zero
// allocations: Observed and VisibleFraction are the inner loop of the
// routed-space sweeps, and the columnar event index exists so they cost
// two binary searches and nothing on the heap.
func TestPointQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ix := closedTestIndex(t)
	missing := netx.MustParsePrefix("10.99.0.0/16")

	if avg := testing.AllocsPerRun(500, func() {
		if !ix.Observed(pfx, day0+5) {
			t.Fatal("expected observed")
		}
		if ix.Observed(missing, day0+5) {
			t.Fatal("unexpected observed")
		}
	}); avg != 0 {
		t.Errorf("Observed allocates %.2f objects/op after Close; want 0", avg)
	}

	if avg := testing.AllocsPerRun(500, func() {
		if f := ix.VisibleFraction(pfx, day0+5); f != 1.0 {
			t.Fatalf("VisibleFraction = %v", f)
		}
	}); avg != 0 {
		t.Errorf("VisibleFraction allocates %.2f objects/op after Close; want 0", avg)
	}
}

// TestCloseIdempotent pins the satellite contract: a second Close must
// not re-sort, re-intern, or re-clamp anything — same backing arrays,
// same answers, and crucially the open spans stay clamped to the FIRST
// Close's end day.
func TestCloseIdempotent(t *testing.T) {
	ix := NewIndex()
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), pfx),
		// Left open: Close(end) clamps it to end+1.
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)

	tl := ix.OriginTimeline(pfx)
	colBefore := &ix.col[0]
	sortedBefore := &ix.sorted[0]
	prefixesBefore := ix.Prefixes()

	ix.Close(day0 + 99) // must be a no-op, not a re-clamp to day0+100

	if &ix.col[0] != colBefore || &ix.sorted[0] != sortedBefore {
		t.Error("second Close rebuilt the columnar store")
	}
	if got := ix.OriginTimeline(pfx); !reflect.DeepEqual(got, tl) {
		t.Errorf("timeline changed after second Close: %v != %v", got, tl)
	}
	if got := ix.Prefixes(); !reflect.DeepEqual(got, prefixesBefore) {
		t.Errorf("prefixes changed after second Close")
	}
	if ix.Observed(pfx, day0+50) {
		t.Error("open span re-clamped by second Close: still observed past first end")
	}
	if !ix.Observed(pfx, day0+10) {
		t.Error("span lost its first-Close clamp")
	}
}

// sliceSource adapts a []mrt.Record to the RecordSource stream API.
type sliceSource struct {
	recs []mrt.Record
	i    int
}

func (s *sliceSource) Next() (mrt.Record, error) {
	if s.i >= len(s.recs) {
		return nil, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// TestLoadCollectorFromMatchesLoadCollector proves the streaming load
// path equals the slice path, both over a plain record slice and over a
// real mrt.Reader in ReuseRecords mode — the mode that recycles record
// storage between Next calls, which is exactly what the interning copy
// discipline has to survive.
func TestLoadCollectorFromMatchesLoadCollector(t *testing.T) {
	recs := []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), pfx),
		announce(day0+2, 1, bgp.Sequence(64501, 200, 100), pfx),
		withdraw(day0+10, 0, pfx),
		announce(day0+12, 0, bgp.Sequence(64500, 300), pfx),
	}

	want := queriesOf(t, mustLoad(t, func() (*CollectorRIB, error) {
		return LoadCollector("c", recs)
	}))

	got := queriesOf(t, mustLoad(t, func() (*CollectorRIB, error) {
		return LoadCollectorFrom("c", &sliceSource{recs: recs})
	}))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("slice-backed LoadCollectorFrom differs:\n got %+v\nwant %+v", got, want)
	}

	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	r := mrt.NewReader(bytes.NewReader(buf.Bytes()), mrt.ReuseRecords())
	defer r.Release()
	got = queriesOf(t, mustLoad(t, func() (*CollectorRIB, error) {
		return LoadCollectorFrom("c", r)
	}))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mrt.Reader-backed LoadCollectorFrom differs:\n got %+v\nwant %+v", got, want)
	}
}

func mustLoad(t *testing.T, load func() (*CollectorRIB, error)) *Index {
	t.Helper()
	c, err := load()
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	if err := ix.Merge(c); err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 100)
	return ix
}

// queriesOf snapshots the externally visible state of an index.
type indexQueries struct {
	Peers     []PeerRef
	Prefixes  []netx.Prefix
	Timeline  []OriginSpan
	Fractions []float64
}

func queriesOf(t *testing.T, ix *Index) indexQueries {
	t.Helper()
	q := indexQueries{
		Peers:    ix.Peers(),
		Prefixes: ix.Prefixes(),
		Timeline: ix.OriginTimeline(pfx),
	}
	for d := day0 - 1; d <= day0+20; d++ {
		q.Fractions = append(q.Fractions, ix.VisibleFraction(pfx, d))
	}
	return q
}
