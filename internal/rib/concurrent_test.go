package rib

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// collectorStream builds a deterministic synthetic stream for collector i:
// two peers, a RIB dump seeding a shared prefix, then announce/withdraw
// churn over collector-specific prefixes plus a prefix every collector
// announces (so MOAS and visibility queries cross collector boundaries).
func collectorStream(i int) (string, []mrt.Record) {
	name := fmt.Sprintf("route-views%d", i)
	peerA := mrt.Peer{Addr: netx.AddrFrom4(203, 0, 113, byte(2*i+1)), AS: bgp.ASN(64500 + 2*i)}
	peerB := mrt.Peer{Addr: netx.AddrFrom4(203, 0, 113, byte(2*i+2)), AS: bgp.ASN(64501 + 2*i)}
	shared := netx.MustParsePrefix("192.0.2.0/24")
	own := netx.PrefixFrom(netx.AddrFrom4(10, byte(i), 0, 0), 16)

	recs := []mrt.Record{
		&mrt.PeerIndexTable{When: at(day0), Peers: []mrt.Peer{peerA, peerB}},
		&mrt.RIBPrefix{When: at(day0), Prefix: shared,
			Entries: []mrt.RIBEntry{{PeerIndex: 0, OriginatedTime: at(day0 - 10),
				Attrs: bgp.Attrs{Path: bgp.Sequence(peerA.AS, 100)}}}},
	}
	ann := func(d timex.Day, p mrt.Peer, path bgp.ASPath, ps ...netx.Prefix) mrt.Record {
		return &mrt.BGP4MPMessage{When: at(d), PeerAS: p.AS, PeerAddr: p.Addr, LocalAS: 6447,
			Update: &bgp.Update{Attrs: bgp.Attrs{Path: path}, NLRI: ps}}
	}
	wdr := func(d timex.Day, p mrt.Peer, ps ...netx.Prefix) mrt.Record {
		return &mrt.BGP4MPMessage{When: at(d), PeerAS: p.AS, PeerAddr: p.Addr, LocalAS: 6447,
			Update: &bgp.Update{Withdrawn: ps}}
	}
	recs = append(recs,
		ann(day0+1, peerB, bgp.Sequence(peerB.AS, bgp.ASN(200+i)), shared), // distinct origin: MOAS
		ann(day0+2, peerA, bgp.Sequence(peerA.AS, bgp.ASN(300+i)), own),
		ann(day0+5, peerB, bgp.Sequence(peerB.AS, 3356, bgp.ASN(300+i)), own),
		wdr(day0+10+timex.Day(i), peerA, own),
		ann(day0+20, peerA, bgp.Sequence(peerA.AS, 6939, bgp.ASN(300+i)), own), // origin kept, transit changed
	)
	return name, recs
}

func buildSerial(t testing.TB, n int) *Index {
	t.Helper()
	ix := NewIndex()
	for i := 0; i < n; i++ {
		name, recs := collectorStream(i)
		if err := ix.Load(name, recs); err != nil {
			t.Fatal(err)
		}
	}
	ix.Close(day0 + 100)
	return ix
}

func buildParallel(t testing.TB, n int) *Index {
	t.Helper()
	ribs := make([]*CollectorRIB, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name, recs := collectorStream(i)
			c, err := LoadCollector(name, recs)
			if err != nil {
				t.Error(err)
				return
			}
			ribs[i] = c
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("collector load failed")
	}
	ix := NewIndex()
	for _, c := range ribs { // merge in load order == sorted collector order
		if err := ix.Merge(c); err != nil {
			t.Fatal(err)
		}
	}
	ix.Close(day0 + 100)
	return ix
}

// TestMergeMatchesSerialLoad is the determinism guarantee the parallel
// analysis loader relies on: concurrently built CollectorRIBs merged in
// collector order answer every query identically to serial Load calls.
func TestMergeMatchesSerialLoad(t *testing.T) {
	const n = 6
	serial := buildSerial(t, n)
	parallel := buildParallel(t, n)

	if !reflect.DeepEqual(serial.Peers(), parallel.Peers()) {
		t.Fatalf("peer order diverged:\nserial   %v\nparallel %v", serial.Peers(), parallel.Peers())
	}
	sp, pp := serial.Prefixes(), parallel.Prefixes()
	if !reflect.DeepEqual(sp, pp) {
		t.Fatalf("prefix sets diverged:\nserial   %v\nparallel %v", sp, pp)
	}
	for _, p := range sp {
		if !reflect.DeepEqual(serial.OriginTimeline(p), parallel.OriginTimeline(p)) {
			t.Errorf("%s: timelines diverged:\nserial   %+v\nparallel %+v",
				p, serial.OriginTimeline(p), parallel.OriginTimeline(p))
		}
		for _, d := range []timex.Day{day0 - 1, day0 + 1, day0 + 6, day0 + 15, day0 + 50} {
			if s, q := serial.VisibleFraction(p, d), parallel.VisibleFraction(p, d); s != q {
				t.Errorf("%s day %v: VisibleFraction %v != %v", p, d, s, q)
			}
			if !reflect.DeepEqual(serial.PeersObserving(p, d), parallel.PeersObserving(p, d)) {
				t.Errorf("%s day %v: PeersObserving diverged", p, d)
			}
			so, sok := serial.OriginAt(p, d)
			po, pok := parallel.OriginAt(p, d)
			if so != po || sok != pok {
				t.Errorf("%s day %v: OriginAt (%v,%v) != (%v,%v)", p, d, so, sok, po, pok)
			}
		}
	}
	if !reflect.DeepEqual(serial.MOASConflicts(day0+3), parallel.MOASConflicts(day0+3)) {
		t.Error("MOAS conflicts diverged")
	}
	sAct, pAct := serial.ByOrigin(), parallel.ByOrigin()
	if len(sAct) != len(pAct) {
		t.Fatalf("ByOrigin sizes: %d != %d", len(sAct), len(pAct))
	}
	for o, a := range sAct {
		if !reflect.DeepEqual(a, pAct[o]) {
			t.Errorf("origin %v: activity diverged: %+v != %+v", o, a, pAct[o])
		}
	}
}

// TestMergeSameCollectorTwice checks Merge reuses peer ids and appends
// spans exactly like loading the same collector twice serially does.
func TestMergeSameCollectorTwice(t *testing.T) {
	name, recs := collectorStream(0)

	serial := NewIndex()
	if err := serial.Load(name, recs); err != nil {
		t.Fatal(err)
	}
	if err := serial.Load(name, recs); err != nil {
		t.Fatal(err)
	}
	serial.Close(day0 + 100)

	merged := NewIndex()
	for i := 0; i < 2; i++ {
		c, err := LoadCollector(name, recs)
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(c); err != nil {
			t.Fatal(err)
		}
	}
	merged.Close(day0 + 100)

	if !reflect.DeepEqual(serial.Peers(), merged.Peers()) {
		t.Fatalf("peers diverged: %v != %v", serial.Peers(), merged.Peers())
	}
	for _, p := range serial.Prefixes() {
		if !reflect.DeepEqual(serial.OriginTimeline(p), merged.OriginTimeline(p)) {
			t.Errorf("%s: timelines diverged", p)
		}
	}
}

func TestMergeAfterCloseFails(t *testing.T) {
	name, recs := collectorStream(0)
	c, err := LoadCollector(name, recs)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	ix.Close(day0)
	if err := ix.Merge(c); err == nil {
		t.Error("Merge after Close should fail")
	}
}

// TestConcurrentReaders hammers every query method from many goroutines
// after Close; run under -race this proves the post-Close index is
// read-only (including the covering trie, which Close now builds eagerly).
func TestConcurrentReaders(t *testing.T) {
	ix := buildSerial(t, 4)
	prefixes := ix.Prefixes()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, p := range prefixes {
				d := day0 + timex.Day(g%7)
				ix.VisibleFraction(p, d)
				ix.Observed(p, d)
				ix.OriginAt(p, d)
				ix.PathAt(p, d)
				ix.OriginTimeline(p)
				ix.FirstObserved(p)
				ix.PeersObserving(p, d)
				ix.AnyOverlapObserved(p, d)
			}
			ix.RoutedSpace(day0+timex.Day(g), 1)
			ix.MOASConflicts(day0 + timex.Day(g))
			ix.ByOrigin()
		}(g)
	}
	wg.Wait()
}

// TestLoadCollectorErrorsMatchLoad keeps the parallel loader's error
// strings identical to the serial path's.
func TestLoadCollectorErrorsMatchLoad(t *testing.T) {
	bad := []mrt.Record{&mrt.RIBPrefix{When: at(day0), Prefix: pfx,
		Entries: []mrt.RIBEntry{{PeerIndex: 0}}}}
	_, errC := LoadCollector("rv1", bad)
	errL := NewIndex().Load("rv1", bad)
	if errC == nil || errL == nil {
		t.Fatal("both paths should fail")
	}
	if errC.Error() != errL.Error() {
		t.Errorf("error strings diverged: %q != %q", errC, errL)
	}
}
