package rib

import (
	"fmt"
	"sort"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// This file implements the incremental append path: a frozen 1..N index
// plus per-collector overlays replayed from only the appended suffix of
// each archive file, spliced by MergeFrozen into the Frozen a cold
// 1..N+1 build would produce — without re-decoding days 1..N.
//
// The equivalence argument rests on how build() orders the columnar
// store: a stable two-pass counting sort groups spans by sorted-prefix
// id, sub-grouped by ascending peer id, preserving stream order within
// each (prefix, peer) group. A (prefix, peer) group belongs to exactly
// one collector, and a collector's appended records come after all of
// its base records, so the cold 1..N+1 bucket for any group is the base
// bucket's spans (the last one possibly re-closed by a suffix event)
// followed by the suffix-opened spans in suffix order. That is exactly
// what the overlay records and MergeFrozen splices.

// DeltaBase wraps a frozen base index for incremental append. It
// recovers the open-route state a live CollectorRIB would hold at the
// end of the base stream: after Close(baseEnd), a column span is open
// iff To == closeMarker(baseEnd, MaxDay) — unambiguous because every
// genuinely closed span ends at a record day <= MaxDay < marker.
// NewDeltaBase refuses any base for which the merge could not
// reproduce cold output (peer table not grouped by sorted collector);
// callers fall back to a cold rebuild then.
type DeltaBase struct {
	f       *Frozen
	baseEnd timex.Day
	peerIDs map[PeerRef]int32
	blocks  map[string][2]int32 // collector -> [lo, hi) gid block in f.Peers
	names   []string            // sorted collector names present in f.Peers
	open    map[uint64]uint32   // (sid, gid) -> base col index of the span open at baseEnd
}

func deltaKey(sid uint32, gid int32) uint64 {
	return uint64(sid)<<32 | uint64(uint32(gid))
}

// NewDeltaBase prepares f — a Frozen produced by (or equivalent to)
// Index.Frozen after Close(baseEnd) — for overlay replay.
func NewDeltaBase(f *Frozen, baseEnd timex.Day) (*DeltaBase, error) {
	if len(f.SpanOff) != len(f.Prefixes)+1 {
		return nil, fmt.Errorf("rib: delta base span offsets sized %d, want %d", len(f.SpanOff), len(f.Prefixes)+1)
	}
	db := &DeltaBase{
		f:       f,
		baseEnd: baseEnd,
		peerIDs: make(map[PeerRef]int32, len(f.Peers)),
		blocks:  make(map[string][2]int32),
		open:    make(map[uint64]uint32),
	}
	// The base peer table must be one contiguous block per collector, in
	// sorted collector order — the order a cold build registers peers
	// when collectors merge sorted. Anything else cannot be extended to
	// the peer table a cold 1..N+1 build would produce.
	for i := 0; i < len(f.Peers); {
		c := f.Peers[i].Collector
		if len(db.names) > 0 && db.names[len(db.names)-1] >= c {
			return nil, fmt.Errorf("rib: delta base peer table not grouped by sorted collector at %q", c)
		}
		j := i
		for j < len(f.Peers) && f.Peers[j].Collector == c {
			j++
		}
		db.blocks[c] = [2]int32{int32(i), int32(j)}
		db.names = append(db.names, c)
		i = j
	}
	for gid, ref := range f.Peers {
		if _, dup := db.peerIDs[ref]; dup {
			return nil, fmt.Errorf("rib: delta base peer table has duplicate %v", ref)
		}
		db.peerIDs[ref] = int32(gid)
	}
	closeDay := closeMarker(baseEnd, f.MaxDay)
	for sid := range f.Prefixes {
		for i := f.SpanOff[sid]; i < f.SpanOff[sid+1]; i++ {
			if f.Col[i].To == closeDay {
				db.open[deltaKey(uint32(sid), f.Col[i].Peer)] = i
			}
		}
	}
	return db, nil
}

// BaseEnd returns the close day the base was frozen at.
func (db *DeltaBase) BaseEnd() timex.Day { return db.baseEnd }

// Overlay replays one collector's appended record suffix against the
// delta base, accumulating exactly the state MergeFrozen needs: new
// spans keyed on base dictionaries (with overlay-local extensions for
// peers and prefixes the base has never seen), and To-edits against
// base column spans that the suffix closed or re-pointed. Apply is
// strict: any record a lenient cold build would skip fails the overlay
// instead, because a skip would make the archive unclean — and a clean
// base snapshot can only be extended by a clean suffix if the result
// is to match a cold rebuild that would itself be persisted.
type Overlay struct {
	db        *DeltaBase
	collector string
	table     []int32 // suffix-local MRT peer index -> peer handle
	newPeers  []PeerRef
	newIDs    map[PeerRef]int32
	prefixes  netx.Interner // overlay-new prefixes, encounter order
	paths     bgp.PathInterner
	spans     []Span            // Prefix/Peer hold base ids or base-count+local ids
	open      map[openKey]int32 // (prefix, peer) -> index+1 of the open overlay span
	edits     map[uint32]timex.Day
	consumed  map[uint64]bool // base open keys already closed by this overlay
	maxDay    timex.Day
}

// NewOverlay starts an overlay for one collector's appended records.
func (db *DeltaBase) NewOverlay(collector string) *Overlay {
	return &Overlay{
		db:        db,
		collector: collector,
		newIDs:    make(map[PeerRef]int32),
		open:      make(map[openKey]int32),
		edits:     make(map[uint32]timex.Day),
		consumed:  make(map[uint64]bool),
	}
}

// Collector returns the collector the overlay replays.
func (ov *Overlay) Collector() string { return ov.collector }

func (ov *Overlay) peerID(ref PeerRef) int32 {
	if gid, ok := ov.db.peerIDs[ref]; ok {
		return gid
	}
	if id, ok := ov.newIDs[ref]; ok {
		return id
	}
	id := int32(len(ov.db.f.Peers) + len(ov.newPeers))
	ov.newPeers = append(ov.newPeers, ref)
	ov.newIDs[ref] = id
	return id
}

func (ov *Overlay) prefixID(p netx.Prefix) uint32 {
	if i, ok := netx.SearchPrefixes(ov.db.f.Prefixes, p); ok {
		return uint32(i)
	}
	return uint32(len(ov.db.f.Prefixes)) + ov.prefixes.Intern(p)
}

// Apply folds one suffix record into the overlay, mirroring
// CollectorRIB.apply exactly. A RIB dump record requires a peer index
// table from the suffix itself (the base snapshot does not retain MRT
// peer tables); an appended UPDATE stream needs none.
func (ov *Overlay) Apply(rec mrt.Record) error {
	switch r := rec.(type) {
	case *mrt.PeerIndexTable:
		table := make([]int32, len(r.Peers))
		for i, p := range r.Peers {
			table[i] = ov.peerID(PeerRef{Collector: ov.collector, Addr: p.Addr, AS: p.AS})
		}
		ov.table = table
	case *mrt.RIBPrefix:
		if ov.table == nil {
			return fmt.Errorf("rib: delta %s: RIB record before a suffix peer index table", ov.collector)
		}
		day := timex.FromTime(r.When)
		if day > ov.maxDay {
			ov.maxDay = day
		}
		pfx := ov.prefixID(r.Prefix)
		for _, e := range r.Entries {
			if int(e.PeerIndex) >= len(ov.table) {
				return fmt.Errorf("rib: delta %s: peer index %d out of range", ov.collector, e.PeerIndex)
			}
			ov.openSpan(pfx, ov.table[e.PeerIndex], day, e.Attrs.Path)
		}
	case *mrt.BGP4MPMessage:
		day := timex.FromTime(r.When)
		if day > ov.maxDay {
			ov.maxDay = day
		}
		pid := ov.peerID(PeerRef{Collector: ov.collector, Addr: r.PeerAddr, AS: r.PeerAS})
		for _, p := range r.Update.Withdrawn {
			ov.closeSpan(ov.prefixID(p), pid, day)
		}
		for _, p := range r.Update.NLRI {
			ov.openSpan(ov.prefixID(p), pid, day, r.Update.Attrs.Path)
		}
	default:
		return fmt.Errorf("rib: delta %s: unsupported record %T", ov.collector, rec)
	}
	return nil
}

// baseOpen returns the base column index of the (pfx, pid) span still
// open at the append boundary, if the key addresses base dictionaries
// and this overlay has not already closed it.
func (ov *Overlay) baseOpen(pfx uint32, pid int32) (uint32, bool) {
	if pfx >= uint32(len(ov.db.f.Prefixes)) || pid >= int32(len(ov.db.f.Peers)) {
		return 0, false
	}
	k := deltaKey(pfx, pid)
	if ov.consumed[k] {
		return 0, false
	}
	ci, ok := ov.db.open[k]
	return ci, ok
}

// editBase closes the base span at column index ci on day, with the
// same From-clamp closeSpan applies.
func (ov *Overlay) editBase(pfx uint32, pid int32, ci uint32, day timex.Day) {
	to := day
	if from := ov.db.f.Col[ci].From; to < from {
		to = from
	}
	ov.edits[ci] = to
	ov.consumed[deltaKey(pfx, pid)] = true
}

func (ov *Overlay) openSpan(pfx uint32, pid int32, day timex.Day, path bgp.ASPath) {
	id := ov.paths.Intern(path)
	k := openKey{prefix: pfx, peer: pid}
	if si := ov.open[k]; si != 0 {
		s := &ov.spans[si-1]
		if s.Path == id {
			return // implicit re-announcement of the same route
		}
		s.To = day
		if s.To < s.From {
			s.To = s.From
		}
	} else if ci, ok := ov.baseOpen(pfx, pid); ok {
		if bgp.PathEqual(path, ov.db.f.Paths[ov.db.f.Col[ci].Path]) {
			return // the open base route continues across the boundary
		}
		ov.editBase(pfx, pid, ci, day) // implicit withdraw of the base route
	}
	ov.spans = append(ov.spans, Span{Prefix: pfx, Peer: pid, From: day, To: openEnd, Path: id})
	ov.open[k] = int32(len(ov.spans))
}

func (ov *Overlay) closeSpan(pfx uint32, pid int32, day timex.Day) {
	k := openKey{prefix: pfx, peer: pid}
	if si := ov.open[k]; si != 0 {
		s := &ov.spans[si-1]
		s.To = day
		if s.To < s.From {
			s.To = s.From
		}
		delete(ov.open, k)
		return
	}
	if ci, ok := ov.baseOpen(pfx, pid); ok {
		ov.editBase(pfx, pid, ci, day)
	}
}

// MergeFrozen splices the base and the per-collector overlays into the
// Frozen a cold build over the full (base + appended suffix) archive
// would produce, closed at newEnd. Overlays must be in sorted collector
// order, each built from db. Untouched prefix buckets copy straight
// across (peer ids remapped, the open-span close marker slid from the
// base's to the merged one — valid for the event columns too, since
// the marker exceeds every base record day and therefore only ever
// marks open-span closes); only buckets the suffix touched recompute
// their events.
//
// The result aliases base storage (peer refs, prefix values, canonical
// paths) — it must be consumed or persisted before any mapping backing
// the base is unmapped.
//
// Path ids are assigned base-table-first, then overlay-new paths in
// sorted collector order; a cold build may interleave them differently,
// but ids are internal handles — every query resolves path content, so
// query and report output are byte-identical either way.
func MergeFrozen(db *DeltaBase, overlays []*Overlay, newEnd timex.Day) (*Frozen, error) {
	base := db.f
	if newEnd < db.baseEnd {
		return nil, fmt.Errorf("rib: merge close day %d precedes base close day %d", newEnd, db.baseEnd)
	}
	for i, ov := range overlays {
		if ov.db != db {
			return nil, fmt.Errorf("rib: overlay %d built against a different base", i)
		}
		if i > 0 && overlays[i-1].collector >= ov.collector {
			return nil, fmt.Errorf("rib: overlays not in sorted collector order")
		}
	}

	// Merged peer table: for each collector in sorted order, its base
	// block then its overlay-discovered peers in first-appearance order
	// — the registration order of a cold full build. The base-gid remap
	// is strictly increasing, so peer-sorted base buckets stay sorted.
	ovByName := make(map[string]int, len(overlays))
	names := append([]string(nil), db.names...)
	for oi, ov := range overlays {
		ovByName[ov.collector] = oi
		if _, ok := db.blocks[ov.collector]; !ok {
			names = append(names, ov.collector)
		}
	}
	sort.Strings(names)
	baseN := len(base.Peers)
	mergedPeers := make([]PeerRef, 0, baseN)
	gidRemap := make([]int32, baseN)
	newPeerRemap := make([][]int32, len(overlays))
	for _, name := range names {
		if blk, ok := db.blocks[name]; ok {
			for g := blk[0]; g < blk[1]; g++ {
				gidRemap[g] = int32(len(mergedPeers))
				mergedPeers = append(mergedPeers, base.Peers[g])
			}
		}
		if oi, ok := ovByName[name]; ok {
			ov := overlays[oi]
			r := make([]int32, len(ov.newPeers))
			for i, ref := range ov.newPeers {
				r[i] = int32(len(mergedPeers))
				mergedPeers = append(mergedPeers, ref)
			}
			newPeerRemap[oi] = r
		}
	}

	// Merged prefix column: the base's sorted prefixes two-pointer-merged
	// with the overlays' new prefixes (deduplicated across overlays,
	// disjoint from the base by construction).
	var gnew netx.Interner
	localNew := make([][]uint32, len(overlays))
	for oi, ov := range overlays {
		r := make([]uint32, ov.prefixes.Len())
		for i := range r {
			r[i] = gnew.Intern(ov.prefixes.At(uint32(i)))
		}
		localNew[oi] = r
	}
	nn := gnew.Len()
	idx := make([]uint32, nn)
	for i := range idx {
		idx[i] = uint32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		return gnew.At(idx[i]).Compare(gnew.At(idx[j])) < 0
	})
	baseP := base.Prefixes
	nm := len(baseP) + nn
	mergedPrefixes := make([]netx.Prefix, 0, nm)
	baseSidRemap := make([]uint32, len(baseP))
	newSidRemap := make([]uint32, nn)
	srcBase := make([]int32, 0, nm) // merged sid -> base sid, or -1
	bi, ni := 0, 0
	for bi < len(baseP) || ni < nn {
		takeNew := bi >= len(baseP) ||
			(ni < nn && gnew.At(idx[ni]).Compare(baseP[bi]) < 0)
		if takeNew {
			newSidRemap[idx[ni]] = uint32(len(mergedPrefixes))
			mergedPrefixes = append(mergedPrefixes, gnew.At(idx[ni]))
			srcBase = append(srcBase, -1)
			ni++
		} else {
			baseSidRemap[bi] = uint32(len(mergedPrefixes))
			mergedPrefixes = append(mergedPrefixes, baseP[bi])
			srcBase = append(srcBase, int32(bi))
			bi++
		}
	}

	// Merged path table: base ids preserved, overlay-new paths appended
	// deduplicated in sorted collector order.
	var pin bgp.PathInterner
	for _, p := range base.Paths {
		pin.InternShared(p)
	}
	if pin.Len() != len(base.Paths) {
		return nil, fmt.Errorf("rib: delta base path table not canonical")
	}
	pathRemap := make([][]bgp.PathID, len(overlays))
	for oi, ov := range overlays {
		r := make([]bgp.PathID, ov.paths.Len())
		for i := range r {
			r[i] = pin.InternShared(ov.paths.Path(bgp.PathID(i)))
		}
		pathRemap[oi] = r
	}

	// Edits against base column spans, and which base buckets they touch.
	edits := make(map[uint32]timex.Day)
	touched := make(map[uint32]bool)
	for _, ov := range overlays {
		for ci, to := range ov.edits {
			edits[ci] = to
			sid := uint32(sort.Search(len(baseP), func(i int) bool { return base.SpanOff[i+1] > ci }))
			touched[sid] = true
		}
	}

	// Close markers: a base span is open iff To == baseClose; the merged
	// index stamps its open spans newClose, exactly as a cold
	// Close(newEnd) over the full stream would. Both are computed with
	// the max-of-day rule (see closeMarker), so genuine closes — which
	// end at record days <= the respective MaxDay — never collide.
	maxDay := base.MaxDay
	for _, ov := range overlays {
		if ov.maxDay > maxDay {
			maxDay = ov.maxDay
		}
	}
	baseClose := closeMarker(db.baseEnd, base.MaxDay)
	newClose := closeMarker(newEnd, maxDay)

	// Overlay spans translated onto merged ids, bucketed by merged sid.
	// Per (sid, peer) group all spans come from one overlay in stream
	// order; appending overlays in sorted order keeps that order.
	perSid := make(map[uint32][]Span)
	totalOverlay := 0
	for oi, ov := range overlays {
		totalOverlay += len(ov.spans)
		for _, s := range ov.spans {
			ms := s
			if s.Prefix < uint32(len(baseP)) {
				ms.Prefix = baseSidRemap[s.Prefix]
			} else {
				ms.Prefix = newSidRemap[localNew[oi][s.Prefix-uint32(len(baseP))]]
			}
			if s.Peer < int32(baseN) {
				ms.Peer = gidRemap[s.Peer]
			} else {
				ms.Peer = newPeerRemap[oi][s.Peer-int32(baseN)]
			}
			if s.To == openEnd {
				ms.To = newClose
			}
			ms.Path = pathRemap[oi][s.Path]
			perSid[ms.Prefix] = append(perSid[ms.Prefix], ms)
		}
	}

	col := make([]Span, 0, len(base.Col)+totalOverlay)
	spanOff := make([]uint32, 1, nm+1)
	evDay := make([]timex.Day, 0, len(base.EvDay))
	evCount := make([]int32, 0, len(base.EvCount))
	evOff := make([]uint32, 1, nm+1)
	var sc evScratch
	var bucket []Span
	for m := 0; m < nm; m++ {
		bs := srcBase[m]
		ovs := perSid[uint32(m)]
		if bs >= 0 && len(ovs) == 0 && !touched[uint32(bs)] {
			// Untouched base bucket: copy, remapping ids and sliding the
			// open-span close day.
			for i := base.SpanOff[bs]; i < base.SpanOff[bs+1]; i++ {
				s := base.Col[i]
				s.Prefix = uint32(m)
				s.Peer = gidRemap[s.Peer]
				if s.To == baseClose {
					s.To = newClose
				}
				col = append(col, s)
			}
			for i := base.EvOff[bs]; i < base.EvOff[bs+1]; i++ {
				d := base.EvDay[i]
				if d == baseClose {
					d = newClose
				}
				evDay = append(evDay, d)
				evCount = append(evCount, base.EvCount[i])
			}
		} else {
			bucket = bucket[:0]
			if bs >= 0 {
				for i := base.SpanOff[bs]; i < base.SpanOff[bs+1]; i++ {
					s := base.Col[i]
					s.Prefix = uint32(m)
					s.Peer = gidRemap[s.Peer]
					if to, ok := edits[i]; ok {
						s.To = to
					} else if s.To == baseClose {
						s.To = newClose
					}
					bucket = append(bucket, s)
				}
			}
			sort.SliceStable(ovs, func(i, j int) bool { return ovs[i].Peer < ovs[j].Peer })
			// Merge the two peer-sorted halves, base spans first within a
			// peer — their records came first in the collector stream.
			start := len(col)
			i, j := 0, 0
			for i < len(bucket) && j < len(ovs) {
				if bucket[i].Peer <= ovs[j].Peer {
					col = append(col, bucket[i])
					i++
				} else {
					col = append(col, ovs[j])
					j++
				}
			}
			col = append(col, bucket[i:]...)
			col = append(col, ovs[j:]...)
			evDay, evCount = appendPrefixEvents(evDay, evCount, col[start:], &sc)
		}
		spanOff = append(spanOff, uint32(len(col)))
		evOff = append(evOff, uint32(len(evDay)))
	}

	return &Frozen{
		Peers:    mergedPeers,
		Prefixes: mergedPrefixes,
		Paths:    pin.Paths(),
		Col:      col,
		SpanOff:  spanOff,
		EvDay:    evDay,
		EvCount:  evCount,
		EvOff:    evOff,
		MaxDay:   maxDay,
	}, nil
}

// ConcatFrozen reassembles prefix-range shards (FrozenShards output, or
// shard snapshots decoded back) into one monolithic Frozen — the form
// NewDeltaBase needs. Shards must arrive in ascending prefix order and
// share one global peer table. Per-shard path tables re-unify by
// content; the resulting ids can differ from the pre-cut monolith's,
// which queries never observe. The result aliases shard storage.
func ConcatFrozen(shards []*Frozen) (*Frozen, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("rib: concat of zero shards")
	}
	if len(shards) == 1 {
		return shards[0], nil
	}
	out := &Frozen{Peers: shards[0].Peers}
	var pin bgp.PathInterner
	out.SpanOff = append(out.SpanOff, 0)
	out.EvOff = append(out.EvOff, 0)
	for si, sh := range shards {
		if len(sh.Peers) != len(out.Peers) {
			return nil, fmt.Errorf("rib: shard %d peer table sized %d, want %d", si, len(sh.Peers), len(out.Peers))
		}
		for i, ref := range sh.Peers {
			if ref != out.Peers[i] {
				return nil, fmt.Errorf("rib: shard %d peer table diverges at %d", si, i)
			}
		}
		if len(sh.SpanOff) != len(sh.Prefixes)+1 || len(sh.EvOff) != len(sh.Prefixes)+1 {
			return nil, fmt.Errorf("rib: shard %d offset tables malformed", si)
		}
		if n := len(out.Prefixes); n > 0 && len(sh.Prefixes) > 0 &&
			out.Prefixes[n-1].Compare(sh.Prefixes[0]) >= 0 {
			return nil, fmt.Errorf("rib: shard %d prefixes out of order", si)
		}
		pr := make([]bgp.PathID, len(sh.Paths))
		for i, p := range sh.Paths {
			pr[i] = pin.InternShared(p)
		}
		sidBase := uint32(len(out.Prefixes))
		colBase := uint32(len(out.Col))
		evBase := uint32(len(out.EvDay))
		out.Prefixes = append(out.Prefixes, sh.Prefixes...)
		for _, s := range sh.Col {
			s.Prefix += sidBase
			s.Path = pr[s.Path]
			out.Col = append(out.Col, s)
		}
		for _, off := range sh.SpanOff[1:] {
			out.SpanOff = append(out.SpanOff, off+colBase)
		}
		out.EvDay = append(out.EvDay, sh.EvDay...)
		out.EvCount = append(out.EvCount, sh.EvCount...)
		for _, off := range sh.EvOff[1:] {
			out.EvOff = append(out.EvOff, off+evBase)
		}
		if sh.MaxDay > out.MaxDay {
			out.MaxDay = sh.MaxDay
		}
	}
	out.Paths = pin.Paths()
	return out, nil
}
