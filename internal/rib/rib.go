// Package rib reassembles per-peer routing tables from MRT archives and
// answers the temporal queries the paper's analysis needs: how many peers
// observed a prefix on a given day, which AS originated it, whether any
// announcement covered a block of address space, and full origination
// timelines for case-study prefixes.
//
// An Index is built by loading each collector's RIB dump (PEER_INDEX_TABLE
// followed by RIB_IPV4_UNICAST records) and then replaying the interleaved
// BGP4MP update stream. Routes are tracked as day-resolution presence
// intervals per (prefix, peer).
//
// # Concurrency
//
// Reassembly parallelizes per collector: LoadCollector builds one
// collector's state with no shared references, so any number of
// LoadCollector calls may run concurrently. Merging CollectorRIBs into an
// Index and calling Close must happen on a single goroutine; merging in a
// fixed collector order yields an Index identical to serial loading in
// that order. After Close the Index is immutable (Close also builds the
// covering-query trie that was previously built lazily), so every query
// method is safe for unlimited concurrent readers.
package rib

import (
	"fmt"
	"sort"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// PeerRef identifies one peer of one collector.
type PeerRef struct {
	Collector string
	Addr      netx.Addr
	AS        bgp.ASN
}

// String renders the peer as "collector/AS64500/203.0.113.1".
func (p PeerRef) String() string {
	return fmt.Sprintf("%s/%s/%s", p.Collector, p.AS, p.Addr)
}

// span is a half-open day interval [From, To) during which a peer carried
// a route. To == openEnd while the route is still installed.
type span struct {
	From, To timex.Day
	Origin   bgp.ASN
	Neighbor bgp.ASN // first AS in the path (the peer's own AS typically)
	Path     bgp.ASPath
}

const openEnd = timex.Day(1<<31 - 1)

// prefixHist is the full observation history of one prefix.
type prefixHist struct {
	byPeer map[int][]span // peer id -> closed and open spans, in time order
}

// Index is the reassembled multi-collector view. Build it either by
// calling Load per collector, or by merging independently built
// CollectorRIBs with Merge; the two paths produce identical indexes when
// collectors arrive in the same order. After Close the Index is immutable
// and safe for concurrent readers.
type Index struct {
	peers   []PeerRef
	peerIDs map[PeerRef]int
	// peerTables maps collector name -> MRT peer index -> global peer id.
	peerTables map[string][]int
	prefixes   map[netx.Prefix]*prefixHist
	trie       netx.Trie[*prefixHist] // for covering queries; built at Close
	trieBuilt  bool
	closed     bool
}

// NewIndex returns an empty Index.
func NewIndex() *Index {
	return &Index{
		peerIDs:    make(map[PeerRef]int),
		peerTables: make(map[string][]int),
		prefixes:   make(map[netx.Prefix]*prefixHist),
	}
}

// Peers returns all peers registered via peer index tables, in
// registration order.
func (ix *Index) Peers() []PeerRef { return ix.peers }

// NumPrefixes returns the number of distinct prefixes ever observed.
func (ix *Index) NumPrefixes() int { return len(ix.prefixes) }

func (ix *Index) peerID(ref PeerRef) int {
	if id, ok := ix.peerIDs[ref]; ok {
		return id
	}
	id := len(ix.peers)
	ix.peers = append(ix.peers, ref)
	ix.peerIDs[ref] = id
	return id
}

func (ix *Index) hist(p netx.Prefix) *prefixHist {
	h, ok := ix.prefixes[p]
	if !ok {
		h = &prefixHist{byPeer: make(map[int][]span)}
		ix.prefixes[p] = h
		ix.trieBuilt = false
	}
	return h
}

// CollectorRIB is one collector's independently reassembled state. It is
// self-contained — peer ids are collector-local and nothing references the
// destination Index — so LoadCollector calls for different collectors may
// run on concurrent goroutines, with the results merged afterwards in a
// deterministic order via (*Index).Merge.
type CollectorRIB struct {
	collector string
	peers     []PeerRef
	peerIDs   map[PeerRef]int
	table     []int // MRT peer index -> local peer id; nil until the index table
	prefixes  map[netx.Prefix]*prefixHist
}

// Collector returns the collector name the RIB was loaded from.
func (c *CollectorRIB) Collector() string { return c.collector }

// NumPrefixes returns the number of distinct prefixes the collector saw.
func (c *CollectorRIB) NumPrefixes() int { return len(c.prefixes) }

func (c *CollectorRIB) peerID(ref PeerRef) int {
	if id, ok := c.peerIDs[ref]; ok {
		return id
	}
	id := len(c.peers)
	c.peers = append(c.peers, ref)
	c.peerIDs[ref] = id
	return id
}

func (c *CollectorRIB) hist(p netx.Prefix) *prefixHist {
	h, ok := c.prefixes[p]
	if !ok {
		h = &prefixHist{byPeer: make(map[int][]span)}
		c.prefixes[p] = h
	}
	return h
}

// LoadCollector consumes one collector's MRT record stream into a
// standalone CollectorRIB: a PEER_INDEX_TABLE declares the peer set,
// RIB_IPV4_UNICAST records seed routes, and BGP4MP messages open and close
// presence intervals. Records must be in timestamp order within the
// stream. The first record that cannot be applied fails the load; use
// LoadCollectorHealth to skip and count such records instead.
func LoadCollector(collector string, recs []mrt.Record) (*CollectorRIB, error) {
	return loadCollector(collector, recs, nil)
}

// LoadCollectorHealth is the lenient variant of LoadCollector: records
// that decoded but cannot be applied (a RIB entry before any peer index
// table, a peer index beyond the table, an unsupported record type) are
// skipped and classified on src rather than failing the whole collector.
// src must not be nil and must not be shared with a concurrent loader.
func LoadCollectorHealth(collector string, recs []mrt.Record, src *ingest.Source) (*CollectorRIB, error) {
	return loadCollector(collector, recs, src)
}

func loadCollector(collector string, recs []mrt.Record, src *ingest.Source) (*CollectorRIB, error) {
	c := &CollectorRIB{
		collector: collector,
		peerIDs:   make(map[PeerRef]int),
		prefixes:  make(map[netx.Prefix]*prefixHist),
	}
	for _, rec := range recs {
		switch r := rec.(type) {
		case *mrt.PeerIndexTable:
			table := make([]int, len(r.Peers))
			for i, p := range r.Peers {
				table[i] = c.peerID(PeerRef{Collector: collector, Addr: p.Addr, AS: p.AS})
			}
			c.table = table
		case *mrt.RIBPrefix:
			if c.table == nil {
				if src != nil {
					src.Skip(ingest.Corrupt)
					continue
				}
				return nil, fmt.Errorf("rib: %s: RIB record before peer index table", collector)
			}
			day := timex.FromTime(r.When)
			h := c.hist(r.Prefix)
			bad := false
			for _, e := range r.Entries {
				if int(e.PeerIndex) >= len(c.table) {
					if src != nil {
						bad = true
						continue
					}
					return nil, fmt.Errorf("rib: %s: peer index %d out of range", collector, e.PeerIndex)
				}
				openSpan(h, c.table[e.PeerIndex], day, e.Attrs.Path)
			}
			if bad {
				src.Skip(ingest.Corrupt)
			}
		case *mrt.BGP4MPMessage:
			day := timex.FromTime(r.When)
			pid := c.peerID(PeerRef{Collector: collector, Addr: r.PeerAddr, AS: r.PeerAS})
			for _, p := range r.Update.Withdrawn {
				closeSpan(c.hist(p), pid, day)
			}
			for _, p := range r.Update.NLRI {
				openSpan(c.hist(p), pid, day, r.Update.Attrs.Path)
			}
		default:
			if src != nil {
				src.Skip(ingest.Unsupported)
				continue
			}
			return nil, fmt.Errorf("rib: unsupported record %T", rec)
		}
	}
	return c, nil
}

// Merge folds one collector's state into the index, remapping the
// collector-local peer ids onto the global peer space. Span slices are
// handed off, not copied, so the CollectorRIB must not be used afterwards.
// Merge is not itself safe for concurrent use — call it from one goroutine,
// in sorted collector order for results identical to serial Load calls.
func (ix *Index) Merge(c *CollectorRIB) error {
	if ix.closed {
		return fmt.Errorf("rib: index already closed")
	}
	// Remap local ids to global ones. Peer refs are collector-scoped, so
	// collisions only occur when the same collector is merged twice; reuse
	// the existing id then, as serial loading would.
	remap := make([]int, len(c.peers))
	for lid, ref := range c.peers {
		remap[lid] = ix.peerID(ref)
	}
	if c.table != nil {
		table := make([]int, len(c.table))
		for i, lid := range c.table {
			table[i] = remap[lid]
		}
		ix.peerTables[c.collector] = table
	}
	for p, ch := range c.prefixes {
		h := ix.hist(p)
		for lid, spans := range ch.byPeer {
			gid := remap[lid]
			if existing, ok := h.byPeer[gid]; ok {
				h.byPeer[gid] = append(existing, spans...)
			} else {
				h.byPeer[gid] = spans
			}
		}
	}
	return nil
}

// Load consumes one collector's MRT record stream: a PEER_INDEX_TABLE
// declares the peer set, RIB_IPV4_UNICAST records seed routes, and
// BGP4MP messages open and close presence intervals. Records must be in
// timestamp order within the stream. Load is the serial path; it is
// exactly LoadCollector followed by Merge.
func (ix *Index) Load(collector string, recs []mrt.Record) error {
	if ix.closed {
		return fmt.Errorf("rib: index already closed")
	}
	c, err := LoadCollector(collector, recs)
	if err != nil {
		return err
	}
	return ix.Merge(c)
}

// openSpan starts (or re-points) the peer's route for the prefix.
func openSpan(h *prefixHist, pid int, day timex.Day, path bgp.ASPath) {
	spans := h.byPeer[pid]
	origin, _ := path.Origin()
	neighbor, _ := path.First()
	if n := len(spans); n > 0 && spans[n-1].To == openEnd {
		last := &spans[n-1]
		if last.Path.Equal(path) {
			return // implicit re-announcement of the same route
		}
		// Implicit withdraw: route replaced by a different path same day.
		last.To = day
		if last.To < last.From {
			last.To = last.From
		}
	}
	h.byPeer[pid] = append(spans, span{From: day, To: openEnd, Origin: origin, Neighbor: neighbor, Path: path})
}

// closeSpan ends the peer's open route for the prefix, if any.
func closeSpan(h *prefixHist, pid int, day timex.Day) {
	spans := h.byPeer[pid]
	if n := len(spans); n > 0 && spans[n-1].To == openEnd {
		spans[n-1].To = day
		if spans[n-1].To < spans[n-1].From {
			spans[n-1].To = spans[n-1].From
		}
	}
}

// Close finalizes the index. Routes still installed are treated as
// remaining installed through end. Queries before Close see open routes
// as present at any later day, so Close is optional but recommended.
// Close also builds the covering-query trie eagerly, leaving the index
// fully immutable: after Close every query method is safe for concurrent
// readers.
func (ix *Index) Close(end timex.Day) {
	for _, h := range ix.prefixes {
		for pid, spans := range h.byPeer {
			for i := range spans {
				if spans[i].To == openEnd {
					spans[i].To = end + 1
				}
			}
			h.byPeer[pid] = spans
		}
	}
	ix.buildTrie()
	ix.closed = true
}

// observedBy reports whether peer pid carried a route for h on day d,
// and returns the active span.
func (h *prefixHist) observedBy(pid int, d timex.Day) (span, bool) {
	for _, s := range h.byPeer[pid] {
		if d >= s.From && d < s.To {
			return s, true
		}
	}
	return span{}, false
}

// PeersObserving returns the peers that carried an exact route for p on
// day d.
func (ix *Index) PeersObserving(p netx.Prefix, d timex.Day) []PeerRef {
	h, ok := ix.prefixes[p]
	if !ok {
		return nil
	}
	var out []PeerRef
	for pid := range ix.peers {
		if _, ok := h.observedBy(pid, d); ok {
			out = append(out, ix.peers[pid])
		}
	}
	return out
}

// VisibleFraction returns the fraction of all registered peers that
// carried an exact route for p on day d. With no registered peers it
// returns 0.
func (ix *Index) VisibleFraction(p netx.Prefix, d timex.Day) float64 {
	if len(ix.peers) == 0 {
		return 0
	}
	h, ok := ix.prefixes[p]
	if !ok {
		return 0
	}
	n := 0
	for pid := range ix.peers {
		if _, ok := h.observedBy(pid, d); ok {
			n++
		}
	}
	return float64(n) / float64(len(ix.peers))
}

// Observed reports whether any peer carried an exact route for p on day d.
func (ix *Index) Observed(p netx.Prefix, d timex.Day) bool {
	h, ok := ix.prefixes[p]
	if !ok {
		return false
	}
	for pid := range ix.peers {
		if _, ok := h.observedBy(pid, d); ok {
			return true
		}
	}
	return false
}

// PeerObserved reports whether the specific peer carried an exact route
// for p on day d.
func (ix *Index) PeerObserved(ref PeerRef, p netx.Prefix, d timex.Day) bool {
	h, ok := ix.prefixes[p]
	if !ok {
		return false
	}
	pid, ok := ix.peerIDs[ref]
	if !ok {
		return false
	}
	_, seen := h.observedBy(pid, d)
	return seen
}

// OriginAt returns the plurality origin AS across peers observing p on
// day d.
func (ix *Index) OriginAt(p netx.Prefix, d timex.Day) (bgp.ASN, bool) {
	h, ok := ix.prefixes[p]
	if !ok {
		return 0, false
	}
	counts := make(map[bgp.ASN]int)
	for pid := range ix.peers {
		if s, ok := h.observedBy(pid, d); ok {
			counts[s.Origin]++
		}
	}
	var best bgp.ASN
	bestN := 0
	for asn, n := range counts {
		if n > bestN || (n == bestN && asn < best) {
			best, bestN = asn, n
		}
	}
	return best, bestN > 0
}

// PathAt returns one observing peer's AS path for p on day d (the
// lowest-numbered observing peer, for determinism).
func (ix *Index) PathAt(p netx.Prefix, d timex.Day) (bgp.ASPath, bool) {
	h, ok := ix.prefixes[p]
	if !ok {
		return nil, false
	}
	for pid := range ix.peers {
		if s, ok := h.observedBy(pid, d); ok {
			return s.Path, true
		}
	}
	return nil, false
}

// OriginSpan is one interval of an origination timeline.
type OriginSpan struct {
	From, To timex.Day // half-open [From, To)
	Origin   bgp.ASN
	Transit  bgp.ASN // second-to-last AS on the path, 0 if none
}

// OriginTimeline merges all peers' spans for p into a deduplicated
// origination history ordered by start day. Overlapping spans with the
// same (origin, transit) merge; distinct origins yield separate entries.
func (ix *Index) OriginTimeline(p netx.Prefix) []OriginSpan {
	h, ok := ix.prefixes[p]
	if !ok {
		return nil
	}
	pids := make([]int, 0, len(h.byPeer))
	for pid := range h.byPeer {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var all []OriginSpan
	for _, pid := range pids {
		for _, s := range h.byPeer[pid] {
			all = append(all, OriginSpan{From: s.From, To: s.To, Origin: s.Origin, Transit: transitOf(s.Path)})
		}
	}
	// Full-key comparison: ties must order identically however the spans
	// arrived, or merged timelines would depend on map iteration order.
	sort.Slice(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From < all[j].From
		}
		if all[i].Origin != all[j].Origin {
			return all[i].Origin < all[j].Origin
		}
		if all[i].Transit != all[j].Transit {
			return all[i].Transit < all[j].Transit
		}
		return all[i].To < all[j].To
	})
	var merged []OriginSpan
	for _, s := range all {
		if n := len(merged); n > 0 {
			m := &merged[n-1]
			if m.Origin == s.Origin && m.Transit == s.Transit && s.From <= m.To {
				if s.To > m.To {
					m.To = s.To
				}
				continue
			}
		}
		merged = append(merged, s)
	}
	return merged
}

func transitOf(p bgp.ASPath) bgp.ASN {
	if len(p) == 0 {
		return 0
	}
	last := p[len(p)-1]
	if last.Type != bgp.SegmentSequence || len(last.ASNs) < 2 {
		return 0
	}
	return last.ASNs[len(last.ASNs)-2]
}

// FirstObserved returns the first day any peer observed p, if ever.
func (ix *Index) FirstObserved(p netx.Prefix) (timex.Day, bool) {
	h, ok := ix.prefixes[p]
	if !ok {
		return 0, false
	}
	var first timex.Day
	found := false
	for _, spans := range h.byPeer {
		for _, s := range spans {
			if !found || s.From < first {
				first, found = s.From, true
			}
		}
	}
	return first, found
}

// buildTrie indexes prefix histories for covering/overlap queries. Close
// calls it eagerly so the post-Close index has no lazily initialized
// state; before Close it still runs on demand (single-goroutine only).
func (ix *Index) buildTrie() {
	if ix.trieBuilt {
		return
	}
	ix.trie = netx.Trie[*prefixHist]{}
	for p, h := range ix.prefixes {
		ix.trie.Insert(p, h)
	}
	ix.trieBuilt = true
}

// AnyOverlapObserved reports whether any announced prefix overlapping p
// (covering it or covered by it) was observed by any peer on day d. This
// is the "is this address space routed" test used for ROA routing status.
func (ix *Index) AnyOverlapObserved(p netx.Prefix, d timex.Day) bool {
	ix.buildTrie()
	found := false
	check := func(_ netx.Prefix, h *prefixHist) bool {
		for pid := range ix.peers {
			if _, ok := h.observedBy(pid, d); ok {
				found = true
				return false
			}
		}
		return true
	}
	ix.trie.Covering(p, check)
	if !found {
		ix.trie.CoveredBy(p, check)
	}
	return found
}

// RoutedSpace returns the union of prefixes observed by at least
// minPeers peers on day d.
func (ix *Index) RoutedSpace(d timex.Day, minPeers int) *netx.Set {
	var set netx.Set
	for p, h := range ix.prefixes {
		n := 0
		for pid := range ix.peers {
			if _, ok := h.observedBy(pid, d); ok {
				n++
				if n >= minPeers {
					break
				}
			}
		}
		if n >= minPeers {
			set.Add(p)
		}
	}
	return &set
}

// MOAS is one multiple-origin-AS conflict: a prefix simultaneously
// originated by more than one AS — the coarse signature hijack detectors
// alarm on.
type MOAS struct {
	Prefix  netx.Prefix
	Origins []bgp.ASN // sorted
}

// MOASConflicts returns the prefixes with more than one origin AS
// observed across peers on day d, in address order.
func (ix *Index) MOASConflicts(d timex.Day) []MOAS {
	var out []MOAS
	for p, h := range ix.prefixes {
		origins := make(map[bgp.ASN]bool)
		for pid := range ix.peers {
			if s, ok := h.observedBy(pid, d); ok {
				origins[s.Origin] = true
			}
		}
		if len(origins) < 2 {
			continue
		}
		m := MOAS{Prefix: p}
		for o := range origins {
			m.Origins = append(m.Origins, o)
		}
		sort.Slice(m.Origins, func(i, j int) bool { return m.Origins[i] < m.Origins[j] })
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// OriginActivity summarizes one origin AS's footprint over the whole
// index: the prefixes it originated and its total originated days.
type OriginActivity struct {
	Origin         bgp.ASN
	Prefixes       []netx.Prefix // sorted, deduplicated
	OriginatedDays int           // sum of span lengths across prefixes and peers' merged spans
}

// ByOrigin aggregates origination activity per origin AS.
func (ix *Index) ByOrigin() map[bgp.ASN]*OriginActivity {
	out := make(map[bgp.ASN]*OriginActivity)
	for p := range ix.prefixes {
		for _, span := range ix.OriginTimeline(p) {
			act := out[span.Origin]
			if act == nil {
				act = &OriginActivity{Origin: span.Origin}
				out[span.Origin] = act
			}
			n := len(act.Prefixes)
			if n == 0 || act.Prefixes[n-1] != p {
				act.Prefixes = append(act.Prefixes, p)
			}
			act.OriginatedDays += int(span.To - span.From)
		}
	}
	for _, act := range out {
		netx.SortPrefixes(act.Prefixes)
		act.Prefixes = dedupPrefixes(act.Prefixes)
	}
	return out
}

func dedupPrefixes(ps []netx.Prefix) []netx.Prefix {
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || ps[i-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// Prefixes returns every prefix ever observed, in address order.
func (ix *Index) Prefixes() []netx.Prefix {
	out := make([]netx.Prefix, 0, len(ix.prefixes))
	for p := range ix.prefixes {
		out = append(out, p)
	}
	netx.SortPrefixes(out)
	return out
}
