// Package rib reassembles per-peer routing tables from MRT archives and
// answers the temporal queries the paper's analysis needs: how many peers
// observed a prefix on a given day, which AS originated it, whether any
// announcement covered a block of address space, and full origination
// timelines for case-study prefixes.
//
// An Index is built by loading each collector's RIB dump (PEER_INDEX_TABLE
// followed by RIB_IPV4_UNICAST records) and then replaying the interleaved
// BGP4MP update stream. Routes are tracked as day-resolution presence
// intervals per (prefix, peer).
//
// # Representation
//
// The load path is allocation-disciplined: prefixes and AS paths are
// hash-consed into dense integer handles (netx.Interner,
// bgp.PathInterner), and every presence interval is one 20-byte entry in
// a single flat span array — no per-prefix maps or per-peer slices. At
// Close the spans are sorted into a columnar store grouped by (prefix,
// peer), with per-prefix cumulative visibility-count events, so point
// queries like Observed, VisibleFraction, and the RoutedSpace sweep are
// O(log n) binary searches that allocate nothing. Queries before Close
// fall back to linear scans over the raw span array; they return the
// same answers, just slower, so Close is optional but recommended.
//
// # Concurrency
//
// Reassembly parallelizes per collector: LoadCollector builds one
// collector's state with no shared references, so any number of
// LoadCollector calls may run concurrently. Merging CollectorRIBs into an
// Index and calling Close must happen on a single goroutine; merging in a
// fixed collector order yields an Index identical to serial loading in
// that order. After Close the Index is immutable (Close builds the
// columnar store eagerly; covering queries binary-search its sorted
// prefix column), so every query method is safe for unlimited
// concurrent readers. Close is idempotent: repeated calls do not
// re-sort or re-intern anything.
package rib

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// PeerRef identifies one peer of one collector.
type PeerRef struct {
	Collector string
	Addr      netx.Addr
	AS        bgp.ASN
}

// String renders the peer as "collector/AS64500/203.0.113.1".
func (p PeerRef) String() string {
	return fmt.Sprintf("%s/%s/%s", p.Collector, p.AS, p.Addr)
}

// Span is a half-open day interval [From, To) during which a peer
// carried a route for a prefix — one 20-byte entry of the flat span
// store. To == openEnd while the route is still installed. Prefix and
// Path are dense handles (a netx interner / sorted-prefix id and a
// bgp.PathID); origin, neighbor, and transit ASes live in the path
// interner's per-path metadata, stored once per distinct path instead
// of once per span. The fields are exported so snapshot layers
// (internal/ribsnap) can lay spans out as flat binary sections and map
// them back without copying; treat them as read-only handles. Inside
// the columnar store built at Close, Prefix holds the address-sorted
// prefix id rather than the load-time interner handle.
type Span struct {
	Prefix uint32
	Peer   int32
	From   timex.Day
	To     timex.Day
	Path   bgp.PathID
}

const openEnd = timex.Day(1<<31 - 1)

// closeMarker is the To stamped on spans still open at Close(end):
// one past the largest day the index has seen, so it can never
// collide with a genuine close (which ends at a record day <= maxDay).
func closeMarker(end, maxDay timex.Day) timex.Day {
	if maxDay > end {
		return maxDay + 1
	}
	return end + 1
}

// openKey addresses the currently-open span of one (prefix, peer).
type openKey struct {
	prefix uint32
	peer   int32
}

// Index is the reassembled multi-collector view. Build it either by
// calling Load per collector, or by merging independently built
// CollectorRIBs with Merge; the two paths produce identical indexes when
// collectors arrive in the same order. After Close the Index is immutable
// and safe for concurrent readers.
type Index struct {
	peers   []PeerRef
	peerIDs map[PeerRef]int
	// peerTables maps collector name -> MRT peer index -> global peer id.
	peerTables map[string][]int

	prefixes netx.Interner
	paths    *bgp.PathInterner
	spans    []Span
	closed   bool
	// maxDay is the largest day stamped on any applied record — the
	// delta-append invariant: a column span is open at Close(end) iff
	// To == closeMarker(end, maxDay). Persisted in the snapshot
	// lineage so an append can recover the open set before splicing.
	maxDay timex.Day

	// Columnar store, built once at Close. Every slice is flat and
	// position-addressed — no pointers — so a snapshot layer can write
	// the whole store as binary sections and adopt mapped memory back
	// via FromFrozen without copying. Exact-prefix lookup and the
	// covering/covered-by walks are binary searches over sorted, so no
	// pointer trie (and no per-node allocation) survives the build.
	built   bool
	sorted  []netx.Prefix // address-sorted distinct prefixes
	col     []Span        // grouped by sorted-prefix id (stored in Span.Prefix), then peer, insertion order within
	spanOff []uint32      // len(sorted)+1 offsets into col
	evDay   []timex.Day   // per-prefix visibility events: day ...
	evCount []int32       // ... and the peer count from that day on
	evOff   []uint32      // len(sorted)+1 offsets into evDay/evCount
}

// NewIndex returns an empty Index.
func NewIndex() *Index {
	return &Index{
		peerIDs:    make(map[PeerRef]int),
		peerTables: make(map[string][]int),
		paths:      &bgp.PathInterner{},
	}
}

// Peers returns all peers registered via peer index tables, in
// registration order.
func (ix *Index) Peers() []PeerRef { return ix.peers }

// NumPrefixes returns the number of distinct prefixes ever observed.
func (ix *Index) NumPrefixes() int {
	if ix.built {
		return len(ix.sorted)
	}
	return ix.prefixes.Len()
}

func (ix *Index) peerID(ref PeerRef) int {
	if id, ok := ix.peerIDs[ref]; ok {
		return id
	}
	id := len(ix.peers)
	ix.peers = append(ix.peers, ref)
	ix.peerIDs[ref] = id
	return id
}

// CollectorRIB is one collector's independently reassembled state. It is
// self-contained — peer ids, prefix handles, and path handles are
// collector-local and nothing references the destination Index — so
// LoadCollector calls for different collectors may run on concurrent
// goroutines, with the results merged afterwards in a deterministic
// order via (*Index).Merge.
type CollectorRIB struct {
	collector string
	peers     []PeerRef
	peerIDs   map[PeerRef]int
	table     []int // MRT peer index -> local peer id; nil until the index table
	prefixes  netx.Interner
	paths     bgp.PathInterner
	spans     []Span
	open      map[openKey]int32 // (prefix, peer) -> index+1 of its open span
	maxDay    timex.Day         // largest day stamped on any applied record
	// copyPaths forces a deep copy when interning paths. Loading from a
	// materialized []mrt.Record aliases the records' path storage (as the
	// pre-interning representation did); a streaming source recycles
	// record storage between records, so LoadCollectorFrom sets this.
	copyPaths bool
}

// Collector returns the collector name the RIB was loaded from.
func (c *CollectorRIB) Collector() string { return c.collector }

// NumPrefixes returns the number of distinct prefixes the collector saw.
func (c *CollectorRIB) NumPrefixes() int { return c.prefixes.Len() }

func (c *CollectorRIB) peerID(ref PeerRef) int {
	if id, ok := c.peerIDs[ref]; ok {
		return id
	}
	id := len(c.peers)
	c.peers = append(c.peers, ref)
	c.peerIDs[ref] = id
	return id
}

func newCollectorRIB(collector string) *CollectorRIB {
	return &CollectorRIB{
		collector: collector,
		peerIDs:   make(map[PeerRef]int),
		open:      make(map[openKey]int32),
	}
}

// LoadCollector consumes one collector's MRT record stream into a
// standalone CollectorRIB: a PEER_INDEX_TABLE declares the peer set,
// RIB_IPV4_UNICAST records seed routes, and BGP4MP messages open and close
// presence intervals. Records must be in timestamp order within the
// stream. The first record that cannot be applied fails the load; use
// LoadCollectorHealth to skip and count such records instead.
func LoadCollector(collector string, recs []mrt.Record) (*CollectorRIB, error) {
	return loadCollector(collector, recs, nil)
}

// LoadCollectorHealth is the lenient variant of LoadCollector: records
// that decoded but cannot be applied (a RIB entry before any peer index
// table, a peer index beyond the table, an unsupported record type) are
// skipped and classified on src rather than failing the whole collector.
// src must not be nil and must not be shared with a concurrent loader.
func LoadCollectorHealth(collector string, recs []mrt.Record, src *ingest.Source) (*CollectorRIB, error) {
	return loadCollector(collector, recs, src)
}

func loadCollector(collector string, recs []mrt.Record, src *ingest.Source) (*CollectorRIB, error) {
	c := newCollectorRIB(collector)
	for _, rec := range recs {
		if err := c.apply(rec, src); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// RecordSource is a stream of decoded MRT records ending in io.EOF —
// *mrt.Reader satisfies it directly.
type RecordSource interface {
	Next() (mrt.Record, error)
}

// LoadCollectorFrom streams one collector's records straight off a
// RecordSource into a CollectorRIB without ever materializing a
// []mrt.Record. Because apply interns every prefix and path it keeps,
// the source may recycle record storage between Next calls — pair this
// with an mrt.Reader in ReuseRecords mode for an allocation-free decode
// loop. Errors from the source (other than io.EOF) abort the load.
func LoadCollectorFrom(collector string, rs RecordSource) (*CollectorRIB, error) {
	return loadCollectorFrom(collector, rs, nil)
}

// LoadCollectorFromHealth is the lenient variant of LoadCollectorFrom:
// records that cannot be applied are skipped and classified on src.
func LoadCollectorFromHealth(collector string, rs RecordSource, src *ingest.Source) (*CollectorRIB, error) {
	return loadCollectorFrom(collector, rs, src)
}

func loadCollectorFrom(collector string, rs RecordSource, src *ingest.Source) (*CollectorRIB, error) {
	c := newCollectorRIB(collector)
	c.copyPaths = true
	for {
		rec, err := rs.Next()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return nil, err
		}
		if err := c.apply(rec, src); err != nil {
			return nil, err
		}
	}
}

// apply folds one record into the collector state. It retains nothing
// from the record itself: prefixes and paths are interned (copied) and
// peers are copied into PeerRefs.
func (c *CollectorRIB) apply(rec mrt.Record, src *ingest.Source) error {
	switch r := rec.(type) {
	case *mrt.PeerIndexTable:
		table := make([]int, len(r.Peers))
		for i, p := range r.Peers {
			table[i] = c.peerID(PeerRef{Collector: c.collector, Addr: p.Addr, AS: p.AS})
		}
		c.table = table
	case *mrt.RIBPrefix:
		if c.table == nil {
			if src != nil {
				src.Skip(ingest.Corrupt)
				return nil
			}
			return fmt.Errorf("rib: %s: RIB record before peer index table", c.collector)
		}
		day := timex.FromTime(r.When)
		if day > c.maxDay {
			c.maxDay = day
		}
		pfx := c.prefixes.Intern(r.Prefix)
		bad := false
		for _, e := range r.Entries {
			if int(e.PeerIndex) >= len(c.table) {
				if src != nil {
					bad = true
					continue
				}
				return fmt.Errorf("rib: %s: peer index %d out of range", c.collector, e.PeerIndex)
			}
			c.openSpan(pfx, c.table[e.PeerIndex], day, e.Attrs.Path)
		}
		if bad {
			src.Skip(ingest.Corrupt)
		}
	case *mrt.BGP4MPMessage:
		day := timex.FromTime(r.When)
		if day > c.maxDay {
			c.maxDay = day
		}
		pid := c.peerID(PeerRef{Collector: c.collector, Addr: r.PeerAddr, AS: r.PeerAS})
		for _, p := range r.Update.Withdrawn {
			c.closeSpan(c.prefixes.Intern(p), pid, day)
		}
		for _, p := range r.Update.NLRI {
			c.openSpan(c.prefixes.Intern(p), pid, day, r.Update.Attrs.Path)
		}
	default:
		if src != nil {
			src.Skip(ingest.Unsupported)
			return nil
		}
		return fmt.Errorf("rib: unsupported record %T", rec)
	}
	return nil
}

// openSpan starts (or re-points) the peer's route for the prefix.
func (c *CollectorRIB) openSpan(pfx uint32, pid int, day timex.Day, path bgp.ASPath) {
	var id bgp.PathID
	if c.copyPaths {
		id = c.paths.Intern(path)
	} else {
		id = c.paths.InternShared(path)
	}
	k := openKey{prefix: pfx, peer: int32(pid)}
	if si := c.open[k]; si != 0 {
		s := &c.spans[si-1]
		if s.Path == id {
			return // implicit re-announcement of the same route
		}
		// Implicit withdraw: route replaced by a different path same day.
		s.To = day
		if s.To < s.From {
			s.To = s.From
		}
	}
	c.spans = append(c.spans, Span{Prefix: pfx, Peer: int32(pid), From: day, To: openEnd, Path: id})
	c.open[k] = int32(len(c.spans))
}

// closeSpan ends the peer's open route for the prefix, if any.
func (c *CollectorRIB) closeSpan(pfx uint32, pid int, day timex.Day) {
	k := openKey{prefix: pfx, peer: int32(pid)}
	if si := c.open[k]; si != 0 {
		s := &c.spans[si-1]
		s.To = day
		if s.To < s.From {
			s.To = s.From
		}
		delete(c.open, k)
	}
}

// Merge folds one collector's state into the index, remapping the
// collector-local peer ids, prefix handles, and path handles onto the
// global spaces. Merge is not itself safe for concurrent use — call it
// from one goroutine, in sorted collector order for results identical
// to serial Load calls.
func (ix *Index) Merge(c *CollectorRIB) error {
	if ix.closed {
		return fmt.Errorf("rib: index already closed")
	}
	// Remap local ids to global ones. Peer refs are collector-scoped, so
	// collisions only occur when the same collector is merged twice; reuse
	// the existing id then, as serial loading would.
	remap := make([]int, len(c.peers))
	for lid, ref := range c.peers {
		remap[lid] = ix.peerID(ref)
	}
	if c.maxDay > ix.maxDay {
		ix.maxDay = c.maxDay
	}
	if c.table != nil {
		table := make([]int, len(c.table))
		for i, lid := range c.table {
			table[i] = remap[lid]
		}
		ix.peerTables[c.collector] = table
	}
	pathRemap := make([]bgp.PathID, c.paths.Len())
	for i := range pathRemap {
		// The collector interner's canonical copies are immutable, so the
		// global interner shares them rather than cloning again.
		pathRemap[i] = ix.paths.InternShared(c.paths.Path(bgp.PathID(i)))
	}
	prefixRemap := make([]uint32, c.prefixes.Len())
	for i := range prefixRemap {
		prefixRemap[i] = ix.prefixes.Intern(c.prefixes.At(uint32(i)))
	}
	if cap(ix.spans)-len(ix.spans) < len(c.spans) {
		grown := make([]Span, len(ix.spans), len(ix.spans)+len(c.spans))
		copy(grown, ix.spans)
		ix.spans = grown
	}
	for _, s := range c.spans {
		ix.spans = append(ix.spans, Span{
			Prefix: prefixRemap[s.Prefix],
			Peer:   int32(remap[s.Peer]),
			From:   s.From,
			To:     s.To,
			Path:   pathRemap[s.Path],
		})
	}
	return nil
}

// Load consumes one collector's MRT record stream: a PEER_INDEX_TABLE
// declares the peer set, RIB_IPV4_UNICAST records seed routes, and
// BGP4MP messages open and close presence intervals. Records must be in
// timestamp order within the stream. Load is the serial path; it is
// exactly LoadCollector followed by Merge.
func (ix *Index) Load(collector string, recs []mrt.Record) error {
	if ix.closed {
		return fmt.Errorf("rib: index already closed")
	}
	c, err := LoadCollector(collector, recs)
	if err != nil {
		return err
	}
	return ix.Merge(c)
}

// Close finalizes the index. Routes still installed are treated as
// remaining installed through end. Queries before Close see open routes
// as present at any later day, so Close is optional but recommended:
// it builds the columnar span store and the per-prefix visibility
// events, leaving the index fully immutable — after Close every query
// method is safe for concurrent readers and the point queries are
// allocation-free. Close is idempotent; calls after the first return
// immediately without re-sorting or re-interning anything.
func (ix *Index) Close(end timex.Day) {
	if ix.closed {
		return
	}
	// Open spans are stamped one past the largest day the index has
	// seen — max(end, maxDay)+1 — never the bare end+1: a record with a
	// day beyond the close day (archives legitimately run past the
	// study window) could otherwise close a span AT end+1 and make the
	// open marker ambiguous. With the max, a genuinely closed span
	// always ends at a record day <= maxDay < marker, so the
	// delta-append path can recover exactly the open set. Queries are
	// unaffected: both markers exceed every in-window day.
	openTo := closeMarker(end, ix.maxDay)
	for i := range ix.spans {
		if ix.spans[i].To == openEnd {
			ix.spans[i].To = openTo
		}
	}
	ix.build()
	// The raw span array is fully superseded by the columnar store: no
	// query reads it once built, and Merge/Load refuse a closed index.
	// Dropping it halves the live span memory.
	ix.spans = nil
	ix.closed = true
}

// build constructs the columnar store: spans counting-sorted into
// address-ordered per-prefix buckets (stable, so insertion order within
// a (prefix, peer) group survives) and per-prefix cumulative visibility
// events. Span.Prefix is rewritten to the sorted-prefix id as each span
// lands in its bucket, so the finished store references only
// position-addressed flat arrays — exactly what the snapshot layer
// serializes and what covering queries binary-search.
func (ix *Index) build() {
	n := ix.prefixes.Len()
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return ix.prefixes.At(order[i]).Compare(ix.prefixes.At(order[j])) < 0
	})
	ix.sorted = make([]netx.Prefix, n)
	rank := make([]uint32, n) // load-time interner handle -> sorted id
	for sid, lid := range order {
		ix.sorted[sid] = ix.prefixes.At(lid)
		rank[lid] = uint32(sid)
	}

	// Two-pass LSD radix: a stable counting sort by peer, then by
	// sorted-prefix id, leaves spans grouped by prefix with each group
	// sub-grouped by peer and insertion (time) order intact within —
	// linear time, no per-prefix comparison sorts.
	npeer := len(ix.peers)
	byPeer := make([]Span, len(ix.spans))
	pcnt := make([]uint32, npeer+1)
	for _, s := range ix.spans {
		pcnt[s.Peer+1]++
	}
	for i := 1; i <= npeer; i++ {
		pcnt[i] += pcnt[i-1]
	}
	for _, s := range ix.spans {
		byPeer[pcnt[s.Peer]] = s
		pcnt[s.Peer]++
	}

	offs := make([]uint32, n+1)
	for _, s := range byPeer {
		offs[rank[s.Prefix]+1]++
	}
	for i := 1; i <= n; i++ {
		offs[i] += offs[i-1]
	}
	pos := make([]uint32, n)
	copy(pos, offs[:n])
	col := make([]Span, len(byPeer))
	for _, s := range byPeer {
		sid := rank[s.Prefix]
		s.Prefix = sid
		col[pos[sid]] = s
		pos[sid]++
	}
	ix.col = col
	ix.spanOff = offs

	ix.buildEvents(0)
	ix.built = true
}

// minPrefixesPerWorker bounds the buildEvents fan-out: below this many
// prefixes per worker the goroutine and stitching overhead outweighs
// the per-prefix interval-union work.
const minPrefixesPerWorker = 64

// buildEvents derives, per prefix, a sorted event list (day, peer count
// from that day on). A peer's spans may overlap — the same collector
// merged twice, or duplicated dump records — so each peer's intervals
// are unioned first, keeping every peer's contribution to the count in
// {0, 1} exactly as the per-peer observedBy scan behaved.
//
// Each prefix's event list depends only on that prefix's own span
// bucket, so the union is embarrassingly parallel: workers (<= 0 means
// runtime.GOMAXPROCS(0), clamped so every worker gets at least
// minPrefixesPerWorker prefixes) each process one contiguous sid range
// into worker-local buffers, which are then stitched back in sid order.
// The output is byte-identical to the serial pass whatever the worker
// count, and workers share only the immutable columnar store.
func (ix *Index) buildEvents(workers int) {
	n := len(ix.sorted)
	ix.evOff = make([]uint32, n+1)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := n / minPrefixesPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		ix.evDay = ix.evDay[:0]
		ix.evCount = ix.evCount[:0]
		var sc evScratch
		for sid := 0; sid < n; sid++ {
			ix.evDay, ix.evCount = appendPrefixEvents(
				ix.evDay, ix.evCount, ix.col[ix.spanOff[sid]:ix.spanOff[sid+1]], &sc)
			ix.evOff[sid+1] = uint32(len(ix.evDay))
		}
		return
	}

	type evChunk struct {
		lo, hi    int // sid range [lo, hi)
		days      []timex.Day
		counts    []int32
		perPrefix []uint32 // events emitted per prefix in the range
	}
	chunks := make([]evChunk, workers)
	for w := range chunks {
		chunks[w].lo = n * w / workers
		chunks[w].hi = n * (w + 1) / workers
		chunks[w].perPrefix = make([]uint32, chunks[w].hi-chunks[w].lo)
	}
	var wg sync.WaitGroup
	for w := range chunks {
		wg.Add(1)
		go func(c *evChunk) {
			defer wg.Done()
			var sc evScratch
			for sid := c.lo; sid < c.hi; sid++ {
				before := len(c.days)
				c.days, c.counts = appendPrefixEvents(
					c.days, c.counts, ix.col[ix.spanOff[sid]:ix.spanOff[sid+1]], &sc)
				c.perPrefix[sid-c.lo] = uint32(len(c.days) - before)
			}
		}(&chunks[w])
	}
	wg.Wait()

	total := 0
	for i := range chunks {
		total += len(chunks[i].days)
	}
	ix.evDay = make([]timex.Day, 0, total)
	ix.evCount = make([]int32, 0, total)
	off, sid := uint32(0), 0
	for i := range chunks {
		c := &chunks[i]
		ix.evDay = append(ix.evDay, c.days...)
		ix.evCount = append(ix.evCount, c.counts...)
		for _, cnt := range c.perPrefix {
			off += cnt
			sid++
			ix.evOff[sid] = off
		}
	}
}

// evScratch is one worker's reusable sorter and interval scratch; the
// closure-based sort helpers allocate per call, which at one call per
// prefix dominated the whole build, so each worker reuses one typed
// sorter and one interval buffer across its prefixes.
type evScratch struct {
	es  evSorter
	ivs []dayIV
}

// appendPrefixEvents unions one prefix's span bucket into (day, count)
// events appended to days/counts, returning the grown slices. It is a
// pure function of the bucket, so concurrent calls over different
// buckets (with distinct scratch) produce identical output to a serial
// sweep.
func appendPrefixEvents(days []timex.Day, counts []int32, spans []Span, sc *evScratch) ([]timex.Day, []int32) {
	evs := sc.es.evs[:0]
	ivs := sc.ivs
	for i := 0; i < len(spans); {
		j := i
		for j < len(spans) && spans[j].Peer == spans[i].Peer {
			j++
		}
		ivs = ivs[:0]
		for _, s := range spans[i:j] {
			if s.From < s.To {
				ivs = append(ivs, dayIV{s.From, s.To})
			}
		}
		i = j
		if len(ivs) == 0 {
			continue
		}
		sortIVs(ivs)
		cur := ivs[0]
		for _, v := range ivs[1:] {
			if v.from <= cur.to {
				if v.to > cur.to {
					cur.to = v.to
				}
				continue
			}
			evs = append(evs, visEvent{cur.from, 1}, visEvent{cur.to, -1})
			cur = v
		}
		evs = append(evs, visEvent{cur.from, 1}, visEvent{cur.to, -1})
	}
	sc.ivs = ivs
	sc.es.evs = evs
	sort.Sort(&sc.es)
	var count int32
	for k := 0; k < len(evs); {
		day := evs[k].day
		for k < len(evs) && evs[k].day == day {
			count += evs[k].delta
			k++
		}
		days = append(days, day)
		counts = append(counts, count)
	}
	return days, counts
}

type dayIV struct{ from, to timex.Day }

// sortIVs is an insertion sort by (from, to): per-peer interval lists
// are almost always a handful of entries, and a typed sort keeps the
// inner build loop allocation-free.
func sortIVs(ivs []dayIV) {
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0; j-- {
			a, b := ivs[j-1], ivs[j]
			if b.from > a.from || (b.from == a.from && b.to >= a.to) {
				break
			}
			ivs[j-1], ivs[j] = b, a
		}
	}
}

type visEvent struct {
	day   timex.Day
	delta int32
}

type evSorter struct{ evs []visEvent }

func (s *evSorter) Len() int           { return len(s.evs) }
func (s *evSorter) Less(i, j int) bool { return s.evs[i].day < s.evs[j].day }
func (s *evSorter) Swap(i, j int)      { s.evs[i], s.evs[j] = s.evs[j], s.evs[i] }

// eventCount returns how many peers observed the sid-th sorted prefix
// on day d: a binary search over the prefix's cumulative events.
func (ix *Index) eventCount(sid uint32, d timex.Day) int32 {
	lo, hi := int(ix.evOff[sid]), int(ix.evOff[sid+1])
	i, j := lo, hi
	for i < j {
		m := int(uint(i+j) >> 1)
		if ix.evDay[m] <= d {
			i = m + 1
		} else {
			j = m
		}
	}
	if i == lo {
		return 0
	}
	return ix.evCount[i-1]
}

// sortedID returns p's address-sorted prefix id in the built store: a
// hand-rolled binary search over sorted, so the point-query paths stay
// allocation-free and need no interner map — a warm-loaded (snapshot)
// index has only the flat arrays.
func (ix *Index) sortedID(p netx.Prefix) (uint32, bool) {
	i, ok := netx.SearchPrefixes(ix.sorted, p)
	return uint32(i), ok
}

// prefixAt returns the i-th distinct prefix: address order once built,
// interner (first-seen) order before.
func (ix *Index) prefixAt(i int) netx.Prefix {
	if ix.built {
		return ix.sorted[i]
	}
	return ix.prefixes.At(uint32(i))
}

// spansOf returns p's spans grouped by peer (ascending), insertion
// order within each group — the columnar bucket after Close, a filtered
// copy of the raw span array before.
func (ix *Index) spansOf(p netx.Prefix) []Span {
	if ix.built {
		sid, ok := ix.sortedID(p)
		if !ok {
			return nil
		}
		return ix.col[ix.spanOff[sid]:ix.spanOff[sid+1]]
	}
	lid, ok := ix.prefixes.Lookup(p)
	if !ok {
		return nil
	}
	var out []Span
	for _, s := range ix.spans {
		if s.Prefix == lid {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// firstCovering walks peer groups in ascending-peer order and reports
// each peer's first span covering day d (the same "first matching span
// wins" rule the per-peer scan used). fn returning false stops the walk.
func firstCovering(spans []Span, d timex.Day, fn func(s Span) bool) {
	for i := 0; i < len(spans); {
		j := i
		found := -1
		for j < len(spans) && spans[j].Peer == spans[i].Peer {
			if found < 0 && d >= spans[j].From && d < spans[j].To {
				found = j
			}
			j++
		}
		if found >= 0 && !fn(spans[found]) {
			return
		}
		i = j
	}
}

// visCount returns how many peers observed p on day d.
func (ix *Index) visCount(p netx.Prefix, d timex.Day) int {
	if ix.built {
		if sid, ok := ix.sortedID(p); ok {
			return int(ix.eventCount(sid, d))
		}
		return 0
	}
	n := 0
	firstCovering(ix.spansOf(p), d, func(Span) bool { n++; return true })
	return n
}

// NumPeers returns the number of registered peers across all collectors.
func (ix *Index) NumPeers() int { return len(ix.peers) }

// MaxDay returns the largest day stamped on any record folded into the
// index (0 if no dated record was ever applied). The delta-append path
// relies on it: open routes are recoverable from a closed column store
// only while MaxDay does not exceed the Close day.
func (ix *Index) MaxDay() timex.Day { return ix.maxDay }

// VisibleCount returns how many peers carried an exact route for p on
// day d. After Close it is two binary searches and allocates nothing —
// the point query serving layers sit in their request hot path.
func (ix *Index) VisibleCount(p netx.Prefix, d timex.Day) int {
	return ix.visCount(p, d)
}

// PeersObserving returns the peers that carried an exact route for p on
// day d.
func (ix *Index) PeersObserving(p netx.Prefix, d timex.Day) []PeerRef {
	var out []PeerRef
	firstCovering(ix.spansOf(p), d, func(s Span) bool {
		out = append(out, ix.peers[s.Peer])
		return true
	})
	return out
}

// VisibleFraction returns the fraction of all registered peers that
// carried an exact route for p on day d. With no registered peers it
// returns 0.
func (ix *Index) VisibleFraction(p netx.Prefix, d timex.Day) float64 {
	if len(ix.peers) == 0 {
		return 0
	}
	return float64(ix.visCount(p, d)) / float64(len(ix.peers))
}

// Observed reports whether any peer carried an exact route for p on day d.
func (ix *Index) Observed(p netx.Prefix, d timex.Day) bool {
	return ix.visCount(p, d) > 0
}

// PeerObserved reports whether the specific peer carried an exact route
// for p on day d.
func (ix *Index) PeerObserved(ref PeerRef, p netx.Prefix, d timex.Day) bool {
	pid, ok := ix.peerIDs[ref]
	if !ok {
		return false
	}
	spans := ix.spansOf(p)
	if ix.built {
		// Bucket is sorted by peer: jump to the peer's group.
		k := sort.Search(len(spans), func(i int) bool { return spans[i].Peer >= int32(pid) })
		for ; k < len(spans) && spans[k].Peer == int32(pid); k++ {
			if d >= spans[k].From && d < spans[k].To {
				return true
			}
		}
		return false
	}
	for _, s := range spans {
		if s.Peer == int32(pid) && d >= s.From && d < s.To {
			return true
		}
	}
	return false
}

// OriginAt returns the plurality origin AS across peers observing p on
// day d.
func (ix *Index) OriginAt(p netx.Prefix, d timex.Day) (bgp.ASN, bool) {
	counts := make(map[bgp.ASN]int)
	firstCovering(ix.spansOf(p), d, func(s Span) bool {
		counts[ix.paths.Meta(s.Path).Origin]++
		return true
	})
	var best bgp.ASN
	bestN := 0
	for asn, n := range counts {
		if n > bestN || (n == bestN && asn < best) {
			best, bestN = asn, n
		}
	}
	return best, bestN > 0
}

// PathAt returns one observing peer's AS path for p on day d (the
// lowest-numbered observing peer, for determinism). Callers must not
// mutate the returned path: it is the interner's canonical copy.
func (ix *Index) PathAt(p netx.Prefix, d timex.Day) (bgp.ASPath, bool) {
	var path bgp.ASPath
	found := false
	firstCovering(ix.spansOf(p), d, func(s Span) bool {
		path, found = ix.paths.Path(s.Path), true
		return false
	})
	return path, found
}

// OriginSpan is one interval of an origination timeline.
type OriginSpan struct {
	From, To timex.Day // half-open [From, To)
	Origin   bgp.ASN
	Transit  bgp.ASN // second-to-last AS on the path, 0 if none
}

// OriginTimeline merges all peers' spans for p into a deduplicated
// origination history ordered by start day. Overlapping spans with the
// same (origin, transit) merge; distinct origins yield separate entries.
func (ix *Index) OriginTimeline(p netx.Prefix) []OriginSpan {
	spans := ix.spansOf(p)
	if len(spans) == 0 {
		return nil
	}
	all := make([]OriginSpan, 0, len(spans))
	for _, s := range spans {
		m := ix.paths.Meta(s.Path)
		all = append(all, OriginSpan{From: s.From, To: s.To, Origin: m.Origin, Transit: m.Transit})
	}
	// Full-key comparison: ties must order identically however the spans
	// arrived, or merged timelines would depend on arrival order.
	sort.Slice(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From < all[j].From
		}
		if all[i].Origin != all[j].Origin {
			return all[i].Origin < all[j].Origin
		}
		if all[i].Transit != all[j].Transit {
			return all[i].Transit < all[j].Transit
		}
		return all[i].To < all[j].To
	})
	var merged []OriginSpan
	for _, s := range all {
		if n := len(merged); n > 0 {
			m := &merged[n-1]
			if m.Origin == s.Origin && m.Transit == s.Transit && s.From <= m.To {
				if s.To > m.To {
					m.To = s.To
				}
				continue
			}
		}
		merged = append(merged, s)
	}
	return merged
}

// FirstObserved returns the first day any peer observed p, if ever.
func (ix *Index) FirstObserved(p netx.Prefix) (timex.Day, bool) {
	var first timex.Day
	found := false
	for _, s := range ix.spansOf(p) {
		if !found || s.From < first {
			first, found = s.From, true
		}
	}
	return first, found
}

// AnyOverlapObserved reports whether any announced prefix overlapping p
// (covering it or covered by it) was observed by any peer on day d. This
// is the "is this address space routed" test used for ROA routing status.
func (ix *Index) AnyOverlapObserved(p netx.Prefix, d timex.Day) bool {
	if ix.built {
		// Covering prefixes: probe each of the <= 33 possible
		// shorter-or-equal lengths directly (p itself at b == Bits()).
		for b := 0; b <= p.Bits(); b++ {
			q := netx.PrefixFrom(p.Addr(), b)
			if sid, ok := ix.sortedID(q); ok && ix.eventCount(sid, d) > 0 {
				return true
			}
		}
		// Covered prefixes: IPv4 prefix ranges are laminar, so every
		// distinct prefix inside p's address range is one contiguous run
		// of sorted starting at p's insertion point. Entries at p.Addr()
		// with shorter length sort before that point and were probed
		// above; the Covers filter only excludes them defensively.
		i, _ := netx.SearchPrefixes(ix.sorted, p)
		last := p.LastAddr()
		for ; i < len(ix.sorted); i++ {
			q := ix.sorted[i]
			if q.Addr() > last {
				break
			}
			if p.Covers(q) && ix.eventCount(uint32(i), d) > 0 {
				return true
			}
		}
		return false
	}
	for i := 0; i < ix.prefixes.Len(); i++ {
		q := ix.prefixes.At(uint32(i))
		if (q.Covers(p) || p.Covers(q)) && ix.visCount(q, d) > 0 {
			return true
		}
	}
	return false
}

// RoutedSpace returns the union of prefixes observed by at least
// minPeers peers on day d.
func (ix *Index) RoutedSpace(d timex.Day, minPeers int) *netx.Set {
	var set netx.Set
	if ix.built {
		for sid, p := range ix.sorted {
			if int(ix.eventCount(uint32(sid), d)) >= minPeers {
				set.Add(p)
			}
		}
		return &set
	}
	for i := 0; i < ix.prefixes.Len(); i++ {
		p := ix.prefixes.At(uint32(i))
		if ix.visCount(p, d) >= minPeers {
			set.Add(p)
		}
	}
	return &set
}

// MOAS is one multiple-origin-AS conflict: a prefix simultaneously
// originated by more than one AS — the coarse signature hijack detectors
// alarm on.
type MOAS struct {
	Prefix  netx.Prefix
	Origins []bgp.ASN // sorted
}

// MOASConflicts returns the prefixes with more than one origin AS
// observed across peers on day d, in address order.
func (ix *Index) MOASConflicts(d timex.Day) []MOAS {
	var out []MOAS
	collect := func(p netx.Prefix) {
		origins := make(map[bgp.ASN]bool)
		firstCovering(ix.spansOf(p), d, func(s Span) bool {
			origins[ix.paths.Meta(s.Path).Origin] = true
			return true
		})
		if len(origins) < 2 {
			return
		}
		m := MOAS{Prefix: p}
		for o := range origins {
			m.Origins = append(m.Origins, o)
		}
		sort.Slice(m.Origins, func(i, j int) bool { return m.Origins[i] < m.Origins[j] })
		out = append(out, m)
	}
	if ix.built {
		for sid, p := range ix.sorted {
			// A single peer contributes one origin, so fewer than two
			// observing peers cannot conflict: skip without scanning.
			if ix.eventCount(uint32(sid), d) < 2 {
				continue
			}
			collect(p)
		}
	} else {
		for i := 0; i < ix.prefixes.Len(); i++ {
			collect(ix.prefixes.At(uint32(i)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// OriginActivity summarizes one origin AS's footprint over the whole
// index: the prefixes it originated and its total originated days.
type OriginActivity struct {
	Origin         bgp.ASN
	Prefixes       []netx.Prefix // sorted, deduplicated
	OriginatedDays int           // sum of span lengths across prefixes and peers' merged spans
}

// ByOrigin aggregates origination activity per origin AS. Iteration
// order (interner order before Close, address order after) does not
// leak into the result: the per-origin prefix lists are sorted and the
// day sums are order-independent.
func (ix *Index) ByOrigin() map[bgp.ASN]*OriginActivity {
	out := make(map[bgp.ASN]*OriginActivity)
	for i, n := 0, ix.NumPrefixes(); i < n; i++ {
		p := ix.prefixAt(i)
		for _, span := range ix.OriginTimeline(p) {
			act := out[span.Origin]
			if act == nil {
				act = &OriginActivity{Origin: span.Origin}
				out[span.Origin] = act
			}
			n := len(act.Prefixes)
			if n == 0 || act.Prefixes[n-1] != p {
				act.Prefixes = append(act.Prefixes, p)
			}
			act.OriginatedDays += int(span.To - span.From)
		}
	}
	for _, act := range out {
		netx.SortPrefixes(act.Prefixes)
		act.Prefixes = dedupPrefixes(act.Prefixes)
	}
	return out
}

func dedupPrefixes(ps []netx.Prefix) []netx.Prefix {
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || ps[i-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// Prefixes returns every prefix ever observed, in address order.
func (ix *Index) Prefixes() []netx.Prefix {
	if ix.built {
		return append([]netx.Prefix(nil), ix.sorted...)
	}
	out := make([]netx.Prefix, 0, ix.prefixes.Len())
	for i := 0; i < ix.prefixes.Len(); i++ {
		out = append(out, ix.prefixes.At(uint32(i)))
	}
	netx.SortPrefixes(out)
	return out
}
