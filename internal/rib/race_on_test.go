//go:build race

package rib

const raceEnabled = true
