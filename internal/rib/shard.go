package rib

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// ShardRelease unpins a shard index acquired through a ShardHandle.
type ShardRelease interface{ Release() }

// ShardHandle is one prefix-range shard of a sharded index. A handle
// may be backed by a resident in-memory Index (MemShard) or by a
// lazily mapped snapshot file whose residency is managed elsewhere
// (ribsnap.ShardSet): AcquireIndex pins the shard's index — faulting it
// back in if it was evicted — and the returned ShardRelease must be
// called when the query is done with it. Implementations must keep the
// resident fast path allocation-free: the point-query contract of the
// Querier interface extends through the handle boundary.
type ShardHandle interface {
	AcquireIndex() (*Index, ShardRelease, error)
}

// noRelease is the release token of an always-resident shard. It is an
// empty struct so converting it to ShardRelease never allocates.
type noRelease struct{}

func (noRelease) Release() {}

// MemShard is an always-resident in-memory shard.
type MemShard struct{ Index *Index }

// AcquireIndex returns the resident index; it never fails.
func (m MemShard) AcquireIndex() (*Index, ShardRelease, error) { return m.Index, noRelease{}, nil }

// FrozenShards partitions a closed index into k prefix-range shards and
// returns each shard's flat Frozen form, built on a bounded worker pool
// (workers <= 0 means runtime.GOMAXPROCS(0)). Cut points sit at
// prefix-rank boundaries of the address-sorted prefix column, chosen so
// the shards carry near-equal span counts; k is clamped to the number
// of distinct prefixes (and to 1 on an empty index), so every shard
// owns at least one prefix. Each shard's Frozen carries:
//
//   - the full global peer table (shared, not copied), so per-shard
//     peer ids and VisibleFraction denominators match the unsharded
//     index exactly;
//   - the shard's prefix sub-column (a subslice of the sorted column);
//   - only the AS paths its spans reference, renumbered dense in
//     ascending original-PathID order — for k == 1 that remap is the
//     identity, so the single shard is the unsharded Frozen;
//   - span and event columns rebased to shard-local offsets.
//
// The shards jointly answer every query byte-identically to the
// unsharded index (see Sharded); reassembling one shard via FromFrozen
// yields a closed index over just that prefix range.
func (ix *Index) FrozenShards(k, workers int) ([]*Frozen, error) {
	if !ix.closed || !ix.built {
		return nil, fmt.Errorf("rib: FrozenShards requires a closed index")
	}
	n := len(ix.sorted)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		f, err := ix.Frozen()
		if err != nil {
			return nil, err
		}
		return []*Frozen{f}, nil
	}

	// Cut before the first prefix whose cumulative span count reaches
	// j/k of the total, keeping every shard non-empty. Span count, not
	// prefix count, is the balance target: build and query cost scale
	// with spans, and a handful of heavy prefixes would otherwise land
	// in one shard.
	cuts := make([]int, k+1)
	cuts[k] = n
	total := len(ix.col)
	for j := 1; j < k; j++ {
		t := uint32(uint64(total) * uint64(j) / uint64(k))
		sid := sort.Search(n, func(i int) bool { return ix.spanOff[i] >= t })
		if lo := cuts[j-1] + 1; sid < lo {
			sid = lo
		}
		if hi := n - (k - j); sid > hi {
			sid = hi
		}
		cuts[j] = sid
	}

	out := make([]*Frozen, k)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= k {
					return
				}
				out[j] = ix.shardFrozen(cuts[j], cuts[j+1])
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// shardFrozen builds the flat form of the prefix-rank range [lo, hi).
func (ix *Index) shardFrozen(lo, hi int) *Frozen {
	colLo, colHi := ix.spanOff[lo], ix.spanOff[hi]
	shardCol := ix.col[colLo:colHi]

	// Renumber the shard's referenced paths dense, in ascending original
	// id order — deterministic whatever the span order, and the identity
	// when the shard references every path.
	remap := make([]int32, ix.paths.Len())
	for _, s := range shardCol {
		remap[s.Path] = 1
	}
	var paths []bgp.ASPath
	for id := range remap {
		if remap[id] != 0 {
			remap[id] = int32(len(paths)) + 1
			paths = append(paths, ix.paths.Path(bgp.PathID(id)))
		}
	}

	col := make([]Span, len(shardCol))
	for i, s := range shardCol {
		s.Prefix -= uint32(lo)
		s.Path = bgp.PathID(remap[s.Path] - 1)
		col[i] = s
	}
	spanOff := make([]uint32, hi-lo+1)
	for i := range spanOff {
		spanOff[i] = ix.spanOff[lo+i] - colLo
	}
	evLo, evHi := ix.evOff[lo], ix.evOff[hi]
	evOff := make([]uint32, hi-lo+1)
	for i := range evOff {
		evOff[i] = ix.evOff[lo+i] - evLo
	}
	return &Frozen{
		Peers:    ix.peers,
		Prefixes: ix.sorted[lo:hi],
		Paths:    paths,
		Col:      col,
		SpanOff:  spanOff,
		EvDay:    ix.evDay[evLo:evHi],
		EvCount:  ix.evCount[evLo:evHi],
		EvOff:    evOff,
		MaxDay:   ix.maxDay,
	}
}

// Sharded is the fan-out Querier over prefix-range shards. Point
// queries route to the single owning shard through the in-memory
// boundary table — one branch-free binary search, no allocation — and
// aggregate queries fan out across shards on a bounded worker pool,
// merging per-shard results in shard (address) order so every answer
// is byte-identical to the unsharded index the shards were cut from.
//
// A shard whose AcquireIndex fails (marked bad after a scrub finding,
// or its set closed) contributes nothing: point queries against its
// range answer "not observed" and aggregates skip it, so a degraded
// shard degrades only its own prefix range.
type Sharded struct {
	shards []ShardHandle
	// bounds[i] is the first (address-ordered) prefix owned by shard i;
	// shard 0 additionally owns everything below bounds[0].
	bounds  []netx.Prefix
	counts  []int // per-shard distinct prefix counts
	total   int
	peers   []PeerRef
	workers int
}

// NewSharded assembles a fan-out querier over handles. bounds[i] must
// be the first prefix of shard i and counts[i] its distinct prefix
// count, both in ascending shard order; peers is the global peer table
// every shard was built against. workers bounds aggregate fan-out
// concurrency (<= 0 means runtime.GOMAXPROCS(0)).
func NewSharded(handles []ShardHandle, bounds []netx.Prefix, counts []int, peers []PeerRef, workers int) (*Sharded, error) {
	if len(handles) == 0 {
		return nil, fmt.Errorf("rib: sharded index needs at least one shard")
	}
	if len(bounds) != len(handles) || len(counts) != len(handles) {
		return nil, fmt.Errorf("rib: sharded index has %d shards but %d bounds, %d counts",
			len(handles), len(bounds), len(counts))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1].Compare(bounds[i]) >= 0 {
			return nil, fmt.Errorf("rib: shard bounds out of order at %d (%s >= %s)",
				i, bounds[i-1], bounds[i])
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return &Sharded{
		shards:  handles,
		bounds:  bounds,
		counts:  counts,
		total:   total,
		peers:   peers,
		workers: workers,
	}, nil
}

// ShardedFromFrozen reassembles FrozenShards output into a resident
// in-memory sharded querier — the disk-free path the facade uses to
// prove sharded/unsharded byte-identity at study level.
func ShardedFromFrozen(fs []*Frozen, workers int) (*Sharded, error) {
	handles := make([]ShardHandle, len(fs))
	bounds := make([]netx.Prefix, len(fs))
	counts := make([]int, len(fs))
	var peers []PeerRef
	for i, f := range fs {
		ix, err := FromFrozen(f)
		if err != nil {
			return nil, fmt.Errorf("rib: shard %d: %w", i, err)
		}
		handles[i] = MemShard{Index: ix}
		if len(f.Prefixes) > 0 {
			bounds[i] = f.Prefixes[0]
		}
		counts[i] = len(f.Prefixes)
		if i == 0 {
			peers = f.Peers
		}
	}
	return NewSharded(handles, bounds, counts, peers, workers)
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Bounds returns the boundary table: the first prefix of each shard.
// Callers must not mutate it.
func (s *Sharded) Bounds() []netx.Prefix { return s.bounds }

// shardFor returns the owning shard of p: the largest i with
// bounds[i] <= p, or 0 when p sorts before every bound (that range
// holds no prefixes, so shard 0 correctly answers "not observed").
func (s *Sharded) shardFor(p netx.Prefix) int {
	lo, hi := 0, len(s.bounds)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if s.bounds[m].Compare(p) <= 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// ShardFor reports which shard owns p — the route a point query on p
// takes. Exported for observability and tests; queries go through the
// Querier methods.
func (s *Sharded) ShardFor(p netx.Prefix) int { return s.shardFor(p) }

// at pins shard i, reporting failure as absence.
func (s *Sharded) at(i int) (*Index, ShardRelease, bool) {
	ix, rel, err := s.shards[i].AcquireIndex()
	if err != nil {
		return nil, nil, false
	}
	return ix, rel, true
}

// Peers returns the global peer table.
func (s *Sharded) Peers() []PeerRef { return s.peers }

// NumPeers returns the number of registered peers.
func (s *Sharded) NumPeers() int { return len(s.peers) }

// NumPrefixes returns the number of distinct prefixes across shards.
func (s *Sharded) NumPrefixes() int { return s.total }

// VisibleCount routes to the owning shard. Allocation-free on a
// resident shard: the boundary search, the handle pin, and the shard's
// own two binary searches allocate nothing.
func (s *Sharded) VisibleCount(p netx.Prefix, d timex.Day) int {
	ix, rel, ok := s.at(s.shardFor(p))
	if !ok {
		return 0
	}
	n := ix.VisibleCount(p, d)
	rel.Release()
	return n
}

// VisibleFraction routes to the owning shard, whose full peer table
// supplies the global denominator.
func (s *Sharded) VisibleFraction(p netx.Prefix, d timex.Day) float64 {
	ix, rel, ok := s.at(s.shardFor(p))
	if !ok {
		return 0
	}
	f := ix.VisibleFraction(p, d)
	rel.Release()
	return f
}

// Observed routes to the owning shard.
func (s *Sharded) Observed(p netx.Prefix, d timex.Day) bool {
	return s.VisibleCount(p, d) > 0
}

// PeerObserved routes to the owning shard.
func (s *Sharded) PeerObserved(ref PeerRef, p netx.Prefix, d timex.Day) bool {
	ix, rel, ok := s.at(s.shardFor(p))
	if !ok {
		return false
	}
	v := ix.PeerObserved(ref, p, d)
	rel.Release()
	return v
}

// PeersObserving routes to the owning shard.
func (s *Sharded) PeersObserving(p netx.Prefix, d timex.Day) []PeerRef {
	ix, rel, ok := s.at(s.shardFor(p))
	if !ok {
		return nil
	}
	out := ix.PeersObserving(p, d)
	rel.Release()
	return out
}

// OriginAt routes to the owning shard.
func (s *Sharded) OriginAt(p netx.Prefix, d timex.Day) (bgp.ASN, bool) {
	ix, rel, ok := s.at(s.shardFor(p))
	if !ok {
		return 0, false
	}
	asn, found := ix.OriginAt(p, d)
	rel.Release()
	return asn, found
}

// PathAt routes to the owning shard.
func (s *Sharded) PathAt(p netx.Prefix, d timex.Day) (bgp.ASPath, bool) {
	ix, rel, ok := s.at(s.shardFor(p))
	if !ok {
		return nil, false
	}
	path, found := ix.PathAt(p, d)
	rel.Release()
	return path, found
}

// OriginTimeline routes to the owning shard.
func (s *Sharded) OriginTimeline(p netx.Prefix) []OriginSpan {
	ix, rel, ok := s.at(s.shardFor(p))
	if !ok {
		return nil
	}
	out := ix.OriginTimeline(p)
	rel.Release()
	return out
}

// FirstObserved routes to the owning shard.
func (s *Sharded) FirstObserved(p netx.Prefix) (timex.Day, bool) {
	ix, rel, ok := s.at(s.shardFor(p))
	if !ok {
		return 0, false
	}
	day, found := ix.FirstObserved(p)
	rel.Release()
	return day, found
}

// AnyOverlapObserved probes every shard that can hold a prefix
// overlapping p. A covering prefix q = p.Addr()/b lives in exactly one
// shard — the owner of q — and the owners are non-decreasing in b, so
// consecutive duplicate probes collapse; prefixes covered by p occupy
// the contiguous shard range from p's owner through the owner of
// p.LastAddr()/32. Each probed shard runs its own covering-probe +
// covered-run scan, which is correct restricted to the shard's range:
// the union over the probe set equals the unsharded answer.
func (s *Sharded) AnyOverlapObserved(p netx.Prefix, d timex.Day) bool {
	last := -1
	for b := 0; b <= p.Bits(); b++ {
		i := s.shardFor(netx.PrefixFrom(p.Addr(), b))
		if i == last {
			continue
		}
		last = i
		if s.overlapIn(i, p, d) {
			return true
		}
	}
	// last is now p's owning shard: the start of the covered range.
	hi := s.shardFor(netx.PrefixFrom(p.LastAddr(), 32))
	for i := last + 1; i <= hi; i++ {
		if s.overlapIn(i, p, d) {
			return true
		}
	}
	return false
}

func (s *Sharded) overlapIn(i int, p netx.Prefix, d timex.Day) bool {
	ix, rel, ok := s.at(i)
	if !ok {
		return false
	}
	v := ix.AnyOverlapObserved(p, d)
	rel.Release()
	return v
}

// fanOut runs fn over every acquirable shard on the bounded pool; fn
// must only write state owned by its shard slot.
func (s *Sharded) fanOut(fn func(i int, ix *Index)) {
	one := func(i int) {
		if ix, rel, ok := s.at(i); ok {
			fn(i, ix)
			rel.Release()
		}
	}
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		for i := range s.shards {
			one(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				one(i)
			}
		}()
	}
	wg.Wait()
}

// RoutedSpace fans out: each shard contributes its qualifying prefixes
// and the union set is assembled in shard order. Set membership — and
// therefore every derived aggregate — is identical to the unsharded
// scan; the trie's structure depends only on membership.
func (s *Sharded) RoutedSpace(d timex.Day, minPeers int) *netx.Set {
	parts := make([][]netx.Prefix, len(s.shards))
	s.fanOut(func(i int, ix *Index) {
		var ps []netx.Prefix
		for sid := range ix.sorted {
			if int(ix.eventCount(uint32(sid), d)) >= minPeers {
				ps = append(ps, ix.sorted[sid])
			}
		}
		parts[i] = ps
	})
	var set netx.Set
	for _, ps := range parts {
		for _, p := range ps {
			set.Add(p)
		}
	}
	return &set
}

// MOASConflicts fans out and concatenates: shards hold disjoint
// ascending prefix ranges and each shard's result is address-sorted,
// so the concatenation is globally address-sorted.
func (s *Sharded) MOASConflicts(d timex.Day) []MOAS {
	parts := make([][]MOAS, len(s.shards))
	s.fanOut(func(i int, ix *Index) { parts[i] = ix.MOASConflicts(d) })
	var out []MOAS
	for _, ms := range parts {
		out = append(out, ms...)
	}
	return out
}

// ByOrigin fans out and merges per-origin activity. Per-shard prefix
// lists are sorted and deduplicated over disjoint ascending ranges, so
// concatenating them in shard order reproduces the globally sorted,
// deduplicated list; day sums are order-independent.
func (s *Sharded) ByOrigin() map[bgp.ASN]*OriginActivity {
	parts := make([]map[bgp.ASN]*OriginActivity, len(s.shards))
	s.fanOut(func(i int, ix *Index) { parts[i] = ix.ByOrigin() })
	out := make(map[bgp.ASN]*OriginActivity)
	for _, part := range parts {
		for asn, act := range part {
			g := out[asn]
			if g == nil {
				out[asn] = &OriginActivity{
					Origin:         asn,
					Prefixes:       act.Prefixes,
					OriginatedDays: act.OriginatedDays,
				}
				continue
			}
			g.Prefixes = append(g.Prefixes, act.Prefixes...)
			g.OriginatedDays += act.OriginatedDays
		}
	}
	return out
}

// Prefixes concatenates the shards' address-sorted prefix columns.
func (s *Sharded) Prefixes() []netx.Prefix {
	out := make([]netx.Prefix, 0, s.total)
	for i := range s.shards {
		ix, rel, ok := s.at(i)
		if !ok {
			continue
		}
		out = append(out, ix.sorted...)
		rel.Release()
	}
	return out
}
