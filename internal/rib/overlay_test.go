package rib

import (
	"sort"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// stream is one collector's records split at the append boundary.
type stream struct {
	collector string
	base      []mrt.Record
	suffix    []mrt.Record
}

func coldFrozen(t *testing.T, streams []stream, full bool, end timex.Day) *Frozen {
	t.Helper()
	sorted := append([]stream(nil), streams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].collector < sorted[j].collector })
	ix := NewIndex()
	for _, s := range sorted {
		recs := append([]mrt.Record(nil), s.base...)
		if full {
			recs = append(recs, s.suffix...)
		}
		if len(recs) == 0 {
			continue
		}
		if err := ix.Load(s.collector, recs); err != nil {
			t.Fatalf("cold load %s: %v", s.collector, err)
		}
	}
	ix.Close(end)
	f, err := ix.Frozen()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func deltaFrozen(t *testing.T, streams []stream, baseEnd, newEnd timex.Day) *Frozen {
	t.Helper()
	base := coldFrozen(t, streams, false, baseEnd)
	db, err := NewDeltaBase(base, baseEnd)
	if err != nil {
		t.Fatalf("NewDeltaBase: %v", err)
	}
	sorted := append([]stream(nil), streams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].collector < sorted[j].collector })
	var overlays []*Overlay
	for _, s := range sorted {
		if len(s.suffix) == 0 {
			continue
		}
		ov := db.NewOverlay(s.collector)
		for _, rec := range s.suffix {
			if err := ov.Apply(rec); err != nil {
				t.Fatalf("overlay %s: %v", s.collector, err)
			}
		}
		overlays = append(overlays, ov)
	}
	merged, err := MergeFrozen(db, overlays, newEnd)
	if err != nil {
		t.Fatalf("MergeFrozen: %v", err)
	}
	return merged
}

// requireEquivalent asserts merged reproduces cold exactly, except that
// path ids — opaque handles — are compared by resolved content.
func requireEquivalent(t *testing.T, cold, merged *Frozen) {
	t.Helper()
	if len(merged.Peers) != len(cold.Peers) {
		t.Fatalf("peers: got %d, want %d", len(merged.Peers), len(cold.Peers))
	}
	for i := range cold.Peers {
		if merged.Peers[i] != cold.Peers[i] {
			t.Fatalf("peer %d: got %+v, want %+v", i, merged.Peers[i], cold.Peers[i])
		}
	}
	if len(merged.Prefixes) != len(cold.Prefixes) {
		t.Fatalf("prefixes: got %d, want %d", len(merged.Prefixes), len(cold.Prefixes))
	}
	for i := range cold.Prefixes {
		if merged.Prefixes[i] != cold.Prefixes[i] {
			t.Fatalf("prefix %d: got %v, want %v", i, merged.Prefixes[i], cold.Prefixes[i])
		}
	}
	if len(merged.Col) != len(cold.Col) {
		t.Fatalf("spans: got %d, want %d", len(merged.Col), len(cold.Col))
	}
	for i := range cold.Col {
		c, m := cold.Col[i], merged.Col[i]
		if m.Prefix != c.Prefix || m.Peer != c.Peer || m.From != c.From || m.To != c.To {
			t.Fatalf("span %d: got %+v, want %+v", i, m, c)
		}
		if !bgp.PathEqual(merged.Paths[m.Path], cold.Paths[c.Path]) {
			t.Fatalf("span %d path: got %v, want %v", i, merged.Paths[m.Path], cold.Paths[c.Path])
		}
	}
	for name, pair := range map[string][2][]uint32{
		"SpanOff": {cold.SpanOff, merged.SpanOff},
		"EvOff":   {cold.EvOff, merged.EvOff},
	} {
		if len(pair[1]) != len(pair[0]) {
			t.Fatalf("%s: got %d entries, want %d", name, len(pair[1]), len(pair[0]))
		}
		for i := range pair[0] {
			if pair[1][i] != pair[0][i] {
				t.Fatalf("%s[%d]: got %d, want %d", name, i, pair[1][i], pair[0][i])
			}
		}
	}
	if len(merged.EvDay) != len(cold.EvDay) {
		t.Fatalf("events: got %d, want %d", len(merged.EvDay), len(cold.EvDay))
	}
	for i := range cold.EvDay {
		if merged.EvDay[i] != cold.EvDay[i] || merged.EvCount[i] != cold.EvCount[i] {
			t.Fatalf("event %d: got (%d,%d), want (%d,%d)", i,
				merged.EvDay[i], merged.EvCount[i], cold.EvDay[i], cold.EvCount[i])
		}
	}
	if merged.MaxDay != cold.MaxDay {
		t.Fatalf("MaxDay: got %d, want %d", merged.MaxDay, cold.MaxDay)
	}
}

func peerAt(n byte) netx.Addr { return netx.AddrFrom4(203, 0, 113, n) }

func announceFrom(d timex.Day, addr netx.Addr, as bgp.ASN, path bgp.ASPath, ps ...netx.Prefix) *mrt.BGP4MPMessage {
	return &mrt.BGP4MPMessage{
		When: at(d), PeerAS: as, PeerAddr: addr, LocalAS: 6447,
		Update: &bgp.Update{
			Attrs: bgp.Attrs{Origin: bgp.OriginIGP, Path: path, NextHop: addr, HasNextHop: true},
			NLRI:  ps,
		},
	}
}

func withdrawFrom(d timex.Day, addr netx.Addr, as bgp.ASN, ps ...netx.Prefix) *mrt.BGP4MPMessage {
	return &mrt.BGP4MPMessage{
		When: at(d), PeerAS: as, PeerAddr: addr, LocalAS: 6447,
		Update: &bgp.Update{Withdrawn: ps},
	}
}

// deltaScenario exercises every splice case at once: same-path
// continuation across the boundary, path change (implicit withdraw) of
// a base-open span, explicit withdraw of a base-open span, suffix flap
// of a new prefix, a brand-new peer, a brand-new prefix, a suffix-only
// new collector sorting before the base ones, a withdraw of a prefix
// nobody announced, and a collector with no appended records at all.
func deltaScenario() (streams []stream, baseEnd, newEnd timex.Day) {
	var (
		pfxA = netx.MustParsePrefix("10.0.0.0/8")
		pfxB = netx.MustParsePrefix("172.16.0.0/12")
		pfxC = netx.MustParsePrefix("192.0.2.0/24")
		pfxD = netx.MustParsePrefix("198.51.100.0/24")
		pfxE = netx.MustParsePrefix("8.0.0.0/8") // sorts before every base prefix
		pfxF = netx.MustParsePrefix("203.0.113.0/24")

		pathX = bgp.Sequence(64500, 100)
		pathY = bgp.Sequence(64501, 100)
		pathZ = bgp.Sequence(64500, 200, 300)
	)
	baseEnd = day0 + 9
	newEnd = day0 + 12
	rv1 := stream{
		collector: "rv1",
		base: []mrt.Record{
			announceFrom(day0, peerAt(1), 64500, pathX, pfxA, pfxB),
			announceFrom(day0+1, peerAt(2), 64501, pathY, pfxA),
			withdrawFrom(day0+3, peerAt(2), 64501, pfxA),
			announceFrom(day0+4, peerAt(2), 64501, pathY, pfxD),
		},
		suffix: []mrt.Record{
			// Same path re-announced: the base-open span must continue.
			announceFrom(day0+10, peerAt(1), 64500, pathX, pfxA),
			// Path change: base-open pfxB span implicitly withdraws.
			announceFrom(day0+11, peerAt(1), 64500, pathZ, pfxB),
			// Explicit withdraw of a base-open span.
			withdrawFrom(day0+11, peerAt(2), 64501, pfxD),
			// New peer announcing an existing and a new prefix.
			announceFrom(day0+10, peerAt(3), 64502, pathY, pfxA, pfxC),
			// Suffix flap: open, close, reopen within the overlay.
			announceFrom(day0+10, peerAt(1), 64500, pathX, pfxE),
			withdrawFrom(day0+11, peerAt(1), 64500, pfxE),
			announceFrom(day0+12, peerAt(1), 64500, pathZ, pfxE),
			// Withdraw of a prefix nobody ever announced: the prefix
			// still joins the dictionary with an empty bucket.
			withdrawFrom(day0+12, peerAt(1), 64500, pfxF),
			// After the same-path no-op above, a path change must still
			// find and close the base-open pfxA span.
			announceFrom(day0+12, peerAt(1), 64500, pathZ, pfxA),
		},
	}
	rv2 := stream{
		collector: "rv2",
		base: []mrt.Record{
			&mrt.PeerIndexTable{
				When: at(day0), CollectorID: netx.AddrFrom4(198, 51, 100, 2), ViewName: "rv2",
				Peers: []mrt.Peer{
					{Addr: peerAt(10), AS: 65010},
					{Addr: peerAt(11), AS: 65011},
				},
			},
			&mrt.RIBPrefix{
				When: at(day0), Prefix: pfxA,
				Entries: []mrt.RIBEntry{
					{PeerIndex: 0, Attrs: bgp.Attrs{Path: bgp.Sequence(65010, 100)}},
					{PeerIndex: 1, Attrs: bgp.Attrs{Path: bgp.Sequence(65011, 100)}},
				},
			},
			announceFrom(day0+2, peerAt(10), 65010, bgp.Sequence(65010, 400), pfxC),
		},
		suffix: []mrt.Record{
			// A day-N+1 RIB dump appended to the stream: its peer table
			// re-declares one base peer and introduces a new one.
			&mrt.PeerIndexTable{
				When: at(day0 + 10), CollectorID: netx.AddrFrom4(198, 51, 100, 2), ViewName: "rv2",
				Peers: []mrt.Peer{
					{Addr: peerAt(10), AS: 65010},
					{Addr: peerAt(12), AS: 65012},
				},
			},
			&mrt.RIBPrefix{
				When: at(day0 + 10), Prefix: pfxA,
				Entries: []mrt.RIBEntry{
					// Same path as the base-open span: continues.
					{PeerIndex: 0, Attrs: bgp.Attrs{Path: bgp.Sequence(65010, 100)}},
					// New peer seeds a fresh span.
					{PeerIndex: 1, Attrs: bgp.Attrs{Path: bgp.Sequence(65012, 100)}},
				},
			},
			withdrawFrom(day0+12, peerAt(10), 65010, pfxC),
		},
	}
	// Sorts before rv1/rv2 and exists only in the suffix: the merged
	// peer table must place its peers first.
	rv0 := stream{
		collector: "rv0",
		suffix: []mrt.Record{
			announceFrom(day0+10, peerAt(20), 65020, bgp.Sequence(65020, 100), pfxA, pfxE),
		},
	}
	// A collector with base records and no appended data.
	rv3 := stream{
		collector: "rv3",
		base: []mrt.Record{
			announceFrom(day0+1, peerAt(30), 65030, bgp.Sequence(65030, 100), pfxB),
		},
	}
	return []stream{rv1, rv2, rv0, rv3}, baseEnd, newEnd
}

func TestDeltaMergeMatchesCold(t *testing.T) {
	streams, baseEnd, newEnd := deltaScenario()
	cold := coldFrozen(t, streams, true, newEnd)
	merged := deltaFrozen(t, streams, baseEnd, newEnd)
	requireEquivalent(t, cold, merged)
}

// TestDeltaMergeEmptySuffix checks the degenerate append: no overlays
// at all, only the window end moving forward.
func TestDeltaMergeEmptySuffix(t *testing.T) {
	streams, baseEnd, newEnd := deltaScenario()
	for i := range streams {
		streams[i].suffix = nil
	}
	cold := coldFrozen(t, streams, true, newEnd)
	merged := deltaFrozen(t, streams, baseEnd, newEnd)
	requireEquivalent(t, cold, merged)
}

// TestDeltaSamePathDoesNotConsumeBaseOpen pins the subtle case: a
// same-path re-announcement is a no-op, but a later withdraw must still
// close the base-open span.
func TestDeltaSamePathDoesNotConsumeBaseOpen(t *testing.T) {
	path := bgp.Sequence(64500, 100)
	streams := []stream{{
		collector: "rv1",
		base: []mrt.Record{
			announceFrom(day0, peerAt(1), 64500, path, pfx),
		},
		suffix: []mrt.Record{
			announceFrom(day0+10, peerAt(1), 64500, path, pfx),
			withdrawFrom(day0+11, peerAt(1), 64500, pfx),
		},
	}}
	cold := coldFrozen(t, streams, true, day0+12)
	merged := deltaFrozen(t, streams, day0+9, day0+12)
	requireEquivalent(t, cold, merged)
}

func TestDeltaShardedConcatRoundTrip(t *testing.T) {
	streams, baseEnd, newEnd := deltaScenario()
	base := coldFrozen(t, streams, false, baseEnd)
	ix, err := FromFrozen(base)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ix.FrozenShards(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) < 2 {
		t.Fatalf("FrozenShards produced %d shards, want >= 2", len(shards))
	}
	concat, err := ConcatFrozen(shards)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, base, concat)

	// The concatenated base must support the full delta path.
	db, err := NewDeltaBase(concat, baseEnd)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]stream(nil), streams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].collector < sorted[j].collector })
	var overlays []*Overlay
	for _, s := range sorted {
		if len(s.suffix) == 0 {
			continue
		}
		ov := db.NewOverlay(s.collector)
		for _, rec := range s.suffix {
			if err := ov.Apply(rec); err != nil {
				t.Fatal(err)
			}
		}
		overlays = append(overlays, ov)
	}
	merged, err := MergeFrozen(db, overlays, newEnd)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, coldFrozen(t, streams, true, newEnd), merged)
}

// TestDeltaBeyondCloseDayMatchesCold pins the closeMarker scheme:
// archives legitimately carry records dated past the close day, and
// with a naive end+1 open marker a genuine withdrawal on day end+1
// would be indistinguishable from an open span. closeMarker stamps
// open spans max(end, maxDay)+1 instead, so recovery stays unambiguous
// and the delta path must still match a cold rebuild byte-for-byte.
func TestDeltaBeyondCloseDayMatchesCold(t *testing.T) {
	baseEnd, newEnd := day0+10, day0+30
	streams := []stream{{
		collector: "rv1",
		base: []mrt.Record{
			announceFrom(day0, peerAt(1), 64500, bgp.Sequence(64500, 100), pfx),
			// Genuine close on exactly baseEnd+1 — the naive marker
			// value — plus a span that stays open through the window.
			withdrawFrom(baseEnd+1, peerAt(1), 64500, pfx),
			announceFrom(day0+2, peerAt(2), 64501, bgp.Sequence(64501, 200), pfx),
		},
		suffix: []mrt.Record{
			announceFrom(baseEnd+3, peerAt(1), 64500, bgp.Sequence(64500, 300), pfx),
			withdrawFrom(newEnd+1, peerAt(2), 64501, pfx),
		},
	}}
	cold := coldFrozen(t, streams, true, newEnd)
	merged := deltaFrozen(t, streams, baseEnd, newEnd)
	requireEquivalent(t, cold, merged)
}

func TestDeltaOverlayErrors(t *testing.T) {
	streams, baseEnd, _ := deltaScenario()
	base := coldFrozen(t, streams, false, baseEnd)
	db, err := NewDeltaBase(base, baseEnd)
	if err != nil {
		t.Fatal(err)
	}
	ov := db.NewOverlay("rv9")
	if err := ov.Apply(&mrt.RIBPrefix{When: at(baseEnd + 1), Prefix: pfx}); err == nil {
		t.Fatal("RIBPrefix before a suffix peer table should fail the overlay")
	}

	// Overlays out of collector order.
	a, b := db.NewOverlay("rv2"), db.NewOverlay("rv1")
	if _, err := MergeFrozen(db, []*Overlay{a, b}, baseEnd+1); err == nil {
		t.Fatal("unsorted overlays should fail the merge")
	}
	// Window moving backwards.
	if _, err := MergeFrozen(db, nil, baseEnd-1); err == nil {
		t.Fatal("merge close day before base close day should fail")
	}
	// Overlay from a different base.
	other, err := NewDeltaBase(base, baseEnd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFrozen(db, []*Overlay{other.NewOverlay("rv1")}, baseEnd+1); err == nil {
		t.Fatal("foreign overlay should fail the merge")
	}
}
