package rib

import (
	"testing"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

var (
	day0 = timex.MustParseDay("2019-06-05")
	pfx  = netx.MustParsePrefix("192.0.2.0/24")
)

func at(d timex.Day) time.Time { return d.Time() }

func peerTable() *mrt.PeerIndexTable {
	return &mrt.PeerIndexTable{
		When:        at(day0),
		CollectorID: netx.AddrFrom4(198, 51, 100, 1),
		ViewName:    "test",
		Peers: []mrt.Peer{
			{Addr: netx.AddrFrom4(203, 0, 113, 1), AS: 64500},
			{Addr: netx.AddrFrom4(203, 0, 113, 2), AS: 64501},
		},
	}
}

func announce(d timex.Day, peerIdx int, path bgp.ASPath, ps ...netx.Prefix) *mrt.BGP4MPMessage {
	peers := peerTable().Peers
	return &mrt.BGP4MPMessage{
		When:     at(d),
		PeerAS:   peers[peerIdx].AS,
		PeerAddr: peers[peerIdx].Addr,
		LocalAS:  6447,
		Update: &bgp.Update{
			Attrs: bgp.Attrs{Origin: bgp.OriginIGP, Path: path,
				NextHop: peers[peerIdx].Addr, HasNextHop: true},
			NLRI: ps,
		},
	}
}

func withdraw(d timex.Day, peerIdx int, ps ...netx.Prefix) *mrt.BGP4MPMessage {
	peers := peerTable().Peers
	return &mrt.BGP4MPMessage{
		When:     at(d),
		PeerAS:   peers[peerIdx].AS,
		PeerAddr: peers[peerIdx].Addr,
		LocalAS:  6447,
		Update:   &bgp.Update{Withdrawn: ps},
	}
}

func TestVisibilityLifecycle(t *testing.T) {
	ix := NewIndex()
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), pfx),
		announce(day0+2, 1, bgp.Sequence(64501, 100), pfx),
		withdraw(day0+10, 0, pfx),
		withdraw(day0+20, 1, pfx),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 100)

	cases := []struct {
		d    timex.Day
		want float64
	}{
		{day0 - 1, 0},
		{day0, 0.5},
		{day0 + 2, 1.0},
		{day0 + 9, 1.0},
		{day0 + 10, 0.5},
		{day0 + 19, 0.5},
		{day0 + 20, 0},
		{day0 + 50, 0},
	}
	for _, c := range cases {
		if got := ix.VisibleFraction(pfx, c.d); got != c.want {
			t.Errorf("VisibleFraction(day0+%d) = %v, want %v", c.d-day0, got, c.want)
		}
	}
	if !ix.Observed(pfx, day0) || ix.Observed(pfx, day0+30) {
		t.Error("Observed transitions wrong")
	}
	if first, ok := ix.FirstObserved(pfx); !ok || first != day0 {
		t.Errorf("FirstObserved = %v,%v", first, ok)
	}
}

func TestRIBDumpSeedsRoutes(t *testing.T) {
	ix := NewIndex()
	dump := &mrt.RIBPrefix{
		When:   at(day0),
		Prefix: pfx,
		Entries: []mrt.RIBEntry{
			{PeerIndex: 0, OriginatedTime: at(day0 - 30), Attrs: bgp.Attrs{Path: bgp.Sequence(64500, 777)}},
			{PeerIndex: 1, OriginatedTime: at(day0 - 30), Attrs: bgp.Attrs{Path: bgp.Sequence(64501, 777)}},
		},
	}
	if err := ix.Load("rv1", []mrt.Record{peerTable(), dump}); err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)
	if got := ix.VisibleFraction(pfx, day0+5); got != 1.0 {
		t.Errorf("VisibleFraction = %v", got)
	}
	if o, ok := ix.OriginAt(pfx, day0+5); !ok || o != 777 {
		t.Errorf("OriginAt = %v,%v", o, ok)
	}
}

func TestRIBBeforePeerIndexFails(t *testing.T) {
	ix := NewIndex()
	dump := &mrt.RIBPrefix{When: at(day0), Prefix: pfx,
		Entries: []mrt.RIBEntry{{PeerIndex: 0}}}
	if err := ix.Load("rv1", []mrt.Record{dump}); err == nil {
		t.Error("RIB before peer index should fail")
	}
}

func TestPeerIndexOutOfRange(t *testing.T) {
	ix := NewIndex()
	dump := &mrt.RIBPrefix{When: at(day0), Prefix: pfx,
		Entries: []mrt.RIBEntry{{PeerIndex: 9}}}
	if err := ix.Load("rv1", []mrt.Record{peerTable(), dump}); err == nil {
		t.Error("out-of-range peer index should fail")
	}
}

func TestOriginChange(t *testing.T) {
	ix := NewIndex()
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 21575, 263692), pfx),
		// Same peer, new path through a different transit, same origin:
		announce(day0+100, 0, bgp.Sequence(64500, 50509, 263692), pfx),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 200)

	if o, _ := ix.OriginAt(pfx, day0+50); o != 263692 {
		t.Errorf("origin at +50 = %v", o)
	}
	if o, _ := ix.OriginAt(pfx, day0+150); o != 263692 {
		t.Errorf("origin at +150 = %v", o)
	}
	tl := ix.OriginTimeline(pfx)
	if len(tl) != 2 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl[0].Transit != 21575 || tl[1].Transit != 50509 {
		t.Errorf("transits = %v, %v", tl[0].Transit, tl[1].Transit)
	}
	if tl[0].To != day0+100 || tl[1].From != day0+100 {
		t.Errorf("span boundary: %+v", tl)
	}
}

func TestOriginTimelineMergesPeers(t *testing.T) {
	ix := NewIndex()
	path := bgp.Sequence(64500, 3356, 15169)
	path2 := bgp.Sequence(64501, 3356, 15169)
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, path, pfx),
		announce(day0+1, 1, path2, pfx),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)
	tl := ix.OriginTimeline(pfx)
	if len(tl) != 1 {
		t.Fatalf("same origin+transit from two peers should merge: %+v", tl)
	}
	if tl[0].Origin != 15169 || tl[0].Transit != 3356 {
		t.Errorf("merged span = %+v", tl[0])
	}
}

func TestReannouncementSamePathIsIdempotent(t *testing.T) {
	ix := NewIndex()
	path := bgp.Sequence(64500, 100)
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, path, pfx),
		announce(day0+5, 0, path, pfx), // periodic refresh
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)
	if len(ix.OriginTimeline(pfx)) != 1 {
		t.Errorf("refresh should not split spans: %+v", ix.OriginTimeline(pfx))
	}
}

func TestPeerObservedAndFiltering(t *testing.T) {
	other := netx.MustParsePrefix("198.51.100.0/24")
	ix := NewIndex()
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), pfx, other),
		announce(day0, 1, bgp.Sequence(64501, 100), other), // peer 1 filters pfx
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)

	p0 := PeerRef{Collector: "rv1", Addr: netx.AddrFrom4(203, 0, 113, 1), AS: 64500}
	p1 := PeerRef{Collector: "rv1", Addr: netx.AddrFrom4(203, 0, 113, 2), AS: 64501}
	if !ix.PeerObserved(p0, pfx, day0+1) {
		t.Error("peer0 should observe pfx")
	}
	if ix.PeerObserved(p1, pfx, day0+1) {
		t.Error("peer1 should not observe pfx")
	}
	obs := ix.PeersObserving(pfx, day0+1)
	if len(obs) != 1 || obs[0] != p0 {
		t.Errorf("PeersObserving = %v", obs)
	}
}

func TestAnyOverlapObserved(t *testing.T) {
	ix := NewIndex()
	big := netx.MustParsePrefix("10.0.0.0/8")
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), big),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)

	if !ix.AnyOverlapObserved(netx.MustParsePrefix("10.5.0.0/16"), day0+1) {
		t.Error("more specific of announced /8 should count as routed")
	}
	if !ix.AnyOverlapObserved(netx.MustParsePrefix("0.0.0.0/4"), day0+1) {
		t.Error("covering aggregate should count as routed")
	}
	if ix.AnyOverlapObserved(netx.MustParsePrefix("11.0.0.0/8"), day0+1) {
		t.Error("disjoint space should not count as routed")
	}
	if ix.AnyOverlapObserved(netx.MustParsePrefix("10.5.0.0/16"), day0+20) {
		t.Error("routed test after close of span")
	}
}

func TestRoutedSpace(t *testing.T) {
	ix := NewIndex()
	a := netx.MustParsePrefix("10.0.0.0/24")
	b := netx.MustParsePrefix("10.0.1.0/24")
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), a, b),
		announce(day0, 1, bgp.Sequence(64501, 100), a),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)

	all := ix.RoutedSpace(day0+1, 1)
	if all.Len() != 2 {
		t.Errorf("minPeers=1: %v", all.Prefixes())
	}
	strict := ix.RoutedSpace(day0+1, 2)
	if strict.Len() != 1 || !strict.Contains(a) {
		t.Errorf("minPeers=2: %v", strict.Prefixes())
	}
}

func TestMultipleCollectors(t *testing.T) {
	ix := NewIndex()
	if err := ix.Load("rv1", []mrt.Record{peerTable(), announce(day0, 0, bgp.Sequence(64500, 100), pfx)}); err != nil {
		t.Fatal(err)
	}
	// Second collector with a distinct peer.
	pt2 := &mrt.PeerIndexTable{
		When:  at(day0),
		Peers: []mrt.Peer{{Addr: netx.AddrFrom4(203, 0, 113, 9), AS: 65009}},
	}
	ann2 := &mrt.BGP4MPMessage{
		When: at(day0), PeerAS: 65009, PeerAddr: netx.AddrFrom4(203, 0, 113, 9), LocalAS: 6447,
		Update: &bgp.Update{
			Attrs: bgp.Attrs{Path: bgp.Sequence(65009, 100)},
			NLRI:  []netx.Prefix{pfx},
		},
	}
	if err := ix.Load("rv2", []mrt.Record{pt2, ann2}); err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)

	if len(ix.Peers()) != 3 {
		t.Errorf("peers = %v", ix.Peers())
	}
	// Peer 0 of rv1 and the rv2 peer observe; peer 1 of rv1 does not.
	if got := ix.VisibleFraction(pfx, day0+1); got != 2.0/3.0 {
		t.Errorf("fraction across collectors = %v", got)
	}
}

func TestLoadAfterCloseFails(t *testing.T) {
	ix := NewIndex()
	ix.Close(day0)
	if err := ix.Load("rv1", []mrt.Record{peerTable()}); err == nil {
		t.Error("Load after Close should fail")
	}
}

func TestPathAt(t *testing.T) {
	ix := NewIndex()
	path := bgp.Sequence(64500, 50509, 263692)
	if err := ix.Load("rv1", []mrt.Record{peerTable(), announce(day0, 0, path, pfx)}); err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)
	got, ok := ix.PathAt(pfx, day0+1)
	if !ok || !got.Equal(path) {
		t.Errorf("PathAt = %v,%v", got, ok)
	}
	if _, ok := ix.PathAt(pfx, day0+20); ok {
		t.Error("PathAt after withdrawal window")
	}
}

func TestMOASConflicts(t *testing.T) {
	ix := NewIndex()
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), pfx), // origin 100 at peer 0
		announce(day0, 1, bgp.Sequence(64501, 200), pfx), // origin 200 at peer 1
		announce(day0, 0, bgp.Sequence(64500, 300), netx.MustParsePrefix("198.51.100.0/24")),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 10)

	conflicts := ix.MOASConflicts(day0 + 1)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	if conflicts[0].Prefix != pfx || len(conflicts[0].Origins) != 2 {
		t.Errorf("conflict = %+v", conflicts[0])
	}
	if conflicts[0].Origins[0] != 100 || conflicts[0].Origins[1] != 200 {
		t.Errorf("origins unsorted: %v", conflicts[0].Origins)
	}
	if got := ix.MOASConflicts(day0 - 1); len(got) != 0 {
		t.Errorf("conflicts before announcements: %+v", got)
	}
}

func TestByOrigin(t *testing.T) {
	ix := NewIndex()
	other := netx.MustParsePrefix("198.51.100.0/24")
	err := ix.Load("rv1", []mrt.Record{
		peerTable(),
		announce(day0, 0, bgp.Sequence(64500, 100), pfx),
		announce(day0, 0, bgp.Sequence(64500, 100), other),
		announce(day0+5, 1, bgp.Sequence(64501, 100), pfx), // same origin, second peer
		withdraw(day0+10, 0, pfx),
		withdraw(day0+10, 1, pfx),
		withdraw(day0+20, 0, other),
	})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close(day0 + 100)

	acts := ix.ByOrigin()
	act := acts[100]
	if act == nil {
		t.Fatal("no activity for origin 100")
	}
	if len(act.Prefixes) != 2 {
		t.Errorf("prefixes = %v", act.Prefixes)
	}
	if act.OriginatedDays <= 0 {
		t.Errorf("days = %d", act.OriginatedDays)
	}
}
