package rirstats

import (
	"bytes"
	"testing"

	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

var d0 = timex.MustParseDay("2019-06-05")

func TestRangeToPrefixes(t *testing.T) {
	cases := []struct {
		start string
		count uint64
		want  []string
	}{
		{"10.0.0.0", 1 << 24, []string{"10.0.0.0/8"}},
		{"192.0.2.0", 256, []string{"192.0.2.0/24"}},
		{"192.0.2.0", 768, []string{"192.0.2.0/23", "192.0.4.0/24"}},
		{"192.0.2.128", 384, []string{"192.0.2.128/25", "192.0.3.0/24"}},
		{"0.0.0.0", 1 << 32, []string{"0.0.0.0/0"}},
		{"10.0.0.1", 2, []string{"10.0.0.1/32", "10.0.0.2/32"}},
	}
	for _, c := range cases {
		start, err := netx.ParseAddr(c.start)
		if err != nil {
			t.Fatal(err)
		}
		got := RangeToPrefixes(start, c.count)
		if len(got) != len(c.want) {
			t.Errorf("%s+%d = %v, want %v", c.start, c.count, got, c.want)
			continue
		}
		var total uint64
		for i := range got {
			if got[i].String() != c.want[i] {
				t.Errorf("%s+%d [%d] = %v, want %v", c.start, c.count, i, got[i], c.want[i])
			}
			total += got[i].NumAddrs()
		}
		if total != c.count {
			t.Errorf("%s+%d covers %d addrs", c.start, c.count, total)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	recs := []Record{
		{Registry: ARIN, CC: "US", Start: netx.AddrFrom4(23, 0, 0, 0), Count: 1 << 24, Date: d0, Status: Allocated, OpaqueID: "org-1"},
		{Registry: ARIN, CC: "", Start: netx.AddrFrom4(24, 0, 0, 0), Count: 1 << 16, Status: Available},
		{Registry: LACNIC, CC: "PE", Start: netx.AddrFrom4(132, 255, 0, 0), Count: 1024, Date: d0 - 1000, Status: Assigned},
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, ARIN, d0, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // only ARIN records written
		t.Fatalf("parsed %d records: %+v", len(got), got)
	}
	if got[0].Status != Allocated || got[0].Date != d0 || got[0].OpaqueID != "org-1" {
		t.Errorf("rec0 = %+v", got[0])
	}
	if got[1].Status != Available || got[1].Date != 0 {
		t.Errorf("rec1 = %+v", got[1])
	}
}

func TestParseFileErrors(t *testing.T) {
	bad := []string{
		"arin|US|ipv4|23.0.0.0|abc|20190605|allocated|x\n",
		"arin|US|ipv4|badaddr|256|20190605|allocated|x\n",
		"arin|US|ipv4|23.0.0.0|256|2019|allocated|x\n",
		"arin|US|ipv4\n",
		"arin|US|ipv4|23.0.0.0|0|20190605|allocated|x\n",
	}
	for i, s := range bad {
		if _, err := ParseFile(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// IPv6 records are skipped, not an error.
	recs, err := ParseFile(bytes.NewReader([]byte("ripencc|NL|ipv6|2001:db8::|32|20190605|allocated|x\n")))
	if err != nil || len(recs) != 0 {
		t.Errorf("ipv6 skip: %v %v", recs, err)
	}
}

func newTimeline(t *testing.T) *Timeline {
	t.Helper()
	var tl Timeline
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tl.Manage(netx.MustParsePrefix("23.0.0.0/8"), ARIN, Allocated))
	must(tl.Manage(netx.MustParsePrefix("41.0.0.0/8"), Afrinic, Available))
	must(tl.Manage(netx.MustParsePrefix("103.100.0.0/16"), APNIC, Available))
	return &tl
}

func TestTimelineStatusAt(t *testing.T) {
	tl := newTimeline(t)
	if st, rir, ok := tl.StatusAt(netx.MustParsePrefix("23.5.0.0/16"), d0); !ok || st != Allocated || rir != ARIN {
		t.Errorf("StatusAt = %v %v %v", st, rir, ok)
	}
	if _, _, ok := tl.StatusAt(netx.MustParsePrefix("8.0.0.0/8"), d0); ok {
		t.Error("unmanaged space should report not ok")
	}
}

func TestTimelineTransitions(t *testing.T) {
	tl := newTimeline(t)
	p := netx.MustParsePrefix("41.0.0.0/8")
	if err := tl.SetStatus(p, d0+100, Allocated); err != nil {
		t.Fatal(err)
	}
	if err := tl.SetStatus(p, d0+200, Available); err != nil { // deallocated
		t.Fatal(err)
	}
	if tl.AllocatedAt(p, d0+50) {
		t.Error("allocated before transition")
	}
	if !tl.AllocatedAt(p, d0+150) {
		t.Error("not allocated mid-span")
	}
	if tl.AllocatedAt(p, d0+250) {
		t.Error("allocated after deallocation")
	}
	if !tl.UnallocatedAt(p, d0+250) {
		t.Error("UnallocatedAt should mirror AllocatedAt")
	}
	// Unmanaged space is also "unallocated".
	if !tl.UnallocatedAt(netx.MustParsePrefix("8.0.0.0/8"), d0) {
		t.Error("unmanaged space is unallocated")
	}
}

func TestTimelineOutOfOrderChange(t *testing.T) {
	tl := newTimeline(t)
	p := netx.MustParsePrefix("41.0.0.0/8")
	if err := tl.SetStatus(p, d0+100, Allocated); err != nil {
		t.Fatal(err)
	}
	if err := tl.SetStatus(p, d0+50, Available); err == nil {
		t.Error("out-of-order change should fail")
	}
	if err := tl.SetStatus(netx.MustParsePrefix("9.0.0.0/8"), d0, Allocated); err == nil {
		t.Error("unmanaged SetStatus should fail")
	}
	if err := tl.Manage(netx.MustParsePrefix("23.0.0.0/8"), ARIN, Available); err == nil {
		t.Error("double Manage should fail")
	}
}

func TestFreePool(t *testing.T) {
	tl := newTimeline(t)
	if got := tl.FreePool(Afrinic, d0); got != 1<<24 {
		t.Errorf("afrinic pool = %d", got)
	}
	p := netx.MustParsePrefix("41.0.0.0/8")
	if err := tl.SetStatus(p, d0+10, Allocated); err != nil {
		t.Fatal(err)
	}
	if got := tl.FreePool(Afrinic, d0+20); got != 0 {
		t.Errorf("afrinic pool after allocation = %d", got)
	}
	if got := tl.FreePool(APNIC, d0); got != 1<<16 {
		t.Errorf("apnic pool = %d", got)
	}
	if got := tl.FreePool(ARIN, d0); got != 0 {
		t.Errorf("arin pool = %d", got)
	}
}

func TestSpaceWhere(t *testing.T) {
	tl := newTimeline(t)
	avail := tl.SpaceWhere("", d0, func(s Status) bool { return s == Available })
	if got := avail.AddrCount(); got != 1<<24+1<<16 {
		t.Errorf("available space = %d", got)
	}
	arinOnly := tl.SpaceWhere(ARIN, d0, func(s Status) bool { return s == Allocated })
	if got := arinOnly.AddrCount(); got != 1<<24 {
		t.Errorf("arin allocated = %d", got)
	}
}

func TestRecordsAt(t *testing.T) {
	tl := newTimeline(t)
	p := netx.MustParsePrefix("41.0.0.0/8")
	if err := tl.SetStatus(p, d0+10, Allocated); err != nil {
		t.Fatal(err)
	}
	recs := tl.RecordsAt(d0 + 20)
	if len(recs) != 3 {
		t.Fatalf("records = %+v", recs)
	}
	// Ordered by start address: 23/8, 41/8, 103.100/16.
	if recs[0].Registry != ARIN || recs[1].Registry != Afrinic || recs[2].Registry != APNIC {
		t.Errorf("order = %+v", recs)
	}
	if recs[1].Status != Allocated || recs[1].Date != d0+10 {
		t.Errorf("41/8 = %+v", recs[1])
	}
	if recs[2].Status != Available || recs[2].Date != 0 {
		t.Errorf("103.100/16 = %+v", recs[2])
	}
}

func TestManagedBy(t *testing.T) {
	tl := newTimeline(t)
	if rir, ok := tl.ManagedBy(netx.MustParsePrefix("103.100.5.0/24")); !ok || rir != APNIC {
		t.Errorf("ManagedBy = %v %v", rir, ok)
	}
	if _, ok := tl.ManagedBy(netx.MustParsePrefix("1.0.0.0/8")); ok {
		t.Error("unmanaged")
	}
	if got := len(tl.Blocks()); got != 3 {
		t.Errorf("Blocks = %d", got)
	}
}
