// Package rirstats implements the RIR statistics exchange format (the
// "delegated-extended" files each RIR publishes daily) and a journaled
// allocation timeline that answers: which registry manages a prefix, was
// it allocated on a given day, and how much free-pool space each RIR had
// over time — the substrate behind the paper's Figures 6 and 7 and the
// unallocated-prefix classification.
package rirstats

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dropscope/internal/ingest"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// RIR names as they appear in stats files.
type RIR string

// The five RIRs.
const (
	Afrinic RIR = "afrinic"
	APNIC   RIR = "apnic"
	ARIN    RIR = "arin"
	LACNIC  RIR = "lacnic"
	RIPE    RIR = "ripencc"
)

// AllRIRs lists the five registries in alphabetical order.
var AllRIRs = []RIR{Afrinic, APNIC, ARIN, LACNIC, RIPE}

// Status is a delegation status from the stats file format.
type Status string

// Delegation statuses.
const (
	Available Status = "available"
	Allocated Status = "allocated"
	Assigned  Status = "assigned"
	Reserved  Status = "reserved"
)

// Record is one line of a delegated-extended file.
type Record struct {
	Registry RIR
	CC       string
	Start    netx.Addr
	Count    uint64
	Date     timex.Day // date of the delegation; zero for available space
	Status   Status
	OpaqueID string
}

// Prefixes decomposes the record's [Start, Start+Count) range into
// CIDR-aligned prefixes, the way delegated ranges map onto routable
// blocks.
func (r Record) Prefixes() []netx.Prefix {
	return RangeToPrefixes(r.Start, r.Count)
}

// RangeToPrefixes returns the minimal CIDR decomposition of the range
// [start, start+count).
func RangeToPrefixes(start netx.Addr, count uint64) []netx.Prefix {
	var out []netx.Prefix
	a := uint64(start)
	for count > 0 {
		// Largest power-of-two block that is aligned at a and <= count.
		size := uint64(1) << 32
		if a != 0 {
			size = a & -a // low-bit alignment
		}
		for size > count {
			size >>= 1
		}
		bits := 32
		for s := size; s > 1; s >>= 1 {
			bits--
		}
		out = append(out, netx.PrefixFrom(netx.Addr(a), bits))
		a += size
		count -= size
	}
	return out
}

// WriteFile emits a delegated-extended stats file for one registry:
// version line, summary lines, then records.
func WriteFile(w io.Writer, registry RIR, day timex.Day, recs []Record) error {
	bw := bufio.NewWriter(w)
	var v4Count int
	for _, r := range recs {
		if r.Registry == registry {
			v4Count++
		}
	}
	if _, err := fmt.Fprintf(bw, "2|%s|%s|%d|%d|19830101|%s|+0000\n",
		registry, day.Compact(), v4Count, v4Count, day.Compact()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%s|*|ipv4|*|%d|summary\n", registry, v4Count); err != nil {
		return err
	}
	for _, r := range recs {
		if r.Registry != registry {
			continue
		}
		date := ""
		if r.Status != Available {
			date = r.Date.Compact()
		}
		cc := r.CC
		if cc == "" {
			cc = "ZZ"
		}
		if _, err := fmt.Fprintf(bw, "%s|%s|ipv4|%s|%d|%s|%s|%s\n",
			registry, cc, r.Start, r.Count, date, r.Status, r.OpaqueID); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseFile reads a delegated-extended stats file, returning its records.
// Summary and version lines are validated and skipped. The first
// malformed line fails the parse; use ParseFileHealth to quarantine bad
// lines instead.
func ParseFile(r io.Reader) ([]Record, error) {
	return parseFile(r, nil)
}

// ParseFileHealth is the lenient variant of ParseFile: a malformed line
// is skipped and counted on src rather than failing the file. Accepted
// records are also counted on src.
func ParseFileHealth(r io.Reader, src *ingest.Source) ([]Record, error) {
	return parseFile(r, src)
}

func parseFile(r io.Reader, src *ingest.Source) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Record
	lineNo := 0
	skip := func(format string, args ...interface{}) error {
		if src != nil {
			src.Skip(ingest.BadLine)
			return nil
		}
		return fmt.Errorf(format, args...)
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if lineNo == 1 && len(fields) >= 2 && fields[0] == "2" {
			continue // version line
		}
		if len(fields) >= 6 && fields[2] == "ipv4" && fields[3] == "*" {
			continue // summary line (ipv4|*|count|summary)
		}
		if len(fields) >= 6 && fields[1] == "*" {
			continue // summary line
		}
		if len(fields) < 7 {
			if err := skip("rirstats: line %d: %d fields", lineNo, len(fields)); err != nil {
				return nil, err
			}
			continue
		}
		if fields[2] != "ipv4" {
			continue // this pipeline is IPv4-only
		}
		var rec Record
		rec.Registry = RIR(fields[0])
		rec.CC = fields[1]
		start, err := netx.ParseAddr(fields[3])
		if err != nil {
			if err := skip("rirstats: line %d: %v", lineNo, err); err != nil {
				return nil, err
			}
			continue
		}
		rec.Start = start
		rec.Count, err = strconv.ParseUint(fields[4], 10, 64)
		if err != nil || rec.Count == 0 {
			if err := skip("rirstats: line %d: bad count %q", lineNo, fields[4]); err != nil {
				return nil, err
			}
			continue
		}
		if rec.Count > (1<<32)-uint64(rec.Start) {
			if err := skip("rirstats: line %d: range %s+%d exceeds the address space",
				lineNo, rec.Start, rec.Count); err != nil {
				return nil, err
			}
			continue
		}
		if fields[5] != "" {
			d, err := timex.ParseDay(fields[5])
			if err != nil {
				if err := skip("rirstats: line %d: %v", lineNo, err); err != nil {
					return nil, err
				}
				continue
			}
			rec.Date = d
		}
		rec.Status = Status(fields[6])
		if len(fields) >= 8 {
			rec.OpaqueID = fields[7]
		}
		out = append(out, rec)
		if src != nil {
			src.Accept(1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Timeline tracks the allocation status of registry-managed space over
// time. Managed blocks are registered once; status transitions are
// journaled per prefix.
type Timeline struct {
	managed netx.Trie[*blockHist]
	blocks  []*blockHist
}

type blockHist struct {
	prefix   netx.Prefix
	registry RIR
	changes  []statusChange // in day order
}

type statusChange struct {
	day    timex.Day
	status Status
}

// Manage registers a block as part of a registry's managed space with an
// initial status effective from the beginning of time.
func (t *Timeline) Manage(p netx.Prefix, registry RIR, initial Status) error {
	if _, ok := t.managed.Get(p); ok {
		return fmt.Errorf("rirstats: %s already managed", p)
	}
	h := &blockHist{prefix: p, registry: registry, changes: []statusChange{{day: -1 << 30, status: initial}}}
	t.managed.Insert(p, h)
	t.blocks = append(t.blocks, h)
	return nil
}

// SetStatus journals a status change for block p on day d. The block
// must exactly match a managed block.
func (t *Timeline) SetStatus(p netx.Prefix, d timex.Day, s Status) error {
	h, ok := t.managed.Get(p)
	if !ok {
		return fmt.Errorf("rirstats: %s is not a managed block", p)
	}
	if n := len(h.changes); n > 0 && d < h.changes[n-1].day {
		return fmt.Errorf("rirstats: %s: status change out of order", p)
	}
	h.changes = append(h.changes, statusChange{d, s})
	return nil
}

func (h *blockHist) statusAt(d timex.Day) Status {
	st := h.changes[0].status
	for _, c := range h.changes {
		if c.day > d {
			break
		}
		st = c.status
	}
	return st
}

// StatusAt returns the status and registry of the most specific managed
// block covering p on day d.
func (t *Timeline) StatusAt(p netx.Prefix, d timex.Day) (Status, RIR, bool) {
	_, h, ok := t.managed.LongestMatch(p)
	if !ok {
		return "", "", false
	}
	return h.statusAt(d), h.registry, true
}

// AllocatedAt reports whether p lies inside a block that was allocated
// or assigned on day d.
func (t *Timeline) AllocatedAt(p netx.Prefix, d timex.Day) bool {
	st, _, ok := t.StatusAt(p, d)
	return ok && (st == Allocated || st == Assigned)
}

// UnallocatedAt reports whether p is RIR-managed but in the free pool
// (available or reserved) on day d, or not managed by any RIR at all —
// the paper's "unallocated" category.
func (t *Timeline) UnallocatedAt(p netx.Prefix, d timex.Day) bool {
	return !t.AllocatedAt(p, d)
}

// FreePool returns the number of addresses in the registry's managed
// space that were available on day d.
func (t *Timeline) FreePool(registry RIR, d timex.Day) uint64 {
	var n uint64
	for _, h := range t.blocks {
		if h.registry == registry && h.statusAt(d) == Available {
			n += h.prefix.NumAddrs()
		}
	}
	return n
}

// SpaceWhere returns the union of managed blocks of the registry (or all
// registries if registry is empty) whose status on day d satisfies keep.
func (t *Timeline) SpaceWhere(registry RIR, d timex.Day, keep func(Status) bool) *netx.Set {
	var set netx.Set
	for _, h := range t.blocks {
		if registry != "" && h.registry != registry {
			continue
		}
		if keep(h.statusAt(d)) {
			set.Add(h.prefix)
		}
	}
	return &set
}

// RecordsAt flattens the timeline into delegated-extended records for
// day d, ordered by start address.
func (t *Timeline) RecordsAt(d timex.Day) []Record {
	var out []Record
	for _, h := range t.blocks {
		st := h.statusAt(d)
		rec := Record{
			Registry: h.registry,
			Start:    h.prefix.Addr(),
			Count:    h.prefix.NumAddrs(),
			Status:   st,
		}
		if st != Available {
			// Date of the transition that produced the current status.
			for _, c := range h.changes {
				if c.day > d {
					break
				}
				if c.status == st {
					rec.Date = c.day
				}
			}
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ManagedBy returns the registry managing p, if any.
func (t *Timeline) ManagedBy(p netx.Prefix) (RIR, bool) {
	_, h, ok := t.managed.LongestMatch(p)
	if !ok {
		return "", false
	}
	return h.registry, true
}

// ChangeDays returns the distinct days on which any block's status
// changed, in ascending order (the sentinel initial day is excluded).
func (t *Timeline) ChangeDays() []timex.Day {
	seen := make(map[timex.Day]bool)
	for _, h := range t.blocks {
		for _, c := range h.changes[1:] {
			seen[c.day] = true
		}
	}
	out := make([]timex.Day, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Blocks returns every managed block with its registry, in address order.
func (t *Timeline) Blocks() []Record {
	out := make([]Record, 0, len(t.blocks))
	for _, h := range t.blocks {
		out = append(out, Record{Registry: h.registry, Start: h.prefix.Addr(), Count: h.prefix.NumAddrs()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
