package rirstats

import (
	"bytes"
	"testing"
)

func FuzzParseFile(f *testing.F) {
	f.Add("2|arin|20220330|1|1|19830101|20220330|+0000\narin|*|ipv4|*|1|summary\narin|US|ipv4|23.0.0.0|16777216|20190605|allocated|org-1\n")
	f.Add("")
	f.Add("x|y|z\n")
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ParseFile(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		for _, r := range recs {
			// Accepted records must decompose into prefixes covering
			// exactly Count addresses.
			var total uint64
			for _, p := range r.Prefixes() {
				total += p.NumAddrs()
			}
			if total != r.Count {
				t.Fatalf("prefix decomposition %d != count %d", total, r.Count)
			}
		}
	})
}
