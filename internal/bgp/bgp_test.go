package bgp

import (
	"math/rand"
	"strings"
	"testing"

	"dropscope/internal/netx"
)

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []netx.Prefix{netx.MustParsePrefix("198.51.100.0/24")},
		Attrs: Attrs{
			Origin:      OriginIGP,
			Path:        Sequence(64500, 64501, 262144),
			NextHop:     netx.AddrFrom4(203, 0, 113, 1),
			HasNextHop:  true,
			MED:         100,
			HasMED:      true,
			LocalPref:   200,
			HasLocal:    true,
			Communities: []uint32{64500<<16 | 1, 64500<<16 | 2},
		},
		NLRI: []netx.Prefix{
			netx.MustParsePrefix("192.0.2.0/24"),
			netx.MustParsePrefix("10.0.0.0/8"),
			netx.MustParsePrefix("172.20.1.128/25"),
		},
	}
	wire, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("Withdrawn = %v", got.Withdrawn)
	}
	if !got.Attrs.Path.Equal(u.Attrs.Path) {
		t.Errorf("Path = %v, want %v", got.Attrs.Path, u.Attrs.Path)
	}
	if !got.Attrs.HasNextHop || got.Attrs.NextHop != u.Attrs.NextHop {
		t.Errorf("NextHop = %v", got.Attrs.NextHop)
	}
	if !got.Attrs.HasMED || got.Attrs.MED != 100 || !got.Attrs.HasLocal || got.Attrs.LocalPref != 200 {
		t.Errorf("MED/LocalPref = %+v", got.Attrs)
	}
	if len(got.Attrs.Communities) != 2 {
		t.Errorf("Communities = %v", got.Attrs.Communities)
	}
	if len(got.NLRI) != 3 || got.NLRI[2] != u.NLRI[2] {
		t.Errorf("NLRI = %v", got.NLRI)
	}
}

func TestWithdrawOnlyUpdate(t *testing.T) {
	u := &Update{Withdrawn: []netx.Prefix{netx.MustParsePrefix("192.0.2.0/24")}}
	wire, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 0 || len(got.Withdrawn) != 1 {
		t.Errorf("got %+v", got)
	}
	if len(got.Attrs.Path) != 0 {
		t.Errorf("withdraw-only update should carry no attributes: %+v", got.Attrs)
	}
}

func TestASPathOrigin(t *testing.T) {
	p := Sequence(3356, 21575, 263692)
	if o, ok := p.Origin(); !ok || o != 263692 {
		t.Errorf("Origin = %v,%v", o, ok)
	}
	if f, ok := p.First(); !ok || f != 3356 {
		t.Errorf("First = %v,%v", f, ok)
	}
	// Path ending in an AS_SET has no unambiguous origin.
	withSet := ASPath{
		{Type: SegmentSequence, ASNs: []ASN{64500}},
		{Type: SegmentSet, ASNs: []ASN{64501, 64502}},
	}
	if _, ok := withSet.Origin(); ok {
		t.Error("AS_SET-terminated path should have no origin")
	}
	var empty ASPath
	if _, ok := empty.Origin(); ok {
		t.Error("empty path has no origin")
	}
	if _, ok := empty.First(); ok {
		t.Error("empty path has no first")
	}
}

func TestASPathLenAndContains(t *testing.T) {
	p := ASPath{
		{Type: SegmentSequence, ASNs: []ASN{1, 2, 3}},
		{Type: SegmentSet, ASNs: []ASN{4, 5}},
	}
	if p.Len() != 4 { // 3 for sequence + 1 for set
		t.Errorf("Len = %d", p.Len())
	}
	if !p.Contains(5) || p.Contains(6) {
		t.Error("Contains")
	}
}

func TestASPathString(t *testing.T) {
	p := ASPath{
		{Type: SegmentSequence, ASNs: []ASN{50509, 34665}},
		{Type: SegmentSet, ASNs: []ASN{1, 2}},
	}
	s := p.String()
	if !strings.Contains(s, "50509 34665") || !strings.Contains(s, "{1,2}") {
		t.Errorf("String = %q", s)
	}
}

func TestASPathSegmentRoundTrip(t *testing.T) {
	u := &Update{
		Attrs: Attrs{
			Origin: OriginIncomplete,
			Path: ASPath{
				{Type: SegmentSequence, ASNs: []ASN{64500, 4200000000}},
				{Type: SegmentSet, ASNs: []ASN{65000, 65001}},
			},
			NextHop:    netx.AddrFrom4(10, 0, 0, 1),
			HasNextHop: true,
		},
		NLRI: []netx.Prefix{netx.MustParsePrefix("192.0.2.0/24")},
	}
	wire, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Attrs.Path.Equal(u.Attrs.Path) {
		t.Errorf("Path = %v", got.Attrs.Path)
	}
	if got.Attrs.Origin != OriginIncomplete {
		t.Errorf("Origin = %d", got.Attrs.Origin)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     make([]byte, 10),
		"badmarker": make([]byte, 19),
	}
	for name, b := range cases {
		if _, err := DecodeUpdate(b); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Valid marker but wrong declared length.
	msg := make([]byte, 19)
	for i := 0; i < 16; i++ {
		msg[i] = 0xff
	}
	msg[16], msg[17], msg[18] = 0, 25, TypeUpdate
	if _, err := DecodeUpdate(msg); err == nil {
		t.Error("expected length mismatch error")
	}
	// Non-UPDATE type.
	msg[16], msg[17], msg[18] = 0, 19, TypeKeepalive
	if _, err := DecodeUpdate(msg); err == nil {
		t.Error("expected non-update error")
	}
}

func TestDecodePrefixesRejectsBadNLRI(t *testing.T) {
	if _, err := DecodePrefixes([]byte{33, 0, 0, 0, 0, 0}); err == nil {
		t.Error("length 33 should fail")
	}
	if _, err := DecodePrefixes([]byte{24, 192, 0}); err == nil {
		t.Error("truncated NLRI should fail")
	}
	if _, err := DecodePrefixes([]byte{8, 10, 99}); err == nil {
		t.Error("trailing garbage should fail as truncated entry")
	}
}

func TestDecodeUpdateFuzzSafety(t *testing.T) {
	// Random mutations of a valid message must never panic.
	u := &Update{
		Attrs: Attrs{
			Origin: OriginIGP, Path: Sequence(64500, 64501),
			NextHop: netx.AddrFrom4(10, 0, 0, 1), HasNextHop: true,
		},
		NLRI: []netx.Prefix{netx.MustParsePrefix("192.0.2.0/24")},
	}
	wire, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), wire...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		_, _ = DecodeUpdate(mut) // must not panic
	}
}

func TestEncodeUpdateTooLarge(t *testing.T) {
	u := &Update{}
	for i := 0; i < 2000; i++ {
		u.NLRI = append(u.NLRI, netx.PrefixFrom(netx.AddrFrom4(10, byte(i>>8), byte(i), 0), 24))
	}
	if _, err := EncodeUpdate(u); err == nil {
		t.Error("oversized update should fail to encode")
	}
}

func TestASNString(t *testing.T) {
	if ASN(263692).String() != "AS263692" {
		t.Errorf("ASN.String = %q", ASN(263692).String())
	}
	if AS0.String() != "AS0" {
		t.Errorf("AS0.String = %q", AS0.String())
	}
}
