package bgp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dropscope/internal/netx"
)

// randUpdate generates a structurally valid random update.
func randUpdate(rng *rand.Rand) *Update {
	u := &Update{}
	for i := rng.Intn(4); i > 0; i-- {
		u.Withdrawn = append(u.Withdrawn, randPrefix(rng))
	}
	if n := rng.Intn(4); n > 0 {
		for i := 0; i < n; i++ {
			u.NLRI = append(u.NLRI, randPrefix(rng))
		}
		u.Attrs.Origin = byte(rng.Intn(3))
		nseg := 1 + rng.Intn(2)
		for s := 0; s < nseg; s++ {
			seg := PathSegment{Type: SegmentSequence}
			if s > 0 && rng.Intn(3) == 0 {
				seg.Type = SegmentSet
			}
			for a := 1 + rng.Intn(4); a > 0; a-- {
				seg.ASNs = append(seg.ASNs, ASN(rng.Uint32()))
			}
			u.Attrs.Path = append(u.Attrs.Path, seg)
		}
		u.Attrs.NextHop = netx.Addr(rng.Uint32())
		u.Attrs.HasNextHop = true
		if rng.Intn(2) == 0 {
			u.Attrs.MED, u.Attrs.HasMED = rng.Uint32(), true
		}
		if rng.Intn(2) == 0 {
			u.Attrs.LocalPref, u.Attrs.HasLocal = rng.Uint32(), true
		}
		for i := rng.Intn(3); i > 0; i-- {
			u.Attrs.Communities = append(u.Attrs.Communities, rng.Uint32())
		}
	}
	return u
}

func randPrefix(rng *rand.Rand) netx.Prefix {
	return netx.PrefixFrom(netx.Addr(rng.Uint32()), rng.Intn(33))
}

// TestUpdateRoundTripProperty: encode→decode is the identity on valid
// updates.
func TestUpdateRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		u := randUpdate(rng)
		wire, err := EncodeUpdate(u)
		if err != nil {
			continue // oversized update; not an identity violation
		}
		got, err := DecodeUpdate(wire)
		if err != nil {
			t.Fatalf("iteration %d: decode: %v\nupdate: %+v", i, err, u)
		}
		if !reflect.DeepEqual(normalize(got), normalize(u)) {
			t.Fatalf("iteration %d:\n got %+v\nwant %+v", i, got, u)
		}
	}
}

// normalize maps empty slices to nil so DeepEqual compares semantics.
func normalize(u *Update) *Update {
	c := *u
	if len(c.Withdrawn) == 0 {
		c.Withdrawn = nil
	}
	if len(c.NLRI) == 0 {
		c.NLRI = nil
	}
	if len(c.Attrs.Communities) == 0 {
		c.Attrs.Communities = nil
	}
	return &c
}

// TestPathLenNonNegativeProperty and origin consistency via testing/quick
// over generated sequences.
func TestPathProperties(t *testing.T) {
	f := func(asns []uint32) bool {
		if len(asns) == 0 {
			return true
		}
		path := Sequence(toASNs(asns)...)
		if path.Len() != len(asns) {
			return false
		}
		o, ok := path.Origin()
		if !ok || o != ASN(asns[len(asns)-1]) {
			return false
		}
		first, ok := path.First()
		if !ok || first != ASN(asns[0]) {
			return false
		}
		for _, a := range asns {
			if !path.Contains(ASN(a)) {
				return false
			}
		}
		return path.Equal(path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func toASNs(v []uint32) []ASN {
	out := make([]ASN, len(v))
	for i, x := range v {
		out[i] = ASN(x)
	}
	return out
}

// TestEncodePrefixCompactness: NLRI encoding uses the minimal byte count.
func TestEncodePrefixCompactness(t *testing.T) {
	cases := []struct {
		pfx   string
		bytes int // NLRI bytes: 1 length + ceil(bits/8)
	}{
		{"0.0.0.0/0", 1},
		{"128.0.0.0/1", 2},
		{"10.0.0.0/8", 2},
		{"10.128.0.0/9", 3},
		{"192.0.2.0/24", 4},
		{"192.0.2.128/25", 5},
		{"192.0.2.1/32", 5},
	}
	for _, c := range cases {
		u := &Update{Withdrawn: []netx.Prefix{netx.MustParsePrefix(c.pfx)}}
		wire, err := EncodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		// header(19) + withdrawn len(2) + NLRI + attrs len(2)
		if got := len(wire) - 19 - 2 - 2; got != c.bytes {
			t.Errorf("%s: NLRI bytes = %d, want %d", c.pfx, got, c.bytes)
		}
	}
}
