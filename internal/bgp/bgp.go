// Package bgp implements the BGP-4 UPDATE message wire format (RFC 4271)
// with 4-byte AS number support (RFC 6793), sufficient to encode and decode
// the announcements carried inside MRT archives: withdrawn routes, the
// standard path attributes, and IPv4 NLRI.
package bgp

import (
	"errors"
	"fmt"

	"dropscope/internal/netx"
)

// ASN is an autonomous system number. AS0 is reserved; in RPKI a ROA for
// AS0 asserts that the covered prefixes must not be routed (RFC 7607/6483).
type ASN uint32

// AS0 is the reserved AS number used in AS0 ROAs.
const AS0 ASN = 0

// String renders the ASN in the canonical "AS64500" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Message type codes from RFC 4271 §4.1.
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Path attribute type codes used in this pipeline.
const (
	AttrOrigin          = 1
	AttrASPath          = 2
	AttrNextHop         = 3
	AttrMED             = 4
	AttrLocalPref       = 5
	AttrAtomicAggregate = 6
	AttrAggregator      = 7
	AttrCommunities     = 8
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// Origin attribute values (RFC 4271 §5.1.1).
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	SegmentSet      = 1
	SegmentSequence = 2
)

// PathSegment is one segment of an AS_PATH attribute.
type PathSegment struct {
	Type byte // SegmentSet or SegmentSequence
	ASNs []ASN
}

// ASPath is a sequence of path segments. In the common case it is a single
// AS_SEQUENCE segment.
type ASPath []PathSegment

// Sequence builds a single-segment AS_SEQUENCE path.
func Sequence(asns ...ASN) ASPath {
	return ASPath{{Type: SegmentSequence, ASNs: asns}}
}

// Origin returns the origin AS — the last AS of the last AS_SEQUENCE
// segment — and reports whether one exists. A path ending in an AS_SET has
// no unambiguous origin (RFC 6811 treats such routes specially); Origin
// reports false for those.
func (p ASPath) Origin() (ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	last := p[len(p)-1]
	if last.Type != SegmentSequence || len(last.ASNs) == 0 {
		return 0, false
	}
	return last.ASNs[len(last.ASNs)-1], true
}

// First returns the neighbor AS — the first AS of the first segment — and
// reports whether one exists.
func (p ASPath) First() (ASN, bool) {
	if len(p) == 0 || len(p[0].ASNs) == 0 {
		return 0, false
	}
	return p[0].ASNs[0], true
}

// Contains reports whether asn appears anywhere in the path.
func (p ASPath) Contains(asn ASN) bool {
	for _, seg := range p {
		for _, a := range seg.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// Len returns the AS-path length as used in BGP route selection: one per
// AS in a sequence, one per set.
func (p ASPath) Len() int {
	n := 0
	for _, seg := range p {
		if seg.Type == SegmentSet {
			n++
		} else {
			n += len(seg.ASNs)
		}
	}
	return n
}

// String renders the path as space-separated ASNs, with sets in braces.
func (p ASPath) String() string {
	var b []byte
	for i, seg := range p {
		if i > 0 {
			b = append(b, ' ')
		}
		if seg.Type == SegmentSet {
			b = append(b, '{')
		}
		for j, a := range seg.ASNs {
			if j > 0 {
				if seg.Type == SegmentSet {
					b = append(b, ',')
				} else {
					b = append(b, ' ')
				}
			}
			b = append(b, fmt.Sprintf("%d", uint32(a))...)
		}
		if seg.Type == SegmentSet {
			b = append(b, '}')
		}
	}
	return string(b)
}

// Equal reports whether two paths are identical segment by segment.
func (p ASPath) Equal(q ASPath) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i].Type != q[i].Type || len(p[i].ASNs) != len(q[i].ASNs) {
			return false
		}
		for j := range p[i].ASNs {
			if p[i].ASNs[j] != q[i].ASNs[j] {
				return false
			}
		}
	}
	return true
}

// Attrs is the decoded set of path attributes of an UPDATE.
type Attrs struct {
	Origin      byte
	Path        ASPath
	NextHop     netx.Addr
	HasNextHop  bool
	MED         uint32
	HasMED      bool
	LocalPref   uint32
	HasLocal    bool
	Communities []uint32
}

// Update is a decoded BGP UPDATE message.
type Update struct {
	Withdrawn []netx.Prefix
	Attrs     Attrs
	NLRI      []netx.Prefix
}

// Common decode errors.
var (
	ErrTruncated = errors.New("bgp: truncated message")
	ErrBadMarker = errors.New("bgp: bad message marker")
	ErrBadLength = errors.New("bgp: bad message length")
)

const headerLen = 19

// marker is the 16-byte all-ones header marker required by RFC 4271.
var marker = [16]byte{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// EncodeUpdate serializes u as a full BGP message (header + body) using
// 4-byte AS numbers in AS_PATH, the encoding used by AS4-capable speakers
// and by the MRT AS4 subtypes.
func EncodeUpdate(u *Update) ([]byte, error) {
	body := make([]byte, 0, 64)

	// Withdrawn routes.
	wd := encodePrefixes(nil, u.Withdrawn)
	body = append(body, byte(len(wd)>>8), byte(len(wd)))
	body = append(body, wd...)

	// Path attributes.
	attrs := encodeAttrs(nil, &u.Attrs, len(u.NLRI) > 0)
	body = append(body, byte(len(attrs)>>8), byte(len(attrs)))
	body = append(body, attrs...)

	// NLRI.
	body = encodePrefixes(body, u.NLRI)

	total := headerLen + len(body)
	if total > 4096 {
		return nil, fmt.Errorf("%w: %d bytes exceeds 4096", ErrBadLength, total)
	}
	msg := make([]byte, 0, total)
	msg = append(msg, marker[:]...)
	msg = append(msg, byte(total>>8), byte(total), TypeUpdate)
	msg = append(msg, body...)
	return msg, nil
}

func encodePrefixes(dst []byte, ps []netx.Prefix) []byte {
	for _, p := range ps {
		dst = append(dst, byte(p.Bits()))
		n := (p.Bits() + 7) / 8
		a := uint32(p.Addr())
		for i := 0; i < n; i++ {
			dst = append(dst, byte(a>>(24-8*uint(i))))
		}
	}
	return dst
}

func encodeAttrs(dst []byte, a *Attrs, hasNLRI bool) []byte {
	put := func(flags, code byte, val []byte) {
		if len(val) > 255 {
			flags |= flagExtLen
			dst = append(dst, flags, code, byte(len(val)>>8), byte(len(val)))
		} else {
			dst = append(dst, flags, code, byte(len(val)))
		}
		dst = append(dst, val...)
	}

	if hasNLRI {
		put(flagTransitive, AttrOrigin, []byte{a.Origin})

		var pb []byte
		for _, seg := range a.Path {
			pb = append(pb, seg.Type, byte(len(seg.ASNs)))
			for _, asn := range seg.ASNs {
				pb = append(pb, byte(asn>>24), byte(asn>>16), byte(asn>>8), byte(asn))
			}
		}
		put(flagTransitive, AttrASPath, pb)

		if a.HasNextHop {
			nh := uint32(a.NextHop)
			put(flagTransitive, AttrNextHop, []byte{byte(nh >> 24), byte(nh >> 16), byte(nh >> 8), byte(nh)})
		}
	}
	if a.HasMED {
		put(flagOptional, AttrMED, be32(a.MED))
	}
	if a.HasLocal {
		put(flagTransitive, AttrLocalPref, be32(a.LocalPref))
	}
	if len(a.Communities) > 0 {
		var cb []byte
		for _, c := range a.Communities {
			cb = append(cb, be32(c)...)
		}
		put(flagOptional|flagTransitive, AttrCommunities, cb)
	}
	return dst
}

// EncodeAttrs serializes a bare path-attribute block, the form stored in
// TABLE_DUMP_V2 RIB entries (RFC 6396 §4.3.4).
func EncodeAttrs(a *Attrs) []byte { return encodeAttrs(nil, a, true) }

// DecodeAttrs parses a bare path-attribute block into a. Fields not
// present in the block are left untouched; decoded slices are freshly
// allocated, so the result may be retained indefinitely.
func DecodeAttrs(b []byte, a *Attrs) error { return decodeAttrs(b, a, false) }

// DecodeAttrsReuse parses a bare path-attribute block into a, first
// resetting every field and reusing a's existing Path and Communities
// storage (including per-segment ASN slices). The decoded attributes
// alias that storage, so they are only valid until the next
// DecodeAttrsReuse call on the same Attrs — the pooled decode mode of
// the mrt Reader depends on this to go allocation-free in steady state.
func DecodeAttrsReuse(b []byte, a *Attrs) error { return decodeAttrs(b, a, true) }

func be32(v uint32) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// DecodeUpdate parses a full BGP message previously produced by
// EncodeUpdate (or by an AS4-capable speaker): header, withdrawn routes,
// path attributes with 4-byte AS_PATH, and NLRI.
func DecodeUpdate(msg []byte) (*Update, error) {
	u := &Update{}
	if err := DecodeUpdateInto(msg, u); err != nil {
		return nil, err
	}
	return u, nil
}

// DecodeUpdateInto decodes a full BGP UPDATE message into u, reusing
// u's existing Withdrawn/NLRI/attribute slice capacity. On a zero
// Update it behaves exactly like DecodeUpdate; on a reused Update the
// decoded slices alias storage from the previous decode and are only
// valid until the next DecodeUpdateInto call.
func DecodeUpdateInto(msg []byte, u *Update) error {
	if len(msg) < headerLen {
		return ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if msg[i] != 0xff {
			return ErrBadMarker
		}
	}
	total := int(msg[16])<<8 | int(msg[17])
	if total != len(msg) {
		return fmt.Errorf("%w: header says %d, have %d", ErrBadLength, total, len(msg))
	}
	if msg[18] != TypeUpdate {
		return fmt.Errorf("bgp: message type %d is not UPDATE", msg[18])
	}
	body := msg[headerLen:]

	// Withdrawn.
	if len(body) < 2 {
		return ErrTruncated
	}
	wdLen := int(body[0])<<8 | int(body[1])
	body = body[2:]
	if len(body) < wdLen {
		return ErrTruncated
	}
	var err error
	u.Withdrawn, err = appendDecodedPrefixes(u.Withdrawn[:0], body[:wdLen])
	if err != nil {
		return err
	}
	body = body[wdLen:]

	// Attributes.
	if len(body) < 2 {
		return ErrTruncated
	}
	atLen := int(body[0])<<8 | int(body[1])
	body = body[2:]
	if len(body) < atLen {
		return ErrTruncated
	}
	if err := decodeAttrs(body[:atLen], &u.Attrs, true); err != nil {
		return err
	}
	body = body[atLen:]

	// NLRI.
	u.NLRI, err = appendDecodedPrefixes(u.NLRI[:0], body)
	return err
}

// DecodePrefixes parses a run of RFC 4271 length-prefixed NLRI entries.
func DecodePrefixes(b []byte) ([]netx.Prefix, error) {
	return appendDecodedPrefixes(nil, b)
}

func appendDecodedPrefixes(out []netx.Prefix, b []byte) ([]netx.Prefix, error) {
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, fmt.Errorf("bgp: NLRI length %d out of range", bits)
		}
		n := (bits + 7) / 8
		if len(b) < 1+n {
			return nil, ErrTruncated
		}
		var a uint32
		for i := 0; i < n; i++ {
			a |= uint32(b[1+i]) << (24 - 8*uint(i))
		}
		p := netx.PrefixFrom(netx.Addr(a), bits)
		if uint32(p.Addr()) != a {
			return nil, fmt.Errorf("bgp: NLRI %s has host bits set", p)
		}
		out = append(out, p)
		b = b[1+n:]
	}
	return out, nil
}

// decodeAttrs parses the path-attribute block with 4-byte AS_PATH ASNs.
// With reuse set, a is reset first and its Path/Communities storage —
// including the per-segment ASN slices — is recycled in place.
func decodeAttrs(b []byte, a *Attrs, reuse bool) error {
	if reuse {
		*a = Attrs{Path: a.Path[:0], Communities: a.Communities[:0]}
	}
	for len(b) > 0 {
		if len(b) < 3 {
			return ErrTruncated
		}
		flags, code := b[0], b[1]
		var alen, hdr int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return ErrTruncated
			}
			alen, hdr = int(b[2])<<8|int(b[3]), 4
		} else {
			alen, hdr = int(b[2]), 3
		}
		if len(b) < hdr+alen {
			return ErrTruncated
		}
		val := b[hdr : hdr+alen]
		switch code {
		case AttrOrigin:
			if alen != 1 {
				return fmt.Errorf("bgp: ORIGIN length %d", alen)
			}
			a.Origin = val[0]
		case AttrASPath:
			var dst ASPath
			if reuse {
				dst = a.Path[:0]
			}
			path, err := appendASPath(dst, val)
			if err != nil {
				return err
			}
			a.Path = path
		case AttrNextHop:
			if alen != 4 {
				return fmt.Errorf("bgp: NEXT_HOP length %d", alen)
			}
			a.NextHop = netx.Addr(uint32(val[0])<<24 | uint32(val[1])<<16 | uint32(val[2])<<8 | uint32(val[3]))
			a.HasNextHop = true
		case AttrMED:
			if alen != 4 {
				return fmt.Errorf("bgp: MED length %d", alen)
			}
			a.MED = uint32(val[0])<<24 | uint32(val[1])<<16 | uint32(val[2])<<8 | uint32(val[3])
			a.HasMED = true
		case AttrLocalPref:
			if alen != 4 {
				return fmt.Errorf("bgp: LOCAL_PREF length %d", alen)
			}
			a.LocalPref = uint32(val[0])<<24 | uint32(val[1])<<16 | uint32(val[2])<<8 | uint32(val[3])
			a.HasLocal = true
		case AttrCommunities:
			if alen%4 != 0 {
				return fmt.Errorf("bgp: COMMUNITIES length %d", alen)
			}
			for i := 0; i < alen; i += 4 {
				a.Communities = append(a.Communities,
					uint32(val[i])<<24|uint32(val[i+1])<<16|uint32(val[i+2])<<8|uint32(val[i+3]))
			}
		default:
			// Unknown optional attributes are tolerated (transit behavior).
			if flags&flagOptional == 0 {
				return fmt.Errorf("bgp: unrecognized well-known attribute %d", code)
			}
		}
		b = b[hdr+alen:]
	}
	return nil
}

// appendASPath decodes segments onto dst. When dst has spare capacity
// from a previous decode, each incoming segment recycles the ASN slice
// parked in its slot, so steady-state re-decoding allocates nothing.
func appendASPath(dst ASPath, b []byte) (ASPath, error) {
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, ErrTruncated
		}
		segType, count := b[0], int(b[1])
		if segType != SegmentSet && segType != SegmentSequence {
			return nil, fmt.Errorf("bgp: AS_PATH segment type %d", segType)
		}
		need := 2 + 4*count
		if len(b) < need {
			return nil, ErrTruncated
		}
		var asns []ASN
		if n := len(dst); n < cap(dst) {
			asns = dst[:n+1][n].ASNs[:0]
		} else {
			asns = make([]ASN, 0, count)
		}
		for i := 0; i < count; i++ {
			off := 2 + 4*i
			asns = append(asns, ASN(uint32(b[off])<<24|uint32(b[off+1])<<16|uint32(b[off+2])<<8|uint32(b[off+3])))
		}
		dst = append(dst, PathSegment{Type: segType, ASNs: asns})
		b = b[need:]
	}
	return dst, nil
}
