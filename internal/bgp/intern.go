package bgp

// PathID is a dense handle to an interned ASPath.
type PathID uint32

// PathMeta is the per-path metadata the RIB queries need, computed once
// per distinct path at intern time instead of once per span.
type PathMeta struct {
	Origin   ASN // last AS of the last AS_SEQUENCE segment, 0 if none
	Neighbor ASN // first AS of the first segment, 0 if none
	Transit  ASN // second-to-last AS of the last AS_SEQUENCE segment, 0 if none
}

// PathInterner hash-conses AS paths: structurally equal paths map to
// the same dense PathID and a single canonical copy. Collector RIBs
// repeat the same few thousand paths across millions of (prefix, peer)
// spans, so storing a 4-byte PathID per span instead of a segment
// slice removes almost all of the path duplication. The zero value is
// ready to use. A PathInterner is not safe for concurrent mutation;
// lookups against a no-longer-mutated interner are safe from any
// number of goroutines.
type PathInterner struct {
	ids     map[string]PathID
	paths   []ASPath
	meta    []PathMeta
	strs    []string // lazily rendered String() per path; "" = not yet
	scratch []byte
	frozen  bool // built by FrozenPathInterner: lookup-only, no ids map
}

// appendPathKey serializes p into an unambiguous byte key: per segment
// a type byte, a 4-byte big-endian AS count, then 4 bytes per AS.
func appendPathKey(b []byte, p ASPath) []byte {
	for _, seg := range p {
		n := len(seg.ASNs)
		b = append(b, seg.Type, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		for _, a := range seg.ASNs {
			b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
		}
	}
	return b
}

// PathEqual reports whether two AS paths are structurally equal —
// the same comparison interning by key performs, usable across interners
// whose dense ids are not comparable (a frozen base index and a delta
// overlay each intern independently).
func PathEqual(a, b ASPath) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || len(a[i].ASNs) != len(b[i].ASNs) {
			return false
		}
		for j, asn := range a[i].ASNs {
			if asn != b[i].ASNs[j] {
				return false
			}
		}
	}
	return true
}

// Intern returns the PathID for p, storing a deep copy on first sight
// so the caller may keep mutating (or pooling) its own path storage.
func (in *PathInterner) Intern(p ASPath) PathID {
	return in.intern(p, true)
}

// InternShared is Intern without the defensive copy: on first sight the
// interner adopts p itself as the canonical path. Use it when p's
// storage is immutable for the interner's lifetime — a path from a
// materialized record stream the caller keeps, or one freshly built and
// never touched again — to skip the clone on every miss.
func (in *PathInterner) InternShared(p ASPath) PathID {
	return in.intern(p, false)
}

func (in *PathInterner) intern(p ASPath, copy bool) PathID {
	if in.frozen {
		panic("bgp: Intern on a frozen PathInterner")
	}
	in.scratch = appendPathKey(in.scratch[:0], p)
	if id, ok := in.ids[string(in.scratch)]; ok {
		return id
	}
	if in.ids == nil {
		in.ids = make(map[string]PathID)
	}
	id := PathID(len(in.paths))
	stored := p
	if copy {
		stored = clonePath(p)
	}
	in.paths = append(in.paths, stored)
	in.meta = append(in.meta, metaOf(p))
	in.strs = append(in.strs, "")
	in.ids[string(in.scratch)] = id
	return id
}

func clonePath(p ASPath) ASPath {
	if p == nil {
		return nil
	}
	out := make(ASPath, len(p))
	for i, seg := range p {
		out[i] = PathSegment{Type: seg.Type, ASNs: append([]ASN(nil), seg.ASNs...)}
	}
	return out
}

func metaOf(p ASPath) PathMeta {
	var m PathMeta
	m.Origin, _ = p.Origin()
	m.Neighbor, _ = p.First()
	if len(p) > 0 {
		last := p[len(p)-1]
		if last.Type == SegmentSequence && len(last.ASNs) >= 2 {
			m.Transit = last.ASNs[len(last.ASNs)-2]
		}
	}
	return m
}

// Path returns the canonical stored path for id. Callers must not
// mutate the result.
func (in *PathInterner) Path(id PathID) ASPath { return in.paths[id] }

// Meta returns the precomputed metadata for id.
func (in *PathInterner) Meta(id PathID) PathMeta { return in.meta[id] }

// String returns the canonical path's String() rendering, computed at
// most once per distinct path. The memoization writes to the interner,
// so String — unlike Path and Meta — is not safe for concurrent use.
func (in *PathInterner) String(id PathID) string {
	if in.strs[id] == "" && len(in.paths[id]) > 0 {
		in.strs[id] = in.paths[id].String()
	}
	return in.strs[id]
}

// Len returns the number of distinct interned paths. IDs are exactly
// 0..Len()-1.
func (in *PathInterner) Len() int { return len(in.paths) }

// Paths returns the canonical interned paths in id order: element i is
// Path(PathID(i)). The returned slice and its paths are the interner's
// own storage — callers must not mutate them. Serialization layers use
// this to lay the whole dictionary out flat.
func (in *PathInterner) Paths() []ASPath { return in.paths }

// FrozenPathInterner wraps externally reconstructed canonical paths —
// typically decoded from a snapshot, in their original id order — into
// a lookup-only interner: Path, Meta, String, Len, and Paths work
// exactly as on the interner the paths came from, with the per-path
// metadata recomputed once here. The key map is never built, so Intern
// and InternShared panic; a frozen interner serves closed, immutable
// indexes that never intern again. The interner adopts paths without
// copying.
func FrozenPathInterner(paths []ASPath) *PathInterner {
	in := &PathInterner{
		paths:  paths,
		meta:   make([]PathMeta, len(paths)),
		strs:   make([]string, len(paths)),
		frozen: true,
	}
	for i, p := range paths {
		in.meta[i] = metaOf(p)
	}
	return in
}
