package bgp

import (
	"reflect"
	"testing"
)

func TestPathInterner(t *testing.T) {
	var in PathInterner
	p1 := Sequence(64500, 21575, 263692)
	p2 := Sequence(64501, 263692)

	id1 := in.Intern(p1)
	id2 := in.Intern(p2)
	if id1 != 0 || id2 != 1 {
		t.Fatalf("ids not dense: %d, %d", id1, id2)
	}
	// Structural equality, not slice identity.
	if got := in.Intern(Sequence(64500, 21575, 263692)); got != id1 {
		t.Errorf("structurally equal path interned as %d, want %d", got, id1)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d", in.Len())
	}
	if !reflect.DeepEqual(in.Path(id1), p1) {
		t.Error("Path does not round-trip")
	}
	if got, want := in.String(id1), p1.String(); got != want {
		t.Errorf("String(id1) = %q, want %q", got, want)
	}

	m := in.Meta(id1)
	if m.Origin != 263692 || m.Neighbor != 64500 || m.Transit != 21575 {
		t.Errorf("Meta(id1) = %+v", m)
	}
	if m := in.Meta(id2); m.Transit != 64501 {
		t.Errorf("Meta(id2).Transit = %v", m.Transit)
	}

	// A set segment never contributes a transit hop.
	setPath := ASPath{{Type: SegmentSet, ASNs: []ASN{1, 2}}}
	if m := in.Meta(in.Intern(setPath)); m.Transit != 0 {
		t.Errorf("set-segment Transit = %v, want 0", m.Transit)
	}

	// Segment boundaries are part of the identity: {1,2}+{3} != {1}+{2,3}.
	a := ASPath{{Type: SegmentSequence, ASNs: []ASN{1, 2}}, {Type: SegmentSequence, ASNs: []ASN{3}}}
	b := ASPath{{Type: SegmentSequence, ASNs: []ASN{1}}, {Type: SegmentSequence, ASNs: []ASN{2, 3}}}
	if in.Intern(a) == in.Intern(b) {
		t.Error("different segmentations interned to the same id")
	}
}

func TestPathInternerCopyDiscipline(t *testing.T) {
	var in PathInterner

	// Intern must deep-copy: mutating the caller's storage afterwards
	// cannot corrupt the canonical path.
	mine := Sequence(100, 200)
	id := in.Intern(mine)
	mine[0].ASNs[0] = 999
	if got := in.Path(id)[0].ASNs[0]; got != 100 {
		t.Errorf("canonical path corrupted by caller mutation: %v", got)
	}

	// InternShared adopts the caller's storage as canonical.
	shared := Sequence(300, 400)
	ids := in.InternShared(shared)
	if &in.Path(ids)[0].ASNs[0] != &shared[0].ASNs[0] {
		t.Error("InternShared cloned instead of adopting")
	}
	// A hit never re-adopts: the first canonical stays.
	again := Sequence(300, 400)
	if got := in.InternShared(again); got != ids {
		t.Errorf("InternShared re-keyed an existing path: %d != %d", got, ids)
	}
	if &in.Path(ids)[0].ASNs[0] == &again[0].ASNs[0] {
		t.Error("hit replaced the canonical storage")
	}
}
