package bgp

import (
	"encoding/binary"
	"fmt"
	"io"

	"dropscope/internal/netx"
)

// Open is a BGP OPEN message (RFC 4271 §4.2) with the 4-octet-AS
// capability (RFC 6793) always advertised.
type Open struct {
	AS       ASN // full 4-byte AS number
	HoldTime uint16
	RouterID netx.Addr
}

// Capability codes used here.
const capFourOctetAS = 65

// EncodeOpen serializes an OPEN message. The legacy My-AS field carries
// AS_TRANS (23456) when the ASN does not fit 2 bytes.
func EncodeOpen(o *Open) []byte {
	legacyAS := uint16(23456) // AS_TRANS
	if o.AS <= 0xFFFF {
		legacyAS = uint16(o.AS)
	}
	// Optional parameter: capability 65 (4-octet AS).
	capVal := be32(uint32(o.AS))
	capability := append([]byte{capFourOctetAS, 4}, capVal...)
	optParam := append([]byte{2 /* type: capabilities */, byte(len(capability))}, capability...)

	body := make([]byte, 0, 10+len(optParam))
	body = append(body, 4) // version
	body = append(body, byte(legacyAS>>8), byte(legacyAS))
	body = append(body, byte(o.HoldTime>>8), byte(o.HoldTime))
	body = append(body, be32(uint32(o.RouterID))...)
	body = append(body, byte(len(optParam)))
	body = append(body, optParam...)

	return frame(TypeOpen, body)
}

// DecodeOpen parses an OPEN message body (without the 19-byte header).
func DecodeOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, ErrTruncated
	}
	if body[0] != 4 {
		return nil, fmt.Errorf("bgp: version %d not supported", body[0])
	}
	o := &Open{
		AS:       ASN(binary.BigEndian.Uint16(body[1:])),
		HoldTime: binary.BigEndian.Uint16(body[3:]),
		RouterID: netx.Addr(binary.BigEndian.Uint32(body[5:])),
	}
	optLen := int(body[9])
	if len(body) < 10+optLen {
		return nil, ErrTruncated
	}
	opts := body[10 : 10+optLen]
	for len(opts) > 0 {
		if len(opts) < 2 {
			return nil, ErrTruncated
		}
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return nil, ErrTruncated
		}
		if ptype == 2 { // capabilities
			caps := opts[2 : 2+plen]
			for len(caps) > 0 {
				if len(caps) < 2 {
					return nil, ErrTruncated
				}
				code, clen := caps[0], int(caps[1])
				if len(caps) < 2+clen {
					return nil, ErrTruncated
				}
				if code == capFourOctetAS && clen == 4 {
					o.AS = ASN(binary.BigEndian.Uint32(caps[2:]))
				}
				caps = caps[2+clen:]
			}
		}
		opts = opts[2+plen:]
	}
	return o, nil
}

// Notification is a BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code, Subcode byte
	Data          []byte
}

// Common notification codes.
const (
	NotifCease           = 6
	NotifOpenError       = 2
	NotifHoldTimeExpired = 4
)

// Error implements error so a received notification can propagate.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification %d/%d", n.Code, n.Subcode)
}

// EncodeNotification serializes a NOTIFICATION message.
func EncodeNotification(n *Notification) []byte {
	body := append([]byte{n.Code, n.Subcode}, n.Data...)
	return frame(TypeNotification, body)
}

// DecodeNotification parses a NOTIFICATION body.
func DecodeNotification(body []byte) (*Notification, error) {
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
}

// EncodeKeepalive serializes a KEEPALIVE message (header only).
func EncodeKeepalive() []byte { return frame(TypeKeepalive, nil) }

// frame wraps a body with the 19-byte BGP header.
func frame(typ byte, body []byte) []byte {
	total := headerLen + len(body)
	msg := make([]byte, 0, total)
	msg = append(msg, marker[:]...)
	msg = append(msg, byte(total>>8), byte(total), typ)
	return append(msg, body...)
}

// Message is one framed BGP message: its type code and body (without the
// header). Raw holds the full wire bytes including the header, suitable
// for DecodeUpdate.
type Message struct {
	Type byte
	Body []byte
	Raw  []byte
}

// ReadMessage reads one framed BGP message from r.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	for i := 0; i < 16; i++ {
		if hdr[i] != 0xff {
			return nil, ErrBadMarker
		}
	}
	total := int(hdr[16])<<8 | int(hdr[17])
	if total < headerLen || total > 4096 {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, total)
	}
	body := make([]byte, total-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrTruncated, err)
	}
	raw := make([]byte, 0, total)
	raw = append(raw, hdr[:]...)
	raw = append(raw, body...)
	return &Message{Type: hdr[18], Body: body, Raw: raw}, nil
}
