package bgp

import (
	"bytes"
	"testing"

	"dropscope/internal/netx"
)

func fuzzSeedUpdate() []byte {
	u := &Update{
		Withdrawn: []netx.Prefix{netx.MustParsePrefix("198.51.100.0/24")},
		Attrs: Attrs{
			Origin: OriginIGP, Path: Sequence(64500, 263692),
			NextHop: netx.AddrFrom4(10, 0, 0, 1), HasNextHop: true,
			Communities: []uint32{64500<<16 | 1},
		},
		NLRI: []netx.Prefix{netx.MustParsePrefix("132.255.0.0/22")},
	}
	wire, _ := EncodeUpdate(u)
	return wire
}

func FuzzDecodeUpdate(f *testing.F) {
	f.Add(fuzzSeedUpdate())
	f.Add([]byte{})
	f.Add(make([]byte, 19))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		// Accepted updates must re-encode and re-decode to the same thing.
		wire, err := EncodeUpdate(u)
		if err != nil {
			return // e.g. unknown-attr updates may not re-encode identically
		}
		if _, err := DecodeUpdate(wire); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzReadMessage(f *testing.F) {
	f.Add(fuzzSeedUpdate())
	f.Add(EncodeKeepalive())
	f.Add(EncodeNotification(&Notification{Code: NotifCease}))
	f.Add(EncodeOpen(&Open{AS: 64500, HoldTime: 90, RouterID: 1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		switch msg.Type {
		case TypeOpen:
			_, _ = DecodeOpen(msg.Body)
		case TypeNotification:
			_, _ = DecodeNotification(msg.Body)
		case TypeUpdate:
			_, _ = DecodeUpdate(msg.Raw)
		}
	})
}
