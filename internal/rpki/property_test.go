package rpki

import (
	"math/rand"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// TestValidationInvariants checks the RFC 6811 state machine over random
// ROA sets and announcements:
//   - Valid implies some ROA covers the announcement within maxLength
//     with a matching non-zero origin.
//   - Invalid implies some ROA covers the prefix but none matches.
//   - NotFound implies no ROA covers the prefix.
func TestValidationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2000; trial++ {
		var roas []ROA
		for i := rng.Intn(6); i > 0; i-- {
			bits := rng.Intn(25)
			p := netx.PrefixFrom(netx.Addr(rng.Uint32()), bits)
			roa := ROA{
				Prefix:    p,
				MaxLength: bits + rng.Intn(33-bits),
				ASN:       bgp.ASN(rng.Intn(5)), // small space to force matches
				TA:        TARIPE,
			}
			roas = append(roas, roa)
		}
		ann := netx.PrefixFrom(netx.Addr(rng.Uint32()), rng.Intn(33))
		origin := bgp.ASN(rng.Intn(5))
		got := Validate(ann, origin, roas)

		covered, matched := false, false
		for _, r := range roas {
			if !r.Prefix.Covers(ann) {
				continue
			}
			covered = true
			if ann.Bits() <= r.MaxLength && r.ASN == origin && r.ASN != bgp.AS0 {
				matched = true
			}
		}
		want := NotFound
		if matched {
			want = Valid
		} else if covered {
			want = Invalid
		}
		if got != want {
			t.Fatalf("trial %d: Validate(%v, %v) = %v, want %v (covered=%v matched=%v)",
				trial, ann, origin, got, want, covered, matched)
		}
	}
}

// TestArchiveMonotoneSigning: once every covering ROA is revoked, the
// prefix reads unsigned; signing status at any day equals the span
// arithmetic.
func TestArchiveSpanArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	var a Archive
	type span struct {
		roa      ROA
		from, to int32
	}
	var spans []span
	day := int32(1000)
	for i := 0; i < 100; i++ {
		bits := 8 + rng.Intn(9)
		roa := ROA{
			Prefix:    netx.PrefixFrom(netx.Addr(rng.Uint32()), bits),
			MaxLength: bits,
			ASN:       bgp.ASN(100 + i),
			TA:        TARIPE,
		}
		from := day
		day += int32(rng.Intn(3))
		if err := a.Add(timexDay(from), roa); err != nil {
			t.Fatal(err)
		}
		spans = append(spans, span{roa, from, -1})
	}
	// Revoke half, in day order.
	for i := 0; i < 100; i += 2 {
		day += int32(rng.Intn(3))
		if err := a.Revoke(timexDay(day), spans[i].roa); err != nil {
			t.Fatal(err)
		}
		spans[i].to = day
	}

	for probe := int32(990); probe < day+10; probe += 3 {
		for _, s := range spans {
			live := probe >= s.from && (s.to < 0 || probe < s.to)
			got := false
			for _, r := range a.CoveringAt(s.roa.Prefix, timexDay(probe), nil) {
				if r == s.roa {
					got = true
				}
			}
			if got != live {
				t.Fatalf("probe %d: ROA %v live=%v, archive says %v", probe, s.roa, live, got)
			}
		}
	}
}

func timexDay(d int32) timex.Day { return timex.Day(d) }
