package rpki

import (
	"bytes"
	"testing"
)

func FuzzParseSnapshotCSV(f *testing.F) {
	f.Add("URI,ASN,IP Prefix,Max Length,Not Before,Not After\nrsync://rpki.example.net/ripe/1.roa,AS64500,10.0.0.0/8,24,2020-01-01,2021-01-01\n")
	f.Add("bad,line\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		roas, err := ParseSnapshotCSV(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		for _, r := range roas {
			if err := r.Validate(); err != nil {
				t.Fatalf("accepted invalid ROA: %v", err)
			}
		}
	})
}
