// Package rpki implements the RPKI substrate of the pipeline: Route
// Origin Authorizations (including AS0), per-RIR trust anchors, route
// origin validation per RFC 6811, and a journaled archive that answers
// "was this prefix signed on day d, by which ASN, under which TAL" —
// the queries behind the paper's Table 1 and Figures 4–6.
package rpki

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dropscope/internal/bgp"
	"dropscope/internal/ingest"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// TrustAnchor identifies the publication point a ROA chains to. The five
// RIR production TALs are configured in validators by default; the APNIC
// and LACNIC AS0 TALs are separate and NOT configured by default — the
// distinction §6.2.2 of the paper turns on.
type TrustAnchor string

// Production and AS0 trust anchors.
const (
	TAAfrinic TrustAnchor = "afrinic"
	TAAPNIC   TrustAnchor = "apnic"
	TAARIN    TrustAnchor = "arin"
	TALACNIC  TrustAnchor = "lacnic"
	TARIPE    TrustAnchor = "ripe"

	TAAPNICAS0  TrustAnchor = "apnic-as0"
	TALACNICAS0 TrustAnchor = "lacnic-as0"
)

// DefaultTALs is the trust-anchor set configured in validation software
// by default: the five production RIR TALs, no AS0 TALs.
var DefaultTALs = []TrustAnchor{TAAfrinic, TAAPNIC, TAARIN, TALACNIC, TARIPE}

// IsAS0TAL reports whether ta is one of the informational AS0 trust
// anchors that validators do not configure by default.
func (ta TrustAnchor) IsAS0TAL() bool {
	return ta == TAAPNICAS0 || ta == TALACNICAS0
}

// ROA is a route origin authorization.
type ROA struct {
	Prefix    netx.Prefix
	MaxLength int
	ASN       bgp.ASN // bgp.AS0 asserts "do not route"
	TA        TrustAnchor
}

// Validate checks the ROA's internal consistency.
func (r ROA) Validate() error {
	if r.MaxLength < r.Prefix.Bits() || r.MaxLength > 32 {
		return fmt.Errorf("rpki: ROA %s maxLength %d out of range", r.Prefix, r.MaxLength)
	}
	return nil
}

// CoversAnnouncement reports whether the announcement of p matches this
// ROA's prefix and maxLength constraint (origin not considered).
func (r ROA) CoversAnnouncement(p netx.Prefix) bool {
	return r.Prefix.Covers(p) && p.Bits() <= r.MaxLength
}

// String renders the ROA in the conventional "prefix-maxlen => ASN" form.
func (r ROA) String() string {
	return fmt.Sprintf("%s-%d => %s (%s)", r.Prefix, r.MaxLength, r.ASN, r.TA)
}

// Validity is an RFC 6811 route origin validation outcome.
type Validity int

// Validation states.
const (
	NotFound Validity = iota // no ROA covers the prefix
	Valid                    // some ROA matches prefix, maxLength, and origin
	Invalid                  // ROAs cover the prefix but none matches
)

// String names the validity state.
func (v Validity) String() string {
	switch v {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return "notfound"
	}
}

// Validate implements RFC 6811 origin validation of an announcement of
// prefix p with the given origin against the candidate ROAs: Valid if any
// covering ROA authorizes the origin within maxLength; Invalid if at
// least one ROA covers p but none matches; NotFound otherwise.
func Validate(p netx.Prefix, origin bgp.ASN, roas []ROA) Validity {
	covered := false
	for _, r := range roas {
		if !r.Prefix.Covers(p) {
			continue
		}
		covered = true
		if r.CoversAnnouncement(p) && r.ASN == origin && r.ASN != bgp.AS0 {
			return Valid
		}
	}
	if covered {
		return Invalid
	}
	return NotFound
}

// Event is one archive journal entry.
type Event struct {
	Day     timex.Day
	Created bool // false = revoked
	ROA     ROA
}

// Archive is a journaled ROA database mirroring a daily ROA archive.
// Events must be appended in day order.
type Archive struct {
	events  []Event
	lastDay timex.Day
	trie    netx.Trie[[]*roaSpan]
	spans   []*roaSpan
}

type roaSpan struct {
	roa     ROA
	created timex.Day
	revoked timex.Day
	open    bool
}

// Add journals creation of roa on day d.
func (a *Archive) Add(d timex.Day, roa ROA) error {
	if err := roa.Validate(); err != nil {
		return err
	}
	if len(a.events) > 0 && d < a.lastDay {
		return fmt.Errorf("rpki: journal out of order: %v after %v", d, a.lastDay)
	}
	a.events = append(a.events, Event{d, true, roa})
	a.lastDay = d
	sp := &roaSpan{roa: roa, created: d, open: true}
	a.spans = append(a.spans, sp)
	lst, _ := a.trie.Get(roa.Prefix)
	a.trie.Insert(roa.Prefix, append(lst, sp))
	return nil
}

// Revoke journals removal of the ROA (matched by prefix, maxLength, ASN,
// TA) on day d. Revoking an absent ROA is an error.
func (a *Archive) Revoke(d timex.Day, roa ROA) error {
	if len(a.events) > 0 && d < a.lastDay {
		return fmt.Errorf("rpki: journal out of order: %v after %v", d, a.lastDay)
	}
	lst, _ := a.trie.Get(roa.Prefix)
	for _, sp := range lst {
		if sp.open && sp.roa == roa {
			sp.revoked, sp.open = d, false
			a.events = append(a.events, Event{d, false, roa})
			a.lastDay = d
			return nil
		}
	}
	return fmt.Errorf("rpki: revoke of absent ROA %v", roa)
}

// Len returns the number of journal entries.
func (a *Archive) Len() int { return len(a.events) }

// Events returns the journal in day order (read-only).
func (a *Archive) Events() []Event { return a.events }

// ChangeDays returns the distinct days on which the archive content
// changed, in order.
func (a *Archive) ChangeDays() []timex.Day {
	var out []timex.Day
	for _, e := range a.events {
		if n := len(out); n == 0 || out[n-1] != e.Day {
			out = append(out, e.Day)
		}
	}
	return out
}

func (sp *roaSpan) liveAt(d timex.Day) bool {
	return d >= sp.created && (sp.open || d < sp.revoked)
}

// CoveringAt returns the ROAs live on day d whose prefix covers p,
// restricted to the given trust anchors (nil means all).
func (a *Archive) CoveringAt(p netx.Prefix, d timex.Day, tals []TrustAnchor) []ROA {
	var out []ROA
	a.trie.Covering(p, func(_ netx.Prefix, lst []*roaSpan) bool {
		for _, sp := range lst {
			if sp.liveAt(d) && talAllowed(sp.roa.TA, tals) {
				out = append(out, sp.roa)
			}
		}
		return true
	})
	return out
}

func talAllowed(ta TrustAnchor, tals []TrustAnchor) bool {
	if tals == nil {
		return true
	}
	for _, t := range tals {
		if t == ta {
			return true
		}
	}
	return false
}

// ValidateAt runs RFC 6811 validation of (p, origin) against the ROAs
// live on day d under the given trust anchors (nil = all).
func (a *Archive) ValidateAt(p netx.Prefix, origin bgp.ASN, d timex.Day, tals []TrustAnchor) Validity {
	return Validate(p, origin, a.CoveringAt(p, d, tals))
}

// SignedAt reports whether any live ROA on day d covers p (any TA).
func (a *Archive) SignedAt(p netx.Prefix, d timex.Day) bool {
	return len(a.CoveringAt(p, d, nil)) > 0
}

// FirstSigned returns the first day a ROA covering p was created, over
// the whole journal.
func (a *Archive) FirstSigned(p netx.Prefix) (timex.Day, bgp.ASN, bool) {
	var (
		best    timex.Day
		bestASN bgp.ASN
		found   bool
	)
	a.trie.Covering(p, func(_ netx.Prefix, lst []*roaSpan) bool {
		for _, sp := range lst {
			if !found || sp.created < best {
				best, bestASN, found = sp.created, sp.roa.ASN, true
			}
		}
		return true
	})
	return best, bestASN, found
}

// SpanInfo describes one ROA's lifetime.
type SpanInfo struct {
	ROA     ROA
	Created timex.Day
	Revoked timex.Day
	Open    bool
}

// History returns the lifetime of every ROA whose prefix covers p,
// ordered by creation day. The §6.1 analysis uses this to see ROA origin
// ASNs changing in step with BGP origins.
func (a *Archive) History(p netx.Prefix) []SpanInfo {
	var out []SpanInfo
	a.trie.Covering(p, func(_ netx.Prefix, lst []*roaSpan) bool {
		for _, sp := range lst {
			out = append(out, SpanInfo{sp.roa, sp.created, sp.revoked, sp.open})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Created < out[j].Created })
	return out
}

// LiveAt returns all ROAs live on day d under the given trust anchors
// (nil = all), in prefix order.
func (a *Archive) LiveAt(d timex.Day, tals []TrustAnchor) []ROA {
	var out []ROA
	a.trie.Walk(func(_ netx.Prefix, lst []*roaSpan) bool {
		for _, sp := range lst {
			if sp.liveAt(d) && talAllowed(sp.roa.TA, tals) {
				out = append(out, sp.roa)
			}
		}
		return true
	})
	return out
}

// WriteSnapshotCSV writes the ROAs live on day d in the RIPE daily-export
// CSV form: URI,ASN,IP Prefix,Max Length,Not Before,Not After.
func (a *Archive) WriteSnapshotCSV(w io.Writer, d timex.Day) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("URI,ASN,IP Prefix,Max Length,Not Before,Not After\n"); err != nil {
		return err
	}
	for _, r := range a.LiveAt(d, nil) {
		uri := fmt.Sprintf("rsync://rpki.example.net/%s/%s.roa", r.TA, strings.ReplaceAll(r.Prefix.String(), "/", "-"))
		if _, err := fmt.Fprintf(bw, "%s,AS%d,%s,%d,%s,%s\n",
			uri, uint32(r.ASN), r.Prefix, r.MaxLength, d.String(), (d + 365).String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseSnapshotCSV reads a snapshot in the format WriteSnapshotCSV emits.
// The trust anchor is recovered from the URI's first path component. The
// first malformed line fails the parse; use ParseSnapshotCSVHealth to
// quarantine bad lines instead.
func ParseSnapshotCSV(r io.Reader) ([]ROA, error) {
	return parseSnapshotCSV(r, nil)
}

// ParseSnapshotCSVHealth is the lenient variant of ParseSnapshotCSV: a
// malformed line is skipped and counted on src rather than failing the
// snapshot. Accepted ROAs are also counted on src.
func ParseSnapshotCSVHealth(r io.Reader, src *ingest.Source) ([]ROA, error) {
	return parseSnapshotCSV(r, src)
}

func parseSnapshotCSV(r io.Reader, src *ingest.Source) ([]ROA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []ROA
	first := true
	skip := func(err error) error {
		if src != nil {
			src.Skip(ingest.BadLine)
			return nil
		}
		return err
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "URI,") {
				continue
			}
		}
		fields := strings.Split(line, ",")
		if len(fields) < 4 {
			if err := skip(fmt.Errorf("rpki: malformed CSV line %q", line)); err != nil {
				return nil, err
			}
			continue
		}
		var roa ROA
		roa.TA = taFromURI(fields[0])
		asnStr := strings.TrimPrefix(strings.TrimSpace(fields[1]), "AS")
		asn, err := strconv.ParseUint(asnStr, 10, 32)
		if err != nil {
			if err := skip(fmt.Errorf("rpki: bad ASN %q", fields[1])); err != nil {
				return nil, err
			}
			continue
		}
		roa.ASN = bgp.ASN(asn)
		roa.Prefix, err = netx.ParsePrefix(strings.TrimSpace(fields[2]))
		if err != nil {
			if err := skip(err); err != nil {
				return nil, err
			}
			continue
		}
		roa.MaxLength, err = strconv.Atoi(strings.TrimSpace(fields[3]))
		if err != nil {
			if err := skip(fmt.Errorf("rpki: bad maxLength %q", fields[3])); err != nil {
				return nil, err
			}
			continue
		}
		if err := roa.Validate(); err != nil {
			if err := skip(err); err != nil {
				return nil, err
			}
			continue
		}
		out = append(out, roa)
		if src != nil {
			src.Accept(1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func taFromURI(uri string) TrustAnchor {
	const scheme = "rsync://"
	s := strings.TrimPrefix(uri, scheme)
	parts := strings.Split(s, "/")
	if len(parts) >= 2 {
		return TrustAnchor(parts[1])
	}
	return ""
}
