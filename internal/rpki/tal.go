package rpki

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"strings"
)

// TALFile is a Trust Anchor Locator in the RFC 8630 text format: one or
// more rsync/https URIs pointing at the trust-anchor certificate,
// followed by a blank line and the base64 subjectPublicKeyInfo.
type TALFile struct {
	Name      TrustAnchor
	URIs      []string
	PublicKey []byte
}

// WriteTAL emits the locator in RFC 8630 form, with the key wrapped at
// 64 columns.
func WriteTAL(w io.Writer, t *TALFile) error {
	bw := bufio.NewWriter(w)
	for _, uri := range t.URIs {
		if _, err := fmt.Fprintln(bw, uri); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	enc := base64.StdEncoding.EncodeToString(t.PublicKey)
	for len(enc) > 0 {
		n := 64
		if n > len(enc) {
			n = len(enc)
		}
		if _, err := fmt.Fprintln(bw, enc[:n]); err != nil {
			return err
		}
		enc = enc[n:]
	}
	return bw.Flush()
}

// ParseTAL reads an RFC 8630 locator. The Name is not part of the wire
// format; callers set it from the file name.
func ParseTAL(r io.Reader) (*TALFile, error) {
	sc := bufio.NewScanner(r)
	t := &TALFile{}
	var keyB64 strings.Builder
	inKey := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			if len(t.URIs) == 0 {
				continue // leading blank lines
			}
			inKey = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !inKey {
			if !strings.HasPrefix(line, "rsync://") && !strings.HasPrefix(line, "https://") {
				return nil, fmt.Errorf("rpki: TAL URI %q has unsupported scheme", line)
			}
			t.URIs = append(t.URIs, line)
		} else {
			keyB64.WriteString(line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.URIs) == 0 {
		return nil, fmt.Errorf("rpki: TAL has no URIs")
	}
	key, err := base64.StdEncoding.DecodeString(keyB64.String())
	if err != nil {
		return nil, fmt.Errorf("rpki: TAL key: %v", err)
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("rpki: TAL has no public key")
	}
	t.PublicKey = key
	return t, nil
}
