package rpki_test

import (
	"fmt"

	"dropscope/internal/netx"
	"dropscope/internal/rpki"
)

// ExampleValidate shows RFC 6811 origin validation, including the
// forged-origin blind spot the paper's case study exploits: the hijacker
// announcing the ROA's own ASN validates exactly like the owner.
func ExampleValidate() {
	roas := []rpki.ROA{{
		Prefix:    netx.MustParsePrefix("132.255.0.0/22"),
		MaxLength: 22,
		ASN:       263692,
		TA:        rpki.TALACNIC,
	}}
	p := netx.MustParsePrefix("132.255.0.0/22")

	fmt.Println("owner:   ", rpki.Validate(p, 263692, roas))
	fmt.Println("attacker:", rpki.Validate(p, 50509, roas))
	fmt.Println("forged:  ", rpki.Validate(p, 263692, roas)) // indistinguishable
	fmt.Println("too long:", rpki.Validate(netx.MustParsePrefix("132.255.0.0/24"), 263692, roas))
	// Output:
	// owner:    valid
	// attacker: invalid
	// forged:   valid
	// too long: invalid
}
