package rpki

import (
	"bytes"
	"testing"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

var (
	d0  = timex.MustParseDay("2019-06-05")
	p22 = netx.MustParsePrefix("132.255.0.0/22")
	p24 = netx.MustParsePrefix("132.255.0.0/24")
)

func TestROAValidate(t *testing.T) {
	good := ROA{Prefix: p22, MaxLength: 24, ASN: 263692, TA: TALACNIC}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := ROA{Prefix: p22, MaxLength: 20, ASN: 1, TA: TARIPE}
	if err := bad.Validate(); err == nil {
		t.Error("maxLength < prefix length should fail")
	}
	bad2 := ROA{Prefix: p22, MaxLength: 33, ASN: 1, TA: TARIPE}
	if err := bad2.Validate(); err == nil {
		t.Error("maxLength > 32 should fail")
	}
}

func TestRFC6811Validation(t *testing.T) {
	roas := []ROA{
		{Prefix: p22, MaxLength: 22, ASN: 263692, TA: TALACNIC},
	}
	cases := []struct {
		name   string
		p      netx.Prefix
		origin bgp.ASN
		want   Validity
	}{
		{"exact match", p22, 263692, Valid},
		{"wrong origin", p22, 50509, Invalid},
		{"too specific", p24, 263692, Invalid},
		{"too specific wrong origin", p24, 50509, Invalid},
		{"uncovered", netx.MustParsePrefix("8.8.8.0/24"), 15169, NotFound},
	}
	for _, c := range cases {
		if got := Validate(c.p, c.origin, roas); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMaxLengthAllowsSubprefix(t *testing.T) {
	roas := []ROA{{Prefix: p22, MaxLength: 24, ASN: 263692, TA: TALACNIC}}
	if got := Validate(p24, 263692, roas); got != Valid {
		t.Errorf("within maxLength = %v", got)
	}
	p25 := netx.MustParsePrefix("132.255.0.0/25")
	if got := Validate(p25, 263692, roas); got != Invalid {
		t.Errorf("beyond maxLength = %v", got)
	}
}

func TestAS0ROANeverValid(t *testing.T) {
	// An AS0 ROA makes every announcement of the covered space Invalid —
	// even one claiming origin AS0 (RFC 7607: AS0 must not originate).
	roas := []ROA{{Prefix: p22, MaxLength: 32, ASN: bgp.AS0, TA: TAAPNICAS0}}
	if got := Validate(p24, 64500, roas); got != Invalid {
		t.Errorf("AS0-covered announcement = %v", got)
	}
	if got := Validate(p24, bgp.AS0, roas); got != Invalid {
		t.Errorf("origin AS0 announcement = %v", got)
	}
}

func TestValidIfAnyROAMatches(t *testing.T) {
	// RFC 6811: valid if ANY ROA matches, even when others don't.
	roas := []ROA{
		{Prefix: p22, MaxLength: 22, ASN: 111, TA: TARIPE},
		{Prefix: p22, MaxLength: 24, ASN: 263692, TA: TALACNIC},
	}
	if got := Validate(p24, 263692, roas); got != Valid {
		t.Errorf("any-match = %v", got)
	}
}

func TestArchiveLifecycle(t *testing.T) {
	var a Archive
	roa := ROA{Prefix: p22, MaxLength: 22, ASN: 263692, TA: TALACNIC}
	if err := a.Add(d0, roa); err != nil {
		t.Fatal(err)
	}
	if a.SignedAt(p22, d0-1) {
		t.Error("signed before creation")
	}
	if !a.SignedAt(p22, d0) || !a.SignedAt(p24, d0+100) {
		t.Error("should be signed after creation (covering more specifics too)")
	}
	if err := a.Revoke(d0+200, roa); err != nil {
		t.Fatal(err)
	}
	if a.SignedAt(p22, d0+200) {
		t.Error("signed after revocation")
	}
	if !a.SignedAt(p22, d0+199) {
		t.Error("still signed the day before revocation")
	}
	if got := a.ValidateAt(p22, 263692, d0+100, DefaultTALs); got != Valid {
		t.Errorf("ValidateAt during life = %v", got)
	}
	if got := a.ValidateAt(p22, 263692, d0+300, DefaultTALs); got != NotFound {
		t.Errorf("ValidateAt after revocation = %v", got)
	}
}

func TestArchiveRevokeAbsent(t *testing.T) {
	var a Archive
	roa := ROA{Prefix: p22, MaxLength: 22, ASN: 263692, TA: TALACNIC}
	if err := a.Revoke(d0, roa); err == nil {
		t.Error("revoking an absent ROA should fail")
	}
}

func TestArchiveOutOfOrder(t *testing.T) {
	var a Archive
	roa := ROA{Prefix: p22, MaxLength: 22, ASN: 1, TA: TARIPE}
	if err := a.Add(d0+10, roa); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(d0, roa); err == nil {
		t.Error("out-of-order add should fail")
	}
}

func TestAS0TALFiltering(t *testing.T) {
	var a Archive
	// RIR AS0 ROA under the APNIC AS0 TAL, not in DefaultTALs.
	as0 := ROA{Prefix: p22, MaxLength: 32, ASN: bgp.AS0, TA: TAAPNICAS0}
	if err := a.Add(d0, as0); err != nil {
		t.Fatal(err)
	}
	// A validator with default TALs doesn't see the AS0 ROA at all.
	if got := a.ValidateAt(p24, 64500, d0+1, DefaultTALs); got != NotFound {
		t.Errorf("default TALs should not see AS0 TAL: %v", got)
	}
	// A validator that loads the AS0 TAL rejects the squat.
	withAS0 := append(append([]TrustAnchor{}, DefaultTALs...), TAAPNICAS0)
	if got := a.ValidateAt(p24, 64500, d0+1, withAS0); got != Invalid {
		t.Errorf("AS0 TAL should invalidate the squat: %v", got)
	}
	if !TAAPNICAS0.IsAS0TAL() || TAAPNIC.IsAS0TAL() {
		t.Error("IsAS0TAL misclassifies")
	}
}

func TestFirstSignedAndHistory(t *testing.T) {
	var a Archive
	r1 := ROA{Prefix: p22, MaxLength: 22, ASN: 111, TA: TALACNIC}
	r2 := ROA{Prefix: p22, MaxLength: 22, ASN: 263692, TA: TALACNIC}
	if err := a.Add(d0, r1); err != nil {
		t.Fatal(err)
	}
	if err := a.Revoke(d0+50, r1); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(d0+50, r2); err != nil {
		t.Fatal(err)
	}
	day, asn, ok := a.FirstSigned(p22)
	if !ok || day != d0 || asn != 111 {
		t.Errorf("FirstSigned = %v %v %v", day, asn, ok)
	}
	hist := a.History(p24) // covering history includes the /22 ROAs
	if len(hist) != 2 {
		t.Fatalf("History = %+v", hist)
	}
	if hist[0].ROA.ASN != 111 || hist[0].Open || hist[0].Revoked != d0+50 {
		t.Errorf("hist[0] = %+v", hist[0])
	}
	if hist[1].ROA.ASN != 263692 || !hist[1].Open {
		t.Errorf("hist[1] = %+v", hist[1])
	}
}

func TestSnapshotCSVRoundTrip(t *testing.T) {
	var a Archive
	roas := []ROA{
		{Prefix: p22, MaxLength: 24, ASN: 263692, TA: TALACNIC},
		{Prefix: netx.MustParsePrefix("8.8.8.0/24"), MaxLength: 24, ASN: 15169, TA: TAARIN},
		{Prefix: netx.MustParsePrefix("1.0.0.0/8"), MaxLength: 32, ASN: bgp.AS0, TA: TAAPNICAS0},
	}
	for _, r := range roas {
		if err := a.Add(d0, r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := a.WriteSnapshotCSV(&buf, d0+1); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshotCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("parsed %d ROAs", len(back))
	}
	found := map[TrustAnchor]bool{}
	for _, r := range back {
		found[r.TA] = true
	}
	if !found[TALACNIC] || !found[TAARIN] || !found[TAAPNICAS0] {
		t.Errorf("TAs recovered = %v", found)
	}
}

func TestParseSnapshotCSVErrors(t *testing.T) {
	bad := []string{
		"URI,ASN,IP Prefix,Max Length\nonly,three,fields\n",
		"rsync://x/ripe/a.roa,ASxx,1.0.0.0/8,8\n",
		"rsync://x/ripe/a.roa,AS1,badprefix,8\n",
		"rsync://x/ripe/a.roa,AS1,1.0.0.0/8,zz\n",
		"rsync://x/ripe/a.roa,AS1,1.0.0.0/8,4\n", // maxLength < bits
	}
	for i, s := range bad {
		if _, err := ParseSnapshotCSV(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestLiveAtTALRestriction(t *testing.T) {
	var a Archive
	if err := a.Add(d0, ROA{Prefix: p22, MaxLength: 22, ASN: 1, TA: TARIPE}); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(d0, ROA{Prefix: netx.MustParsePrefix("1.0.0.0/8"), MaxLength: 32, ASN: bgp.AS0, TA: TALACNICAS0}); err != nil {
		t.Fatal(err)
	}
	if got := len(a.LiveAt(d0+1, nil)); got != 2 {
		t.Errorf("all TALs: %d", got)
	}
	if got := len(a.LiveAt(d0+1, DefaultTALs)); got != 1 {
		t.Errorf("default TALs: %d", got)
	}
}

func TestTALRoundTrip(t *testing.T) {
	tal := &TALFile{
		Name: TAAPNICAS0,
		URIs: []string{
			"rsync://rpki.apnic.net/repository/apnic-as0.cer",
			"https://rpki.apnic.net/repository/apnic-as0.cer",
		},
		PublicKey: bytes.Repeat([]byte{0x30, 0x82, 0x01, 0x22}, 70), // > one b64 line
	}
	var buf bytes.Buffer
	if err := WriteTAL(&buf, tal); err != nil {
		t.Fatal(err)
	}
	// Wrapped at 64 columns.
	for i, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) > 80 {
			t.Errorf("line %d too long: %d", i, len(line))
		}
	}
	got, err := ParseTAL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.URIs) != 2 || got.URIs[0] != tal.URIs[0] {
		t.Errorf("URIs = %v", got.URIs)
	}
	if !bytes.Equal(got.PublicKey, tal.PublicKey) {
		t.Error("public key mismatch")
	}
}

func TestParseTALErrors(t *testing.T) {
	cases := map[string]string{
		"no URIs":    "\n\nAAAA\n",
		"bad scheme": "ftp://example.net/ta.cer\n\nAAAA\n",
		"no key":     "rsync://example.net/ta.cer\n\n",
		"bad base64": "rsync://example.net/ta.cer\n\n!!!!\n",
	}
	for name, s := range cases {
		if _, err := ParseTAL(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseTALComments(t *testing.T) {
	in := "# production TAL\nrsync://example.net/ta.cer\n\nQUJD\n"
	tal, err := ParseTAL(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if string(tal.PublicKey) != "ABC" {
		t.Errorf("key = %q", tal.PublicKey)
	}
}
