package pathend_test

import (
	"fmt"

	"dropscope/internal/bgp"
	"dropscope/internal/pathend"
)

// Example shows how path-end validation catches the forged-origin hijack
// that origin validation alone accepts (the paper's §6.1 case).
func Example() {
	t := pathend.NewTable()
	_ = t.Add(pathend.Record{Origin: 263692, Neighbors: []bgp.ASN{21575}})

	legit := bgp.Sequence(1001, 21575, 263692)
	hijack := bgp.Sequence(1004, 34665, 50509, 263692)

	fmt.Println("owner via AS21575: ", t.Validate(legit))
	fmt.Println("hijack via AS50509:", t.Validate(hijack))
	// Output:
	// owner via AS21575:  valid
	// hijack via AS50509: invalid
}
