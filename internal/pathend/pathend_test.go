package pathend

import (
	"testing"

	"dropscope/internal/bgp"
)

func table(t *testing.T) *Table {
	t.Helper()
	tb := NewTable()
	// AS263692's only legitimate transit is AS21575 (the case study).
	if err := tb.Add(Record{Origin: 263692, Neighbors: []bgp.ASN{21575}}); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestValidateLegitimatePath(t *testing.T) {
	tb := table(t)
	if got := tb.Validate(bgp.Sequence(1001, 21575, 263692)); got != Valid {
		t.Errorf("legitimate path = %v", got)
	}
}

func TestForgedOriginHijackDetected(t *testing.T) {
	tb := table(t)
	// The paper's RPKI-valid hijack: origin spoofed, but the adjacent AS
	// is the hijacker's transit AS50509, not AS21575.
	if got := tb.Validate(bgp.Sequence(1004, 34665, 50509, 263692)); got != Invalid {
		t.Errorf("forged-origin hijack = %v, want invalid", got)
	}
}

func TestNoRecordIsSilent(t *testing.T) {
	tb := table(t)
	if got := tb.Validate(bgp.Sequence(1001, 3356, 15169)); got != NotFound {
		t.Errorf("unrecorded origin = %v", got)
	}
	if got := tb.Validate(nil); got != NotFound {
		t.Errorf("empty path = %v", got)
	}
}

func TestPrependingTolerated(t *testing.T) {
	tb := table(t)
	if got := tb.Validate(bgp.Sequence(1001, 21575, 263692, 263692, 263692)); got != Valid {
		t.Errorf("prepended legitimate path = %v", got)
	}
	if got := tb.Validate(bgp.Sequence(1001, 50509, 263692, 263692)); got != Invalid {
		t.Errorf("prepended hijack = %v", got)
	}
	// Degenerate: path that is only the origin prepending itself.
	if got := tb.Validate(bgp.Sequence(263692, 263692)); got != Valid {
		t.Errorf("self-only path = %v", got)
	}
}

func TestDirectPeering(t *testing.T) {
	tb := table(t)
	// Collector peers directly with the origin: nothing to check.
	if got := tb.Validate(bgp.Sequence(263692)); got != Valid {
		t.Errorf("direct origin path = %v", got)
	}
}

func TestSegmentBoundaryAdjacency(t *testing.T) {
	tb := table(t)
	// Origin alone in the last sequence segment; neighbor in the prior one.
	path := bgp.ASPath{
		{Type: bgp.SegmentSequence, ASNs: []bgp.ASN{1001, 21575}},
		{Type: bgp.SegmentSequence, ASNs: []bgp.ASN{263692}},
	}
	if got := tb.Validate(path); got != Valid {
		t.Errorf("cross-segment neighbor = %v", got)
	}
	bad := bgp.ASPath{
		{Type: bgp.SegmentSequence, ASNs: []bgp.ASN{1001, 50509}},
		{Type: bgp.SegmentSequence, ASNs: []bgp.ASN{263692}},
	}
	if got := tb.Validate(bad); got != Invalid {
		t.Errorf("cross-segment hijack = %v", got)
	}
}

func TestASSetTermination(t *testing.T) {
	tb := table(t)
	withRecorded := bgp.ASPath{
		{Type: bgp.SegmentSequence, ASNs: []bgp.ASN{1001}},
		{Type: bgp.SegmentSet, ASNs: []bgp.ASN{263692, 99}},
	}
	if got := tb.Validate(withRecorded); got != Invalid {
		t.Errorf("AS_SET hiding recorded origin = %v", got)
	}
	without := bgp.ASPath{
		{Type: bgp.SegmentSequence, ASNs: []bgp.ASN{1001}},
		{Type: bgp.SegmentSet, ASNs: []bgp.ASN{42, 99}},
	}
	if got := tb.Validate(without); got != NotFound {
		t.Errorf("AS_SET without recorded origin = %v", got)
	}
}

func TestRecordAccessors(t *testing.T) {
	tb := NewTable()
	if err := tb.Add(Record{Origin: 7, Neighbors: []bgp.ASN{3, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Add(Record{Origin: 7, Neighbors: []bgp.ASN{5}}); err != nil {
		t.Fatal(err)
	}
	rec, ok := tb.Record(7)
	if !ok || len(rec.Neighbors) != 4 {
		t.Fatalf("record = %+v", rec)
	}
	for i := 1; i < len(rec.Neighbors); i++ {
		if rec.Neighbors[i-1] >= rec.Neighbors[i] {
			t.Errorf("neighbors unsorted: %v", rec.Neighbors)
		}
	}
	if _, ok := tb.Record(8); ok {
		t.Error("missing record reported present")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
	if err := tb.Add(Record{Origin: bgp.AS0}); err == nil {
		t.Error("AS0 record should be rejected")
	}
}
