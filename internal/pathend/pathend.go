// Package pathend implements path-end validation (Cohen et al., SIGCOMM
// 2016), the lightweight AS-path defense the paper discusses in §2.3: the
// resource holder signs the set of ASNs allowed to appear adjacent to its
// origin. A forged-origin hijack — RPKI-valid under plain origin
// validation — fails path-end validation because the hijacker's transit
// is not an authorized neighbor.
package pathend

import (
	"fmt"
	"sort"

	"dropscope/internal/bgp"
)

// Record authorizes the neighbors of one origin AS.
type Record struct {
	Origin    bgp.ASN
	Neighbors []bgp.ASN // ASes allowed adjacent to Origin in announcements
}

// Validity is a path-end validation outcome.
type Validity int

// Outcomes.
const (
	NotFound Validity = iota // origin has no record; validation is silent
	Valid                    // neighbor authorized (or origin is the peer itself)
	Invalid                  // neighbor not in the origin's record
)

// String names the outcome.
func (v Validity) String() string {
	switch v {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return "notfound"
	}
}

// Table holds path-end records keyed by origin.
type Table struct {
	records map[bgp.ASN]map[bgp.ASN]bool
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{records: make(map[bgp.ASN]map[bgp.ASN]bool)}
}

// Add registers (or extends) the record for rec.Origin.
func (t *Table) Add(rec Record) error {
	if rec.Origin == bgp.AS0 {
		return fmt.Errorf("pathend: AS0 cannot originate")
	}
	set := t.records[rec.Origin]
	if set == nil {
		set = make(map[bgp.ASN]bool)
		t.records[rec.Origin] = set
	}
	for _, n := range rec.Neighbors {
		set[n] = true
	}
	return nil
}

// Len returns the number of origins with records.
func (t *Table) Len() int { return len(t.records) }

// Record returns the stored record for origin, if any.
func (t *Table) Record(origin bgp.ASN) (Record, bool) {
	set, ok := t.records[origin]
	if !ok {
		return Record{}, false
	}
	rec := Record{Origin: origin}
	for n := range set {
		rec.Neighbors = append(rec.Neighbors, n)
	}
	sort.Slice(rec.Neighbors, func(i, j int) bool { return rec.Neighbors[i] < rec.Neighbors[j] })
	return rec, true
}

// Validate checks the end of an AS path: the AS adjacent to the origin
// must be one of the origin's authorized neighbors. Paths where the
// collector peer IS the origin (no adjacent AS) validate trivially.
// Paths ending in an AS_SET cannot be validated and return Invalid when
// the set's members include an origin with a record (conservative), else
// NotFound.
func (t *Table) Validate(path bgp.ASPath) Validity {
	if len(path) == 0 {
		return NotFound
	}
	last := path[len(path)-1]
	if last.Type != bgp.SegmentSequence || len(last.ASNs) == 0 {
		// AS_SET-terminated: conservative handling.
		for _, a := range last.ASNs {
			if _, ok := t.records[a]; ok {
				return Invalid
			}
		}
		return NotFound
	}
	origin := last.ASNs[len(last.ASNs)-1]
	set, ok := t.records[origin]
	if !ok {
		return NotFound
	}
	// Find the AS adjacent to the origin, crossing segment boundaries.
	var neighbor bgp.ASN
	if len(last.ASNs) >= 2 {
		neighbor = last.ASNs[len(last.ASNs)-2]
	} else if len(path) >= 2 {
		prev := path[len(path)-2]
		if len(prev.ASNs) == 0 {
			return Invalid
		}
		neighbor = prev.ASNs[len(prev.ASNs)-1]
	} else {
		// Single-element path: the origin announced directly to the
		// collector peer; there is no adjacency to check.
		return Valid
	}
	// Prepending: the origin may appear multiple times; skip self-loops.
	if neighbor == origin {
		seq := last.ASNs
		i := len(seq) - 1
		for i >= 0 && seq[i] == origin {
			i--
		}
		if i < 0 {
			return Valid // the whole path is the origin prepending itself
		}
		neighbor = seq[i]
	}
	if set[neighbor] {
		return Valid
	}
	return Invalid
}
