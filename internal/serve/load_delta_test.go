package serve

import (
	"context"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dropscope/internal/archive"
	"dropscope/internal/ribsnap"
	"dropscope/internal/scenario"
	"dropscope/internal/session"
	"dropscope/internal/timex"
)

// growableWorld generates a private (uncached) world and writes its
// archives, returning the world so the test can amplify and rewrite it
// — the byte-prefix append-only growth the delta path requires.
func growableWorld(t testing.TB, seed int64) (*scenario.World, string, timex.Range) {
	t.Helper()
	p := scenario.DefaultParams()
	p.Seed = seed
	p.Scale = 1024
	w, err := scenario.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeBundle(t, dir, w)
	return w, dir, p.Window
}

func writeBundle(t testing.TB, dir string, w *scenario.World) {
	t.Helper()
	err := archive.Write(dir, &archive.Bundle{
		MRT: w.MRT, DROP: w.DROP, SBL: w.SBL,
		IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// grow appends amplified churn to the world's MRT streams and rewrites
// the archives. The encoder is deterministic, so every file's previous
// content is a byte prefix of the new one — exactly an append.
func grow(t testing.TB, dir string, w *scenario.World, scale int, seed int64) {
	t.Helper()
	records, _ := scenario.AmplifyVolume(w, scale, seed)
	if records == 0 {
		t.Fatal("AmplifyVolume appended nothing")
	}
	writeBundle(t, dir, w)
}

// requireSameResponses asserts both servers answer the endpoint mix
// byte-for-byte identically.
func requireSameResponses(t *testing.T, want, got *Server, g *Generation) {
	t.Helper()
	for _, path := range queryPaths(g) {
		a := get(t, want, path)
		b := get(t, got, path)
		if a.Code != b.Code || a.Body.String() != b.Body.String() {
			t.Fatalf("%s diverges:\ncold:  %d %q\ndelta: %d %q",
				path, a.Code, a.Body.String(), b.Code, b.Body.String())
		}
	}
}

// TestDeltaLoadStoreMatchesCold is the end-to-end append contract for
// the store-backed single-file daemon path: cold load, archive grows
// append-only, and the next load takes the delta path — decoding only
// the appended bytes — yet serves every endpoint byte-identically to a
// from-scratch cold rebuild of the grown archive. The manifest must
// record the ancestry edge.
func TestDeltaLoadStoreMatchesCold(t *testing.T) {
	w, dir, window := growableWorld(t, 31)
	store, err := ribsnap.OpenStore(filepath.Join(t.TempDir(), "ribsnap"), ribsnap.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Window: window, Store: store, Delta: true}
	g1, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if g1.DeltaBuilt() {
		t.Fatal("first (cold) load claims delta")
	}
	parentHex := g1.DigestHex()
	g1.snap.Close()

	grow(t, dir, w, 8, 97)

	g2, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.DeltaBuilt() {
		t.Fatal("load after append-only growth did not take the delta path")
	}
	cold, err := Load(dir, LoadOptions{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if g2.DigestHex() != cold.DigestHex() {
		t.Fatalf("delta generation digest %s != cold %s", g2.DigestHex(), cold.DigestHex())
	}
	requireSameResponses(t, New(cold), New(g2), cold)

	// The delta generation's health must match a cache-off cold run:
	// no discarded-snapshot skip.
	if m := get(t, New(g2), "/metrics").Body.String(); strings.Contains(m, snapshotSource) {
		t.Fatalf("delta load counted a snapshot skip:\n%s", m)
	}

	raw, err := hex.DecodeString(g2.DigestHex())
	if err != nil || len(raw) != 32 {
		t.Fatalf("bad digest hex %q: %v", g2.DigestHex(), err)
	}
	var d2 [32]byte
	copy(d2[:], raw)
	parent, ok := store.Parent(d2)
	if !ok {
		t.Fatal("manifest carries no ancestry for the delta generation")
	}
	if got := hex.EncodeToString(parent[:]); got != parentHex {
		t.Fatalf("manifest parent %s, want %s", got, parentHex)
	}
}

// TestDeltaLoadShardedMatchesCold runs the same contract through the
// sharded layout: the base generation is a shard directory, the merge
// concatenates the shards, and the merged generation is re-persisted
// sharded.
func TestDeltaLoadShardedMatchesCold(t *testing.T) {
	w, dir, window := growableWorld(t, 32)
	store, err := ribsnap.OpenStore(filepath.Join(t.TempDir(), "ribsnap"), ribsnap.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Window: window, Store: store, Shards: 5, MemBudget: 2, Delta: true}
	g1, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Shards() == nil {
		t.Fatal("cold sharded load produced no shard set")
	}
	g1.snap.Close()

	grow(t, dir, w, 8, 98)

	g2, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.DeltaBuilt() {
		t.Fatal("sharded load after growth did not take the delta path")
	}
	if g2.Shards() == nil || g2.Shards().NumShards() != 5 {
		t.Fatal("delta generation is not served sharded")
	}
	cold, err := Load(dir, LoadOptions{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResponses(t, New(cold), New(g2), cold)
}

// TestDeltaLoadBareSnapshotDir exercises the store-less batch path: a
// stale index.ribsnap is adopted as the delta base under its own
// digest instead of being discarded.
func TestDeltaLoadBareSnapshotDir(t *testing.T) {
	w, dir, window := growableWorld(t, 33)
	snapDir := t.TempDir()
	opts := LoadOptions{Window: window, SnapshotDir: snapDir, Delta: true}
	g1, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	g1.snap.Close()

	grow(t, dir, w, 8, 99)

	g2, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.DeltaBuilt() {
		t.Fatal("bare snapshot-dir load did not take the delta path")
	}
	cold, err := Load(dir, LoadOptions{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResponses(t, New(cold), New(g2), cold)
}

// TestDeltaLoadFallsBackOnRewrite pins the safety property: an archive
// whose consumed prefix was rewritten (not appended to) must refuse
// the delta and rebuild cold — correctness over speed.
func TestDeltaLoadFallsBackOnRewrite(t *testing.T) {
	w, dir, window := growableWorld(t, 34)
	store, err := ribsnap.OpenStore(filepath.Join(t.TempDir(), "ribsnap"), ribsnap.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Window: window, Store: store, Delta: true}
	g1, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	g1.snap.Close()

	grow(t, dir, w, 8, 100)
	// Flip one byte inside the region the base already consumed.
	var mrtFile string
	ents, err := os.ReadDir(filepath.Join(dir, "mrt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".mrt") {
			mrtFile = filepath.Join(dir, "mrt", e.Name())
			break
		}
	}
	b, err := os.ReadFile(mrtFile)
	if err != nil {
		t.Fatal(err)
	}
	b[2] ^= 0x01 // timestamp byte: record stays decodable, bytes differ
	if err := os.WriteFile(mrtFile, b, 0o644); err != nil {
		t.Fatal(err)
	}

	g2, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if g2.DeltaBuilt() {
		t.Fatal("rewritten archive still took the delta path")
	}
}

// TestDeltaWatchReloadCountsMetric drives the daemon loop: a reloader
// watching the archive notices append-only growth, reloads through the
// delta path, swaps the merged generation in, and increments
// delta_reloads_total.
func TestDeltaWatchReloadCountsMetric(t *testing.T) {
	w, dir, window := growableWorld(t, 35)
	store, err := ribsnap.OpenStore(filepath.Join(t.TempDir(), "ribsnap"), ribsnap.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Window: window, Store: store, Delta: true}
	g1, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g1)
	clock := session.NewFake(time.Unix(1_700_000_000, 0))
	r := NewReloader(srv, ReloadConfig{
		Dir:   dir,
		Opts:  opts,
		Watch: time.Minute,
		Clock: clock,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()

	clock.BlockUntil(1)
	grow(t, dir, w, 8, 101)
	clock.Advance(time.Minute)
	waitFor(t, "delta reload swap", func() bool { return srv.Swaps() == 1 })
	if got := srv.stats.DeltaReloads.Load(); got != 1 {
		t.Fatalf("delta_reloads_total = %d, want 1", got)
	}
	if m := get(t, srv, "/metrics").Body.String(); !strings.Contains(m, `"delta_reloads_total":1`) {
		t.Fatalf("/metrics missing delta_reloads_total=1:\n%s", m)
	}
	cancel()
	<-done
}
