package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dropscope/internal/analysis"
	"dropscope/internal/archive"
	"dropscope/internal/ingest"
	"dropscope/internal/ribsnap"
	"dropscope/internal/timex"
)

// snapshotSource and snapshotFile mirror the facade's warm-start
// accounting so a daemon load reports snapshot health under the same
// source name a batch load does.
const (
	snapshotSource = "ribsnap/index"
	snapshotFile   = "index.ribsnap"
)

// LoadOptions configures Load.
type LoadOptions struct {
	// Window is the study window the generation must cover.
	Window timex.Range
	// MaxSkip is the per-collector skip budget (0 = ingest default,
	// negative = unlimited). Daemon loads are always lenient: a damaged
	// collector quarantines, it does not take the service down.
	MaxSkip int
	// Workers bounds the cold-build RIB loading pool.
	Workers int
	// SnapshotDir, when non-empty, warm-starts from
	// SnapshotDir/index.ribsnap when it matches the archive digest, and
	// persists a fresh snapshot there after a clean cold build so the
	// next load (a SIGHUP reload, a restart) maps instead of rebuilding.
	SnapshotDir string
	// Store, when non-nil, supersedes SnapshotDir: warm starts load the
	// generation through the manifest-backed store (which refuses
	// generations journaled corrupt and falls back to the legacy
	// index.ribsnap), and clean cold builds are written and promoted
	// through it. This is the daemon path; the bare SnapshotDir path
	// remains for single-owner batch use.
	Store *ribsnap.Store
	// Health, when non-nil, receives the load's ingest accounting
	// instead of a fresh accumulator — the reload supervisor seeds it
	// with the retry count that preceded a successful reload, so the
	// generation's own health report records how it came to be.
	Health *ingest.Health
}

// Load builds one serving generation from the archive directory: warm
// from the snapshot when it matches the archive's MRT digest, cold
// otherwise. A cold build over clean MRT ingest persists the snapshot
// for the next load. The returned generation always carries the archive
// digest — it is the identity every response reports.
func Load(dir string, opts LoadOptions) (*Generation, error) {
	h := opts.Health
	if h == nil {
		h = ingest.NewHealth()
	}
	var (
		snap       *ribsnap.Snapshot
		digest     [32]byte
		haveDigest bool
		snapPath   string
	)
	if opts.SnapshotDir != "" {
		snapPath = filepath.Join(opts.SnapshotDir, snapshotFile)
		// Startup sweep for the store-less path (the store sweeps at
		// open): temps orphaned by a crashed write are pure debris.
		_, _ = ribsnap.SweepTemps(opts.SnapshotDir)
	}
	if d, derr := ribsnap.DigestMRT(filepath.Join(dir, "mrt")); derr == nil {
		digest, haveDigest = d, true
		var (
			s    *ribsnap.Snapshot
			lerr error
			try  bool
		)
		switch {
		case opts.Store != nil:
			s, lerr = opts.Store.Load(digest)
			try = true
		case snapPath != "":
			s, lerr = ribsnap.Load(snapPath, digest)
			try = true
		}
		if try {
			switch {
			case lerr != nil:
				countSnapshotSkip(h, lerr)
			case s.Window != opts.Window:
				s.Close()
				h.Source(snapshotSource).Skip(ingest.Unsupported)
			default:
				snap = s
			}
		}
	}

	b, err := archive.LoadWithOptions(dir, archive.LoadOptions{Health: h, SkipMRT: snap != nil})
	if err != nil {
		if snap != nil {
			snap.Close()
		}
		return nil, fmt.Errorf("serve: load: %w", err)
	}
	aopts := analysis.Options{
		Workers: opts.Workers,
		Lenient: true,
		MaxSkip: opts.MaxSkip,
		Health:  h,
	}
	if snap != nil {
		aopts.Index = snap.Index
	}
	p, err := analysis.NewWithOptions(analysis.Dataset{
		Window: opts.Window,
		DROP:   b.DROP, SBL: b.SBL, IRR: b.IRR, RPKI: b.RPKI, RIR: b.RIR,
		MRT: b.MRT,
	}, aopts)
	if err != nil {
		if snap != nil {
			snap.Close()
		}
		return nil, fmt.Errorf("serve: pipeline: %w", err)
	}
	if snap != nil {
		// Replay the per-collector record counts the snapshot preserved
		// so /metrics reports what a cold build would.
		for _, c := range snap.Counts {
			h.Source("mrt/" + c.Collector).Accept(c.Records)
		}
	} else {
		if haveDigest {
			persistSnapshot(opts, snapPath, p, b, h, digest)
		}
		// Serve the cold-built index behind a mapping-free snapshot: the
		// generation lifecycle (refcount, Close-on-swap) is identical.
		snap = &ribsnap.Snapshot{Index: p.Index, Window: opts.Window, Digest: digest}
	}
	if opts.Store != nil && haveDigest {
		// Journal the generation as live. A failure here is operational
		// (the journal write), not a serving problem — the generation is
		// good; the next promote retries.
		_ = opts.Store.Promote(digest)
	}
	return newGeneration(snap, p), nil
}

// countSnapshotSkip classifies a discarded snapshot in the health
// accounting, as the batch loader does: a missing snapshot (first run)
// counts nothing; truncation, corruption, version skew, and staleness
// each count one skip.
func countSnapshotSkip(h *ingest.Health, err error) {
	if os.IsNotExist(err) {
		return
	}
	src := h.Source(snapshotSource)
	switch {
	case errors.Is(err, ribsnap.ErrTruncated):
		src.Skip(ingest.Truncated)
	case errors.Is(err, ribsnap.ErrVersion), errors.Is(err, ribsnap.ErrStale):
		src.Skip(ingest.Unsupported)
	default:
		src.Skip(ingest.Corrupt)
	}
}

// persistSnapshot writes the freshly built index for the next load —
// through the manifest-backed store when one is configured, else to
// the bare snapshot path. Best-effort, and it refuses to persist an
// index built from damaged MRT ingest: a partial index must never
// masquerade as the archive's.
func persistSnapshot(opts LoadOptions, path string, p *analysis.Pipeline, b *archive.Bundle, h *ingest.Health, digest [32]byte) {
	if opts.Store == nil && path == "" {
		return
	}
	for _, s := range h.Sources() {
		if strings.HasPrefix(s.Name, "mrt/") && !s.Clean() {
			return
		}
	}
	f, err := p.Index.Frozen()
	if err != nil {
		return
	}
	names := make([]string, 0, len(b.MRT))
	for name := range b.MRT {
		names = append(names, name)
	}
	sort.Strings(names)
	counts := make([]ribsnap.CollectorCount, 0, len(names))
	for _, name := range names {
		counts = append(counts, ribsnap.CollectorCount{
			Collector: name,
			Records:   h.Source("mrt/" + name).Records,
		})
	}
	if opts.Store != nil {
		_ = opts.Store.Write(f, opts.Window, digest, counts)
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	_ = ribsnap.Write(path, f, opts.Window, digest, counts)
}
